// Ablation studies beyond the paper's figures:
//  1. memoization hit rates of the Algorithm-1 estimator during the greedy
//     pace search (why Fig. 15's speedup happens),
//  2. partial decomposition (Sec. 4.3) on vs off,
//  3. sensitivity to the per-execution startup cost constant (the knob that
//     models the Spark job-scheduling overhead [47]).

#include "bench_util.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Ablations — memo hit rate, partial decomposition, startup cost",
              cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});

  {
    std::vector<QueryPlan> queries = AllTpchQueries(db.catalog);
    std::vector<double> rel(queries.size(), 0.1);
    OptimizedPlan plan = OptimizePlan(Approach::kIShareNoUnshare, queries,
                                      db.catalog, rel, cfg.MakeOptions());
    double hit_rate =
        100.0 * static_cast<double>(plan.memo_hits) /
        static_cast<double>(std::max<int64_t>(1, plan.memo_hits +
                                                     plan.memo_misses));
    std::printf("\n== Memoization during pace search (22 queries, rel 0.1) "
                "==\n");
    std::printf("memo hits=%lld misses=%lld hit_rate=%.1f%% opt_time=%.2fs\n",
                static_cast<long long>(plan.memo_hits),
                static_cast<long long>(plan.memo_misses), hit_rate,
                plan.optimization_seconds);
  }

  {
    std::printf("\n== Partial decomposition (Sec. 4.3) on vs off ==\n");
    std::vector<QueryPlan> queries = DecompositionWorkload(db.catalog);
    std::vector<double> rel(queries.size(), 0.1);
    TextTable t({"partial", "est_total_work", "opt_s", "splits_adopted",
                 "partial_splits"});
    for (bool partial : {false, true}) {
      ApproachOptions opts = cfg.MakeOptions();
      opts.enable_partial = partial;
      OptimizedPlan plan =
          OptimizePlan(Approach::kIShare, queries, db.catalog, rel, opts);
      t.AddRow({partial ? "on" : "off",
                TextTable::Num(plan.est_cost.total_work, 0),
                TextTable::Num(plan.optimization_seconds, 2),
                std::to_string(plan.decompose_stats.splits_adopted),
                std::to_string(plan.decompose_stats.partial_splits_adopted)});
    }
    t.Print();
  }

  {
    // Recurring-query constraint calibration (Sec. 2.1): aim the optimizer
    // at measured rather than estimated batch final work.
    std::printf("\n== Constraint calibration from prior executions ==\n");
    std::vector<QueryPlan> queries = SharingFriendlyQueries(db.catalog);
    std::vector<double> rel(queries.size(), 0.2);
    TextTable t({"calibrated", "total_exec_s", "missed_mean_%",
                 "missed_max_%"});
    for (bool calibrated : {false, true}) {
      Experiment ex(&db.catalog, &db.source, queries, rel, cfg.MakeOptions(),
                    calibrated);
      ExperimentResult r = ex.Run(Approach::kIShare);
      t.AddRow({calibrated ? "yes" : "no",
                TextTable::Num(r.total_seconds, 3),
                TextTable::Num(r.MeanMissedRel(), 2),
                TextTable::Num(r.MaxMissedRel(), 2)});
    }
    t.Print();
  }

  {
    std::printf("\n== Startup-cost sensitivity (pair Q5 + Q8, rel 0.2) ==\n");
    TextTable t({"startup_cost", "iShare_total_work", "max_pace_chosen"});
    for (double sc : {0.0, 8.0, 32.0, 128.0}) {
      std::vector<QueryPlan> queries = {TpchQuery(db.catalog, 5, 0),
                                        TpchQuery(db.catalog, 8, 1)};
      std::vector<double> rel = {0.2, 0.2};
      ApproachOptions opts = cfg.MakeOptions();
      opts.exec.startup_cost = sc;
      OptimizedPlan plan =
          OptimizePlan(Approach::kIShare, queries, db.catalog, rel, opts);
      int max_pace = 0;
      for (int p : plan.paces) max_pace = std::max(max_pace, p);
      t.AddRow({TextTable::Num(sc, 0),
                TextTable::Num(plan.est_cost.total_work, 0),
                std::to_string(max_pace)});
    }
    t.Print();
  }
  return FinishBench(cfg, "bench_ablation", {});
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
