// Chaos supervision bench (DESIGN.md §11): two gates, exercised over a
// TPC-H workload, exiting non-zero unless both hold.
//
//   1. Supervision overhead: a fault-free window driven through the
//      Supervisor (breaker bookkeeping, ladder updates, per-step
//      observations) must cost <= 5% wall time over the same window with
//      a bare CheckpointManager hook — the supervision layer is pure
//      bookkeeping until something actually fails. Runs are interleaved
//      and compared by median, with a small absolute floor so the gate is
//      meaningful on windows that finish in microseconds.
//   2. Chaos sweep: randomized composed fault schedules through the chaos
//      harness; every seed must pass all four gates (completion, baseline
//      equivalence, zero-slack protection, breaker attribution).

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ishare/chaos/supervisor.h"
#include "ishare/common/check.h"
#include "ishare/harness/chaos_harness.h"
#include "ishare/recovery/checkpoint_manager.h"
#include "ishare/recovery/checkpoint_store.h"

namespace ishare {
namespace {

const char* PassFail(bool b) { return b ? "PASS" : "FAIL"; }

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// One fault-free window over `g`, checkpointing every other step, timed.
// `supervised` routes the after-step hook through a Supervisor (with the
// full observation surface exercised); otherwise the bare manager runs.
double TimedWindow(const SubplanGraph& g, const StreamSource& dataset,
                   const PaceConfig& paces, bool supervised) {
  StreamSource src;
  CHECK(dataset.CloneTablesInto(&src).ok());
  PaceExecutor exec(&g, &src);
  recovery::MemoryCheckpointStore store;
  recovery::CheckpointManagerOptions mopts;
  mopts.epoch_len = 2;
  mopts.overhead_budget = 0;
  recovery::CheckpointManager mgr(&store, mopts);
  chaos::Supervisor sup(chaos::SupervisorOptions{}, &mgr);
  const double steps = static_cast<double>(paces.empty() ? 1 : paces[0]);
  exec.set_after_step_hook([&](int64_t step) -> Status {
    if (!supervised) return mgr.OnStepComplete(step, exec);
    double f = static_cast<double>(step) / steps;
    sup.ObserveSourceProgress(step, f, f);
    sup.ObserveMemoryPressure(step, 0.0);
    sup.ObserveFlow(step, flow::FlowStats{});
    return sup.OnStepComplete(step, exec);
  });
  auto t0 = std::chrono::steady_clock::now();
  Result<RunResult> run = exec.Run(paces);
  auto t1 = std::chrono::steady_clock::now();
  CHECK(run.ok()) << run.status().ToString();
  return std::chrono::duration<double>(t1 - t0).count();
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Chaos supervision — overhead and composed-fault gates", cfg);

  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = {TpchQuery(db.catalog, 5, 0),
                                    TpchQuery(db.catalog, 8, 1),
                                    TpchQuery(db.catalog, 9, 2)};
  SubplanGraph g = SubplanGraph::Build(queries);
  PaceConfig paces(g.num_subplans(), cfg.quick ? 8 : 12);

  // ---- Gate 1: supervision overhead on a fault-free window --------------
  const int reps = cfg.quick ? 5 : 9;
  std::vector<double> bare, sup;
  // Warm both paths once (allocator, page cache), then interleave so
  // machine drift hits both samples alike.
  TimedWindow(g, db.source, paces, /*supervised=*/false);
  TimedWindow(g, db.source, paces, /*supervised=*/true);
  for (int i = 0; i < reps; ++i) {
    bare.push_back(TimedWindow(g, db.source, paces, /*supervised=*/false));
    sup.push_back(TimedWindow(g, db.source, paces, /*supervised=*/true));
  }
  double bare_med = Median(bare);
  double sup_med = Median(sup);
  double overhead = bare_med > 0 ? (sup_med - bare_med) / bare_med : 0.0;
  // The 5% gate, with a 2ms absolute floor so micro-windows where one
  // scheduler hiccup exceeds the whole budget cannot flake the bench.
  bool overhead_ok =
      sup_med - bare_med <= std::max(0.05 * bare_med, 0.002);

  std::printf("\n== supervision overhead (fault-free, %d reps) ==\n", reps);
  TextTable ot({"hook", "median_s", "overhead"});
  ot.AddRow({"bare manager", TextTable::Num(bare_med, 5), "-"});
  ot.AddRow({"supervisor", TextTable::Num(sup_med, 5),
             TextTable::Num(100.0 * overhead, 2) + "%"});
  ot.Print();

  // ---- Gate 2: composed-fault sweep through the chaos harness -----------
  CostEstimator est(&g, &db.catalog);
  PlanCost cost = est.Estimate(paces);
  std::vector<double> abs = {cost.query_final_work[0],
                             10.0 * cost.query_final_work[1],
                             10.0 * cost.query_final_work[2]};
  std::vector<std::string> tables = db.source.TableNames();
  chaos::ChaosScheduleOptions sopts;
  sopts.max_step = paces[0];

  const uint64_t sweep_seeds = cfg.quick ? 12 : 40;
  uint64_t passed = 0;
  int64_t injections = 0, trips = 0;
  std::string first_violation;
  for (uint64_t seed = 1; seed <= sweep_seeds; ++seed) {
    chaos::FaultSchedule sched =
        chaos::FaultSchedule::Random(cfg.seed * 1000 + seed, sopts, tables);
    Result<ChaosReport> rep =
        RunChaos(&est, paces, abs, db.source, sched, ChaosOptions{});
    if (!rep.ok()) {
      if (first_violation.empty()) {
        first_violation =
            "seed " + std::to_string(seed) + ": " + rep.status().ToString();
      }
      continue;
    }
    if (rep->AllGatesPass()) {
      ++passed;
    } else if (first_violation.empty()) {
      first_violation = "seed " + std::to_string(seed) + " [" +
                        sched.ToString() + "]: " + rep->mismatch;
    }
    injections += static_cast<int64_t>(rep->injections.size());
    for (const chaos::BreakerTransition& t : rep->breakers) {
      if (t.to == chaos::BreakerState::kOpen) ++trips;
    }
  }
  bool sweep_ok = passed == sweep_seeds;

  std::printf("\n== chaos sweep ==\n");
  std::printf(
      "seeds %llu/%llu passed | faults injected %lld | breaker trips %lld\n",
      static_cast<unsigned long long>(passed),
      static_cast<unsigned long long>(sweep_seeds),
      static_cast<long long>(injections), static_cast<long long>(trips));
  if (!first_violation.empty()) {
    std::printf("first violation: %s\n", first_violation.c_str());
  }

  std::printf("\n== gates ==\n");
  TextTable gates({"gate", "verdict"});
  gates.AddRow({"supervision overhead <= 5%", PassFail(overhead_ok)});
  gates.AddRow({"sweep: all seeds pass all gates", PassFail(sweep_ok)});
  gates.Print();
  bool all = overhead_ok && sweep_ok;
  std::printf("overall: %s\n", PassFail(all));

  int json_rc = FinishBench(cfg, "bench_chaos", {});
  return (all && json_rc == 0) ? 0 : 1;
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
