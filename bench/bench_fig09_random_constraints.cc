// Reproduces Fig. 9 and the "Random" half of Table 1: all 22 TPC-H queries
// with relative final work constraints drawn randomly from
// {1.0, 0.5, 0.2, 0.1}, three constraint sets, four approaches. Reports
// mean/min/max total execution time per approach and missed latencies.

#include "bench_util.h"
#include "ishare/common/rng.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 9 — random relative constraints (22 TPC-H queries)", cfg);

  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = AllTpchQueries(db.catalog);

  const double kLevels[] = {1.0, 0.5, 0.2, 0.1};
  const int kSets = cfg.quick ? 2 : 3;

  struct Agg {
    std::vector<double> total_secs;
    std::vector<double> total_work;
    std::vector<ExperimentResult> runs;
  };
  std::map<Approach, Agg> agg;

  Rng rng(1234);
  for (int set = 0; set < kSets; ++set) {
    std::vector<double> rel(queries.size());
    std::string desc;
    for (size_t q = 0; q < rel.size(); ++q) {
      rel[q] = kLevels[rng.UniformInt(0, 3)];
      desc += TextTable::Num(rel[q], 1) + " ";
    }
    std::printf("\nconstraint set %d: %s\n", set, desc.c_str());
    Experiment ex(&db.catalog, &db.source, queries, rel, cfg.MakeOptions());
    for (Approach a : StandardApproaches()) {
      ExperimentResult r = ex.Run(a);
      agg[a].total_secs.push_back(r.total_seconds);
      agg[a].total_work.push_back(r.total_work);
      agg[a].runs.push_back(r);
      std::printf("  %-20s total=%.3fs work=%.0f\n", ApproachName(a),
                  r.total_seconds, r.total_work);
    }
  }

  std::printf("\n== Fig. 9 — total execution time over %d random sets ==\n",
              kSets);
  TextTable t({"approach", "mean_s", "min_s", "max_s", "mean_work",
               "vs_iShare"});
  double ishare_mean = 0;
  for (double s : agg[Approach::kIShare].total_secs) ishare_mean += s;
  ishare_mean /= kSets;
  for (Approach a : StandardApproaches()) {
    const Agg& g = agg[a];
    double mean = 0, mn = 1e300, mx = 0, mw = 0;
    for (double s : g.total_secs) {
      mean += s;
      mn = std::min(mn, s);
      mx = std::max(mx, s);
    }
    for (double w : g.total_work) mw += w;
    mean /= kSets;
    mw /= kSets;
    t.AddRow({ApproachName(a), TextTable::Num(mean, 3), TextTable::Num(mn, 3),
              TextTable::Num(mx, 3), TextTable::Num(mw, 0),
              TextTable::Num(mean > 0 ? ishare_mean / mean * 100 : 0, 1) +
                  "%"});
  }
  t.Print();

  // Table 1 (Random): aggregate missed latencies over all sets.
  std::vector<ExperimentResult> merged;
  for (Approach a : StandardApproaches()) {
    ExperimentResult m;
    m.approach = a;
    for (const ExperimentResult& r : agg[a].runs) {
      m.queries.insert(m.queries.end(), r.queries.begin(), r.queries.end());
    }
    merged.push_back(std::move(m));
  }
  PrintMissedLatencyTable("Table 1 (Random) — missed latencies", merged);

  std::vector<ExperimentResult> all;
  for (Approach a : StandardApproaches()) {
    all.insert(all.end(), agg[a].runs.begin(), agg[a].runs.end());
  }
  return FinishBench(cfg, "bench_fig09_random_constraints", all);
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
