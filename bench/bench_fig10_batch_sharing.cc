// Reproduces Fig. 10: the benefit of shared batch execution — total
// execution time of the MQO shared plan run in one batch, relative to
// executing each of the 22 TPC-H queries independently in one batch.

#include "bench_util.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 10 — batch execution, shared vs separate (22 queries)",
              cfg);

  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = AllTpchQueries(db.catalog);
  std::vector<double> rel(queries.size(), 1.0);
  Experiment ex(&db.catalog, &db.source, queries, rel, cfg.MakeOptions());

  double separate = ex.StandaloneBatchTotalSeconds();
  double shared = ex.SharedBatchTotalSeconds();

  TextTable t({"mode", "total_exec_s", "relative"});
  t.AddRow({"separate batch (NoShare)", TextTable::Num(separate, 3), "100%"});
  t.AddRow({"shared batch (MQO plan)", TextTable::Num(shared, 3),
            TextTable::Num(100.0 * shared / separate, 1) + "%"});
  t.Print();
  std::printf("\nshared batch execution saves %.1f%% of the separate "
              "execution time\n",
              100.0 * (1.0 - shared / separate));
  return FinishBench(cfg, "bench_fig10_batch_sharing", {});
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
