// Reproduces Fig. 11 and part of the "Uniform" half of Table 1: all 22
// TPC-H queries under uniform relative final work constraints
// {1.0, 0.5, 0.2, 0.1}, four approaches.

#include "bench_util.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 11 — uniform relative constraints (22 TPC-H queries)",
              cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = AllTpchQueries(db.catalog);
  std::vector<ExperimentResult> all = RunUniformSweep(
      &db, queries, StandardApproaches(), cfg,
      "Fig. 11 — total execution time per uniform constraint");
  PrintMissedLatencyTable(
      "Table 1 (Uniform, 22 queries) — missed latencies",
      MergeByApproach(all, StandardApproaches()));
  return FinishBench(cfg, "bench_fig11_uniform_22q", all);
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
