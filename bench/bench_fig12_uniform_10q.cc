// Reproduces Fig. 12 and part of the "Uniform" half of Table 1: the 10
// sharing-friendly TPC-H queries (Q4, Q5, Q7, Q8, Q9, Q15, Q17, Q18, Q20,
// Q21) under uniform relative constraints — the setting where Share-Uniform
// beats the NoShare approaches because absolute constraints are similar.

#include "bench_util.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader(
      "Fig. 12 — uniform relative constraints (10 sharing-friendly queries)",
      cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = SharingFriendlyQueries(db.catalog);
  std::vector<ExperimentResult> all = RunUniformSweep(
      &db, queries, StandardApproaches(), cfg,
      "Fig. 12 — total execution time per uniform constraint");
  PrintMissedLatencyTable(
      "Table 1 (Uniform, 10 queries) — missed latencies",
      MergeByApproach(all, StandardApproaches()));
  return FinishBench(cfg, "bench_fig12_uniform_10q", all);
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
