// Reproduces Fig. 13 and Table 2: manually tuned pace configurations. The
// paper tunes each approach until the latency goals (relative constraint
// 0.1) are met or unimprovable. We automate the same tuning: starting from
// rel = 0.1 everywhere, queries that still miss their goal get their
// constraint tightened and the approach is re-optimized, until no further
// improvement (non-incrementable queries — Q15 — keep missing under the
// single-pace approaches exactly as in the paper).

#include "bench_util.h"

namespace ishare {
namespace {

ExperimentResult TunedRun(TpchDb* db, const std::vector<QueryPlan>& queries,
                          Approach a, const BenchConfig& cfg) {
  std::vector<double> rel(queries.size(), 0.1);
  ExperimentResult best;
  double best_missed = 1e300;
  const int kRounds = cfg.quick ? 2 : 4;
  for (int round = 0; round < kRounds; ++round) {
    Experiment ex(&db->catalog, &db->source, queries, rel, cfg.MakeOptions());
    ExperimentResult r = ex.Run(a);
    double missed = r.MeanMissedAbs();
    if (missed < best_missed) {
      best_missed = missed;
      best = r;
    }
    bool any = false;
    for (size_t q = 0; q < r.queries.size(); ++q) {
      if (r.queries[q].missed_rel > 0.01 && rel[q] > 0.011) {
        rel[q] = std::max(0.01, rel[q] * 0.5);
        any = true;
      }
    }
    if (!any) break;
  }
  return best;
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 13 / Table 2 — manually tuned paces (goal: rel 0.1)",
              cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = AllTpchQueries(db.catalog);

  std::vector<ExperimentResult> results;
  for (Approach a : StandardApproaches()) {
    results.push_back(TunedRun(&db, queries, a, cfg));
    std::printf("tuned %-20s total=%.3fs\n", ApproachName(a),
                results.back().total_seconds);
  }
  PrintApproachComparison("Fig. 13 — CPU consumption with tuned paces",
                          results);
  PrintMissedLatencyTable("Table 2 — missed latencies with tuned paces",
                          results);
  double ishare = results.back().total_seconds;
  std::printf("\niShare uses");
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    std::printf(" %.1f%% of %s%s", 100.0 * ishare / results[i].total_seconds,
                ApproachName(results[i].approach),
                i + 2 < results.size() ? "," : "");
  }
  std::printf("\n");
  return FinishBench(cfg, "bench_fig13_tuned_paces", results);
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
