// Reproduces Fig. 14 and Table 3: the decomposition experiment. Workload =
// the 10 sharing-friendly TPC-H queries plus a predicate-perturbed variant
// of each (Sec. 5.4), uniform relative constraints. Compares the NoShare
// baselines, Share-Uniform, iShare without the decomposition ("w/o
// unshare"), full iShare, and the brute-force split search.

#include "bench_util.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader(
      "Fig. 14 / Table 3 — decomposition on 10 queries + 10 variants", cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = DecompositionWorkload(db.catalog);

  std::vector<Approach> approaches = {
      Approach::kNoShareUniform, Approach::kNoShareNonuniform,
      Approach::kShareUniform,   Approach::kIShareNoUnshare,
      Approach::kIShare,         Approach::kIShareBruteForce};
  std::vector<ExperimentResult> all =
      RunUniformSweep(&db, queries, approaches, cfg,
                      "Fig. 14 — total execution time per uniform constraint");
  PrintMissedLatencyTable("Table 3 — missed latencies",
                          MergeByApproach(all, approaches));

  // Decomposition activity summary for the tightest constraint.
  std::printf("\nsplits adopted at the tightest constraint:\n");
  for (const ExperimentResult& r : all) {
    if (r.approach != Approach::kIShare &&
        r.approach != Approach::kIShareBruteForce) {
      continue;
    }
    std::printf("  %-22s considered=%d adopted=%d (partial=%d) "
                "partitions_evaluated=%lld\n",
                ApproachName(r.approach), r.decompose_stats.splits_considered,
                r.decompose_stats.splits_adopted,
                r.decompose_stats.partial_splits_adopted,
                static_cast<long long>(
                    r.decompose_stats.partitions_evaluated));
  }
  return FinishBench(cfg, "bench_fig14_decomposition", all);
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
