// Reproduces Fig. 15: optimization overhead of iShare with and without the
// memoized cost estimator (Algorithm 1) and of the baselines, over the 22
// TPC-H queries with a very low relative constraint (0.01), varying the max
// pace J. Entries exceeding the DNF budget are reported as DNF, as in the
// paper (whose budget was 30 minutes on a 20-core server; ours defaults to
// 120 s single-core and is configurable).

#include "bench_util.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 15 — optimization overhead vs max pace J", cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = AllTpchQueries(db.catalog);
  std::vector<double> rel(queries.size(), 0.01);

  const double kDnfBudget = cfg.quick ? 10.0 : 120.0;
  std::vector<int> paces =
      cfg.quick ? std::vector<int>{10, 25} : std::vector<int>{10, 25, 50, 100};

  TextTable t({"max_pace", "NoShare-Uniform", "NoShare-Nonuniform",
               "Share-Uniform", "iShare (w/ memo)", "iShare (w/o memo)"});
  for (int J : paces) {
    std::vector<std::string> row{std::to_string(J)};
    auto run = [&](Approach a, bool memo) -> std::string {
      ApproachOptions opts = cfg.MakeOptions();
      opts.max_pace = J;
      opts.memoized_estimator = memo;
      opts.deadline_seconds = kDnfBudget;
      OptimizedPlan plan = OptimizePlan(a, queries, db.catalog, rel, opts);
      if (plan.timed_out) return "DNF";
      return TextTable::Num(plan.optimization_seconds, 2) + "s";
    };
    row.push_back(run(Approach::kNoShareUniform, true));
    row.push_back(run(Approach::kNoShareNonuniform, true));
    row.push_back(run(Approach::kShareUniform, true));
    row.push_back(run(Approach::kIShare, true));
    row.push_back(run(Approach::kIShare, false));
    t.AddRow(row);
    std::printf("J=%d done\n", J);
  }
  std::printf("\n== Fig. 15 — optimization time (DNF budget %.0fs) ==\n",
              kDnfBudget);
  t.Print();
  return FinishBench(cfg, "bench_fig15_opt_overhead", {});
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
