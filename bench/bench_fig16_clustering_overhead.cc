// Reproduces Fig. 16: running time of the clustering-based subplan
// decomposition versus brute-force split enumeration as the number of
// queries sharing the plan grows (brute force explodes with the Bell
// number of partitions).

#include "bench_util.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 16 — clustering vs brute-force decomposition time", cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});

  // Grow the workload by adding variant copies of the same sharing-friendly
  // queries so the shared subplans accumulate more and more queries.
  static constexpr int kNums[] = {5, 7, 8, 9, 18};
  int max_n = cfg.quick ? 6 : 10;

  TextTable t({"num_queries", "clustering_s", "clustering_partitions",
               "bruteforce_s", "bruteforce_partitions"});
  for (int n = 2; n <= max_n; n += 2) {
    std::vector<QueryPlan> queries;
    for (int i = 0; i < n; ++i) {
      queries.push_back(TpchQuery(db.catalog, kNums[i % 5], i,
                                  /*variant=*/(i / 5) % 2 == 1));
    }
    std::vector<double> rel(queries.size(), 0.1);
    auto run = [&](bool brute) {
      ApproachOptions opts = cfg.MakeOptions();
      opts.deadline_seconds = cfg.quick ? 30.0 : 300.0;
      return OptimizePlan(brute ? Approach::kIShareBruteForce
                                : Approach::kIShare,
                          queries, db.catalog, rel, opts);
    };
    OptimizedPlan cl = run(false);
    OptimizedPlan bf = run(true);
    t.AddRow({std::to_string(n), TextTable::Num(cl.optimization_seconds, 2),
              std::to_string(cl.decompose_stats.partitions_evaluated),
              bf.timed_out ? "DNF"
                           : TextTable::Num(bf.optimization_seconds, 2),
              std::to_string(bf.decompose_stats.partitions_evaluated)});
    std::printf("n=%d done\n", n);
  }
  std::printf("\n== Fig. 16 — decomposition optimization time ==\n");
  t.Print();
  return FinishBench(cfg, "bench_fig16_clustering_overhead", {});
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
