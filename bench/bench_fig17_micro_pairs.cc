// Reproduces Fig. 17: micro-benchmarks on three query pairs with different
// levels of incrementability. PairA = (Q5, Q8): both incrementable;
// PairB = (Q7, Q15): Q15 is not amenable to incremental execution;
// PairC = (Q_A, Q_B) from Fig. 2: both less incrementable. One query's
// relative constraint is fixed at 1.0 and the other's is varied.

#include "bench_util.h"

namespace ishare {
namespace {

void RunPair(TpchDb* db, const std::string& label, QueryPlan fixed,
             QueryPlan varied, const BenchConfig& cfg) {
  const std::vector<double> levels =
      cfg.quick ? std::vector<double>{1.0, 0.1}
                : std::vector<double>{1.0, 0.5, 0.2, 0.1};
  std::printf("\n== Fig. 17%s — %s (rel=1.0) + %s (varied) ==\n",
              label.c_str(), fixed.name.c_str(), varied.name.c_str());
  TextTable t({"rel_constraint", "approach", "total_exec_s", "total_work",
               "missed_mean_%"});
  for (double level : levels) {
    std::vector<QueryPlan> queries = {fixed, varied};
    std::vector<double> rel = {1.0, level};
    Experiment ex(&db->catalog, &db->source, queries, rel, cfg.MakeOptions());
    for (Approach a : StandardApproaches()) {
      ExperimentResult r = ex.Run(a);
      t.AddRow({TextTable::Num(level, 1), ApproachName(a),
                TextTable::Num(r.total_seconds, 3),
                TextTable::Num(r.total_work, 0),
                TextTable::Num(r.MeanMissedRel(), 2)});
    }
  }
  t.Print();
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Fig. 17 — incrementability micro-benchmarks", cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});

  // PairA: two incrementable queries.
  RunPair(&db, "a", TpchQuery(db.catalog, 5, 0), TpchQuery(db.catalog, 8, 1),
          cfg);
  // PairB: incrementable Q7 varied against non-incrementable Q15 (fixed).
  RunPair(&db, "b", TpchQuery(db.catalog, 15, 0), TpchQuery(db.catalog, 7, 1),
          cfg);
  // PairC: the paper's Fig. 2 queries.
  RunPair(&db, "c", PaperQueryA(db.catalog, 0), PaperQueryB(db.catalog, 1),
          cfg);
  return FinishBench(cfg, "bench_fig17_micro_pairs", {});
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
