// Reproduces the comparison the paper describes in Sec. 2.2 and omits for
// space: enumerating candidate shared plans with the MQO optimizer and
// finding the pace configuration *holistically* for each, versus iShare's
// approach of optimizing the single MQO plan. The paper reports up to 4.6
// hours of optimization for the full TPC-H set with "similar CPU
// consumption and query latencies compared to iShare".
//
// We enumerate every partition of the query set into sharing groups (each
// group is merged by the MQO optimizer, groups stay separate), run the
// greedy pace search per candidate, and keep the best. Bell numbers make
// this explode, hence the small query-set sizes.

#include <chrono>
#include <functional>

#include "bench_util.h"

namespace ishare {
namespace {

struct Holistic {
  double best_work = 1e300;
  int plans = 0;
  double seconds = 0;
};

Holistic RunHolistic(const Catalog& catalog,
                     const std::vector<QueryPlan>& queries,
                     const std::vector<double>& rel,
                     const ApproachOptions& opts) {
  auto start = std::chrono::steady_clock::now();
  Holistic out;
  std::vector<double> abs = AbsoluteConstraints(queries, catalog, rel,
                                                opts.exec);
  int m = static_cast<int>(queries.size());
  std::vector<int> assign(m, 0);
  MqoOptimizer mqo(&catalog, opts.mqo);

  std::function<void(int, int)> rec = [&](int i, int max_block) {
    if (i == m) {
      // Merge each sharing group separately; groups stay unshared.
      std::vector<QueryPlan> roots;
      for (int b = 0; b < max_block; ++b) {
        std::vector<QueryPlan> group;
        for (int k = 0; k < m; ++k) {
          if (assign[k] == b) group.push_back(queries[k]);
        }
        std::vector<QueryPlan> merged = mqo.Merge(group);
        roots.insert(roots.end(), merged.begin(), merged.end());
      }
      SubplanGraph g = SubplanGraph::Build(roots);
      CostEstimator est(&g, &catalog, opts.exec);
      PaceOptimizer po(&est, abs, PaceOptimizerOptions{opts.max_pace});
      PaceSearchResult r = po.FindPaceConfiguration();
      out.best_work = std::min(out.best_work, r.cost.total_work);
      ++out.plans;
      return;
    }
    for (int b = 0; b <= max_block; ++b) {
      assign[i] = b;
      rec(i + 1, std::max(max_block, b + 1));
    }
  };
  rec(0, 0);
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader(
      "Holistic plan enumeration vs iShare (the Sec. 2.2 comparison)", cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});

  static constexpr int kNums[] = {5, 7, 8, 15, 18};
  int max_n = cfg.quick ? 3 : 5;

  TextTable t({"num_queries", "holistic_s", "holistic_plans",
               "holistic_best_work", "iShare_s", "iShare_work",
               "work_ratio"});
  for (int n = 2; n <= max_n; ++n) {
    std::vector<QueryPlan> queries;
    for (int i = 0; i < n; ++i) {
      queries.push_back(TpchQuery(db.catalog, kNums[i], i));
    }
    std::vector<double> rel(queries.size(), 0.2);
    ApproachOptions opts = cfg.MakeOptions();

    Holistic h = RunHolistic(db.catalog, queries, rel, opts);
    OptimizedPlan is =
        OptimizePlan(Approach::kIShare, queries, db.catalog, rel, opts);

    t.AddRow({std::to_string(n), TextTable::Num(h.seconds, 2),
              std::to_string(h.plans), TextTable::Num(h.best_work, 0),
              TextTable::Num(is.optimization_seconds, 2),
              TextTable::Num(is.est_cost.total_work, 0),
              TextTable::Num(is.est_cost.total_work /
                                 std::max(1.0, h.best_work),
                             3)});
    std::printf("n=%d done (holistic %d plans in %.1fs)\n", n, h.plans,
                h.seconds);
  }
  std::printf("\n== Holistic enumeration vs iShare ==\n");
  t.Print();
  std::printf("\nwork_ratio ~ 1 means iShare matches the exhaustive search's "
              "plan quality at a fraction of the optimization cost, as the "
              "paper reports.\n");
  return FinishBench(cfg, "bench_holistic", {});
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
