// Reproduces the experiment the paper describes but omits for space
// (Sec. 3.2): sensitivity to inaccurate cardinality estimation. The
// optimizers see a catalog whose row counts and NDVs are perturbed by
// random factors, while execution runs on the true data. The paper reports
// that iShare keeps lower CPU consumption and similar latencies than the
// baselines under misestimation; this bench checks that shape.

#include "bench_util.h"
#include "ishare/common/rng.h"

namespace ishare {
namespace {

// Perturbs every table's row count and every column's NDV by a factor in
// [1/skew, skew], log-uniformly.
Catalog PerturbCatalog(const Catalog& truth, double skew, uint64_t seed) {
  Rng rng(seed);
  Catalog out;
  auto factor = [&]() {
    double t = rng.UniformDouble(-1.0, 1.0);
    return std::pow(skew, t);
  };
  for (const std::string& name : truth.TableNames()) {
    TableStats stats = truth.GetStats(name);
    stats.row_count = std::max(1.0, stats.row_count * factor());
    for (auto& [col, cs] : stats.columns) {
      cs.ndv = std::max(1.0, cs.ndv * factor());
    }
    CHECK(out.AddTable(name, truth.GetSchema(name), std::move(stats)).ok());
  }
  return out;
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Misestimation — optimizers see perturbed statistics", cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = SharingFriendlyQueries(db.catalog);
  std::vector<double> rel(queries.size(), 0.2);

  std::vector<double> skews =
      cfg.quick ? std::vector<double>{1.0, 4.0}
                : std::vector<double>{1.0, 2.0, 4.0, 8.0};

  TextTable t({"stat_skew", "approach", "total_exec_s", "total_work",
               "missed_mean_%", "missed_max_%"});
  for (double skew : skews) {
    Catalog perturbed = PerturbCatalog(db.catalog, skew, 1000 + skew);
    for (Approach a : StandardApproaches()) {
      // Optimize against the perturbed catalog...
      OptimizedPlan plan =
          OptimizePlan(a, queries, perturbed, rel, cfg.MakeOptions());
      // ...execute on the true data, judge against true batch work.
      db.Reset();
      PaceExecutor exec(&plan.graph, &db.source, cfg.MakeOptions().exec);
      RunResult run = exec.Run(plan.paces).value();
      Experiment truth_ex(&db.catalog, &db.source, queries, rel,
                          cfg.MakeOptions());
      const std::vector<double>& bfw = truth_ex.BatchFinalWork();
      double missed_mean = 0, missed_max = 0;
      for (const QueryPlan& q : queries) {
        double goal = rel[q.id] * bfw[q.id];
        double miss = goal > 0 ? std::max(0.0, run.query_final_work[q.id] -
                                                   goal) /
                                     goal
                               : 0.0;
        missed_mean += miss;
        missed_max = std::max(missed_max, miss);
      }
      missed_mean = 100.0 * missed_mean / static_cast<double>(queries.size());
      t.AddRow({TextTable::Num(skew, 1), ApproachName(a),
                TextTable::Num(run.total_seconds, 3),
                TextTable::Num(run.total_work, 0),
                TextTable::Num(missed_mean, 2),
                TextTable::Num(100.0 * missed_max, 2)});
    }
    std::printf("skew %.1f done\n", skew);
  }
  std::printf("\n== CPU and missed latency under statistic skew ==\n");
  t.Print();
  return FinishBench(cfg, "bench_misestimation", {});
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
