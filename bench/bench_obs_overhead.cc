// Asserts the observability layer's cost contract (DESIGN.md §7): with
// instrumentation compiled in and enabled, a full optimize+execute cycle
// must run within 3% of the same binary with instrumentation disabled at
// runtime (obs::SetEnabled(false) turns every mutator into a near-free
// early return — the same hot-path shape as an ISHARE_OBS_ENABLED=0
// build). Exits non-zero on violation, so CI can gate on it.
//
// Methodology: min-of-N repetitions of an identical workload, interleaved
// enabled/disabled to cancel thermal and cache drift, with an absolute
// floor so micro-runs dominated by timer noise cannot fail spuriously.

#include <algorithm>
#include <chrono>

#include "bench_util.h"

namespace ishare {
namespace {

// One full shared-execution cycle: greedy pace search + decomposition over
// four sharing-friendly queries, then the window execution — every
// instrumented code path (estimator memo, optimizer iterations,
// decomposition rounds, subplan executions, per-query histograms) runs.
double RunOnce(TpchDb* db, const std::vector<QueryPlan>& queries,
               const BenchConfig& cfg, double* sink) {
  auto t0 = std::chrono::steady_clock::now();
  std::vector<double> rel(queries.size(), 0.2);
  Experiment ex(&db->catalog, &db->source, queries, rel, cfg.MakeOptions());
  ExperimentResult r = ex.Run(Approach::kIShare);
  *sink += r.total_work + r.MeanMissedRel();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Observability overhead — instrumented vs disabled", cfg);
  std::printf("# compiled with ISHARE_OBS_ENABLED=%d\n", ISHARE_OBS_ENABLED);

  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = {
      TpchQuery(db.catalog, 5, 0), TpchQuery(db.catalog, 7, 1),
      TpchQuery(db.catalog, 8, 2), TpchQuery(db.catalog, 9, 3)};

  const int kReps = cfg.quick ? 5 : 9;
  double sink = 0;

  // Warmup: populate allocator caches and the standalone-batch baselines'
  // code paths once per mode before timing.
  obs::SetEnabled(true);
  RunOnce(&db, queries, cfg, &sink);
  obs::SetEnabled(false);
  RunOnce(&db, queries, cfg, &sink);

  std::vector<double> on_secs, off_secs;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::SetEnabled(true);
    on_secs.push_back(RunOnce(&db, queries, cfg, &sink));
    obs::SetEnabled(false);
    off_secs.push_back(RunOnce(&db, queries, cfg, &sink));
  }
  obs::SetEnabled(true);

  double min_on = *std::min_element(on_secs.begin(), on_secs.end());
  double min_off = *std::min_element(off_secs.begin(), off_secs.end());
  double max_off = *std::max_element(off_secs.begin(), off_secs.end());
  double ratio = min_off > 0 ? min_on / min_off : 1.0;
  // Two noise guards, since a shared CI runner jitters far more than the
  // instrumentation costs: an absolute floor for micro-runs, and the
  // disabled mode's own run-to-run spread — a delta indistinguishable from
  // how much the uninstrumented runs disagree with each other is not
  // evidence of overhead.
  const double kMaxRatio = 1.03;
  const double kAbsFloorSeconds = 0.010;
  double noise = std::max(kAbsFloorSeconds, max_off - min_off);
  bool pass = ratio <= kMaxRatio || (min_on - min_off) <= noise;

  TextTable t({"mode", "min_seconds", "max_seconds"});
  t.AddRow({"obs enabled", TextTable::Num(min_on, 4),
            TextTable::Num(*std::max_element(on_secs.begin(), on_secs.end()),
                           4)});
  t.AddRow({"obs disabled", TextTable::Num(min_off, 4),
            TextTable::Num(max_off, 4)});
  t.Print();
  std::printf("\noverhead ratio %.4f (limit %.2f, noise floor %.4fs): %s\n",
              ratio, kMaxRatio, noise, pass ? "PASS" : "FAIL");
  std::printf("(checksum %.1f)\n", sink);

  int json_rc = FinishBench(cfg, "bench_obs_overhead", {});
  return (pass && json_rc == 0) ? 0 : 1;
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
