// Engine micro-benchmarks (google-benchmark): per-operator throughput of
// the shared incremental operators, plus expression evaluation and LIKE
// matching. Not a paper figure; used to sanity-check that work-unit costs
// track wall time.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "ishare/exec/aggregate.h"
#include "ishare/exec/hash_join.h"
#include "ishare/exec/phys_op.h"
#include "ishare/storage/delta_buffer.h"

// Replaceable global operator new with an allocation counter, so the
// zero-copy consume benchmark can assert that DeltaBuffer::ConsumeUpTo
// performs no allocation at all.
static std::atomic<int64_t> g_alloc_count{0};

// The replacement new is malloc-backed, so freeing in operator delete is
// correct; gcc cannot see through the replacement and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace ishare {
namespace {

Schema TwoCol() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kFloat64}});
}

DeltaBatch MakeBatch(int n, int key_range, QuerySet qs) {
  DeltaBatch b;
  b.reserve(n);
  for (int i = 0; i < n; ++i) {
    b.emplace_back(Row{Value(int64_t{i % key_range}),
                       Value(static_cast<double>(i) * 0.5)},
                   qs, 1);
  }
  return b;
}

void BM_FilterOp(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::FromIds({0, 1});
  std::map<QueryId, ExprPtr> preds;
  preds[0] = Gt(Col("v"), Lit(100.0));
  preds[1] = Lt(Col("v"), Lit(400.0));
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr node = PlanNode::MakeFilter(stub, std::move(preds), qs);
  DeltaBatch in = MakeBatch(1024, 128, qs);
  for (auto _ : state) {
    FilterOp op(node.get(), s);
    benchmark::DoNotOptimize(op.Process(0, in));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_FilterOp);

void BM_HashJoinBuildProbe(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr l = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr r = PlanNode::MakeSubplanInput(1, s, qs);
  PlanNodePtr node = PlanNode::MakeJoin(l, r, {"k"}, {"k"}, JoinType::kInner,
                                        qs);
  DeltaBatch left = MakeBatch(512, 256, qs);
  DeltaBatch right = MakeBatch(512, 256, qs);
  for (auto _ : state) {
    HashJoinOp op(node.get(), s, s);
    benchmark::DoNotOptimize(op.Process(0, left));
    benchmark::DoNotOptimize(op.Process(1, right));
  }
  state.SetItemsProcessed(state.iterations() * (left.size() + right.size()));
}
BENCHMARK(BM_HashJoinBuildProbe);

void BM_AggregateChurn(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr node = PlanNode::MakeAggregate(
      stub, {"k"}, {SumAgg(Col("v"), "total"), CountAgg("cnt")}, qs);
  int steps = static_cast<int>(state.range(0));
  DeltaBatch all = MakeBatch(1024, 64, qs);
  for (auto _ : state) {
    AggregateOp op(node.get(), s);
    size_t per = all.size() / steps;
    for (int k = 0; k < steps; ++k) {
      DeltaBatch slice(all.begin() + k * per, all.begin() + (k + 1) * per);
      op.Process(0, slice);
      benchmark::DoNotOptimize(op.EndExecution());
    }
  }
  state.SetItemsProcessed(state.iterations() * all.size());
}
BENCHMARK(BM_AggregateChurn)->Arg(1)->Arg(4)->Arg(16);

void BM_MaxRescan(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr node =
      PlanNode::MakeAggregate(stub, {}, {MaxAgg(Col("v"), "m")}, qs);
  for (auto _ : state) {
    AggregateOp op(node.get(), s);
    // Insert ascending values and repeatedly delete the max.
    for (int i = 0; i < 256; ++i) {
      op.Process(0, {DeltaTuple(Row{Value(int64_t{0}),
                                    Value(static_cast<double>(i))},
                                qs, 1)});
    }
    op.EndExecution();
    for (int i = 255; i >= 128; --i) {
      op.Process(0, {DeltaTuple(Row{Value(int64_t{0}),
                                    Value(static_cast<double>(i))},
                                qs, -1)});
      benchmark::DoNotOptimize(op.EndExecution());
    }
  }
}
BENCHMARK(BM_MaxRescan);

void BM_ConsumeZeroCopy(benchmark::State& state) {
  QuerySet qs = QuerySet::Single(0);
  DeltaBuffer buf(TwoCol(), "zc");
  buf.AppendBatch(MakeBatch(4096, 64, qs));
  for (auto _ : state) {
    state.PauseTiming();
    int c = buf.RegisterConsumer();
    state.ResumeTiming();
    int64_t before = g_alloc_count.load(std::memory_order_relaxed);
    DeltaSpan span = buf.ConsumeUpTo(c, 4096).value();
    benchmark::DoNotOptimize(span.size());
    int64_t after = g_alloc_count.load(std::memory_order_relaxed);
    CHECK_EQ(before, after) << "ConsumeUpTo must be zero-copy/zero-alloc";
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ConsumeZeroCopy);

void BM_LikeMatch(benchmark::State& state) {
  std::string text = "carefully final ironic special packages requests";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch(text, "%special%requests%"));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_CompiledExprEval(benchmark::State& state) {
  Schema s = TwoCol();
  CompiledExpr e = CompiledExpr::Compile(
      And(Gt(Col("v"), Lit(10.0)), Lt(Mul(Col("v"), Lit(2.0)), Lit(900.0))),
      s);
  Row r{Value(int64_t{1}), Value(123.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.EvalBool(r));
  }
}
BENCHMARK(BM_CompiledExprEval);

}  // namespace
}  // namespace ishare

BENCHMARK_MAIN();
