// Engine micro-benchmarks (google-benchmark): per-operator throughput of
// the shared incremental operators, plus expression evaluation, LIKE
// matching, and columnar-vs-row pairs for the vectorized execution core
// (DESIGN.md §12). Not a paper figure; used to sanity-check that
// work-unit costs track wall time.
//
// Beyond the normal google-benchmark CLI, `--speedup_gate` runs the
// paired columnar-vs-row measurements (filter, project, hash-agg,
// hash-join) with min-of-k timing and exits non-zero unless every pair
// clears the 3x floor the columnar refactor is gated on (EXPERIMENTS.md
// "Columnar vs. row operator speedups").

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <unordered_map>

#include "ishare/exec/aggregate.h"
#include "ishare/exec/hash_join.h"
#include "ishare/exec/phys_op.h"
#include "ishare/exec/vectorized.h"
#include "ishare/storage/column_batch.h"
#include "ishare/storage/delta_buffer.h"

// Replaceable global operator new with an allocation counter, so the
// zero-copy consume benchmark can assert that DeltaBuffer::ConsumeUpTo
// performs no allocation at all.
static std::atomic<int64_t> g_alloc_count{0};

// The replacement new is malloc-backed, so freeing in operator delete is
// correct; gcc cannot see through the replacement and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace ishare {
namespace {

Schema TwoCol() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kFloat64}});
}

DeltaBatch MakeBatch(int n, int key_range, QuerySet qs) {
  DeltaBatch b;
  b.reserve(n);
  for (int i = 0; i < n; ++i) {
    b.emplace_back(Row{Value(int64_t{i % key_range}),
                       Value(static_cast<double>(i) * 0.5)},
                   qs, 1);
  }
  return b;
}

void BM_FilterOp(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::FromIds({0, 1});
  std::map<QueryId, ExprPtr> preds;
  preds[0] = Gt(Col("v"), Lit(100.0));
  preds[1] = Lt(Col("v"), Lit(400.0));
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr node = PlanNode::MakeFilter(stub, std::move(preds), qs);
  DeltaBatch in = MakeBatch(1024, 128, qs);
  for (auto _ : state) {
    FilterOp op(node.get(), s);
    benchmark::DoNotOptimize(op.Process(0, in));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_FilterOp);

void BM_HashJoinBuildProbe(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr l = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr r = PlanNode::MakeSubplanInput(1, s, qs);
  PlanNodePtr node = PlanNode::MakeJoin(l, r, {"k"}, {"k"}, JoinType::kInner,
                                        qs);
  DeltaBatch left = MakeBatch(512, 256, qs);
  DeltaBatch right = MakeBatch(512, 256, qs);
  for (auto _ : state) {
    HashJoinOp op(node.get(), s, s);
    benchmark::DoNotOptimize(op.Process(0, left));
    benchmark::DoNotOptimize(op.Process(1, right));
  }
  state.SetItemsProcessed(state.iterations() * (left.size() + right.size()));
}
BENCHMARK(BM_HashJoinBuildProbe);

void BM_AggregateChurn(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr node = PlanNode::MakeAggregate(
      stub, {"k"}, {SumAgg(Col("v"), "total"), CountAgg("cnt")}, qs);
  int steps = static_cast<int>(state.range(0));
  DeltaBatch all = MakeBatch(1024, 64, qs);
  for (auto _ : state) {
    AggregateOp op(node.get(), s);
    size_t per = all.size() / steps;
    for (int k = 0; k < steps; ++k) {
      DeltaBatch slice(all.begin() + k * per, all.begin() + (k + 1) * per);
      op.Process(0, slice);
      benchmark::DoNotOptimize(op.EndExecution());
    }
  }
  state.SetItemsProcessed(state.iterations() * all.size());
}
BENCHMARK(BM_AggregateChurn)->Arg(1)->Arg(4)->Arg(16);

void BM_MaxRescan(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  PlanNodePtr node =
      PlanNode::MakeAggregate(stub, {}, {MaxAgg(Col("v"), "m")}, qs);
  for (auto _ : state) {
    AggregateOp op(node.get(), s);
    // Insert ascending values and repeatedly delete the max.
    for (int i = 0; i < 256; ++i) {
      op.Process(0, {DeltaTuple(Row{Value(int64_t{0}),
                                    Value(static_cast<double>(i))},
                                qs, 1)});
    }
    op.EndExecution();
    for (int i = 255; i >= 128; --i) {
      op.Process(0, {DeltaTuple(Row{Value(int64_t{0}),
                                    Value(static_cast<double>(i))},
                                qs, -1)});
      benchmark::DoNotOptimize(op.EndExecution());
    }
  }
}
BENCHMARK(BM_MaxRescan);

void BM_ConsumeZeroCopy(benchmark::State& state) {
  QuerySet qs = QuerySet::Single(0);
  DeltaBuffer buf(TwoCol(), "zc");
  buf.AppendBatch(MakeBatch(4096, 64, qs));
  for (auto _ : state) {
    state.PauseTiming();
    int c = buf.RegisterConsumer();
    state.ResumeTiming();
    int64_t before = g_alloc_count.load(std::memory_order_relaxed);
    DeltaSpan span = buf.ConsumeUpTo(c, 4096).value();
    benchmark::DoNotOptimize(span.size());
    int64_t after = g_alloc_count.load(std::memory_order_relaxed);
    CHECK_EQ(before, after) << "ConsumeUpTo must be zero-copy/zero-alloc";
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ConsumeZeroCopy);

// ---- Columnar-vs-row pairs (DESIGN.md §12) ------------------------------

// Shared fixtures for the paired benchmarks and the speedup gate. All
// pairs time the operator kernel itself; the one-time row<->column
// conversions at the subplan edges are excluded (they amortize over the
// whole operator chain and are measured by the pipeline benches).

PlanNodePtr FilterNode(const Schema& s, QuerySet qs) {
  std::map<QueryId, ExprPtr> preds;
  preds[0] = Gt(Col("v"), Lit(100.0));
  preds[1] = Lt(Col("v"), Lit(400.0));
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  return PlanNode::MakeFilter(stub, std::move(preds), qs);
}

PlanNodePtr ProjectNode(const Schema& s, QuerySet qs) {
  PlanNodePtr stub = PlanNode::MakeSubplanInput(0, s, qs);
  std::vector<NamedExpr> projs;
  projs.push_back({Col("k"), "k"});
  projs.push_back({Add(Mul(Col("v"), Lit(2.0)), Col("k")), "w"});
  return PlanNode::MakeProject(stub, std::move(projs), qs);
}

void BM_FilterOpColumnar(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::FromIds({0, 1});
  PlanNodePtr node = FilterNode(s, qs);
  DeltaBatch in = MakeBatch(1024, 128, qs);
  ColumnBatch cb0;
  CHECK(ColumnBatch::FromDeltas(s, in, &cb0));
  FilterOp op(node.get(), s);
  CHECK(op.SupportsColumnar(0));
  for (auto _ : state) {
    ColumnBatch cb = cb0;  // the filter consumes its input batch
    ColumnBatch out;
    op.ProcessColumnar(0, std::move(cb), &out);
    benchmark::DoNotOptimize(out.num_selected());
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_FilterOpColumnar);

void BM_ProjectOpRow(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr node = ProjectNode(s, qs);
  DeltaBatch in = MakeBatch(1024, 128, qs);
  ProjectOp op(node.get(), s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Process(0, in));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_ProjectOpRow);

void BM_ProjectOpColumnar(benchmark::State& state) {
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr node = ProjectNode(s, qs);
  DeltaBatch in = MakeBatch(1024, 128, qs);
  ColumnBatch cb0;
  CHECK(ColumnBatch::FromDeltas(s, in, &cb0));
  ProjectOp op(node.get(), s);
  CHECK(op.SupportsColumnar(0));
  for (auto _ : state) {
    ColumnBatch cb = cb0;
    ColumnBatch out;
    op.ProcessColumnar(0, std::move(cb), &out);
    benchmark::DoNotOptimize(out.num_selected());
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_ProjectOpColumnar);

void BM_HashAggRow(benchmark::State& state) {
  QuerySet qs = QuerySet::Single(0);
  DeltaBatch in = MakeBatch(4096, static_cast<int>(state.range(0)), qs);
  for (auto _ : state) {
    // The row engine's grouping idiom: Row-keyed hash map over tagged
    // Values (AggregateOp keys its groups exactly like this).
    std::unordered_map<Row, double, RowHasher> agg;
    for (const DeltaTuple& t : in) {
      agg[ExtractColumns(t.row, {0})] +=
          t.row[1].AsDouble() * static_cast<double>(t.weight);
    }
    benchmark::DoNotOptimize(agg.size());
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_HashAggRow)->Arg(64)->Arg(2048);

void BM_HashAggColumnar(benchmark::State& state) {
  QuerySet qs = QuerySet::Single(0);
  DeltaBatch in = MakeBatch(4096, static_cast<int>(state.range(0)), qs);
  ColumnBatch cb;
  CHECK(ColumnBatch::FromDeltas(TwoCol(), in, &cb));
  const std::vector<int64_t>& keys = cb.cols[0].i64();
  const std::vector<double>& vals = cb.cols[1].f64();
  for (auto _ : state) {
    ColumnarHashAgg agg;  // kAuto: picks flat or partitioned by sample
    agg.Consume(keys.data(), vals.data(), cb.weights.data(),
                static_cast<int64_t>(keys.size()));
    agg.Finish();
    benchmark::DoNotOptimize(agg.sums().size());
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_HashAggColumnar)->Arg(64)->Arg(2048);

void BM_HashJoinRowCore(benchmark::State& state) {
  QuerySet qs = QuerySet::Single(0);
  DeltaBatch build = MakeBatch(2048, 1024, qs);
  DeltaBatch probe = MakeBatch(2048, 1024, qs);
  for (auto _ : state) {
    // The row engine's join-side idiom: Row-keyed map to match lists.
    std::unordered_map<Row, std::vector<int32_t>, RowHasher> ht;
    for (size_t i = 0; i < build.size(); ++i) {
      ht[ExtractColumns(build[i].row, {0})].push_back(
          static_cast<int32_t>(i));
    }
    int64_t pairs = 0;
    for (size_t i = 0; i < probe.size(); ++i) {
      auto it = ht.find(ExtractColumns(probe[i].row, {0}));
      if (it != ht.end()) pairs += static_cast<int64_t>(it->second.size());
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * (build.size() + probe.size()));
}
BENCHMARK(BM_HashJoinRowCore);

void BM_HashJoinColumnar(benchmark::State& state) {
  QuerySet qs = QuerySet::Single(0);
  DeltaBatch build = MakeBatch(2048, 1024, qs);
  DeltaBatch probe = MakeBatch(2048, 1024, qs);
  Schema s = TwoCol();
  ColumnBatch cb_build, cb_probe;
  CHECK(ColumnBatch::FromDeltas(s, build, &cb_build));
  CHECK(ColumnBatch::FromDeltas(s, probe, &cb_probe));
  const std::vector<int64_t>& bk = cb_build.cols[0].i64();
  const std::vector<int64_t>& pk = cb_probe.cols[0].i64();
  std::vector<int32_t> bo, po;
  for (auto _ : state) {
    ColumnarHashJoin join;
    join.Build(bk.data(), static_cast<int64_t>(bk.size()));
    bo.clear();
    po.clear();
    benchmark::DoNotOptimize(
        join.Probe(pk.data(), static_cast<int64_t>(pk.size()), &bo, &po));
  }
  state.SetItemsProcessed(state.iterations() * (build.size() + probe.size()));
}
BENCHMARK(BM_HashJoinColumnar);

void BM_LikeMatch(benchmark::State& state) {
  std::string text = "carefully final ironic special packages requests";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch(text, "%special%requests%"));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_CompiledExprEval(benchmark::State& state) {
  Schema s = TwoCol();
  CompiledExpr e = CompiledExpr::Compile(
      And(Gt(Col("v"), Lit(10.0)), Lt(Mul(Col("v"), Lit(2.0)), Lit(900.0))),
      s);
  Row r{Value(int64_t{1}), Value(123.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.EvalBool(r));
  }
}
BENCHMARK(BM_CompiledExprEval);

// ---- Speedup gate (--speedup_gate) --------------------------------------

// Minimum wall time over `reps` runs after one warm-up — paired min-of-k
// is robust to scheduler noise where means are not.
template <typename F>
double MinTimeNs(F&& f, int reps = 7) {
  f();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    f();
    auto t1 = std::chrono::steady_clock::now();
    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (ns < best) best = ns;
  }
  return best;
}

struct GatePair {
  const char* name;
  double row_ns = 0;
  double col_ns = 0;
  int64_t rows = 0;

  double Speedup() const { return col_ns > 0 ? row_ns / col_ns : 0.0; }
};

GatePair GateFilter() {
  constexpr int kRows = 65536;
  Schema s = TwoCol();
  QuerySet qs = QuerySet::FromIds({0, 1});
  PlanNodePtr node = FilterNode(s, qs);
  DeltaBatch in = MakeBatch(kRows, 1024, qs);
  ColumnBatch cb0;
  CHECK(ColumnBatch::FromDeltas(s, in, &cb0));
  FilterOp row_op(node.get(), s);
  FilterOp col_op(node.get(), s);
  CHECK(col_op.SupportsColumnar(0));
  GatePair g{"filter"};
  g.rows = kRows;
  g.row_ns = MinTimeNs([&] { benchmark::DoNotOptimize(row_op.Process(0, in)); });
  g.col_ns = MinTimeNs([&] {
    ColumnBatch cb = cb0;
    ColumnBatch out;
    col_op.ProcessColumnar(0, std::move(cb), &out);
    benchmark::DoNotOptimize(out.num_selected());
  });
  return g;
}

GatePair GateProject() {
  constexpr int kRows = 65536;
  Schema s = TwoCol();
  QuerySet qs = QuerySet::Single(0);
  PlanNodePtr node = ProjectNode(s, qs);
  DeltaBatch in = MakeBatch(kRows, 1024, qs);
  ColumnBatch cb0;
  CHECK(ColumnBatch::FromDeltas(s, in, &cb0));
  ProjectOp row_op(node.get(), s);
  ProjectOp col_op(node.get(), s);
  CHECK(col_op.SupportsColumnar(0));
  GatePair g{"project"};
  g.rows = kRows;
  g.row_ns = MinTimeNs([&] { benchmark::DoNotOptimize(row_op.Process(0, in)); });
  g.col_ns = MinTimeNs([&] {
    ColumnBatch cb = cb0;
    ColumnBatch out;
    col_op.ProcessColumnar(0, std::move(cb), &out);
    benchmark::DoNotOptimize(out.num_selected());
  });
  return g;
}

GatePair GateHashAgg() {
  constexpr int kRows = 65536;
  QuerySet qs = QuerySet::Single(0);
  DeltaBatch in = MakeBatch(kRows, 4096, qs);
  ColumnBatch cb;
  CHECK(ColumnBatch::FromDeltas(TwoCol(), in, &cb));
  const std::vector<int64_t>& keys = cb.cols[0].i64();
  const std::vector<double>& vals = cb.cols[1].f64();
  GatePair g{"hash-agg"};
  g.rows = kRows;
  g.row_ns = MinTimeNs([&] {
    std::unordered_map<Row, double, RowHasher> agg;
    for (const DeltaTuple& t : in) {
      agg[ExtractColumns(t.row, {0})] +=
          t.row[1].AsDouble() * static_cast<double>(t.weight);
    }
    benchmark::DoNotOptimize(agg.size());
  });
  g.col_ns = MinTimeNs([&] {
    ColumnarHashAgg agg;
    agg.Consume(keys.data(), vals.data(), cb.weights.data(),
                static_cast<int64_t>(keys.size()));
    agg.Finish();
    benchmark::DoNotOptimize(agg.sums().size());
  });
  return g;
}

GatePair GateHashJoin() {
  constexpr int kRows = 32768;
  QuerySet qs = QuerySet::Single(0);
  DeltaBatch build = MakeBatch(kRows, 8192, qs);
  DeltaBatch probe = MakeBatch(kRows, 8192, qs);
  Schema s = TwoCol();
  ColumnBatch cb_build, cb_probe;
  CHECK(ColumnBatch::FromDeltas(s, build, &cb_build));
  CHECK(ColumnBatch::FromDeltas(s, probe, &cb_probe));
  const std::vector<int64_t>& bk = cb_build.cols[0].i64();
  const std::vector<int64_t>& pk = cb_probe.cols[0].i64();
  GatePair g{"hash-join"};
  g.rows = 2 * kRows;
  g.row_ns = MinTimeNs([&] {
    std::unordered_map<Row, std::vector<int32_t>, RowHasher> ht;
    for (size_t i = 0; i < build.size(); ++i) {
      ht[ExtractColumns(build[i].row, {0})].push_back(
          static_cast<int32_t>(i));
    }
    int64_t pairs = 0;
    for (size_t i = 0; i < probe.size(); ++i) {
      auto it = ht.find(ExtractColumns(probe[i].row, {0}));
      if (it != ht.end()) pairs += static_cast<int64_t>(it->second.size());
    }
    benchmark::DoNotOptimize(pairs);
  });
  std::vector<int32_t> bo, po;
  g.col_ns = MinTimeNs([&] {
    ColumnarHashJoin join;
    join.Build(bk.data(), static_cast<int64_t>(bk.size()));
    bo.clear();
    po.clear();
    int64_t pairs =
        join.Probe(pk.data(), static_cast<int64_t>(pk.size()), &bo, &po);
    benchmark::DoNotOptimize(pairs);
  });
  return g;
}

// Runs the four paired measurements and enforces the 3x floor. Exit code
// 0 iff every pair clears it; ci.sh bench mode runs this.
int RunSpeedupGate() {
  constexpr double kFloor = 3.0;
  GatePair pairs[] = {GateFilter(), GateProject(), GateHashAgg(),
                      GateHashJoin()};
  std::printf("%-10s %14s %14s %10s\n", "kernel", "row ns/row", "col ns/row",
              "speedup");
  bool ok = true;
  for (const GatePair& g : pairs) {
    double n = static_cast<double>(g.rows);
    std::printf("%-10s %14.2f %14.2f %9.2fx\n", g.name, g.row_ns / n,
                g.col_ns / n, g.Speedup());
    ok = ok && g.Speedup() >= kFloor;
  }
  std::printf("speedup gate (>= %.1fx on all kernels): %s\n", kFloor,
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speedup_gate") == 0) {
      return ishare::RunSpeedupGate();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
