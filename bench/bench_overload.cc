// Overload-control gate bench (DESIGN.md §9): runs the overload harness —
// unbounded working-set measurement, budget derivation, bounded re-run with
// slackness-aware shedding — over a bursty TPC-H stream, and exits non-zero
// unless every flow gate holds:
//   1. peak tracked memory stays within the derived budget;
//   2. zero-slack queries keep their final-work deadlines and are never
//      dropped from;
//   3. shed accounting balances exactly (arrived == admitted + dropped);
//   4. hard-budget drops land in descending-slack order;
//   5. a defer-only bounded run is bit-exact versus the unbounded run.
//
// Workload: three TPC-H queries with separate roots. Q5 gets an absolute
// constraint equal to its predicted final work — slack exactly zero, so
// the shedding policy must treat its whole subtree as protective. Q8 and
// Q9 get 10x headroom — slack ~0.9, first in line when the budget bites.
// The stream is perturbed with bursts (releases arrive ahead of
// schedule), which both spikes memory pressure mid-window and guarantees
// the trigger's remaining input never exceeds the clean-schedule
// prediction the zero-slack deadline was set from.

#include <memory>
#include <string>

#include "bench_util.h"
#include "ishare/harness/overload_harness.h"
#include "ishare/storage/perturbed_source.h"

namespace ishare {
namespace {

const char* PassFail(bool b) { return b ? "PASS" : "FAIL"; }

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Overload control — budget, shedding, and accounting gates",
              cfg);

  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = {TpchQuery(db.catalog, 5, 0),
                                    TpchQuery(db.catalog, 8, 1),
                                    TpchQuery(db.catalog, 9, 2)};
  SubplanGraph g = SubplanGraph::Build(queries);
  PaceConfig paces(g.num_subplans(), cfg.quick ? 10 : 12);

  // Constraints off the calibrated estimator: Q5 exactly at its predicted
  // final work (zero slack), the others with 10x headroom.
  CostEstimator est(&g, &db.catalog);
  PlanCost cost = est.Estimate(paces);
  std::vector<double> abs = {cost.query_final_work[0],
                             10.0 * cost.query_final_work[1],
                             10.0 * cost.query_final_work[2]};

  // Mid-window bursts on every table: memory pressure spikes, while the
  // remaining input at any later boundary only shrinks versus the clean
  // schedule (bursts release ahead of it, never behind).
  FaultPlan plan;
  plan.seed = cfg.seed;
  plan.events.push_back({FaultEvent::Kind::kBurst, 0.30, 0.0, 0.25, ""});
  plan.events.push_back({FaultEvent::Kind::kBurst, 0.62, 0.0, 0.20, ""});
  CHECK(plan.Validate().ok());
  SourceFactory factory = [&db, &plan]() {
    auto src = std::make_unique<PerturbedStreamSource>(plan);
    CHECK(db.source.CloneTablesInto(src.get()).ok());
    return src;
  };

  // Shed early and drain deep: deferral starts at 35% pressure (freezing
  // sheddable state growth well before the ceiling) and the drop pass
  // drains pending input to 30% so burst arrivals land in headroom.
  OverloadOptions options;
  options.policy.shed_pressure_start = 0.35;
  options.drop_pressure_target = 0.3;
  auto rep_or = RunOverload(&est, paces, abs, factory, options);
  if (!rep_or.ok()) {
    std::fprintf(stderr, "overload harness failed: %s\n",
                 rep_or.status().ToString().c_str());
    return 1;
  }
  const OverloadReport& rep = *rep_or;

  std::printf("\n== working set and budget ==\n");
  TextTable mem({"quantity", "bytes"});
  mem.AddRow({"peak unbounded",
              TextTable::Num(static_cast<double>(rep.peak_unbounded), 0)});
  mem.AddRow({"protective peak",
              TextTable::Num(static_cast<double>(rep.protective_peak), 0)});
  mem.AddRow({"derived budget",
              TextTable::Num(static_cast<double>(rep.budget_bytes), 0)});
  mem.AddRow({"peak bounded",
              TextTable::Num(static_cast<double>(rep.peak_bounded), 0)});
  mem.Print();

  std::printf(
      "\naccounting: arrived %lld = admitted %lld + dropped %lld | "
      "deferred execs %lld, backpressure events %lld, trims %lld "
      "(%lld tuples)\n",
      static_cast<long long>(rep.arrived),
      static_cast<long long>(rep.admitted),
      static_cast<long long>(rep.dropped),
      static_cast<long long>(rep.flow.shed_deferred),
      static_cast<long long>(rep.flow.backpressure_events),
      static_cast<long long>(rep.flow.trims),
      static_cast<long long>(rep.flow.trimmed_tuples));

  std::printf("\n== per-query shedding (bounded defer+drop pass) ==\n");
  TextTable qt({"query", "slack", "constraint", "final_work", "deadline",
                "deferred", "dropped"});
  for (size_t q = 0; q < rep.queries.size(); ++q) {
    const OverloadQueryReport& qr = rep.queries[q];
    qt.AddRow({queries[q].name, TextTable::Num(qr.slack, 3),
               TextTable::Num(qr.constraint, 0),
               TextTable::Num(qr.final_work, 0),
               qr.deadline_met ? "met" : "MISSED",
               TextTable::Num(static_cast<double>(qr.deferred_execs), 0),
               TextTable::Num(static_cast<double>(qr.dropped_tuples), 0)});
  }
  qt.Print();

  std::printf("\n== gates ==\n");
  TextTable gates({"gate", "verdict"});
  gates.AddRow({"peak within budget", PassFail(rep.peak_within_budget)});
  gates.AddRow(
      {"zero-slack deadlines kept", PassFail(rep.zero_slack_deadlines_kept)});
  gates.AddRow({"accounting balanced", PassFail(rep.accounting_balanced)});
  gates.AddRow(
      {"drops in descending slack", PassFail(rep.shed_order_descending)});
  gates.AddRow({"defer-only bit-exact", PassFail(rep.defer_only_bit_exact)});
  gates.Print();
  if (!rep.mismatch.empty()) {
    std::printf("first failure: %s\n", rep.mismatch.c_str());
  }
  std::printf("overall: %s\n", PassFail(rep.AllGatesPass()));

  int json_rc = FinishBench(cfg, "bench_overload", {});
  return (rep.AllGatesPass() && json_rc == 0) ? 0 : 1;
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
