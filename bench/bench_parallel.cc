// Parallel scaling of the wave scheduler (DESIGN.md §10): the iShare
// approach on all 22 TPC-H queries, executed at 1/2/4/8 worker threads.
// Two gates:
//   - determinism (always): total_work and per-query final_work must be
//     bit-identical across every thread count;
//   - speedup (only on machines with >= 4 hardware threads, and not under
//     --quick): the 4-thread run must be >= 1.8x faster than the serial
//     run. Single-core CI boxes still run the bench for the determinism
//     gate and the JSON export; the timing rows are just not meaningful
//     there.

#include <thread>

#include "bench_util.h"

namespace ishare {
namespace {

constexpr double kRequiredSpeedupAt4 = 1.8;

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Parallel scaling — iShare, 22 TPC-H queries", cfg);
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("# hardware_concurrency=%u\n", hw);

  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = AllTpchQueries(db.catalog);
  const std::vector<double> rel(queries.size(), 0.2);
  const std::vector<int> kThreads = {1, 2, 4, 8};

  std::vector<ExperimentResult> all;
  std::vector<double> seconds;
  std::printf("\n== execution time by worker threads ==\n");
  TextTable t({"threads", "total_exec_s", "speedup", "total_work"});
  for (int n : kThreads) {
    BenchConfig run_cfg = cfg;
    run_cfg.threads = n;
    Experiment ex(&db.catalog, &db.source, queries, rel,
                  run_cfg.MakeOptions());
    ExperimentResult r = ex.Run(Approach::kIShare);
    seconds.push_back(r.total_seconds);
    t.AddRow({TextTable::Num(n, 0), TextTable::Num(r.total_seconds, 3),
              TextTable::Num(seconds.front() / r.total_seconds, 2),
              TextTable::Num(r.total_work, 0)});
    all.push_back(std::move(r));
  }
  t.Print();

  // Determinism gate: the scheduler promises bit-exact results, so every
  // deterministic aggregate must match the serial run exactly.
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].total_work != all[0].total_work ||
        all[i].queries.size() != all[0].queries.size()) {
      std::fprintf(stderr, "FAIL: %d-thread run diverged from serial\n",
                   kThreads[i]);
      return 1;
    }
    for (size_t q = 0; q < all[0].queries.size(); ++q) {
      if (all[i].queries[q].final_work != all[0].queries[q].final_work) {
        std::fprintf(stderr,
                     "FAIL: %d-thread final_work diverged on %s\n",
                     kThreads[i], all[0].queries[q].name.c_str());
        return 1;
      }
    }
  }
  std::printf("# determinism gate passed (all thread counts bit-identical)\n");

  // Speedup gate: only meaningful with real cores to scale onto.
  if (hw >= 4 && !cfg.quick) {
    double speedup = seconds[0] / seconds[2];  // kThreads[2] == 4
    if (speedup < kRequiredSpeedupAt4) {
      std::fprintf(stderr, "FAIL: 4-thread speedup %.2fx < %.1fx\n", speedup,
                   kRequiredSpeedupAt4);
      return 1;
    }
    std::printf("# speedup gate passed: %.2fx at 4 threads\n", speedup);
  } else {
    std::printf("# speedup gate skipped (hw=%u quick=%d)\n", hw,
                cfg.quick ? 1 : 0);
  }

  return FinishBench(cfg, "bench_parallel", all);
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
