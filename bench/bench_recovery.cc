// Asserts the recovery layer's cost contract (DESIGN.md §8): under the
// default budget-regulated cadence, a long-running stream of trigger
// windows spends at most 5% of its execution time (beyond measurement
// noise) on checkpointing, and a full crash + restore + replay cycle
// reproduces the uninterrupted run exactly. Exits non-zero on violation,
// so CI can gate on it.
//
// Methodology: one CheckpointManager lives across the whole session, as
// it would in a deployment. The warmup window pays the one-time
// calibration checkpoint that teaches the manager its snapshot cost; the
// measured phase then runs checkpoint-off and checkpoint-on window blocks
// and gates on time the manager actually spent checkpointing (tracked in
// RecoveryStats) against the budget share of the session's wall-clock
// span, with an absolute floor so timer jitter on micro-runs cannot fail
// spuriously. An on/off window-time ratio is printed for context only. A
// second, informational section reports the unregulated cost of strict
// every-epoch checkpointing — the price the budget exists to bound.

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>

#include "bench_util.h"
#include "ishare/harness/crash_harness.h"
#include "ishare/recovery/checkpoint_manager.h"
#include "ishare/recovery/checkpoint_store.h"

namespace ishare {
namespace {

// One pace-driven window over a shared TPC-H plan. With a manager, epoch
// boundaries are offered to it (it decides affordability); without one,
// the window runs checkpoint-free.
double RunWindow(TpchDb* db, const SubplanGraph& g, const PaceConfig& paces,
                 recovery::CheckpointManager* mgr, double* sink) {
  db->source.Reset();
  PaceExecutor exec(&g, &db->source);
  if (mgr != nullptr) {
    exec.set_after_step_hook([mgr, &exec](int64_t step) {
      return mgr->OnStepComplete(step, exec);
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  RunResult r = exec.Run(paces).value();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  *sink += r.total_work;
  return secs;
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Recovery — checkpoint overhead and crash/restore cycle", cfg);

  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = {TpchQuery(db.catalog, 5, 0),
                                    TpchQuery(db.catalog, 8, 1),
                                    TpchQuery(db.catalog, 9, 2)};
  SubplanGraph g = SubplanGraph::Build(queries);
  PaceConfig paces(g.num_subplans(), 8);  // 8 steps; epoch boundaries 4, 8

  // ---- Checkpoint overhead gate (default budgeted cadence) -------------
  const int kReps = cfg.quick ? 5 : 9;
  double sink = 0;
  recovery::MemoryCheckpointStore session_store;
  recovery::CheckpointManager session_mgr(&session_store);  // defaults

  auto session_t0 = std::chrono::steady_clock::now();
  // Warmup: pays the calibration checkpoint and warms caches on both arms.
  RunWindow(&db, g, paces, &session_mgr, &sink);
  RunWindow(&db, g, paces, nullptr, &sink);
  int64_t calibration_checkpoints = session_mgr.stats().checkpoints;
  double calibration_seconds = session_mgr.stats().checkpoint_seconds;

  // Contiguous blocks rather than interleaving: the budget regulator
  // accounts wall-clock execution time, so off-windows spliced between
  // on-windows would be credited as checkpoint-free execution and skew
  // its decisions. The off block directly after warmup keeps both blocks
  // equally warm.
  std::vector<double> on_secs, off_secs;
  for (int rep = 0; rep < kReps; ++rep) {
    off_secs.push_back(RunWindow(&db, g, paces, nullptr, &sink));
  }
  for (int rep = 0; rep < kReps; ++rep) {
    on_secs.push_back(RunWindow(&db, g, paces, &session_mgr, &sink));
  }
  double session_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    session_t0)
          .count();
  double total_on = std::accumulate(on_secs.begin(), on_secs.end(), 0.0);
  double total_off = std::accumulate(off_secs.begin(), off_secs.end(), 0.0);
  double min_off = *std::min_element(off_secs.begin(), off_secs.end());
  double max_off = *std::max_element(off_secs.begin(), off_secs.end());
  double ratio = total_off > 0 ? total_on / total_off : 1.0;
  // The gate measures the regulator's invariant directly: wall-clock
  // seconds spent checkpointing after calibration must fit within the
  // 5% budget of the session's elapsed time (plus an absolute floor for
  // timer jitter on micro-runs). The on-vs-off window ratio above is
  // reported for context but differencing noisy window times is not the
  // gate — a single in-budget checkpoint concentrated in one window
  // would fail a per-window ratio while honoring the session contract.
  const double kBudget = session_mgr.options().overhead_budget;
  const double kAbsFloorSeconds = 0.010;
  double measured_ckpt_secs =
      session_mgr.stats().checkpoint_seconds - calibration_seconds;
  double allowance = kBudget * session_elapsed + kAbsFloorSeconds;
  bool overhead_pass = measured_ckpt_secs <= allowance;
  // The contract is about a regulator, not about never checkpointing:
  // the session must have calibrated (taken at least one checkpoint).
  bool calibrated = calibration_checkpoints >= 1;

  const recovery::RecoveryStats& ss = session_mgr.stats();
  TextTable t({"mode", "total_seconds", "min_window", "max_window"});
  t.AddRow({"checkpoints on", TextTable::Num(total_on, 4),
            TextTable::Num(*std::min_element(on_secs.begin(), on_secs.end()),
                           4),
            TextTable::Num(*std::max_element(on_secs.begin(), on_secs.end()),
                           4)});
  t.AddRow({"checkpoints off", TextTable::Num(total_off, 4),
            TextTable::Num(min_off, 4), TextTable::Num(max_off, 4)});
  t.Print();
  std::printf(
      "\nsession checkpoints: %lld (%lld during calibration), "
      "budget-skipped boundaries: %lld, on/off window ratio %.4f\n",
      static_cast<long long>(ss.checkpoints),
      static_cast<long long>(calibration_checkpoints),
      static_cast<long long>(ss.budget_skipped), ratio);
  std::printf(
      "checkpoint time after calibration %.4fs vs budget %.0f%% of %.4fs "
      "session = %.4fs allowed, calibrated: %s -> %s\n",
      measured_ckpt_secs, kBudget * 100, session_elapsed, allowance,
      calibrated ? "yes" : "no",
      (overhead_pass && calibrated) ? "PASS" : "FAIL");
  overhead_pass = overhead_pass && calibrated;

  // ---- Strict every-epoch cost (informational) -------------------------
  recovery::MemoryCheckpointStore strict_store;
  recovery::CheckpointManagerOptions strict_opts;
  strict_opts.overhead_budget = 0;
  recovery::CheckpointManager strict_mgr(&strict_store, strict_opts);
  double strict_secs = RunWindow(&db, g, paces, &strict_mgr, &sink);
  std::printf(
      "\nstrict cadence (budget off): %lld checkpoints, %.1f MB, window "
      "%.4fs vs %.4fs min without — the unregulated cost the budget "
      "bounds\n",
      static_cast<long long>(strict_mgr.stats().checkpoints),
      static_cast<double>(strict_mgr.stats().checkpoint_bytes) / 1e6,
      strict_secs, min_off);

  // ---- Crash + restore + replay cycle ----------------------------------
  recovery::MemoryCheckpointStore store;
  CrashRecoveryOptions copts;
  copts.store = &store;
  copts.checkpoint.epoch_len = 4;
  copts.plan = {CrashPhase::kAfterStep, 6, 0};  // between epochs 4 and 8
  SourceFactory factory = [&db]() {
    auto src = std::make_unique<StreamSource>();
    CHECK(db.source.CloneTablesInto(src.get()).ok());
    return src;
  };
  auto t0 = std::chrono::steady_clock::now();
  Result<CrashRunReport> rep = RunCrashRecoveryStatic(g, paces, factory, copts);
  double cycle_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  bool cycle_pass = rep.ok() && rep->crashed &&
                    rep->recovered_from_checkpoint && rep->Equivalent();

  std::printf("\n== crash at step %lld / %lld, restore, replay ==\n",
              static_cast<long long>(copts.plan.step),
              static_cast<long long>(rep.ok() ? rep->total_steps : 0));
  if (rep.ok()) {
    TextTable c({"quantity", "value"});
    c.AddRow({"recovered from step", TextTable::Num(
                                         static_cast<double>(rep->recovered_step), 0)});
    c.AddRow({"checkpoints taken",
              TextTable::Num(static_cast<double>(rep->recovery.checkpoints), 0)});
    c.AddRow({"checkpoint bytes",
              TextTable::Num(static_cast<double>(rep->recovery.checkpoint_bytes), 0)});
    c.AddRow({"replayed deltas",
              TextTable::Num(static_cast<double>(rep->replayed_deltas), 0)});
    c.AddRow({"cycle seconds", TextTable::Num(cycle_secs, 4)});
    c.Print();
    std::printf("bit-exact equivalence: %s%s%s\n",
                rep->Equivalent() ? "PASS" : "FAIL",
                rep->mismatch.empty() ? "" : " — ",
                rep->mismatch.c_str());
  } else {
    std::printf("crash/recovery harness failed: %s\n",
                rep.status().ToString().c_str());
  }
  std::printf("(checksum %.1f)\n", sink);

  int json_rc = FinishBench(cfg, "bench_recovery", {});
  return (overhead_pass && cycle_pass && json_rc == 0) ? 0 : 1;
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
