// Robustness under faults and misestimation: static pace replay vs the
// adaptive runtime. The optimizer sees a catalog whose statistics are
// uniformly deflated 2x (so every plan is paced too lazily), and execution
// runs through a PerturbedStreamSource with a seeded burst + stall plan.
// The static executor replays the stale schedule; the adaptive executor
// observes the work drift, re-derives paces mid-window and absorbs the
// burst with catch-up executions.
//
// Acceptance (checked at the bottom, non-zero exit on failure):
//   - adaptive max missed latency strictly below static,
//   - adaptive total work within 1.25x of static,
//   - adaptive runs are reproducible from the seeded FaultPlan.

#include "bench_util.h"
#include "ishare/exec/adaptive_executor.h"
#include "ishare/storage/perturbed_source.h"

namespace ishare {
namespace {

// Misestimation: the optimizer believes every table is `factor` times
// smaller (rows and NDVs) than it really is.
Catalog DeflateCatalog(const Catalog& truth, double factor) {
  Catalog out;
  for (const std::string& name : truth.TableNames()) {
    TableStats stats = truth.GetStats(name);
    stats.row_count = std::max(1.0, stats.row_count / factor);
    for (auto& [col, cs] : stats.columns) {
      cs.ndv = std::max(1.0, cs.ndv / factor);
    }
    CHECK(out.AddTable(name, truth.GetSchema(name), std::move(stats)).ok());
  }
  return out;
}

struct Eval {
  double total_work = 0;
  double mean_missed = 0;  // percent
  double max_missed = 0;   // percent
  int deadlines_met = 0;
};

Eval Evaluate(const RunResult& run, const std::vector<QueryPlan>& queries,
              const std::vector<double>& goals) {
  Eval e;
  e.total_work = run.total_work;
  for (const QueryPlan& q : queries) {
    double goal = goals[q.id];
    double miss =
        goal > 0
            ? std::max(0.0, run.query_final_work[q.id] - goal) / goal
            : 0.0;
    e.mean_missed += miss;
    e.max_missed = std::max(e.max_missed, miss);
    if (miss <= 0) ++e.deadlines_met;
  }
  e.mean_missed = 100.0 * e.mean_missed / static_cast<double>(queries.size());
  e.max_missed *= 100.0;
  return e;
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Robustness — static vs adaptive under burst + misestimation",
              cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries = SharingFriendlyQueries(db.catalog);
  std::vector<double> rel(queries.size(), 0.2);
  ApproachOptions opts = cfg.MakeOptions();

  // True goals: rel * measured clean batch final work per query.
  Experiment truth_ex(&db.catalog, &db.source, queries, rel, opts);
  const std::vector<double>& bfw = truth_ex.BatchFinalWork();
  std::vector<double> goals(queries.size());
  for (const QueryPlan& q : queries) goals[q.id] = rel[q.id] * bfw[q.id];

  // The optimizer plans against 2x-deflated statistics, but aims at the
  // *measured* goals (the paper's recurring-query calibration): the
  // constraints are real, the cost model is wrong, so the static schedule
  // is paced ~2x too lazily and genuinely misses.
  Catalog skewed = DeflateCatalog(db.catalog, 2.0);
  std::vector<double> rel_for_opt(queries.size());
  for (const QueryPlan& q : queries) {
    double est = EstimateStandaloneBatchWork(q, skewed, opts.exec);
    rel_for_opt[q.id] = est > 0 ? rel[q.id] * bfw[q.id] / est : rel[q.id];
  }
  OptimizedPlan plan = OptimizePlan(Approach::kIShare, queries, skewed,
                                    rel_for_opt, opts);

  // Seeded fault plan: a mid-window burst and a stall, applied identically
  // to both executors.
  FaultPlan fp;
  fp.seed = cfg.seed;
  fp.events.push_back({FaultEvent::Kind::kBurst, 0.25, 0, 0.35, ""});
  fp.events.push_back({FaultEvent::Kind::kStall, 0.6, 0.15, 0, ""});
  std::printf("# fault plan: %s\n", fp.ToString().c_str());

  // Static: replay the stale schedule.
  PerturbedStreamSource static_src(fp);
  CHECK(db.source.CloneTablesInto(&static_src).ok());
  PaceExecutor static_exec(&plan.graph, &static_src, opts.exec);
  RunResult static_run = static_exec.Run(plan.paces).value();
  Eval st = Evaluate(static_run, queries, goals);

  // Adaptive: same initial paces, same fault trace, estimator sees the
  // same skewed statistics the optimizer did.
  auto run_adaptive = [&]() {
    PerturbedStreamSource src(fp);
    CHECK(db.source.CloneTablesInto(&src).ok());
    CostEstimator est(&plan.graph, &skewed, opts.exec);
    AdaptiveExecutor exec(&est, &src, plan.abs_constraints, AdaptivePolicy(),
                          opts.exec,
                          PaceOptimizerOptions{opts.max_pace, 0});
    auto r = exec.Run(plan.paces);
    CHECK(r.ok()) << r.status().ToString();
    return std::move(r).value();
  };
  AdaptiveRunResult a1 = run_adaptive();
  AdaptiveRunResult a2 = run_adaptive();  // reproducibility probe
  Eval ad = Evaluate(a1.run, queries, goals);
  Eval ad2 = Evaluate(a2.run, queries, goals);

  TextTable t({"mode", "total_work", "total_s", "missed_mean_%",
               "missed_max_%", "deadlines", "rederive", "skipped",
               "catchup"});
  t.AddRow({"static", TextTable::Num(st.total_work, 0),
            TextTable::Num(static_run.total_seconds, 3),
            TextTable::Num(st.mean_missed, 2),
            TextTable::Num(st.max_missed, 2),
            std::to_string(st.deadlines_met) + "/" +
                std::to_string(queries.size()),
            "-", "-", "-"});
  t.AddRow({"adaptive", TextTable::Num(ad.total_work, 0),
            TextTable::Num(a1.run.total_seconds, 3),
            TextTable::Num(ad.mean_missed, 2),
            TextTable::Num(ad.max_missed, 2),
            std::to_string(ad.deadlines_met) + "/" +
                std::to_string(queries.size()),
            std::to_string(a1.stats.rederivations),
            std::to_string(a1.stats.skipped_execs),
            std::to_string(a1.stats.catchup_execs)});
  std::printf("\n== Static replay vs adaptive runtime ==\n");
  t.Print();
  std::printf("final drift ratio %.2f, re-derivation overhead %.3fs\n",
              a1.stats.drift_ratio, a1.stats.rederive_seconds);

  bool reproducible = ad.total_work == ad2.total_work &&
                      ad.max_missed == ad2.max_missed &&
                      a1.stats.rederivations == a2.stats.rederivations;
  bool lower_miss = ad.max_missed < st.max_missed;
  bool bounded_work = ad.total_work <= 1.25 * st.total_work;
  std::printf("\nreproducible=%s  lower_max_miss=%s  work_within_1.25x=%s\n",
              reproducible ? "yes" : "NO", lower_miss ? "yes" : "NO",
              bounded_work ? "yes" : "NO");
  int json_rc = FinishBench(cfg, "bench_robustness", {});
  return (reproducible && lower_miss && bounded_work && json_rc == 0) ? 0 : 1;
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
