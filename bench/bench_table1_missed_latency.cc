// Reproduces Table 1 end to end: missed latencies under random and uniform
// relative constraints (the random half over three random constraint sets
// on the 22 TPC-H queries; the uniform half over the uniform sweeps of the
// 22-query and 10-query workloads combined, as in the paper).

#include "bench_util.h"
#include "ishare/common/rng.h"

namespace ishare {
namespace {

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::Parse(argc, argv);
  PrintHeader("Table 1 — missed latencies, random + uniform constraints",
              cfg);
  TpchDb db(TpchScale{cfg.sf, cfg.seed});
  std::vector<QueryPlan> queries22 = AllTpchQueries(db.catalog);
  std::vector<QueryPlan> queries10 = SharingFriendlyQueries(db.catalog);

  const double kLevels[] = {1.0, 0.5, 0.2, 0.1};
  std::vector<ExperimentResult> random_runs;
  Rng rng(1234);
  const int kSets = cfg.quick ? 1 : 3;
  for (int set = 0; set < kSets; ++set) {
    std::vector<double> rel(queries22.size());
    for (double& r : rel) r = kLevels[rng.UniformInt(0, 3)];
    Experiment ex(&db.catalog, &db.source, queries22, rel, cfg.MakeOptions());
    for (Approach a : StandardApproaches()) {
      random_runs.push_back(ex.Run(a));
    }
  }
  PrintMissedLatencyTable("Table 1 — Random",
                          MergeByApproach(random_runs, StandardApproaches()));

  std::vector<ExperimentResult> uniform_runs;
  const std::vector<double> levels =
      cfg.quick ? std::vector<double>{0.2} : std::vector<double>{1.0, 0.5,
                                                                 0.2, 0.1};
  for (double level : levels) {
    {
      std::vector<double> rel(queries22.size(), level);
      Experiment ex(&db.catalog, &db.source, queries22, rel,
                    cfg.MakeOptions());
      for (Approach a : StandardApproaches()) {
        uniform_runs.push_back(ex.Run(a));
      }
    }
    {
      std::vector<double> rel(queries10.size(), level);
      Experiment ex(&db.catalog, &db.source, queries10, rel,
                    cfg.MakeOptions());
      for (Approach a : StandardApproaches()) {
        uniform_runs.push_back(ex.Run(a));
      }
    }
  }
  PrintMissedLatencyTable(
      "Table 1 — Uniform (22-query and 10-query workloads)",
      MergeByApproach(uniform_runs, StandardApproaches()));

  std::vector<ExperimentResult> all = std::move(random_runs);
  all.insert(all.end(), uniform_runs.begin(), uniform_runs.end());
  return FinishBench(cfg, "bench_table1_missed_latency", all);
}

}  // namespace
}  // namespace ishare

int main(int argc, char** argv) { return ishare::Main(argc, argv); }
