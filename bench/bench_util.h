#ifndef ISHARE_BENCH_BENCH_UTIL_H_
#define ISHARE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ishare/harness/experiment.h"
#include "ishare/harness/json_export.h"
#include "ishare/harness/report.h"
#include "ishare/workload/tpch_queries.h"

namespace ishare {

// Command-line knobs shared by every bench binary:
//   --sf=<double>        TPC-H scale factor (default 0.01)
//   --max_pace=<int>     J, the pace cap (default 50; paper uses 100)
//   --seed=<int>         data generator seed
//   --threads=<int>      scheduler worker threads (default 1 = serial;
//                        any value keeps results byte-identical)
//   --quick              shrink everything for a fast smoke run
//   --json=<path>        also write the structured export (json_export.h)
struct BenchConfig {
  double sf = 0.01;
  int max_pace = 50;
  uint64_t seed = 7;
  int threads = 1;
  bool quick = false;
  std::string json_path;

  static BenchConfig Parse(int argc, char** argv) {
    BenchConfig c;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--sf=", 5) == 0) {
        c.sf = std::atof(a + 5);
      } else if (std::strncmp(a, "--max_pace=", 11) == 0) {
        c.max_pace = std::atoi(a + 11);
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        c.seed = std::strtoull(a + 7, nullptr, 10);
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        c.threads = std::max(1, std::atoi(a + 10));
      } else if (std::strcmp(a, "--quick") == 0) {
        c.quick = true;
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        c.json_path = a + 7;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", a);
      }
    }
    if (c.quick) {
      c.sf = std::min(c.sf, 0.004);
      c.max_pace = std::min(c.max_pace, 16);
    }
    return c;
  }

  ApproachOptions MakeOptions() const {
    ApproachOptions o;
    o.max_pace = max_pace;
    o.exec.sched.num_threads = threads;
    return o;
  }
};

inline const std::vector<Approach>& StandardApproaches() {
  static const std::vector<Approach> kApproaches = {
      Approach::kNoShareUniform, Approach::kNoShareNonuniform,
      Approach::kShareUniform, Approach::kIShare};
  return kApproaches;
}

inline void PrintHeader(const char* what, const BenchConfig& c) {
  std::printf("# %s\n", what);
  std::printf("# sf=%.4f max_pace=%d seed=%llu threads=%d%s\n", c.sf,
              c.max_pace, static_cast<unsigned long long>(c.seed), c.threads,
              c.quick ? " (quick)" : "");
}

// The paper's Table 1/2/3 block: missed latencies per approach.
inline void PrintMissedLatencyTable(
    const std::string& title, const std::vector<ExperimentResult>& results) {
  std::printf("\n== %s ==\n", title.c_str());
  TextTable t({"approach", "Mean %", "Mean Sec.", "Max %", "Max Sec."});
  for (const ExperimentResult& r : results) {
    t.AddRow({ApproachName(r.approach), TextTable::Num(r.MeanMissedRel(), 2),
              TextTable::Num(r.MeanMissedAbs(), 4),
              TextTable::Num(r.MaxMissedRel(), 2),
              TextTable::Num(r.MaxMissedAbs(), 4)});
  }
  t.Print();
}

// Shared driver for Fig. 11 / Fig. 12 / Fig. 14-style sweeps: runs every
// approach at each uniform relative constraint and prints one row per
// (constraint, approach). Returns all results for missed-latency tables.
inline std::vector<ExperimentResult> RunUniformSweep(
    TpchDb* db, const std::vector<QueryPlan>& queries,
    const std::vector<Approach>& approaches, const BenchConfig& cfg,
    const std::string& title) {
  const std::vector<double> kLevels =
      cfg.quick ? std::vector<double>{1.0, 0.2}
                : std::vector<double>{1.0, 0.5, 0.2, 0.1};
  std::vector<ExperimentResult> all;
  std::printf("\n== %s ==\n", title.c_str());
  TextTable t({"rel_constraint", "approach", "total_exec_s", "total_work",
               "opt_s"});
  for (double level : kLevels) {
    std::vector<double> rel(queries.size(), level);
    Experiment ex(&db->catalog, &db->source, queries, rel,
                  cfg.MakeOptions());
    for (Approach a : approaches) {
      ExperimentResult r = ex.Run(a);
      t.AddRow({TextTable::Num(level, 1), ApproachName(a),
                TextTable::Num(r.total_seconds, 3),
                TextTable::Num(r.total_work, 0),
                TextTable::Num(r.optimization_seconds, 3)});
      all.push_back(std::move(r));
    }
  }
  t.Print();
  return all;
}

// Standard bench epilogue: writes the structured JSON export when the
// bench was invoked with --json=<path>. `results` are every experiment
// run the bench performed, in run order; the export also snapshots the
// global metrics registry and span aggregates accumulated over the whole
// process. Returns the bench's exit code (non-zero when the export was
// requested but could not be written).
inline int FinishBench(const BenchConfig& cfg, const std::string& bench_name,
                       const std::vector<ExperimentResult>& results) {
  if (cfg.json_path.empty()) return 0;
  BenchRunInfo info;
  info.bench = bench_name;
  info.sf = cfg.sf;
  info.max_pace = cfg.max_pace;
  info.seed = cfg.seed;
  info.threads = cfg.threads;
  info.quick = cfg.quick;
  std::string doc = BenchReportJson(info, results);
  if (doc.empty()) {
    std::fprintf(stderr, "json export failed: malformed document\n");
    return 1;
  }
  Status st = WriteBenchJson(cfg.json_path, doc);
  if (!st.ok()) {
    std::fprintf(stderr, "json export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("# json export written to %s\n", cfg.json_path.c_str());
  return 0;
}

// Merges per-approach results (across constraint levels) for Table 1-style
// missed-latency aggregation.
inline std::vector<ExperimentResult> MergeByApproach(
    const std::vector<ExperimentResult>& results,
    const std::vector<Approach>& approaches) {
  std::vector<ExperimentResult> merged;
  for (Approach a : approaches) {
    ExperimentResult m;
    m.approach = a;
    for (const ExperimentResult& r : results) {
      if (r.approach != a) continue;
      m.queries.insert(m.queries.end(), r.queries.begin(), r.queries.end());
    }
    merged.push_back(std::move(m));
  }
  return merged;
}

}  // namespace ishare

#endif  // ISHARE_BENCH_BENCH_UTIL_H_
