file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_random_constraints.dir/bench_fig09_random_constraints.cc.o"
  "CMakeFiles/bench_fig09_random_constraints.dir/bench_fig09_random_constraints.cc.o.d"
  "bench_fig09_random_constraints"
  "bench_fig09_random_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_random_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
