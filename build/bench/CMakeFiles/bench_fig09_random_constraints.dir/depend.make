# Empty dependencies file for bench_fig09_random_constraints.
# This may be replaced when dependencies are built.
