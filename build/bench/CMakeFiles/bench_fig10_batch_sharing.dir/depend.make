# Empty dependencies file for bench_fig10_batch_sharing.
# This may be replaced when dependencies are built.
