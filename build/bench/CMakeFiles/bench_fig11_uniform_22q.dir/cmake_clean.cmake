file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_uniform_22q.dir/bench_fig11_uniform_22q.cc.o"
  "CMakeFiles/bench_fig11_uniform_22q.dir/bench_fig11_uniform_22q.cc.o.d"
  "bench_fig11_uniform_22q"
  "bench_fig11_uniform_22q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_uniform_22q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
