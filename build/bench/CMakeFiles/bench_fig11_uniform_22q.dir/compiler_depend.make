# Empty compiler generated dependencies file for bench_fig11_uniform_22q.
# This may be replaced when dependencies are built.
