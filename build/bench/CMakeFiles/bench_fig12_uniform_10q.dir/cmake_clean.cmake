file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_uniform_10q.dir/bench_fig12_uniform_10q.cc.o"
  "CMakeFiles/bench_fig12_uniform_10q.dir/bench_fig12_uniform_10q.cc.o.d"
  "bench_fig12_uniform_10q"
  "bench_fig12_uniform_10q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_uniform_10q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
