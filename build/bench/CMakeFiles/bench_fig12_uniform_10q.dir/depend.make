# Empty dependencies file for bench_fig12_uniform_10q.
# This may be replaced when dependencies are built.
