file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_tuned_paces.dir/bench_fig13_tuned_paces.cc.o"
  "CMakeFiles/bench_fig13_tuned_paces.dir/bench_fig13_tuned_paces.cc.o.d"
  "bench_fig13_tuned_paces"
  "bench_fig13_tuned_paces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tuned_paces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
