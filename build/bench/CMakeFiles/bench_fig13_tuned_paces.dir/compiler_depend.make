# Empty compiler generated dependencies file for bench_fig13_tuned_paces.
# This may be replaced when dependencies are built.
