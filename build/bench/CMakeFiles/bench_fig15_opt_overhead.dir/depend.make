# Empty dependencies file for bench_fig15_opt_overhead.
# This may be replaced when dependencies are built.
