file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_micro_pairs.dir/bench_fig17_micro_pairs.cc.o"
  "CMakeFiles/bench_fig17_micro_pairs.dir/bench_fig17_micro_pairs.cc.o.d"
  "bench_fig17_micro_pairs"
  "bench_fig17_micro_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_micro_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
