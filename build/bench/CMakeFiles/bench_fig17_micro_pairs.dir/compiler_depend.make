# Empty compiler generated dependencies file for bench_fig17_micro_pairs.
# This may be replaced when dependencies are built.
