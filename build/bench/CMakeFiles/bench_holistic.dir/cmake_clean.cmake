file(REMOVE_RECURSE
  "CMakeFiles/bench_holistic.dir/bench_holistic.cc.o"
  "CMakeFiles/bench_holistic.dir/bench_holistic.cc.o.d"
  "bench_holistic"
  "bench_holistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_holistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
