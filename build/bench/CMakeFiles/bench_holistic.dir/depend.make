# Empty dependencies file for bench_holistic.
# This may be replaced when dependencies are built.
