file(REMOVE_RECURSE
  "CMakeFiles/bench_misestimation.dir/bench_misestimation.cc.o"
  "CMakeFiles/bench_misestimation.dir/bench_misestimation.cc.o.d"
  "bench_misestimation"
  "bench_misestimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misestimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
