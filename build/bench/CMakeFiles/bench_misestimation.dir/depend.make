# Empty dependencies file for bench_misestimation.
# This may be replaced when dependencies are built.
