file(REMOVE_RECURSE
  "CMakeFiles/dashboard_deadlines.dir/dashboard_deadlines.cpp.o"
  "CMakeFiles/dashboard_deadlines.dir/dashboard_deadlines.cpp.o.d"
  "dashboard_deadlines"
  "dashboard_deadlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashboard_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
