# Empty compiler generated dependencies file for dashboard_deadlines.
# This may be replaced when dependencies are built.
