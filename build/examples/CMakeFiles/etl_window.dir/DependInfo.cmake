
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/etl_window.cpp" "examples/CMakeFiles/etl_window.dir/etl_window.cpp.o" "gcc" "examples/CMakeFiles/etl_window.dir/etl_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ishare/harness/CMakeFiles/ishare_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/workload/CMakeFiles/ishare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/opt/CMakeFiles/ishare_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/mqo/CMakeFiles/ishare_mqo.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/cost/CMakeFiles/ishare_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/exec/CMakeFiles/ishare_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/plan/CMakeFiles/ishare_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/expr/CMakeFiles/ishare_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/catalog/CMakeFiles/ishare_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/types/CMakeFiles/ishare_types.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/common/CMakeFiles/ishare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
