file(REMOVE_RECURSE
  "CMakeFiles/etl_window.dir/etl_window.cpp.o"
  "CMakeFiles/etl_window.dir/etl_window.cpp.o.d"
  "etl_window"
  "etl_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etl_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
