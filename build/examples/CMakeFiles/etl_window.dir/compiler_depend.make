# Empty compiler generated dependencies file for etl_window.
# This may be replaced when dependencies are built.
