file(REMOVE_RECURSE
  "CMakeFiles/explain_decomposition.dir/explain_decomposition.cpp.o"
  "CMakeFiles/explain_decomposition.dir/explain_decomposition.cpp.o.d"
  "explain_decomposition"
  "explain_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
