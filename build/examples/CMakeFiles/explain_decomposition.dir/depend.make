# Empty dependencies file for explain_decomposition.
# This may be replaced when dependencies are built.
