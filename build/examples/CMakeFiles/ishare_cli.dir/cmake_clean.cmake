file(REMOVE_RECURSE
  "CMakeFiles/ishare_cli.dir/ishare_cli.cpp.o"
  "CMakeFiles/ishare_cli.dir/ishare_cli.cpp.o.d"
  "ishare_cli"
  "ishare_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
