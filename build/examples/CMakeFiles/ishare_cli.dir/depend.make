# Empty dependencies file for ishare_cli.
# This may be replaced when dependencies are built.
