# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("ishare/common")
subdirs("ishare/types")
subdirs("ishare/expr")
subdirs("ishare/catalog")
subdirs("ishare/storage")
subdirs("ishare/plan")
subdirs("ishare/exec")
subdirs("ishare/cost")
subdirs("ishare/mqo")
subdirs("ishare/opt")
subdirs("ishare/workload")
subdirs("ishare/harness")
