file(REMOVE_RECURSE
  "CMakeFiles/ishare_catalog.dir/catalog.cc.o"
  "CMakeFiles/ishare_catalog.dir/catalog.cc.o.d"
  "libishare_catalog.a"
  "libishare_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
