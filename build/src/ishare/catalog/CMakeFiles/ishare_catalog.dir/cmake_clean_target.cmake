file(REMOVE_RECURSE
  "libishare_catalog.a"
)
