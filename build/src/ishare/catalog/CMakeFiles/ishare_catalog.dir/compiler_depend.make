# Empty compiler generated dependencies file for ishare_catalog.
# This may be replaced when dependencies are built.
