file(REMOVE_RECURSE
  "CMakeFiles/ishare_common.dir/status.cc.o"
  "CMakeFiles/ishare_common.dir/status.cc.o.d"
  "libishare_common.a"
  "libishare_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
