file(REMOVE_RECURSE
  "libishare_common.a"
)
