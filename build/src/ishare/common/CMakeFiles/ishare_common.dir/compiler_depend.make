# Empty compiler generated dependencies file for ishare_common.
# This may be replaced when dependencies are built.
