file(REMOVE_RECURSE
  "CMakeFiles/ishare_cost.dir/estimator.cc.o"
  "CMakeFiles/ishare_cost.dir/estimator.cc.o.d"
  "CMakeFiles/ishare_cost.dir/selectivity.cc.o"
  "CMakeFiles/ishare_cost.dir/selectivity.cc.o.d"
  "CMakeFiles/ishare_cost.dir/simulator.cc.o"
  "CMakeFiles/ishare_cost.dir/simulator.cc.o.d"
  "libishare_cost.a"
  "libishare_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
