file(REMOVE_RECURSE
  "libishare_cost.a"
)
