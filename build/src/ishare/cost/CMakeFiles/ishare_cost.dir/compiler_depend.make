# Empty compiler generated dependencies file for ishare_cost.
# This may be replaced when dependencies are built.
