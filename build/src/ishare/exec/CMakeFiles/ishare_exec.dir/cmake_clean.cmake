file(REMOVE_RECURSE
  "CMakeFiles/ishare_exec.dir/aggregate.cc.o"
  "CMakeFiles/ishare_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/ishare_exec.dir/hash_join.cc.o"
  "CMakeFiles/ishare_exec.dir/hash_join.cc.o.d"
  "CMakeFiles/ishare_exec.dir/pace_executor.cc.o"
  "CMakeFiles/ishare_exec.dir/pace_executor.cc.o.d"
  "CMakeFiles/ishare_exec.dir/phys_op.cc.o"
  "CMakeFiles/ishare_exec.dir/phys_op.cc.o.d"
  "CMakeFiles/ishare_exec.dir/subplan_exec.cc.o"
  "CMakeFiles/ishare_exec.dir/subplan_exec.cc.o.d"
  "libishare_exec.a"
  "libishare_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
