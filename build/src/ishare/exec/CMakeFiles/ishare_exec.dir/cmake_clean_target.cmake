file(REMOVE_RECURSE
  "libishare_exec.a"
)
