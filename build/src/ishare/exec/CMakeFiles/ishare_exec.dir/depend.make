# Empty dependencies file for ishare_exec.
# This may be replaced when dependencies are built.
