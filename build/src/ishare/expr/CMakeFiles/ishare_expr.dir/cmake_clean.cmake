file(REMOVE_RECURSE
  "CMakeFiles/ishare_expr.dir/expr.cc.o"
  "CMakeFiles/ishare_expr.dir/expr.cc.o.d"
  "libishare_expr.a"
  "libishare_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
