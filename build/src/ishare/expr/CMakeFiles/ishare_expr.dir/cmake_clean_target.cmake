file(REMOVE_RECURSE
  "libishare_expr.a"
)
