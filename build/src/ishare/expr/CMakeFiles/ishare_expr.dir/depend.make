# Empty dependencies file for ishare_expr.
# This may be replaced when dependencies are built.
