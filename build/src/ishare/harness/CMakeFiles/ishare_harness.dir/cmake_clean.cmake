file(REMOVE_RECURSE
  "CMakeFiles/ishare_harness.dir/experiment.cc.o"
  "CMakeFiles/ishare_harness.dir/experiment.cc.o.d"
  "CMakeFiles/ishare_harness.dir/report.cc.o"
  "CMakeFiles/ishare_harness.dir/report.cc.o.d"
  "libishare_harness.a"
  "libishare_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
