file(REMOVE_RECURSE
  "libishare_harness.a"
)
