# Empty compiler generated dependencies file for ishare_harness.
# This may be replaced when dependencies are built.
