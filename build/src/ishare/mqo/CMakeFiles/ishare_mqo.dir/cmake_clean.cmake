file(REMOVE_RECURSE
  "CMakeFiles/ishare_mqo.dir/mqo_optimizer.cc.o"
  "CMakeFiles/ishare_mqo.dir/mqo_optimizer.cc.o.d"
  "libishare_mqo.a"
  "libishare_mqo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_mqo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
