file(REMOVE_RECURSE
  "libishare_mqo.a"
)
