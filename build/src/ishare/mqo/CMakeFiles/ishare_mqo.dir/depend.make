# Empty dependencies file for ishare_mqo.
# This may be replaced when dependencies are built.
