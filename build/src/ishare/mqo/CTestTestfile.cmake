# CMake generated Testfile for 
# Source directory: /root/repo/src/ishare/mqo
# Build directory: /root/repo/build/src/ishare/mqo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
