file(REMOVE_RECURSE
  "CMakeFiles/ishare_opt.dir/approaches.cc.o"
  "CMakeFiles/ishare_opt.dir/approaches.cc.o.d"
  "CMakeFiles/ishare_opt.dir/decomposition.cc.o"
  "CMakeFiles/ishare_opt.dir/decomposition.cc.o.d"
  "CMakeFiles/ishare_opt.dir/pace_optimizer.cc.o"
  "CMakeFiles/ishare_opt.dir/pace_optimizer.cc.o.d"
  "libishare_opt.a"
  "libishare_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
