file(REMOVE_RECURSE
  "libishare_opt.a"
)
