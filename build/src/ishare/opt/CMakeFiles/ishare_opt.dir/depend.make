# Empty dependencies file for ishare_opt.
# This may be replaced when dependencies are built.
