file(REMOVE_RECURSE
  "CMakeFiles/ishare_plan.dir/explain.cc.o"
  "CMakeFiles/ishare_plan.dir/explain.cc.o.d"
  "CMakeFiles/ishare_plan.dir/plan.cc.o"
  "CMakeFiles/ishare_plan.dir/plan.cc.o.d"
  "CMakeFiles/ishare_plan.dir/subplan_graph.cc.o"
  "CMakeFiles/ishare_plan.dir/subplan_graph.cc.o.d"
  "libishare_plan.a"
  "libishare_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
