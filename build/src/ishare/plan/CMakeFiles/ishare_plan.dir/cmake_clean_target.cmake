file(REMOVE_RECURSE
  "libishare_plan.a"
)
