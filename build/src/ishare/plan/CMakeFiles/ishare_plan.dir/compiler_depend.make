# Empty compiler generated dependencies file for ishare_plan.
# This may be replaced when dependencies are built.
