file(REMOVE_RECURSE
  "CMakeFiles/ishare_types.dir/schema.cc.o"
  "CMakeFiles/ishare_types.dir/schema.cc.o.d"
  "CMakeFiles/ishare_types.dir/value.cc.o"
  "CMakeFiles/ishare_types.dir/value.cc.o.d"
  "libishare_types.a"
  "libishare_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
