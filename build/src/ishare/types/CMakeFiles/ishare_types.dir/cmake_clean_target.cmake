file(REMOVE_RECURSE
  "libishare_types.a"
)
