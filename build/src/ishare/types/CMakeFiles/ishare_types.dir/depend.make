# Empty dependencies file for ishare_types.
# This may be replaced when dependencies are built.
