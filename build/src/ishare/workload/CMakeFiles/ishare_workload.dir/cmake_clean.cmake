file(REMOVE_RECURSE
  "CMakeFiles/ishare_workload.dir/tpch.cc.o"
  "CMakeFiles/ishare_workload.dir/tpch.cc.o.d"
  "CMakeFiles/ishare_workload.dir/tpch_queries.cc.o"
  "CMakeFiles/ishare_workload.dir/tpch_queries.cc.o.d"
  "libishare_workload.a"
  "libishare_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
