file(REMOVE_RECURSE
  "libishare_workload.a"
)
