# Empty dependencies file for ishare_workload.
# This may be replaced when dependencies are built.
