file(REMOVE_RECURSE
  "CMakeFiles/exec_delta_test.dir/exec_delta_test.cc.o"
  "CMakeFiles/exec_delta_test.dir/exec_delta_test.cc.o.d"
  "exec_delta_test"
  "exec_delta_test.pdb"
  "exec_delta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
