file(REMOVE_RECURSE
  "CMakeFiles/exec_operator_test.dir/exec_operator_test.cc.o"
  "CMakeFiles/exec_operator_test.dir/exec_operator_test.cc.o.d"
  "exec_operator_test"
  "exec_operator_test.pdb"
  "exec_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
