file(REMOVE_RECURSE
  "CMakeFiles/exec_pace_test.dir/exec_pace_test.cc.o"
  "CMakeFiles/exec_pace_test.dir/exec_pace_test.cc.o.d"
  "exec_pace_test"
  "exec_pace_test.pdb"
  "exec_pace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_pace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
