# Empty compiler generated dependencies file for exec_pace_test.
# This may be replaced when dependencies are built.
