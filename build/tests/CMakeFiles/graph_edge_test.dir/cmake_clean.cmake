file(REMOVE_RECURSE
  "CMakeFiles/graph_edge_test.dir/graph_edge_test.cc.o"
  "CMakeFiles/graph_edge_test.dir/graph_edge_test.cc.o.d"
  "graph_edge_test"
  "graph_edge_test.pdb"
  "graph_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
