file(REMOVE_RECURSE
  "CMakeFiles/mqo_test.dir/mqo_test.cc.o"
  "CMakeFiles/mqo_test.dir/mqo_test.cc.o.d"
  "mqo_test"
  "mqo_test.pdb"
  "mqo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
