file(REMOVE_RECURSE
  "CMakeFiles/tpch_semantics_test.dir/tpch_semantics_test.cc.o"
  "CMakeFiles/tpch_semantics_test.dir/tpch_semantics_test.cc.o.d"
  "tpch_semantics_test"
  "tpch_semantics_test.pdb"
  "tpch_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
