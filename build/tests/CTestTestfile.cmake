# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/exec_operator_test[1]_include.cmake")
include("/root/repo/build/tests/exec_pace_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/mqo_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/exec_delta_test[1]_include.cmake")
include("/root/repo/build/tests/decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/graph_edge_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_semantics_test[1]_include.cmake")
