#!/usr/bin/env bash
# Local CI entry point. Mirrors .github/workflows/ci.yml:
#   ./ci.sh           -> configure + build + ctest (default preset)
#   ./ci.sh asan      -> same under -fsanitize=address,undefined
#   ./ci.sh ubsan     -> same under standalone -fsanitize=undefined (no recovery)
#   ./ci.sh tsan      -> concurrency tests only under -fsanitize=thread
#   ./ci.sh noobs     -> same with ISHARE_OBS_ENABLED=OFF (obs compiled out)
#   ./ci.sh bench     -> quick benchmark gates (non-zero on failure)
#   ./ci.sh docs      -> markdown link check
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-default}"

case "$mode" in
  default|asan|ubsan|noobs)
    cmake --preset "$mode"
    cmake --build --preset "$mode" -j "$(nproc)"
    ctest --preset "$mode"
    ;;
  tsan)
    # Only the suites that actually spawn threads: the worker pool and
    # wave scheduler (sched_test), the shedding/overload runtime whose
    # buffers carry the single-writer/multi-reader contract (flow_test),
    # the DeltaBuffer concurrent-append regression (storage_test), and
    # the chaos suite whose worker-stall injection and mid-wave crash
    # cycles run parallel waves under fault (chaos_test,
    # crash_recovery_test), and the columnar-vs-row equivalence property
    # whose 4-thread seeds drive the columnar pump through the morsel
    # scheduler (columnar_test). Running the whole serial suite under
    # tsan would cost ~10x wall clock without exercising a single
    # cross-thread access.
    cmake --preset tsan
    cmake --build --preset tsan -j "$(nproc)" \
      --target sched_test flow_test storage_test chaos_test \
      crash_recovery_test columnar_test
    ./build-tsan/tests/sched_test
    ./build-tsan/tests/flow_test
    ./build-tsan/tests/storage_test
    ./build-tsan/tests/chaos_test
    ./build-tsan/tests/crash_recovery_test
    ./build-tsan/tests/columnar_test --gtest_filter='ColumnarEquivalence.*'
    ;;
  bench)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" \
      --target bench_robustness bench_operators bench_obs_overhead bench_recovery bench_overload bench_chaos
    ./build/bench/bench_robustness --quick
    ./build/bench/bench_operators --benchmark_filter=ConsumeZeroCopy --benchmark_min_time=0.05
    ./build/bench/bench_operators --speedup_gate
    ./build/bench/bench_obs_overhead --quick
    ./build/bench/bench_recovery --quick
    ./build/bench/bench_overload --quick
    ./build/bench/bench_chaos --quick
    ;;
  docs)
    python3 tools/check_md_links.py
    ;;
  *)
    echo "usage: $0 [default|asan|ubsan|tsan|noobs|bench|docs]" >&2
    exit 2
    ;;
esac
