#!/usr/bin/env bash
# Local CI entry point. Mirrors .github/workflows/ci.yml:
#   ./ci.sh           -> configure + build + ctest (default preset)
#   ./ci.sh asan      -> same under -fsanitize=address,undefined
#   ./ci.sh bench     -> quick robustness benchmark gate (non-zero on failure)
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-default}"

case "$mode" in
  default|asan)
    cmake --preset "$mode"
    cmake --build --preset "$mode" -j "$(nproc)"
    ctest --preset "$mode"
    ;;
  bench)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target bench_robustness bench_operators
    ./build/bench/bench_robustness --quick
    ./build/bench/bench_operators --benchmark_filter=ConsumeZeroCopy --benchmark_min_time=0.05
    ;;
  *)
    echo "usage: $0 [default|asan|bench]" >&2
    exit 2
    ;;
esac
