#!/usr/bin/env bash
# Local CI entry point. Mirrors .github/workflows/ci.yml:
#   ./ci.sh           -> configure + build + ctest (default preset)
#   ./ci.sh asan      -> same under -fsanitize=address,undefined
#   ./ci.sh ubsan     -> same under standalone -fsanitize=undefined (no recovery)
#   ./ci.sh noobs     -> same with ISHARE_OBS_ENABLED=OFF (obs compiled out)
#   ./ci.sh bench     -> quick benchmark gates (non-zero on failure)
#   ./ci.sh docs      -> markdown link check
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-default}"

case "$mode" in
  default|asan|ubsan|noobs)
    cmake --preset "$mode"
    cmake --build --preset "$mode" -j "$(nproc)"
    ctest --preset "$mode"
    ;;
  bench)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" \
      --target bench_robustness bench_operators bench_obs_overhead bench_recovery bench_overload
    ./build/bench/bench_robustness --quick
    ./build/bench/bench_operators --benchmark_filter=ConsumeZeroCopy --benchmark_min_time=0.05
    ./build/bench/bench_obs_overhead --quick
    ./build/bench/bench_recovery --quick
    ./build/bench/bench_overload --quick
    ;;
  docs)
    python3 tools/check_md_links.py
    ;;
  *)
    echo "usage: $0 [default|asan|ubsan|noobs|bench|docs]" >&2
    exit 2
    ;;
esac
