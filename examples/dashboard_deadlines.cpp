// Scenario from the paper's introduction: several daily dashboard reports
// are scheduled over the same TPC-H-style data load, but with different
// deadlines — some reports are due right after the load completes, others
// hours later. This example shows how the choice of execution strategy
// changes total CPU consumption, comparing all four approaches.
//
//   ./build/examples/dashboard_deadlines

#include <cstdio>

#include "ishare/harness/experiment.h"
#include "ishare/harness/report.h"
#include "ishare/workload/tpch_queries.h"

using namespace ishare;

int main() {
  std::printf("Generating the daily load (synthetic TPC-H, SF 0.01)...\n");
  TpchDb db(TpchScale{0.01, 123});

  // Five dashboard reports over the same load. Q3/Q5/Q10 power a morning
  // dashboard due immediately (tight constraints); Q1 and Q18 feed a weekly
  // rollup that can lag (loose constraints).
  std::vector<QueryPlan> reports = {
      TpchQuery(db.catalog, 3, 0),   // shipping priority — due at 7am
      TpchQuery(db.catalog, 5, 1),   // local supplier volume — due at 7am
      TpchQuery(db.catalog, 10, 2),  // returned items — due at 8am
      TpchQuery(db.catalog, 1, 3),   // pricing summary — due at noon
      TpchQuery(db.catalog, 18, 4),  // large volume customers — due at noon
  };
  std::vector<double> deadlines = {0.1, 0.1, 0.2, 1.0, 1.0};

  Experiment ex(&db.catalog, &db.source, reports, deadlines);
  std::vector<ExperimentResult> results;
  for (Approach a : {Approach::kNoShareUniform, Approach::kNoShareNonuniform,
                     Approach::kShareUniform, Approach::kIShare}) {
    std::printf("running %s...\n", ApproachName(a));
    results.push_back(ex.Run(a));
  }
  PrintApproachComparison("Dashboard reports with mixed deadlines", results);

  const ExperimentResult& ishare = results.back();
  std::printf("\nPer-report latency goals vs. achieved (iShare):\n");
  TextTable t({"report", "goal_work", "final_work", "met"});
  for (const QueryMetrics& q : ishare.queries) {
    t.AddRow({q.name, TextTable::Num(q.final_work_goal, 0),
              TextTable::Num(q.final_work, 0),
              q.final_work <= q.final_work_goal * 1.001 ? "yes" : "MISSED"});
  }
  t.Print();
  return 0;
}
