// Scheduled-ETL scenario: the same fact stream feeds several materialized
// rollups with different freshness requirements. Demonstrates driving the
// engine manually — advancing the stream, executing subplans at their own
// paces, and inspecting the delta buffers — i.e. the lower-level API below
// Experiment/OptimizePlan.
//
//   ./build/examples/etl_window

#include <cstdio>

#include "ishare/exec/pace_executor.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/common/rng.h"
#include "ishare/plan/builder.h"

using namespace ishare;

int main() {
  // Clickstream facts loaded over one trigger window.
  Schema clicks({{"click_id", DataType::kInt64},
                 {"page", DataType::kInt64},
                 {"user_id", DataType::kInt64},
                 {"dwell_ms", DataType::kFloat64}});
  std::vector<Row> rows;
  Rng rng(99);
  for (int64_t i = 0; i < 30000; ++i) {
    rows.push_back({Value(i), Value(rng.UniformInt(0, 199)),
                    Value(rng.UniformInt(0, 999)),
                    Value(rng.UniformDouble(10.0, 60000.0))});
  }
  Catalog catalog;
  CHECK(catalog.AddTable("clicks", clicks, ComputeTableStats(clicks, rows))
            .ok());
  StreamSource source;
  source.AddTable("clicks", clicks, std::move(rows));

  // Rollup 1 (fresh): per-page click counts, maintained eagerly.
  PlanBuilder b0(&catalog, 0);
  QueryPlan page_counts{0, "page_counts",
                        b0.Aggregate(b0.ScanFiltered("clicks", nullptr),
                                     {"page"},
                                     {CountAgg("clicks"),
                                      SumAgg(Col("dwell_ms"), "dwell")})};

  // Rollup 2 (lazy): per-user engagement, computed once at the trigger.
  PlanBuilder b1(&catalog, 1);
  QueryPlan user_engagement{
      1, "user_engagement",
      b1.Aggregate(b1.ScanFiltered("clicks", nullptr), {"user_id"},
                   {CountAgg("clicks"), AvgAgg(Col("dwell_ms"), "avg_dwell")})};

  MqoOptimizer mqo(&catalog);
  SubplanGraph graph =
      SubplanGraph::Build(mqo.Merge({page_counts, user_engagement}));
  CHECK(graph.Validate().ok());
  std::printf("shared plan:\n%s\n", graph.ToString().c_str());

  // Manual pace choice: shared scan + fresh rollup at pace 10 (every 10%
  // of the load), lazy rollup at pace 1 (once, at the trigger point).
  PaceConfig paces(graph.num_subplans(), 1);
  paces[graph.query_root(0)] = 10;
  for (int c : graph.subplan(graph.query_root(0)).children) paces[c] = 10;

  PaceExecutor exec(&graph, &source);
  RunResult run = exec.Run(paces).value();

  std::printf("executions per subplan:");
  for (const SubplanRunStats& s : run.subplans) {
    std::printf(" %zu", s.work_per_exec.size());
  }
  std::printf("\ntotal work %.0f; page_counts final work %.0f; "
              "user_engagement final work %.0f\n",
              run.total_work, run.query_final_work[0],
              run.query_final_work[1]);

  auto fresh = MaterializeResult(*exec.query_output(0), 0);
  auto lazy = MaterializeResult(*exec.query_output(1), 1);
  std::printf("page_counts rows: %zu, user_engagement rows: %zu\n",
              fresh.size(), lazy.size());
  return 0;
}
