// Walks through the paper's Fig. 2 example end to end and prints every
// intermediate artifact: the two SQL-equivalent plans Q_A and Q_B, the
// MQO-merged shared plan, the subplan graph with the pace configuration
// iShare finds, and the decomposed plan when the constraints diverge —
// showing exactly when iShare decides to "unshare".
//
//   ./build/examples/explain_decomposition

#include <cstdio>

#include "ishare/harness/experiment.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/plan/explain.h"
#include "ishare/workload/tpch_queries.h"

using namespace ishare;

namespace {

void ShowPlan(const char* title, const OptimizedPlan& plan) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%s", plan.graph.ToString().c_str());
  std::printf("paces: ");
  for (int p : plan.paces) std::printf("%d ", p);
  std::printf("\nestimated total work: %.0f\n", plan.est_cost.total_work);
}

}  // namespace

int main() {
  TpchDb db(TpchScale{0.01, 7});

  QueryPlan qa = PaperQueryA(db.catalog, 0);
  QueryPlan qb = PaperQueryB(db.catalog, 1);
  std::printf("=== Q_A (single-query plan) ===\n%s",
              qa.root->TreeString().c_str());
  std::printf("\n=== Q_B (single-query plan) ===\n%s",
              qb.root->TreeString().c_str());

  MqoOptimizer mqo(&db.catalog);
  std::vector<QueryPlan> merged = mqo.Merge({qa, qb});
  SubplanGraph shared = SubplanGraph::Build(merged);
  std::printf("\n=== MQO-merged shared plan (Fig. 2's Q_AB) ===\n%s",
              shared.ToString().c_str());
  std::printf("\n=== Graphviz (paste into a DOT viewer) ===\n%s",
              ToDot(shared).c_str());

  // Case 1: both queries lazy — iShare keeps the shared plan at pace 1.
  {
    OptimizedPlan plan = OptimizePlan(Approach::kIShare, {qa, qb}, db.catalog,
                                      {1.0, 1.0});
    ShowPlan("iShare plan, constraints (1.0, 1.0): sharing is kept", plan);
  }

  // Case 2: Q_B needs a tight deadline — the shared subplan would have to
  // run eagerly for everyone, so iShare evaluates the sharing benefit
  // (Eq. 4) and may decompose (Sec. 4).
  {
    OptimizedPlan plan = OptimizePlan(Approach::kIShare, {qa, qb}, db.catalog,
                                      {1.0, 0.1});
    ShowPlan("iShare plan, constraints (1.0, 0.1)", plan);
    std::printf("decomposition: %d considered, %d adopted\n",
                plan.decompose_stats.splits_considered,
                plan.decompose_stats.splits_adopted);
  }

  // Compare against the single-pace shared execution (Share-Uniform).
  {
    OptimizedPlan su = OptimizePlan(Approach::kShareUniform, {qa, qb},
                                    db.catalog, {1.0, 0.1});
    OptimizedPlan is = OptimizePlan(Approach::kIShare, {qa, qb}, db.catalog,
                                    {1.0, 0.1});
    std::printf("\nestimated total work: Share-Uniform=%.0f iShare=%.0f "
                "(%.1f%%)\n",
                su.est_cost.total_work, is.est_cost.total_work,
                100.0 * is.est_cost.total_work / su.est_cost.total_work);
  }
  return 0;
}
