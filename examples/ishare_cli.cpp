// A small command-line driver over the public API: pick TPC-H queries and
// per-query constraints, choose an approach, and get the optimized plan
// (EXPLAIN or DOT) plus the executed run's metrics. Handy for poking at the
// optimizer without writing code.
//
// Usage:
//   ishare_cli [--sf=0.01] [--seed=7] [--max_pace=50]
//              [--queries=5,7,15] [--constraints=1.0,0.5,0.1]
//              [--approach=ishare|ishare-nounshare|ishare-bruteforce|
//                          noshare-uniform|noshare-nonuniform|share-uniform]
//              [--explain] [--dot] [--run]
//
// Examples:
//   ishare_cli --queries=15,7 --constraints=1.0,0.1 --explain --run
//   ishare_cli --queries=5,8 --approach=share-uniform --dot

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "ishare/harness/experiment.h"
#include "ishare/harness/report.h"
#include "ishare/plan/explain.h"
#include "ishare/workload/tpch_queries.h"

using namespace ishare;

namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool ParseApproach(const std::string& s, Approach* out) {
  if (s == "ishare") {
    *out = Approach::kIShare;
  } else if (s == "ishare-nounshare") {
    *out = Approach::kIShareNoUnshare;
  } else if (s == "ishare-bruteforce") {
    *out = Approach::kIShareBruteForce;
  } else if (s == "noshare-uniform") {
    *out = Approach::kNoShareUniform;
  } else if (s == "noshare-nonuniform") {
    *out = Approach::kNoShareNonuniform;
  } else if (s == "share-uniform") {
    *out = Approach::kShareUniform;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  uint64_t seed = 7;
  int max_pace = 50;
  std::string queries_arg = "5,7,15";
  std::string constraints_arg;
  Approach approach = Approach::kIShare;
  bool explain = false, dot = false, run = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--sf=", 5) == 0) {
      sf = std::atof(a + 5);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--max_pace=", 11) == 0) {
      max_pace = std::atoi(a + 11);
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      queries_arg = a + 10;
    } else if (std::strncmp(a, "--constraints=", 14) == 0) {
      constraints_arg = a + 14;
    } else if (std::strncmp(a, "--approach=", 11) == 0) {
      if (!ParseApproach(a + 11, &approach)) {
        std::fprintf(stderr, "unknown approach '%s'\n", a + 11);
        return 1;
      }
    } else if (std::strcmp(a, "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(a, "--dot") == 0) {
      dot = true;
    } else if (std::strcmp(a, "--run") == 0) {
      run = true;
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf("see the header of examples/ishare_cli.cpp\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", a);
      return 1;
    }
  }
  if (!explain && !dot && !run) explain = run = true;

  std::fprintf(stderr, "generating TPC-H sf=%.4f...\n", sf);
  TpchDb db(TpchScale{sf, seed});

  std::vector<QueryPlan> queries;
  QueryId id = 0;
  for (const std::string& tok : SplitCsv(queries_arg)) {
    if (tok == "QA" || tok == "qa") {
      queries.push_back(PaperQueryA(db.catalog, id++));
      continue;
    }
    if (tok == "QB" || tok == "qb") {
      queries.push_back(PaperQueryB(db.catalog, id++));
      continue;
    }
    bool variant = tok.back() == 'v';
    int qnum = std::atoi(tok.c_str());
    if (qnum < 1 || qnum > 22) {
      std::fprintf(stderr, "bad query '%s' (1..22, optional 'v', QA, QB)\n",
                   tok.c_str());
      return 1;
    }
    queries.push_back(TpchQuery(db.catalog, qnum, id++, variant));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries\n");
    return 1;
  }

  std::vector<double> rel(queries.size(), 1.0);
  if (!constraints_arg.empty()) {
    std::vector<std::string> toks = SplitCsv(constraints_arg);
    if (toks.size() != queries.size()) {
      std::fprintf(stderr, "need %zu constraints, got %zu\n", queries.size(),
                   toks.size());
      return 1;
    }
    for (size_t i = 0; i < toks.size(); ++i) rel[i] = std::atof(toks[i].c_str());
  }

  ApproachOptions opts;
  opts.max_pace = max_pace;
  std::fprintf(stderr, "optimizing with %s...\n", ApproachName(approach));
  OptimizedPlan plan = OptimizePlan(approach, queries, db.catalog, rel, opts);
  std::printf("# %s, %d subplans, est total work %.0f, optimized in %.2fs\n",
              ApproachName(approach), plan.graph.num_subplans(),
              plan.est_cost.total_work, plan.optimization_seconds);

  if (explain) {
    std::printf("\n%s", ExplainSummary(plan.graph, plan.paces).c_str());
  }
  if (dot) {
    std::printf("\n%s", ToDot(plan.graph, plan.paces).c_str());
  }
  if (run) {
    std::fprintf(stderr, "executing the trigger window...\n");
    Experiment ex(&db.catalog, &db.source, queries, rel, opts);
    ExperimentResult r = ex.Run(approach);
    std::printf("\ntotal: %.3fs, %.0f work units\n", r.total_seconds,
                r.total_work);
    TextTable t({"query", "final_work", "goal", "missed_%"});
    for (const QueryMetrics& m : r.queries) {
      t.AddRow({m.name, TextTable::Num(m.final_work, 0),
                TextTable::Num(m.final_work_goal, 0),
                TextTable::Num(100.0 * m.missed_rel, 1)});
    }
    t.Print();
  }
  return 0;
}
