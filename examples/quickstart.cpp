// Quickstart: define two scheduled queries with different latency goals
// over a streaming dataset, let iShare optimize them, and execute the
// trigger window.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "ishare/exec/pace_executor.h"
#include "ishare/harness/experiment.h"
#include "ishare/common/rng.h"
#include "ishare/plan/builder.h"

using namespace ishare;  // examples only; library code never does this

int main() {
  // ---------------------------------------------------------------------
  // 1. Define the streaming dataset: a sales table whose rows arrive over
  //    the trigger window (e.g. the daily load).
  // ---------------------------------------------------------------------
  Schema sales({{"sale_id", DataType::kInt64},
                {"store", DataType::kInt64},
                {"amount", DataType::kFloat64}});
  std::vector<Row> rows;
  Rng rng(42);
  for (int64_t i = 0; i < 20000; ++i) {
    rows.push_back({Value(i), Value(rng.UniformInt(0, 49)),
                    Value(rng.UniformDouble(1.0, 500.0))});
  }

  Catalog catalog;
  CHECK(catalog.AddTable("sales", sales, ComputeTableStats(sales, rows)).ok());
  StreamSource source;
  source.AddTable("sales", sales, std::move(rows));

  // ---------------------------------------------------------------------
  // 2. Define two scheduled queries sharing work.
  //    q0: revenue per store (due lazily — relative constraint 1.0)
  //    q1: revenue per store for big tickets (due fast — constraint 0.1)
  // ---------------------------------------------------------------------
  PlanBuilder b0(&catalog, /*query=*/0);
  QueryPlan q0{0, "store_revenue",
               b0.Aggregate(b0.ScanFiltered("sales", nullptr), {"store"},
                            {SumAgg(Col("amount"), "revenue"),
                             CountAgg("sales_cnt")})};

  PlanBuilder b1(&catalog, /*query=*/1);
  QueryPlan q1{1, "big_ticket_revenue",
               b1.Aggregate(
                   b1.ScanFiltered("sales", Gt(Col("amount"), Lit(400.0))),
                   {"store"},
                   {SumAgg(Col("amount"), "revenue"), CountAgg("sales_cnt")})};

  // ---------------------------------------------------------------------
  // 3. Optimize with iShare and run the trigger window.
  // ---------------------------------------------------------------------
  std::vector<double> rel_constraints = {1.0, 0.1};
  OptimizedPlan plan = OptimizePlan(Approach::kIShare, {q0, q1}, catalog,
                                    rel_constraints);

  std::printf("optimized shared plan (%d subplans):\n%s\n",
              plan.graph.num_subplans(), plan.graph.ToString().c_str());
  std::printf("pace configuration: ");
  for (int p : plan.paces) std::printf("%d ", p);
  std::printf("\n\n");

  PaceExecutor exec(&plan.graph, &source);
  RunResult run = exec.Run(plan.paces).value();

  std::printf("total work: %.0f units over %.3f s\n", run.total_work,
              run.total_seconds);
  for (QueryId q = 0; q < 2; ++q) {
    std::printf("query %d final work: %.0f units\n", q,
                run.query_final_work[q]);
  }

  // ---------------------------------------------------------------------
  // 4. Read the results from the query output buffers.
  // ---------------------------------------------------------------------
  auto result = MaterializeResult(*exec.query_output(1), 1);
  std::printf("\nbig_ticket_revenue: %zu stores, first few rows:\n",
              result.size());
  int shown = 0;
  for (const auto& [row, mult] : result) {
    if (shown++ >= 5) break;
    std::printf("  %s\n", RowToString(row).c_str());
  }
  return 0;
}
