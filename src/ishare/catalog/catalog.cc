#include "ishare/catalog/catalog.h"

#include <unordered_set>

namespace ishare {

TableStats ComputeTableStats(const Schema& schema,
                             const std::vector<Row>& rows) {
  TableStats stats;
  stats.row_count = static_cast<double>(rows.size());
  for (int c = 0; c < schema.num_fields(); ++c) {
    const Field& f = schema.field(c);
    ColumnStats cs;
    cs.numeric = (f.type != DataType::kString);
    std::unordered_set<uint64_t> distinct;
    bool first = true;
    for (const Row& r : rows) {
      const Value& v = r[c];
      distinct.insert(v.Hash());
      if (cs.numeric) {
        double d = v.AsDouble();
        if (first || d < cs.min) cs.min = d;
        if (first || d > cs.max) cs.max = d;
        first = false;
      }
    }
    cs.ndv = std::max<double>(1.0, static_cast<double>(distinct.size()));
    stats.columns[f.name] = cs;
  }
  return stats;
}

}  // namespace ishare
