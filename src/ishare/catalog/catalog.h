#ifndef ISHARE_CATALOG_CATALOG_H_
#define ISHARE_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "ishare/common/status.h"
#include "ishare/types/schema.h"

namespace ishare {

// Statistics for one column; drives selectivity and distinct-count
// estimation in the cost model. The paper assumes this knowledge comes
// from historical executions (Sec. 2.1).
struct ColumnStats {
  double ndv = 1.0;  // number of distinct values
  bool numeric = false;
  double min = 0.0;
  double max = 0.0;
};

// Statistics for one base relation over the trigger window. `row_count` is
// the estimated total number of tuples that will arrive before the trigger
// point (the paper's "total estimated tuples for that trigger condition").
struct TableStats {
  double row_count = 0.0;
  std::map<std::string, ColumnStats> columns;

  const ColumnStats* Column(const std::string& name) const {
    auto it = columns.find(name);
    return it == columns.end() ? nullptr : &it->second;
  }
};

// Computes exact statistics from a generated dataset. The workload module
// uses this so the optimizer sees calibrated statistics, mirroring the
// paper's assumption of recurring-query calibration.
TableStats ComputeTableStats(const Schema& schema,
                             const std::vector<Row>& rows);

// Name -> (schema, stats) registry for the base relations.
class Catalog {
 public:
  Status AddTable(const std::string& name, Schema schema, TableStats stats) {
    if (tables_.count(name) > 0) {
      return Status::AlreadyExists("table " + name);
    }
    tables_[name] = Entry{std::move(schema), std::move(stats)};
    return Status::OK();
  }

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  const Schema& GetSchema(const std::string& name) const {
    auto it = tables_.find(name);
    CHECK(it != tables_.end()) << "unknown table " << name;
    return it->second.schema;
  }

  const TableStats& GetStats(const std::string& name) const {
    auto it = tables_.find(name);
    CHECK(it != tables_.end()) << "unknown table " << name;
    return it->second.stats;
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, e] : tables_) names.push_back(name);
    return names;
  }

 private:
  struct Entry {
    Schema schema;
    TableStats stats;
  };
  std::map<std::string, Entry> tables_;
};

}  // namespace ishare

#endif  // ISHARE_CATALOG_CATALOG_H_
