#include "ishare/chaos/breaker.h"

#include <utility>

#include "ishare/obs/obs.h"

namespace ishare::chaos {

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(std::string name, BreakerOptions opts)
    : name_(std::move(name)), opts_(opts) {}

void CircuitBreaker::MoveTo(BreakerState to, int64_t step,
                            const std::string& cause) {
  if (to == state_) return;
  transitions_.push_back({name_, step, state_, to, cause});
  auto& reg = obs::Registry();
  if (to == BreakerState::kOpen) {
    ++trips_;
    reg.GetCounter("chaos.breaker.trip").Add(1);
    reg.GetCounter("chaos.breaker.trip#" + name_).Add(1);
  } else if (to == BreakerState::kHalfOpen) {
    reg.GetCounter("chaos.breaker.half_open").Add(1);
  } else {
    reg.GetCounter("chaos.breaker.close").Add(1);
  }
  state_ = to;
}

BreakerState CircuitBreaker::StateAt(int64_t step) {
  if (state_ == BreakerState::kOpen &&
      step - opened_at_step_ >= opts_.open_steps) {
    half_open_successes_ = 0;
    MoveTo(BreakerState::kHalfOpen, step,
           "cooldown elapsed (" + std::to_string(opts_.open_steps) +
               " steps)");
  }
  return state_;
}

void CircuitBreaker::RecordSuccess(int64_t step) {
  switch (StateAt(step)) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= opts_.success_threshold) {
        consecutive_failures_ = 0;
        MoveTo(BreakerState::kClosed, step,
               std::to_string(half_open_successes_) +
                   " half-open successes");
      }
      break;
    case BreakerState::kOpen:
      // No requests flow while open; a stray success (e.g. an in-flight
      // op completing) neither closes nor resets anything.
      break;
  }
}

void CircuitBreaker::RecordFailure(int64_t step, const std::string& cause) {
  switch (StateAt(step)) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= opts_.failure_threshold) {
        opened_at_step_ = step;
        MoveTo(BreakerState::kOpen, step, cause);
      }
      break;
    case BreakerState::kHalfOpen:
      // Hysteresis: one failed probe re-trips immediately — recovery must
      // be proven success_threshold times, failure only once.
      opened_at_step_ = step;
      MoveTo(BreakerState::kOpen, step, cause);
      break;
    case BreakerState::kOpen:
      opened_at_step_ = step;  // extend the cooldown
      break;
  }
}

}  // namespace ishare::chaos
