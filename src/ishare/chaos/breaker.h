// ishare::chaos — per-subsystem circuit breakers (DESIGN.md §11).
//
// A breaker condenses a stream of per-step success/failure observations
// about one subsystem (checkpoint store, stream source, memory budget)
// into a three-state machine the Supervisor keys its policy off:
//
//   closed ──(failure_threshold consecutive failures)──► open
//   open ──(open_steps virtual steps elapsed)──► half-open
//   half-open ──(success_threshold consecutive successes)──► closed
//   half-open ──(any failure)──► open          (re-trip, hysteresis)
//
// Time is *virtual*: the cooldown is measured in executor steps, never
// wall clock, so every chaos schedule replays identically from its seed.
// Each transition is recorded with the step and the cause that drove it
// (the failing Status message, or the cooldown/recovery rule); the chaos
// harness cross-checks every trip against an injected fault event.

#ifndef ISHARE_CHAOS_BREAKER_H_
#define ISHARE_CHAOS_BREAKER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ishare::chaos {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState s);

struct BreakerOptions {
  // Consecutive failures in the closed state that trip the breaker.
  int failure_threshold = 3;
  // Virtual steps the breaker stays open before probing half-open.
  int64_t open_steps = 2;
  // Consecutive half-open successes required to fully close again.
  int success_threshold = 2;
};

// One state change, with the observation that caused it. `cause` carries
// the failing Status message for trips; attribution (chaos harness) maps
// it back to the injected fault event.
struct BreakerTransition {
  std::string breaker;  // owning breaker's name
  int64_t step = 0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  std::string cause;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(std::string name, BreakerOptions opts = {});

  // Feeds one observation made during step `step`. Steps must be
  // non-decreasing across calls (the Supervisor observes once per step).
  void RecordSuccess(int64_t step);
  void RecordFailure(int64_t step, const std::string& cause);

  // State as of step `step`; promotes open → half-open lazily once the
  // cooldown has elapsed (recorded as a transition at that step).
  BreakerState StateAt(int64_t step);

  // True when requests may be sent to the subsystem: closed always,
  // half-open as a probe, open never.
  bool AllowRequest(int64_t step) { return StateAt(step) != BreakerState::kOpen; }

  const std::string& name() const { return name_; }
  int trips() const { return trips_; }
  const std::vector<BreakerTransition>& transitions() const {
    return transitions_;
  }

 private:
  void MoveTo(BreakerState to, int64_t step, const std::string& cause);

  const std::string name_;
  const BreakerOptions opts_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int64_t opened_at_step_ = 0;
  int trips_ = 0;
  std::vector<BreakerTransition> transitions_;
};

}  // namespace ishare::chaos

#endif  // ISHARE_CHAOS_BREAKER_H_
