#include "ishare/chaos/fault_schedule.h"

#include <algorithm>
#include <utility>

#include "ishare/common/rng.h"
#include "ishare/obs/obs.h"

namespace ishare::chaos {

const char* ChaosLayerName(ChaosLayer layer) {
  switch (layer) {
    case ChaosLayer::kSourcePerturb:
      return "source";
    case ChaosLayer::kBufferStorm:
      return "buffer";
    case ChaosLayer::kStoreTransient:
      return "store";
    case ChaosLayer::kStoreBitRot:
      return "bitrot";
    case ChaosLayer::kMemoryPressure:
      return "memory";
    case ChaosLayer::kWorkerStall:
      return "worker";
  }
  return "?";
}

std::string ChaosEvent::ToString() const {
  std::string s = ChaosLayerName(layer);
  s += "@" + std::to_string(step);
  s += " count=" + std::to_string(count);
  s += " mag=" + std::to_string(magnitude);
  return s;
}

Status FaultSchedule::Validate() const {
  ISHARE_RETURN_NOT_OK(source_plan.Validate());
  for (const ChaosEvent& ev : events) {
    if (ev.step < 1) {
      return Status::InvalidArgument("chaos event step must be >= 1: " +
                                     ev.ToString());
    }
    if (ev.count < -1 || ev.count == 0) {
      return Status::InvalidArgument(
          "chaos event count must be positive or -1 (forever): " +
          ev.ToString());
    }
    if (ev.magnitude < 0) {
      return Status::InvalidArgument("chaos event magnitude must be >= 0: " +
                                     ev.ToString());
    }
  }
  return Status::OK();
}

std::string FaultSchedule::ToString() const {
  std::string s = "seed=" + std::to_string(seed);
  if (!source_plan.empty()) s += " source{" + source_plan.ToString() + "}";
  for (const ChaosEvent& ev : events) s += " [" + ev.ToString() + "]";
  return s;
}

FaultSchedule FaultSchedule::Random(uint64_t seed,
                                    const ChaosScheduleOptions& opts,
                                    const std::vector<std::string>& tables) {
  FaultSchedule out;
  out.seed = seed;
  if (opts.num_source_events > 0) {
    out.source_plan =
        FaultPlan::Random(seed ^ 0x5042ce0ULL, opts.num_source_events, tables);
  }
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xc4a05);
  for (int i = 0; i < opts.num_events; ++i) {
    ChaosEvent ev;
    ev.step = rng.UniformInt(1, std::max<int64_t>(opts.max_step, 1));
    switch (rng.UniformInt(0, 4)) {
      case 0:
        ev.layer = ChaosLayer::kBufferStorm;
        ev.count = rng.UniformInt(1, std::max<int64_t>(opts.max_buffer_faults, 1));
        break;
      case 1:
        ev.layer = ChaosLayer::kStoreTransient;
        if (rng.Bernoulli(opts.forever_outage_probability)) {
          ev.count = -1;
        } else if (rng.Bernoulli(opts.outage_probability)) {
          ev.count = opts.outage_count;
        } else {
          ev.count =
              rng.UniformInt(1, std::max<int64_t>(opts.max_transient_count, 1));
        }
        break;
      case 2:
        ev.layer = ChaosLayer::kStoreBitRot;
        break;
      case 3:
        ev.layer = ChaosLayer::kMemoryPressure;
        ev.count = rng.UniformInt(1, std::max<int64_t>(opts.max_pressure_steps, 1));
        ev.magnitude = rng.UniformDouble(0.25, opts.max_pressure_magnitude);
        break;
      default:
        ev.layer = ChaosLayer::kWorkerStall;
        ev.count = rng.UniformInt(1, std::max<int64_t>(opts.max_stall_tasks, 1));
        ev.magnitude = rng.UniformDouble(0, opts.max_stall_seconds);
        break;
    }
    out.events.push_back(ev);
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.step < b.step;
                   });
  return out;
}

ChaosInjector::ChaosInjector(FaultSchedule schedule, Targets targets)
    : schedule_(std::move(schedule)), targets_(targets) {
  std::stable_sort(schedule_.events.begin(), schedule_.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.step < b.step;
                   });
  // The source plan is realized at source construction, before any step;
  // log it so source-breaker trips have an injected cause to attach to.
  if (!schedule_.source_plan.empty()) {
    Record(0, ChaosLayer::kSourcePerturb, schedule_.source_plan.ToString());
  }
}

void ChaosInjector::Record(int64_t step, ChaosLayer layer,
                           std::string detail) {
  log_.push_back({step, layer, std::move(detail)});
  obs::Registry().GetCounter("chaos.fault.injected").Add(1);
}

bool ChaosInjector::AnyInjected(ChaosLayer layer, int64_t by_step) const {
  for (const InjectionRecord& r : log_) {
    if (r.layer == layer && r.step <= by_step) return true;
  }
  return false;
}

void ChaosInjector::Apply(const ChaosEvent& ev) {
  switch (ev.layer) {
    case ChaosLayer::kSourcePerturb:
      // Carried by the FaultPlan, realized at source construction.
      break;
    case ChaosLayer::kBufferStorm: {
      if (targets_.source == nullptr) return;
      int armed = 0;
      for (const std::string& name : targets_.source->TableNames()) {
        DeltaBuffer* buf = targets_.source->buffer(name);
        if (buf == nullptr) continue;
        buf->InjectFault(
            Status::Unavailable("chaos: admission storm step " +
                                std::to_string(ev.step)),
            ev.count);
        ++armed;
      }
      if (armed > 0) {
        Record(ev.step, ev.layer,
               "base-buffer storm x" + std::to_string(ev.count) + " on " +
                   std::to_string(armed) + " tables");
      }
      break;
    }
    case ChaosLayer::kStoreTransient:
      if (targets_.store == nullptr) return;
      targets_.store->InjectWriteFault(
          Status::Unavailable("chaos: store outage step " +
                              std::to_string(ev.step)),
          ev.count);
      Record(ev.step, ev.layer,
             ev.count < 0 ? "store outage (forever)"
                          : "store outage x" + std::to_string(ev.count));
      break;
    case ChaosLayer::kStoreBitRot: {
      if (targets_.store == nullptr) return;
      std::vector<int64_t> epochs = targets_.store->CommittedEpochs();
      if (epochs.empty()) return;  // nothing committed yet: no rot to plant
      targets_.store->CorruptCommitted(epochs.back(),
                                       "chaos-bit-rot-garbage");
      Record(ev.step, ev.layer,
             "corrupted committed epoch " + std::to_string(epochs.back()));
      break;
    }
    case ChaosLayer::kMemoryPressure: {
      if (targets_.budget == nullptr) return;
      int64_t base = targets_.budget->limited()
                         ? targets_.budget->budget_bytes()
                         : int64_t{1} << 20;
      int64_t bytes =
          static_cast<int64_t>(ev.magnitude * static_cast<double>(base));
      if (bytes <= 0) return;
      spikes_.push_back({ev.step + ev.count - 1, bytes});
      Record(ev.step, ev.layer,
             "pressure spike " + std::to_string(bytes) + "B for " +
                 std::to_string(ev.count) + " steps");
      break;
    }
    case ChaosLayer::kWorkerStall:
      if (targets_.pool == nullptr) return;
      targets_.pool->InjectDelay(ev.count, ev.magnitude);
      Record(ev.step, ev.layer,
             "stalled " + std::to_string(ev.count) + " tasks x" +
                 std::to_string(ev.magnitude) + "s");
      break;
  }
}

Status ChaosInjector::OnStepBoundary(int64_t completed) {
  const int64_t next_step = completed + 1;
  while (next_event_ < schedule_.events.size() &&
         schedule_.events[next_event_].step <= next_step) {
    Apply(schedule_.events[next_event_]);
    ++next_event_;
  }
  if (targets_.budget != nullptr) {
    // Retire spikes whose hold window ended with `completed`, then
    // publish the sum of the survivors as one absolute component.
    spikes_.erase(std::remove_if(spikes_.begin(), spikes_.end(),
                                 [completed](const PressureSpike& s) {
                                   return s.until_step <= completed;
                                 }),
                  spikes_.end());
    int64_t total = 0;
    for (const PressureSpike& s : spikes_) total += s.bytes;
    if (total > 0 && pressure_component_ < 0) {
      pressure_component_ = targets_.budget->Register("chaos:pressure");
    }
    if (pressure_component_ >= 0) {
      targets_.budget->Set(pressure_component_, total);
    }
  }
  return Status::OK();
}

}  // namespace ishare::chaos
