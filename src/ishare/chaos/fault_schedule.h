// ishare::chaos — deterministic cross-layer fault orchestration
// (DESIGN.md §11). A FaultSchedule is a seeded, declarative description of
// every fault one run experiences, across every layer the engine has:
//
//   kSourcePerturb   stream-arrival perturbations (carried as a FaultPlan
//                    and realized at source construction — bursts, stalls,
//                    rate drift, jitter, reorder);
//   kBufferStorm     transient admission faults on the base delta buffers
//                    (the consume path's retry spine absorbs them);
//   kStoreTransient  checkpoint-store Stage/Commit outages, from blips the
//                    manager's retry policy absorbs to multi-epoch outages
//                    that trip the Supervisor's checkpoint breaker;
//   kStoreBitRot     in-place corruption of the newest committed epoch
//                    (recovery must fall back to an older intact one);
//   kMemoryPressure  phantom bytes held against the memory budget for a
//                    span of steps (drives deferral/shedding and the
//                    memory breaker);
//   kWorkerStall     injected stalls of worker-pool tasks (stragglers the
//                    help-while-waiting loop must absorb).
//
// Time is virtual: events arm at executor step boundaries, never wall
// clock, so a schedule replays bit-identically from its seed. The
// ChaosInjector applies a schedule to live engine components and keeps a
// log of what actually landed; the chaos harness cross-checks every
// breaker trip against that log (attribution invariant).

#ifndef ISHARE_CHAOS_FAULT_SCHEDULE_H_
#define ISHARE_CHAOS_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ishare/common/status.h"
#include "ishare/flow/memory_budget.h"
#include "ishare/recovery/checkpoint_store.h"
#include "ishare/sched/worker_pool.h"
#include "ishare/storage/perturbed_source.h"
#include "ishare/storage/stream_source.h"

namespace ishare::chaos {

enum class ChaosLayer {
  kSourcePerturb,
  kBufferStorm,
  kStoreTransient,
  kStoreBitRot,
  kMemoryPressure,
  kWorkerStall,
};

const char* ChaosLayerName(ChaosLayer layer);

// One step-armed fault. `step` is the 1-based executor step during which
// the fault is live; the injector arms it at the preceding boundary.
// `count` and `magnitude` are layer-specific:
//   kBufferStorm:    count = consume calls that fail per base buffer;
//   kStoreTransient: count = Stage/Commit calls that fail (-1 = forever);
//   kStoreBitRot:    unused;
//   kMemoryPressure: count = steps the spike stays held, magnitude =
//                    phantom bytes as a fraction of the budget;
//   kWorkerStall:    count = pool tasks stalled, magnitude = seconds each.
struct ChaosEvent {
  ChaosLayer layer = ChaosLayer::kStoreTransient;
  int64_t step = 1;
  int64_t count = 1;
  double magnitude = 0;

  std::string ToString() const;
};

// Knobs for FaultSchedule::Random. The defaults compose a few absorbable
// faults with occasional breaker-tripping outages over a small window.
struct ChaosScheduleOptions {
  int num_events = 6;         // step-armed events (non-source layers)
  int num_source_events = 2;  // FaultPlan events (0 = clean stream)
  int64_t max_step = 8;       // events land on steps [1, max_step]
  // Buffer storms stay below the executor's consume-retry budget so they
  // are absorbed, never fatal.
  int64_t max_buffer_faults = 2;
  // Short store blips (absorbed by the manager's store retry) ...
  int64_t max_transient_count = 2;
  // ... vs. real outages that outlast the retry budget and trip the
  // checkpoint breaker, occasionally forever (safe-stop path).
  double outage_probability = 0.2;
  int64_t outage_count = 8;
  double forever_outage_probability = 0.05;
  // Memory-pressure spikes: phantom fraction of the budget and hold time.
  double max_pressure_magnitude = 1.5;
  int64_t max_pressure_steps = 4;
  // Worker stalls: tasks stalled and seconds per task (kept tiny — the
  // point is reordering stress, not wall-clock waste).
  int64_t max_stall_tasks = 8;
  double max_stall_seconds = 0.002;
};

// A complete, replayable chaos scenario: seeded source perturbations plus
// step-armed events across the other layers.
struct FaultSchedule {
  uint64_t seed = 0;
  FaultPlan source_plan;
  std::vector<ChaosEvent> events;

  Status Validate() const;
  std::string ToString() const;

  // Deterministic composed schedule: same seed + options + tables ⇒
  // byte-identical schedule. `tables` feeds FaultPlan::Random.
  static FaultSchedule Random(uint64_t seed,
                              const ChaosScheduleOptions& opts = {},
                              const std::vector<std::string>& tables = {});
};

// What the injector actually did, for attribution. `step` is the step the
// fault was armed for (0 = present from the start, e.g. source plans).
struct InjectionRecord {
  int64_t step = 0;
  ChaosLayer layer = ChaosLayer::kSourcePerturb;
  std::string detail;
};

// Applies a FaultSchedule to live engine components at step boundaries.
// Every target is optional: events whose target is absent are skipped
// (and not logged), so one schedule drives serial, parallel, budgeted and
// unbudgeted runs alike.
class ChaosInjector {
 public:
  struct Targets {
    recovery::MemoryCheckpointStore* store = nullptr;
    flow::MemoryBudget* budget = nullptr;
    sched::WorkerPool* pool = nullptr;
    StreamSource* source = nullptr;  // base buffers for admission storms
  };

  ChaosInjector(FaultSchedule schedule, Targets targets);

  // Arms every not-yet-applied event with event.step <= completed + 1 and
  // retires expired memory-pressure spikes. Call with completed = 0
  // before the first step, then from the executor's after-step hook.
  Status OnStepBoundary(int64_t completed);

  const FaultSchedule& schedule() const { return schedule_; }
  const std::vector<InjectionRecord>& log() const { return log_; }

  // True when some event of `layer` was applied at a step <= `by_step`
  // (the attribution predicate breaker trips are checked against).
  bool AnyInjected(ChaosLayer layer, int64_t by_step) const;

 private:
  void Apply(const ChaosEvent& ev);
  void Record(int64_t step, ChaosLayer layer, std::string detail);

  FaultSchedule schedule_;
  Targets targets_;
  size_t next_event_ = 0;  // events_ sorted by step; prefix applied
  std::vector<InjectionRecord> log_;

  // Active memory-pressure spikes: phantom bytes held until `until_step`
  // completes. Summed into one budget component per boundary.
  struct PressureSpike {
    int64_t until_step = 0;
    int64_t bytes = 0;
  };
  std::vector<PressureSpike> spikes_;
  int pressure_component_ = -1;
};

}  // namespace ishare::chaos

#endif  // ISHARE_CHAOS_FAULT_SCHEDULE_H_
