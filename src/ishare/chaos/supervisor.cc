#include "ishare/chaos/supervisor.h"

#include <algorithm>

#include "ishare/common/check.h"
#include "ishare/obs/obs.h"

namespace ishare::chaos {

const char* ServiceLevelName(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kFull:
      return "full";
    case ServiceLevel::kDeferred:
      return "deferred";
    case ServiceLevel::kShed:
      return "shed";
    case ServiceLevel::kCheckpointDegraded:
      return "checkpoint-degraded";
    case ServiceLevel::kSafeStop:
      return "safe-stop";
  }
  return "?";
}

Reaction ClassifyFailure(const Status& st) {
  if (st.IsTransient()) return Reaction::kRetry;
  if (st.IsRetryableBackpressure()) return Reaction::kDefer;
  if (st.code() == StatusCode::kDataLoss) return Reaction::kDegrade;
  return Reaction::kFail;
}

Supervisor::Supervisor(SupervisorOptions opts,
                       recovery::CheckpointManager* mgr,
                       flow::MemoryBudget* budget)
    : opts_(opts),
      mgr_(mgr),
      budget_(budget),
      checkpoint_breaker_("checkpoint", opts.checkpoint_breaker),
      source_breaker_("source", opts.source_breaker),
      memory_breaker_("memory", opts.memory_breaker) {
  CHECK(mgr_ != nullptr);
}

void Supervisor::ObserveSourceProgress(int64_t step, double window_fraction,
                                       double data_fraction) {
  bool advanced =
      window_fraction > last_window_fraction_ + opts_.stall_epsilon;
  bool data_progress =
      data_fraction > last_data_fraction_ + opts_.stall_epsilon;
  if (advanced && !data_progress) {
    ++stats_.stall_observations;
    source_breaker_.RecordFailure(
        step, "source stall: window at " + std::to_string(window_fraction) +
                  ", data stuck at " + std::to_string(last_data_fraction_));
  } else if (data_progress) {
    source_breaker_.RecordSuccess(step);
  }
  last_window_fraction_ = std::max(last_window_fraction_, window_fraction);
  last_data_fraction_ = std::max(last_data_fraction_, data_fraction);
}

void Supervisor::ObserveMemoryPressure(int64_t step, double pressure) {
  if (pressure >= opts_.memory_pressure_trip) {
    ++stats_.pressure_observations;
    memory_breaker_.RecordFailure(
        step, "sustained memory pressure " + std::to_string(pressure));
  } else {
    memory_breaker_.RecordSuccess(step);
  }
}

void Supervisor::ObserveFlow(int64_t step, const flow::FlowStats& flow) {
  (void)step;
  int64_t deferred = flow.shed_deferred + flow.backpressure_events;
  int64_t dropped = flow.dropped_tuples;
  step_deferred_ = deferred > last_flow_deferred_;
  step_dropped_ = dropped > last_flow_dropped_;
  if (deferred > last_flow_deferred_) {
    int64_t delta = deferred - last_flow_deferred_;
    stats_.defer_signals += delta;
    obs::Registry()
        .GetCounter("chaos.supervisor.defer_signals")
        .Add(static_cast<double>(delta));
  }
  if (dropped > last_flow_dropped_) {
    stats_.drop_signals += dropped - last_flow_dropped_;
  }
  last_flow_deferred_ = std::max(last_flow_deferred_, deferred);
  last_flow_dropped_ = std::max(last_flow_dropped_, dropped);
}

void Supervisor::EnterSafeStop(int64_t step, const std::string& cause) {
  if (safe_stopped_) return;
  safe_stopped_ = true;
  safe_stop_cause_ = cause;
  stats_.safe_stops = 1;
  obs::Registry().GetCounter("chaos.supervisor.safe_stops").Add(1);
  (void)step;
}

Status Supervisor::OnStepComplete(int64_t step,
                                  const recovery::Checkpointable& target) {
  auto& reg = obs::Registry();
  if (!safe_stopped_ && mgr_->ShouldCheckpoint(step)) {
    BreakerState cb = checkpoint_breaker_.StateAt(step);
    if (cb != BreakerState::kHalfOpen) half_open_boundaries_ = 0;
    bool catch_up =
        source_breaker_.StateAt(step) != BreakerState::kClosed;
    if (cb == BreakerState::kOpen) {
      // Track-only fallback: the store is known-bad, so spend nothing on
      // it. Recovery degrades to a rerun from the last good epoch (or
      // from scratch); answers are unaffected.
      ++stats_.checkpoints_skipped_open;
      reg.GetCounter("chaos.supervisor.checkpoints_skipped").Add(1);
    } else if (catch_up) {
      // Catch-up mode: the stream is behind schedule, so persistence
      // yields the window to the executions draining the backlog.
      ++stats_.catchup_deferred;
      reg.GetCounter("chaos.supervisor.catchup_deferred").Add(1);
    } else if (cb == BreakerState::kHalfOpen &&
               (half_open_boundaries_++ % std::max<int64_t>(
                    opts_.cadence_stretch, 1)) != 0) {
      // Stretched cadence: while recovery is unproven, probe the store
      // only every cadence_stretch-th due boundary.
      ++stats_.checkpoints_stretched;
      reg.GetCounter("chaos.supervisor.checkpoints_stretched").Add(1);
    } else {
      Status st = mgr_->Checkpoint(step, target);
      if (st.ok()) {
        checkpoint_breaker_.RecordSuccess(step);
      } else {
        // The manager already retried transients under its store policy;
        // reaching here means the budget is exhausted or the error is
        // permanent. Either way: degrade persistence, never the window.
        ++stats_.checkpoint_failures;
        reg.GetCounter("chaos.supervisor.checkpoint_failures").Add(1);
        checkpoint_breaker_.RecordFailure(step, st.message());
        if (ClassifyFailure(st) == Reaction::kFail ||
            checkpoint_breaker_.trips() > opts_.max_checkpoint_trips) {
          EnterSafeStop(step, st.message());
        }
      }
    }
  }
  UpdateLadder(step);
  return Status::OK();
}

void Supervisor::UpdateLadder(int64_t step) {
  ServiceLevel to = ServiceLevel::kFull;
  std::string cause = "all breakers closed, no shedding activity";
  if (safe_stopped_) {
    to = ServiceLevel::kSafeStop;
    cause = "safe-stop: " + safe_stop_cause_;
  } else if (checkpoint_breaker_.StateAt(step) != BreakerState::kClosed) {
    to = ServiceLevel::kCheckpointDegraded;
    cause = std::string("checkpoint breaker ") +
            BreakerStateName(checkpoint_breaker_.StateAt(step));
  } else if (memory_breaker_.StateAt(step) == BreakerState::kOpen ||
             step_dropped_) {
    to = ServiceLevel::kShed;
    cause = step_dropped_ ? "hard-budget drops this step"
                          : "memory breaker open";
  } else if (step_deferred_ ||
             source_breaker_.StateAt(step) != BreakerState::kClosed ||
             memory_breaker_.StateAt(step) == BreakerState::kHalfOpen) {
    to = ServiceLevel::kDeferred;
    if (step_deferred_) {
      cause = "shed-deferral / backpressure this step";
    } else if (source_breaker_.StateAt(step) != BreakerState::kClosed) {
      cause = std::string("source breaker ") +
              BreakerStateName(source_breaker_.StateAt(step)) +
              " (catch-up mode)";
    } else {
      cause = "memory breaker half-open";
    }
  }
  if (to != level_) {
    ladder_log_.push_back({step, level_, to, cause});
    auto& reg = obs::Registry();
    reg.GetCounter("chaos.ladder.transitions").Add(1);
    reg.GetGauge("chaos.ladder.level")
        .Set(static_cast<double>(static_cast<int>(to)));
    level_ = to;
  }
  step_deferred_ = false;
  step_dropped_ = false;
}

std::vector<BreakerTransition> Supervisor::breaker_transitions() const {
  std::vector<BreakerTransition> all;
  for (const CircuitBreaker* b :
       {&checkpoint_breaker_, &source_breaker_, &memory_breaker_}) {
    all.insert(all.end(), b->transitions().begin(), b->transitions().end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const BreakerTransition& a, const BreakerTransition& b) {
                     return a.step < b.step;
                   });
  return all;
}

}  // namespace ishare::chaos
