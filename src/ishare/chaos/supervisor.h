// ishare::chaos — supervised execution (DESIGN.md §11). The Supervisor
// wraps a PaceExecutor/AdaptiveExecutor window and unifies the engine's
// fault reactions behind one policy spine keyed off the status taxonomy:
//
//   IsTransient (kUnavailable)            → retry, capped deterministic
//                                           backoff (RetryPolicy);
//   IsRetryableBackpressure (kResourceExhausted)
//                                         → defer, never retry-loop (the
//                                           flow layer owns the fix);
//   anything else                         → degrade or fail.
//
// Per-subsystem circuit breakers condense repeated failures into modes:
//
//   checkpoint breaker  open      → skip checkpoints entirely (track-only
//                                   fallback: the window keeps answering,
//                                   recovery degrades to rerun);
//                       half-open → stretched cadence (probe every
//                                   cadence_stretch-th due boundary);
//                       re-trips beyond max_checkpoint_trips, or any
//                       permanent store error → safe-stop (persistence
//                       disabled for the rest of the window);
//   source breaker      open/half-open → catch-up mode: persistence is
//                                   deferred while the stream drains its
//                                   backlog (checkpointing a window that
//                                   is behind schedule wastes the budget
//                                   the catch-up executions need);
//   memory breaker      open      → shedding escalation is reported (the
//                                   AdaptiveExecutor's slack-ranked
//                                   defer/shed machinery is the actuator;
//                                   the breaker is the observer).
//
// The Supervisor's *active* interventions are deliberately confined to
// the checkpoint/persistence axis: skipping or stretching checkpoints
// never changes query results, so supervised runs stay bit-exact with
// unsupervised ones — fail the redundancy machinery, never the answers.
//
// Every mode change is summarized by an explicit degradation ladder
//   full service → deferred → shed → checkpoint-degraded → safe-stop
// with each transition recorded (step + cause) in obs counters and the
// JSON "chaos" block (schema v5).

#ifndef ISHARE_CHAOS_SUPERVISOR_H_
#define ISHARE_CHAOS_SUPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ishare/chaos/breaker.h"
#include "ishare/common/status.h"
#include "ishare/flow/memory_budget.h"
#include "ishare/recovery/checkpoint_manager.h"

namespace ishare::chaos {

// The degradation ladder, ordered by severity. The level each step lands
// on is derived from breaker states and the step's flow activity.
enum class ServiceLevel {
  kFull = 0,
  kDeferred = 1,           // deferral active (flow or catch-up mode)
  kShed = 2,               // memory breaker open / drops observed
  kCheckpointDegraded = 3, // checkpoint breaker not closed
  kSafeStop = 4,           // persistence permanently disabled
};

const char* ServiceLevelName(ServiceLevel level);

// The unified reaction policy (the spine the file comment describes).
enum class Reaction { kRetry, kDefer, kDegrade, kFail };

// Pure classification of a failure Status; Status::OK() is not a failure
// and must not be passed.
Reaction ClassifyFailure(const Status& st);

struct LadderTransition {
  int64_t step = 0;
  ServiceLevel from = ServiceLevel::kFull;
  ServiceLevel to = ServiceLevel::kFull;
  std::string cause;
};

struct SupervisorOptions {
  BreakerOptions checkpoint_breaker{/*failure_threshold=*/2,
                                    /*open_steps=*/4,
                                    /*success_threshold=*/2};
  BreakerOptions source_breaker{/*failure_threshold=*/2, /*open_steps=*/2,
                                /*success_threshold=*/2};
  BreakerOptions memory_breaker{/*failure_threshold=*/3, /*open_steps=*/2,
                                /*success_threshold=*/2};
  // Budget pressure at/above which a step counts as a sustained-pressure
  // failure against the memory breaker.
  double memory_pressure_trip = 0.95;
  // While the checkpoint breaker is half-open, only every
  // cadence_stretch-th due epoch boundary actually probes the store.
  int64_t cadence_stretch = 2;
  // Checkpoint-breaker trips beyond this enter safe-stop: the store has
  // proven it recovers only to fail again, so stop feeding it.
  int max_checkpoint_trips = 3;
  // Window-fraction progress below which a step's source observation
  // counts as a stall (no new data while the window advanced).
  double stall_epsilon = 1e-9;
};

struct SupervisorStats {
  int64_t checkpoint_failures = 0;      // failed supervised boundaries
  int64_t checkpoints_skipped_open = 0; // track-only fallback boundaries
  int64_t checkpoints_stretched = 0;    // half-open cadence-stretch skips
  int64_t catchup_deferred = 0;         // boundaries deferred in catch-up
  int64_t defer_signals = 0;            // flow deferrals observed
  int64_t drop_signals = 0;             // flow drops observed (tuples)
  int64_t stall_observations = 0;
  int64_t pressure_observations = 0;    // steps at/over the trip pressure
  int64_t safe_stops = 0;               // 0 or 1
};

// Supervises the persistence half of one executor window. The executor
// calls the Observe* probes and then OnStepComplete from its after-step
// hook (the chaos harness composes them); OnStepComplete replaces the
// bare CheckpointManager::OnStepComplete call.
class Supervisor {
 public:
  Supervisor(SupervisorOptions opts, recovery::CheckpointManager* mgr,
             flow::MemoryBudget* budget = nullptr);

  // ---- per-step observations (all optional, call before OnStepComplete)
  // Window advanced to `window_fraction` while the source had released
  // `data_fraction` of its data: no data progress while the window moved
  // is a stall observation against the source breaker.
  void ObserveSourceProgress(int64_t step, double window_fraction,
                             double data_fraction);
  // Budget pressure during `step` (MemoryBudget::Pressure()).
  void ObserveMemoryPressure(int64_t step, double pressure);
  // Cumulative flow ledger after `step`; deltas vs. the previous call
  // yield this step's defer/drop activity.
  void ObserveFlow(int64_t step, const flow::FlowStats& flow);

  // The supervised checkpoint boundary: applies breaker-derived policy
  // (skip when open, stretch when half-open, defer in catch-up mode,
  // nothing after safe-stop), runs the checkpoint when allowed, feeds the
  // outcome back into the checkpoint breaker, and lands the step on the
  // degradation ladder. Never fails the window for a checkpoint error.
  Status OnStepComplete(int64_t step, const recovery::Checkpointable& target);

  ServiceLevel level() const { return level_; }
  bool safe_stopped() const { return safe_stopped_; }
  const SupervisorStats& stats() const { return stats_; }
  const std::vector<LadderTransition>& ladder_log() const {
    return ladder_log_;
  }
  // All three breakers' transitions, merged in (step, breaker) order.
  std::vector<BreakerTransition> breaker_transitions() const;

  CircuitBreaker& checkpoint_breaker() { return checkpoint_breaker_; }
  CircuitBreaker& source_breaker() { return source_breaker_; }
  CircuitBreaker& memory_breaker() { return memory_breaker_; }

 private:
  void EnterSafeStop(int64_t step, const std::string& cause);
  void UpdateLadder(int64_t step);

  const SupervisorOptions opts_;
  recovery::CheckpointManager* mgr_;
  flow::MemoryBudget* budget_;

  CircuitBreaker checkpoint_breaker_;
  CircuitBreaker source_breaker_;
  CircuitBreaker memory_breaker_;

  SupervisorStats stats_;
  ServiceLevel level_ = ServiceLevel::kFull;
  std::vector<LadderTransition> ladder_log_;
  bool safe_stopped_ = false;
  std::string safe_stop_cause_;

  double last_window_fraction_ = 0;
  double last_data_fraction_ = 0;
  int64_t last_flow_deferred_ = 0;
  int64_t last_flow_dropped_ = 0;
  // This step's observed activity, consumed by UpdateLadder.
  bool step_deferred_ = false;
  bool step_dropped_ = false;
  std::string step_cause_;
  // Due boundaries seen while half-open, for cadence stretching.
  int64_t half_open_boundaries_ = 0;
};

}  // namespace ishare::chaos

#endif  // ISHARE_CHAOS_SUPERVISOR_H_
