#ifndef ISHARE_COMMON_CHECK_H_
#define ISHARE_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ishare::internal_check {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the CHECK macros below; invariant violations are programmer
// errors, so aborting (rather than returning Status) is the right response.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when a DCHECK is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace ishare::internal_check

// CHECK(cond) << "extra context"; aborts with the message when cond is false.
#define CHECK(cond)                                                     \
  if (cond) {                                                           \
  } else /* NOLINT(readability/braces) */                               \
    ::ishare::internal_check::CheckFailure(__FILE__, __LINE__, #cond)

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define DCHECK(cond) \
  if (true) {        \
  } else /* NOLINT */ \
    ::ishare::internal_check::NullStream()
#else
#define DCHECK(cond) CHECK(cond)
#endif

#endif  // ISHARE_COMMON_CHECK_H_
