// Flat open-addressing integer hash index for the vectorized fast paths
// (DESIGN.md §12.5). Maps int64 keys to dense ids [0, n) with linear
// probing over a power-of-two slot array and an xxhash-style avalanche
// finalizer — the flat_hash_map/robin_map idiom of the parallel-groupby
// exemplar, specialized to the only thing the columnar kernels need:
// find-or-insert returning a dense id to index accumulator arrays.

#ifndef ISHARE_COMMON_FLAT_HASH_H_
#define ISHARE_COMMON_FLAT_HASH_H_

#include <cstdint>
#include <vector>

#include "ishare/common/check.h"

namespace ishare {

// xxhash64-style avalanche mix (XXH64 finalizer primes). Distinct from
// Mix64 (splitmix64) used for Value/Row hashing so the flat tables and
// the generic unordered_map paths never share collision structure.
inline uint64_t XxMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xc2b2ae3d27d4eb4fULL;
  x ^= x >> 29;
  x *= 0x165667b19e3779f9ULL;
  x ^= x >> 32;
  return x;
}

// Open-addressing map from int64 key to dense id, assigned in first-touch
// order. No erase (the kernels only grow an index within a window; dead
// groups are skipped at emission). Load factor is kept under ~0.7 by
// doubling the slot array.
class FlatIndexI64 {
 public:
  explicit FlatIndexI64(int64_t expected_keys = 0) {
    int64_t cap = 16;
    while (cap < expected_keys * 2) cap <<= 1;
    slots_.assign(static_cast<size_t>(cap), -1);
    mask_ = static_cast<uint64_t>(cap - 1);
  }

  // Dense id of `key`, inserting the next id if absent.
  int32_t FindOrInsert(int64_t key) {
    uint64_t h = XxMix64(static_cast<uint64_t>(key)) & mask_;
    for (;;) {
      int32_t id = slots_[h];
      if (id < 0) {
        int32_t fresh = static_cast<int32_t>(keys_.size());
        slots_[h] = fresh;
        keys_.push_back(key);
        if (keys_.size() * 10 >= slots_.size() * 7) Grow();
        return fresh;
      }
      if (keys_[static_cast<size_t>(id)] == key) return id;
      h = (h + 1) & mask_;
    }
  }

  // Dense id of `key`, or -1 if absent.
  int32_t Find(int64_t key) const {
    uint64_t h = XxMix64(static_cast<uint64_t>(key)) & mask_;
    for (;;) {
      int32_t id = slots_[h];
      if (id < 0) return -1;
      if (keys_[static_cast<size_t>(id)] == key) return id;
      h = (h + 1) & mask_;
    }
  }

  int64_t size() const { return static_cast<int64_t>(keys_.size()); }

  // Dense key array; keys_[id] is the key of dense id `id` (first-touch
  // order, the order accumulator arrays are laid out in).
  const std::vector<int64_t>& keys() const { return keys_; }

  void Clear() {
    keys_.clear();
    slots_.assign(slots_.size(), -1);
  }

  int64_t ApproxBytes() const {
    return static_cast<int64_t>(slots_.size() * sizeof(int32_t) +
                                keys_.size() * sizeof(int64_t));
  }

 private:
  void Grow() {
    size_t cap = slots_.size() * 2;
    slots_.assign(cap, -1);
    mask_ = static_cast<uint64_t>(cap - 1);
    for (size_t id = 0; id < keys_.size(); ++id) {
      uint64_t h = XxMix64(static_cast<uint64_t>(keys_[id])) & mask_;
      while (slots_[h] >= 0) h = (h + 1) & mask_;
      slots_[h] = static_cast<int32_t>(id);
    }
  }

  std::vector<int32_t> slots_;  // -1 = empty, else dense id
  std::vector<int64_t> keys_;   // dense id -> key
  uint64_t mask_ = 0;
};

}  // namespace ishare

#endif  // ISHARE_COMMON_FLAT_HASH_H_
