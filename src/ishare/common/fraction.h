#ifndef ISHARE_COMMON_FRACTION_H_
#define ISHARE_COMMON_FRACTION_H_

#include <cstdint>
#include <numeric>

namespace ishare {

// Exact rational num/den in lowest terms. Pace schedules are sets of points
// i/p inside the trigger window; computing them in floating point drifts at
// paces whose reciprocals are not exactly representable (3, 7, 11, ...), so
// the executors and the stream source share this exact representation.
struct Fraction {
  int64_t num = 0;
  int64_t den = 1;

  static Fraction Make(int64_t n, int64_t d) {
    int64_t g = std::gcd(n, d);
    if (g == 0) g = 1;
    return Fraction{n / g, d / g};
  }

  bool operator<(const Fraction& o) const { return num * o.den < o.num * den; }
  bool operator<=(const Fraction& o) const {
    return num * o.den <= o.num * den;
  }
  bool operator==(const Fraction& o) const {
    return num == o.num && den == o.den;
  }

  double ToDouble() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }

  // True when this fraction is a multiple of 1/pace.
  bool IsStepOf(int pace) const { return (num * pace) % den == 0; }
};

}  // namespace ishare

#endif  // ISHARE_COMMON_FRACTION_H_
