#ifndef ISHARE_COMMON_HASH_H_
#define ISHARE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ishare {

// 64-bit mix (splitmix64 finalizer); good avalanche for hash combining.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

inline uint64_t HashString(const std::string& s) {
  // FNV-1a.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashIntVector(const std::vector<int>& v) {
  uint64_t h = Mix64(v.size());
  for (int x : v) h = HashCombine(h, static_cast<uint64_t>(x));
  return h;
}

}  // namespace ishare

#endif  // ISHARE_COMMON_HASH_H_
