#ifndef ISHARE_COMMON_QUERY_SET_H_
#define ISHARE_COMMON_QUERY_SET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "ishare/common/check.h"

namespace ishare {

// Identifies a query within one optimization/execution session.
// Queries are numbered densely from 0; at most kMaxQueries per session.
using QueryId = int;

// A set of queries, represented as a 64-bit bitvector. This is the
// SharedDB-style annotation attached to every intermediate tuple and every
// shared operator: bit q is set iff the tuple/operator is valid for query q.
class QuerySet {
 public:
  static constexpr int kMaxQueries = 64;

  constexpr QuerySet() : bits_(0) {}
  constexpr explicit QuerySet(uint64_t bits) : bits_(bits) {}

  static QuerySet Single(QueryId q) {
    CHECK_GE(q, 0);
    CHECK_LT(q, kMaxQueries);
    return QuerySet(uint64_t{1} << q);
  }

  static QuerySet FromIds(const std::vector<QueryId>& ids) {
    QuerySet s;
    for (QueryId q : ids) s.Add(q);
    return s;
  }

  // All queries in [0, n).
  static QuerySet FirstN(int n) {
    CHECK_GE(n, 0);
    CHECK_LE(n, kMaxQueries);
    if (n == kMaxQueries) return QuerySet(~uint64_t{0});
    return QuerySet((uint64_t{1} << n) - 1);
  }

  uint64_t bits() const { return bits_; }
  bool empty() const { return bits_ == 0; }
  int size() const { return std::popcount(bits_); }

  bool Contains(QueryId q) const {
    DCHECK(q >= 0 && q < kMaxQueries);
    return (bits_ >> q) & 1;
  }
  bool ContainsAll(QuerySet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  bool Intersects(QuerySet other) const { return (bits_ & other.bits_) != 0; }

  void Add(QueryId q) {
    CHECK(q >= 0 && q < kMaxQueries);
    bits_ |= uint64_t{1} << q;
  }
  void Remove(QueryId q) {
    DCHECK(q >= 0 && q < kMaxQueries);
    bits_ &= ~(uint64_t{1} << q);
  }

  QuerySet Union(QuerySet other) const { return QuerySet(bits_ | other.bits_); }
  QuerySet Intersect(QuerySet other) const {
    return QuerySet(bits_ & other.bits_);
  }
  QuerySet Minus(QuerySet other) const {
    return QuerySet(bits_ & ~other.bits_);
  }

  // Lowest query id in the set; set must be non-empty.
  QueryId First() const {
    CHECK(!empty());
    return std::countr_zero(bits_);
  }

  std::vector<QueryId> ToIds() const {
    std::vector<QueryId> ids;
    ids.reserve(size());
    uint64_t b = bits_;
    while (b != 0) {
      ids.push_back(std::countr_zero(b));
      b &= b - 1;
    }
    return ids;
  }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (QueryId q : ToIds()) {
      if (!first) out += ",";
      out += "q" + std::to_string(q);
      first = false;
    }
    out += "}";
    return out;
  }

  friend bool operator==(QuerySet a, QuerySet b) { return a.bits_ == b.bits_; }
  friend bool operator!=(QuerySet a, QuerySet b) { return a.bits_ != b.bits_; }
  friend bool operator<(QuerySet a, QuerySet b) { return a.bits_ < b.bits_; }

 private:
  uint64_t bits_;
};

}  // namespace ishare

#endif  // ISHARE_COMMON_QUERY_SET_H_
