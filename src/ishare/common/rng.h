#ifndef ISHARE_COMMON_RNG_H_
#define ISHARE_COMMON_RNG_H_

#include <cstdint>

#include "ishare/common/check.h"

namespace ishare {

// Deterministic xorshift128+ RNG. Used for data generation and randomized
// experiments so that every run of the benchmark suite is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding to avoid correlated low-entropy states.
    uint64_t z = seed;
    auto next = [&z]() {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CHECK_LE(lo, hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  double UniformDouble(double lo, double hi) {
    return lo + UniformDouble() * (hi - lo);
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace ishare

#endif  // ISHARE_COMMON_RNG_H_
