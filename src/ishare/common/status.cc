#include "ishare/common/status.h"

namespace ishare {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace ishare
