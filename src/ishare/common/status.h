#ifndef ISHARE_COMMON_STATUS_H_
#define ISHARE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "ishare/common/check.h"

namespace ishare {

// Error codes used across the library. We follow the RocksDB/Arrow idiom of
// returning Status objects instead of throwing exceptions across API
// boundaries.
//
// Retry taxonomy (DESIGN.md §8): every code is either *transient* —
// the operation may succeed if simply retried, nothing about the request
// was wrong (kUnavailable: an unreachable partition, a mid-failover
// buffer) — or *permanent* — retrying the identical operation cannot
// help (malformed requests, missing tables, corrupted checkpoints,
// logic errors). The recovery layer's retry policy keys off this split:
// transient errors get bounded exponential backoff, permanent errors
// propagate immediately and fail only the affected run.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotSupported,
  kInternal,
  // A dependency is temporarily unreachable; retrying may succeed.
  kUnavailable,
  // Stored state failed validation (torn write, checksum mismatch).
  kDataLoss,
  // A resource budget (memory, buffer capacity) is exhausted. This is
  // *backpressure*, not a fault: the operation will succeed once the
  // consumer drains or the flow controller sheds load. Deliberately not
  // transient — retrying in a tight loop with the storage-fault backoff
  // policy would burn the retry budget meant for kUnavailable faults
  // without making progress. Callers test IsRetryableBackpressure() and
  // route through the flow-control layer (defer/shed) instead.
  kResourceExhausted,
};

// True for codes whose failures are worth retrying (see taxonomy above).
constexpr bool StatusCodeIsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

// A Status captures the success or failure of an operation. Cheap to copy in
// the OK case (no allocation), carries a message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  // True when the failure is worth retrying (see the taxonomy on
  // StatusCode). OK statuses are not transient: there is nothing to retry.
  bool IsTransient() const { return StatusCodeIsTransient(code_); }

  // True when the failure is backpressure from the flow-control layer:
  // the operation becomes admissible again once pressure drains, but a
  // blind retry loop is the wrong response (it cannot drain anything and
  // would consume the bounded retry budget reserved for transient storage
  // faults). Disjoint from IsTransient() by construction.
  bool IsRetryableBackpressure() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  // Human-readable rendering, e.g. "InvalidArgument: bad pace".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

// Result<T> is either a value or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T& value() & {
    CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    CHECK(ok()) << status().ToString();
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

// Propagates a non-OK Status out of the enclosing function.
#define ISHARE_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::ishare::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define ISHARE_CONCAT_IMPL_(a, b) a##b
#define ISHARE_CONCAT_(a, b) ISHARE_CONCAT_IMPL_(a, b)

#define ISHARE_ASSIGN_OR_RETURN(lhs, expr) \
  ISHARE_ASSIGN_OR_RETURN_IMPL_(ISHARE_CONCAT_(_res_, __LINE__), lhs, expr)

#define ISHARE_ASSIGN_OR_RETURN_IMPL_(res, lhs, expr) \
  auto res = (expr);                                  \
  if (!res.ok()) return res.status();                 \
  lhs = std::move(res).value();

}  // namespace ishare

#endif  // ISHARE_COMMON_STATUS_H_
