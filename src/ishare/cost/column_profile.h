// Column-statistics propagation for the cost model: the per-column NDV /
// min / max profile that flows bottom-up through a plan during estimation
// (feeding selectivity and group-count estimates), plus Cardenas' formula
// for expected distinct values touched — the group-churn driver behind the
// aggregate cost model (DESIGN.md "Cost model notes").

#ifndef ISHARE_COST_COLUMN_PROFILE_H_
#define ISHARE_COST_COLUMN_PROFILE_H_

#include <cmath>
#include <map>
#include <string>

#include "ishare/catalog/catalog.h"

namespace ishare {

// Column statistics propagated through a plan during cost estimation.
// Keyed by column name (names are stable across plan rewrites).
using ColumnProfile = std::map<std::string, ColumnStats>;

inline const ColumnStats* FindColumn(const ColumnProfile& p,
                                     const std::string& name) {
  auto it = p.find(name);
  return it == p.end() ? nullptr : &it->second;
}

inline ColumnProfile ProfileFromStats(const TableStats& stats) {
  ColumnProfile p;
  for (const auto& [name, cs] : stats.columns) p[name] = cs;
  return p;
}

// Expected number of distinct values hit when drawing n tuples uniformly
// from g distinct values (Cardenas' formula). Drives group-touch estimates.
inline double CardenasDistinct(double g, double n) {
  if (g <= 1.0) return n > 0 ? 1.0 : 0.0;
  if (n <= 0) return 0.0;
  // g * (1 - (1 - 1/g)^n), computed stably.
  return g * -std::expm1(n * std::log1p(-1.0 / g));
}

}  // namespace ishare

#endif  // ISHARE_COST_COLUMN_PROFILE_H_
