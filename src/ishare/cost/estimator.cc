#include "ishare/cost/estimator.h"

#include <algorithm>
#include <functional>
#include <set>

#include "ishare/common/hash.h"
#include "ishare/obs/obs.h"

namespace ishare {

namespace {

// kSubplanInput child indices in preorder; parallel to the SimInput order
// SimulateSubplan expects.
void CollectInputLeaves(const PlanNodePtr& node, std::vector<int>* out) {
  if (node->kind == PlanKind::kSubplanInput) {
    out->push_back(node->input_subplan);
    return;
  }
  for (const PlanNodePtr& c : node->children) CollectInputLeaves(c, out);
}

}  // namespace

CostEstimator::CostEstimator(const SubplanGraph* graph, const Catalog* catalog,
                             ExecOptions opts, bool use_memo)
    : graph_(graph), catalog_(catalog), opts_(opts), use_memo_(use_memo) {
  CHECK(graph != nullptr && catalog != nullptr);
  hit_counter_ = &obs::Registry().GetCounter("cost.memo.hit");
  miss_counter_ = &obs::Registry().GetCounter("cost.memo.miss");
  estimate_counter_ = &obs::Registry().GetCounter("cost.estimate.calls");
  int n = graph->num_subplans();
  memo_.resize(n);
  closure_.resize(n);
  for (int i : graph->TopoChildrenFirst()) {
    std::set<int> cl;
    cl.insert(i);
    for (int c : graph->subplan(i).children) {
      cl.insert(closure_[c].begin(), closure_[c].end());
    }
    closure_[i].assign(cl.begin(), cl.end());
  }
}

uint64_t CostEstimator::PrivateKey(int subplan,
                                   const PaceConfig& paces) const {
  uint64_t h = Mix64(static_cast<uint64_t>(subplan));
  for (int s : closure_[subplan]) {
    h = HashCombine(h, static_cast<uint64_t>(paces[s]));
  }
  return h;
}

const SimResult& CostEstimator::Compute(int subplan, const PaceConfig& paces) {
  uint64_t key = PrivateKey(subplan, paces);
  if (use_memo_) {
    auto it = memo_[subplan].find(key);
    if (it != memo_[subplan].end()) {
      ++hits_;
      return it->second;
    }
  }
  ++misses_;
  const Subplan& sp = graph_->subplan(subplan);

  // Children first (recursively memoized), then assemble this subplan's
  // inputs in preorder leaf order.
  std::vector<int> leaves;
  CollectInputLeaves(sp.root, &leaves);
  std::vector<SimInput> inputs;
  inputs.reserve(leaves.size());
  for (int c : leaves) {
    const SimResult& child = Compute(c, paces);
    SimInput in;
    in.card = child.out_card;
    in.deletes = child.out_deletes;
    in.per_query = child.out_per_query;
    in.profile = child.out_profile;
    inputs.push_back(std::move(in));
  }

  SimResult res =
      SimulateSubplan(sp.root, *catalog_, paces[subplan], inputs, opts_);
  if (!use_memo_) {
    scratch_ = std::move(res);
    return scratch_;
  }
  auto [it, inserted] = memo_[subplan].emplace(key, std::move(res));
  return it->second;
}

const SimResult& CostEstimator::SubplanResult(int subplan,
                                              const PaceConfig& paces) {
  CHECK_EQ(static_cast<int>(paces.size()), graph_->num_subplans());
  return Compute(subplan, paces);
}

void CostEstimator::FlushObsCounters() {
  if (hits_ > flushed_hits_) {
    hit_counter_->Add(static_cast<double>(hits_ - flushed_hits_));
    flushed_hits_ = hits_;
  }
  if (misses_ > flushed_misses_) {
    miss_counter_->Add(static_cast<double>(misses_ - flushed_misses_));
    flushed_misses_ = misses_;
  }
}

PlanCost CostEstimator::Estimate(const PaceConfig& paces) {
  CHECK_EQ(static_cast<int>(paces.size()), graph_->num_subplans());
  estimate_counter_->Add(1);
  PlanCost cost;
  cost.query_final_work.assign(graph_->num_queries(), 0.0);
  std::vector<const SimResult*> results(graph_->num_subplans());
  if (use_memo_) {
    // Children-first guarantees each Compute() call only recurses into
    // already-memoized children.
    for (int i : graph_->TopoChildrenFirst()) {
      results[i] = &Compute(i, paces);
    }
  } else {
    // No-memo ablation (Fig. 15): every estimate simulates the whole plan
    // from scratch, children-first, mirroring the original algorithm [44].
    std::vector<SimResult> store(graph_->num_subplans());
    for (int i : graph_->TopoChildrenFirst()) {
      const Subplan& sp = graph_->subplan(i);
      std::vector<int> leaves;
      CollectInputLeaves(sp.root, &leaves);
      std::vector<SimInput> inputs;
      for (int c : leaves) {
        SimInput in;
        in.card = store[c].out_card;
        in.deletes = store[c].out_deletes;
        in.per_query = store[c].out_per_query;
        in.profile = store[c].out_profile;
        inputs.push_back(std::move(in));
      }
      ++misses_;
      store[i] = SimulateSubplan(sp.root, *catalog_, paces[i], inputs, opts_);
    }
    for (int i = 0; i < graph_->num_subplans(); ++i) {
      cost.total_work += store[i].private_total_work;
      for (QueryId q : graph_->subplan(i).queries.ToIds()) {
        cost.query_final_work[q] += store[i].private_final_work;
      }
    }
    FlushObsCounters();
    return cost;
  }
  for (int i = 0; i < graph_->num_subplans(); ++i) {
    cost.total_work += results[i]->private_total_work;
    for (QueryId q : graph_->subplan(i).queries.ToIds()) {
      cost.query_final_work[q] += results[i]->private_final_work;
    }
  }
  FlushObsCounters();
  return cost;
}

double EstimateStandaloneBatchWork(const QueryPlan& query,
                                   const Catalog& catalog, ExecOptions opts) {
  SubplanGraph g = SubplanGraph::Build({query});
  CostEstimator est(&g, &catalog, opts);
  PaceConfig ones(g.num_subplans(), 1);
  PlanCost c = est.Estimate(ones);
  return c.query_final_work[query.id];
}

}  // namespace ishare
