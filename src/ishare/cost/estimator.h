// Memoized whole-plan cost estimation — the paper's Algorithm 1. Costs
// are in OpWork units (exec/metrics.h): C_T(P) is total work over the
// window, C_F(P, q) the final-execution work of query q. The memo key is
// each subplan's *private pace configuration* (its own + descendants'
// paces, Sec. 3.2), which is what makes the greedy pace search tractable
// (Fig. 15). Hit/miss rates feed the cost.memo.* observability counters.

#ifndef ISHARE_COST_ESTIMATOR_H_
#define ISHARE_COST_ESTIMATOR_H_

#include <unordered_map>
#include <vector>

#include "ishare/cost/simulator.h"
#include "ishare/exec/pace_executor.h"
#include "ishare/obs/obs.h"

namespace ishare {

// Estimated cost of a whole shared plan under one pace configuration.
struct PlanCost {
  double total_work = 0;                 // C_T(P)
  std::vector<double> query_final_work;  // C_F(P, q), indexed by query id
};

// Memoization-based cost estimator (Algorithm 1). Each subplan keeps a memo
// table keyed by its *private pace configuration* — the paces of the
// subplan and all of its descendants — which fully determines its private
// total work, private final work and output cardinalities under the
// subplan-local pace redefinition of Sec. 3.2.
//
// `use_memo` exists only for the Fig. 15 ablation (iShare w/o memo).
class CostEstimator {
 public:
  CostEstimator(const SubplanGraph* graph, const Catalog* catalog,
                ExecOptions opts = ExecOptions(), bool use_memo = true);

  // Estimates C_T and C_F for all queries under `paces` (children-first
  // bottom-up pass; memoized per subplan).
  PlanCost Estimate(const PaceConfig& paces);

  // The simulated result of one subplan under `paces` (computed through the
  // same memo). Used by the decomposition to obtain per-subplan inputs.
  const SimResult& SubplanResult(int subplan, const PaceConfig& paces);

  int64_t memo_hits() const { return hits_; }
  int64_t memo_misses() const { return misses_; }

  const SubplanGraph& graph() const { return *graph_; }
  const Catalog& catalog() const { return *catalog_; }
  const ExecOptions& options() const { return opts_; }

 private:
  // Ensures memo entries exist for `subplan` and all its descendants under
  // `paces`; returns the entry.
  const SimResult& Compute(int subplan, const PaceConfig& paces);
  uint64_t PrivateKey(int subplan, const PaceConfig& paces) const;

  const SubplanGraph* graph_;
  const Catalog* catalog_;
  ExecOptions opts_;
  bool use_memo_;
  std::vector<std::vector<int>> closure_;  // descendants incl. self, sorted
  std::vector<std::unordered_map<uint64_t, SimResult>> memo_;
  SimResult scratch_;  // storage when memoization is disabled
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  // Observability handles (cost.memo.*, cost.estimate.calls), resolved once
  // at construction. The memo fast path must stay free of atomic traffic
  // (millions of hits per greedy search), so hit/miss counts are batched in
  // the plain int64 tallies above and flushed as deltas per Estimate().
  void FlushObsCounters();
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* estimate_counter_ = nullptr;
  int64_t flushed_hits_ = 0;
  int64_t flushed_misses_ = 0;
};

// Estimated cost of running one query standalone in a single batch; the
// denominator of relative final work constraints (Sec. 2.1).
double EstimateStandaloneBatchWork(const QueryPlan& query,
                                   const Catalog& catalog,
                                   ExecOptions opts = ExecOptions());

}  // namespace ishare

#endif  // ISHARE_COST_ESTIMATOR_H_
