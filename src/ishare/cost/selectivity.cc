#include "ishare/cost/selectivity.h"

#include <algorithm>
#include <cmath>

namespace ishare {

namespace {

double Clamp(double s) { return std::min(1.0, std::max(kMinSelectivity, s)); }

// Returns the referenced column when `e` is a bare column reference.
const ColumnStats* ColumnOf(const ExprPtr& e, const ColumnProfile& profile) {
  if (e->kind() != ExprKind::kColumn) return nullptr;
  return FindColumn(profile, e->column_name());
}

double CompareSelectivity(const ExprPtr& pred, const ColumnProfile& profile) {
  const ExprPtr& l = pred->children()[0];
  const ExprPtr& r = pred->children()[1];
  const ColumnStats* lc = ColumnOf(l, profile);
  const ColumnStats* rc = ColumnOf(r, profile);
  CompareOp op = pred->compare_op();

  // column <op> column
  if (lc != nullptr && rc != nullptr) {
    double ndv = std::max(lc->ndv, rc->ndv);
    switch (op) {
      case CompareOp::kEq:
        return 1.0 / std::max(1.0, ndv);
      case CompareOp::kNe:
        return 1.0 - 1.0 / std::max(1.0, ndv);
      default:
        return kDefaultRangeSelectivity;
    }
  }

  // column <op> literal (or the mirrored form)
  const ColumnStats* col = lc != nullptr ? lc : rc;
  const ExprPtr& other = lc != nullptr ? r : l;
  bool col_on_left = lc != nullptr;
  if (col != nullptr && other->kind() == ExprKind::kLiteral) {
    const Value& v = other->literal();
    switch (op) {
      case CompareOp::kEq:
        return 1.0 / std::max(1.0, col->ndv);
      case CompareOp::kNe:
        return 1.0 - 1.0 / std::max(1.0, col->ndv);
      default:
        break;
    }
    if (col->numeric && !v.is_string()) {
      double x = v.AsDouble();
      double width = col->max - col->min;
      if (width <= 0) return kDefaultRangeSelectivity;
      double frac_below = (x - col->min) / width;  // P(col < x), roughly
      frac_below = std::min(1.0, std::max(0.0, frac_below));
      bool less =
          (op == CompareOp::kLt || op == CompareOp::kLe) == col_on_left;
      return less ? frac_below : 1.0 - frac_below;
    }
    return kDefaultRangeSelectivity;
  }
  switch (op) {
    case CompareOp::kEq:
      return kDefaultEqSelectivity;
    case CompareOp::kNe:
      return 1.0 - kDefaultEqSelectivity;
    default:
      return kDefaultRangeSelectivity;
  }
}

}  // namespace

double EstimateSelectivity(const ExprPtr& pred, const ColumnProfile& profile) {
  if (pred == nullptr) return 1.0;
  switch (pred->kind()) {
    case ExprKind::kLiteral:
      return pred->literal().AsDouble() != 0 ? 1.0 : kMinSelectivity;
    case ExprKind::kCompare:
      return Clamp(CompareSelectivity(pred, profile));
    case ExprKind::kLogic: {
      double a = EstimateSelectivity(pred->children()[0], profile);
      double b = EstimateSelectivity(pred->children()[1], profile);
      if (pred->logic_op() == LogicOp::kAnd) return Clamp(a * b);
      return Clamp(a + b - a * b);
    }
    case ExprKind::kNot:
      return Clamp(1.0 - EstimateSelectivity(pred->children()[0], profile));
    case ExprKind::kInList: {
      const ColumnStats* col = ColumnOf(pred->children()[0], profile);
      double n = static_cast<double>(pred->in_list().size());
      if (col != nullptr) return Clamp(n / std::max(1.0, col->ndv));
      return Clamp(n * kDefaultEqSelectivity);
    }
    case ExprKind::kLike: {
      const std::string& p = pred->like_pattern();
      bool has_wildcard =
          p.find('%') != std::string::npos || p.find('_') != std::string::npos;
      if (!has_wildcard) {
        const ColumnStats* col = ColumnOf(pred->children()[0], profile);
        if (col != nullptr) return Clamp(1.0 / std::max(1.0, col->ndv));
        return kDefaultEqSelectivity;
      }
      return kDefaultLikeSelectivity;
    }
    case ExprKind::kColumn:
    case ExprKind::kArith:
      return 0.5;  // boolean-ish numeric expression; unknown
  }
  return 0.5;
}

}  // namespace ishare
