// Predicate selectivity estimation for the cost model (System-R-style
// rules over ColumnProfile statistics). Deliberately heuristic: the paper
// treats cost-model inaccuracy as a given and compensates with constraint
// calibration for recurring queries (Sec. 2.1) and, in this repo, the
// adaptive runtime's drift correction.

#ifndef ISHARE_COST_SELECTIVITY_H_
#define ISHARE_COST_SELECTIVITY_H_

#include "ishare/cost/column_profile.h"
#include "ishare/expr/expr.h"

namespace ishare {

// Heuristic selectivity estimation for a boolean predicate against a column
// profile. Standard System-R-style rules: equality 1/ndv, ranges via
// min/max interpolation, AND/OR under independence. Clamped to
// [kMinSelectivity, 1]. Unknown shapes fall back to conservative defaults —
// the paper likewise treats cost-model inaccuracy as a given (Sec. 3.2)
// and relies on calibration for recurring queries.
double EstimateSelectivity(const ExprPtr& pred, const ColumnProfile& profile);

inline constexpr double kMinSelectivity = 5e-4;
inline constexpr double kDefaultEqSelectivity = 0.05;
inline constexpr double kDefaultRangeSelectivity = 0.33;
inline constexpr double kDefaultLikeSelectivity = 0.1;

}  // namespace ishare

#endif  // ISHARE_COST_SELECTIVITY_H_
