#include "ishare/cost/simulator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "ishare/cost/selectivity.h"

namespace ishare {

namespace {

// Per-step delta flow on one plan edge.
struct EdgeStats {
  double card = 0;
  double deletes = 0;
  std::map<QueryId, double> per_query;
};

// Product of the group-by columns' NDVs, capped to keep estimates sane.
double GroupCount(const std::vector<std::string>& cols,
                  const ColumnProfile& profile) {
  if (cols.empty()) return 1.0;
  double g = 1.0;
  for (const std::string& c : cols) {
    const ColumnStats* cs = FindColumn(profile, c);
    g *= (cs != nullptr ? std::max(1.0, cs->ndv) : 100.0);
    g = std::min(g, 1e12);
  }
  return g;
}

class OpModel {
 public:
  explicit OpModel(const PlanNode* node) : node_(node) {}
  virtual ~OpModel() = default;

  // Advances the model by one incremental execution given the children's
  // step outputs; returns this operator's step output and accumulates cost.
  virtual EdgeStats Step(const std::vector<EdgeStats>& child_out) = 0;

  const PlanNode* node() const { return node_; }
  const ColumnProfile& profile() const { return profile_; }
  double total_cost() const { return total_cost_; }

  std::vector<std::unique_ptr<OpModel>> children;

 protected:
  void Charge(double c) { total_cost_ += c; }

  const PlanNode* node_;
  ColumnProfile profile_;
  double total_cost_ = 0;
};

// Leaf: emits 1/pace of its SimInput per step.
class LeafModel : public OpModel {
 public:
  LeafModel(const PlanNode* node, SimInput input, int pace)
      : OpModel(node), input_(std::move(input)), pace_(pace) {
    profile_ = input_.profile;
  }

  EdgeStats Step(const std::vector<EdgeStats>&) override {
    EdgeStats out;
    out.card = input_.card / pace_;
    out.deletes = input_.deletes / pace_;
    for (const auto& [q, c] : input_.per_query) out.per_query[q] = c / pace_;
    if (node_->kind == PlanKind::kSubplanInput) {
      // Mask to this subplan's queries; runtime drops unneeded tuples but
      // still pays to read them (consume + masked emit).
      double in_card = out.card;
      EdgeStats masked;
      for (QueryId q : node_->queries.ToIds()) {
        auto it = out.per_query.find(q);
        if (it != out.per_query.end()) masked.per_query[q] = it->second;
      }
      masked.card = in_card * UnionFraction(masked.per_query, in_card);
      masked.deletes = out.deletes * (in_card > 0 ? masked.card / in_card : 0);
      Charge(in_card + masked.card);
      return masked;
    }
    Charge(out.card * 2);  // consume + emit (ScanOp counts both)
    return out;
  }

 private:
  SimInput input_;
  int pace_;
};

class FilterModel : public OpModel {
 public:
  FilterModel(const PlanNode* node, const ColumnProfile& child_profile)
      : OpModel(node) {
    for (QueryId q : node->queries.ToIds()) {
      auto it = node->predicates.find(q);
      sel_[q] = (it == node->predicates.end())
                    ? 1.0
                    : EstimateSelectivity(it->second, child_profile);
    }
    double max_sel = kMinSelectivity;
    for (const auto& [q, s] : sel_) max_sel = std::max(max_sel, s);
    profile_ = child_profile;
    for (auto& [name, cs] : profile_) {
      cs.ndv = std::max(1.0, cs.ndv * max_sel);
    }
  }

  EdgeStats Step(const std::vector<EdgeStats>& child_out) override {
    const EdgeStats& in = child_out[0];
    EdgeStats out;
    for (const auto& [q, c] : in.per_query) {
      auto it = sel_.find(q);
      if (it == sel_.end()) continue;
      out.per_query[q] = c * it->second;
    }
    out.card = in.card * UnionFraction(out.per_query, in.card);
    out.deletes = in.card > 0 ? in.deletes * out.card / in.card : 0;
    Charge(in.card + out.card);
    return out;
  }

 private:
  std::map<QueryId, double> sel_;
};

class ProjectModel : public OpModel {
 public:
  ProjectModel(const PlanNode* node, const ColumnProfile& child_profile)
      : OpModel(node) {
    for (const NamedExpr& ne : node->projections) {
      if (ne.expr->kind() == ExprKind::kColumn) {
        const ColumnStats* cs =
            FindColumn(child_profile, ne.expr->column_name());
        if (cs != nullptr) {
          profile_[ne.alias] = *cs;
          continue;
        }
      }
      // Computed column: combine argument NDVs heuristically.
      std::vector<std::string> cols;
      ne.expr->CollectColumns(&cols);
      double ndv = 1.0;
      for (const std::string& c : cols) {
        const ColumnStats* cs = FindColumn(child_profile, c);
        if (cs != nullptr) ndv = std::min(1e9, ndv * std::max(1.0, cs->ndv));
      }
      ColumnStats cs;
      cs.ndv = std::max(1.0, ndv);
      cs.numeric = true;
      profile_[ne.alias] = cs;
    }
  }

  EdgeStats Step(const std::vector<EdgeStats>& child_out) override {
    EdgeStats out = child_out[0];
    Charge(out.card * 2);
    return out;
  }
};

class JoinModel : public OpModel {
 public:
  JoinModel(const PlanNode* node, const ColumnProfile& left_profile,
            const ColumnProfile& right_profile)
      : OpModel(node) {
    double lk = 1.0, rk = 1.0;
    for (const std::string& c : node->left_keys) {
      const ColumnStats* cs = FindColumn(left_profile, c);
      lk = std::min(1e12, lk * (cs != nullptr ? std::max(1.0, cs->ndv) : 100));
    }
    for (const std::string& c : node->right_keys) {
      const ColumnStats* cs = FindColumn(right_profile, c);
      rk = std::min(1e12, rk * (cs != nullptr ? std::max(1.0, cs->ndv) : 100));
    }
    key_ndv_ = std::max(1.0, std::max(lk, rk));
    right_key_ndv_ = std::max(1.0, rk);
    if (node->join_type == JoinType::kInner) {
      profile_ = left_profile;
      for (const auto& [name, cs] : right_profile) profile_[name] = cs;
    } else {
      profile_ = left_profile;
    }
  }

  EdgeStats Step(const std::vector<EdgeStats>& child_out) override {
    const EdgeStats& dl = child_out[0];
    const EdgeStats& dr = child_out[1];
    if (node_->join_type == JoinType::kInner) return StepInner(dl, dr);
    return StepSemiAnti(dl, dr);
  }

 private:
  EdgeStats StepInner(const EdgeStats& dl, const EdgeStats& dr) {
    EdgeStats out;
    double l_new = l_cum_ + NetInserts(dl);
    double r_new = r_cum_ + NetInserts(dr);
    out.card = (dl.card * r_cum_ + l_new * dr.card) / key_ndv_;
    for (const auto& [q, c] : dl.per_query) {
      double lq_new = l_q_[q] + c - 2 * std::min(c, dl.deletes);
      double drq = 0, rq = r_q_[q];
      auto it = dr.per_query.find(q);
      if (it != dr.per_query.end()) drq = it->second;
      out.per_query[q] = (c * rq + (lq_new)*drq) / key_ndv_;
    }
    double in_total = dl.card + dr.card;
    double del_frac =
        in_total > 0 ? (dl.deletes + dr.deletes) / in_total : 0.0;
    out.deletes = out.card * del_frac;
    Charge(in_total + 2 * out.card);  // probes ~ matches, plus emits
    // Advance cumulative state.
    l_cum_ = l_new;
    r_cum_ = r_new;
    for (const auto& [q, c] : dl.per_query) {
      l_q_[q] += c - 2 * std::min(c, dl.deletes);
    }
    for (const auto& [q, c] : dr.per_query) {
      r_q_[q] += c - 2 * std::min(c, dr.deletes);
    }
    return out;
  }

  EdgeStats StepSemiAnti(const EdgeStats& dl, const EdgeStats& dr) {
    const bool semi = node_->join_type == JoinType::kLeftSemi;
    EdgeStats out;
    for (const auto& [q, c] : dl.per_query) {
      double rq_before = r_q_[q];
      double drq = 0;
      auto it = dr.per_query.find(q);
      if (it != dr.per_query.end()) drq = it->second;
      double rq_after = rq_before + drq - 2 * std::min(drq, dr.deletes);
      double p_before = MatchProb(rq_before);
      double p_after = MatchProb(rq_after);
      double lq = l_q_[q];
      double dlq_net = c - 2 * std::min(c, dl.deletes);
      // New left tuples emitted under the current match probability, plus
      // stored left tuples flipped by the right-side transition.
      double emitted = c * (semi ? p_after : 1.0 - p_after) +
                       lq * std::abs(p_after - p_before);
      out.per_query[q] = emitted;
      l_q_[q] = lq + dlq_net;
      r_q_[q] = rq_after;
    }
    out.card = (dl.card > 0 || dr.card > 0)
                   ? std::max(dl.card, 1.0) *
                         UnionFraction(out.per_query, std::max(dl.card, 1.0))
                   : 0.0;
    // Flip emissions are delete+insert-ish; approximate deletes as the
    // transition-driven half.
    out.deletes = 0.5 * std::max(0.0, out.card - dl.card);
    Charge(dl.card + dr.card + out.card);
    return out;
  }

  double MatchProb(double right_count) const {
    if (right_count <= 0) return 0.0;
    return std::min(1.0, CardenasDistinct(right_key_ndv_, right_count) /
                             right_key_ndv_);
  }

  static double NetInserts(const EdgeStats& e) {
    return e.card - 2 * std::min(e.card, e.deletes);
  }

  double key_ndv_ = 1.0;
  double right_key_ndv_ = 1.0;
  double l_cum_ = 0, r_cum_ = 0;
  std::map<QueryId, double> l_q_;
  std::map<QueryId, double> r_q_;
};

class AggregateModel : public OpModel {
 public:
  AggregateModel(const PlanNode* node, const ColumnProfile& child_profile)
      : OpModel(node) {
    groups_ = GroupCount(node->group_by, child_profile);
    for (const AggSpec& a : node->aggregates) {
      if (a.kind == AggKind::kMin || a.kind == AggKind::kMax) has_minmax_ = true;
    }
    for (const std::string& g : node->group_by) {
      const ColumnStats* cs = FindColumn(child_profile, g);
      if (cs != nullptr) profile_[g] = *cs;
    }
    for (const AggSpec& a : node->aggregates) {
      ColumnStats cs;
      cs.numeric = true;
      cs.ndv = groups_;
      profile_[a.alias] = cs;
    }
  }

  EdgeStats Step(const std::vector<EdgeStats>& child_out) override {
    const EdgeStats& in = child_out[0];
    EdgeStats out;

    // Queries seeing (nearly) the whole input share output rows; estimate
    // their churn once as a class. Queries with restricted inputs get their
    // own output rows.
    double full_class_n = 0;
    bool has_full = false;
    for (const auto& [q, c] : in.per_query) {
      bool full = (in.card > 0 && c >= 0.99 * in.card);
      double o = StepQuery(q, c, in);
      out.per_query[q] = o;
      if (full) {
        has_full = true;
        full_class_n = std::max(full_class_n, o);
      } else {
        out.card += o;
      }
    }
    if (has_full) out.card += full_class_n;

    // Deletes among outputs: everything beyond one insert per new group is
    // delete+reinsert churn.
    out.deletes = out.card / 2.0 * (cum_in_ > in.card ? 1.0 : 0.0);

    double minmax_penalty = has_minmax_ ? in.deletes : 0.0;
    Charge(in.card + out.card + in.card /*state updates*/ + minmax_penalty);
    cum_in_ += in.card;
    return out;
  }

 private:
  // Churn estimate for one query's step input of c tuples.
  double StepQuery(QueryId q, double c, const EdgeStats& in) {
    double net = c - 2 * std::min(c, in.deletes * SafeFrac(c, in.card));
    double& n_cum = cum_q_[q];
    double before = CardenasDistinct(groups_, n_cum);
    double after = CardenasDistinct(groups_, n_cum + std::max(0.0, net));
    double new_groups = std::max(0.0, after - before);
    double touched = CardenasDistinct(groups_, c);
    double existing = std::max(0.0, touched - new_groups);
    n_cum += std::max(0.0, net);
    return new_groups + 2.0 * existing;
  }

  static double SafeFrac(double a, double b) { return b > 0 ? a / b : 0.0; }

  double groups_ = 1.0;
  bool has_minmax_ = false;
  double cum_in_ = 0;
  std::map<QueryId, double> cum_q_;
};

// Builds the model tree; consumes `inputs` (preorder) for kSubplanInput
// leaves and the catalog for kScan leaves.
std::unique_ptr<OpModel> BuildModel(const PlanNodePtr& node,
                                    const Catalog& catalog, int pace,
                                    const std::vector<SimInput>& inputs,
                                    size_t* next_input) {
  switch (node->kind) {
    case PlanKind::kScan: {
      SimInput in;
      const TableStats& st = catalog.GetStats(node->table_name);
      in.card = st.row_count;
      in.deletes = 0;
      for (QueryId q : node->queries.ToIds()) in.per_query[q] = st.row_count;
      in.profile = ProfileFromStats(st);
      return std::make_unique<LeafModel>(node.get(), std::move(in), pace);
    }
    case PlanKind::kSubplanInput: {
      CHECK_LT(*next_input, inputs.size())
          << "missing SimInput for subplan input leaf";
      SimInput in = inputs[(*next_input)++];
      return std::make_unique<LeafModel>(node.get(), std::move(in), pace);
    }
    default:
      break;
  }
  std::vector<std::unique_ptr<OpModel>> kids;
  for (const PlanNodePtr& c : node->children) {
    kids.push_back(BuildModel(c, catalog, pace, inputs, next_input));
  }
  std::unique_ptr<OpModel> m;
  switch (node->kind) {
    case PlanKind::kFilter:
      m = std::make_unique<FilterModel>(node.get(), kids[0]->profile());
      break;
    case PlanKind::kProject:
      m = std::make_unique<ProjectModel>(node.get(), kids[0]->profile());
      break;
    case PlanKind::kJoin:
      m = std::make_unique<JoinModel>(node.get(), kids[0]->profile(),
                                      kids[1]->profile());
      break;
    case PlanKind::kAggregate:
      m = std::make_unique<AggregateModel>(node.get(), kids[0]->profile());
      break;
    default:
      CHECK(false) << "unexpected node kind";
  }
  m->children = std::move(kids);
  return m;
}

EdgeStats StepTree(OpModel* m) {
  std::vector<EdgeStats> child_out;
  child_out.reserve(m->children.size());
  for (auto& c : m->children) child_out.push_back(StepTree(c.get()));
  return m->Step(child_out);
}

double TreeCost(const OpModel* m) {
  double c = m->total_cost();
  for (const auto& k : m->children) c += TreeCost(k.get());
  return c;
}

void CollectOpWork(const OpModel* m, std::vector<double>* out) {
  out->push_back(m->total_cost());
  for (const auto& k : m->children) CollectOpWork(k.get(), out);
}

}  // namespace

double UnionFraction(const std::map<QueryId, double>& per_query,
                     double base_card) {
  if (base_card <= 0) return 0.0;
  double miss_all = 1.0;
  for (const auto& [q, c] : per_query) {
    double frac = std::min(1.0, std::max(0.0, c / base_card));
    miss_all *= (1.0 - frac);
  }
  return 1.0 - miss_all;
}

SimInput RestrictSimInput(const SimInput& in, QuerySet keep) {
  SimInput out;
  out.profile = in.profile;
  for (const auto& [q, c] : in.per_query) {
    if (keep.Contains(q)) out.per_query[q] = c;
  }
  double frac = UnionFraction(out.per_query, in.card);
  out.card = in.card * frac;
  out.deletes = in.deletes * frac;
  return out;
}

SimResult SimulateSubplan(const PlanNodePtr& root, const Catalog& catalog,
                          int pace, const std::vector<SimInput>& inputs,
                          const ExecOptions& opts) {
  CHECK_GE(pace, 1);
  size_t next_input = 0;
  std::unique_ptr<OpModel> model =
      BuildModel(root, catalog, pace, inputs, &next_input);
  CHECK_EQ(next_input, inputs.size()) << "unused SimInputs";

  SimResult res;
  double prev_cost = 0;
  for (int step = 0; step < pace; ++step) {
    EdgeStats out = StepTree(model.get());
    double cost = TreeCost(model.get());
    double step_cost = (cost - prev_cost) + opts.startup_cost;
    prev_cost = cost;
    res.private_total_work += step_cost;
    res.private_final_work = step_cost;
    res.out_card += out.card;
    res.out_deletes += out.deletes;
    for (const auto& [q, c] : out.per_query) res.out_per_query[q] += c;
  }
  res.out_profile = model->profile();
  CollectOpWork(model.get(), &res.per_op_work);
  return res;
}

}  // namespace ishare
