// Analytic per-subplan simulation — the inner loop of the cost estimator
// (paper Sec. 3.2, Fig. 4). Simulates k incremental executions of one
// subplan under the memoization-friendly pace redefinition (each execution
// processes 1/k of the subplan's own total input), producing private
// total/final work in OpWork units plus the output cardinalities that
// become the parents' inputs. CostEstimator (estimator.h) memoizes these
// results keyed by private pace configuration (Algorithm 1).

#ifndef ISHARE_COST_SIMULATOR_H_
#define ISHARE_COST_SIMULATOR_H_

#include <map>
#include <vector>

#include "ishare/cost/column_profile.h"
#include "ishare/exec/metrics.h"
#include "ishare/plan/subplan_graph.h"

namespace ishare {

// Estimated data flowing into a subplan leaf over the whole trigger window.
struct SimInput {
  double card = 0;     // total delta tuples (inserts + deletes)
  double deletes = 0;  // of which deletions
  std::map<QueryId, double> per_query;  // per-query tuple counts
  ColumnProfile profile;
};

// Output of simulating one subplan under one pace (Sec. 3.2, Fig. 4).
struct SimResult {
  double private_total_work = 0;  // cost of all simulated executions
  double private_final_work = 0;  // cost of the last simulated execution
  // Output over the whole window, which becomes the parents' SimInput.
  double out_card = 0;
  double out_deletes = 0;
  std::map<QueryId, double> out_per_query;
  ColumnProfile out_profile;
  // Cumulative estimated work per operator, preorder over the subplan tree.
  std::vector<double> per_op_work;
};

// Simulates `pace` incremental executions of the subplan rooted at `root`,
// each processing 1/pace of the subplan's total input (the paper's
// memoization-friendly redefinition of pace). kScan leaves draw their
// totals from the catalog; kSubplanInput leaves consume `inputs` in
// preorder. The analytic operator models mirror the runtime operators:
// symmetric join state growth, Cardenas group-touch estimates, aggregate
// delete+insert churn and min/max delete-rescan penalties.
SimResult SimulateSubplan(const PlanNodePtr& root, const Catalog& catalog,
                          int pace, const std::vector<SimInput>& inputs,
                          const ExecOptions& opts);

// Fraction of `base_card` tuples valid for at least one of the per-query
// counts, under independence of per-query memberships.
double UnionFraction(const std::map<QueryId, double>& per_query,
                     double base_card);

// Restricts a SimInput to the tuples relevant for `keep` (per-query counts
// filtered; card/deletes scaled by the union fraction of the kept queries).
SimInput RestrictSimInput(const SimInput& in, QuerySet keep);

}  // namespace ishare

#endif  // ISHARE_COST_SIMULATOR_H_
