#include "ishare/exec/adaptive_executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "ishare/common/fraction.h"
#include "ishare/obs/obs.h"

namespace ishare {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

AdaptiveExecutor::AdaptiveExecutor(CostEstimator* estimator,
                                   StreamSource* source,
                                   std::vector<double> abs_constraints,
                                   AdaptivePolicy policy, ExecOptions opts,
                                   PaceOptimizerOptions opt_opts)
    : graph_(&estimator->graph()),
      source_(source),
      estimator_(estimator),
      constraints_(std::move(abs_constraints)),
      policy_(policy),
      opts_(opts),
      opt_opts_(opt_opts) {
  CHECK(estimator != nullptr && source != nullptr);
  CHECK_EQ(static_cast<int>(constraints_.size()), graph_->num_queries());
  int n = graph_->num_subplans();
  buffers_.resize(n);
  executors_.resize(n);
  pred_final_.resize(n, 0.0);
  pred_nonfinal_.resize(n, 0.0);
  protective_.resize(n, true);
  for (int i : graph_->TopoChildrenFirst()) {
    const Subplan& sp = graph_->subplan(i);
    buffers_[i] = std::make_unique<DeltaBuffer>(
        sp.root->output_schema, "subplan_" + std::to_string(i));
    executors_[i] = std::make_unique<SubplanExecutor>(
        sp, source_, buffers_, buffers_[i].get(), opts_);
  }
}

void AdaptiveExecutor::RecomputePredictions() {
  PlanCost cost = estimator_->Estimate(paces_);
  pred_total_ = cost.total_work;
  int n = graph_->num_subplans();
  for (int s = 0; s < n; ++s) {
    const SimResult& r = estimator_->SubplanResult(s, paces_);
    pred_final_[s] = r.private_final_work;
    pred_nonfinal_[s] =
        paces_[s] > 1
            ? (r.private_total_work - r.private_final_work) /
                  static_cast<double>(paces_[s] - 1)
            : r.private_final_work;
  }
  // A query is at risk when its drift-corrected predicted final work has
  // less than risk_margin headroom under its constraint; its subplans are
  // exempt from degradation.
  std::vector<bool> at_risk(constraints_.size(), false);
  for (size_t q = 0; q < constraints_.size(); ++q) {
    double corrected = corrected_ratio_ * cost.query_final_work[q];
    at_risk[q] = corrected >= constraints_[q] * (1.0 - policy_.risk_margin);
  }
  for (int s = 0; s < n; ++s) {
    protective_[s] = false;
    for (QueryId q : graph_->subplan(s).queries.ToIds()) {
      if (q < static_cast<QueryId>(at_risk.size()) && at_risk[q]) {
        protective_[s] = true;
      }
    }
  }
}

Result<AdaptiveRunResult> AdaptiveExecutor::Run(
    const PaceConfig& initial_paces) {
  ISHARE_RETURN_NOT_OK(ValidatePaceConfig(*graph_, initial_paces));
  obs::ScopedSpan run_span("exec.adaptive.run");
  int n = graph_->num_subplans();
  paces_ = initial_paces;
  corrected_ratio_ = 1.0;
  RecomputePredictions();

  AdaptiveRunResult out;
  out.run.subplans.resize(n);
  out.stats.pace_history.push_back(paces_);
  std::vector<int> topo = graph_->TopoChildrenFirst();

  // The schedule is a mutable set of future event points; re-derivation
  // rebuilds it from the in-flight position.
  std::set<Fraction> points;
  auto rebuild_points = [&](const Fraction& after) {
    points.clear();
    for (int s = 0; s < n; ++s) {
      for (int i = 1; i <= paces_[s]; ++i) {
        Fraction f = Fraction::Make(i, paces_[s]);
        if (after < f) points.insert(f);
      }
    }
    points.insert(Fraction{1, 1});  // the trigger is never rescheduled away
  };
  rebuild_points(Fraction{0, 1});

  // Drift accumulators over *scheduled* executions only; catch-up runs
  // spend real work (counted in observed_total) but are not part of the
  // prediction baseline.
  double drift_obs = 0;
  double drift_pred = 0;
  int64_t sched_execs = 0;
  double observed_total = 0;

  auto ratio = [&]() {
    if (sched_execs < policy_.min_drift_samples || drift_pred <= kEps) {
      return 1.0;
    }
    return drift_obs / drift_pred;
  };

  while (!points.empty()) {
    Fraction f = *points.begin();
    points.erase(points.begin());
    ISHARE_RETURN_NOT_OK(source_->AdvanceToStep(f.num, f.den));
    bool is_trigger = (f.num == f.den);

    // Overload: cumulative work has outrun the drift-corrected pro-rata
    // budget for the window progress so far.
    double budget =
        ratio() * pred_total_ * f.ToDouble() * policy_.overload_factor;
    bool overloaded = policy_.enable_degradation &&
                      sched_execs >= policy_.min_drift_samples &&
                      observed_total > budget;

    for (int s : topo) {
      bool scheduled = f.IsStepOf(paces_[s]);
      bool skip = scheduled && !is_trigger && overloaded && !protective_[s];
      bool catchup = false;
      if (!scheduled && !is_trigger && policy_.enable_catchup &&
          protective_[s] && executors_[s]->executions() > 0) {
        int64_t baseline =
            std::max<int64_t>(1, executors_[s]->last_input_consumed());
        catchup = executors_[s]->PendingInput() >=
                  static_cast<int64_t>(policy_.backlog_factor *
                                       static_cast<double>(baseline));
      }
      if (skip) {
        ++out.stats.skipped_execs;
        obs::Registry().GetCounter("exec.adaptive.skip").Add(1);
        continue;
      }
      if (!scheduled && !catchup) continue;

      ISHARE_ASSIGN_OR_RETURN(ExecRecord rec, executors_[s]->RunExecution());
      SubplanRunStats& st = out.run.subplans[s];
      st.work_per_exec.push_back(rec.work);
      st.secs_per_exec.push_back(rec.seconds);
      st.exec_fraction.push_back(f.ToDouble());
      st.total_work += rec.work;
      st.total_seconds += rec.seconds;
      st.tuples_out += rec.tuples_out;
      if (is_trigger) {
        st.final_work = rec.work;
        st.final_seconds = rec.seconds;
      }
      out.run.total_work += rec.work;
      out.run.total_seconds += rec.seconds;
      observed_total += rec.work;
      if (catchup) {
        ++out.stats.catchup_execs;
        obs::Registry().GetCounter("exec.adaptive.catchup").Add(1);
      } else {
        double pred = is_trigger ? pred_final_[s] : pred_nonfinal_[s];
        if (pred > kEps) {
          drift_obs += rec.work;
          drift_pred += pred;
          ++sched_execs;
        }
      }
    }

    double r = ratio();
    out.stats.drift_ratio = r;

    // Mid-window pace re-derivation: when the cost model is off by more
    // than the threshold relative to the last correction, re-aim the
    // optimizer at drift-corrected constraints and warm-start it from the
    // schedule in flight.
    bool drifted =
        std::abs(r / std::max(corrected_ratio_, kEps) - 1.0) >
        policy_.drift_threshold;
    if (!is_trigger && policy_.enable_rederive && drifted &&
        out.stats.rederivations < policy_.max_rederivations) {
      obs::ScopedSpan rederive_span("exec.adaptive.rederive");
      obs::Registry().GetCounter("exec.adaptive.rederive").Add(1);
      auto t0 = std::chrono::steady_clock::now();
      std::vector<double> scaled(constraints_.size());
      for (size_t q = 0; q < constraints_.size(); ++q) {
        scaled[q] = constraints_[q] / std::max(r, kEps);
      }
      PaceOptimizer optimizer(estimator_, scaled, opt_opts_);
      PaceSearchResult search =
          r > corrected_ratio_
              ? optimizer.FindPaceConfiguration(&paces_)
              : optimizer.RefineDecreasing(paces_);
      out.stats.rederive_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      ++out.stats.rederivations;
      corrected_ratio_ = r;
      if (search.paces != paces_) {
        paces_ = search.paces;
        out.stats.pace_history.push_back(paces_);
        rebuild_points(f);
      }
    }
    RecomputePredictions();
  }

  obs::Registry().GetGauge("exec.adaptive.drift_ratio").Set(
      out.stats.drift_ratio);
  out.run.query_final_work.assign(graph_->num_queries(), 0.0);
  out.run.query_latency_seconds.assign(graph_->num_queries(), 0.0);
  for (QueryId q = 0; q < graph_->num_queries(); ++q) {
    for (int s : graph_->SubplansOfQuery(q)) {
      out.run.query_final_work[q] += out.run.subplans[s].final_work;
      out.run.query_latency_seconds[q] += out.run.subplans[s].final_seconds;
    }
  }
  return out;
}

DeltaBuffer* AdaptiveExecutor::query_output(QueryId q) const {
  int root = graph_->query_root(q);
  CHECK_GE(root, 0);
  return buffers_[root].get();
}

}  // namespace ishare
