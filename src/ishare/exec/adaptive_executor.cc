#include "ishare/exec/adaptive_executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "ishare/common/fraction.h"
#include "ishare/flow/shedding.h"
#include "ishare/obs/obs.h"
#include "ishare/sched/wave.h"

namespace ishare {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

AdaptiveExecutor::AdaptiveExecutor(CostEstimator* estimator,
                                   StreamSource* source,
                                   std::vector<double> abs_constraints,
                                   AdaptivePolicy policy, ExecOptions opts,
                                   PaceOptimizerOptions opt_opts)
    : graph_(&estimator->graph()),
      source_(source),
      estimator_(estimator),
      constraints_(std::move(abs_constraints)),
      policy_(policy),
      opts_(opts),
      opt_opts_(opt_opts) {
  CHECK(estimator != nullptr && source != nullptr);
  CHECK_EQ(static_cast<int>(constraints_.size()), graph_->num_queries());
  // Pool creation precedes the executor loop: BuildTree binds operators
  // to opts_.sched_pool. With a memory budget attached the executor runs
  // serial regardless of num_threads (see RunLevelsParallel's contract).
  if (opts_.sched.num_threads > 1 && opts_.flow.budget == nullptr) {
    pool_ = std::make_unique<sched::WorkerPool>(opts_.sched.num_threads);
    opts_.sched_pool = pool_.get();
    levels_ = sched::StaticLevels(*graph_);
  }
  int n = graph_->num_subplans();
  buffers_.resize(n);
  executors_.resize(n);
  pred_final_.resize(n, 0.0);
  pred_nonfinal_.resize(n, 0.0);
  protective_.resize(n, true);
  slack_.resize(constraints_.size(), 0.0);
  subplan_slack_.resize(n, 0.0);
  sheddable_.resize(n, false);
  for (int i : graph_->TopoChildrenFirst()) {
    const Subplan& sp = graph_->subplan(i);
    buffers_[i] = std::make_unique<DeltaBuffer>(
        sp.root->output_schema, "subplan_" + std::to_string(i));
    if (opts_.flow.budget != nullptr) {
      BufferLimits limits;
      limits.soft_limit_bytes = opts_.flow.buffer_soft_limit_bytes;
      limits.high_watermark = opts_.flow.buffer_high_watermark;
      limits.low_watermark = opts_.flow.buffer_low_watermark;
      buffers_[i]->set_limits(limits);
      buffers_[i]->AttachBudget(opts_.flow.budget);
    }
    executors_[i] = std::make_unique<SubplanExecutor>(
        sp, source_, buffers_, buffers_[i].get(), opts_);
  }
  if (opts_.flow.budget != nullptr) {
    base_component_ = opts_.flow.budget->Register("base");
    PublishBaseBytes();
  }
}

void AdaptiveExecutor::PublishBaseBytes() {
  if (base_component_ < 0) return;
  int64_t bytes = 0;
  for (const std::string& name : source_->TableNames()) {
    bytes += source_->buffer(name)->retained_bytes();
  }
  opts_.flow.budget->Set(base_component_, bytes);
}

void AdaptiveExecutor::RecomputePredictions() {
  PlanCost cost = estimator_->Estimate(paces_);
  pred_total_ = cost.total_work;
  int n = graph_->num_subplans();
  for (int s = 0; s < n; ++s) {
    const SimResult& r = estimator_->SubplanResult(s, paces_);
    pred_final_[s] = r.private_final_work;
    pred_nonfinal_[s] =
        paces_[s] > 1
            ? (r.private_total_work - r.private_final_work) /
                  static_cast<double>(paces_[s] - 1)
            : r.private_final_work;
  }
  // A query is at risk when its drift-corrected predicted final work has
  // less than risk_margin headroom under its constraint; its subplans are
  // exempt from degradation.
  std::vector<bool> at_risk(constraints_.size(), false);
  for (size_t q = 0; q < constraints_.size(); ++q) {
    double corrected = corrected_ratio_ * cost.query_final_work[q];
    at_risk[q] = corrected >= constraints_[q] * (1.0 - policy_.risk_margin);
    // Zero-slack admission is a standing commitment: drift corrections
    // never talk the policy out of protecting these queries.
    if (q < zero_slack_sticky_.size() && zero_slack_sticky_[q]) {
      at_risk[q] = true;
    }
  }
  // Time slackness (DESIGN.md §9): the shedding policy's ranking. A
  // subplan is only as expendable as the least-slack query it serves,
  // and serving any at-risk query makes it protective — never shed.
  slack_ = QuerySlackFractions(cost, constraints_, corrected_ratio_);
  for (int s = 0; s < n; ++s) {
    protective_[s] = false;
    double min_slack = 1.0;
    for (QueryId q : graph_->subplan(s).queries.ToIds()) {
      if (q < static_cast<QueryId>(at_risk.size()) && at_risk[q]) {
        protective_[s] = true;
      }
      if (q < static_cast<QueryId>(slack_.size())) {
        min_slack = std::min(min_slack, slack_[q]);
      }
    }
    subplan_slack_[s] = min_slack;
    sheddable_[s] = !protective_[s];
  }
}

void AdaptiveExecutor::RebuildPoints(const Fraction& after) {
  ws_.points.clear();
  int n = graph_->num_subplans();
  for (int s = 0; s < n; ++s) {
    for (int i = 1; i <= paces_[s]; ++i) {
      Fraction f = Fraction::Make(i, paces_[s]);
      if (after < f) ws_.points.insert(f);
    }
  }
  ws_.points.insert(Fraction{1, 1});  // the trigger is never rescheduled away
}

double AdaptiveExecutor::DriftRatio() const {
  if (ws_.sched_execs < policy_.min_drift_samples ||
      ws_.drift_pred <= kEps) {
    return 1.0;
  }
  return ws_.drift_obs / ws_.drift_pred;
}

Status AdaptiveExecutor::BeginWindow(const PaceConfig& initial_paces) {
  ISHARE_RETURN_NOT_OK(ValidatePaceConfig(*graph_, initial_paces));
  paces_ = initial_paces;
  corrected_ratio_ = 1.0;
  zero_slack_sticky_.assign(constraints_.size(), false);
  RecomputePredictions();
  for (size_t q = 0; q < slack_.size() && q < zero_slack_sticky_.size();
       ++q) {
    zero_slack_sticky_[q] = slack_[q] <= 1e-9;
  }
  ws_ = WindowState{};
  ws_.out.run.subplans.resize(graph_->num_subplans());
  ws_.out.stats.pace_history.push_back(paces_);
  ws_.out.flow.query_deferred.assign(constraints_.size(), 0);
  ws_.out.flow.query_dropped.assign(constraints_.size(), 0);
  RebuildPoints(Fraction{0, 1});
  ws_.active = true;
  return Status::OK();
}

// Hard-budget enforcement: discards the pending input of sheddable
// subplans in descending-slack order until usage fits the budget (or no
// sheddable subplan has pending input left). Runs *before* this step's
// executions so operator state cannot grow with input the budget has no
// room for. Each discard is immediately trimmable, so the trim after
// each drop is what actually returns the bytes.
Status AdaptiveExecutor::ShedDropPass(const std::vector<int>& shed_order) {
  flow::MemoryBudget* budget = opts_.flow.budget;
  flow::FlowStats& fs = ws_.out.flow;
  for (int s : shed_order) {
    if (budget->Pressure() < policy_.drop_pressure_target) break;
    ISHARE_ASSIGN_OR_RETURN(int64_t dropped,
                            executors_[s]->DiscardPendingInput());
    if (dropped == 0) continue;
    fs.dropped_tuples += dropped;
    ws_.out.drop_log.push_back(
        ShedDropEvent{ws_.step + 1, s, subplan_slack_[s], dropped});
    for (QueryId q : graph_->subplan(s).queries.ToIds()) {
      if (q < static_cast<QueryId>(fs.query_dropped.size())) {
        fs.query_dropped[q] += dropped;
      }
    }
    int64_t reclaimed = TrimEngineBuffers(*graph_, source_, buffers_);
    if (reclaimed > 0) {
      ++fs.trims;
      fs.trimmed_tuples += reclaimed;
    }
    PublishBaseBytes();
  }
  return Status::OK();
}

// Parallel twin of StepOnce's decision/execution loop. Only reachable
// when no memory budget is attached (pool_ is not created otherwise), so
// the shed/defer/backpressure branches of the serial loop are vacuous
// here and deliberately absent. Serial equivalence (DESIGN.md §10):
// decisions fire level by level — a catch-up test reads PendingInput(),
// which a child's same-step append changes, and every child sits in a
// strictly lower level, so each subplan sees exactly the state the serial
// topo loop would have shown it. Executions within a level touch disjoint
// executor/buffer state (no parent-child pairs share a level), and all
// float accumulation — metrics, run stats, drift — is applied after the
// levels strictly in topo order, reproducing the serial summation order
// bit for bit. Divergences, both on paths the equivalence tests do not
// exercise: before-subplan hooks fire per level ahead of that level's
// executions instead of interleaved per subplan, and a failed level
// publishes nothing for the torn step.
Status AdaptiveExecutor::RunLevelsParallel(const Fraction& f, int64_t step,
                                           bool is_trigger, bool overloaded) {
  AdaptiveRunResult& out = ws_.out;
  int n = graph_->num_subplans();
  std::vector<char> ran(n, 0);
  std::vector<char> was_catchup(n, 0);
  std::vector<Status> statuses(n);
  std::vector<ExecRecord> records(n);
  int wave = 0;  // 0-based index among this step's dispatched levels
  for (const std::vector<int>& level : levels_) {
    std::vector<int> to_run;
    for (int s : level) {
      bool scheduled = f.IsStepOf(paces_[s]);
      bool skip = scheduled && !is_trigger && overloaded && !protective_[s];
      bool catchup = false;
      if (!scheduled && !is_trigger && policy_.enable_catchup &&
          protective_[s] && executors_[s]->executions() > 0) {
        int64_t baseline =
            std::max<int64_t>(1, executors_[s]->last_input_consumed());
        catchup = executors_[s]->PendingInput() >=
                  static_cast<int64_t>(policy_.backlog_factor *
                                       static_cast<double>(baseline));
      }
      if (skip) {
        ++out.stats.skipped_execs;
        obs::Registry().GetCounter("exec.adaptive.skip").Add(1);
        continue;
      }
      if (!scheduled && !catchup) continue;
      was_catchup[s] = catchup ? 1 : 0;
      to_run.push_back(s);
    }
    if (to_run.empty()) continue;
    if (before_subplan_) {
      for (int s : to_run) ISHARE_RETURN_NOT_OK(before_subplan_(step, s));
    }
    pool_->ParallelFor(static_cast<int64_t>(to_run.size()), [&](int64_t i) {
      int s = to_run[static_cast<size_t>(i)];
      Result<ExecRecord> r = executors_[s]->ExecuteOnce();
      if (r.ok()) {
        records[s] = *r;
        ran[s] = 1;
      } else {
        statuses[s] = r.status();
      }
    });
    bool failed = false;
    for (int s : to_run) {
      if (!statuses[s].ok()) failed = true;
    }
    if (failed) {
      for (int s : graph_->TopoChildrenFirst()) {
        ISHARE_RETURN_NOT_OK(statuses[s]);
      }
    }
    if (after_wave_) ISHARE_RETURN_NOT_OK(after_wave_(step, wave));
    ++wave;
  }
  for (int s : graph_->TopoChildrenFirst()) {
    if (!ran[s]) continue;
    const ExecRecord& rec = records[s];
    executors_[s]->PublishExecMetrics(rec);
    out.flow.admitted_tuples += rec.tuples_in;
    SubplanRunStats& st = out.run.subplans[s];
    st.work_per_exec.push_back(rec.work);
    st.secs_per_exec.push_back(rec.seconds);
    st.exec_fraction.push_back(f.ToDouble());
    st.total_work += rec.work;
    st.total_seconds += rec.seconds;
    st.tuples_out += rec.tuples_out;
    if (is_trigger) {
      st.final_work = rec.work;
      st.final_seconds = rec.seconds;
    }
    out.run.total_work += rec.work;
    out.run.total_seconds += rec.seconds;
    ws_.observed_total += rec.work;
    if (was_catchup[s]) {
      ++out.stats.catchup_execs;
      obs::Registry().GetCounter("exec.adaptive.catchup").Add(1);
    } else {
      double pred = is_trigger ? pred_final_[s] : pred_nonfinal_[s];
      if (pred > kEps) {
        ws_.drift_obs += rec.work;
        ws_.drift_pred += pred;
        ++ws_.sched_execs;
      }
    }
  }
  return Status::OK();
}

Status AdaptiveExecutor::StepOnce() {
  std::vector<int> topo = graph_->TopoChildrenFirst();
  AdaptiveRunResult& out = ws_.out;

  Fraction f = *ws_.points.begin();
  ws_.points.erase(ws_.points.begin());
  ISHARE_RETURN_NOT_OK(source_->AdvanceToStep(f.num, f.den));
  bool is_trigger = (f.num == f.den);
  int64_t step = ws_.step + 1;  // 1-based step being executed

  // Flow control (DESIGN.md §9): account the newly arrived base bytes,
  // enforce the hard budget by dropping slackest-first if enabled, and
  // compute this step's deferral set from the current pressure. The shed
  // set is decided before any execution so the decision depends only on
  // checkpointed state plus the (deterministic) stream — replayable.
  std::vector<char> shed(graph_->num_subplans(), 0);
  flow::MemoryBudget* mem = opts_.flow.budget;
  if (mem != nullptr) {
    PublishBaseBytes();
    std::vector<int> shed_order = flow::ShedOrder(subplan_slack_, sheddable_);
    if (policy_.enable_shed_drop && mem->limited() &&
        mem->Pressure() >= policy_.drop_pressure_target) {
      ISHARE_RETURN_NOT_OK(ShedDropPass(shed_order));
    }
    if (policy_.enable_shed_defer && mem->limited() && !is_trigger) {
      int quota = flow::ShedQuota(mem->Pressure(), policy_.shed_pressure_start,
                                  static_cast<int>(shed_order.size()));
      for (int i = 0; i < quota; ++i) shed[shed_order[i]] = 1;
    }
  }

  // Overload: cumulative work has outrun the drift-corrected pro-rata
  // budget for the window progress so far.
  double budget =
      DriftRatio() * pred_total_ * f.ToDouble() * policy_.overload_factor;
  bool overloaded = policy_.enable_degradation &&
                    ws_.sched_execs >= policy_.min_drift_samples &&
                    ws_.observed_total > budget;

  if (pool_ != nullptr) {
    ISHARE_RETURN_NOT_OK(RunLevelsParallel(f, step, is_trigger, overloaded));
  } else {
    for (int s : topo) {
      bool scheduled = f.IsStepOf(paces_[s]);
      bool skip = scheduled && !is_trigger && overloaded && !protective_[s];
      bool catchup = false;
      if (!scheduled && !is_trigger && policy_.enable_catchup &&
          protective_[s] && executors_[s]->executions() > 0) {
        int64_t baseline =
            std::max<int64_t>(1, executors_[s]->last_input_consumed());
        catchup = executors_[s]->PendingInput() >=
                  static_cast<int64_t>(policy_.backlog_factor *
                                       static_cast<double>(baseline));
      }
      if (skip) {
        ++out.stats.skipped_execs;
        obs::Registry().GetCounter("exec.adaptive.skip").Add(1);
        continue;
      }
      // Slackness-aware deferral: a sheddable subplan's scheduled
      // intermediate execution is pushed to a later point, either by the
      // pressure quota or because its output buffer / the budget refuses
      // admission. The trigger is exempt, so results are unchanged.
      bool shed_defer = scheduled && !is_trigger && shed[s] != 0;
      if (!shed_defer && scheduled && !is_trigger && sheddable_[s] &&
          mem != nullptr) {
        bool denied = !buffers_[s]->AdmitStatus().ok();
        if (!denied && mem->limited()) {
          denied = mem->GrantHeadroom(executors_[s]->last_output_bytes())
                       .IsRetryableBackpressure();
        }
        if (denied) {
          shed_defer = true;
          ++out.flow.backpressure_events;
          obs::Registry().GetCounter("flow.backpressure.defer").Add(1);
        }
      }
      if (shed_defer) {
        ++out.flow.shed_deferred;
        for (QueryId q : graph_->subplan(s).queries.ToIds()) {
          if (q < static_cast<QueryId>(out.flow.query_deferred.size())) {
            ++out.flow.query_deferred[q];
          }
        }
        obs::Registry().GetCounter("flow.shed.deferred").Add(1);
        continue;
      }
      if (!scheduled && !catchup) continue;

      if (before_subplan_) ISHARE_RETURN_NOT_OK(before_subplan_(step, s));
      ISHARE_ASSIGN_OR_RETURN(ExecRecord rec, executors_[s]->RunExecution());
      out.flow.admitted_tuples += rec.tuples_in;
      SubplanRunStats& st = out.run.subplans[s];
      st.work_per_exec.push_back(rec.work);
      st.secs_per_exec.push_back(rec.seconds);
      st.exec_fraction.push_back(f.ToDouble());
      st.total_work += rec.work;
      st.total_seconds += rec.seconds;
      st.tuples_out += rec.tuples_out;
      if (is_trigger) {
        st.final_work = rec.work;
        st.final_seconds = rec.seconds;
      }
      out.run.total_work += rec.work;
      out.run.total_seconds += rec.seconds;
      ws_.observed_total += rec.work;
      if (catchup) {
        ++out.stats.catchup_execs;
        obs::Registry().GetCounter("exec.adaptive.catchup").Add(1);
      } else {
        double pred = is_trigger ? pred_final_[s] : pred_nonfinal_[s];
        if (pred > kEps) {
          ws_.drift_obs += rec.work;
          ws_.drift_pred += pred;
          ++ws_.sched_execs;
        }
      }
    }
  }

  double r = DriftRatio();
  out.stats.drift_ratio = r;

  // Mid-window pace re-derivation: when the cost model is off by more
  // than the threshold relative to the last correction, re-aim the
  // optimizer at drift-corrected constraints and warm-start it from the
  // schedule in flight.
  bool drifted = std::abs(r / std::max(corrected_ratio_, kEps) - 1.0) >
                 policy_.drift_threshold;
  if (!is_trigger && policy_.enable_rederive && drifted &&
      out.stats.rederivations < policy_.max_rederivations) {
    obs::ScopedSpan rederive_span("exec.adaptive.rederive");
    obs::Registry().GetCounter("exec.adaptive.rederive").Add(1);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<double> scaled(constraints_.size());
    for (size_t q = 0; q < constraints_.size(); ++q) {
      scaled[q] = constraints_[q] / std::max(r, kEps);
    }
    PaceOptimizer optimizer(estimator_, scaled, opt_opts_);
    PaceSearchResult search = r > corrected_ratio_
                                  ? optimizer.FindPaceConfiguration(&paces_)
                                  : optimizer.RefineDecreasing(paces_);
    out.stats.rederive_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ++out.stats.rederivations;
    corrected_ratio_ = r;
    if (search.paces != paces_) {
      paces_ = search.paces;
      out.stats.pace_history.push_back(paces_);
      RebuildPoints(f);
    }
  }
  RecomputePredictions();
  // Boundary trim: everything below the slowest consumer is dead weight
  // between steps; reclaiming here keeps the step-boundary fingerprints
  // (and therefore checkpoints) deterministic.
  if (opts_.flow.trim_at_boundaries) {
    int64_t reclaimed = TrimEngineBuffers(*graph_, source_, buffers_);
    if (reclaimed > 0) {
      ++out.flow.trims;
      out.flow.trimmed_tuples += reclaimed;
    }
    PublishBaseBytes();
  }
  ws_.last_point = f;
  return Status::OK();
}

AdaptiveRunResult AdaptiveExecutor::FinishWindow() {
  AdaptiveRunResult& out = ws_.out;
  obs::Registry().GetGauge("exec.adaptive.drift_ratio").Set(
      out.stats.drift_ratio);
  out.run.query_final_work.assign(graph_->num_queries(), 0.0);
  out.run.query_latency_seconds.assign(graph_->num_queries(), 0.0);
  for (QueryId q = 0; q < graph_->num_queries(); ++q) {
    for (int s : graph_->SubplansOfQuery(q)) {
      out.run.query_final_work[q] += out.run.subplans[s].final_work;
      out.run.query_latency_seconds[q] += out.run.subplans[s].final_seconds;
    }
  }
  ws_.active = false;
  return out;
}

Result<AdaptiveRunResult> AdaptiveExecutor::ResumeWindow() {
  if (!ws_.active) {
    return Status::InvalidArgument(
        "no active window: call BeginWindow or Restore first");
  }
  obs::ScopedSpan run_span("exec.adaptive.run");
  while (!ws_.points.empty()) {
    ISHARE_RETURN_NOT_OK(StepOnce());
    ++ws_.step;
    if (after_step_) ISHARE_RETURN_NOT_OK(after_step_(ws_.step));
  }
  return FinishWindow();
}

Result<AdaptiveRunResult> AdaptiveExecutor::Run(
    const PaceConfig& initial_paces) {
  ISHARE_RETURN_NOT_OK(BeginWindow(initial_paces));
  return ResumeWindow();
}

Status AdaptiveExecutor::SnapshotImpl(recovery::CheckpointWriter* w,
                                      bool include_timings) const {
  w->U64(paces_.size());
  for (int p : paces_) w->I64(p);
  w->F64(corrected_ratio_);
  w->U64(zero_slack_sticky_.size());
  for (bool b : zero_slack_sticky_) w->I64(b ? 1 : 0);
  w->I64(ws_.last_point.num);
  w->I64(ws_.last_point.den);
  w->U64(ws_.points.size());
  for (const Fraction& f : ws_.points) {
    w->I64(f.num);
    w->I64(f.den);
  }
  w->I64(ws_.step);
  w->F64(ws_.drift_obs);
  w->F64(ws_.drift_pred);
  w->I64(ws_.sched_execs);
  w->F64(ws_.observed_total);
  const AdaptationStats& st = ws_.out.stats;
  w->I64(st.rederivations);
  w->I64(st.skipped_execs);
  w->I64(st.catchup_execs);
  w->F64(st.drift_ratio);
  if (include_timings) w->F64(st.rederive_seconds);
  w->U64(st.pace_history.size());
  for (const PaceConfig& pc : st.pace_history) {
    w->U64(pc.size());
    for (int p : pc) w->I64(p);
  }
  const flow::FlowStats& fs = ws_.out.flow;
  w->I64(fs.admitted_tuples);
  w->I64(fs.dropped_tuples);
  w->I64(fs.shed_deferred);
  w->I64(fs.backpressure_events);
  w->I64(fs.trims);
  w->I64(fs.trimmed_tuples);
  w->U64(fs.query_deferred.size());
  for (int64_t v : fs.query_deferred) w->I64(v);
  w->U64(fs.query_dropped.size());
  for (int64_t v : fs.query_dropped) w->I64(v);
  SnapshotRunStats(w, ws_.out.run, include_timings);
  return SnapshotEngineState(w, *source_, buffers_, executors_);
}

Status AdaptiveExecutor::Snapshot(recovery::CheckpointWriter* w) const {
  return SnapshotImpl(w, /*include_timings=*/true);
}

Status AdaptiveExecutor::Restore(recovery::CheckpointReader* r) {
  uint64_t np = r->U64();
  if (np != static_cast<uint64_t>(graph_->num_subplans())) {
    r->Fail("checkpoint pace table has " + std::to_string(np) +
            " entries for a graph with " +
            std::to_string(graph_->num_subplans()) + " subplans");
    return r->status();
  }
  PaceConfig paces(np);
  for (int& p : paces) p = static_cast<int>(r->I64());
  if (!r->ok()) return r->status();
  Status st = ValidatePaceConfig(*graph_, paces);
  if (!st.ok()) {
    r->Fail("checkpoint pace table invalid: " + st.ToString());
    return r->status();
  }
  paces_ = paces;
  corrected_ratio_ = r->F64();
  uint64_t nsticky = r->U64();
  if (nsticky > r->remaining()) {
    r->Fail("checkpoint zero-slack flag vector exceeds payload");
    return r->status();
  }
  zero_slack_sticky_.assign(nsticky, false);
  for (uint64_t i = 0; i < nsticky; ++i) {
    zero_slack_sticky_[i] = r->I64() != 0;
  }
  if (!r->ok()) return r->status();

  ws_ = WindowState{};
  int64_t lp_num = r->I64();
  int64_t lp_den = r->I64();
  if (lp_den <= 0 || lp_num < 0 || lp_num > lp_den) {
    r->Fail("checkpoint window position " + std::to_string(lp_num) + "/" +
            std::to_string(lp_den) + " invalid");
    return r->status();
  }
  ws_.last_point = Fraction::Make(lp_num, lp_den);
  uint64_t num_points = r->U64();
  if (num_points > r->remaining()) {
    r->Fail("checkpoint event-point count exceeds payload");
    return r->status();
  }
  for (uint64_t i = 0; i < num_points && r->ok(); ++i) {
    int64_t num = r->I64();
    int64_t den = r->I64();
    if (den <= 0 || num < 0 || num > den) {
      r->Fail("checkpoint event point " + std::to_string(num) + "/" +
              std::to_string(den) + " invalid");
      return r->status();
    }
    ws_.points.insert(Fraction::Make(num, den));
  }
  ws_.step = r->I64();
  ws_.drift_obs = r->F64();
  ws_.drift_pred = r->F64();
  ws_.sched_execs = r->I64();
  ws_.observed_total = r->F64();
  AdaptationStats& stats = ws_.out.stats;
  stats.rederivations = static_cast<int>(r->I64());
  stats.skipped_execs = r->I64();
  stats.catchup_execs = r->I64();
  stats.drift_ratio = r->F64();
  stats.rederive_seconds = r->F64();
  uint64_t nh = r->U64();
  if (nh > r->remaining()) {
    r->Fail("checkpoint pace-history count exceeds payload");
    return r->status();
  }
  stats.pace_history.clear();
  for (uint64_t i = 0; i < nh && r->ok(); ++i) {
    uint64_t len = r->U64();
    if (len > r->remaining()) {
      r->Fail("checkpoint pace-history entry exceeds payload");
      return r->status();
    }
    PaceConfig pc(len);
    for (int& p : pc) p = static_cast<int>(r->I64());
    stats.pace_history.push_back(std::move(pc));
  }
  flow::FlowStats& fs = ws_.out.flow;
  fs.admitted_tuples = r->I64();
  fs.dropped_tuples = r->I64();
  fs.shed_deferred = r->I64();
  fs.backpressure_events = r->I64();
  fs.trims = r->I64();
  fs.trimmed_tuples = r->I64();
  uint64_t nqd = r->U64();
  if (nqd > r->remaining()) {
    r->Fail("checkpoint flow deferred-count vector exceeds payload");
    return r->status();
  }
  fs.query_deferred.assign(nqd, 0);
  for (int64_t& v : fs.query_deferred) v = r->I64();
  uint64_t nqx = r->U64();
  if (nqx > r->remaining()) {
    r->Fail("checkpoint flow dropped-count vector exceeds payload");
    return r->status();
  }
  fs.query_dropped.assign(nqx, 0);
  for (int64_t& v : fs.query_dropped) v = r->I64();
  if (!r->ok()) return r->status();
  // Replay the source to the checkpointed event point before restoring
  // consumer offsets against the regenerated base logs.
  if (ws_.last_point.num > 0) {
    ISHARE_RETURN_NOT_OK(
        source_->AdvanceToStep(ws_.last_point.num, ws_.last_point.den));
  }
  ISHARE_RETURN_NOT_OK(RestoreRunStats(r, &ws_.out.run));
  if (ws_.out.run.subplans.size() !=
      static_cast<size_t>(graph_->num_subplans())) {
    r->Fail("checkpoint run stats cover " +
            std::to_string(ws_.out.run.subplans.size()) +
            " subplans, graph has " +
            std::to_string(graph_->num_subplans()));
    return r->status();
  }
  ISHARE_RETURN_NOT_OK(RestoreEngineState(r, *source_, buffers_, executors_));
  RecomputePredictions();
  // Base buffers were regenerated untrimmed by the source replay above;
  // re-establish the boundary-trim invariant (everything below the min
  // consumer offset reclaimed) so the physical state — and every later
  // trim increment — matches the uninterrupted run. Not counted in
  // FlowStats: the restored counters already cover these tuples.
  if (opts_.flow.trim_at_boundaries) {
    TrimEngineBuffers(*graph_, source_, buffers_);
  }
  PublishBaseBytes();
  ws_.active = true;
  return r->status();
}

std::string AdaptiveExecutor::StateFingerprint() const {
  recovery::CheckpointWriter w;
  Status st = SnapshotImpl(&w, /*include_timings=*/false);
  CHECK(st.ok()) << "fingerprint failed: " << st.ToString();
  return w.Take();
}

int64_t AdaptiveExecutor::ReplayBacklog() const {
  int64_t backlog = 0;
  for (const auto& ex : executors_) backlog += ex->PendingInput();
  return backlog;
}

int64_t AdaptiveExecutor::ConsumedInput() const {
  int64_t consumed = 0;
  for (const auto& ex : executors_) consumed += ex->ConsumedInput();
  return consumed;
}

DeltaBuffer* AdaptiveExecutor::query_output(QueryId q) const {
  int root = graph_->query_root(q);
  CHECK_GE(root, 0);
  return buffers_[root].get();
}

}  // namespace ishare
