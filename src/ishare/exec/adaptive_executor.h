// Adaptive pace-schedule executor (DESIGN.md §6): keeps the paper's
// final-work goals when observed work drifts from the cost estimator's
// predictions or the stream arrives non-ideally. Extends PaceExecutor's
// semantics with mid-window pace re-derivation, graceful degradation under
// overload, and catch-up executions after bursts — all deterministic given
// the observed stream. Instrumented with obs spans/counters under
// exec.adaptive.* (DESIGN.md §7).
//
// Like PaceExecutor, the window is driven stepwise so the recovery layer
// (DESIGN.md §8) can checkpoint between event points and resume after a
// crash; every adaptation decision is work-based (never wall-clock), so a
// restored run replays the exact same skips, catch-ups and re-derivations.

#ifndef ISHARE_EXEC_ADAPTIVE_EXECUTOR_H_
#define ISHARE_EXEC_ADAPTIVE_EXECUTOR_H_

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "ishare/common/status.h"
#include "ishare/cost/estimator.h"
#include "ishare/exec/pace_executor.h"
#include "ishare/exec/subplan_exec.h"
#include "ishare/flow/memory_budget.h"
#include "ishare/opt/pace_optimizer.h"
#include "ishare/recovery/checkpointable.h"

namespace ishare {

// Knobs of the adaptive runtime (see DESIGN.md, "Runtime robustness").
// Every decision is deterministic given the observed stream, so a run is
// replayable from a seeded FaultPlan.
struct AdaptivePolicy {
  // Re-derive the remaining paces when the observed/predicted work ratio
  // moves by more than this relative amount since the last correction.
  double drift_threshold = 0.5;
  // Declare overload when cumulative observed work exceeds this multiple
  // of the (drift-corrected) pro-rata work budget for the window so far.
  double overload_factor = 2.0;
  // Run an unscheduled catch-up execution when a subplan's pending input
  // exceeds this multiple of what its last execution consumed.
  double backlog_factor = 3.0;
  // Constraint headroom below which a query counts as at-risk; at-risk
  // queries' subplans are never degraded.
  double risk_margin = 0.05;
  // Drift and overload decisions need at least this many observed
  // scheduled executions (early executions are noise-dominated).
  int min_drift_samples = 3;
  // Hard cap on mid-window re-derivations (each costs optimizer time).
  int max_rederivations = 4;

  bool enable_rederive = true;
  bool enable_degradation = true;
  bool enable_catchup = true;

  // ---- Memory flow control (DESIGN.md §9) -------------------------------
  // All of these are inert until ExecOptions::flow.budget is set.
  //
  // Budget pressure (used/budget) at which slack-ordered deferral starts.
  // The deferral quota ramps linearly from 0 here to every sheddable
  // subplan at pressure 1.0 (flow::ShedQuota), so a slacker subplan is
  // always shed before a less-slack one.
  double shed_pressure_start = 0.7;
  // Defer scheduled intermediate executions of sheddable subplans under
  // pressure. Pure deferral: the trigger still runs over all remaining
  // input, so results are unchanged — only peak memory and latency move.
  bool enable_shed_defer = true;
  // At/over the hard budget, additionally *drop* pending input of the
  // slackest subplans (with exact accounting in FlowStats) until usage
  // fits. Off by default: drops trade result completeness of slack
  // queries for the hard memory bound; zero-slack queries are never
  // dropped from.
  bool enable_shed_drop = false;
  // Pressure at/above which the drop pass fires, and the level it drains
  // back below. 1.0 = act only once the hard budget is breached; lower
  // values leave headroom for the growth the upcoming executions will
  // add before the next drop pass can run.
  double drop_pressure_target = 1.0;
};

// What the adaptive layer did during one run.
struct AdaptationStats {
  int rederivations = 0;
  int64_t skipped_execs = 0;   // degraded (merged into a later execution)
  int64_t catchup_execs = 0;   // unscheduled executions against backlog
  double drift_ratio = 1.0;    // final observed/predicted work ratio
  double rederive_seconds = 0; // optimizer time spent mid-window
  // Pace configurations in effect over the run: the initial one plus one
  // entry per re-derivation.
  std::vector<PaceConfig> pace_history;
};

// One hard-budget drop: which subplan's pending input was discarded, at
// what slack. Reporting-only — not checkpointed and not part of the state
// fingerprint (a recovered run's log covers only post-restore drops).
struct ShedDropEvent {
  int64_t step = 0;    // 1-based step whose drop pass emitted this
  int subplan = 0;
  double slack = 0;    // subplan slack at drop time (the ordering key)
  int64_t tuples = 0;  // pending input discarded
};

struct AdaptiveRunResult {
  RunResult run;
  AdaptationStats stats;
  // Flow-control ledger (empty counts when no budget was attached).
  flow::FlowStats flow;
  std::vector<ShedDropEvent> drop_log;
};

// Pace-schedule executor that keeps the paper's final-work goals when the
// world diverges from the plan. Unlike PaceExecutor, which replays a
// precomputed ideal schedule, this executor
//   1. monitors drift between observed per-execution work and the cost
//      estimator's prediction, and re-derives the remaining paces
//      mid-window (PaceOptimizer, warm-started from the schedule in
//      flight, aimed at drift-corrected constraints);
//   2. degrades gracefully under overload: scheduled intermediate
//      executions of subplans whose queries have slack are skipped, which
//      merges their pending deltas into the next execution instead of
//      replaying a stale schedule;
//   3. catches up after bursts: a subplan whose input backlog spikes gets
//      an unscheduled execution so the backlog does not land in the final
//      (latency-critical) execution.
// Correctness is invariant under all three: the trigger execution always
// runs over all remaining input, so materialized results match the batch
// results — only work and latency change.
class AdaptiveExecutor : public recovery::Checkpointable {
 public:
  using StepHook = std::function<Status(int64_t step)>;
  using SubplanHook = std::function<Status(int64_t step, int subplan)>;
  // Fires after dependency level `wave` (0-based index among the step's
  // dispatched levels) finishes executing, before any metrics publish;
  // see PaceExecutor::WaveHook. Parallel path only.
  using WaveHook = std::function<Status(int64_t step, int wave)>;

  // `estimator` supplies the prediction baseline and the re-derivation
  // search space; `abs_constraints` are absolute final-work constraints
  // indexed by query id (same units as the estimator). The stream source
  // must be freshly constructed or Reset().
  AdaptiveExecutor(CostEstimator* estimator, StreamSource* source,
                   std::vector<double> abs_constraints,
                   AdaptivePolicy policy = AdaptivePolicy(),
                   ExecOptions opts = ExecOptions(),
                   PaceOptimizerOptions opt_opts = PaceOptimizerOptions());

  // Executes the whole trigger window starting from `initial_paces`.
  // Equivalent to BeginWindow + ResumeWindow.
  Result<AdaptiveRunResult> Run(const PaceConfig& initial_paces);

  // Stepwise spine, mirroring PaceExecutor's.
  Status BeginWindow(const PaceConfig& initial_paces);
  Result<AdaptiveRunResult> ResumeWindow();

  bool window_active() const { return ws_.active; }
  int64_t completed_steps() const { return ws_.step; }

  void set_after_step_hook(StepHook h) { after_step_ = std::move(h); }
  void set_before_subplan_hook(SubplanHook h) {
    before_subplan_ = std::move(h);
  }
  void set_after_wave_hook(WaveHook h) { after_wave_ = std::move(h); }

  // Owned worker pool, or nullptr when the executor runs serial (always
  // nullptr when a memory budget is attached; see the ctor). The chaos
  // injector targets it for worker stall/delay events.
  sched::WorkerPool* worker_pool() const { return pool_.get(); }

  // Live flow-control ledger and drop log of the window in flight; the
  // chaos Supervisor polls these per step to derive defer/shed activity.
  const flow::FlowStats& flow_stats() const { return ws_.out.flow; }
  const std::vector<ShedDropEvent>& drop_log() const {
    return ws_.out.drop_log;
  }

  // Checkpointable (DESIGN.md §8): pace table + drift state + remaining
  // event points + adaptation stats + the execution substrate. Restore
  // must be called on a freshly constructed executor over the same
  // estimator/graph and an un-advanced source.
  Status Snapshot(recovery::CheckpointWriter* w) const override;
  Status Restore(recovery::CheckpointReader* r) override;

  // Deterministic state digest excluding wall-clock timings (see
  // PaceExecutor::StateFingerprint).
  std::string StateFingerprint() const;

  // Leaf deltas already in buffers that the next executions will re-read;
  // right after Restore this is the recovery replay backlog.
  int64_t ReplayBacklog() const;

  // Total leaf tuples the engine has taken responsibility for (consumed
  // offsets across every subplan's leaves). The flow-accounting identity
  // the overload harness checks is
  //   ConsumedInput() == flow.admitted_tuples + flow.dropped_tuples.
  int64_t ConsumedInput() const;

  // Output buffer of query q's root subplan (valid after Run()).
  DeltaBuffer* query_output(QueryId q) const;
  DeltaBuffer* subplan_output(int subplan) const {
    return buffers_[subplan].get();
  }

  // Per-query time slackness under the current drift-corrected
  // predictions (see QuerySlackFractions); the shedding policy's ranking
  // signal. Valid after BeginWindow.
  const std::vector<double>& query_slack() const { return slack_; }

  // True when subplan s serves an at-risk query and is therefore exempt
  // from degradation and shedding. Valid after BeginWindow.
  bool subplan_protective(int s) const { return protective_[s]; }

 private:
  // Refreshes per-subplan work predictions and per-query risk flags for
  // the current pace configuration and drift estimate.
  void RecomputePredictions();
  void RebuildPoints(const Fraction& after);
  double DriftRatio() const;
  void PublishBaseBytes();
  Status ShedDropPass(const std::vector<int>& shed_order);
  Status StepOnce();
  // Level-parallel variant of StepOnce's decision/execution loop
  // (DESIGN.md §10): decisions are made level by level (a subplan's
  // catch-up test reads its children's freshly appended output, so
  // children's level must finish first), executions within a level fan
  // out on the pool, and metrics/stats apply serially in topo order
  // afterward. Only used when no memory budget is attached — admission
  // and shedding decisions are order-sensitive and stay serial.
  Status RunLevelsParallel(const Fraction& f, int64_t step, bool is_trigger,
                           bool overloaded);
  AdaptiveRunResult FinishWindow();
  Status SnapshotImpl(recovery::CheckpointWriter* w,
                      bool include_timings) const;

  const SubplanGraph* graph_;
  StreamSource* source_;
  CostEstimator* estimator_;
  std::vector<double> constraints_;
  AdaptivePolicy policy_;
  ExecOptions opts_;
  PaceOptimizerOptions opt_opts_;

  PaceConfig paces_;
  double corrected_ratio_ = 1.0;  // drift ratio at the last re-derivation
  std::vector<double> pred_final_;     // per-subplan final execution work
  std::vector<double> pred_nonfinal_;  // per-subplan avg intermediate work
  double pred_total_ = 0;              // whole-window work under paces_
  std::vector<bool> protective_;       // subplan serves an at-risk query
  // Queries admitted with zero initial slackness (window-start slack
  // <= 1e-9, before any drift correction). Their at-risk status is
  // sticky: a mid-window drift estimate that predicts spare headroom is
  // never grounds to shed work the window was admitted with no slack
  // for. Serialized in checkpoints so recovery preserves the guarantee.
  std::vector<bool> zero_slack_sticky_;
  std::vector<double> slack_;          // per-query time slackness [0, 1]
  std::vector<double> subplan_slack_;  // min slack over the served queries
  std::vector<bool> sheddable_;        // == !protective_, the shed universe
  // Aggregated base-buffer bytes component in opts_.flow.budget (-1 when
  // no budget); see PaceExecutor::base_component_.
  int base_component_ = -1;

  // Window state, all deterministic given the observed stream (the
  // *_seconds fields are reporting-only and never feed decisions).
  struct WindowState {
    AdaptiveRunResult out;
    std::set<Fraction> points;   // remaining event points
    Fraction last_point{0, 1};   // last completed point (source position)
    double drift_obs = 0;        // scheduled-execution observed work
    double drift_pred = 0;       // matching predicted work
    int64_t sched_execs = 0;
    double observed_total = 0;
    int64_t step = 0;            // completed event points (1-based count)
    bool active = false;
  };
  WindowState ws_;
  StepHook after_step_;
  SubplanHook before_subplan_;
  WaveHook after_wave_;

  // Owned worker pool (nullptr = serial) and the graph's static
  // dependency levels; both fixed at construction (DESIGN.md §10).
  std::unique_ptr<sched::WorkerPool> pool_;
  std::vector<std::vector<int>> levels_;

  std::vector<std::unique_ptr<DeltaBuffer>> buffers_;
  std::vector<std::unique_ptr<SubplanExecutor>> executors_;
};

}  // namespace ishare

#endif  // ISHARE_EXEC_ADAPTIVE_EXECUTOR_H_
