#include "ishare/exec/aggregate.h"

#include <algorithm>

#include "ishare/sched/worker_pool.h"

namespace ishare {

AggregateOp::AggregateOp(const PlanNode* node, const Schema& input_schema)
    : PhysOp(node) {
  CHECK(node->kind == PlanKind::kAggregate);
  for (const std::string& g : node->group_by) {
    group_key_idx_.push_back(input_schema.IndexOfOrDie(g));
  }
  for (const AggSpec& spec : node->aggregates) {
    if (spec.arg != nullptr) {
      arg_exprs_.push_back(CompiledExpr::Compile(spec.arg, input_schema));
      has_arg_.push_back(true);
    } else {
      arg_exprs_.emplace_back();
      has_arg_.push_back(false);
    }
  }
  query_ids_ = node->queries.ToIds();
}

void AggregateOp::UpdateAccum(const AggSpec& spec, Accum* a, const Value& v,
                              int32_t w, OpWork* work) {
  switch (spec.kind) {
    case AggKind::kCount:
      a->count += w;
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
      a->dsum += v.AsDouble() * w;
      if (v.is_int()) a->isum += v.AsInt() * w;
      a->count += w;
      return;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kCountDistinct: {
      int64_t& cnt = a->values[v];
      cnt += w;
      CHECK_GE(cnt, 0) << "aggregate delete without matching insert";
      work->state += 1;
      if (cnt == 0) {
        a->values.erase(v);
        if (spec.kind != AggKind::kCountDistinct && a->extremum.has_value() &&
            *a->extremum == v) {
          // The extremum was deleted: rescan all remaining values. This is
          // the expensive path that makes MAX-over-SUM plans (TPC-H Q15)
          // non-incrementable under eager execution.
          a->extremum.reset();
          for (const auto& [val, c] : a->values) {
            work->state += 1;
            if (!a->extremum.has_value() ||
                (spec.kind == AggKind::kMax ? a->extremum->Compare(val) < 0
                                            : a->extremum->Compare(val) > 0)) {
              a->extremum = val;
            }
          }
        }
      } else if (w > 0 && spec.kind != AggKind::kCountDistinct) {
        if (!a->extremum.has_value() ||
            (spec.kind == AggKind::kMax ? a->extremum->Compare(v) < 0
                                        : a->extremum->Compare(v) > 0)) {
          a->extremum = v;
        }
      }
      return;
    }
  }
}

void AggregateOp::BindScheduler(sched::WorkerPool* pool,
                                const sched::SchedulerOptions& opts) {
  pool_ = pool;
  morsel_min_tuples_ = opts.morsel_min_tuples;
}

void AggregateOp::ApplyTuple(const DeltaTuple& t, GroupState* g,
                             const std::vector<Value>& argv, OpWork* work) {
  const auto& specs = node_->aggregates;
  for (size_t pos = 0; pos < query_ids_.size(); ++pos) {
    if (!t.qset.Contains(query_ids_[pos])) continue;
    QueryState& qs = g->per_query[pos];
    qs.row_count += t.weight;
    CHECK_GE(qs.row_count, 0) << "aggregate group count went negative";
    for (size_t i = 0; i < specs.size(); ++i) {
      UpdateAccum(specs[i], &qs.accums[i], argv[i], t.weight, work);
    }
  }
}

DeltaBatch AggregateOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  if (pool_ != nullptr && pool_->num_threads() > 1 &&
      static_cast<int64_t>(in.size()) >= morsel_min_tuples_) {
    return ProcessParallel(in);
  }
  const auto& specs = node_->aggregates;
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    Row key = ExtractColumns(t.row, group_key_idx_);
    GroupState& g = groups_[key];
    if (g.per_query.empty()) {
      g.key = key;
      g.per_query.resize(query_ids_.size());
      for (QueryState& qs : g.per_query) qs.accums.resize(specs.size());
    }
    // Evaluate aggregate arguments once per tuple, not once per query.
    std::vector<Value> argv(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      if (has_arg_[i]) argv[i] = arg_exprs_[i].Eval(t.row);
    }
    ApplyTuple(t, &g, argv, &work_);
    if (dirty_seen_.insert(key).second) {
      dirty_order_.push_back(std::move(key));
    }
  }
  return {};  // blocking: output released in EndExecution
}

// Two-phase morsel path (DESIGN.md §10), after the parallel group-by
// pattern: a serial pre-pass performs every hash-map structure mutation
// (group creation, dirty tracking) in input order, then the pool updates
// accumulators with groups partitioned by key hash. Bit-exactness with
// the serial loop:
//  - each group belongs to exactly one partition, and its partition task
//    walks the batch in input order, so every (group, query) accumulator
//    sees the identical update sequence (double sums are order-sensitive;
//    the order never changes);
//  - group creation order — and hence groups_'s iteration order and the
//    dirty emission order — is fixed by the serial pre-pass;
//  - per-task OpWork partials are integer-valued counts folded in fixed
//    partition order.
DeltaBatch AggregateOp::ProcessParallel(DeltaSpan in) {
  const auto& specs = node_->aggregates;
  const size_t n = in.size();
  const int parts = pool_->num_threads();
  std::vector<Row> keys(n);
  std::vector<int> part(n);
  std::vector<GroupState*> group_of(n);
  for (size_t i = 0; i < n; ++i) {
    work_.in += 1;
    keys[i] = ExtractColumns(in[i].row, group_key_idx_);
    part[i] = static_cast<int>(HashRow(keys[i]) % static_cast<size_t>(parts));
    GroupState& g = groups_[keys[i]];
    if (g.per_query.empty()) {
      g.key = keys[i];
      g.per_query.resize(query_ids_.size());
      for (QueryState& qs : g.per_query) qs.accums.resize(specs.size());
    }
    group_of[i] = &g;
    if (dirty_seen_.insert(keys[i]).second) {
      dirty_order_.push_back(keys[i]);
    }
  }
  std::vector<OpWork> partial(static_cast<size_t>(parts));
  pool_->ParallelFor(parts, [&](int64_t p) {
    OpWork* w = &partial[static_cast<size_t>(p)];
    std::vector<Value> argv(specs.size());
    for (size_t i = 0; i < n; ++i) {
      if (part[i] != p) continue;
      const DeltaTuple& t = in[i];
      for (size_t a = 0; a < specs.size(); ++a) {
        if (has_arg_[a]) argv[a] = arg_exprs_[a].Eval(t.row);
      }
      ApplyTuple(t, group_of[i], argv, w);
    }
  });
  for (const OpWork& w : partial) work_ += w;
  return {};  // blocking: output released in EndExecution
}

// GCC 12's -Wmaybe-uninitialized falsely fires on the engaged
// optional<Value>/variant string alternative when the row vector
// reallocates during push_back (PR 105562-style false positive).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
std::optional<Row> AggregateOp::CurrentRow(const GroupState& g, int qpos) {
  const QueryState& qs = g.per_query[qpos];
  if (qs.row_count <= 0) return std::nullopt;
  Row row = g.key;
  const auto& specs = node_->aggregates;
  const Schema& out_schema = node_->output_schema;
  for (size_t i = 0; i < specs.size(); ++i) {
    const Accum& a = qs.accums[i];
    switch (specs[i].kind) {
      case AggKind::kCount:
        row.push_back(Value(a.count));
        break;
      case AggKind::kSum: {
        DataType t =
            out_schema.field(static_cast<int>(group_key_idx_.size() + i)).type;
        if (t == DataType::kInt64) {
          row.push_back(Value(a.isum));
        } else {
          row.push_back(Value(a.dsum));
        }
        break;
      }
      case AggKind::kAvg:
        row.push_back(Value(a.count == 0 ? 0.0 : a.dsum / a.count));
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        CHECK(a.extremum.has_value())
            << "group alive but no extremum for " << specs[i].alias;
        row.push_back(*a.extremum);
        break;
      case AggKind::kCountDistinct:
        row.push_back(Value(static_cast<int64_t>(a.values.size())));
        break;
    }
  }
  return row;
}
#pragma GCC diagnostic pop

DeltaBatch AggregateOp::EndExecution() {
  std::unordered_map<Row, QuerySet, RowHasher> deletes;
  std::unordered_map<Row, QuerySet, RowHasher> inserts;
  for (const Row& key : dirty_order_) {
    auto it = groups_.find(key);
    CHECK(it != groups_.end());
    GroupState& g = it->second;
    for (size_t pos = 0; pos < g.per_query.size(); ++pos) {
      QueryState& qs = g.per_query[pos];
      std::optional<Row> now = CurrentRow(g, static_cast<int>(pos));
      QueryId q = query_ids_[pos];
      if (qs.emitted && (!now.has_value() || *now != qs.last_emitted)) {
        deletes[qs.last_emitted].Add(q);
        qs.emitted = false;
      }
      if (now.has_value() && !qs.emitted) {
        inserts[*now].Add(q);
        qs.last_emitted = std::move(*now);
        qs.emitted = true;
      } else if (now.has_value() && qs.emitted &&
                 *now == qs.last_emitted) {
        // Value unchanged; nothing to emit.
      }
    }
  }
  dirty_order_.clear();
  dirty_seen_.clear();
  DeltaBatch out;
  out.reserve(deletes.size() + inserts.size());
  // Deletes first so downstream state never sees duplicate inserts.
  for (auto& [row, qset] : deletes) {
    out.emplace_back(row, qset, -1);
    work_.out += 1;
  }
  for (auto& [row, qset] : inserts) {
    out.emplace_back(row, qset, 1);
    work_.out += 1;
  }
  return out;
}

namespace {

std::string EncodeValueKey(const Value& v) {
  recovery::CheckpointWriter w;
  recovery::WriteValue(&w, v);
  return w.Take();
}

}  // namespace

Status AggregateOp::Snapshot(recovery::CheckpointWriter* w) const {
  SnapshotWork(w);
  std::vector<std::pair<std::string, const GroupState*>> sorted;
  sorted.reserve(groups_.size());
  for (const auto& [key, g] : groups_) {
    sorted.emplace_back(recovery::EncodeRowKey(key), &g);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w->U64(sorted.size());
  for (const auto& [key_bytes, g] : sorted) {
    w->Str(key_bytes);
    w->U64(g->per_query.size());
    for (const QueryState& qs : g->per_query) {
      w->I64(qs.row_count);
      w->Bool(qs.emitted);
      recovery::WriteRow(w, qs.last_emitted);
      w->U64(qs.accums.size());
      for (const Accum& a : qs.accums) {
        w->F64(a.dsum);
        w->I64(a.isum);
        w->I64(a.count);
        std::vector<std::pair<std::string, int64_t>> vals;
        vals.reserve(a.values.size());
        for (const auto& [v, cnt] : a.values) {
          vals.emplace_back(EncodeValueKey(v), cnt);
        }
        std::sort(vals.begin(), vals.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
        w->U64(vals.size());
        for (const auto& [vbytes, cnt] : vals) {
          w->Str(vbytes);
          w->I64(cnt);
        }
        w->Bool(a.extremum.has_value());
        if (a.extremum.has_value()) recovery::WriteValue(w, *a.extremum);
      }
    }
  }
  w->U64(dirty_order_.size());
  for (const Row& key : dirty_order_) recovery::WriteRow(w, key);
  return Status::OK();
}

Status AggregateOp::Restore(recovery::CheckpointReader* r) {
  RestoreWork(r);
  groups_.clear();
  dirty_order_.clear();
  dirty_seen_.clear();
  uint64_t num_groups = r->U64();
  for (uint64_t gi = 0; gi < num_groups && r->ok(); ++gi) {
    std::string key_bytes = r->Str();
    recovery::CheckpointReader key_reader(key_bytes);
    Row key = recovery::ReadRow(&key_reader);
    if (!key_reader.Finish().ok()) {
      r->Fail("malformed group key in checkpoint");
      break;
    }
    GroupState& g = groups_[key];
    g.key = key;
    uint64_t nq = r->U64();
    if (nq != query_ids_.size()) {
      r->Fail("aggregate per-query width mismatch");
      break;
    }
    g.per_query.resize(nq);
    for (QueryState& qs : g.per_query) {
      qs.row_count = r->I64();
      qs.emitted = r->Bool();
      qs.last_emitted = recovery::ReadRow(r);
      uint64_t na = r->U64();
      if (na != node_->aggregates.size()) {
        r->Fail("aggregate accumulator count mismatch");
        break;
      }
      qs.accums.resize(na);
      for (Accum& a : qs.accums) {
        a.dsum = r->F64();
        a.isum = r->I64();
        a.count = r->I64();
        a.values.clear();
        uint64_t nv = r->U64();
        for (uint64_t vi = 0; vi < nv && r->ok(); ++vi) {
          std::string vbytes = r->Str();
          recovery::CheckpointReader vr(vbytes);
          Value v = recovery::ReadValue(&vr);
          if (!vr.Finish().ok()) {
            r->Fail("malformed accumulator value in checkpoint");
            break;
          }
          a.values[v] = r->I64();
        }
        a.extremum.reset();
        if (r->Bool()) a.extremum = recovery::ReadValue(r);
      }
      if (!r->ok()) break;
    }
  }
  uint64_t num_dirty = r->U64();
  for (uint64_t i = 0; i < num_dirty && r->ok(); ++i) {
    Row key = recovery::ReadRow(r);
    if (dirty_seen_.insert(key).second) dirty_order_.push_back(std::move(key));
  }
  return r->status();
}

int64_t AggregateOp::StateBytes() const {
  int64_t bytes = 0;
  for (const auto& [key, g] : groups_) {
    bytes += ApproxRowBytes(key) + ApproxRowBytes(g.key);
    for (const QueryState& qs : g.per_query) {
      bytes += static_cast<int64_t>(sizeof(QueryState)) +
               ApproxRowBytes(qs.last_emitted);
      for (const Accum& a : qs.accums) {
        bytes += static_cast<int64_t>(sizeof(Accum));
        for (const auto& [v, cnt] : a.values) {
          bytes += ApproxValueBytes(v) + static_cast<int64_t>(sizeof(cnt));
        }
        if (a.extremum.has_value()) bytes += ApproxValueBytes(*a.extremum);
      }
    }
  }
  for (const Row& r : dirty_order_) bytes += ApproxRowBytes(r);
  return bytes;
}

}  // namespace ishare
