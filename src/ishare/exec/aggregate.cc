#include "ishare/exec/aggregate.h"

#include <algorithm>

namespace ishare {

AggregateOp::AggregateOp(const PlanNode* node, const Schema& input_schema)
    : PhysOp(node) {
  CHECK(node->kind == PlanKind::kAggregate);
  for (const std::string& g : node->group_by) {
    group_key_idx_.push_back(input_schema.IndexOfOrDie(g));
  }
  for (const AggSpec& spec : node->aggregates) {
    if (spec.arg != nullptr) {
      arg_exprs_.push_back(CompiledExpr::Compile(spec.arg, input_schema));
      has_arg_.push_back(true);
    } else {
      arg_exprs_.emplace_back();
      has_arg_.push_back(false);
    }
  }
  query_ids_ = node->queries.ToIds();
}

void AggregateOp::UpdateAccum(const AggSpec& spec, Accum* a, const Value& v,
                              int32_t w) {
  switch (spec.kind) {
    case AggKind::kCount:
      a->count += w;
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
      a->dsum += v.AsDouble() * w;
      if (v.is_int()) a->isum += v.AsInt() * w;
      a->count += w;
      return;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kCountDistinct: {
      int64_t& cnt = a->values[v];
      cnt += w;
      CHECK_GE(cnt, 0) << "aggregate delete without matching insert";
      work_.state += 1;
      if (cnt == 0) {
        a->values.erase(v);
        if (spec.kind != AggKind::kCountDistinct && a->extremum.has_value() &&
            *a->extremum == v) {
          // The extremum was deleted: rescan all remaining values. This is
          // the expensive path that makes MAX-over-SUM plans (TPC-H Q15)
          // non-incrementable under eager execution.
          a->extremum.reset();
          for (const auto& [val, c] : a->values) {
            work_.state += 1;
            if (!a->extremum.has_value() ||
                (spec.kind == AggKind::kMax ? a->extremum->Compare(val) < 0
                                            : a->extremum->Compare(val) > 0)) {
              a->extremum = val;
            }
          }
        }
      } else if (w > 0 && spec.kind != AggKind::kCountDistinct) {
        if (!a->extremum.has_value() ||
            (spec.kind == AggKind::kMax ? a->extremum->Compare(v) < 0
                                        : a->extremum->Compare(v) > 0)) {
          a->extremum = v;
        }
      }
      return;
    }
  }
}

DeltaBatch AggregateOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  const auto& specs = node_->aggregates;
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    Row key = ExtractColumns(t.row, group_key_idx_);
    GroupState& g = groups_[key];
    if (g.per_query.empty()) {
      g.key = key;
      g.per_query.resize(query_ids_.size());
      for (QueryState& qs : g.per_query) qs.accums.resize(specs.size());
    }
    // Evaluate aggregate arguments once per tuple, not once per query.
    std::vector<Value> argv(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      if (has_arg_[i]) argv[i] = arg_exprs_[i].Eval(t.row);
    }
    for (size_t pos = 0; pos < query_ids_.size(); ++pos) {
      if (!t.qset.Contains(query_ids_[pos])) continue;
      QueryState& qs = g.per_query[pos];
      qs.row_count += t.weight;
      CHECK_GE(qs.row_count, 0) << "aggregate group count went negative";
      for (size_t i = 0; i < specs.size(); ++i) {
        UpdateAccum(specs[i], &qs.accums[i], argv[i], t.weight);
      }
    }
    dirty_.insert(std::move(key));
  }
  return {};  // blocking: output released in EndExecution
}

// GCC 12's -Wmaybe-uninitialized falsely fires on the engaged
// optional<Value>/variant string alternative when the row vector
// reallocates during push_back (PR 105562-style false positive).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
std::optional<Row> AggregateOp::CurrentRow(const GroupState& g, int qpos) {
  const QueryState& qs = g.per_query[qpos];
  if (qs.row_count <= 0) return std::nullopt;
  Row row = g.key;
  const auto& specs = node_->aggregates;
  const Schema& out_schema = node_->output_schema;
  for (size_t i = 0; i < specs.size(); ++i) {
    const Accum& a = qs.accums[i];
    switch (specs[i].kind) {
      case AggKind::kCount:
        row.push_back(Value(a.count));
        break;
      case AggKind::kSum: {
        DataType t =
            out_schema.field(static_cast<int>(group_key_idx_.size() + i)).type;
        if (t == DataType::kInt64) {
          row.push_back(Value(a.isum));
        } else {
          row.push_back(Value(a.dsum));
        }
        break;
      }
      case AggKind::kAvg:
        row.push_back(Value(a.count == 0 ? 0.0 : a.dsum / a.count));
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        CHECK(a.extremum.has_value())
            << "group alive but no extremum for " << specs[i].alias;
        row.push_back(*a.extremum);
        break;
      case AggKind::kCountDistinct:
        row.push_back(Value(static_cast<int64_t>(a.values.size())));
        break;
    }
  }
  return row;
}
#pragma GCC diagnostic pop

DeltaBatch AggregateOp::EndExecution() {
  std::unordered_map<Row, QuerySet, RowHasher> deletes;
  std::unordered_map<Row, QuerySet, RowHasher> inserts;
  for (const Row& key : dirty_) {
    auto it = groups_.find(key);
    CHECK(it != groups_.end());
    GroupState& g = it->second;
    for (size_t pos = 0; pos < g.per_query.size(); ++pos) {
      QueryState& qs = g.per_query[pos];
      std::optional<Row> now = CurrentRow(g, static_cast<int>(pos));
      QueryId q = query_ids_[pos];
      if (qs.emitted && (!now.has_value() || *now != qs.last_emitted)) {
        deletes[qs.last_emitted].Add(q);
        qs.emitted = false;
      }
      if (now.has_value() && !qs.emitted) {
        inserts[*now].Add(q);
        qs.last_emitted = std::move(*now);
        qs.emitted = true;
      } else if (now.has_value() && qs.emitted &&
                 *now == qs.last_emitted) {
        // Value unchanged; nothing to emit.
      }
    }
  }
  dirty_.clear();
  DeltaBatch out;
  out.reserve(deletes.size() + inserts.size());
  // Deletes first so downstream state never sees duplicate inserts.
  for (auto& [row, qset] : deletes) {
    out.emplace_back(row, qset, -1);
    work_.out += 1;
  }
  for (auto& [row, qset] : inserts) {
    out.emplace_back(row, qset, 1);
    work_.out += 1;
  }
  return out;
}

}  // namespace ishare
