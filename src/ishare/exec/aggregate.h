// Shared incremental group-by aggregate — the blocking operator whose
// delete+insert churn under eager paces motivates the paper (Fig. 1), and
// whose MIN/MAX delete-rescan reproduces the non-incrementability of
// TPC-H Q15 (Sec. 5.3).

#ifndef ISHARE_EXEC_AGGREGATE_H_
#define ISHARE_EXEC_AGGREGATE_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ishare/exec/phys_op.h"

namespace ishare {

// Shared incremental group-by aggregate.
//
// Because marking selects upstream give tuples heterogeneous query sets,
// the operator keeps one accumulator per (group, sharing query). After each
// incremental execution it emits, for every touched group, a delete of the
// previously emitted result row and an insert of the new one (per query;
// queries whose rows are identical are coalesced into one delta tuple with
// a merged query set). This delete+insert churn is precisely the overhead
// of eager incremental execution the paper optimizes (Fig. 1).
//
// MIN/MAX keep a value->multiplicity map per (group, query); deleting the
// current extremum triggers a full rescan of the map, reproducing the
// non-incrementability of TPC-H Q15 discussed in Sec. 5.3.
class AggregateOp : public PhysOp {
 public:
  AggregateOp(const PlanNode* node, const Schema& input_schema);

  DeltaBatch Process(int child_idx, DeltaSpan in) override;
  DeltaBatch EndExecution() override;

  // Morsel-driven parallelism (DESIGN.md §10): batches of at least
  // `opts.morsel_min_tuples` are partitioned by group-key hash and
  // accumulated by the pool, two-phase in the style of parallel group-by
  // (thread-local work meters, serial pre-pass owning all hash-map
  // structure mutation). Bit-exact with serial because each group's
  // accumulators see the same update subsequence in the same order.
  void BindScheduler(sched::WorkerPool* pool,
                     const sched::SchedulerOptions& opts) override;

  // Group state is checkpointed with group keys in canonical order so the
  // snapshot is independent of hash-map bucket history; the dirty set is
  // kept insertion-ordered (vector + membership set) precisely so
  // EndExecution's emission order is a function of the input stream, not
  // of bucket layout — the property bit-exact recovery rests on.
  Status Snapshot(recovery::CheckpointWriter* w) const override;
  Status Restore(recovery::CheckpointReader* r) override;

  int64_t NumGroups() const { return static_cast<int64_t>(groups_.size()); }

  // Approximate bytes of all group/accumulator state.
  int64_t StateBytes() const override;

 private:
  struct Accum {
    double dsum = 0;
    int64_t isum = 0;
    int64_t count = 0;  // weighted count of non-null contributions
    // MIN / MAX / COUNT_DISTINCT only.
    std::unordered_map<Value, int64_t, ValueHasher> values;
    std::optional<Value> extremum;
  };

  struct QueryState {
    int64_t row_count = 0;  // weighted number of contributing input tuples
    std::vector<Accum> accums;
    bool emitted = false;
    Row last_emitted;
  };

  struct GroupState {
    Row key;
    std::vector<QueryState> per_query;  // indexed by query position
  };

  // `work` receives the state-maintenance cost: &work_ on the serial
  // path, a thread-local partial on the parallel path (folded back in
  // fixed partition order so totals stay bit-identical).
  static void UpdateAccum(const AggSpec& spec, Accum* a, const Value& v,
                          int32_t w, OpWork* work);
  // Applies one input tuple to its (pre-created) group state.
  void ApplyTuple(const DeltaTuple& t, GroupState* g,
                  const std::vector<Value>& argv, OpWork* work);
  DeltaBatch ProcessParallel(DeltaSpan in);
  // Builds the output row for (group, query position), or nullopt when the
  // group has no contributions for that query.
  std::optional<Row> CurrentRow(const GroupState& g, int qpos);

  std::vector<int> group_key_idx_;
  std::vector<CompiledExpr> arg_exprs_;  // per AggSpec; default for COUNT(*)
  std::vector<bool> has_arg_;
  std::vector<QueryId> query_ids_;  // position -> query id
  std::unordered_map<Row, GroupState, RowHasher> groups_;
  // Groups touched since the last EndExecution, in first-touch order.
  // `dirty_order_` drives emission; `dirty_seen_` is the O(1) membership
  // guard. An unordered_set alone is not enough: its iteration order
  // depends on bucket-count history, which a restored operator does not
  // share with the original.
  std::vector<Row> dirty_order_;
  std::unordered_set<Row, RowHasher> dirty_seen_;

  // Morsel parallelism (nullptr / ignored when serial).
  sched::WorkerPool* pool_ = nullptr;
  int64_t morsel_min_tuples_ = 0;
};

}  // namespace ishare

#endif  // ISHARE_EXEC_AGGREGATE_H_
