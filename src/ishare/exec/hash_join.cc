#include "ishare/exec/hash_join.h"

#include <algorithm>
#include <iterator>
#include <map>

#include "ishare/sched/worker_pool.h"

namespace ishare {

HashJoinOp::HashJoinOp(const PlanNode* node, const Schema& left_schema,
                       const Schema& right_schema)
    : PhysOp(node) {
  CHECK(node->kind == PlanKind::kJoin);
  for (const std::string& k : node->left_keys) {
    left_key_idx_.push_back(left_schema.IndexOfOrDie(k));
  }
  for (const std::string& k : node->right_keys) {
    right_key_idx_.push_back(right_schema.IndexOfOrDie(k));
  }
  query_ids_ = node->queries.ToIds();
  query_pos_.fill(-1);
  for (size_t i = 0; i < query_ids_.size(); ++i) {
    query_pos_[query_ids_[i]] = static_cast<int>(i);
  }
}

namespace {

// Serializes a key -> vector<int64_t> map with keys in canonical order.
template <typename MapT>
void SnapshotCountMap(recovery::CheckpointWriter* w, const MapT& m) {
  std::vector<std::pair<std::string, const std::vector<int64_t>*>> sorted;
  sorted.reserve(m.size());
  for (const auto& [key, counts] : m) {
    sorted.emplace_back(recovery::EncodeRowKey(key), &counts);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w->U64(sorted.size());
  for (const auto& [key_bytes, counts] : sorted) {
    w->Str(key_bytes);
    w->U64(counts->size());
    for (int64_t c : *counts) w->I64(c);
  }
}

}  // namespace

Status HashJoinOp::Snapshot(recovery::CheckpointWriter* w) const {
  SnapshotWork(w);
  for (const SideState* state : {&left_state_, &right_state_}) {
    std::vector<std::pair<std::string, const std::vector<Entry>*>> sorted;
    sorted.reserve(state->size());
    for (const auto& [key, bucket] : *state) {
      sorted.emplace_back(recovery::EncodeRowKey(key), &bucket);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w->U64(sorted.size());
    for (const auto& [key_bytes, bucket] : sorted) {
      w->Str(key_bytes);
      w->U64(bucket->size());
      for (const Entry& e : *bucket) {
        recovery::WriteRow(w, e.row);
        w->U64(e.counts.size());
        for (int64_t c : e.counts) w->I64(c);
      }
    }
  }
  w->I64(left_entries_);
  w->I64(right_entries_);
  SnapshotCountMap(w, right_counts_);
  return Status::OK();
}

Status HashJoinOp::Restore(recovery::CheckpointReader* r) {
  RestoreWork(r);
  for (SideState* state : {&left_state_, &right_state_}) {
    state->clear();
    uint64_t num_keys = r->U64();
    for (uint64_t k = 0; k < num_keys && r->ok(); ++k) {
      std::string key_bytes = r->Str();
      recovery::CheckpointReader key_reader(key_bytes);
      Row key = recovery::ReadRow(&key_reader);
      if (!key_reader.Finish().ok()) {
        r->Fail("malformed join key in checkpoint");
        break;
      }
      uint64_t bucket_size = r->U64();
      std::vector<Entry>& bucket = (*state)[key];
      bucket.reserve(bucket_size);
      for (uint64_t i = 0; i < bucket_size && r->ok(); ++i) {
        Entry e;
        e.row = recovery::ReadRow(r);
        uint64_t nc = r->U64();
        if (nc != query_ids_.size()) {
          r->Fail("join entry count width mismatch");
          break;
        }
        e.counts.resize(nc);
        for (uint64_t c = 0; c < nc; ++c) e.counts[c] = r->I64();
        bucket.push_back(std::move(e));
      }
    }
  }
  left_entries_ = r->I64();
  right_entries_ = r->I64();
  right_counts_.clear();
  uint64_t num_rc = r->U64();
  for (uint64_t k = 0; k < num_rc && r->ok(); ++k) {
    std::string key_bytes = r->Str();
    recovery::CheckpointReader key_reader(key_bytes);
    Row key = recovery::ReadRow(&key_reader);
    if (!key_reader.Finish().ok()) {
      r->Fail("malformed right-count key in checkpoint");
      break;
    }
    uint64_t nc = r->U64();
    if (nc != query_ids_.size()) {
      r->Fail("right-count width mismatch");
      break;
    }
    std::vector<int64_t> counts(nc);
    for (uint64_t c = 0; c < nc; ++c) counts[c] = r->I64();
    right_counts_[key] = std::move(counts);
  }
  return r->status();
}

void HashJoinOp::BindScheduler(sched::WorkerPool* pool,
                               const sched::SchedulerOptions& opts) {
  pool_ = pool;
  morsel_min_tuples_ = opts.morsel_min_tuples;
}

void HashJoinOp::UpdateBucket(std::vector<Entry>* bucket,
                              const DeltaTuple& t, int64_t* entry_counter) {
  Entry* entry = nullptr;
  for (Entry& e : *bucket) {
    if (e.row == t.row) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    CHECK_GT(t.weight, 0) << "delete of a row absent from join state";
    bucket->push_back(
        Entry{t.row, std::vector<int64_t>(query_ids_.size(), 0)});
    entry = &bucket->back();
    ++*entry_counter;
  }
  bool all_zero = true;
  for (size_t pos = 0; pos < query_ids_.size(); ++pos) {
    if (t.qset.Contains(query_ids_[pos])) {
      entry->counts[pos] += t.weight;
      CHECK_GE(entry->counts[pos], 0) << "negative multiplicity in join state";
    }
    if (entry->counts[pos] != 0) all_zero = false;
  }
  if (all_zero) {
    *entry = std::move(bucket->back());
    bucket->pop_back();
    --*entry_counter;
  }
}

void HashJoinOp::UpdateState(SideState* state, const Row& key,
                             const DeltaTuple& t, int64_t* entry_counter) {
  std::vector<Entry>& bucket = (*state)[key];
  UpdateBucket(&bucket, t, entry_counter);
  if (bucket.empty()) state->erase(key);
}

void HashJoinOp::EmitMatches(const DeltaTuple& t, const Entry& e,
                             bool t_is_left, OpWork* work, DeltaBatch* out) {
  // Group queries by the contribution weight t.weight * e.counts[q] so the
  // common case (uniform multiplicities) emits a single delta tuple.
  std::map<int64_t, QuerySet> by_weight;
  for (QueryId q : t.qset.ToIds()) {
    int64_t w = static_cast<int64_t>(t.weight) * e.counts[QueryPos(q)];
    if (w == 0) continue;
    by_weight[w].Add(q);
  }
  if (by_weight.empty()) return;
  Row joined;
  joined.reserve(t.row.size() + e.row.size());
  if (t_is_left) {
    joined = t.row;
    joined.insert(joined.end(), e.row.begin(), e.row.end());
  } else {
    joined = e.row;
    joined.insert(joined.end(), t.row.begin(), t.row.end());
  }
  for (const auto& [w, qset] : by_weight) {
    out->emplace_back(joined, qset, static_cast<int32_t>(w));
    work->out += 1;
  }
}

DeltaBatch HashJoinOp::Process(int child_idx, DeltaSpan in) {
  CHECK(child_idx == 0 || child_idx == 1);
  if (node_->join_type == JoinType::kInner) {
    return ProcessInner(child_idx, in);
  }
  return ProcessSemiAnti(child_idx, in);
}

DeltaBatch HashJoinOp::ProcessInner(int child_idx, DeltaSpan in) {
  DeltaBatch out;
  const bool from_left = (child_idx == 0);
  SideState* own = from_left ? &left_state_ : &right_state_;
  SideState* other = from_left ? &right_state_ : &left_state_;
  int64_t* own_entries = from_left ? &left_entries_ : &right_entries_;
  const std::vector<int>& own_keys =
      from_left ? left_key_idx_ : right_key_idx_;

  if (pool_ != nullptr && pool_->num_threads() > 1 &&
      static_cast<int64_t>(in.size()) >= morsel_min_tuples_) {
    return ProcessInnerParallel(own, other, own_entries, own_keys, from_left,
                                in);
  }

  for (const DeltaTuple& t : in) {
    work_.in += 1;
    Row key = ExtractColumns(t.row, own_keys);
    UpdateState(own, key, t, own_entries);
    auto it = other->find(key);
    if (it == other->end()) continue;
    for (const Entry& e : it->second) {
      work_.state += 1;  // probe cost
      EmitMatches(t, e, from_left, &work_, &out);
    }
  }
  return out;
}

// Parallel inner-join execution (DESIGN.md §10). The serial loop
// interleaves build (UpdateState on `own`) and probe (`other` lookups)
// per tuple, but a tuple's probe results depend only on `other` — which
// this call never mutates — so splitting into a full build phase then a
// full probe phase emits exactly the serial output.
//
// Build: keys are extracted serially (fixing group/bucket creation order
// and all map structure mutation on the driver thread), then workers
// update buckets partitioned by key hash — each key is owned by exactly
// one worker, so per-key entry order matches the serial input-order walk.
// Keys whose buckets empty out are erased in a serial post-pass; serial
// execution erases them mid-batch, but map membership of empty buckets is
// not observable (probes skip them, snapshots sort keys, byte accounting
// sums integers).
//
// Probe: contiguous morsels with one output slot per tuple; slots are
// concatenated in input order and per-morsel work partials folded in
// morsel order, keeping both the emitted batch and the work meter
// bit-identical to serial.
DeltaBatch HashJoinOp::ProcessInnerParallel(SideState* own, SideState* other,
                                            int64_t* own_entries,
                                            const std::vector<int>& own_keys,
                                            bool from_left, DeltaSpan in) {
  const size_t n = in.size();
  const int workers = pool_->num_threads();
  std::vector<Row> keys(n);
  std::vector<int> part(n);
  std::vector<std::vector<Entry>*> bucket_of(n);
  for (size_t i = 0; i < n; ++i) {
    work_.in += 1;
    keys[i] = ExtractColumns(in[i].row, own_keys);
    part[i] =
        static_cast<int>(HashRow(keys[i]) % static_cast<size_t>(workers));
    // try_emplace pre-creates the bucket so workers never mutate map
    // structure; element addresses are stable across later insertions,
    // so the cached bucket pointers survive the rest of the pre-pass.
    bucket_of[i] = &own->try_emplace(keys[i]).first->second;
  }

  std::vector<int64_t> entry_delta(static_cast<size_t>(workers), 0);
  pool_->ParallelFor(workers, [&](int64_t p) {
    int64_t delta = 0;
    for (size_t i = 0; i < n; ++i) {
      if (part[i] != p) continue;
      UpdateBucket(bucket_of[i], in[i], &delta);
    }
    entry_delta[static_cast<size_t>(p)] = delta;
  });
  for (int64_t d : entry_delta) *own_entries += d;
  // Serial execution erases a key the moment its bucket empties; sweep
  // every key this batch touched so the final map membership matches
  // (snapshots serialize all keys, so an empty leftover bucket would
  // break checkpoint bit-exactness).
  for (size_t i = 0; i < n; ++i) {
    auto it = own->find(keys[i]);
    if (it != own->end() && it->second.empty()) own->erase(it);
  }

  std::vector<DeltaBatch> slots(n);
  std::vector<OpWork> partial(static_cast<size_t>(workers));
  pool_->ParallelFor(workers, [&](int64_t w) {
    const size_t lo = n * static_cast<size_t>(w) /
                      static_cast<size_t>(workers);
    const size_t hi = n * (static_cast<size_t>(w) + 1) /
                      static_cast<size_t>(workers);
    OpWork* pw = &partial[static_cast<size_t>(w)];
    for (size_t i = lo; i < hi; ++i) {
      auto it = other->find(keys[i]);
      if (it == other->end()) continue;
      for (const Entry& e : it->second) {
        pw->state += 1;  // probe cost
        EmitMatches(in[i], e, from_left, pw, &slots[i]);
      }
    }
  });
  for (const OpWork& w : partial) work_ += w;
  DeltaBatch out;
  for (DeltaBatch& s : slots) {
    out.insert(out.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
  }
  return out;
}

DeltaBatch HashJoinOp::ProcessSemiAnti(int child_idx, DeltaSpan in) {
  const bool semi = (node_->join_type == JoinType::kLeftSemi);
  DeltaBatch out;

  if (child_idx == 0) {
    // Left deltas: store, then emit for the queries whose current right
    // match count satisfies the semi/anti condition.
    for (const DeltaTuple& t : in) {
      work_.in += 1;
      Row key = ExtractColumns(t.row, left_key_idx_);
      UpdateState(&left_state_, key, t, &left_entries_);
      auto it = right_counts_.find(key);
      QuerySet pass;
      for (QueryId q : t.qset.ToIds()) {
        int64_t cnt =
            (it == right_counts_.end()) ? 0 : it->second[QueryPos(q)];
        bool matched = cnt > 0;
        if (matched == semi) pass.Add(q);
      }
      work_.state += 1;
      if (pass.empty()) continue;
      out.emplace_back(t.row, pass, t.weight);
      work_.out += 1;
    }
    return out;
  }

  // Right deltas: maintain per-(key, query) counts; when a count crosses
  // zero, (re-)emit or retract the stored left tuples for that query.
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    Row key = ExtractColumns(t.row, right_key_idx_);
    std::vector<int64_t>& counts = right_counts_[key];
    if (counts.empty()) counts.assign(query_ids_.size(), 0);
    QuerySet became_matched;
    QuerySet became_unmatched;
    for (QueryId q : t.qset.ToIds()) {
      int pos = QueryPos(q);
      int64_t before = counts[pos];
      counts[pos] += t.weight;
      CHECK_GE(counts[pos], 0) << "negative right match count";
      if (before == 0 && counts[pos] > 0) became_matched.Add(q);
      if (before > 0 && counts[pos] == 0) became_unmatched.Add(q);
    }
    work_.state += 1;
    if (became_matched.empty() && became_unmatched.empty()) continue;

    // For semi joins, newly matched queries gain left tuples and newly
    // unmatched queries lose them; anti joins are the mirror image.
    QuerySet emit_plus = semi ? became_matched : became_unmatched;
    QuerySet emit_minus = semi ? became_unmatched : became_matched;
    auto lit = left_state_.find(key);
    if (lit == left_state_.end()) continue;
    for (const Entry& e : lit->second) {
      work_.state += 1;
      // Group affected queries by their stored multiplicity.
      std::map<int64_t, QuerySet> plus_by_w;
      std::map<int64_t, QuerySet> minus_by_w;
      for (QueryId q : emit_plus.ToIds()) {
        int64_t c = e.counts[QueryPos(q)];
        if (c != 0) plus_by_w[c].Add(q);
      }
      for (QueryId q : emit_minus.ToIds()) {
        int64_t c = e.counts[QueryPos(q)];
        if (c != 0) minus_by_w[c].Add(q);
      }
      for (const auto& [w, qset] : plus_by_w) {
        out.emplace_back(e.row, qset, static_cast<int32_t>(w));
        work_.out += 1;
      }
      for (const auto& [w, qset] : minus_by_w) {
        out.emplace_back(e.row, qset, static_cast<int32_t>(-w));
        work_.out += 1;
      }
    }
  }
  return out;
}

int64_t HashJoinOp::StateBytes() const {
  int64_t bytes = 0;
  auto side_bytes = [](const SideState& side) {
    int64_t b = 0;
    for (const auto& [key, bucket] : side) {
      b += ApproxRowBytes(key);
      for (const Entry& e : bucket) {
        b += ApproxRowBytes(e.row) +
             static_cast<int64_t>(e.counts.size() * sizeof(int64_t) +
                                  sizeof(Entry));
      }
    }
    return b;
  };
  bytes += side_bytes(left_state_);
  bytes += side_bytes(right_state_);
  for (const auto& [key, counts] : right_counts_) {
    bytes += ApproxRowBytes(key) +
             static_cast<int64_t>(counts.size() * sizeof(int64_t));
  }
  return bytes;
}

}  // namespace ishare
