// Symmetric incremental hash join (inner/semi/anti) with per-query
// multiplicity state — the join side of shared incremental execution
// (paper Sec. 2.3). Join state growth across incremental executions is
// what makes eager paces expensive on join-heavy subplans; the cost
// model's analytic twin lives in cost/simulator.h.

#ifndef ISHARE_EXEC_HASH_JOIN_H_
#define ISHARE_EXEC_HASH_JOIN_H_

#include <array>
#include <unordered_map>
#include <vector>

#include "ishare/exec/phys_op.h"

namespace ishare {

// Symmetric incremental hash join with SharedDB query-set annotations.
//
// State layout: per side, key -> bucket of stored rows, each row carrying
// one multiplicity counter *per sharing query*. Per-query counters are
// required because upstream operators (notably shared aggregates) emit
// deltas whose query sets can be narrower than the sets under which the
// matching rows were first inserted.
//
// Inner join: a delta batch from one side first updates that side's state,
// then probes the other side's current state, so over one incremental
// execution the emitted delta is exactly ΔL ⋈ R ∪ (L + ΔL) ⋈ ΔR.
//
// Left-semi / left-anti joins keep per-query right match counts per key;
// when a right delta moves a (key, query) count across zero, the affected
// left tuples are (re-)emitted or retracted.
class HashJoinOp : public PhysOp {
 public:
  HashJoinOp(const PlanNode* node, const Schema& left_schema,
             const Schema& right_schema);

  DeltaBatch Process(int child_idx, DeltaSpan in) override;

  // Morsel-driven parallelism (DESIGN.md §10), inner joins only: the
  // build is hash-partitioned by join key (each worker owns the keys
  // hashing to its partition, so bucket mutation is disjoint; map
  // structure mutation stays serial in pre/post passes), and the probe
  // fans out over contiguous morsels with per-tuple output slots
  // concatenated in input order. Bit-exact with serial because per-key
  // update order and the emitted tuple order are both preserved.
  // Semi/anti joins keep the serial path: their right-delta handling
  // re-emits stored left tuples across keys, which does not decompose by
  // input partition (out of scope here; see DESIGN.md §10).
  void BindScheduler(sched::WorkerPool* pool,
                     const sched::SchedulerOptions& opts) override;

  // Build-side state is checkpointed with keys in canonical (encoded-byte)
  // order so the snapshot is independent of hash-map bucket history, while
  // each per-key bucket keeps its insertion order — probe emission iterates
  // buckets, so that order is behaviorally visible and must survive.
  Status Snapshot(recovery::CheckpointWriter* w) const override;
  Status Restore(recovery::CheckpointReader* r) override;

  // Current number of stored rows, for tests and diagnostics.
  int64_t LeftStateSize() const { return left_entries_; }
  int64_t RightStateSize() const { return right_entries_; }

  // Approximate bytes of both build sides plus semi/anti bookkeeping.
  int64_t StateBytes() const override;

 private:
  struct Entry {
    Row row;
    std::vector<int64_t> counts;  // per query position
  };
  using SideState = std::unordered_map<Row, std::vector<Entry>, RowHasher>;
  // Per-key, per-query count of right tuples (semi/anti bookkeeping).
  using MatchCounts =
      std::unordered_map<Row, std::vector<int64_t>, RowHasher>;

  DeltaBatch ProcessInner(int child_idx, DeltaSpan in);
  DeltaBatch ProcessInnerParallel(SideState* own, SideState* other,
                                  int64_t* own_entries,
                                  const std::vector<int>& own_keys,
                                  bool from_left, DeltaSpan in);
  DeltaBatch ProcessSemiAnti(int child_idx, DeltaSpan in);

  // Applies the tuple's weight to the matching stored row's per-query
  // counters, creating the entry as needed; swap-removes an entry whose
  // counts all reach zero. The caller erases the key once its bucket
  // empties (serially — the parallel build defers that to a post-pass).
  void UpdateBucket(std::vector<Entry>* bucket, const DeltaTuple& t,
                    int64_t* entry_counter);
  void UpdateState(SideState* state, const Row& key, const DeltaTuple& t,
                   int64_t* entry_counter);

  // Emits join results of `t` against entry `e`, grouping queries with
  // equal contribution weights into single delta tuples. `work` is
  // &work_ on the serial path, a per-morsel partial on the parallel one.
  void EmitMatches(const DeltaTuple& t, const Entry& e, bool t_is_left,
                   OpWork* work, DeltaBatch* out);

  int QueryPos(QueryId q) const {
    int pos = query_pos_[q];
    DCHECK(pos >= 0) << "query q" << q << " not in join's query set";
    return pos;
  }

  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;

  SideState left_state_;
  SideState right_state_;
  int64_t left_entries_ = 0;
  int64_t right_entries_ = 0;

  // Semi/anti only.
  MatchCounts right_counts_;

  std::vector<QueryId> query_ids_;           // position -> query id
  std::array<int, QuerySet::kMaxQueries> query_pos_;  // query id -> position

  // Morsel parallelism (nullptr / ignored when serial).
  sched::WorkerPool* pool_ = nullptr;
  int64_t morsel_min_tuples_ = 0;
};

}  // namespace ishare

#endif  // ISHARE_EXEC_HASH_JOIN_H_
