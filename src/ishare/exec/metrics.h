// The work unit shared by the runtime and the cost model. Everything the
// paper calls "work" — total work, final work, latency constraints — is
// measured in these units (Sec. 2.1: tuples processed by all operators,
// plus materialization and per-execution startup), so estimates and
// measurements are directly comparable.

#ifndef ISHARE_EXEC_METRICS_H_
#define ISHARE_EXEC_METRICS_H_

#include <cstdint>
#include <vector>

#include "ishare/recovery/retry.h"
#include "ishare/sched/options.h"

namespace ishare {

namespace flow {
class MemoryBudget;
}  // namespace flow

namespace sched {
class WorkerPool;
}  // namespace sched

// Work performed by one physical operator, in the paper's cost-model units
// (Sec. 2.1: "the number of tuples processed by all operators"). We count
//  - in:    tuples consumed from inputs,
//  - out:   tuples emitted (this is also the materialization cost when the
//           operator is a subplan root writing to a buffer),
//  - state: extra state maintenance work (hash probes beyond 1 per tuple,
//           min/max rescans after deleting the extremum, ...).
struct OpWork {
  double in = 0;
  double out = 0;
  double state = 0;

  double Total() const { return in + out + state; }

  OpWork& operator+=(const OpWork& o) {
    in += o.in;
    out += o.out;
    state += o.state;
    return *this;
  }
  friend OpWork operator-(OpWork a, const OpWork& b) {
    a.in -= b.in;
    a.out -= b.out;
    a.state -= b.state;
    return a;
  }
};

// Tunables for the runtime; the same constants parameterize the cost model
// so estimated and measured work are in the same units.
struct ExecOptions {
  // Fixed cost charged per incremental execution of a subplan. Models the
  // per-job startup overhead the paper's Spark prototype pays (mitigated
  // but not eliminated by Drizzle-style scheduling [47]).
  double startup_cost = 32.0;

  // Columnar/vectorized execution (DESIGN.md §12). On by default: the
  // subplan pump converts leaf deltas to column batches and keeps them
  // columnar across every operator that claims SupportsColumnar, falling
  // back to row-at-a-time Process anywhere it cannot (unsupported
  // expression shapes, ill-typed sources, stateful operators). Results
  // are bit-exact either way; `false` forces the legacy row pump.
  bool columnar = true;

  // Transient storage faults (Status::IsTransient) hit while draining leaf
  // buffers are retried under this policy with virtual exponential backoff
  // (DESIGN.md §8); permanent faults propagate on the first attempt.
  recovery::RetryPolicy retry;

  // Flow control (DESIGN.md §9). All fields are inert until `budget` is
  // set (bench_overload and the overload harness do; plain runs don't).
  struct FlowOptions {
    // Memory arbiter every buffer and executor registers with. Not owned;
    // must outlive the executors. nullptr disables all flow control
    // except boundary trimming.
    flow::MemoryBudget* budget = nullptr;

    // Per-buffer retention limit applied to subplan output buffers
    // (0 = unlimited) and its backpressure watermarks; see BufferLimits.
    int64_t buffer_soft_limit_bytes = 0;
    double buffer_high_watermark = 1.0;
    double buffer_low_watermark = 0.5;

    // Reclaim fully-consumed buffer prefixes at every pace boundary.
    // On by default: trimming is pure compaction, invisible to results.
    bool trim_at_boundaries = true;
  };
  FlowOptions flow;

  // Parallel scheduling (DESIGN.md §10). sched.num_threads == 1 keeps
  // the fully serial legacy path; > 1 makes the owning executor create a
  // sched::WorkerPool and dispatch pace-boundary waves and operator
  // morsels onto it. Results are bit-exact either way.
  sched::SchedulerOptions sched;

  // Worker pool operators may use for morsel parallelism. Not owned; set
  // internally by PaceExecutor/AdaptiveExecutor before they build their
  // SubplanExecutors (callers should leave it nullptr).
  sched::WorkerPool* sched_pool = nullptr;
};

}  // namespace ishare

#endif  // ISHARE_EXEC_METRICS_H_
