#include "ishare/exec/pace_executor.h"

#include <algorithm>
#include <set>

#include "ishare/common/fraction.h"
#include "ishare/obs/obs.h"

namespace ishare {

Status ValidatePaceConfig(const SubplanGraph& graph, const PaceConfig& paces) {
  if (static_cast<int>(paces.size()) != graph.num_subplans()) {
    return Status::InvalidArgument(
        "pace configuration has " + std::to_string(paces.size()) +
        " entries for " + std::to_string(graph.num_subplans()) + " subplans");
  }
  for (size_t i = 0; i < paces.size(); ++i) {
    if (paces[i] < 1) {
      return Status::InvalidArgument("pace " + std::to_string(paces[i]) +
                                     " of subplan " + std::to_string(i) +
                                     " is < 1");
    }
  }
  return Status::OK();
}

PaceExecutor::PaceExecutor(const SubplanGraph* graph, StreamSource* source,
                           ExecOptions opts)
    : graph_(graph), source_(source), opts_(opts) {
  CHECK(graph != nullptr && source != nullptr);
  int n = graph->num_subplans();
  buffers_.resize(n);
  executors_.resize(n);
  // Children-first so a parent's SubplanInput consumers find live buffers.
  for (int i : graph->TopoChildrenFirst()) {
    const Subplan& sp = graph->subplan(i);
    buffers_[i] = std::make_unique<DeltaBuffer>(
        sp.root->output_schema, "subplan_" + std::to_string(i));
    executors_[i] = std::make_unique<SubplanExecutor>(
        sp, source_, buffers_, buffers_[i].get(), opts_);
  }
}

Result<RunResult> PaceExecutor::Run(const PaceConfig& paces) {
  ISHARE_RETURN_NOT_OK(ValidatePaceConfig(*graph_, paces));
  obs::ScopedSpan span("exec.window.run");
  int n = graph_->num_subplans();

  // Event points: every i/p_s for every subplan s.
  std::set<Fraction> points;
  for (int s = 0; s < n; ++s) {
    for (int i = 1; i <= paces[s]; ++i) {
      points.insert(Fraction::Make(i, paces[s]));
    }
  }

  RunResult result;
  result.subplans.resize(n);
  std::vector<int> topo = graph_->TopoChildrenFirst();

  for (const Fraction& f : points) {
    ISHARE_RETURN_NOT_OK(source_->AdvanceToStep(f.num, f.den));
    bool is_trigger = (f.num == f.den);
    for (int s : topo) {
      if (!f.IsStepOf(paces[s])) continue;
      ISHARE_ASSIGN_OR_RETURN(ExecRecord rec, executors_[s]->RunExecution());
      SubplanRunStats& st = result.subplans[s];
      st.work_per_exec.push_back(rec.work);
      st.secs_per_exec.push_back(rec.seconds);
      st.exec_fraction.push_back(f.ToDouble());
      st.total_work += rec.work;
      st.total_seconds += rec.seconds;
      st.tuples_out += rec.tuples_out;
      if (is_trigger) {
        st.final_work = rec.work;
        st.final_seconds = rec.seconds;
      }
      result.total_work += rec.work;
      result.total_seconds += rec.seconds;
    }
  }

  result.query_final_work.assign(graph_->num_queries(), 0.0);
  result.query_latency_seconds.assign(graph_->num_queries(), 0.0);
  for (QueryId q = 0; q < graph_->num_queries(); ++q) {
    for (int s : graph_->SubplansOfQuery(q)) {
      result.query_final_work[q] += result.subplans[s].final_work;
      result.query_latency_seconds[q] += result.subplans[s].final_seconds;
    }
  }
  return result;
}

DeltaBuffer* PaceExecutor::query_output(QueryId q) const {
  int root = graph_->query_root(q);
  CHECK_GE(root, 0);
  return buffers_[root].get();
}

std::unordered_map<Row, int64_t, RowHasher> MaterializeResult(
    const DeltaBuffer& buffer, QueryId q) {
  std::unordered_map<Row, int64_t, RowHasher> out;
  for (const DeltaTuple& t : buffer.log()) {
    if (!t.qset.Contains(q)) continue;
    out[t.row] += t.weight;
  }
  for (auto it = out.begin(); it != out.end();) {
    if (it->second == 0) {
      it = out.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

}  // namespace ishare
