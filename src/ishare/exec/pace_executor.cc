#include "ishare/exec/pace_executor.h"

#include <algorithm>
#include <set>

#include "ishare/obs/obs.h"
#include "ishare/sched/wave.h"

namespace ishare {

Status ValidatePaceConfig(const SubplanGraph& graph, const PaceConfig& paces) {
  if (static_cast<int>(paces.size()) != graph.num_subplans()) {
    return Status::InvalidArgument(
        "pace configuration has " + std::to_string(paces.size()) +
        " entries for " + std::to_string(graph.num_subplans()) + " subplans");
  }
  for (size_t i = 0; i < paces.size(); ++i) {
    if (paces[i] < 1) {
      return Status::InvalidArgument("pace " + std::to_string(paces[i]) +
                                     " of subplan " + std::to_string(i) +
                                     " is < 1");
    }
  }
  return Status::OK();
}

void SnapshotRunStats(recovery::CheckpointWriter* w, const RunResult& r,
                      bool include_timings) {
  w->F64(r.total_work);
  if (include_timings) w->F64(r.total_seconds);
  w->U64(r.subplans.size());
  for (const SubplanRunStats& st : r.subplans) {
    w->U64(st.work_per_exec.size());
    for (double v : st.work_per_exec) w->F64(v);
    if (include_timings) {
      for (double v : st.secs_per_exec) w->F64(v);
    }
    for (double v : st.exec_fraction) w->F64(v);
    w->F64(st.total_work);
    if (include_timings) w->F64(st.total_seconds);
    w->F64(st.final_work);
    if (include_timings) w->F64(st.final_seconds);
    w->I64(st.tuples_out);
  }
  w->U64(r.query_final_work.size());
  for (double v : r.query_final_work) w->F64(v);
  if (include_timings) {
    for (double v : r.query_latency_seconds) w->F64(v);
  }
}

Status RestoreRunStats(recovery::CheckpointReader* r, RunResult* out) {
  out->total_work = r->F64();
  out->total_seconds = r->F64();
  uint64_t n = r->U64();
  if (n > r->remaining()) {
    r->Fail("run-stats subplan count " + std::to_string(n) +
            " exceeds payload");
    return r->status();
  }
  out->subplans.assign(n, SubplanRunStats{});
  for (SubplanRunStats& st : out->subplans) {
    uint64_t ne = r->U64();
    if (ne > r->remaining()) {
      r->Fail("run-stats execution count exceeds payload");
      return r->status();
    }
    st.work_per_exec.resize(ne);
    st.secs_per_exec.resize(ne);
    st.exec_fraction.resize(ne);
    for (double& v : st.work_per_exec) v = r->F64();
    for (double& v : st.secs_per_exec) v = r->F64();
    for (double& v : st.exec_fraction) v = r->F64();
    st.total_work = r->F64();
    st.total_seconds = r->F64();
    st.final_work = r->F64();
    st.final_seconds = r->F64();
    st.tuples_out = r->I64();
  }
  uint64_t nq = r->U64();
  if (nq > r->remaining()) {
    r->Fail("run-stats query count exceeds payload");
    return r->status();
  }
  out->query_final_work.resize(nq);
  out->query_latency_seconds.resize(nq);
  for (double& v : out->query_final_work) v = r->F64();
  for (double& v : out->query_latency_seconds) v = r->F64();
  return r->status();
}

Status SnapshotEngineState(
    recovery::CheckpointWriter* w, const StreamSource& source,
    const std::vector<std::unique_ptr<DeltaBuffer>>& buffers,
    const std::vector<std::unique_ptr<SubplanExecutor>>& executors) {
  std::vector<std::string> names = source.TableNames();  // sorted
  w->U64(names.size());
  for (const std::string& name : names) {
    w->Str(name);
    source.buffer(name)->SnapshotOffsets(w);
  }
  w->U64(buffers.size());
  for (const auto& buf : buffers) {
    CHECK(buf != nullptr);
    buf->Snapshot(w);
  }
  for (const auto& ex : executors) {
    CHECK(ex != nullptr);
    ISHARE_RETURN_NOT_OK(ex->Snapshot(w));
  }
  return Status::OK();
}

Status RestoreEngineState(
    recovery::CheckpointReader* r, const StreamSource& source,
    const std::vector<std::unique_ptr<DeltaBuffer>>& buffers,
    const std::vector<std::unique_ptr<SubplanExecutor>>& executors) {
  std::vector<std::string> names = source.TableNames();
  uint64_t num_tables = r->U64();
  if (num_tables != names.size()) {
    r->Fail("checkpoint has " + std::to_string(num_tables) +
            " base tables, source has " + std::to_string(names.size()));
    return r->status();
  }
  for (const std::string& name : names) {
    std::string stored = r->Str();
    if (stored != name) {
      r->Fail("checkpoint base table '" + stored +
              "' does not match source table '" + name + "'");
      return r->status();
    }
    ISHARE_RETURN_NOT_OK(source.buffer(name)->RestoreOffsets(r));
  }
  uint64_t num_buffers = r->U64();
  if (num_buffers != buffers.size()) {
    r->Fail("checkpoint has " + std::to_string(num_buffers) +
            " subplan buffers, executor has " +
            std::to_string(buffers.size()));
    return r->status();
  }
  for (const auto& buf : buffers) {
    ISHARE_RETURN_NOT_OK(buf->Restore(r));
  }
  for (const auto& ex : executors) {
    ISHARE_RETURN_NOT_OK(ex->Restore(r));
  }
  return r->status();
}

int64_t TrimEngineBuffers(
    const SubplanGraph& graph, StreamSource* source,
    const std::vector<std::unique_ptr<DeltaBuffer>>& buffers) {
  std::vector<bool> is_root(buffers.size(), false);
  for (QueryId q = 0; q < graph.num_queries(); ++q) {
    int root = graph.query_root(q);
    if (root >= 0 && root < static_cast<int>(buffers.size())) {
      is_root[static_cast<size_t>(root)] = true;
    }
  }
  int64_t reclaimed = 0;
  for (size_t s = 0; s < buffers.size(); ++s) {
    if (buffers[s] != nullptr && !is_root[s]) {
      reclaimed += buffers[s]->TrimConsumed();
    }
  }
  for (const std::string& name : source->TableNames()) {
    reclaimed += source->buffer(name)->TrimConsumed();
  }
  return reclaimed;
}

PaceExecutor::PaceExecutor(const SubplanGraph* graph, StreamSource* source,
                           ExecOptions opts)
    : graph_(graph), source_(source), opts_(opts) {
  CHECK(graph != nullptr && source != nullptr);
  // The pool must exist before the executor-construction loop below:
  // BuildTree binds operators to opts_.sched_pool at construction time.
  if (opts_.sched.num_threads > 1) {
    pool_ = std::make_unique<sched::WorkerPool>(opts_.sched.num_threads);
    opts_.sched_pool = pool_.get();
  }
  int n = graph->num_subplans();
  buffers_.resize(n);
  executors_.resize(n);
  // Children-first so a parent's SubplanInput consumers find live buffers.
  // This order is deterministic, which recovery relies on: a freshly
  // constructed executor registers the same consumer ids on the same
  // buffers as the one that wrote the checkpoint.
  for (int i : graph->TopoChildrenFirst()) {
    const Subplan& sp = graph->subplan(i);
    buffers_[i] = std::make_unique<DeltaBuffer>(
        sp.root->output_schema, "subplan_" + std::to_string(i));
    if (opts_.flow.budget != nullptr) {
      BufferLimits limits;
      limits.soft_limit_bytes = opts_.flow.buffer_soft_limit_bytes;
      limits.high_watermark = opts_.flow.buffer_high_watermark;
      limits.low_watermark = opts_.flow.buffer_low_watermark;
      buffers_[i]->set_limits(limits);
      buffers_[i]->AttachBudget(opts_.flow.budget);
    }
    executors_[i] = std::make_unique<SubplanExecutor>(
        sp, source_, buffers_, buffers_[i].get(), opts_);
  }
  topo_ = graph->TopoChildrenFirst();
  if (opts_.flow.budget != nullptr) {
    base_component_ = opts_.flow.budget->Register("base");
    PublishBaseBytes();
  }
}

void PaceExecutor::PublishBaseBytes() {
  if (base_component_ < 0) return;
  int64_t bytes = 0;
  for (const std::string& name : source_->TableNames()) {
    bytes += source_->buffer(name)->retained_bytes();
  }
  opts_.flow.budget->Set(base_component_, bytes);
}

Status PaceExecutor::BeginWindow(const PaceConfig& paces) {
  ISHARE_RETURN_NOT_OK(ValidatePaceConfig(*graph_, paces));
  paces_ = paces;
  int n = graph_->num_subplans();

  // Event points: every i/p_s for every subplan s.
  std::set<Fraction> points;
  for (int s = 0; s < n; ++s) {
    for (int i = 1; i <= paces[s]; ++i) {
      points.insert(Fraction::Make(i, paces[s]));
    }
  }
  schedule_.assign(points.begin(), points.end());

  acc_ = RunResult{};
  acc_.subplans.resize(n);
  next_step_ = 0;
  active_ = true;
  return Status::OK();
}

Status PaceExecutor::StepOnce() {
  const Fraction& f = schedule_[next_step_];
  ISHARE_RETURN_NOT_OK(source_->AdvanceToStep(f.num, f.den));
  PublishBaseBytes();
  bool is_trigger = (f.num == f.den);
  int64_t step = next_step_ + 1;  // 1-based step being executed
  if (pool_ != nullptr) {
    ISHARE_RETURN_NOT_OK(StepParallel(f, step, is_trigger));
  } else {
    for (int s : topo_) {
      if (!f.IsStepOf(paces_[s])) continue;
      if (before_subplan_) ISHARE_RETURN_NOT_OK(before_subplan_(step, s));
      ISHARE_ASSIGN_OR_RETURN(ExecRecord rec, executors_[s]->RunExecution());
      SubplanRunStats& st = acc_.subplans[s];
      st.work_per_exec.push_back(rec.work);
      st.secs_per_exec.push_back(rec.seconds);
      st.exec_fraction.push_back(f.ToDouble());
      st.total_work += rec.work;
      st.total_seconds += rec.seconds;
      st.tuples_out += rec.tuples_out;
      if (is_trigger) {
        st.final_work = rec.work;
        st.final_seconds = rec.seconds;
      }
      acc_.total_work += rec.work;
      acc_.total_seconds += rec.seconds;
    }
  }
  if (opts_.flow.trim_at_boundaries) {
    TrimEngineBuffers(*graph_, source_, buffers_);
    PublishBaseBytes();
  }
  return Status::OK();
}

// Wave-parallel equivalent of the serial topo loop in StepOnce. The
// serial-equivalence argument (DESIGN.md §10): waves respect the runnable
// DAG, so every child's delta is fully appended before a parent consumes
// it; ExecuteOnce does no shared publication, and metrics/stats are then
// applied strictly in topo order — the same order (and hence the same
// float accumulation sequence) as the serial loop. Divergences from
// serial, both confined to paths the bit-exactness tests do not exercise:
// before-subplan hooks all fire before the first execution instead of
// interleaved (fault-injection harnesses run serial), and on error the
// topo-successors of the failing subplan within already-dispatched waves
// have executed without their metrics being published.
Status PaceExecutor::StepParallel(const Fraction& f, int64_t step,
                                  bool is_trigger) {
  std::vector<int> runnable;
  for (int s : topo_) {
    if (f.IsStepOf(paces_[s])) runnable.push_back(s);
  }
  if (runnable.empty()) return Status::OK();
  if (before_subplan_) {
    for (int s : runnable) ISHARE_RETURN_NOT_OK(before_subplan_(step, s));
  }
  std::vector<Status> statuses(executors_.size());
  std::vector<ExecRecord> records(executors_.size());
  std::vector<std::vector<int>> waves = sched::BuildWaves(*graph_, runnable);
  obs::Registry().GetCounter("sched.step.waves")
      .Add(static_cast<double>(waves.size()));
  bool failed = false;
  for (size_t w = 0; w < waves.size(); ++w) {
    const std::vector<int>& wave = waves[w];
    pool_->ParallelFor(static_cast<int64_t>(wave.size()), [&](int64_t i) {
      int s = wave[static_cast<size_t>(i)];
      Result<ExecRecord> r = executors_[s]->ExecuteOnce();
      if (r.ok()) {
        records[s] = *r;
      } else {
        statuses[s] = r.status();
      }
    });
    for (int s : wave) {
      if (!statuses[s].ok()) failed = true;
    }
    if (failed) break;  // don't feed parents a failed child's partial delta
    if (after_wave_) {
      ISHARE_RETURN_NOT_OK(after_wave_(step, static_cast<int>(w)));
    }
  }
  if (failed) {
    // Surface the first error in topo order; no metrics are published for
    // the torn step (serial would have published the pre-error prefix —
    // an error-path divergence the equivalence tests do not exercise).
    for (int s : runnable) ISHARE_RETURN_NOT_OK(statuses[s]);
  }
  for (int s : runnable) {
    const ExecRecord& rec = records[s];
    executors_[s]->PublishExecMetrics(rec);
    SubplanRunStats& st = acc_.subplans[s];
    st.work_per_exec.push_back(rec.work);
    st.secs_per_exec.push_back(rec.seconds);
    st.exec_fraction.push_back(f.ToDouble());
    st.total_work += rec.work;
    st.total_seconds += rec.seconds;
    st.tuples_out += rec.tuples_out;
    if (is_trigger) {
      st.final_work = rec.work;
      st.final_seconds = rec.seconds;
    }
    acc_.total_work += rec.work;
    acc_.total_seconds += rec.seconds;
  }
  return Status::OK();
}

RunResult PaceExecutor::FinishWindow() {
  acc_.query_final_work.assign(graph_->num_queries(), 0.0);
  acc_.query_latency_seconds.assign(graph_->num_queries(), 0.0);
  for (QueryId q = 0; q < graph_->num_queries(); ++q) {
    for (int s : graph_->SubplansOfQuery(q)) {
      acc_.query_final_work[q] += acc_.subplans[s].final_work;
      acc_.query_latency_seconds[q] += acc_.subplans[s].final_seconds;
    }
  }
  active_ = false;
  return acc_;
}

Result<RunResult> PaceExecutor::ResumeWindow() {
  if (!active_) {
    return Status::InvalidArgument(
        "no active window: call BeginWindow or Restore first");
  }
  obs::ScopedSpan span("exec.window.run");
  while (next_step_ < num_steps()) {
    ISHARE_RETURN_NOT_OK(StepOnce());
    ++next_step_;
    if (after_step_) ISHARE_RETURN_NOT_OK(after_step_(next_step_));
  }
  return FinishWindow();
}

Result<RunResult> PaceExecutor::Run(const PaceConfig& paces) {
  ISHARE_RETURN_NOT_OK(BeginWindow(paces));
  return ResumeWindow();
}

Status PaceExecutor::SnapshotImpl(recovery::CheckpointWriter* w,
                                  bool include_timings) const {
  w->U64(paces_.size());
  for (int p : paces_) w->I64(p);
  w->I64(next_step_);
  SnapshotRunStats(w, acc_, include_timings);
  return SnapshotEngineState(w, *source_, buffers_, executors_);
}

Status PaceExecutor::Snapshot(recovery::CheckpointWriter* w) const {
  return SnapshotImpl(w, /*include_timings=*/true);
}

Status PaceExecutor::Restore(recovery::CheckpointReader* r) {
  uint64_t np = r->U64();
  if (np != static_cast<uint64_t>(graph_->num_subplans())) {
    r->Fail("checkpoint pace table has " + std::to_string(np) +
            " entries for a graph with " +
            std::to_string(graph_->num_subplans()) + " subplans");
    return r->status();
  }
  PaceConfig paces(np);
  for (int& p : paces) p = static_cast<int>(r->I64());
  if (!r->ok()) return r->status();
  Status st = BeginWindow(paces);
  if (!st.ok()) {
    r->Fail("checkpoint pace table invalid: " + st.ToString());
    return r->status();
  }
  next_step_ = r->I64();
  if (next_step_ < 0 || next_step_ > num_steps()) {
    r->Fail("checkpoint step " + std::to_string(next_step_) +
            " outside schedule of " + std::to_string(num_steps()) + " steps");
    return r->status();
  }
  // Replay the source to the checkpointed event point; the released base
  // logs are a pure function of the fraction (perturbed or not), so they
  // regenerate bit-identically and only the consumer offsets need state.
  if (next_step_ > 0) {
    const Fraction& f = schedule_[next_step_ - 1];
    ISHARE_RETURN_NOT_OK(source_->AdvanceToStep(f.num, f.den));
  }
  ISHARE_RETURN_NOT_OK(RestoreRunStats(r, &acc_));
  if (acc_.subplans.size() != static_cast<size_t>(graph_->num_subplans())) {
    r->Fail("checkpoint run stats cover " +
            std::to_string(acc_.subplans.size()) + " subplans, graph has " +
            std::to_string(graph_->num_subplans()));
    return r->status();
  }
  ISHARE_RETURN_NOT_OK(RestoreEngineState(r, *source_, buffers_, executors_));
  // The source replay regenerated the base buffers untrimmed; re-apply
  // the boundary-trim invariant so retained memory after recovery matches
  // the uninterrupted run.
  if (opts_.flow.trim_at_boundaries) {
    TrimEngineBuffers(*graph_, source_, buffers_);
    PublishBaseBytes();
  }
  active_ = true;
  return r->status();
}

std::string PaceExecutor::StateFingerprint() const {
  recovery::CheckpointWriter w;
  Status st = SnapshotImpl(&w, /*include_timings=*/false);
  CHECK(st.ok()) << "fingerprint failed: " << st.ToString();
  return w.Take();
}

int64_t PaceExecutor::ReplayBacklog() const {
  int64_t backlog = 0;
  for (const auto& ex : executors_) backlog += ex->PendingInput();
  return backlog;
}

DeltaBuffer* PaceExecutor::query_output(QueryId q) const {
  int root = graph_->query_root(q);
  CHECK_GE(root, 0);
  return buffers_[root].get();
}

std::unordered_map<Row, int64_t, RowHasher> MaterializeResult(
    const DeltaBuffer& buffer, QueryId q) {
  std::unordered_map<Row, int64_t, RowHasher> out;
  for (const DeltaTuple& t : buffer.log()) {
    if (!t.qset.Contains(q)) continue;
    out[t.row] += t.weight;
  }
  for (auto it = out.begin(); it != out.end();) {
    if (it->second == 0) {
      it = out.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

}  // namespace ishare
