// Pace-driven execution of a shared plan over one trigger window (paper
// Sec. 2.2, Fig. 3). A subplan with pace k executes at global data
// fractions i/k; at equal fractions children run before parents, and a
// parent's pace never exceeds its child's. Reports the paper's headline
// quantities: total work (all executions, OpWork units), and per-query
// final work / latency (the executions at the trigger point).

#ifndef ISHARE_EXEC_PACE_EXECUTOR_H_
#define ISHARE_EXEC_PACE_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "ishare/common/status.h"
#include "ishare/exec/subplan_exec.h"
#include "ishare/plan/subplan_graph.h"
#include "ishare/storage/stream_source.h"

namespace ishare {

// Paces of all subplans, indexed like SubplanGraph::subplans(). A pace k
// means the subplan starts one incremental execution whenever the system
// has received 1/k of the trigger window's data (Sec. 2.2).
using PaceConfig = std::vector<int>;

// Checks that `paces` is a usable configuration for `graph`: one pace per
// subplan, every pace >= 1. Shared by the static and adaptive executors.
Status ValidatePaceConfig(const SubplanGraph& graph, const PaceConfig& paces);

// Per-subplan measurements of one pace-driven run.
struct SubplanRunStats {
  std::vector<double> work_per_exec;
  std::vector<double> secs_per_exec;
  std::vector<double> exec_fraction;  // data fraction of each execution
  double total_work = 0;
  double total_seconds = 0;
  // The execution at the trigger point (fraction 1.0).
  double final_work = 0;
  double final_seconds = 0;
  int64_t tuples_out = 0;
};

// Result of executing a shared plan under a pace configuration.
struct RunResult {
  double total_work = 0;      // the paper's "total work" (CPU proxy)
  double total_seconds = 0;   // the paper's "total execution time"
  std::vector<SubplanRunStats> subplans;
  // Per query: sum over the query's subplans of their final execution
  // work/time (the paper's "final work" and "latency").
  std::vector<double> query_final_work;
  std::vector<double> query_latency_seconds;
};

// Drives a SubplanGraph over a simulated trigger window. The executor owns
// the subplan output buffers; query results remain available in the query
// roots' buffers after Run().
class PaceExecutor {
 public:
  // The stream source must be freshly constructed or Reset().
  PaceExecutor(const SubplanGraph* graph, StreamSource* source,
               ExecOptions opts = ExecOptions());

  // Executes the whole trigger window under `paces`; paces.size() must
  // equal the number of subplans and every pace must be >= 1. Malformed
  // configurations and runtime storage failures return Status instead of
  // aborting.
  Result<RunResult> Run(const PaceConfig& paces);

  // Output buffer of query q's root subplan (valid after Run()).
  DeltaBuffer* query_output(QueryId q) const;
  DeltaBuffer* subplan_output(int subplan) const {
    return buffers_[subplan].get();
  }

 private:
  const SubplanGraph* graph_;
  StreamSource* source_;
  ExecOptions opts_;
  std::vector<std::unique_ptr<DeltaBuffer>> buffers_;
  std::vector<std::unique_ptr<SubplanExecutor>> executors_;
};

// Sums the weights of buffer tuples valid for query q; the result maps
// each distinct row to its net multiplicity. Used to check that
// incremental execution converges to the batch result.
std::unordered_map<Row, int64_t, RowHasher> MaterializeResult(
    const DeltaBuffer& buffer, QueryId q);

}  // namespace ishare

#endif  // ISHARE_EXEC_PACE_EXECUTOR_H_
