// Pace-driven execution of a shared plan over one trigger window (paper
// Sec. 2.2, Fig. 3). A subplan with pace k executes at global data
// fractions i/k; at equal fractions children run before parents, and a
// parent's pace never exceeds its child's. Reports the paper's headline
// quantities: total work (all executions, OpWork units), and per-query
// final work / latency (the executions at the trigger point).
//
// The window is driven stepwise (BeginWindow / ResumeWindow over an
// explicit schedule of event points) so the recovery layer (DESIGN.md §8)
// can checkpoint between steps and resume a torn-down executor from the
// last committed epoch; Run() is the single-shot convenience wrapper.

#ifndef ISHARE_EXEC_PACE_EXECUTOR_H_
#define ISHARE_EXEC_PACE_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ishare/common/fraction.h"
#include "ishare/common/status.h"
#include "ishare/exec/subplan_exec.h"
#include "ishare/plan/subplan_graph.h"
#include "ishare/recovery/checkpointable.h"
#include "ishare/sched/worker_pool.h"
#include "ishare/storage/stream_source.h"

namespace ishare {

// Paces of all subplans, indexed like SubplanGraph::subplans(). A pace k
// means the subplan starts one incremental execution whenever the system
// has received 1/k of the trigger window's data (Sec. 2.2).
using PaceConfig = std::vector<int>;

// Checks that `paces` is a usable configuration for `graph`: one pace per
// subplan, every pace >= 1. Shared by the static and adaptive executors.
Status ValidatePaceConfig(const SubplanGraph& graph, const PaceConfig& paces);

// Per-subplan measurements of one pace-driven run.
struct SubplanRunStats {
  std::vector<double> work_per_exec;
  std::vector<double> secs_per_exec;
  std::vector<double> exec_fraction;  // data fraction of each execution
  double total_work = 0;
  double total_seconds = 0;
  // The execution at the trigger point (fraction 1.0).
  double final_work = 0;
  double final_seconds = 0;
  int64_t tuples_out = 0;
};

// Result of executing a shared plan under a pace configuration.
struct RunResult {
  double total_work = 0;      // the paper's "total work" (CPU proxy)
  double total_seconds = 0;   // the paper's "total execution time"
  std::vector<SubplanRunStats> subplans;
  // Per query: sum over the query's subplans of their final execution
  // work/time (the paper's "final work" and "latency").
  std::vector<double> query_final_work;
  std::vector<double> query_latency_seconds;
};

// Checkpoint serde for RunResult, shared by the static and adaptive
// executors. `include_timings = false` skips every wall-clock field and is
// what StateFingerprint() uses: timings differ run to run by nature and
// must not break bit-exact equivalence checks. Restore always expects the
// full (timings included) layout checkpoints are written with.
void SnapshotRunStats(recovery::CheckpointWriter* w, const RunResult& r,
                      bool include_timings);
Status RestoreRunStats(recovery::CheckpointReader* r, RunResult* out);

// Serde for the execution substrate both executors share: base-buffer
// consumer offsets (keyed by sorted table name; base logs are regenerated
// by replaying the source to the checkpointed fraction), full subplan
// output buffers, and every SubplanExecutor's state.
Status SnapshotEngineState(
    recovery::CheckpointWriter* w, const StreamSource& source,
    const std::vector<std::unique_ptr<DeltaBuffer>>& buffers,
    const std::vector<std::unique_ptr<SubplanExecutor>>& executors);
Status RestoreEngineState(
    recovery::CheckpointReader* r, const StreamSource& source,
    const std::vector<std::unique_ptr<DeltaBuffer>>& buffers,
    const std::vector<std::unique_ptr<SubplanExecutor>>& executors);

// Reclaims fully-consumed prefixes of every trimmable engine buffer: all
// base-relation buffers plus every subplan output buffer that is not a
// query root. Roots never trim — they hold the query results that
// MaterializeResult reads out-of-band, so no consumer offset proves
// their tuples were seen. Returns the number of tuples reclaimed. Both
// executors call this at pace boundaries when
// ExecOptions::flow.trim_at_boundaries is set (DESIGN.md §9).
int64_t TrimEngineBuffers(
    const SubplanGraph& graph, StreamSource* source,
    const std::vector<std::unique_ptr<DeltaBuffer>>& buffers);

// Drives a SubplanGraph over a simulated trigger window. The executor owns
// the subplan output buffers; query results remain available in the query
// roots' buffers after Run().
class PaceExecutor : public recovery::Checkpointable {
 public:
  // Called after step `step` (1-based count of completed event points)
  // finishes; a non-OK return aborts the window. The crash/recovery
  // harness injects kills and checkpoints here.
  using StepHook = std::function<Status(int64_t step)>;
  // Called right before subplan `subplan` executes within step `step`.
  using SubplanHook = std::function<Status(int64_t step, int subplan)>;
  // Called after dependency wave `wave` (0-based) of step `step` finishes
  // executing but before any of the step's metrics publish — the window
  // in which a crash loses a parallel step's partial results wholesale.
  // Only fires on the wave-parallel path (never in serial runs); the
  // crash harness's kMidWave kill-point lands here.
  using WaveHook = std::function<Status(int64_t step, int wave)>;

  // The stream source must be freshly constructed or Reset().
  PaceExecutor(const SubplanGraph* graph, StreamSource* source,
               ExecOptions opts = ExecOptions());

  // Executes the whole trigger window under `paces`; paces.size() must
  // equal the number of subplans and every pace must be >= 1. Malformed
  // configurations and runtime storage failures return Status instead of
  // aborting. Equivalent to BeginWindow + ResumeWindow.
  Result<RunResult> Run(const PaceConfig& paces);

  // Validates `paces` and arms the window's event-point schedule without
  // executing anything.
  Status BeginWindow(const PaceConfig& paces);

  // Runs every remaining step of the armed window (all of them after
  // BeginWindow; the tail after Restore) and finalizes per-query totals.
  Result<RunResult> ResumeWindow();

  bool window_active() const { return active_; }
  int64_t num_steps() const { return static_cast<int64_t>(schedule_.size()); }
  int64_t completed_steps() const { return next_step_; }

  void set_after_step_hook(StepHook h) { after_step_ = std::move(h); }
  void set_before_subplan_hook(SubplanHook h) {
    before_subplan_ = std::move(h);
  }
  void set_after_wave_hook(WaveHook h) { after_wave_ = std::move(h); }

  // Owned worker pool, or nullptr when the executor runs serial. The
  // chaos injector targets it for worker stall/delay events.
  sched::WorkerPool* worker_pool() const { return pool_.get(); }

  // Checkpointable: pace table, step counter, accumulated stats, and the
  // whole execution substrate. Restore must be called on an executor that
  // was freshly constructed against the same graph and an un-advanced
  // source; it replays the source to the checkpointed event point.
  Status Snapshot(recovery::CheckpointWriter* w) const override;
  Status Restore(recovery::CheckpointReader* r) override;

  // Deterministic digest of the execution state: everything Snapshot
  // covers except wall-clock timings. Two runs that processed the same
  // data identically have equal fingerprints, crash or no crash.
  std::string StateFingerprint() const;

  // Leaf deltas already in buffers that the next executions will re-read;
  // right after Restore this is the recovery replay backlog.
  int64_t ReplayBacklog() const;

  // Output buffer of query q's root subplan (valid after Run()).
  DeltaBuffer* query_output(QueryId q) const;
  DeltaBuffer* subplan_output(int subplan) const {
    return buffers_[subplan].get();
  }

 private:
  Status StepOnce();
  // Wave-parallel step body (DESIGN.md §10), used when the executor owns
  // a worker pool: runnable subplans are grouped into dependency waves
  // and each wave's subplans execute concurrently; stats and metrics are
  // then applied serially in topo order, keeping results and observable
  // totals bit-exact with the serial loop.
  Status StepParallel(const Fraction& f, int64_t step, bool is_trigger);
  RunResult FinishWindow();
  Status SnapshotImpl(recovery::CheckpointWriter* w,
                      bool include_timings) const;
  void PublishBaseBytes();

  const SubplanGraph* graph_;
  StreamSource* source_;
  ExecOptions opts_;
  // Owned worker pool, created when opts_.sched.num_threads > 1 (and
  // advertised to operators via opts_.sched_pool); nullptr = serial.
  std::unique_ptr<sched::WorkerPool> pool_;
  std::vector<std::unique_ptr<DeltaBuffer>> buffers_;
  std::vector<std::unique_ptr<SubplanExecutor>> executors_;

  // Window state (live between BeginWindow/Restore and FinishWindow).
  PaceConfig paces_;
  std::vector<Fraction> schedule_;  // ascending event points, trigger last
  std::vector<int> topo_;
  int64_t next_step_ = 0;  // == completed steps; schedule_[next_step_] is next
  RunResult acc_;
  bool active_ = false;
  StepHook after_step_;
  SubplanHook before_subplan_;
  WaveHook after_wave_;
  // Aggregated base-buffer bytes component in opts_.flow.budget (-1 when
  // no budget). Base buffers belong to the shared source, so they are
  // polled into one component rather than attached, keeping the source
  // free of pointers into an executor-scoped arbiter.
  int base_component_ = -1;
};

// Sums the weights of buffer tuples valid for query q; the result maps
// each distinct row to its net multiplicity. Used to check that
// incremental execution converges to the batch result.
std::unordered_map<Row, int64_t, RowHasher> MaterializeResult(
    const DeltaBuffer& buffer, QueryId q);

}  // namespace ishare

#endif  // ISHARE_EXEC_PACE_EXECUTOR_H_
