#include "ishare/exec/phys_op.h"

#include <map>

#include "ishare/exec/aggregate.h"
#include "ishare/exec/hash_join.h"

namespace ishare {

DeltaBatch ScanOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  DeltaBatch out;
  out.reserve(in.size());
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    // Base tuples are valid for every query sharing this scan.
    out.emplace_back(t.row, node_->queries, t.weight);
    work_.out += 1;
  }
  return out;
}

DeltaBatch SubplanInputOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  DeltaBatch out;
  out.reserve(in.size());
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    QuerySet masked = t.qset.Intersect(node_->queries);
    if (masked.empty()) continue;  // σ_filter: not needed by this subplan
    out.emplace_back(t.row, masked, t.weight);
    work_.out += 1;
  }
  return out;
}

FilterOp::FilterOp(const PlanNode* node, const Schema& input_schema)
    : PhysOp(node) {
  // Group queries by their predicate object so each distinct predicate is
  // compiled and evaluated once per tuple (merged identical selects share
  // the same ExprPtr).
  std::map<const Expr*, std::pair<ExprPtr, QuerySet>> by_pred;
  for (const auto& [q, pred] : node->predicates) {
    if (pred == nullptr) continue;
    auto& slot = by_pred[pred.get()];
    slot.first = pred;
    slot.second.Add(q);
  }
  groups_.reserve(by_pred.size());
  for (const auto& [ptr, slot] : by_pred) {
    groups_.push_back(PredGroup{
        CompiledExpr::Compile(slot.first, input_schema), slot.second});
  }
}

DeltaBatch FilterOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  DeltaBatch out;
  out.reserve(in.size());
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    QuerySet qset = t.qset;
    for (const PredGroup& g : groups_) {
      if (!qset.Intersects(g.queries)) continue;
      if (!g.pred.EvalBool(t.row)) qset = qset.Minus(g.queries);
    }
    if (qset.empty()) continue;
    out.emplace_back(t.row, qset, t.weight);
    work_.out += 1;
  }
  return out;
}

ProjectOp::ProjectOp(const PlanNode* node, const Schema& input_schema)
    : PhysOp(node) {
  exprs_.reserve(node->projections.size());
  for (const NamedExpr& ne : node->projections) {
    exprs_.push_back(CompiledExpr::Compile(ne.expr, input_schema));
  }
}

DeltaBatch ProjectOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  DeltaBatch out;
  out.reserve(in.size());
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    Row row;
    row.reserve(exprs_.size());
    for (const CompiledExpr& e : exprs_) row.push_back(e.Eval(t.row));
    out.emplace_back(std::move(row), t.qset, t.weight);
    work_.out += 1;
  }
  return out;
}

std::unique_ptr<PhysOp> CreatePhysOp(const PlanNode* node) {
  CHECK(node != nullptr);
  switch (node->kind) {
    case PlanKind::kScan:
      return std::make_unique<ScanOp>(node);
    case PlanKind::kSubplanInput:
      return std::make_unique<SubplanInputOp>(node);
    case PlanKind::kFilter:
      return std::make_unique<FilterOp>(node,
                                        node->children[0]->output_schema);
    case PlanKind::kProject:
      return std::make_unique<ProjectOp>(node,
                                         node->children[0]->output_schema);
    case PlanKind::kJoin:
      return std::make_unique<HashJoinOp>(node,
                                          node->children[0]->output_schema,
                                          node->children[1]->output_schema);
    case PlanKind::kAggregate:
      return std::make_unique<AggregateOp>(node,
                                           node->children[0]->output_schema);
  }
  CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace ishare
