#include "ishare/exec/phys_op.h"

#include <map>

#include "ishare/exec/aggregate.h"
#include "ishare/exec/hash_join.h"

namespace ishare {

namespace {

// Drops rows whose query set emptied: keeps `sel`-selected rows with
// non-zero qbits, preserving input order, and keeps the all-selected
// representation when nothing was dropped.
SelectionVector CompactSelection(const ColumnBatch& b) {
  std::vector<int32_t> keep;
  keep.reserve(static_cast<size_t>(b.num_selected()));
  const uint64_t* q = b.qbits.data();
  b.sel.ForEach([&](int32_t i) {
    if (q[i] != 0) keep.push_back(i);
  });
  if (static_cast<int64_t>(keep.size()) == b.num_rows()) {
    return SelectionVector::All(b.num_rows());
  }
  return SelectionVector::FromIndices(std::move(keep));
}

}  // namespace

// Row shim: any operator can be driven columnar through its row
// implementation. The pump never takes this path (SupportsColumnar
// defaults to false); it exists so the contract "ProcessColumnar ==
// convert ∘ Process ∘ convert" is executable in tests.
void PhysOp::ProcessColumnar(int child_idx, ColumnBatch in, ColumnBatch* out) {
  DeltaBatch rows = in.ToDeltas();
  DeltaBatch orows = Process(child_idx, rows);
  CHECK(ColumnBatch::FromDeltas(node_->output_schema, orows, out))
      << "row shim: operator output does not conform to its declared schema";
}

DeltaBatch ScanOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  DeltaBatch out;
  out.reserve(in.size());
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    // Base tuples are valid for every query sharing this scan.
    out.emplace_back(t.row, node_->queries, t.weight);
    work_.out += 1;
  }
  return out;
}

bool ScanOp::SupportsColumnar(int child_idx) const {
  return child_idx == 0;
}

void ScanOp::ProcessColumnar(int child_idx, ColumnBatch in, ColumnBatch* out) {
  CHECK_EQ(child_idx, 0);
  const double n_sel = static_cast<double>(in.num_selected());
  work_.in += n_sel;
  // Base tuples are valid for every query sharing this scan; splatting
  // the scan's bits over dead slots too is harmless (they stay dead).
  in.qbits.assign(in.qbits.size(), node_->queries.bits());
  work_.out += n_sel;
  *out = std::move(in);
}

DeltaBatch SubplanInputOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  DeltaBatch out;
  out.reserve(in.size());
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    QuerySet masked = t.qset.Intersect(node_->queries);
    if (masked.empty()) continue;  // σ_filter: not needed by this subplan
    out.emplace_back(t.row, masked, t.weight);
    work_.out += 1;
  }
  return out;
}

bool SubplanInputOp::SupportsColumnar(int child_idx) const {
  return child_idx == 0;
}

void SubplanInputOp::ProcessColumnar(int child_idx, ColumnBatch in,
                                     ColumnBatch* out) {
  CHECK_EQ(child_idx, 0);
  work_.in += static_cast<double>(in.num_selected());
  const uint64_t mask = node_->queries.bits();
  uint64_t* q = in.qbits.data();
  const int64_t n = in.num_rows();
  for (int64_t i = 0; i < n; ++i) q[i] &= mask;  // σ_filter, branch-free
  in.sel = CompactSelection(in);
  work_.out += static_cast<double>(in.num_selected());
  *out = std::move(in);
}

FilterOp::FilterOp(const PlanNode* node, const Schema& input_schema)
    : PhysOp(node) {
  // Group queries by their predicate object so each distinct predicate is
  // compiled and evaluated once per tuple (merged identical selects share
  // the same ExprPtr).
  std::map<const Expr*, std::pair<ExprPtr, QuerySet>> by_pred;
  for (const auto& [q, pred] : node->predicates) {
    if (pred == nullptr) continue;
    auto& slot = by_pred[pred.get()];
    slot.first = pred;
    slot.second.Add(q);
  }
  groups_.reserve(by_pred.size());
  for (const auto& [ptr, slot] : by_pred) {
    VectorExpr vpred = VectorExpr::Compile(slot.first, input_schema);
    // Predicates are evaluated in boolean context, so a string-typed root
    // is a row-path programming error too; stay on rows for it.
    columnar_ok_ = columnar_ok_ && vpred.supported() &&
                   vpred.output_type() != DataType::kString;
    groups_.push_back(PredGroup{CompiledExpr::Compile(slot.first, input_schema),
                                std::move(vpred), slot.second});
  }
}

DeltaBatch FilterOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  DeltaBatch out;
  out.reserve(in.size());
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    QuerySet qset = t.qset;
    for (const PredGroup& g : groups_) {
      if (!qset.Intersects(g.queries)) continue;
      if (!g.pred.EvalBool(t.row)) qset = qset.Minus(g.queries);
    }
    if (qset.empty()) continue;
    out.emplace_back(t.row, qset, t.weight);
    work_.out += 1;
  }
  return out;
}

bool FilterOp::SupportsColumnar(int child_idx) const {
  return child_idx == 0 && columnar_ok_;
}

void FilterOp::ProcessColumnar(int child_idx, ColumnBatch in,
                               ColumnBatch* out) {
  CHECK_EQ(child_idx, 0);
  const int64_t n = in.num_rows();
  work_.in += static_cast<double>(in.num_selected());
  uint64_t* q = in.qbits.data();
  std::vector<uint8_t> mask;
  for (const PredGroup& g : groups_) {
    g.vpred.EvalBoolMask(in.cols, n, &mask);
    const uint64_t gbits = g.queries.bits();
    const uint8_t* m = mask.data();
    // Clearing the bits of a non-intersecting query set is a no-op, so
    // the row path's Intersects() skip needs no branch here: clear gbits
    // exactly where the predicate fails.
    for (int64_t i = 0; i < n; ++i) {
      q[i] &= ~(gbits & (0 - static_cast<uint64_t>(m[i] == 0)));
    }
  }
  in.sel = CompactSelection(in);
  work_.out += static_cast<double>(in.num_selected());
  *out = std::move(in);
}

ProjectOp::ProjectOp(const PlanNode* node, const Schema& input_schema)
    : PhysOp(node) {
  exprs_.reserve(node->projections.size());
  vexprs_.reserve(node->projections.size());
  for (const NamedExpr& ne : node->projections) {
    exprs_.push_back(CompiledExpr::Compile(ne.expr, input_schema));
    vexprs_.push_back(VectorExpr::Compile(ne.expr, input_schema));
    columnar_ok_ = columnar_ok_ && vexprs_.back().supported();
  }
}

DeltaBatch ProjectOp::Process(int child_idx, DeltaSpan in) {
  CHECK_EQ(child_idx, 0);
  DeltaBatch out;
  out.reserve(in.size());
  for (const DeltaTuple& t : in) {
    work_.in += 1;
    Row row;
    row.reserve(exprs_.size());
    for (const CompiledExpr& e : exprs_) row.push_back(e.Eval(t.row));
    out.emplace_back(std::move(row), t.qset, t.weight);
    work_.out += 1;
  }
  return out;
}

bool ProjectOp::SupportsColumnar(int child_idx) const {
  return child_idx == 0 && columnar_ok_;
}

void ProjectOp::ProcessColumnar(int child_idx, ColumnBatch in,
                                ColumnBatch* out) {
  CHECK_EQ(child_idx, 0);
  const int64_t n = in.num_rows();
  const double n_sel = static_cast<double>(in.num_selected());
  work_.in += n_sel;
  out->cols.clear();
  out->cols.reserve(vexprs_.size());
  for (const VectorExpr& v : vexprs_) {
    ColumnVector c;
    v.Eval(in.cols, n, &c);
    out->cols.push_back(std::move(c));
  }
  out->qbits = std::move(in.qbits);
  out->weights = std::move(in.weights);
  out->sel = std::move(in.sel);
  work_.out += n_sel;
}

std::unique_ptr<PhysOp> CreatePhysOp(const PlanNode* node) {
  CHECK(node != nullptr);
  switch (node->kind) {
    case PlanKind::kScan:
      return std::make_unique<ScanOp>(node);
    case PlanKind::kSubplanInput:
      return std::make_unique<SubplanInputOp>(node);
    case PlanKind::kFilter:
      return std::make_unique<FilterOp>(node,
                                        node->children[0]->output_schema);
    case PlanKind::kProject:
      return std::make_unique<ProjectOp>(node,
                                         node->children[0]->output_schema);
    case PlanKind::kJoin:
      return std::make_unique<HashJoinOp>(node,
                                          node->children[0]->output_schema,
                                          node->children[1]->output_schema);
    case PlanKind::kAggregate:
      return std::make_unique<AggregateOp>(node,
                                           node->children[0]->output_schema);
  }
  CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace ishare
