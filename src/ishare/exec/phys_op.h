// Physical operator interface for shared incremental execution (paper
// Sec. 2.3): operators process delta batches tagged with per-tuple query
// bitvectors and signed multiplicities, and meter their own OpWork. Scan,
// marking select (σ*), and project live here; stateful operators are in
// hash_join.h and aggregate.h.

#ifndef ISHARE_EXEC_PHYS_OP_H_
#define ISHARE_EXEC_PHYS_OP_H_

#include <memory>
#include <vector>

#include "ishare/common/status.h"
#include "ishare/exec/metrics.h"
#include "ishare/expr/vector_expr.h"
#include "ishare/plan/plan.h"
#include "ishare/recovery/serializer.h"
#include "ishare/storage/column_batch.h"
#include "ishare/storage/delta.h"

namespace ishare {

// Base class for physical operators implementing shared incremental
// execution (Sec. 2.3). An operator is fed delta batches from its children
// (one call per child per incremental execution) and returns its own output
// deltas. Blocking operators (Aggregate) buffer updates and release them
// from EndExecution, which the driver calls once per incremental execution
// after all child input has been pushed.
class PhysOp {
 public:
  explicit PhysOp(const PlanNode* node) : node_(node) {}
  virtual ~PhysOp() = default;

  PhysOp(const PhysOp&) = delete;
  PhysOp& operator=(const PhysOp&) = delete;

  const PlanNode* node() const { return node_; }

  // Processes one delta batch arriving from child `child_idx`.
  virtual DeltaBatch Process(int child_idx, DeltaSpan in) = 0;

  // ---- Columnar fast path (DESIGN.md §12) -------------------------------
  // True when ProcessColumnar has a real vectorized implementation for
  // input `child_idx`. The columnar pump only routes batches through
  // ProcessColumnar when this returns true; everything else stays on the
  // row interface above, which remains the engine's compatibility shim
  // (buffers, checkpoints, flow trimming and morsel partitioning all
  // keep speaking rows).
  virtual bool SupportsColumnar(int child_idx) const {
    (void)child_idx;
    return false;
  }

  // Processes one column batch from child `child_idx`. Must produce, for
  // the selected rows, exactly the deltas (values, query sets, weights,
  // order) that Process would for the same input, and meter identical
  // OpWork. The default is the row shim: convert, Process, convert back —
  // it exists so tests can drive any operator columnar, but the pump
  // never uses it (SupportsColumnar is false unless overridden).
  virtual void ProcessColumnar(int child_idx, ColumnBatch in,
                               ColumnBatch* out);

  // Offers the operator a worker pool for morsel-driven intra-operator
  // parallelism (DESIGN.md §10). Called once by SubplanExecutor after
  // construction; `pool` may be nullptr (serial execution). Operators
  // that cannot exploit it simply ignore the call; operators that do
  // (AggregateOp, HashJoinOp) must keep their results bit-exact with the
  // serial path.
  virtual void BindScheduler(sched::WorkerPool* pool,
                             const sched::SchedulerOptions& opts) {
    (void)pool;
    (void)opts;
  }

  // Flushes any output held back until the end of the current incremental
  // execution. Default: nothing held back.
  virtual DeltaBatch EndExecution() { return {}; }

  // Cumulative work performed by this operator since construction.
  const OpWork& work() const { return work_; }

  // Approximate bytes of cross-execution state this operator holds (join
  // build sides, aggregate groups), in the same deterministic accounting
  // units as ApproxRowBytes. Stateless operators hold none. The flow
  // layer's memory arbiter (DESIGN.md §9) charges these against the
  // budget after every execution.
  virtual int64_t StateBytes() const { return 0; }

  // Checkpoint hooks (DESIGN.md §8). The default covers stateless
  // operators, whose only cross-execution state is the work meter;
  // stateful operators (HashJoinOp, AggregateOp) override and must call
  // the work helpers too. Restore(Snapshot(op)) must make the operator's
  // future outputs bit-identical to the original's.
  virtual Status Snapshot(recovery::CheckpointWriter* w) const {
    SnapshotWork(w);
    return Status::OK();
  }
  virtual Status Restore(recovery::CheckpointReader* r) {
    RestoreWork(r);
    return r->status();
  }

 protected:
  void SnapshotWork(recovery::CheckpointWriter* w) const {
    w->F64(work_.in);
    w->F64(work_.out);
    w->F64(work_.state);
  }
  void RestoreWork(recovery::CheckpointReader* r) {
    work_.in = r->F64();
    work_.out = r->F64();
    work_.state = r->F64();
  }

  const PlanNode* node_;
  OpWork work_;
};

// Pass-through that re-tags scanned base tuples with the scan's query set.
class ScanOp : public PhysOp {
 public:
  explicit ScanOp(const PlanNode* node) : PhysOp(node) {}
  DeltaBatch Process(int child_idx, DeltaSpan in) override;
  bool SupportsColumnar(int child_idx) const override;
  void ProcessColumnar(int child_idx, ColumnBatch in,
                       ColumnBatch* out) override;
};

// Masks tuples pulled from a child subplan's buffer down to this subplan's
// query set; drops tuples that no longer matter (the σ_filter of Fig. 2).
class SubplanInputOp : public PhysOp {
 public:
  explicit SubplanInputOp(const PlanNode* node) : PhysOp(node) {}
  DeltaBatch Process(int child_idx, DeltaSpan in) override;
  bool SupportsColumnar(int child_idx) const override;
  void ProcessColumnar(int child_idx, ColumnBatch in,
                       ColumnBatch* out) override;
};

// Shared select: evaluates each distinct predicate once per tuple and
// clears the query bits whose predicate rejects the tuple (marking select
// σ*). Tuples with no surviving bits are dropped. The columnar path
// evaluates each predicate as one vectorized mask over the whole batch
// and clears query bits branch-free.
class FilterOp : public PhysOp {
 public:
  FilterOp(const PlanNode* node, const Schema& input_schema);
  DeltaBatch Process(int child_idx, DeltaSpan in) override;
  bool SupportsColumnar(int child_idx) const override;
  void ProcessColumnar(int child_idx, ColumnBatch in,
                       ColumnBatch* out) override;

 private:
  struct PredGroup {
    CompiledExpr pred;
    VectorExpr vpred;
    QuerySet queries;
  };
  std::vector<PredGroup> groups_;
  bool columnar_ok_ = true;  // every predicate vector-compiled
};

// Computes the merged projection list (union over sharing queries). The
// columnar path evaluates each projection as one vectorized kernel over
// the whole batch and passes query sets, weights and selection through
// untouched.
class ProjectOp : public PhysOp {
 public:
  ProjectOp(const PlanNode* node, const Schema& input_schema);
  DeltaBatch Process(int child_idx, DeltaSpan in) override;
  bool SupportsColumnar(int child_idx) const override;
  void ProcessColumnar(int child_idx, ColumnBatch in,
                       ColumnBatch* out) override;

 private:
  std::vector<CompiledExpr> exprs_;
  std::vector<VectorExpr> vexprs_;
  bool columnar_ok_ = true;  // every projection vector-compiled
};

// Builds the physical operator tree for a subplan's plan tree. Leaves
// (kScan / kSubplanInput) become ScanOp / SubplanInputOp fed by the driver.
std::unique_ptr<PhysOp> CreatePhysOp(const PlanNode* node);

}  // namespace ishare

#endif  // ISHARE_EXEC_PHYS_OP_H_
