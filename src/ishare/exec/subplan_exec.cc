#include "ishare/exec/subplan_exec.h"

#include <chrono>

#include "ishare/flow/memory_budget.h"
#include "ishare/obs/obs.h"

namespace ishare {

SubplanExecutor::SubplanExecutor(
    const Subplan& sp, StreamSource* source,
    const std::vector<std::unique_ptr<DeltaBuffer>>& buffers,
    DeltaBuffer* output, const ExecOptions& opts)
    : output_(output), opts_(opts), source_(source), buffers_(buffers) {
  CHECK(sp.root != nullptr);
  CHECK(output != nullptr);
  root_ = BuildTree(sp.root);
  // Handles resolved once here so RunExecution() pays only atomic adds.
  // The per-instance series is keyed by the output buffer's name
  // ("subplan_<i>"), giving the per-subplan work counters of the JSON
  // export; instances recur across runs of the same graph and accumulate.
  obs::MetricsRegistry& reg = obs::Registry();
  exec_counter_ = &reg.GetCounter("exec.subplan.executions");
  work_counter_ = &reg.GetCounter("exec.subplan.work");
  tuples_in_counter_ = &reg.GetCounter("exec.subplan.tuples_in");
  tuples_out_counter_ = &reg.GetCounter("exec.subplan.tuples_out");
  subplan_work_counter_ =
      &reg.GetCounter("exec.subplan.work#" + output->name());
  path_col_batches_counter_ = &reg.GetCounter("exec.path.columnar_batches");
  path_col_tuples_counter_ = &reg.GetCounter("exec.path.columnar_tuples");
  path_row_batches_counter_ = &reg.GetCounter("exec.path.row_batches");
  path_row_tuples_counter_ = &reg.GetCounter("exec.path.row_tuples");
  if (opts_.flow.budget != nullptr) {
    state_component_ = opts_.flow.budget->Register("state:" + output->name());
  }
}

SubplanExecutor::OpNode SubplanExecutor::BuildTree(const PlanNodePtr& node) {
  OpNode n;
  n.op = CreatePhysOp(node.get());
  n.op->BindScheduler(opts_.sched_pool, opts_.sched);
  if (node->kind == PlanKind::kScan) {
    n.input_buffer = source_->buffer(node->table_name);
    if (n.input_buffer == nullptr) {
      init_status_ = Status::NotFound("scan table '" + node->table_name +
                                      "' not registered in the stream source");
      return n;
    }
    n.consumer_id = n.input_buffer->RegisterConsumer();
    return n;
  }
  if (node->kind == PlanKind::kSubplanInput) {
    if (node->input_subplan < 0 ||
        node->input_subplan >= static_cast<int>(buffers_.size()) ||
        buffers_[node->input_subplan] == nullptr) {
      init_status_ = Status::Internal(
          "child subplan buffer " + std::to_string(node->input_subplan) +
          " missing");
      return n;
    }
    n.input_buffer = buffers_[node->input_subplan].get();
    n.consumer_id = n.input_buffer->RegisterConsumer();
    return n;
  }
  n.children.reserve(node->children.size());
  for (const PlanNodePtr& c : node->children) {
    n.children.push_back(BuildTree(c));
  }
  return n;
}

// Drains the leaf's buffer, retrying transient faults (an unreachable
// partition mid-failover) with deterministic virtual backoff. Permanent
// faults fail the run on the first attempt, preserving fail-soft isolation
// between co-scheduled queries.
Result<DeltaSpan> SubplanExecutor::ConsumeLeafWithRetry(OpNode& n) {
  int attempt = 0;
  double backoff = 0;
  for (;;) {
    Result<DeltaSpan> raw = n.input_buffer->ConsumeNew(n.consumer_id);
    ++attempt;
    if (raw.ok()) {
      if (attempt > 1) {
        obs::MetricsRegistry& reg = obs::Registry();
        reg.GetCounter("recovery.retry.attempts").Add(attempt - 1);
        reg.GetCounter("recovery.retry.success").Add(1);
        reg.GetCounter("recovery.retry.backoff_seconds").Add(backoff);
      }
      return raw;
    }
    if (!opts_.retry.ShouldRetry(raw.status(), attempt)) {
      if (raw.status().IsTransient()) {
        obs::MetricsRegistry& reg = obs::Registry();
        reg.GetCounter("recovery.retry.attempts").Add(attempt - 1);
        reg.GetCounter("recovery.retry.exhausted").Add(1);
        reg.GetCounter("recovery.retry.backoff_seconds").Add(backoff);
      }
      return raw;
    }
    backoff += opts_.retry.BackoffSeconds(attempt);
  }
}

Result<DeltaBatch> SubplanExecutor::Pump(OpNode& n, int64_t* tuples_in,
                                         ExecRecord* rec) {
  DeltaBatch collected;
  if (n.input_buffer != nullptr) {
    ISHARE_ASSIGN_OR_RETURN(DeltaSpan raw, ConsumeLeafWithRetry(n));
    if (raw.empty()) return DeltaBatch{};
    *tuples_in += static_cast<int64_t>(raw.size());
    rec->row_batches += 1;
    rec->row_tuples += static_cast<int64_t>(raw.size());
    return n.op->Process(0, raw);
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    ISHARE_ASSIGN_OR_RETURN(DeltaBatch b,
                            Pump(n.children[i], tuples_in, rec));
    if (b.empty()) continue;
    rec->row_batches += 1;
    rec->row_tuples += static_cast<int64_t>(b.size());
    DeltaBatch o = n.op->Process(static_cast<int>(i), b);
    collected.insert(collected.end(), std::make_move_iterator(o.begin()),
                     std::make_move_iterator(o.end()));
  }
  DeltaBatch flush = n.op->EndExecution();
  collected.insert(collected.end(), std::make_move_iterator(flush.begin()),
                   std::make_move_iterator(flush.end()));
  return collected;
}

// Columnar twin of Pump (DESIGN.md §12.6): identical traversal and
// identical operator semantics, but batches stay in column layout across
// every SupportsColumnar operator. Conversions happen only at the edges —
// leaf deltas lift to columns once, and results lower back to rows at the
// first operator that needs them (or at the subplan root). Any lift that
// fails (ill-typed source rows) degrades that batch to the row path; the
// two paths are interchangeable per batch because both compute the same
// deltas in the same order.
Result<SubplanExecutor::PumpBatch> SubplanExecutor::PumpColumnar(
    OpNode& n, int64_t* tuples_in, ExecRecord* rec) {
  PumpBatch result;
  if (n.input_buffer != nullptr) {
    ISHARE_ASSIGN_OR_RETURN(DeltaSpan raw, ConsumeLeafWithRetry(n));
    if (raw.empty()) return result;
    *tuples_in += static_cast<int64_t>(raw.size());
    // Leaf operators are pass-through on the row payload, so their input
    // schema is their own output schema.
    ColumnBatch cb;
    if (n.op->SupportsColumnar(0) &&
        ColumnBatch::FromDeltas(n.op->node()->output_schema, raw, &cb)) {
      rec->columnar_batches += 1;
      rec->columnar_tuples += cb.num_selected();
      result.columnar = true;
      n.op->ProcessColumnar(0, std::move(cb), &result.cols);
      return result;
    }
    rec->row_batches += 1;
    rec->row_tuples += static_cast<int64_t>(raw.size());
    result.rows = n.op->Process(0, raw);
    return result;
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    ISHARE_ASSIGN_OR_RETURN(PumpBatch b,
                            PumpColumnar(n.children[i], tuples_in, rec));
    if (b.IsEmpty()) continue;
    if (n.op->SupportsColumnar(static_cast<int>(i))) {
      ColumnBatch cb;
      bool lifted = false;
      if (b.columnar) {
        cb = std::move(b.cols);
        lifted = true;
      } else {
        lifted = ColumnBatch::FromDeltas(
            n.children[i].op->node()->output_schema, b.rows, &cb);
      }
      if (lifted) {
        rec->columnar_batches += 1;
        rec->columnar_tuples += cb.num_selected();
        ColumnBatch ob;
        n.op->ProcessColumnar(static_cast<int>(i), std::move(cb), &ob);
        if (!result.columnar && result.rows.empty()) {
          // First contribution (the only one for the single-input
          // operators that support columns): stay columnar.
          result.cols = std::move(ob);
          result.columnar = true;
        } else {
          result.LowerToRows();
          DeltaBatch o = ob.ToDeltas();
          result.rows.insert(result.rows.end(),
                             std::make_move_iterator(o.begin()),
                             std::make_move_iterator(o.end()));
        }
        continue;
      }
    }
    DeltaBatch in_rows = b.TakeRows();
    rec->row_batches += 1;
    rec->row_tuples += static_cast<int64_t>(in_rows.size());
    DeltaBatch o = n.op->Process(static_cast<int>(i), in_rows);
    result.LowerToRows();
    result.rows.insert(result.rows.end(), std::make_move_iterator(o.begin()),
                       std::make_move_iterator(o.end()));
  }
  DeltaBatch flush = n.op->EndExecution();
  if (!flush.empty()) {
    result.LowerToRows();
    result.rows.insert(result.rows.end(),
                       std::make_move_iterator(flush.begin()),
                       std::make_move_iterator(flush.end()));
  }
  return result;
}

double SubplanExecutor::TotalOpWork(const OpNode& n) const {
  double w = n.op->work().Total();
  for (const OpNode& c : n.children) w += TotalOpWork(c);
  return w;
}

void SubplanExecutor::CollectWork(const OpNode& n,
                                  std::vector<OpWork>* out) const {
  out->push_back(n.op->work());
  for (const OpNode& c : n.children) CollectWork(c, out);
}

std::vector<OpWork> SubplanExecutor::OpWorkBreakdown() const {
  std::vector<OpWork> out;
  CollectWork(root_, &out);
  return out;
}

void SubplanExecutor::CollectPending(const OpNode& n, int64_t* out) const {
  if (n.input_buffer != nullptr) {
    Result<int64_t> p = n.input_buffer->Pending(n.consumer_id);
    // Consumer ids were registered by BuildTree, so a failure here would
    // be a programming error; treat it as "no pending input" rather than
    // crash a monitoring path.
    if (p.ok() && *p > 0) *out += *p;
    return;
  }
  for (const OpNode& c : n.children) CollectPending(c, out);
}

int64_t SubplanExecutor::PendingInput() const {
  int64_t pending = 0;
  CollectPending(root_, &pending);
  return pending;
}

void SubplanExecutor::CollectConsumed(const OpNode& n, int64_t* out) const {
  if (n.input_buffer != nullptr) {
    Result<int64_t> off = n.input_buffer->ConsumerOffset(n.consumer_id);
    if (off.ok()) *out += *off;
    return;
  }
  for (const OpNode& c : n.children) CollectConsumed(c, out);
}

int64_t SubplanExecutor::ConsumedInput() const {
  int64_t consumed = 0;
  CollectConsumed(root_, &consumed);
  return consumed;
}

Status SubplanExecutor::DiscardNode(OpNode& n, int64_t* dropped) {
  if (n.input_buffer != nullptr) {
    ISHARE_ASSIGN_OR_RETURN(DeltaSpan raw, ConsumeLeafWithRetry(n));
    *dropped += static_cast<int64_t>(raw.size());
    return Status::OK();
  }
  for (OpNode& c : n.children) ISHARE_RETURN_NOT_OK(DiscardNode(c, dropped));
  return Status::OK();
}

Result<int64_t> SubplanExecutor::DiscardPendingInput() {
  ISHARE_RETURN_NOT_OK(init_status_);
  int64_t dropped = 0;
  ISHARE_RETURN_NOT_OK(DiscardNode(root_, &dropped));
  if (dropped > 0) {
    obs::Registry().GetCounter("flow.shed.dropped_tuples")
        .Add(static_cast<double>(dropped));
  }
  return dropped;
}

int64_t SubplanExecutor::CollectStateBytes(const OpNode& n) const {
  int64_t bytes = n.op->StateBytes();
  for (const OpNode& c : n.children) bytes += CollectStateBytes(c);
  return bytes;
}

int64_t SubplanExecutor::StateBytes() const {
  return CollectStateBytes(root_);
}

void SubplanExecutor::PublishStateBytes() {
  if (state_component_ >= 0) {
    opts_.flow.budget->Set(state_component_, StateBytes());
  }
}

Result<ExecRecord> SubplanExecutor::ExecuteOnce() {
  ISHARE_RETURN_NOT_OK(init_status_);
  auto start = std::chrono::steady_clock::now();
  int64_t tuples_in = 0;
  ExecRecord path_rec;
  DeltaBatch out;
  if (opts_.columnar) {
    ISHARE_ASSIGN_OR_RETURN(PumpBatch pb,
                            PumpColumnar(root_, &tuples_in, &path_rec));
    out = pb.TakeRows();  // output buffers speak rows (the shim boundary)
  } else {
    ISHARE_ASSIGN_OR_RETURN(out, Pump(root_, &tuples_in, &path_rec));
  }
  output_->AppendBatch(out);
  auto end = std::chrono::steady_clock::now();

  ++executions_;
  last_input_consumed_ = tuples_in;
  last_output_bytes_ = 0;
  for (const DeltaTuple& t : out) last_output_bytes_ += ApproxDeltaBytes(t);
  PublishStateBytes();
  double total = TotalOpWork(root_);
  ExecRecord rec;
  rec.work = (total - last_total_work_) + opts_.startup_cost;
  rec.seconds = std::chrono::duration<double>(end - start).count();
  rec.tuples_in = tuples_in;
  rec.tuples_out = static_cast<int64_t>(out.size());
  rec.columnar_batches = path_rec.columnar_batches;
  rec.columnar_tuples = path_rec.columnar_tuples;
  rec.row_batches = path_rec.row_batches;
  rec.row_tuples = path_rec.row_tuples;
  last_total_work_ = total;
  return rec;
}

void SubplanExecutor::PublishExecMetrics(const ExecRecord& rec) {
  exec_counter_->Add(1);
  work_counter_->Add(rec.work);
  tuples_in_counter_->Add(static_cast<double>(rec.tuples_in));
  tuples_out_counter_->Add(static_cast<double>(rec.tuples_out));
  subplan_work_counter_->Add(rec.work);
  if (rec.columnar_batches > 0) {
    path_col_batches_counter_->Add(static_cast<double>(rec.columnar_batches));
    path_col_tuples_counter_->Add(static_cast<double>(rec.columnar_tuples));
  }
  if (rec.row_batches > 0) {
    path_row_batches_counter_->Add(static_cast<double>(rec.row_batches));
    path_row_tuples_counter_->Add(static_cast<double>(rec.row_tuples));
  }
  obs::GlobalTracer().Record("exec.subplan.exec", rec.seconds);
}

Result<ExecRecord> SubplanExecutor::RunExecution() {
  ISHARE_ASSIGN_OR_RETURN(ExecRecord rec, ExecuteOnce());
  PublishExecMetrics(rec);
  return rec;
}

Status SubplanExecutor::SnapshotOps(const OpNode& n,
                                    recovery::CheckpointWriter* w) const {
  ISHARE_RETURN_NOT_OK(n.op->Snapshot(w));
  for (const OpNode& c : n.children) ISHARE_RETURN_NOT_OK(SnapshotOps(c, w));
  return Status::OK();
}

Status SubplanExecutor::RestoreOps(OpNode& n, recovery::CheckpointReader* r) {
  ISHARE_RETURN_NOT_OK(n.op->Restore(r));
  for (OpNode& c : n.children) ISHARE_RETURN_NOT_OK(RestoreOps(c, r));
  return Status::OK();
}

Status SubplanExecutor::Snapshot(recovery::CheckpointWriter* w) const {
  ISHARE_RETURN_NOT_OK(init_status_);
  w->I64(executions_);
  w->I64(last_input_consumed_);
  w->I64(last_output_bytes_);
  w->F64(last_total_work_);
  return SnapshotOps(root_, w);
}

Status SubplanExecutor::Restore(recovery::CheckpointReader* r) {
  ISHARE_RETURN_NOT_OK(init_status_);
  executions_ = r->I64();
  last_input_consumed_ = r->I64();
  last_output_bytes_ = r->I64();
  last_total_work_ = r->F64();
  ISHARE_RETURN_NOT_OK(RestoreOps(root_, r));
  // The arbiter is not checkpointed (usage is a function of state): tell
  // it about the restored operator state so it converges immediately.
  PublishStateBytes();
  return r->status();
}

}  // namespace ishare
