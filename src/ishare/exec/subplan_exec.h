// Single-subplan incremental execution (paper Sec. 2.2–2.3). One
// SubplanExecutor owns the physical operator tree of one subplan, drains
// newly arrived deltas from its leaf buffers per execution, and appends
// results to the subplan's output buffer. Work is metered in the paper's
// cost-model units (see exec/metrics.h for the OpWork unit contract);
// every execution also feeds the exec.subplan.* observability series.

#ifndef ISHARE_EXEC_SUBPLAN_EXEC_H_
#define ISHARE_EXEC_SUBPLAN_EXEC_H_

#include <memory>
#include <vector>

#include "ishare/common/status.h"
#include "ishare/exec/metrics.h"
#include "ishare/exec/phys_op.h"
#include "ishare/obs/obs.h"
#include "ishare/plan/subplan_graph.h"
#include "ishare/storage/delta_buffer.h"
#include "ishare/storage/stream_source.h"

namespace ishare {

// Result of one incremental execution of a subplan.
struct ExecRecord {
  double work = 0;     // cost-model units, incl. the per-execution startup
  double seconds = 0;  // wall-clock time of this execution
  int64_t tuples_in = 0;   // input deltas drained from the leaf buffers
  int64_t tuples_out = 0;
  // Path accounting (DESIGN.md §12): per operator-batch processed, which
  // interface carried it. Accumulated thread-locally during the pump and
  // published with the other exec.path.* counters in PublishExecMetrics,
  // keeping parallel runs' metric sums order-identical to serial ones.
  int64_t columnar_batches = 0;  // batches through ProcessColumnar
  int64_t columnar_tuples = 0;   // selected tuples in those batches
  int64_t row_batches = 0;       // batches through row Process
  int64_t row_tuples = 0;        // tuples in those batches
};

// Runs one subplan: builds the physical operator tree from the plan tree,
// registers consumers on the input buffers (base relations and child
// subplan outputs), and on each RunExecution() drains all pending input,
// pushes it through the operators and appends the result to the subplan's
// output buffer.
//
// Storage failures (poisoned buffers, missing tables) surface as Status
// from RunExecution instead of crashing the whole shared runtime.
class SubplanExecutor {
 public:
  // `subplan_buffers[i]` must outlive this executor and already exist for
  // every child subplan index referenced by `sp`.
  SubplanExecutor(const Subplan& sp, StreamSource* source,
                  const std::vector<std::unique_ptr<DeltaBuffer>>& buffers,
                  DeltaBuffer* output, const ExecOptions& opts);

  SubplanExecutor(const SubplanExecutor&) = delete;
  SubplanExecutor& operator=(const SubplanExecutor&) = delete;

  // Executes one incremental step over all newly arrived input and
  // publishes the exec.subplan.* metrics. Equivalent to ExecuteOnce()
  // followed by PublishExecMetrics().
  Result<ExecRecord> RunExecution();

  // The compute half of RunExecution(): drains input, runs the operator
  // tree, appends output, updates executor-local state — but publishes
  // NO shared observability series. The parallel scheduler calls this
  // from worker threads and then applies PublishExecMetrics serially in
  // topo order, so float-valued counter sums accumulate in the same
  // order as serial execution (the metrics half of the bit-exactness
  // argument, DESIGN.md §10).
  Result<ExecRecord> ExecuteOnce();

  // The metrics half: adds `rec` to the exec.subplan.* counters and the
  // exec.subplan.exec span. Must be called exactly once per successful
  // ExecuteOnce(), from one thread at a time.
  void PublishExecMetrics(const ExecRecord& rec);

  DeltaBuffer* output() const { return output_; }

  // Cumulative per-operator work, preorder over the subplan tree. Used to
  // derive per-operator work fractions for local final work constraints.
  std::vector<OpWork> OpWorkBreakdown() const;

  int64_t executions() const { return executions_; }

  // Input deltas waiting in the leaf buffers (base tables and child
  // subplan outputs) that the next execution would drain. The adaptive
  // executor watches this for burst backlogs.
  int64_t PendingInput() const;

  // Input deltas drained by the most recent execution (0 before the
  // first); the adaptive executor's backlog baseline.
  int64_t last_input_consumed() const { return last_input_consumed_; }

  // ---- Flow control (DESIGN.md §9) --------------------------------------

  // Total input deltas this executor has taken off its leaf buffers, by
  // processing or by discarding — the "arrived" side of the shed
  // accounting identity (arrived = admitted + dropped).
  int64_t ConsumedInput() const;

  // Load shedding: advances every leaf consumer past its pending input
  // WITHOUT processing it, returning the number of tuples discarded. The
  // discarded prefix becomes trimmable immediately. Only the flow layer
  // calls this, and only for subplans whose every query has slack.
  Result<int64_t> DiscardPendingInput();

  // Approximate bytes of operator state (join build sides, aggregate
  // groups) across the tree; see PhysOp::StateBytes.
  int64_t StateBytes() const;

  // Approximate bytes appended to the output buffer by the most recent
  // execution — the flow layer's headroom ask for the next one.
  int64_t last_output_bytes() const { return last_output_bytes_; }

  // Checkpoint hooks (DESIGN.md §8): execution counters plus every
  // operator's state, preorder over the tree. The consumer registrations
  // themselves are rebuilt by constructing the executor against the same
  // plan — BuildTree registers consumers in a deterministic order, so the
  // ids line up with the buffer offsets restored separately.
  Status Snapshot(recovery::CheckpointWriter* w) const;
  Status Restore(recovery::CheckpointReader* r);

 private:
  struct OpNode {
    std::unique_ptr<PhysOp> op;
    std::vector<OpNode> children;
    // Leaf wiring; null for interior nodes.
    DeltaBuffer* input_buffer = nullptr;
    int consumer_id = -1;
  };

  // What flows between operators in the columnar pump: a batch in exactly
  // one of the two layouts. The row form is the compatibility shim's
  // interchange format; the columnar form stays live across consecutive
  // SupportsColumnar operators and is lowered back to rows at the subplan
  // root (and anywhere an operator can't take columns).
  struct PumpBatch {
    DeltaBatch rows;
    ColumnBatch cols;
    bool columnar = false;

    bool IsEmpty() const {
      return columnar ? cols.num_selected() == 0 : rows.empty();
    }
    DeltaBatch TakeRows() {
      return columnar ? cols.ToDeltas() : std::move(rows);
    }
    // Demotes a columnar accumulation to row layout in place (appending
    // row output to columns is a layout mix the pump never keeps).
    void LowerToRows() {
      if (!columnar) return;
      rows = cols.ToDeltas();
      cols = ColumnBatch{};
      columnar = false;
    }
  };

  OpNode BuildTree(const PlanNodePtr& node);
  Result<DeltaBatch> Pump(OpNode& n, int64_t* tuples_in, ExecRecord* rec);
  Result<PumpBatch> PumpColumnar(OpNode& n, int64_t* tuples_in,
                                 ExecRecord* rec);
  Result<DeltaSpan> ConsumeLeafWithRetry(OpNode& n);
  void CollectWork(const OpNode& n, std::vector<OpWork>* out) const;
  void CollectPending(const OpNode& n, int64_t* out) const;
  void CollectConsumed(const OpNode& n, int64_t* out) const;
  Status DiscardNode(OpNode& n, int64_t* dropped);
  int64_t CollectStateBytes(const OpNode& n) const;
  void PublishStateBytes();
  double TotalOpWork(const OpNode& n) const;
  Status SnapshotOps(const OpNode& n, recovery::CheckpointWriter* w) const;
  Status RestoreOps(OpNode& n, recovery::CheckpointReader* r);

  OpNode root_;
  DeltaBuffer* output_;
  ExecOptions opts_;
  StreamSource* source_;
  const std::vector<std::unique_ptr<DeltaBuffer>>& buffers_;
  Status init_status_;
  int64_t executions_ = 0;
  int64_t last_input_consumed_ = 0;
  int64_t last_output_bytes_ = 0;
  double last_total_work_ = 0;
  int state_component_ = -1;  // id in opts_.flow.budget, -1 if unattached
  // Observability handles (resolved once at construction; see DESIGN.md §7).
  obs::Counter* exec_counter_ = nullptr;
  obs::Counter* work_counter_ = nullptr;
  obs::Counter* tuples_in_counter_ = nullptr;
  obs::Counter* tuples_out_counter_ = nullptr;
  obs::Counter* subplan_work_counter_ = nullptr;
  obs::Counter* path_col_batches_counter_ = nullptr;
  obs::Counter* path_col_tuples_counter_ = nullptr;
  obs::Counter* path_row_batches_counter_ = nullptr;
  obs::Counter* path_row_tuples_counter_ = nullptr;
};

}  // namespace ishare

#endif  // ISHARE_EXEC_SUBPLAN_EXEC_H_
