#include "ishare/exec/vectorized.h"

namespace ishare {

void ColumnarHashAgg::Choose(const int64_t* keys, int64_t n) {
  decided_ = true;
  if (strategy_ != AggStrategy::kAuto) {
    chosen_ = strategy_;
  } else {
    // Sample the head of the first batch: when most sampled keys are
    // distinct the table will outgrow cache, so partition first.
    int64_t sample = n < kSampleRows ? n : kSampleRows;
    FlatIndexI64 probe(sample);
    for (int64_t i = 0; i < sample; ++i) probe.FindOrInsert(keys[i]);
    chosen_ = (probe.size() * 2 > sample && sample >= 64)
                  ? AggStrategy::kPartitioned
                  : AggStrategy::kFlat;
  }
  if (chosen_ == AggStrategy::kPartitioned) {
    parts_.resize(size_t{1} << kPartitionBits);
  }
}

void ColumnarHashAgg::ConsumeFlat(const int64_t* keys, const double* vals,
                                  const int32_t* weights, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    int32_t id = index_.FindOrInsert(keys[i]);
    if (static_cast<size_t>(id) >= sums_.size()) sums_.resize(id + 1, 0.0);
    double v = vals[i];
    if (weights != nullptr) v *= static_cast<double>(weights[i]);
    sums_[static_cast<size_t>(id)] += v;
  }
}

void ColumnarHashAgg::Consume(const int64_t* keys, const double* vals,
                              const int32_t* weights, int64_t n) {
  if (!decided_) Choose(keys, n);
  if (chosen_ == AggStrategy::kFlat) {
    ConsumeFlat(keys, vals, weights, n);
    return;
  }
  // Phase one: scatter rows to partitions in input order. High hash bits
  // pick the partition; the per-partition tables use the low bits, so
  // partitioning never degrades their probe distribution.
  for (int64_t i = 0; i < n; ++i) {
    uint64_t h = XxMix64(static_cast<uint64_t>(keys[i]));
    Partition& p = parts_[h >> (64 - kPartitionBits)];
    p.keys.push_back(keys[i]);
    double v = vals[i];
    if (weights != nullptr) v *= static_cast<double>(weights[i]);
    p.vals.push_back(v);
  }
}

void ColumnarHashAgg::Finish() {
  if (finished_ || chosen_ != AggStrategy::kPartitioned) {
    finished_ = true;
    return;
  }
  finished_ = true;
  // Phase two: aggregate each partition with a table sized to it. A group
  // lives in exactly one partition and each partition preserved input
  // order, so every group's sum sees the same update sequence as kFlat.
  for (Partition& p : parts_) {
    const int64_t pn = static_cast<int64_t>(p.keys.size());
    for (int64_t i = 0; i < pn; ++i) {
      int32_t id = index_.FindOrInsert(p.keys[i]);
      if (static_cast<size_t>(id) >= sums_.size()) sums_.resize(id + 1, 0.0);
      sums_[static_cast<size_t>(id)] += p.vals[i];
    }
    p.keys.clear();
    p.keys.shrink_to_fit();
    p.vals.clear();
    p.vals.shrink_to_fit();
  }
}

void ColumnarHashJoin::Build(const int64_t* keys, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    int32_t row = static_cast<int32_t>(next_.size());
    int32_t id = index_.FindOrInsert(keys[i]);
    if (static_cast<size_t>(id) >= head_.size()) head_.resize(id + 1, -1);
    next_.push_back(head_[static_cast<size_t>(id)]);
    head_[static_cast<size_t>(id)] = row;
  }
}

int64_t ColumnarHashJoin::Probe(const int64_t* keys, int64_t n,
                                std::vector<int32_t>* build_out,
                                std::vector<int32_t>* probe_out) const {
  int64_t emitted = 0;
  for (int64_t i = 0; i < n; ++i) {
    int32_t id = index_.Find(keys[i]);
    if (id < 0) continue;
    for (int32_t row = head_[static_cast<size_t>(id)]; row >= 0;
         row = next_[static_cast<size_t>(row)]) {
      build_out->push_back(row);
      probe_out->push_back(static_cast<int32_t>(i));
      ++emitted;
    }
  }
  return emitted;
}

}  // namespace ishare
