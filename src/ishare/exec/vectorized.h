// Vectorized hash kernels for the columnar execution core (DESIGN.md
// §12.5): integer-key hash aggregation with two-phase adaptive strategy
// selection, and hash-join build/probe over flat open-addressing tables.
// These are the dense fast paths the bench_operators speedup gate
// measures against the row engine's tagged-Value hash maps. The stateful
// operators (AggregateOp, HashJoinOp) keep their row implementations —
// their cross-execution state is checkpoint-serialized and must stay
// layout-stable — and use these kernels' idioms only where bit-exactness
// is provable; the kernels themselves serve single-execution dense
// workloads (and the microbenches that gate the refactor).

#ifndef ISHARE_EXEC_VECTORIZED_H_
#define ISHARE_EXEC_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "ishare/common/flat_hash.h"

namespace ishare {

// Aggregation strategy (the `adaptive-alg` idiom the roadmap cites):
//  - kFlat: one open-addressing table, best when groups are few and hot.
//  - kPartitioned: radix-partition rows by key hash first, then build one
//    small table per partition — bounds each table's working set when
//    group cardinality is high, trading one extra sequential pass.
//  - kAuto: sample the first batch's key column and pick.
enum class AggStrategy { kAuto, kFlat, kPartitioned };

// Incremental SUM(value) GROUP BY int64-key with weighted updates.
// Per-group sums accumulate in input order under every strategy (a radix
// partition scans rows sequentially and a group lives in exactly one
// partition), so all three strategies produce bit-identical float sums —
// the same argument the morsel-parallel row aggregate makes (DESIGN.md
// §10), applied to partitioning.
class ColumnarHashAgg {
 public:
  explicit ColumnarHashAgg(AggStrategy strategy = AggStrategy::kAuto)
      : strategy_(strategy) {}

  // Consumes one batch: sums[key] += vals[i] * weights[i] for each row.
  // `weights` may be nullptr (all 1).
  void Consume(const int64_t* keys, const double* vals,
               const int32_t* weights, int64_t n);

  // Completes phase two (merging partition tables into the dense result
  // arrays). Idempotent; call before reading results.
  void Finish();

  // Result arrays, aligned by index. Keys appear in first-touch order for
  // kFlat; partition-major first-touch order for kPartitioned.
  const std::vector<int64_t>& keys() const { return index_.keys(); }
  const std::vector<double>& sums() const { return sums_; }

  // Strategy actually in effect (resolved from kAuto on first Consume).
  AggStrategy chosen() const { return chosen_; }

 private:
  void ConsumeFlat(const int64_t* keys, const double* vals,
                   const int32_t* weights, int64_t n);
  void Choose(const int64_t* keys, int64_t n);

  static constexpr int kPartitionBits = 4;  // 16 partitions
  static constexpr int64_t kSampleRows = 1024;
  struct Partition {
    std::vector<int64_t> keys;
    std::vector<double> vals;
  };

  AggStrategy strategy_;
  AggStrategy chosen_ = AggStrategy::kFlat;
  bool decided_ = false;
  bool finished_ = false;
  FlatIndexI64 index_;
  std::vector<double> sums_;
  std::vector<Partition> parts_;
};

// Hash-join build/probe over an int64 key column. Duplicates chain
// through a per-row next array; Probe emits (build_row, probe_row) index
// pairs, most-recent build row first per key (pair order is the caller's
// concern — the shared-join operator groups matches per weight anyway).
class ColumnarHashJoin {
 public:
  // Appends build rows; row ids continue across calls.
  void Build(const int64_t* keys, int64_t n);

  // Emits all matches for the probe batch into *build_out / *probe_out
  // (appending); returns the number of pairs emitted.
  int64_t Probe(const int64_t* keys, int64_t n,
                std::vector<int32_t>* build_out,
                std::vector<int32_t>* probe_out) const;

  int64_t build_rows() const { return static_cast<int64_t>(next_.size()); }

 private:
  FlatIndexI64 index_;
  std::vector<int32_t> head_;  // dense key id -> newest build row, -1 none
  std::vector<int32_t> next_;  // build row -> older row with same key, -1 end
};

}  // namespace ishare

#endif  // ISHARE_EXEC_VECTORIZED_H_
