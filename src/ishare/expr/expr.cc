#include "ishare/expr/expr.h"

#include <algorithm>

namespace ishare {

namespace {

const char* ArithName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kIntDiv:
      return "DIV";
  }
  return "?";
}

const char* CompareName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Logic(LogicOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLogic;
  e->logic_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Negate(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::In(ExprPtr child, std::vector<Value> list) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kInList;
  e->children_ = {std::move(child)};
  e->in_list_ = std::move(list);
  return e;
}

ExprPtr Expr::Like(ExprPtr child, std::string pattern) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLike;
  e->children_ = {std::move(child)};
  e->like_pattern_ = std::move(pattern);
  return e;
}

DataType Expr::OutputType(const Schema& input) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return input.field(input.IndexOfOrDie(column_name_)).type;
    case ExprKind::kLiteral:
      return literal_.type();
    case ExprKind::kArith: {
      DataType l = children_[0]->OutputType(input);
      DataType r = children_[1]->OutputType(input);
      CHECK(l != DataType::kString && r != DataType::kString)
          << "arithmetic on string in " << ToString();
      if (arith_op_ == ArithOp::kIntDiv) {
        CHECK(l == DataType::kInt64 && r == DataType::kInt64)
            << "integer division needs integer operands in " << ToString();
        return DataType::kInt64;
      }
      if (arith_op_ == ArithOp::kDiv) return DataType::kFloat64;
      if (l == DataType::kFloat64 || r == DataType::kFloat64) {
        return DataType::kFloat64;
      }
      return DataType::kInt64;
    }
    case ExprKind::kCompare:
    case ExprKind::kLogic:
    case ExprKind::kNot:
    case ExprKind::kInList:
    case ExprKind::kLike:
      return DataType::kInt64;  // boolean as 0/1
  }
  return DataType::kInt64;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumn) {
    if (std::find(out->begin(), out->end(), column_name_) == out->end()) {
      out->push_back(column_name_);
    }
    return;
  }
  for (const ExprPtr& c : children_) c->CollectColumns(out);
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_name_;
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kArith:
      return "(" + children_[0]->ToString() + " " + ArithName(arith_op_) +
             " " + children_[1]->ToString() + ")";
    case ExprKind::kCompare:
      return "(" + children_[0]->ToString() + " " + CompareName(compare_op_) +
             " " + children_[1]->ToString() + ")";
    case ExprKind::kLogic:
      return "(" + children_[0]->ToString() +
             (logic_op_ == LogicOp::kAnd ? " AND " : " OR ") +
             children_[1]->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + children_[0]->ToString();
    case ExprKind::kInList: {
      std::string out = children_[0]->ToString() + " IN (";
      for (size_t i = 0; i < in_list_.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list_[i].ToString();
      }
      return out + ")";
    }
    case ExprKind::kLike:
      return children_[0]->ToString() + " LIKE '" + like_pattern_ + "'";
  }
  return "?";
}

bool Expr::Equals(const ExprPtr& a, const ExprPtr& b) {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case ExprKind::kColumn:
      return a->column_name_ == b->column_name_;
    case ExprKind::kLiteral:
      return a->literal_ == b->literal_;
    case ExprKind::kArith:
      if (a->arith_op_ != b->arith_op_) return false;
      break;
    case ExprKind::kCompare:
      if (a->compare_op_ != b->compare_op_) return false;
      break;
    case ExprKind::kLogic:
      if (a->logic_op_ != b->logic_op_) return false;
      break;
    case ExprKind::kNot:
      break;
    case ExprKind::kInList:
      if (a->in_list_ != b->in_list_) return false;
      break;
    case ExprKind::kLike:
      if (a->like_pattern_ != b->like_pattern_) return false;
      break;
  }
  if (a->children_.size() != b->children_.size()) return false;
  for (size_t i = 0; i < a->children_.size(); ++i) {
    if (!Equals(a->children_[i], b->children_[i])) return false;
  }
  return true;
}

uint64_t Expr::Hash(const ExprPtr& e) {
  if (e == nullptr) return 0;
  uint64_t h = Mix64(static_cast<uint64_t>(e->kind_));
  switch (e->kind_) {
    case ExprKind::kColumn:
      h = HashCombine(h, HashString(e->column_name_));
      break;
    case ExprKind::kLiteral:
      h = HashCombine(h, e->literal_.Hash());
      break;
    case ExprKind::kArith:
      h = HashCombine(h, static_cast<uint64_t>(e->arith_op_));
      break;
    case ExprKind::kCompare:
      h = HashCombine(h, static_cast<uint64_t>(e->compare_op_));
      break;
    case ExprKind::kLogic:
      h = HashCombine(h, static_cast<uint64_t>(e->logic_op_));
      break;
    case ExprKind::kNot:
      break;
    case ExprKind::kInList:
      for (const Value& v : e->in_list_) h = HashCombine(h, v.Hash());
      break;
    case ExprKind::kLike:
      h = HashCombine(h, HashString(e->like_pattern_));
      break;
  }
  for (const ExprPtr& c : e->children_) h = HashCombine(h, Hash(c));
  return h;
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative matcher with backtracking over '%' positions.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// --- CompiledExpr ---

CompiledExpr CompiledExpr::Compile(const ExprPtr& expr, const Schema& input) {
  CompiledExpr c;
  c.root_ = CompileNode(expr, input);
  c.compiled_ = true;
  return c;
}

CompiledExpr::Node CompiledExpr::CompileNode(const ExprPtr& expr,
                                             const Schema& input) {
  CHECK(expr != nullptr);
  Node n;
  n.kind = expr->kind();
  switch (expr->kind()) {
    case ExprKind::kColumn:
      n.column_index = input.IndexOfOrDie(expr->column_name());
      break;
    case ExprKind::kLiteral:
      n.literal = expr->literal();
      break;
    case ExprKind::kArith:
      n.arith_op = expr->arith_op();
      break;
    case ExprKind::kCompare:
      n.compare_op = expr->compare_op();
      break;
    case ExprKind::kLogic:
      n.logic_op = expr->logic_op();
      break;
    case ExprKind::kNot:
      break;
    case ExprKind::kInList:
      n.in_list = expr->in_list();
      break;
    case ExprKind::kLike:
      n.like_pattern = expr->like_pattern();
      break;
  }
  n.children.reserve(expr->children().size());
  for (const ExprPtr& c : expr->children()) {
    n.children.push_back(CompileNode(c, input));
  }
  return n;
}

Value CompiledExpr::EvalNode(const Node& n, const Row& row) {
  switch (n.kind) {
    case ExprKind::kColumn:
      DCHECK(n.column_index >= 0 &&
             n.column_index < static_cast<int>(row.size()));
      return row[n.column_index];
    case ExprKind::kLiteral:
      return n.literal;
    case ExprKind::kArith: {
      Value l = EvalNode(n.children[0], row);
      Value r = EvalNode(n.children[1], row);
      if (n.arith_op == ArithOp::kDiv) {
        double d = r.AsDouble();
        return Value(d == 0 ? 0.0 : l.AsDouble() / d);
      }
      if (n.arith_op == ArithOp::kIntDiv) {
        int64_t d = r.AsInt();
        if (d == 0) return Value(int64_t{0});
        int64_t a = l.AsInt();
        int64_t q = a / d;
        if ((a % d != 0) && ((a < 0) != (d < 0))) --q;  // floor semantics
        return Value(q);
      }
      if (l.is_int() && r.is_int()) {
        int64_t a = l.AsInt(), b = r.AsInt();
        switch (n.arith_op) {
          case ArithOp::kAdd:
            return Value(a + b);
          case ArithOp::kSub:
            return Value(a - b);
          case ArithOp::kMul:
            return Value(a * b);
          default:
            break;
        }
      }
      double a = l.AsDouble(), b = r.AsDouble();
      switch (n.arith_op) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        default:
          break;
      }
      return Value(0.0);
    }
    case ExprKind::kCompare: {
      Value l = EvalNode(n.children[0], row);
      Value r = EvalNode(n.children[1], row);
      int c = l.Compare(r);
      bool res = false;
      switch (n.compare_op) {
        case CompareOp::kEq:
          res = (c == 0);
          break;
        case CompareOp::kNe:
          res = (c != 0);
          break;
        case CompareOp::kLt:
          res = (c < 0);
          break;
        case CompareOp::kLe:
          res = (c <= 0);
          break;
        case CompareOp::kGt:
          res = (c > 0);
          break;
        case CompareOp::kGe:
          res = (c >= 0);
          break;
      }
      return Value(int64_t{res});
    }
    case ExprKind::kLogic: {
      bool l = EvalNode(n.children[0], row).AsDouble() != 0;
      if (n.logic_op == LogicOp::kAnd) {
        if (!l) return Value(int64_t{0});
        bool r = EvalNode(n.children[1], row).AsDouble() != 0;
        return Value(int64_t{r});
      }
      if (l) return Value(int64_t{1});
      bool r = EvalNode(n.children[1], row).AsDouble() != 0;
      return Value(int64_t{r});
    }
    case ExprKind::kNot: {
      bool v = EvalNode(n.children[0], row).AsDouble() != 0;
      return Value(int64_t{!v});
    }
    case ExprKind::kInList: {
      Value v = EvalNode(n.children[0], row);
      for (const Value& cand : n.in_list) {
        if (v == cand) return Value(int64_t{1});
      }
      return Value(int64_t{0});
    }
    case ExprKind::kLike: {
      Value v = EvalNode(n.children[0], row);
      return Value(int64_t{LikeMatch(v.AsString(), n.like_pattern)});
    }
  }
  return Value(int64_t{0});
}

Value CompiledExpr::Eval(const Row& row) const {
  CHECK(compiled_);
  return EvalNode(root_, row);
}

bool CompiledExpr::EvalBool(const Row& row) const {
  CHECK(compiled_);
  Value v = EvalNode(root_, row);
  return v.AsDouble() != 0;
}

}  // namespace ishare
