#ifndef ISHARE_EXPR_EXPR_H_
#define ISHARE_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "ishare/types/schema.h"
#include "ishare/types/value.h"

namespace ishare {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kColumn,   // reference to an input column by name
  kLiteral,  // constant
  kArith,    // binary arithmetic
  kCompare,  // binary comparison, yields 0/1
  kLogic,    // AND / OR over boolean children
  kNot,      // boolean negation
  kInList,   // child value IN (literal list)
  kLike,     // SQL LIKE with '%' wildcards on a string child
};

enum class ArithOp { kAdd, kSub, kMul, kDiv, kIntDiv };
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp { kAnd, kOr };

// Immutable expression tree node. Column references are by *name* and are
// resolved against a concrete input schema only when an expression is
// compiled (CompiledExpr below). Name-based resolution is what makes MQO
// plan merging and subplan decomposition safe: rewrites may change column
// positions but never column names.
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  const std::string& column_name() const { return column_name_; }
  const Value& literal() const { return literal_; }
  ArithOp arith_op() const { return arith_op_; }
  CompareOp compare_op() const { return compare_op_; }
  LogicOp logic_op() const { return logic_op_; }
  const std::vector<Value>& in_list() const { return in_list_; }
  const std::string& like_pattern() const { return like_pattern_; }

  // Result type of this expression when evaluated against `input`.
  DataType OutputType(const Schema& input) const;

  // All column names referenced anywhere in this tree (deduplicated).
  void CollectColumns(std::vector<std::string>* out) const;

  std::string ToString() const;

  // Structural equality / hashing; used by the MQO optimizer to group
  // identical predicates and by plan signatures.
  static bool Equals(const ExprPtr& a, const ExprPtr& b);
  static uint64_t Hash(const ExprPtr& e);

  // --- Factory functions ---
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value v);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Logic(LogicOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Negate(ExprPtr e);
  static ExprPtr In(ExprPtr child, std::vector<Value> list);
  static ExprPtr Like(ExprPtr child, std::string pattern);

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::vector<ExprPtr> children_;
  std::string column_name_;
  Value literal_;
  ArithOp arith_op_ = ArithOp::kAdd;
  CompareOp compare_op_ = CompareOp::kEq;
  LogicOp logic_op_ = LogicOp::kAnd;
  std::vector<Value> in_list_;
  std::string like_pattern_;
};

// Convenience builders so query definitions read close to SQL.
inline ExprPtr Col(std::string name) { return Expr::Column(std::move(name)); }
inline ExprPtr Lit(int64_t v) { return Expr::Literal(Value(v)); }
inline ExprPtr Lit(int v) { return Expr::Literal(Value(int64_t{v})); }
inline ExprPtr Lit(double v) { return Expr::Literal(Value(v)); }
inline ExprPtr Lit(const char* v) { return Expr::Literal(Value(v)); }
inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kDiv, std::move(a), std::move(b));
}
// Integer (floor) division; both operands must be integers.
inline ExprPtr IntDiv(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kIntDiv, std::move(a), std::move(b));
}
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::Logic(LogicOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::Logic(LogicOp::kOr, std::move(a), std::move(b));
}
inline ExprPtr Not(ExprPtr e) { return Expr::Negate(std::move(e)); }
inline ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi) {
  ExprPtr lower = Ge(e, std::move(lo));
  ExprPtr upper = Le(std::move(e), std::move(hi));
  return And(std::move(lower), std::move(upper));
}

// SQL LIKE pattern match supporting '%' (any substring) and '_' (any char).
bool LikeMatch(const std::string& text, const std::string& pattern);

// An expression resolved against a concrete schema; evaluation does no name
// lookups. Compile CHECK-fails on unknown column names or type errors that
// are detectable statically.
class CompiledExpr {
 public:
  CompiledExpr() = default;
  static CompiledExpr Compile(const ExprPtr& expr, const Schema& input);

  Value Eval(const Row& row) const;
  // Evaluates and interprets the result as a boolean (non-zero numeric).
  bool EvalBool(const Row& row) const;

 private:
  struct Node {
    ExprKind kind;
    int column_index = -1;
    Value literal;
    ArithOp arith_op = ArithOp::kAdd;
    CompareOp compare_op = CompareOp::kEq;
    LogicOp logic_op = LogicOp::kAnd;
    std::vector<Value> in_list;
    std::string like_pattern;
    std::vector<Node> children;
  };

  static Node CompileNode(const ExprPtr& expr, const Schema& input);
  static Value EvalNode(const Node& n, const Row& row);

  Node root_;
  bool compiled_ = false;
};

}  // namespace ishare

#endif  // ISHARE_EXPR_EXPR_H_
