#include "ishare/expr/vector_expr.h"

namespace ishare {

namespace {

// Double view over a numeric column: points straight at float64 payload,
// or at a locally widened copy for int64 columns (the same static_cast
// the row path's AsDouble performs).
class F64View {
 public:
  F64View(const ColumnVector& c, int64_t n) {
    if (c.type() == DataType::kFloat64) {
      data_ = c.f64().data();
      return;
    }
    conv_.resize(static_cast<size_t>(n));
    const std::vector<int64_t>& v = c.i64();
    for (int64_t i = 0; i < n; ++i) {
      conv_[static_cast<size_t>(i)] = static_cast<double>(v[static_cast<size_t>(i)]);
    }
    data_ = conv_.data();
  }
  const double* data() const { return data_; }

 private:
  const double* data_ = nullptr;
  std::vector<double> conv_;
};

// mask[i] = 1 iff column slot i is truthy (non-zero numeric), the exact
// `AsDouble() != 0` test EvalBool applies. String columns are excluded
// at compile time.
void Truthiness(const ColumnVector& c, int64_t n, std::vector<uint8_t>* mask) {
  mask->resize(static_cast<size_t>(n));
  uint8_t* m = mask->data();
  if (c.type() == DataType::kInt64) {
    const int64_t* v = c.i64().data();
    for (int64_t i = 0; i < n; ++i) m[i] = (v[i] != 0);
  } else {
    CHECK(c.type() == DataType::kFloat64);
    const double* v = c.f64().data();
    for (int64_t i = 0; i < n; ++i) m[i] = (v[i] != 0.0);
  }
}

}  // namespace

VectorExpr VectorExpr::Compile(const ExprPtr& expr, const Schema& input) {
  VectorExpr ve;
  ve.supported_ = CompileNode(expr, input, &ve.root_);
  return ve;
}

bool VectorExpr::CompileNode(const ExprPtr& expr, const Schema& input,
                             Node* out) {
  if (expr == nullptr) return false;
  out->kind = expr->kind();
  out->children.clear();
  for (const ExprPtr& c : expr->children()) {
    out->children.emplace_back();
    if (!CompileNode(c, input, &out->children.back())) return false;
  }
  switch (expr->kind()) {
    case ExprKind::kColumn: {
      int idx = input.IndexOf(expr->column_name());
      if (idx < 0) return false;
      out->column_index = idx;
      out->out_type = input.field(idx).type;
      return true;
    }
    case ExprKind::kLiteral:
      out->literal = expr->literal();
      out->out_type = out->literal.type();
      return true;
    case ExprKind::kArith: {
      out->arith_op = expr->arith_op();
      DataType l = out->children[0].out_type;
      DataType r = out->children[1].out_type;
      // Arithmetic on strings would CHECK-fail row-at-a-time; stay there.
      if (l == DataType::kString || r == DataType::kString) return false;
      if (out->arith_op == ArithOp::kIntDiv) {
        if (l != DataType::kInt64 || r != DataType::kInt64) return false;
        out->out_type = DataType::kInt64;
      } else if (out->arith_op == ArithOp::kDiv) {
        out->out_type = DataType::kFloat64;
      } else {
        out->out_type = (l == DataType::kInt64 && r == DataType::kInt64)
                            ? DataType::kInt64
                            : DataType::kFloat64;
      }
      return true;
    }
    case ExprKind::kCompare: {
      out->compare_op = expr->compare_op();
      bool ls = out->children[0].out_type == DataType::kString;
      bool rs = out->children[1].out_type == DataType::kString;
      // String-vs-number comparison is a row-path programming error
      // (Value::Compare CHECKs); don't change when it surfaces.
      if (ls != rs) return false;
      out->out_type = DataType::kInt64;
      return true;
    }
    case ExprKind::kLogic:
      out->logic_op = expr->logic_op();
      if (out->children[0].out_type == DataType::kString ||
          out->children[1].out_type == DataType::kString) {
        return false;  // string truthiness CHECKs row-at-a-time
      }
      out->out_type = DataType::kInt64;
      return true;
    case ExprKind::kNot:
      if (out->children[0].out_type == DataType::kString) return false;
      out->out_type = DataType::kInt64;
      return true;
    case ExprKind::kInList:
      for (const Value& v : expr->in_list()) {
        if (v.is_int()) {
          out->in_ints.push_back(v.AsInt());
        } else if (v.is_double()) {
          out->in_doubles.push_back(v.AsDouble());
        } else {
          out->in_strings.push_back(v.AsString());
        }
      }
      out->out_type = DataType::kInt64;
      return true;
    case ExprKind::kLike:
      if (out->children[0].out_type != DataType::kString) return false;
      out->like_pattern = expr->like_pattern();
      out->out_type = DataType::kInt64;
      return true;
  }
  return false;
}

const ColumnVector* VectorExpr::EvalNode(const Node& n,
                                         const std::vector<ColumnVector>& cols,
                                         int64_t num_rows,
                                         ColumnVector* scratch) {
  const size_t un = static_cast<size_t>(num_rows);
  switch (n.kind) {
    case ExprKind::kColumn:
      return &cols[static_cast<size_t>(n.column_index)];
    case ExprKind::kLiteral: {
      // Scalar operands are splatted to constant columns so every binary
      // loop below is a dense pointer-pointer loop.
      *scratch = ColumnVector(n.out_type);
      switch (n.out_type) {
        case DataType::kInt64:
          scratch->i64().assign(un, n.literal.AsInt());
          break;
        case DataType::kFloat64:
          scratch->f64().assign(un, n.literal.AsDouble());
          break;
        case DataType::kString:
          scratch->str().assign(un, n.literal.AsString());
          break;
      }
      return scratch;
    }
    case ExprKind::kArith: {
      ColumnVector tl, tr;
      const ColumnVector* l = EvalNode(n.children[0], cols, num_rows, &tl);
      const ColumnVector* r = EvalNode(n.children[1], cols, num_rows, &tr);
      *scratch = ColumnVector(n.out_type);
      if (n.arith_op == ArithOp::kIntDiv) {
        std::vector<int64_t>& o = scratch->i64();
        o.resize(un);
        const int64_t* a = l->i64().data();
        const int64_t* b = r->i64().data();
        for (int64_t i = 0; i < num_rows; ++i) {
          int64_t bb = b[i];
          if (bb == 0) {
            o[static_cast<size_t>(i)] = 0;
            continue;
          }
          int64_t aa = a[i];
          int64_t q = aa / bb;
          if ((aa % bb != 0) && ((aa < 0) != (bb < 0))) --q;  // floor
          o[static_cast<size_t>(i)] = q;
        }
        return scratch;
      }
      if (n.out_type == DataType::kInt64) {
        std::vector<int64_t>& o = scratch->i64();
        o.resize(un);
        const int64_t* a = l->i64().data();
        const int64_t* b = r->i64().data();
        switch (n.arith_op) {
          case ArithOp::kAdd:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = a[i] + b[i];
            break;
          case ArithOp::kSub:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = a[i] - b[i];
            break;
          case ArithOp::kMul:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = a[i] * b[i];
            break;
          default:
            break;
        }
        return scratch;
      }
      F64View lv(*l, num_rows), rv(*r, num_rows);
      const double* a = lv.data();
      const double* b = rv.data();
      std::vector<double>& o = scratch->f64();
      o.resize(un);
      switch (n.arith_op) {
        case ArithOp::kAdd:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = a[i] + b[i];
          break;
        case ArithOp::kSub:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = a[i] - b[i];
          break;
        case ArithOp::kMul:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = a[i] * b[i];
          break;
        case ArithOp::kDiv:
          // Same guarded division as EvalNode: x/0 -> 0.0.
          for (int64_t i = 0; i < num_rows; ++i) {
            o[static_cast<size_t>(i)] = b[i] == 0 ? 0.0 : a[i] / b[i];
          }
          break;
        default:
          break;
      }
      return scratch;
    }
    case ExprKind::kCompare: {
      ColumnVector tl, tr;
      const ColumnVector* l = EvalNode(n.children[0], cols, num_rows, &tl);
      const ColumnVector* r = EvalNode(n.children[1], cols, num_rows, &tr);
      *scratch = ColumnVector(DataType::kInt64);
      std::vector<int64_t>& o = scratch->i64();
      o.resize(un);
      if (l->type() == DataType::kString) {
        const std::vector<std::string>& a = l->str();
        const std::vector<std::string>& b = r->str();
        for (int64_t i = 0; i < num_rows; ++i) {
          size_t k = static_cast<size_t>(i);
          int c = a[k] < b[k] ? -1 : (b[k] < a[k] ? 1 : 0);
          bool res = false;
          switch (n.compare_op) {
            case CompareOp::kEq: res = (c == 0); break;
            case CompareOp::kNe: res = (c != 0); break;
            case CompareOp::kLt: res = (c < 0); break;
            case CompareOp::kLe: res = (c <= 0); break;
            case CompareOp::kGt: res = (c > 0); break;
            case CompareOp::kGe: res = (c >= 0); break;
          }
          o[k] = res;
        }
        return scratch;
      }
      if (l->type() == DataType::kInt64 && r->type() == DataType::kInt64) {
        const int64_t* a = l->i64().data();
        const int64_t* b = r->i64().data();
        switch (n.compare_op) {
          case CompareOp::kEq:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] == b[i]);
            break;
          case CompareOp::kNe:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] != b[i]);
            break;
          case CompareOp::kLt:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] < b[i]);
            break;
          case CompareOp::kLe:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] <= b[i]);
            break;
          case CompareOp::kGt:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] > b[i]);
            break;
          case CompareOp::kGe:
            for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] >= b[i]);
            break;
        }
        return scratch;
      }
      // Mixed numeric: Value::Compare promotes both sides to double.
      F64View lv(*l, num_rows), rv(*r, num_rows);
      const double* a = lv.data();
      const double* b = rv.data();
      switch (n.compare_op) {
        case CompareOp::kEq:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] == b[i]);
          break;
        case CompareOp::kNe:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] != b[i]);
          break;
        case CompareOp::kLt:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] < b[i]);
          break;
        case CompareOp::kLe:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] <= b[i]);
          break;
        case CompareOp::kGt:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] > b[i]);
          break;
        case CompareOp::kGe:
          for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] >= b[i]);
          break;
      }
      return scratch;
    }
    case ExprKind::kLogic: {
      // Both sides are pure and total, so eager evaluation produces the
      // same truth table as the row path's short-circuit.
      ColumnVector tl, tr;
      const ColumnVector* l = EvalNode(n.children[0], cols, num_rows, &tl);
      const ColumnVector* r = EvalNode(n.children[1], cols, num_rows, &tr);
      std::vector<uint8_t> ml, mr;
      Truthiness(*l, num_rows, &ml);
      Truthiness(*r, num_rows, &mr);
      *scratch = ColumnVector(DataType::kInt64);
      std::vector<int64_t>& o = scratch->i64();
      o.resize(un);
      const uint8_t* a = ml.data();
      const uint8_t* b = mr.data();
      if (n.logic_op == LogicOp::kAnd) {
        for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] & b[i]);
      } else {
        for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (a[i] | b[i]);
      }
      return scratch;
    }
    case ExprKind::kNot: {
      ColumnVector tc;
      const ColumnVector* c = EvalNode(n.children[0], cols, num_rows, &tc);
      std::vector<uint8_t> m;
      Truthiness(*c, num_rows, &m);
      *scratch = ColumnVector(DataType::kInt64);
      std::vector<int64_t>& o = scratch->i64();
      o.resize(un);
      const uint8_t* a = m.data();
      for (int64_t i = 0; i < num_rows; ++i) o[static_cast<size_t>(i)] = (1 - a[i]);
      return scratch;
    }
    case ExprKind::kInList: {
      ColumnVector tc;
      const ColumnVector* c = EvalNode(n.children[0], cols, num_rows, &tc);
      *scratch = ColumnVector(DataType::kInt64);
      std::vector<int64_t>& o = scratch->i64();
      o.resize(un);
      switch (c->type()) {
        case DataType::kInt64: {
          const int64_t* v = c->i64().data();
          for (int64_t i = 0; i < num_rows; ++i) {
            bool hit = false;
            for (int64_t cand : n.in_ints) hit |= (v[i] == cand);
            for (double cand : n.in_doubles) {
              hit |= (static_cast<double>(v[i]) == cand);
            }
            o[static_cast<size_t>(i)] = hit;
          }
          break;
        }
        case DataType::kFloat64: {
          const double* v = c->f64().data();
          for (int64_t i = 0; i < num_rows; ++i) {
            bool hit = false;
            for (int64_t cand : n.in_ints) {
              hit |= (v[i] == static_cast<double>(cand));
            }
            for (double cand : n.in_doubles) hit |= (v[i] == cand);
            o[static_cast<size_t>(i)] = hit;
          }
          break;
        }
        case DataType::kString: {
          const std::vector<std::string>& v = c->str();
          for (int64_t i = 0; i < num_rows; ++i) {
            bool hit = false;
            for (const std::string& cand : n.in_strings) {
              hit |= (v[static_cast<size_t>(i)] == cand);
            }
            o[static_cast<size_t>(i)] = hit;
          }
          break;
        }
      }
      return scratch;
    }
    case ExprKind::kLike: {
      ColumnVector tc;
      const ColumnVector* c = EvalNode(n.children[0], cols, num_rows, &tc);
      const std::vector<std::string>& v = c->str();
      *scratch = ColumnVector(DataType::kInt64);
      std::vector<int64_t>& o = scratch->i64();
      o.resize(un);
      for (int64_t i = 0; i < num_rows; ++i) {
        o[static_cast<size_t>(i)] =
            LikeMatch(v[static_cast<size_t>(i)], n.like_pattern);
      }
      return scratch;
    }
  }
  return scratch;
}

void VectorExpr::Eval(const std::vector<ColumnVector>& cols, int64_t num_rows,
                      ColumnVector* out) const {
  CHECK(supported_);
  ColumnVector scratch;
  const ColumnVector* res = EvalNode(root_, cols, num_rows, &scratch);
  if (res == &scratch) {
    *out = std::move(scratch);
  } else {
    *out = *res;  // plain column reference: copy through
  }
}

void VectorExpr::EvalBoolMask(const std::vector<ColumnVector>& cols,
                              int64_t num_rows,
                              std::vector<uint8_t>* mask) const {
  CHECK(supported_);
  CHECK(root_.out_type != DataType::kString);
  ColumnVector scratch;
  const ColumnVector* res = EvalNode(root_, cols, num_rows, &scratch);
  Truthiness(*res, num_rows, mask);
}

}  // namespace ishare
