// Vectorized expression evaluation — the kernel side of the columnar
// execution core (DESIGN.md §12.3). A VectorExpr is a CompiledExpr twin
// that evaluates one expression over a whole column batch with typed,
// branch-free inner loops instead of per-row tagged-Value dispatch.
// Semantics mirror CompiledExpr::EvalNode bit-for-bit: same int-vs-double
// promotion, same guarded division, same floor integer division, same
// Value comparison and IN-list equality rules. Expressions whose typing
// the static analysis cannot prove hazard-free (e.g. string/number
// comparison, LIKE on a numeric child) compile with supported()==false
// and the caller stays on the row path, preserving row-path behavior —
// including its failure modes — exactly.

#ifndef ISHARE_EXPR_VECTOR_EXPR_H_
#define ISHARE_EXPR_VECTOR_EXPR_H_

#include <cstdint>
#include <vector>

#include "ishare/expr/expr.h"
#include "ishare/types/column.h"

namespace ishare {

// An expression compiled against a concrete input schema for columnar
// evaluation. Inputs are the typed columns of a ColumnBatch (expression
// evaluation is selection-blind: it computes all num_rows slots, which is
// safe because every operation is total, and lets the loops stay dense).
class VectorExpr {
 public:
  VectorExpr() = default;

  static VectorExpr Compile(const ExprPtr& expr, const Schema& input);

  // False when the expression cannot be vectorized soundly; callers must
  // then use CompiledExpr row-at-a-time.
  bool supported() const { return supported_; }

  // Static result type (matches Expr::OutputType on supported exprs).
  DataType output_type() const { return root_.out_type; }

  // Evaluates over rows [0, num_rows) of `cols`, writing the result
  // column into *out. Requires supported().
  void Eval(const std::vector<ColumnVector>& cols, int64_t num_rows,
            ColumnVector* out) const;

  // Evaluates as a boolean (non-zero numeric, as EvalBool): mask[i] = 1
  // iff row i passes. Requires supported() and a numeric output type.
  void EvalBoolMask(const std::vector<ColumnVector>& cols, int64_t num_rows,
                    std::vector<uint8_t>* mask) const;

 private:
  struct Node {
    ExprKind kind = ExprKind::kLiteral;
    DataType out_type = DataType::kInt64;
    int column_index = -1;
    Value literal;
    ArithOp arith_op = ArithOp::kAdd;
    CompareOp compare_op = CompareOp::kEq;
    LogicOp logic_op = LogicOp::kAnd;
    // IN-list candidates pre-split by type (Value equality semantics:
    // int candidates compare exactly against int children, numeric
    // candidates compare as double across types, strings only match
    // strings).
    std::vector<int64_t> in_ints;
    std::vector<double> in_doubles;
    std::vector<std::string> in_strings;
    std::string like_pattern;
    std::vector<Node> children;
  };

  static bool CompileNode(const ExprPtr& expr, const Schema& input, Node* out);

  // Evaluates `n` into a column of length num_rows. Returns a pointer to
  // an input column when the node is a plain reference, otherwise fills
  // *scratch and returns it.
  static const ColumnVector* EvalNode(const Node& n,
                                      const std::vector<ColumnVector>& cols,
                                      int64_t num_rows, ColumnVector* scratch);

  Node root_;
  bool supported_ = false;
};

}  // namespace ishare

#endif  // ISHARE_EXPR_VECTOR_EXPR_H_
