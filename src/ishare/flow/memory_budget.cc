#include "ishare/flow/memory_budget.h"

#include <algorithm>

#include "ishare/common/check.h"
#include "ishare/obs/obs.h"

namespace ishare::flow {

int MemoryBudget::Register(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  comps_.push_back(Component{std::move(name), 0, 0});
  return static_cast<int>(comps_.size()) - 1;
}

void MemoryBudget::Set(int id, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(id >= 0 && id < static_cast<int>(comps_.size()))
      << "bad component id " << id;
  CHECK(bytes >= 0) << "negative bytes for " << comps_[id].name;
  Component& c = comps_[static_cast<size_t>(id)];
  used_ += bytes - c.bytes;
  c.bytes = bytes;
  c.peak = std::max(c.peak, bytes);
  peak_ = std::max(peak_, used_);
  PublishLocked();
}

void MemoryBudget::Add(int id, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(id >= 0 && id < static_cast<int>(comps_.size()))
      << "bad component id " << id;
  Component& c = comps_[static_cast<size_t>(id)];
  const int64_t bytes = c.bytes + delta;
  CHECK(bytes >= 0) << "negative bytes for " << c.name;
  used_ += bytes - c.bytes;
  c.bytes = bytes;
  c.peak = std::max(c.peak, bytes);
  peak_ = std::max(peak_, used_);
  PublishLocked();
}

int64_t MemoryBudget::used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

int64_t MemoryBudget::peak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

int MemoryBudget::num_components() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(comps_.size());
}

int64_t MemoryBudget::component_bytes(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(id >= 0 && id < static_cast<int>(comps_.size()))
      << "bad component id " << id;
  return comps_[static_cast<size_t>(id)].bytes;
}

int64_t MemoryBudget::component_peak(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(id >= 0 && id < static_cast<int>(comps_.size()))
      << "bad component id " << id;
  return comps_[static_cast<size_t>(id)].peak;
}

std::string MemoryBudget::component_name(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(id >= 0 && id < static_cast<int>(comps_.size()))
      << "bad component id " << id;
  return comps_[static_cast<size_t>(id)].name;
}

Status MemoryBudget::GrantHeadroom(int64_t bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!limited() || used_ + bytes <= budget_bytes_) return Status::OK();
  return Status::ResourceExhausted(
      "memory budget exhausted: used " + std::to_string(used_) + " + ask " +
      std::to_string(bytes) + " > budget " + std::to_string(budget_bytes_));
}

void MemoryBudget::ResetPeaks() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_ = used_;
  for (Component& c : comps_) c.peak = c.bytes;
  PublishLocked();
}

void MemoryBudget::PublishLocked() {
  obs::Registry().GetGauge("flow.budget.budget_bytes").Set(
      static_cast<double>(budget_bytes_));
  obs::Registry().GetGauge("flow.budget.used_bytes").Set(
      static_cast<double>(used_));
  obs::Registry().GetGauge("flow.budget.peak_bytes").Set(
      static_cast<double>(peak_));
}

}  // namespace ishare::flow
