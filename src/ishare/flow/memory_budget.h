// ishare::flow — overload control for shared query execution
// (DESIGN.md §9). The engine's buffers and operator state are in-memory
// and, without intervention, grow with the burstiness of the input. This
// module provides the accounting half of the defense: a MemoryBudget
// arbiter that tracks bytes across every registered component (delta
// buffers, join build sides, aggregate state) and answers headroom
// queries, plus the FlowStats ledger the shedding policy fills in.
//
// The *policy* half — which subplan to defer or shed when the budget is
// exceeded — lives with the AdaptiveExecutor, ranked by time slackness
// (see shedding.h): queries whose predicted final work sits far below
// their final-work constraint can absorb deferral first, so zero-slack
// queries keep their deadlines.

#ifndef ISHARE_FLOW_MEMORY_BUDGET_H_
#define ISHARE_FLOW_MEMORY_BUDGET_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ishare/common/status.h"

namespace ishare::flow {

// Tracks approximate bytes held by named components and arbitrates a
// fixed budget between them. Thread-safe: publishing and headroom
// queries take an internal mutex, so components running on different
// worker threads of the parallel scheduler (DESIGN.md §10) may publish
// concurrently. used() stays deterministic under parallelism because
// components publish *absolute* byte counts; peak() may legitimately
// vary with interleaving and is reporting-only (never gated on, never
// fingerprinted). A budget of <= 0 means "track only": accounting and
// peaks are maintained but nothing is ever over budget, which is how
// baseline runs measure their working set.
//
// Deliberately NOT checkpointed: usage is a pure function of current
// engine state, so after a restore every component re-publishes its
// bytes and the arbiter converges to the same picture. Shedding
// decisions therefore must key off used(), never peak().
class MemoryBudget {
 public:
  explicit MemoryBudget(int64_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  // Registers a component (e.g. "buf:s3", "state:s3") and returns its
  // id. Components publish absolute usage via Set(); absolute rather
  // than deltas so a restore or recount self-heals any drift.
  int Register(std::string name);

  void Set(int id, int64_t bytes);
  void Add(int id, int64_t delta);

  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t used() const;
  int64_t peak() const;
  int num_components() const;
  int64_t component_bytes(int id) const;
  int64_t component_peak(int id) const;
  std::string component_name(int id) const;

  bool limited() const { return budget_bytes_ > 0; }
  bool OverBudget() const { return limited() && used() > budget_bytes_; }

  // Fraction of the budget in use; 0 when unlimited. May exceed 1.
  double Pressure() const {
    return limited() ? static_cast<double>(used()) /
                           static_cast<double>(budget_bytes_)
                     : 0.0;
  }

  // Headroom grant: OK when `bytes` more would still fit (or the budget
  // is unlimited), kResourceExhausted otherwise. Advisory — the caller
  // publishes actual usage via Set() after doing the work; a denial is
  // the arbiter revoking headroom, which the shedding policy turns into
  // a deferral instead of a blind retry.
  Status GrantHeadroom(int64_t bytes) const;

  // Resets peak tracking (global and per-component) to current usage.
  // Used between measurement phases of the overload harness.
  void ResetPeaks();

 private:
  struct Component {
    std::string name;
    int64_t bytes = 0;
    int64_t peak = 0;
  };

  void PublishLocked();

  const int64_t budget_bytes_;
  mutable std::mutex mu_;  // guards everything below
  int64_t used_ = 0;
  int64_t peak_ = 0;
  std::vector<Component> comps_;
};

// Ledger of flow-control activity over one run. Lives in the
// AdaptiveExecutor's run result; serialized with the window state so a
// crash-recovered run reports the same totals as an uninterrupted one.
// The accounting invariant the overload bench gates on:
//   arrived == admitted + dropped   (per leaf-consumed tuple)
struct FlowStats {
  int64_t admitted_tuples = 0;   // leaf tuples processed by executions
  int64_t dropped_tuples = 0;    // leaf tuples discarded by shedding
  int64_t shed_deferred = 0;     // scheduled executions deferred by shedding
  int64_t backpressure_events = 0;  // headroom denials + buffer watermarks
  int64_t trims = 0;             // TrimConsumed calls that removed tuples
  int64_t trimmed_tuples = 0;
  // Per-query attribution of shedding (indexed by QueryId).
  std::vector<int64_t> query_deferred;
  std::vector<int64_t> query_dropped;

  int64_t shed_total(int q) const {
    int64_t d = q < static_cast<int>(query_deferred.size())
                    ? query_deferred[static_cast<size_t>(q)] : 0;
    int64_t p = q < static_cast<int>(query_dropped.size())
                    ? query_dropped[static_cast<size_t>(q)] : 0;
    return d + p;
  }
};

}  // namespace ishare::flow

#endif  // ISHARE_FLOW_MEMORY_BUDGET_H_
