#include "ishare/flow/shedding.h"

#include <algorithm>
#include <cmath>

#include "ishare/common/check.h"

namespace ishare::flow {

std::vector<int> ShedOrder(const std::vector<double>& subplan_slack,
                           const std::vector<bool>& sheddable) {
  CHECK(subplan_slack.size() == sheddable.size());
  std::vector<int> order;
  for (size_t s = 0; s < sheddable.size(); ++s) {
    if (sheddable[s]) order.push_back(static_cast<int>(s));
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return subplan_slack[static_cast<size_t>(a)] >
           subplan_slack[static_cast<size_t>(b)];
  });
  return order;
}

int ShedQuota(double pressure, double start, int n_sheddable) {
  if (n_sheddable <= 0) return 0;
  if (start <= 0.0 || start >= 1.0) {
    return pressure >= 1.0 ? n_sheddable : 0;
  }
  if (pressure < start) return 0;
  if (pressure >= 1.0) return n_sheddable;
  double excess = (pressure - start) / (1.0 - start);
  int quota = static_cast<int>(std::ceil(excess * n_sheddable));
  return std::min(std::max(quota, 0), n_sheddable);
}

}  // namespace ishare::flow
