// Slackness-aware shedding policy helpers (DESIGN.md §9). Pure
// functions, so the ordering and quota logic are unit-testable apart
// from the executor that applies them.
//
// Ranking principle (from the paper's time-slackness model): a query's
// slack is the fractional headroom of its predicted final work under its
// absolute final-work constraint. A subplan inherits the *minimum* slack
// of the queries it serves — shedding it delays all of them, so it is
// only as expendable as its most constrained query. When memory pressure
// forces shedding, the policy takes subplans in descending slack order:
// the work it defers or drops is the work with the most room to be late.

#ifndef ISHARE_FLOW_SHEDDING_H_
#define ISHARE_FLOW_SHEDDING_H_

#include <vector>

namespace ishare::flow {

// Returns the sheddable subplan ids sorted by descending slack (ties
// broken by ascending id, so the order is deterministic). Subplans with
// sheddable[s] == false — protective subplans, query roots, subplans
// serving an at-risk query — never appear.
std::vector<int> ShedOrder(const std::vector<double>& subplan_slack,
                           const std::vector<bool>& sheddable);

// Pressure-proportional shed quota: how many subplans from the front of
// the ranked order to shed this step. Ramps linearly from 0 at
// `pressure == start` to all `n_sheddable` at `pressure >= 1`, so a
// slacker subplan is shed whenever any less-slack one is (the prefix
// property the overload bench gates on). `start` outside (0, 1) degrades
// to all-or-nothing at pressure >= 1.
int ShedQuota(double pressure, double start, int n_sheddable);

}  // namespace ishare::flow

#endif  // ISHARE_FLOW_SHEDDING_H_
