#include "ishare/harness/chaos_harness.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ishare/harness/result_compare.h"
#include "ishare/obs/obs.h"
#include "ishare/recovery/checkpoint_manager.h"
#include "ishare/storage/perturbed_source.h"

namespace ishare {

namespace {

constexpr double kEps = 1e-9;

// A breaker trip is attributable when a fault of a compatible layer was
// injected at or before the trip step. The step-0 source record covers
// source trips: the perturbation shapes the whole stream.
bool TripAttributable(const chaos::BreakerTransition& t,
                      const chaos::ChaosInjector& injector) {
  using chaos::ChaosLayer;
  if (t.breaker == "checkpoint") {
    return injector.AnyInjected(ChaosLayer::kStoreTransient, t.step) ||
           injector.AnyInjected(ChaosLayer::kStoreBitRot, t.step);
  }
  if (t.breaker == "source") {
    return injector.AnyInjected(ChaosLayer::kSourcePerturb, t.step);
  }
  if (t.breaker == "memory") {
    return injector.AnyInjected(ChaosLayer::kMemoryPressure, t.step);
  }
  return false;
}

}  // namespace

Result<ChaosReport> RunChaos(CostEstimator* estimator,
                             const PaceConfig& paces,
                             const std::vector<double>& abs_constraints,
                             const StreamSource& dataset,
                             const chaos::FaultSchedule& schedule,
                             const ChaosOptions& options) {
  obs::ScopedSpan span("harness.chaos.run");
  ISHARE_RETURN_NOT_OK(schedule.Validate());
  int num_queries = estimator->graph().num_queries();
  ChaosReport rep;

  // ---- Pass A: fault-free baseline --------------------------------------
  // Clean clone, track-only budget: reference results plus the organic
  // working-set peak the bounded budget is derived from.
  std::vector<std::unordered_map<Row, int64_t, RowHasher>> baseline(
      static_cast<size_t>(num_queries));
  {
    StreamSource clean;
    ISHARE_RETURN_NOT_OK(dataset.CloneTablesInto(&clean));
    flow::MemoryBudget track(0);
    ExecOptions opts_a = options.exec;
    opts_a.flow.budget = &track;
    opts_a.flow.buffer_soft_limit_bytes = 0;
    AdaptiveExecutor exec(estimator, &clean, abs_constraints, options.policy,
                          opts_a);
    ISHARE_RETURN_NOT_OK(exec.Run(paces).status());
    rep.peak_baseline = track.peak();
    for (QueryId q = 0; q < num_queries; ++q) {
      baseline[static_cast<size_t>(q)] =
          MaterializeResult(*exec.query_output(q), q);
    }
  }

  // The margin keeps organic pressure well below the memory breaker's
  // trip threshold; only injected spikes can cross it (attribution gate).
  rep.budget_bytes = std::max<int64_t>(
      1, static_cast<int64_t>(options.budget_margin *
                              static_cast<double>(rep.peak_baseline)));

  // ---- Pass B: supervised chaos run -------------------------------------
  auto src = std::make_unique<PerturbedStreamSource>(schedule.source_plan);
  ISHARE_RETURN_NOT_OK(dataset.CloneTablesInto(src.get()));
  std::vector<std::string> tables = src->TableNames();

  flow::MemoryBudget bounded(rep.budget_bytes);
  ExecOptions opts_b = options.exec;
  opts_b.flow.budget = &bounded;
  AdaptiveExecutor exec(estimator, src.get(), abs_constraints, options.policy,
                        opts_b);

  recovery::MemoryCheckpointStore store;
  recovery::CheckpointManager mgr(&store, options.checkpoint);
  chaos::Supervisor supervisor(options.supervisor, &mgr, &bounded);

  chaos::ChaosInjector::Targets targets;
  targets.store = &store;
  targets.budget = &bounded;
  targets.pool = exec.worker_pool();
  targets.source = src.get();
  chaos::ChaosInjector injector(schedule, targets);

  bool perturbed = !schedule.source_plan.empty();
  exec.set_after_step_hook([&](int64_t step) -> Status {
    if (perturbed) {
      // Data progress = the furthest-along table: a stall observation
      // means the whole stream is stuck, not one lagging table.
      double window = src->current_fraction();
      double data = 0;
      for (const std::string& t : tables) {
        data = std::max(data, src->WarpFraction(t, window));
      }
      supervisor.ObserveSourceProgress(step, window, data);
    }
    supervisor.ObserveMemoryPressure(step, bounded.Pressure());
    supervisor.ObserveFlow(step, exec.flow_stats());
    ISHARE_RETURN_NOT_OK(supervisor.OnStepComplete(step, exec));
    return injector.OnStepBoundary(step);
  });

  ISHARE_RETURN_NOT_OK(exec.BeginWindow(paces));
  rep.initial_slack = exec.query_slack();
  std::vector<bool> protective(
      static_cast<size_t>(estimator->graph().num_subplans()));
  for (int s = 0; s < estimator->graph().num_subplans(); ++s) {
    protective[static_cast<size_t>(s)] = exec.subplan_protective(s);
  }
  ISHARE_RETURN_NOT_OK(injector.OnStepBoundary(0));
  Result<AdaptiveRunResult> run = exec.ResumeWindow();

  rep.final_level = supervisor.level();
  rep.supervisor = supervisor.stats();
  rep.recovery = mgr.stats();
  rep.ladder = supervisor.ladder_log();
  rep.breakers = supervisor.breaker_transitions();
  rep.injections = injector.log();

  // ---- Gate 1: completion ----------------------------------------------
  rep.completed = run.ok();
  if (!rep.completed) {
    rep.mismatch = "chaos run failed: " + run.status().message();
    return rep;  // the remaining gates need a finished window
  }
  rep.flow = run->flow;

  // ---- Gate 2: results match the fault-free baseline --------------------
  rep.results_match_baseline = true;
  for (QueryId q = 0; q < num_queries; ++q) {
    auto got = MaterializeResult(*exec.query_output(q), q);
    if (!ResultsEquivalent(baseline[static_cast<size_t>(q)], got)) {
      rep.results_match_baseline = false;
      if (rep.mismatch.empty()) {
        rep.mismatch = "chaos result differs for query " + std::to_string(q);
      }
      break;
    }
  }

  // ---- Gate 3: zero-slack queries saw no shed activity ------------------
  rep.zero_slack_never_shed = true;
  for (QueryId q = 0; q < num_queries; ++q) {
    double slack = q < static_cast<int>(rep.initial_slack.size())
                       ? rep.initial_slack[static_cast<size_t>(q)]
                       : 0.0;
    if (slack > kEps) continue;
    if (rep.flow.shed_total(q) != 0) {
      rep.zero_slack_never_shed = false;
      if (rep.mismatch.empty()) {
        rep.mismatch = "zero-slack query " + std::to_string(q) +
                       " was shed (" + std::to_string(rep.flow.shed_total(q)) +
                       " deferrals/drops)";
      }
      break;
    }
  }
  for (const ShedDropEvent& d : run->drop_log) {
    if (d.subplan >= 0 &&
        d.subplan < static_cast<int>(protective.size()) &&
        protective[static_cast<size_t>(d.subplan)]) {
      rep.zero_slack_never_shed = false;
      if (rep.mismatch.empty()) {
        rep.mismatch = "protective subplan " + std::to_string(d.subplan) +
                       " dropped tuples at step " + std::to_string(d.step);
      }
      break;
    }
  }

  // ---- Gate 4: every breaker trip maps to an injected fault -------------
  rep.breakers_attributed = true;
  for (const chaos::BreakerTransition& t : rep.breakers) {
    if (t.to != chaos::BreakerState::kOpen) continue;
    if (!TripAttributable(t, injector)) {
      rep.breakers_attributed = false;
      if (rep.mismatch.empty()) {
        rep.mismatch = "unattributed " + t.breaker + " breaker trip at step " +
                       std::to_string(t.step) + " (" + t.cause + ")";
      }
      break;
    }
  }

  obs::Registry()
      .GetGauge("harness.chaos.budget_bytes")
      .Set(static_cast<double>(rep.budget_bytes));
  obs::Registry()
      .GetCounter("harness.chaos.runs")
      .Add(1);
  if (!rep.AllGatesPass()) {
    obs::Registry().GetCounter("harness.chaos.gate_failures").Add(1);
  }
  return rep;
}

Result<CrashRunReport> RunChaosCrash(const SubplanGraph& graph,
                                     const PaceConfig& paces,
                                     const StreamSource& dataset,
                                     const chaos::FaultSchedule& schedule,
                                     recovery::MemoryCheckpointStore* store,
                                     CrashRecoveryOptions options) {
  ISHARE_RETURN_NOT_OK(schedule.Validate());
  if (store == nullptr) {
    return Status::InvalidArgument("RunChaosCrash needs a store");
  }
  options.store = store;

  // Arm the schedule's transient store faults up front so Stage/Commit
  // retries land while the window (possibly parallel) is in flight.
  // Clamped below the per-boundary retry budget: the crashed run must die
  // from the planned kill, never from an exhausted retry.
  int64_t faults = 0;
  for (const chaos::ChaosEvent& ev : schedule.events) {
    if (ev.layer == chaos::ChaosLayer::kStoreTransient && ev.count > 0) {
      faults += ev.count;
    }
  }
  int64_t budget =
      options.checkpoint.store_retry.EffectiveMaxAttempts() - 1;
  faults = std::min(faults, std::max<int64_t>(0, budget));
  if (faults > 0) {
    store->InjectWriteFault(
        Status::Unavailable("chaos: store outage during crash cycle"),
        faults);
  }

  const StreamSource* data = &dataset;
  FaultPlan plan = schedule.source_plan;
  SourceFactory factory = [data, plan]() -> std::unique_ptr<StreamSource> {
    auto src = std::make_unique<PerturbedStreamSource>(plan);
    Status st = data->CloneTablesInto(src.get());
    CHECK(st.ok()) << st.message();
    return src;
  };
  return RunCrashRecoveryStatic(graph, paces, factory, options);
}

}  // namespace ishare
