// Chaos harness (DESIGN.md §11): drives one composed FaultSchedule —
// source perturbations, admission storms, checkpoint-store outages and
// bit-rot, memory-pressure spikes, worker stalls — through a supervised
// AdaptiveExecutor window and gates the hard invariants:
//
//   1. completed: the run returns OK under every schedule — faults may
//      degrade service, never crash or wedge the window;
//   2. results_match_baseline: the defer-only chaos run materializes the
//      same per-query results as a fault-free baseline (int/string cells
//      bit-exact, float aggregates within 1e-9 — see result_compare.h);
//   3. zero_slack_never_shed: queries with zero initial slackness see no
//      shed activity (no deferrals, no drops) and every logged drop hit a
//      non-protective subplan;
//   4. breakers_attributed: every breaker trip maps to an injected fault
//      of a compatible layer at or before the trip step.
//
// Two passes per schedule: A) fault-free baseline over a clean clone with
// a track-only budget (reference results + working-set peak, from which
// the bounded budget is derived); B) the chaos run — perturbed source,
// bounded budget, supervised checkpointing, injector armed. The
// fault-concurrent recovery invariant (storage faults landing while
// parallel waves are in flight) is exercised by RunChaosCrash, which
// wraps the crash harness with a schedule's store faults pre-armed.

#ifndef ISHARE_HARNESS_CHAOS_HARNESS_H_
#define ISHARE_HARNESS_CHAOS_HARNESS_H_

#include <string>
#include <vector>

#include "ishare/chaos/fault_schedule.h"
#include "ishare/chaos/supervisor.h"
#include "ishare/exec/adaptive_executor.h"
#include "ishare/harness/crash_harness.h"

namespace ishare {

struct ChaosOptions {
  ChaosOptions() {
    checkpoint.epoch_len = 2;
    // Budget decisions depend on the wall clock; chaos schedules need a
    // deterministic boundary at every epoch.
    checkpoint.overhead_budget = 0;
  }

  chaos::SupervisorOptions supervisor;
  recovery::CheckpointManagerOptions checkpoint;
  AdaptivePolicy policy;  // defer-only by default (enable_shed_drop=false)
  ExecOptions exec;
  // Bounded budget = budget_margin * fault-free peak. Kept > 1 so only
  // injected pressure spikes (never organic usage) cross the memory
  // breaker's trip threshold — the attribution gate depends on it.
  double budget_margin = 1.6;
};

struct ChaosReport {
  // The gates (see file comment).
  bool completed = false;
  bool results_match_baseline = false;
  bool zero_slack_never_shed = false;
  bool breakers_attributed = false;
  std::string mismatch;  // first failed gate, for diagnostics

  chaos::ServiceLevel final_level = chaos::ServiceLevel::kFull;
  chaos::SupervisorStats supervisor;
  recovery::RecoveryStats recovery;
  flow::FlowStats flow;
  std::vector<chaos::LadderTransition> ladder;
  std::vector<chaos::BreakerTransition> breakers;
  std::vector<chaos::InjectionRecord> injections;
  std::vector<double> initial_slack;
  int64_t budget_bytes = 0;
  int64_t peak_baseline = 0;

  bool AllGatesPass() const {
    return completed && results_match_baseline && zero_slack_never_shed &&
           breakers_attributed;
  }
};

// Runs one composed schedule over `estimator`'s graph starting from
// `paces` with absolute final-work constraints `abs_constraints`.
// `dataset` supplies the window's tables (cloned per pass, never
// advanced itself).
Result<ChaosReport> RunChaos(CostEstimator* estimator,
                             const PaceConfig& paces,
                             const std::vector<double>& abs_constraints,
                             const StreamSource& dataset,
                             const chaos::FaultSchedule& schedule,
                             const ChaosOptions& options);

// Fault-concurrent recovery: a crash-harness cycle (baseline → crashed →
// recovered, bit-exact comparison) over `schedule`'s perturbed source
// with its transient store faults pre-armed, so Stage/Commit retries land
// while the (possibly parallel, options.exec.sched.num_threads > 1)
// window is in flight. Fault counts are clamped below the store-retry
// budget: the crashed run must die from the *planned* kill, not from an
// exhausted retry. `store` doubles as options.store.
Result<CrashRunReport> RunChaosCrash(const SubplanGraph& graph,
                                     const PaceConfig& paces,
                                     const StreamSource& dataset,
                                     const chaos::FaultSchedule& schedule,
                                     recovery::MemoryCheckpointStore* store,
                                     CrashRecoveryOptions options);

}  // namespace ishare

#endif  // ISHARE_HARNESS_CHAOS_HARNESS_H_
