#include "ishare/harness/crash_harness.h"

#include <utility>

#include "ishare/obs/obs.h"
#include "ishare/recovery/serializer.h"

namespace ishare {
namespace {

// Marker the crash hooks fail with. A run that unwinds with exactly this
// message was killed by the plan; any other error is a genuine failure the
// harness propagates.
constexpr char kCrashMarker[] = "ishare.harness.injected_crash";

bool IsInjectedCrash(const Status& st) {
  return st.code() == StatusCode::kInternal && st.message() == kCrashMarker;
}

// Canonical bytes of every query root's output buffer (log + offsets),
// the "per-query results" side of the equivalence check.
template <typename Exec>
std::vector<std::string> QueryOutputs(const Exec& exec, int num_queries) {
  std::vector<std::string> out;
  out.reserve(num_queries);
  for (QueryId q = 0; q < num_queries; ++q) {
    recovery::CheckpointWriter w;
    exec.query_output(q)->Snapshot(&w);
    out.push_back(w.Take());
  }
  return out;
}

int DeadlinesMissed(const std::vector<double>& final_work,
                    const std::vector<double>& goals) {
  int missed = 0;
  for (size_t q = 0; q < final_work.size() && q < goals.size(); ++q) {
    if (final_work[q] > goals[q]) ++missed;
  }
  return missed;
}

// Fills the *_identical verdicts of `rep` from the baseline and the
// run under test. Exact (bitwise) comparisons throughout: recovery that
// is only approximately right is wrong.
void CompareRuns(const std::vector<std::string>& base_outputs,
                 const std::string& base_fp, const RunResult& base_run,
                 const std::vector<std::string>& test_outputs,
                 const std::string& test_fp, const RunResult& test_run,
                 const CrashRecoveryOptions& options, CrashRunReport* rep) {
  rep->results_identical = true;
  for (size_t q = 0; q < base_outputs.size(); ++q) {
    if (base_outputs[q] != test_outputs[q]) {
      rep->results_identical = false;
      if (rep->mismatch.empty()) {
        rep->mismatch = "query " + std::to_string(q) + " output log differs";
      }
      break;
    }
  }

  rep->state_identical = base_fp == test_fp;
  if (!rep->state_identical && rep->mismatch.empty()) {
    rep->mismatch = "state fingerprint differs";
  }

  rep->baseline_query_final_work = base_run.query_final_work;
  rep->recovered_query_final_work = test_run.query_final_work;
  rep->work_identical =
      base_run.total_work == test_run.total_work &&
      base_run.query_final_work == test_run.query_final_work;
  if (!rep->work_identical && rep->mismatch.empty()) {
    rep->mismatch = "work totals differ (baseline total " +
                    std::to_string(base_run.total_work) + ", recovered " +
                    std::to_string(test_run.total_work) + ")";
  }

  rep->baseline_deadlines_missed =
      DeadlinesMissed(base_run.query_final_work, options.final_work_goals);
  rep->recovered_deadlines_missed =
      DeadlinesMissed(test_run.query_final_work, options.final_work_goals);
  rep->deadlines_identical =
      rep->baseline_deadlines_missed == rep->recovered_deadlines_missed;
  if (!rep->deadlines_identical && rep->mismatch.empty()) {
    rep->mismatch = "missed-deadline counts differ";
  }
}

// Shared driver. `make_exec` builds a fresh executor over a given source;
// `run_whole` starts it from scratch (BeginWindow + ResumeWindow under the
// configured paces); `get_run` projects the executor-specific result type
// onto the common RunResult.
template <typename Exec, typename R, typename MakeExec, typename RunWhole,
          typename GetRun>
Result<CrashRunReport> RunImpl(int num_queries, MakeExec make_exec,
                               RunWhole run_whole, GetRun get_run,
                               const SourceFactory& make_source,
                               const CrashRecoveryOptions& options) {
  if (options.store == nullptr) {
    return Status::InvalidArgument(
        "crash harness needs a checkpoint store (options.store)");
  }
  CrashRunReport rep;

  // Uninterrupted baseline: the ground truth recovery must reproduce.
  std::vector<std::string> base_outputs;
  std::string base_fp;
  RunResult base_run;
  {
    std::unique_ptr<StreamSource> src = make_source();
    std::unique_ptr<Exec> exec = make_exec(src.get());
    ISHARE_ASSIGN_OR_RETURN(R res, run_whole(*exec));
    base_run = get_run(res);
    base_fp = exec->StateFingerprint();
    base_outputs = QueryOutputs(*exec, num_queries);
    rep.total_steps = exec->completed_steps();
  }

  recovery::CheckpointManager mgr(options.store, options.checkpoint);
  const CrashPlan& plan = options.plan;

  // Crashed run: checkpoints via the after-step hook, kill per the plan.
  // Scoped so the executor and source are fully torn down before recovery
  // — nothing survives the crash except what the store committed.
  {
    std::unique_ptr<StreamSource> src = make_source();
    std::unique_ptr<Exec> exec = make_exec(src.get());
    Exec* e = exec.get();
    exec->set_after_step_hook([&mgr, &plan, e](int64_t step) -> Status {
      if (plan.phase == CrashPhase::kBetweenStageAndCommit &&
          step == plan.step) {
        // Stage the epoch but die before the commit: the torn blob must
        // be invisible to recovery.
        ISHARE_RETURN_NOT_OK(mgr.Checkpoint(step, *e, /*commit=*/false));
        return Status::Internal(kCrashMarker);
      }
      ISHARE_RETURN_NOT_OK(mgr.OnStepComplete(step, *e));
      if (plan.phase == CrashPhase::kAfterStep && step == plan.step) {
        return Status::Internal(kCrashMarker);
      }
      return Status::OK();
    });
    exec->set_before_subplan_hook(
        [&plan](int64_t step, int subplan) -> Status {
          if (plan.phase == CrashPhase::kDuringSubplan &&
              step == plan.step && subplan == plan.subplan) {
            return Status::Internal(kCrashMarker);
          }
          return Status::OK();
        });
    // Kill between a step's parallel waves: some subplans of the step have
    // executed (and published buffers), the rest never will. Recovery must
    // restore a cut that never exposes the half-finished step.
    exec->set_after_wave_hook([&plan](int64_t step, int wave) -> Status {
      if (plan.phase == CrashPhase::kMidWave && step == plan.step &&
          wave == plan.wave) {
        return Status::Internal(kCrashMarker);
      }
      return Status::OK();
    });
    Result<R> res = run_whole(*exec);
    if (res.ok()) {
      // The plan never fired (kNone, or it targeted a step past the end
      // of the window): compare the completed run directly as a control.
      rep.crashed = false;
      rep.recovery = mgr.stats();
      CompareRuns(base_outputs, base_fp, base_run,
                  QueryOutputs(*exec, num_queries), exec->StateFingerprint(),
                  get_run(*res), options, &rep);
      return rep;
    }
    if (!IsInjectedCrash(res.status())) return res.status();
    rep.crashed = true;
    rep.crash_step = plan.step;
  }

  // Recovery: fresh source, fresh executor, restore from the latest
  // committed epoch and finish the window. With no usable checkpoint
  // (crash before the first commit, or every epoch torn) the window is
  // simply rerun from scratch — recovery degrades to a restart, never to
  // wrong answers.
  std::unique_ptr<StreamSource> src = make_source();
  std::unique_ptr<Exec> exec = make_exec(src.get());
  Result<int64_t> recovered = mgr.RecoverLatest(exec.get());
  Result<R> res = Status::Internal("unreachable");
  if (recovered.ok()) {
    rep.recovered_from_checkpoint = true;
    rep.recovered_step = *recovered;
    rep.replayed_deltas = exec->ReplayBacklog();
    obs::Registry()
        .GetCounter("recovery.restore.replayed_deltas")
        .Add(static_cast<double>(rep.replayed_deltas));
    res = exec->ResumeWindow();
  } else if (recovered.status().code() == StatusCode::kNotFound) {
    rep.recovered_from_checkpoint = false;
    res = run_whole(*exec);
  } else {
    return recovered.status();
  }
  ISHARE_RETURN_NOT_OK(res.status());
  rep.recovery = mgr.stats();
  CompareRuns(base_outputs, base_fp, base_run,
              QueryOutputs(*exec, num_queries), exec->StateFingerprint(),
              get_run(*res), options, &rep);
  return rep;
}

}  // namespace

Result<CrashRunReport> RunCrashRecoveryStatic(
    const SubplanGraph& graph, const PaceConfig& paces,
    const SourceFactory& make_source, const CrashRecoveryOptions& options) {
  return RunImpl<PaceExecutor, RunResult>(
      graph.num_queries(),
      [&graph, &options](StreamSource* src) {
        return std::make_unique<PaceExecutor>(&graph, src, options.exec);
      },
      [&paces](PaceExecutor& exec) { return exec.Run(paces); },
      [](const RunResult& r) -> const RunResult& { return r; }, make_source,
      options);
}

Result<CrashRunReport> RunCrashRecoveryAdaptive(
    CostEstimator* estimator, const PaceConfig& paces,
    const std::vector<double>& abs_constraints, const AdaptivePolicy& policy,
    const SourceFactory& make_source, const CrashRecoveryOptions& options) {
  return RunImpl<AdaptiveExecutor, AdaptiveRunResult>(
      estimator->graph().num_queries(),
      [estimator, &abs_constraints, &policy,
       &options](StreamSource* src) {
        return std::make_unique<AdaptiveExecutor>(
            estimator, src, abs_constraints, policy, options.exec);
      },
      [&paces](AdaptiveExecutor& exec) { return exec.Run(paces); },
      [](const AdaptiveRunResult& r) -> const RunResult& { return r.run; },
      make_source, options);
}

}  // namespace ishare
