// Crash/recovery harness (DESIGN.md §8): runs a pace-driven window twice —
// once uninterrupted to establish ground truth, once with a seeded crash
// injected at a chosen point — then tears the crashed executor down,
// restores a fresh one from the latest committed checkpoint, replays the
// outstanding deltas, and checks the recovered run against the baseline
// bit for bit (per-query output logs, the executor state fingerprint, work
// totals, and missed-deadline counts).
//
// Crashes are simulated by hooks returning a marker error, which unwinds
// the window exactly like a process kill would from the storage layer's
// point of view: whatever the checkpoint store committed stays, everything
// else is lost when the executor/source pair is destroyed.

#ifndef ISHARE_HARNESS_CRASH_HARNESS_H_
#define ISHARE_HARNESS_CRASH_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ishare/exec/adaptive_executor.h"
#include "ishare/exec/pace_executor.h"
#include "ishare/recovery/checkpoint_manager.h"
#include "ishare/recovery/checkpoint_store.h"
#include "ishare/storage/stream_source.h"

namespace ishare {

// Where in the window the simulated process kill lands.
enum class CrashPhase {
  kNone,                   // never crash (control: harness overhead only)
  kAfterStep,              // right after step `step` completes (and after
                           // any checkpoint that step committed)
  kDuringSubplan,          // mid-step, right before subplan `subplan`
                           // executes within step `step`
  kBetweenStageAndCommit,  // after step `step`'s checkpoint is staged in
                           // the store but before it commits (torn write)
  kMidWave,                // mid-step, right after parallel wave `wave` of
                           // step `step` finishes on the pool (fires only
                           // when the executor runs parallel waves; serial
                           // runs complete as a control)
};

struct CrashPlan {
  CrashPhase phase = CrashPhase::kNone;
  int64_t step = 0;  // 1-based event-point index the crash targets
  int subplan = 0;   // only read for kDuringSubplan
  int wave = 0;      // only read for kMidWave (0-based wave index)
};

struct CrashRecoveryOptions {
  CrashRecoveryOptions() {
    checkpoint.epoch_len = 2;
    // Budget decisions depend on the wall clock; crash plans need a
    // deterministic checkpoint at every epoch boundary.
    checkpoint.overhead_budget = 0;
  }

  CrashPlan plan;
  // Checkpoint cadence and store-retry policy. The harness default epoch
  // (2) checkpoints more often than the manager default so small test
  // windows exercise multi-epoch recovery.
  recovery::CheckpointManagerOptions checkpoint;
  ExecOptions exec;
  // Per-query absolute final-work goals; when sized to the query count the
  // harness also compares missed-deadline counts between runs.
  std::vector<double> final_work_goals;
  // Required: where checkpoints live. The harness never clears it, so a
  // caller can pre-commit stale epochs to test fallback.
  recovery::CheckpointStore* store = nullptr;
};

// Outcome of one baseline-vs-crash-recovery comparison. `Equivalent()` is
// the paper-level claim under test: a crash at any point must be
// indistinguishable in results from a run that never crashed.
struct CrashRunReport {
  bool crashed = false;  // the plan actually fired
  bool recovered_from_checkpoint = false;  // false: no usable epoch, reran
  int64_t crash_step = 0;      // step the injected kill landed on
  int64_t recovered_step = 0;  // step of the checkpoint restored from
  int64_t total_steps = 0;     // steps of the uninterrupted window
  int64_t replayed_deltas = 0;  // leaf backlog replayed right after restore
  recovery::RecoveryStats recovery;  // manager counters for the crashed run

  bool results_identical = false;    // per-query output logs, byte-exact
  bool state_identical = false;      // StateFingerprint (timings excluded)
  bool work_identical = false;       // total + per-query final work
  bool deadlines_identical = false;  // missed-deadline counts match
  std::string mismatch;              // first difference, for diagnostics

  std::vector<double> baseline_query_final_work;
  std::vector<double> recovered_query_final_work;
  int baseline_deadlines_missed = 0;
  int recovered_deadlines_missed = 0;

  bool Equivalent() const {
    return results_identical && state_identical && work_identical &&
           deadlines_identical;
  }
};

// Builds a fresh, un-advanced stream source. Called once per run (baseline,
// crashed, recovered), so recovery never inherits stream position — it must
// re-derive it from the checkpoint alone.
using SourceFactory = std::function<std::unique_ptr<StreamSource>()>;

// Static-schedule variant: PaceExecutor over `graph` under `paces`.
Result<CrashRunReport> RunCrashRecoveryStatic(
    const SubplanGraph& graph, const PaceConfig& paces,
    const SourceFactory& make_source, const CrashRecoveryOptions& options);

// Adaptive variant: AdaptiveExecutor over `estimator`'s graph, starting
// from `paces` with absolute final-work constraints `abs_constraints`.
Result<CrashRunReport> RunCrashRecoveryAdaptive(
    CostEstimator* estimator, const PaceConfig& paces,
    const std::vector<double>& abs_constraints, const AdaptivePolicy& policy,
    const SourceFactory& make_source, const CrashRecoveryOptions& options);

}  // namespace ishare

#endif  // ISHARE_HARNESS_CRASH_HARNESS_H_
