#include "ishare/harness/experiment.h"

#include <algorithm>
#include <utility>

#include "ishare/exec/pace_executor.h"
#include "ishare/obs/obs.h"

namespace ishare {

namespace {

// The harness drives executors with configurations it derived itself, so a
// runtime error here is a harness bug: surface it loudly.
RunResult Unwrap(Result<RunResult> r) {
  CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

}  // namespace

int ExperimentResult::DeadlinesMet() const {
  int n = 0;
  for (const QueryMetrics& q : queries) n += q.deadline_met ? 1 : 0;
  return n;
}

double ExperimentResult::MeanMissedAbs() const {
  if (queries.empty()) return 0;
  double s = 0;
  for (const QueryMetrics& q : queries) s += q.missed_abs;
  return s / static_cast<double>(queries.size());
}

double ExperimentResult::MaxMissedAbs() const {
  double m = 0;
  for (const QueryMetrics& q : queries) m = std::max(m, q.missed_abs);
  return m;
}

double ExperimentResult::MeanMissedRel() const {
  if (queries.empty()) return 0;
  double s = 0;
  for (const QueryMetrics& q : queries) s += q.missed_rel;
  return 100.0 * s / static_cast<double>(queries.size());
}

double ExperimentResult::MaxMissedRel() const {
  double m = 0;
  for (const QueryMetrics& q : queries) m = std::max(m, q.missed_rel);
  return 100.0 * m;
}

Experiment::Experiment(const Catalog* catalog, StreamSource* source,
                       std::vector<QueryPlan> queries,
                       std::vector<double> rel_constraints,
                       ApproachOptions opts, bool calibrate_constraints)
    : catalog_(catalog),
      source_(source),
      queries_(std::move(queries)),
      rel_(std::move(rel_constraints)),
      opts_(opts),
      calibrate_constraints_(calibrate_constraints) {
  CHECK(catalog != nullptr && source != nullptr);
  CHECK_EQ(queries_.size(), rel_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    CHECK_EQ(queries_[i].id, static_cast<QueryId>(i))
        << "experiment queries must have dense ids";
  }
}

void Experiment::SetFaultPlan(FaultPlan plan) {
  Status st = plan.Validate();
  CHECK(st.ok()) << st.ToString();
  perturbed_ = std::make_unique<PerturbedStreamSource>(std::move(plan));
  st = source_->CloneTablesInto(perturbed_.get());
  CHECK(st.ok()) << st.ToString();
}

StreamSource* Experiment::RunSource() {
  return perturbed_ != nullptr ? perturbed_.get() : source_;
}

const std::vector<double>& Experiment::BatchLatencies() {
  if (batch_done_) return batch_latencies_;
  batch_latencies_.assign(queries_.size(), 0.0);
  batch_final_work_.assign(queries_.size(), 0.0);
  standalone_batch_seconds_ = 0;
  for (const QueryPlan& q : queries_) {
    source_->Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, source_, opts_.exec);
    RunResult r = Unwrap(exec.Run(PaceConfig(g.num_subplans(), 1)));
    batch_latencies_[q.id] = r.query_latency_seconds[q.id];
    batch_final_work_[q.id] = r.query_final_work[q.id];
    standalone_batch_seconds_ += r.total_seconds;
  }
  batch_done_ = true;
  return batch_latencies_;
}

const std::vector<double>& Experiment::BatchFinalWork() {
  BatchLatencies();
  return batch_final_work_;
}

double Experiment::StandaloneBatchTotalSeconds() {
  BatchLatencies();
  return standalone_batch_seconds_;
}

double Experiment::SharedBatchTotalSeconds() {
  MqoOptimizer mqo(catalog_, opts_.mqo);
  SubplanGraph g = SubplanGraph::Build(mqo.Merge(queries_));
  source_->Reset();
  PaceExecutor exec(&g, source_, opts_.exec);
  RunResult r = Unwrap(exec.Run(PaceConfig(g.num_subplans(), 1)));
  return r.total_seconds;
}

ExperimentResult Experiment::BuildResult(Approach approach,
                                         const OptimizedPlan& plan,
                                         const RunResult& run) {
  const std::vector<double>& batch = BatchLatencies();
  ExperimentResult res;
  res.approach = approach;
  res.total_work = run.total_work;
  res.total_seconds = run.total_seconds;
  res.optimization_seconds = plan.optimization_seconds;
  res.est_total_work = plan.est_cost.total_work;
  res.decompose_stats = plan.decompose_stats;
  res.queries.resize(queries_.size());
  // Seconds per work unit of this run, used to express work-based misses
  // in seconds.
  double sec_per_work =
      run.total_work > 0 ? run.total_seconds / run.total_work : 0.0;
  for (const QueryPlan& q : queries_) {
    QueryMetrics& m = res.queries[q.id];
    m.name = q.name;
    m.final_work = run.query_final_work[q.id];
    m.batch_final_work = batch_final_work_[q.id];
    m.final_work_goal = rel_[q.id] * m.batch_final_work;
    m.latency_seconds = run.query_latency_seconds[q.id];
    m.batch_latency = batch[q.id];
    m.latency_goal = rel_[q.id] * batch[q.id];
    double missed_work = std::max(0.0, m.final_work - m.final_work_goal);
    m.missed_abs = missed_work * sec_per_work;
    m.missed_rel =
        m.final_work_goal > 0 ? missed_work / m.final_work_goal : 0.0;
    m.deadline_met = missed_work <= 0;
    // Per-query latency distributions, one series per query so the JSON
    // export carries p50/p95/p99 per query across repeated runs.
    obs::Registry()
        .GetHistogram("harness.query.latency_seconds#" + q.name)
        .Observe(m.latency_seconds);
    obs::Registry()
        .GetHistogram("harness.query.missed_seconds#" + q.name)
        .Observe(m.missed_abs);
    obs::Registry()
        .GetHistogram("harness.query.missed_rel",
                      obs::Histogram::RatioBounds())
        .Observe(m.missed_rel);
  }
  return res;
}

OptimizedPlan Experiment::Optimize(Approach approach) {
  obs::ScopedSpan span("harness.experiment.optimize");
  BatchLatencies();  // ensure measured batch baselines exist
  std::vector<double> rel_for_opt = rel_;
  if (calibrate_constraints_) {
    // Aim the optimizer's absolute constraints at the measured batch final
    // work rather than the estimated one (recurring-query calibration).
    for (const QueryPlan& q : queries_) {
      double est = EstimateStandaloneBatchWork(q, *catalog_, opts_.exec);
      if (est > 0) {
        rel_for_opt[q.id] = rel_[q.id] * batch_final_work_[q.id] / est;
      }
    }
  }
  return OptimizePlan(approach, queries_, *catalog_, rel_for_opt, opts_);
}

ExperimentResult Experiment::Run(Approach approach) {
  obs::ScopedSpan span("harness.experiment.run");
  OptimizedPlan plan = Optimize(approach);
  StreamSource* src = RunSource();
  src->Reset();
  PaceExecutor exec(&plan.graph, src, opts_.exec);
  RunResult run = Unwrap(exec.Run(plan.paces));
  return BuildResult(approach, plan, run);
}

ExperimentResult Experiment::RunAdaptive(Approach approach,
                                         AdaptivePolicy policy) {
  obs::ScopedSpan span("harness.experiment.run");
  OptimizedPlan plan = Optimize(approach);
  StreamSource* src = RunSource();
  src->Reset();
  CostEstimator est(&plan.graph, catalog_, opts_.exec,
                    opts_.memoized_estimator);
  AdaptiveExecutor exec(&est, src, plan.abs_constraints, policy, opts_.exec,
                        PaceOptimizerOptions{opts_.max_pace,
                                             opts_.deadline_seconds});
  auto r = exec.Run(plan.paces);
  CHECK(r.ok()) << r.status().ToString();
  ExperimentResult res = BuildResult(approach, plan, r->run);
  res.adaptation = r->stats;
  return res;
}

}  // namespace ishare
