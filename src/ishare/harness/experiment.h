// Experiment harness: optimize-with-approach-X → execute → measure. The
// glue every bench is built on, producing the paper's Table 1/2/3 and
// Fig. 9–17 quantities (total work, per-query final work and missed
// latency against goals derived from measured batch runs). Feeds per-query
// latency/miss histograms and experiment spans into the obs layer
// (DESIGN.md §7); BenchReportJson (json_export.h) serializes the results.

#ifndef ISHARE_HARNESS_EXPERIMENT_H_
#define ISHARE_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "ishare/exec/adaptive_executor.h"
#include "ishare/opt/approaches.h"
#include "ishare/storage/perturbed_source.h"

namespace ishare {

// Per-query measurements of one experiment run.
//
// Missed latencies are computed on measured *final work* (the paper's own
// latency proxy, Sec. 2.1): at simulator scale, wall-clock times of single
// final executions are microseconds and dominated by timing noise, whereas
// work units are deterministic. The work-based miss is converted to
// seconds with the run's measured seconds-per-work-unit rate so the
// Table 1/2/3 "Sec." columns stay comparable. Raw wall-clock latencies are
// kept for reference.
struct QueryMetrics {
  std::string name;
  double final_work = 0;        // measured, cost-model units
  double batch_final_work = 0;  // measured standalone one-batch final work
  double final_work_goal = 0;   // rel_constraint * batch_final_work
  double latency_seconds = 0;   // measured wall time of final executions
  double batch_latency = 0;     // wall time of standalone one-batch run
  double latency_goal = 0;      // rel_constraint * batch_latency (Sec. 5.1)
  double missed_abs = 0;        // work-based miss converted to seconds
  double missed_rel = 0;        // work-based miss / goal
  bool deadline_met = true;     // final_work <= final_work_goal
};

struct ExperimentResult {
  Approach approach = Approach::kIShare;
  double total_work = 0;             // measured cost-model units
  double total_seconds = 0;          // the paper's "total execution time"
  double optimization_seconds = 0;
  double est_total_work = 0;         // optimizer's estimate, for comparison
  std::vector<QueryMetrics> queries;
  DecomposeStats decompose_stats;
  // Populated by RunAdaptive(); zeros for static runs.
  AdaptationStats adaptation;

  int DeadlinesMet() const;  // number of queries with deadline_met
  double MeanMissedAbs() const;
  double MaxMissedAbs() const;
  double MeanMissedRel() const;  // percent
  double MaxMissedRel() const;   // percent
};

// Runs scheduled-query experiments over one dataset: optimizes with an
// approach, executes the resulting pace configuration over the full trigger
// window, and reports total work / per-query (missed) latencies against
// latency goals derived from measured batch latencies.
class Experiment {
 public:
  // `queries` must have dense ids 0..n-1. The stream source is Reset()
  // before every run, so one Experiment can evaluate many approaches.
  //
  // With `calibrate_constraints` set, each query's relative constraint is
  // rescaled by the ratio of its *measured* to *estimated* standalone
  // batch final work before optimization — the paper's recurring-query
  // calibration (Sec. 2.1): "users can adjust the final work constraint
  // based on this query's prior executions". This compensates for cost-
  // model bias so the optimizer aims at the real latency goal.
  Experiment(const Catalog* catalog, StreamSource* source,
             std::vector<QueryPlan> queries,
             std::vector<double> rel_constraints,
             ApproachOptions opts = ApproachOptions(),
             bool calibrate_constraints = false);

  ExperimentResult Run(Approach approach);

  // Like Run(), but executes the optimized plan through the adaptive
  // runtime (drift monitoring, mid-window pace re-derivation, graceful
  // degradation) instead of replaying the static schedule.
  ExperimentResult RunAdaptive(Approach approach,
                               AdaptivePolicy policy = AdaptivePolicy());

  // Executes subsequent Run()/RunAdaptive() calls through a
  // PerturbedStreamSource applying `plan` to a clone of the clean source.
  // Batch baselines (latency goals) are still measured on the clean
  // stream, so misses are reported against the undisturbed ideal.
  void SetFaultPlan(FaultPlan plan);

  // Measured latency of executing each query standalone in one batch;
  // computed lazily once and cached (defines the latency goals).
  const std::vector<double>& BatchLatencies();

  // Measured final work of each query's standalone one-batch execution.
  const std::vector<double>& BatchFinalWork();

  // Measured total execution time of (a) every query standalone in one
  // batch and (b) the MQO-shared plan in one batch — Fig. 10.
  double StandaloneBatchTotalSeconds();
  double SharedBatchTotalSeconds();

  const std::vector<QueryPlan>& queries() const { return queries_; }
  const ApproachOptions& options() const { return opts_; }

 private:
  // The source scheduled runs execute against: the clean source, or the
  // fault-injecting clone when a fault plan is set.
  StreamSource* RunSource();
  OptimizedPlan Optimize(Approach approach);
  ExperimentResult BuildResult(Approach approach, const OptimizedPlan& plan,
                               const RunResult& run);

  const Catalog* catalog_;
  StreamSource* source_;
  std::unique_ptr<PerturbedStreamSource> perturbed_;
  std::vector<QueryPlan> queries_;
  std::vector<double> rel_;
  ApproachOptions opts_;
  bool calibrate_constraints_;
  std::vector<double> batch_latencies_;
  std::vector<double> batch_final_work_;
  bool batch_done_ = false;
  double standalone_batch_seconds_ = 0;
};

}  // namespace ishare

#endif  // ISHARE_HARNESS_EXPERIMENT_H_
