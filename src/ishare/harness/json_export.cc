#include "ishare/harness/json_export.h"

#include <cmath>
#include <cstdio>

namespace ishare {

namespace {

// The export must stay valid JSON even if a metric went non-finite (e.g. a
// ratio over an empty run); nulls are greppable, NaN would poison the
// whole document.
void SafeNumber(obs::JsonWriter& w, double v) {
  if (std::isfinite(v)) {
    w.Number(v);
  } else {
    w.Null();
  }
}

void WriteHistogram(obs::JsonWriter& w, const obs::HistogramSnapshot& h) {
  w.BeginObject();
  w.Key("count");
  w.Int(h.count);
  w.Key("dropped");
  w.Int(h.dropped);
  w.Key("sum");
  SafeNumber(w, h.sum);
  w.Key("p50");
  SafeNumber(w, h.p50);
  w.Key("p95");
  SafeNumber(w, h.p95);
  w.Key("p99");
  SafeNumber(w, h.p99);
  w.Key("bounds");
  w.BeginArray();
  for (double b : h.bounds) SafeNumber(w, b);
  w.EndArray();
  w.Key("counts");
  w.BeginArray();
  for (int64_t c : h.counts) w.Int(c);
  w.EndArray();
  w.EndObject();
}

void WriteResult(obs::JsonWriter& w, const ExperimentResult& r) {
  w.BeginObject();
  w.Key("approach");
  w.String(ApproachName(r.approach));
  w.Key("total_work");
  SafeNumber(w, r.total_work);
  w.Key("total_seconds");
  SafeNumber(w, r.total_seconds);
  w.Key("optimization_seconds");
  SafeNumber(w, r.optimization_seconds);
  w.Key("est_total_work");
  SafeNumber(w, r.est_total_work);

  w.Key("missed");
  w.BeginObject();
  w.Key("deadlines_met");
  w.Int(r.DeadlinesMet());
  w.Key("num_queries");
  w.Int(static_cast<int64_t>(r.queries.size()));
  w.Key("mean_rel_pct");
  SafeNumber(w, r.MeanMissedRel());
  w.Key("max_rel_pct");
  SafeNumber(w, r.MaxMissedRel());
  w.Key("mean_abs_seconds");
  SafeNumber(w, r.MeanMissedAbs());
  w.Key("max_abs_seconds");
  SafeNumber(w, r.MaxMissedAbs());
  w.EndObject();

  w.Key("adaptation");
  w.BeginObject();
  w.Key("rederivations");
  w.Int(r.adaptation.rederivations);
  w.Key("skipped_execs");
  w.Int(r.adaptation.skipped_execs);
  w.Key("catchup_execs");
  w.Int(r.adaptation.catchup_execs);
  w.Key("drift_ratio");
  SafeNumber(w, r.adaptation.drift_ratio);
  w.Key("rederive_seconds");
  SafeNumber(w, r.adaptation.rederive_seconds);
  w.EndObject();

  w.Key("decompose");
  w.BeginObject();
  w.Key("splits_considered");
  w.Int(r.decompose_stats.splits_considered);
  w.Key("splits_adopted");
  w.Int(r.decompose_stats.splits_adopted);
  w.Key("partial_splits_adopted");
  w.Int(r.decompose_stats.partial_splits_adopted);
  w.Key("partitions_evaluated");
  w.Int(r.decompose_stats.partitions_evaluated);
  w.EndObject();

  w.Key("queries");
  w.BeginArray();
  for (const QueryMetrics& q : r.queries) {
    w.BeginObject();
    w.Key("name");
    w.String(q.name);
    w.Key("final_work");
    SafeNumber(w, q.final_work);
    w.Key("batch_final_work");
    SafeNumber(w, q.batch_final_work);
    w.Key("final_work_goal");
    SafeNumber(w, q.final_work_goal);
    w.Key("latency_seconds");
    SafeNumber(w, q.latency_seconds);
    w.Key("batch_latency");
    SafeNumber(w, q.batch_latency);
    w.Key("latency_goal");
    SafeNumber(w, q.latency_goal);
    w.Key("missed_abs");
    SafeNumber(w, q.missed_abs);
    w.Key("missed_rel");
    SafeNumber(w, q.missed_rel);
    w.Key("deadline_met");
    w.Bool(q.deadline_met);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

double CounterOr0(const obs::MetricsSnapshot& metrics,
                  const std::string& name) {
  auto it = metrics.counters.find(name);
  return it == metrics.counters.end() ? 0.0 : it->second;
}

double GaugeOr0(const obs::MetricsSnapshot& metrics,
                const std::string& name) {
  auto it = metrics.gauges.find(name);
  return it == metrics.gauges.end() ? 0.0 : it->second;
}

}  // namespace

std::string BenchReportJson(
    const BenchRunInfo& info, const std::vector<ExperimentResult>& results,
    const obs::MetricsSnapshot& metrics,
    const std::map<std::string, obs::SpanStats>& spans) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  // v2: added the top-level "recovery" block (DESIGN.md §8).
  // v3: added the top-level "flow" overload-control block (DESIGN.md §9).
  // v4: added config.threads and the top-level "sched" block (DESIGN.md
  //     §10).
  // v5: added the top-level "chaos" block and the recovery block's
  //     checkpoint-health keys (DESIGN.md §11).
  // v6: added the top-level "exec" block with the columnar/row batch
  //     routing counters (DESIGN.md §12).
  w.Int(6);
  w.Key("generator");
  w.String("ishare");
  w.Key("bench");
  w.String(info.bench);

  w.Key("config");
  w.BeginObject();
  w.Key("sf");
  SafeNumber(w, info.sf);
  w.Key("max_pace");
  w.Int(info.max_pace);
  w.Key("seed");
  w.Int(static_cast<int64_t>(info.seed));
  w.Key("threads");
  w.Int(info.threads);
  w.Key("quick");
  w.Bool(info.quick);
  w.EndObject();

  w.Key("results");
  w.BeginArray();
  for (const ExperimentResult& r : results) WriteResult(w, r);
  w.EndArray();

  // Checkpoint/retry activity rollup, from the recovery.* counters. All
  // zeros for benches that never checkpoint — kept unconditionally so the
  // schema is stable across benches.
  w.Key("recovery");
  w.BeginObject();
  w.Key("checkpoints");
  SafeNumber(w, CounterOr0(metrics, "recovery.checkpoint.count"));
  w.Key("checkpoint_bytes");
  SafeNumber(w, CounterOr0(metrics, "recovery.checkpoint.bytes"));
  w.Key("torn_discarded");
  SafeNumber(w, CounterOr0(metrics, "recovery.checkpoint.torn_discarded"));
  w.Key("restores");
  SafeNumber(w, CounterOr0(metrics, "recovery.restore.count"));
  w.Key("replayed_deltas");
  SafeNumber(w, CounterOr0(metrics, "recovery.restore.replayed_deltas"));
  w.Key("retry_attempts");
  SafeNumber(w, CounterOr0(metrics, "recovery.retry.attempts"));
  w.Key("retry_success");
  SafeNumber(w, CounterOr0(metrics, "recovery.retry.success"));
  w.Key("retry_exhausted");
  SafeNumber(w, CounterOr0(metrics, "recovery.retry.exhausted"));
  w.Key("retry_backoff_seconds");
  SafeNumber(w, CounterOr0(metrics, "recovery.retry.backoff_seconds"));
  w.Key("consecutive_failures");
  SafeNumber(w,
             GaugeOr0(metrics, "recovery.checkpoint.consecutive_failures"));
  w.Key("last_commit_epoch");
  SafeNumber(w, GaugeOr0(metrics, "recovery.checkpoint.last_commit_epoch"));
  w.EndObject();

  // Overload-control rollup, from the flow.* metrics (DESIGN.md §9). All
  // zeros for benches that never attach a MemoryBudget — kept
  // unconditionally, like "recovery", so the schema is stable.
  w.Key("flow");
  w.BeginObject();
  w.Key("budget_bytes");
  SafeNumber(w, GaugeOr0(metrics, "flow.budget.budget_bytes"));
  w.Key("used_bytes");
  SafeNumber(w, GaugeOr0(metrics, "flow.budget.used_bytes"));
  w.Key("peak_bytes");
  SafeNumber(w, GaugeOr0(metrics, "flow.budget.peak_bytes"));
  w.Key("trims");
  SafeNumber(w, CounterOr0(metrics, "flow.trim.count"));
  w.Key("trimmed_tuples");
  SafeNumber(w, CounterOr0(metrics, "flow.trim.tuples"));
  w.Key("shed_deferred_execs");
  SafeNumber(w, CounterOr0(metrics, "flow.shed.deferred"));
  w.Key("shed_dropped_tuples");
  SafeNumber(w, CounterOr0(metrics, "flow.shed.dropped_tuples"));
  w.Key("backpressure_events");
  SafeNumber(w, CounterOr0(metrics, "flow.backpressure.buffer_events") +
                    CounterOr0(metrics, "flow.backpressure.defer"));
  w.EndObject();

  // Parallel-scheduler rollup, from the sched.* metrics (DESIGN.md §10).
  // All zeros for serial runs (num_threads == 1 never constructs a pool)
  // — kept unconditionally, like "recovery" and "flow", so the schema is
  // stable.
  w.Key("sched");
  w.BeginObject();
  w.Key("pool_tasks");
  SafeNumber(w, CounterOr0(metrics, "sched.pool.tasks"));
  w.Key("pool_steals");
  SafeNumber(w, CounterOr0(metrics, "sched.pool.steals"));
  w.Key("parallel_fors");
  SafeNumber(w, CounterOr0(metrics, "sched.pool.parallel_for"));
  w.Key("step_waves");
  SafeNumber(w, CounterOr0(metrics, "sched.step.waves"));
  w.EndObject();

  // Execution-path rollup, from the exec.path.* metrics (DESIGN.md §12):
  // how many delta batches (and their tuples) rode the columnar pump vs
  // the row interface. Both are zero only when nothing executed; a pure
  // row run (ExecOptions::columnar = false, or a plan whose operators
  // all decline SupportsColumnar) reports only row batches. Kept
  // unconditionally, like the other rollups, so the schema is stable.
  w.Key("exec");
  w.BeginObject();
  w.Key("columnar_batches");
  SafeNumber(w, CounterOr0(metrics, "exec.path.columnar_batches"));
  w.Key("columnar_tuples");
  SafeNumber(w, CounterOr0(metrics, "exec.path.columnar_tuples"));
  w.Key("row_batches");
  SafeNumber(w, CounterOr0(metrics, "exec.path.row_batches"));
  w.Key("row_tuples");
  SafeNumber(w, CounterOr0(metrics, "exec.path.row_tuples"));
  w.EndObject();

  // Chaos/supervision rollup, from the chaos.* metrics (DESIGN.md §11).
  // All zeros for unsupervised runs — kept unconditionally, like the
  // other rollups, so the schema is stable.
  w.Key("chaos");
  w.BeginObject();
  w.Key("service_level");
  SafeNumber(w, GaugeOr0(metrics, "chaos.ladder.level"));
  w.Key("ladder_transitions");
  SafeNumber(w, CounterOr0(metrics, "chaos.ladder.transitions"));
  w.Key("breaker_trips");
  SafeNumber(w, CounterOr0(metrics, "chaos.breaker.trip"));
  w.Key("breaker_half_opens");
  SafeNumber(w, CounterOr0(metrics, "chaos.breaker.half_open"));
  w.Key("breaker_closes");
  SafeNumber(w, CounterOr0(metrics, "chaos.breaker.close"));
  w.Key("faults_injected");
  SafeNumber(w, CounterOr0(metrics, "chaos.fault.injected"));
  w.Key("checkpoints_skipped");
  SafeNumber(w, CounterOr0(metrics, "chaos.supervisor.checkpoints_skipped"));
  w.Key("checkpoints_stretched");
  SafeNumber(w,
             CounterOr0(metrics, "chaos.supervisor.checkpoints_stretched"));
  w.Key("defer_signals");
  SafeNumber(w, CounterOr0(metrics, "chaos.supervisor.defer_signals"));
  w.Key("safe_stops");
  SafeNumber(w, CounterOr0(metrics, "chaos.supervisor.safe_stops"));
  w.EndObject();

  w.Key("metrics");
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, v] : metrics.counters) {
    w.Key(name);
    SafeNumber(w, v);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, v] : metrics.gauges) {
    w.Key(name);
    SafeNumber(w, v);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : metrics.histograms) {
    w.Key(name);
    WriteHistogram(w, h);
  }
  w.EndObject();
  w.EndObject();

  w.Key("spans");
  w.BeginObject();
  for (const auto& [name, s] : spans) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Int(s.count);
    w.Key("total_seconds");
    SafeNumber(w, s.total_seconds);
    w.Key("min_seconds");
    SafeNumber(w, s.min_seconds);
    w.Key("max_seconds");
    SafeNumber(w, s.max_seconds);
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return w.Take();
}

std::string BenchReportJson(const BenchRunInfo& info,
                            const std::vector<ExperimentResult>& results) {
  return BenchReportJson(info, results, obs::Registry().Snapshot(),
                         obs::GlobalTracer().Snapshot());
}

Status WriteBenchJson(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = (n == json.size());
  ok = (std::fputc('\n', f) != EOF) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::Internal("short write to " + path);
  return Status::OK();
}

}  // namespace ishare
