// Structured bench export (DESIGN.md §7): serializes experiment results
// plus the observability state (metrics registry + span aggregates) into
// one versioned JSON document. Every bench binary writes this via
// `--json=<path>` so reproduction runs are machine-checkable instead of
// text-table-scrape-only.
//
// Schema (version 5, stable key order — see the golden file under
// tests/golden/; v2 added the "recovery" block, DESIGN.md §8; v3 added
// the "flow" overload-control block, DESIGN.md §9; v4 added
// config.threads and the "sched" block, DESIGN.md §10; v5 added the
// "chaos" supervision block and the recovery block's checkpoint-health
// keys, DESIGN.md §11):
//   {
//     "schema_version": 5,
//     "generator": "ishare",
//     "bench": "<binary name>",
//     "config": {"sf": ..., "max_pace": ..., "seed": ..., "threads": ...,
//                "quick": ...},
//     "results": [ { per-ExperimentResult block } ],
//     "recovery": {"checkpoints": ..., "checkpoint_bytes": ...,
//                  "torn_discarded": ..., "restores": ...,
//                  "replayed_deltas": ..., "retry_attempts": ...,
//                  "retry_success": ..., "retry_exhausted": ...,
//                  "retry_backoff_seconds": ...,
//                  "consecutive_failures": ..., "last_commit_epoch": ...},
//     "flow": {"budget_bytes": ..., "used_bytes": ..., "peak_bytes": ...,
//              "trims": ..., "trimmed_tuples": ...,
//              "shed_deferred_execs": ..., "shed_dropped_tuples": ...,
//              "backpressure_events": ...},
//     "sched": {"pool_tasks": ..., "pool_steals": ...,
//               "parallel_fors": ..., "step_waves": ...},
//     "chaos": {"service_level": ..., "ladder_transitions": ...,
//               "breaker_trips": ..., "breaker_half_opens": ...,
//               "breaker_closes": ..., "faults_injected": ...,
//               "checkpoints_skipped": ..., "checkpoints_stretched": ...,
//               "defer_signals": ..., "safe_stops": ...},
//     "metrics": {"counters": {...}, "gauges": {...},
//                 "histograms": {name: {count, dropped, sum,
//                                       p50, p95, p99,
//                                       bounds: [...], counts: [...]}}},
//     "spans": {name: {count, total_seconds, min_seconds, max_seconds}}
//   }

#ifndef ISHARE_HARNESS_JSON_EXPORT_H_
#define ISHARE_HARNESS_JSON_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "ishare/harness/experiment.h"
#include "ishare/obs/json.h"
#include "ishare/obs/obs.h"

namespace ishare {

// Identity of one bench invocation, recorded in the export header.
struct BenchRunInfo {
  std::string bench;  // binary name, e.g. "bench_table1_missed_latency"
  double sf = 0.01;
  int max_pace = 50;
  uint64_t seed = 7;
  int threads = 1;  // scheduler worker threads (1 = serial path)
  bool quick = false;
};

// Renders the full export document from explicit snapshots. Pure function
// of its inputs (tests hand-craft the snapshots for golden comparison).
// Returns an empty string only if a non-finite value slipped past the
// sanitizers, which is a bug; callers may CHECK on emptiness.
std::string BenchReportJson(
    const BenchRunInfo& info, const std::vector<ExperimentResult>& results,
    const obs::MetricsSnapshot& metrics,
    const std::map<std::string, obs::SpanStats>& spans);

// Convenience overload snapshotting the process-global registry + tracer.
std::string BenchReportJson(const BenchRunInfo& info,
                            const std::vector<ExperimentResult>& results);

// Writes `json` to `path` (atomically enough for bench use: truncate +
// write + close).
Status WriteBenchJson(const std::string& path, const std::string& json);

}  // namespace ishare

#endif  // ISHARE_HARNESS_JSON_EXPORT_H_
