#include "ishare/harness/overload_harness.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ishare/harness/result_compare.h"
#include "ishare/obs/obs.h"

namespace ishare {

namespace {

constexpr double kEps = 1e-9;

// Component names follow the registration convention of the executors:
// "buf:subplan_<s>" / "state:subplan_<s>" for subplan s, "base" for the
// polled base buffers. Returns the subplan id, or -1 for "base"/unknown.
int ComponentSubplan(const std::string& name) {
  size_t sep = name.rfind("subplan_");
  if (sep == std::string::npos) return -1;
  return std::stoi(name.substr(sep + 8));
}

// Result-map equality for gate 5 lives in result_compare.h
// (RowsEquivalent / ResultsEquivalent), shared with the chaos harness.

struct PassResult {
  std::unique_ptr<StreamSource> source;
  std::unique_ptr<AdaptiveExecutor> exec;
  AdaptiveRunResult run;
  std::vector<double> initial_slack;     // after BeginWindow
  std::vector<bool> initial_protective;  // after BeginWindow
};

Result<PassResult> RunPass(CostEstimator* estimator, const PaceConfig& paces,
                           const std::vector<double>& constraints,
                           const SourceFactory& make_source,
                           const AdaptivePolicy& policy,
                           const ExecOptions& exec_opts) {
  PassResult out;
  out.source = make_source();
  out.exec = std::make_unique<AdaptiveExecutor>(
      estimator, out.source.get(), constraints, policy, exec_opts);
  ISHARE_RETURN_NOT_OK(out.exec->BeginWindow(paces));
  out.initial_slack = out.exec->query_slack();
  int n = estimator->graph().num_subplans();
  out.initial_protective.resize(n);
  for (int s = 0; s < n; ++s) {
    out.initial_protective[s] = out.exec->subplan_protective(s);
  }
  ISHARE_ASSIGN_OR_RETURN(out.run, out.exec->ResumeWindow());
  return out;
}

}  // namespace

Result<OverloadReport> RunOverload(CostEstimator* estimator,
                                   const PaceConfig& paces,
                                   const std::vector<double>& abs_constraints,
                                   const SourceFactory& make_source,
                                   const OverloadOptions& options) {
  obs::ScopedSpan span("harness.overload.run");
  const SubplanGraph& graph = estimator->graph();
  int num_queries = graph.num_queries();
  OverloadReport rep;

  // ---- Pass A: unbounded (track-only) -----------------------------------
  // Shedding stays inert because the budget is unlimited; this measures
  // the working set the engine needs when nothing pushes back, and
  // materializes the reference results for gate 5.
  flow::MemoryBudget track(0);
  ExecOptions opts_a = options.exec;
  opts_a.flow.budget = &track;
  opts_a.flow.buffer_soft_limit_bytes = 0;
  ISHARE_ASSIGN_OR_RETURN(
      PassResult a, RunPass(estimator, paces, abs_constraints, make_source,
                            options.policy, opts_a));
  rep.peak_unbounded = track.peak();
  for (int c = 0; c < track.num_components(); ++c) {
    int s = ComponentSubplan(track.component_name(c));
    bool protective =
        s < 0 || (s < static_cast<int>(a.initial_protective.size()) &&
                  a.initial_protective[s]);
    if (protective) rep.protective_peak += track.component_peak(c);
  }

  // ---- Budget derivation ------------------------------------------------
  // Room for the protective working set plus a margin of the sheddable
  // one. Sums of per-component peaks over-approximate the joint peak, so
  // the budget is conservative but still well under peak_unbounded for
  // margins < 1.
  double sheddable_span = static_cast<double>(
      std::max<int64_t>(0, rep.peak_unbounded - rep.protective_peak));
  rep.budget_bytes = std::max<int64_t>(
      1, rep.protective_peak +
             static_cast<int64_t>(options.budget_margin * sheddable_span));

  // ---- Pass B: bounded, defer + drop ------------------------------------
  flow::MemoryBudget bounded(rep.budget_bytes);
  AdaptivePolicy policy_b = options.policy;
  policy_b.enable_shed_defer = true;
  policy_b.enable_shed_drop = true;
  policy_b.drop_pressure_target = options.drop_pressure_target;
  ExecOptions opts_b = options.exec;
  opts_b.flow.budget = &bounded;
  opts_b.flow.buffer_soft_limit_bytes = static_cast<int64_t>(
      options.buffer_limit_fraction * static_cast<double>(rep.budget_bytes));
  ISHARE_ASSIGN_OR_RETURN(
      PassResult b, RunPass(estimator, paces, abs_constraints, make_source,
                            policy_b, opts_b));
  rep.peak_bounded = bounded.peak();
  rep.flow = b.run.flow;
  rep.drop_log = b.run.drop_log;
  rep.arrived = b.exec->ConsumedInput();
  rep.admitted = rep.flow.admitted_tuples;
  rep.dropped = rep.flow.dropped_tuples;

  rep.queries.resize(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    OverloadQueryReport& qr = rep.queries[q];
    qr.slack = q < static_cast<int>(b.initial_slack.size())
                   ? b.initial_slack[q]
                   : 0.0;
    qr.constraint = abs_constraints[q];
    qr.final_work = b.run.run.query_final_work[q];
    qr.deadline_met = qr.final_work <= qr.constraint + kEps;
    qr.deferred_execs = q < static_cast<int>(rep.flow.query_deferred.size())
                            ? rep.flow.query_deferred[q]
                            : 0;
    qr.dropped_tuples = q < static_cast<int>(rep.flow.query_dropped.size())
                            ? rep.flow.query_dropped[q]
                            : 0;
  }

  // ---- Gates 1-4 --------------------------------------------------------
  rep.peak_within_budget = rep.peak_bounded <= rep.budget_bytes;
  if (!rep.peak_within_budget && rep.mismatch.empty()) {
    rep.mismatch = "peak " + std::to_string(rep.peak_bounded) +
                   " exceeds budget " + std::to_string(rep.budget_bytes);
  }

  rep.zero_slack_deadlines_kept = true;
  for (const OverloadQueryReport& qr : rep.queries) {
    if (qr.slack > kEps) continue;
    if (!qr.deadline_met || qr.dropped_tuples > 0) {
      rep.zero_slack_deadlines_kept = false;
      if (rep.mismatch.empty()) {
        rep.mismatch = "zero-slack query shed or missed its deadline";
      }
      break;
    }
  }

  rep.accounting_balanced = rep.arrived == rep.admitted + rep.dropped;
  if (!rep.accounting_balanced && rep.mismatch.empty()) {
    rep.mismatch = "accounting: arrived " + std::to_string(rep.arrived) +
                   " != admitted " + std::to_string(rep.admitted) +
                   " + dropped " + std::to_string(rep.dropped);
  }

  rep.shed_order_descending = true;
  for (size_t i = 1; i < rep.drop_log.size(); ++i) {
    const ShedDropEvent& prev = rep.drop_log[i - 1];
    const ShedDropEvent& cur = rep.drop_log[i];
    if (cur.step == prev.step && cur.slack > prev.slack + kEps) {
      rep.shed_order_descending = false;
      if (rep.mismatch.empty()) {
        rep.mismatch = "drop order violated at step " +
                       std::to_string(cur.step) + ": slack " +
                       std::to_string(cur.slack) + " after " +
                       std::to_string(prev.slack);
      }
      break;
    }
  }

  // ---- Pass C: bounded, defer-only — bit-exactness ----------------------
  // Deferral moves executions, never tuples: the trigger still covers all
  // remaining input, so materialized results must match the unbounded run
  // exactly. (Peak memory is NOT gated here — without drops the trigger
  // merges the whole backlog, which is exactly why drop mode exists.)
  flow::MemoryBudget defer_only(rep.budget_bytes);
  AdaptivePolicy policy_c = options.policy;
  policy_c.enable_shed_defer = true;
  policy_c.enable_shed_drop = false;
  ExecOptions opts_c = opts_b;
  opts_c.flow.budget = &defer_only;
  ISHARE_ASSIGN_OR_RETURN(
      PassResult c, RunPass(estimator, paces, abs_constraints, make_source,
                            policy_c, opts_c));
  rep.defer_only_bit_exact = true;
  for (QueryId q = 0; q < num_queries; ++q) {
    auto ref = MaterializeResult(*a.exec->query_output(q), q);
    auto got = MaterializeResult(*c.exec->query_output(q), q);
    if (!ResultsEquivalent(ref, got)) {
      rep.defer_only_bit_exact = false;
      if (rep.mismatch.empty()) {
        rep.mismatch =
            "defer-only result differs for query " + std::to_string(q);
      }
      break;
    }
  }
  if (c.run.flow.dropped_tuples != 0) {
    rep.defer_only_bit_exact = false;
    if (rep.mismatch.empty()) {
      rep.mismatch = "defer-only pass dropped tuples";
    }
  }

  obs::Registry()
      .GetGauge("harness.overload.budget_bytes")
      .Set(static_cast<double>(rep.budget_bytes));
  obs::Registry()
      .GetGauge("harness.overload.peak_bounded")
      .Set(static_cast<double>(rep.peak_bounded));
  return rep;
}

}  // namespace ishare
