// Overload-control harness (DESIGN.md §9): measures a workload's memory
// working set unbounded, derives a deliberately tight budget from it, and
// re-runs the window under that budget with slackness-aware shedding
// enabled — then checks the paper-level claims the flow layer makes:
//
//   1. peak tracked memory stays within the budget (drops + trims work);
//   2. zero-slack queries keep their final-work deadlines and are never
//      dropped from (protective subplans are exempt from shedding);
//   3. the accounting identity holds exactly:
//        arrived == admitted + dropped   (leaf tuples);
//   4. hard-budget drops land on subplans in descending-slack order;
//   5. a defer-only bounded run (drops disabled) reproduces the unbounded
//      run's materialized results — bit-exact on integer/string columns,
//      float aggregates within a 1e-9 relative tolerance (deferral
//      re-batches executions, which reorders float accumulation; the pure
//      bit-exact form is pinned by flow_test on integer-only plans).
//      Deferral moves work, never answers.
//
// Three passes over fresh clones of the same (typically perturbed, bursty)
// source:
//   A. unbounded: budget in track-only mode, measures peak_unbounded and
//      the protective working set, and materializes reference results;
//   B. bounded, defer+drop: the gates 1-4;
//   C. bounded, defer-only: gate 5.

#ifndef ISHARE_HARNESS_OVERLOAD_HARNESS_H_
#define ISHARE_HARNESS_OVERLOAD_HARNESS_H_

#include <string>
#include <vector>

#include "ishare/exec/adaptive_executor.h"
#include "ishare/harness/crash_harness.h"

namespace ishare {

struct OverloadOptions {
  // Budget = protective_peak + margin * (peak_unbounded - protective_peak):
  // always enough for the protective working set, deliberately not enough
  // for the full one. Values in (0, 1) force shedding.
  double budget_margin = 0.35;
  // Pressure at which the drop pass drains to, leaving headroom for the
  // growth of the next step's executions (AdaptivePolicy field of the
  // same name).
  double drop_pressure_target = 0.6;
  // Per-buffer soft limit as a fraction of the derived budget (0 disables
  // buffer watermarks).
  double buffer_limit_fraction = 0.5;
  AdaptivePolicy policy;  // shedding knobs are overridden per pass
  ExecOptions exec;       // flow options are overridden per pass
};

struct OverloadQueryReport {
  double slack = 0;        // initial slackness under the bounded run
  double constraint = 0;   // absolute final-work constraint L(q)
  double final_work = 0;   // measured in the bounded (defer+drop) run
  bool deadline_met = true;
  int64_t deferred_execs = 0;
  int64_t dropped_tuples = 0;
};

// Outcome of one unbounded-vs-bounded comparison. AllGatesPass() is the
// bench_overload acceptance condition.
struct OverloadReport {
  // Pass A: unbounded working set.
  int64_t peak_unbounded = 0;
  int64_t protective_peak = 0;  // base + protective subplans' components
  int64_t budget_bytes = 0;     // derived, then imposed on passes B and C

  // Pass B: bounded run, defer + drop.
  int64_t peak_bounded = 0;
  int64_t arrived = 0;   // leaf tuples the engine consumed or discarded
  int64_t admitted = 0;  // processed by executions
  int64_t dropped = 0;   // discarded with accounting
  flow::FlowStats flow;
  std::vector<ShedDropEvent> drop_log;
  std::vector<OverloadQueryReport> queries;

  // The gates.
  bool peak_within_budget = false;     // peak_bounded <= budget_bytes
  bool zero_slack_deadlines_kept = false;  // and never dropped from
  bool accounting_balanced = false;    // arrived == admitted + dropped
  bool shed_order_descending = false;  // per-step drop slacks non-increasing
  bool defer_only_bit_exact = false;   // pass C == pass A, per-query maps
  std::string mismatch;                // first failed gate, for diagnostics

  bool AllGatesPass() const {
    return peak_within_budget && zero_slack_deadlines_kept &&
           accounting_balanced && shed_order_descending &&
           defer_only_bit_exact;
  }
};

// Runs the three passes over `estimator`'s graph starting from `paces`
// with absolute final-work constraints `abs_constraints`. `make_source`
// must yield a fresh, un-advanced source per call (clones of one
// perturbed source replay identical streams, which gate 5 relies on).
Result<OverloadReport> RunOverload(CostEstimator* estimator,
                                   const PaceConfig& paces,
                                   const std::vector<double>& abs_constraints,
                                   const SourceFactory& make_source,
                                   const OverloadOptions& options);

}  // namespace ishare

#endif  // ISHARE_HARNESS_OVERLOAD_HARNESS_H_
