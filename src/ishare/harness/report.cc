#include "ishare/harness/report.h"

#include <cstdio>
#include <sstream>

#include "ishare/common/check.h"

namespace ishare {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), rows_[0].size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  // Normalize negative zero: a tiny negative value (timer jitter around
  // zero) rounds to "-0.00", which reads as a sign error in the tables.
  if (buf[0] == '-') {
    bool all_zero = true;
    for (const char* q = buf + 1; *q != '\0'; ++q) {
      if (*q != '0' && *q != '.') {
        all_zero = false;
        break;
      }
    }
    if (all_zero) return buf + 1;
  }
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) os << "  ";
      os << rows_[r][c];
      os << std::string(width[c] - rows_[r][c].size(), ' ');
    }
    os << "\n";
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < width.size(); ++c) {
        total += width[c] + (c > 0 ? 2 : 0);
      }
      os << std::string(total, '-') << "\n";
    }
  }
  return os.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

void PrintApproachComparison(const std::string& title,
                             const std::vector<ExperimentResult>& results) {
  std::printf("\n== %s ==\n", title.c_str());
  TextTable t({"approach", "total_exec_s", "total_work", "opt_s",
               "missed_mean_%", "missed_mean_s", "missed_max_%",
               "missed_max_s"});
  for (const ExperimentResult& r : results) {
    t.AddRow({ApproachName(r.approach), TextTable::Num(r.total_seconds, 3),
              TextTable::Num(r.total_work, 0),
              TextTable::Num(r.optimization_seconds, 3),
              TextTable::Num(r.MeanMissedRel(), 2),
              TextTable::Num(r.MeanMissedAbs(), 4),
              TextTable::Num(r.MaxMissedRel(), 2),
              TextTable::Num(r.MaxMissedAbs(), 4)});
  }
  t.Print();
}

}  // namespace ishare
