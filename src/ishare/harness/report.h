#ifndef ISHARE_HARNESS_REPORT_H_
#define ISHARE_HARNESS_REPORT_H_

#include <string>
#include <vector>

#include "ishare/harness/experiment.h"

namespace ishare {

// Plain-text aligned table writer for bench output. First row is the
// header; columns are padded to their widest cell.
//
// Cell contents must be ASCII: column widths are computed in bytes, so
// multi-byte UTF-8 (or terminal escape sequences) would misalign every
// row after the first non-ASCII cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  std::string ToString() const;
  void Print() const;

  // Formats a double with `prec` digits after the point. Values that
  // round to zero are rendered without a sign: "-0.00" would read as a
  // sign error in work/latency tables.
  static std::string Num(double v, int prec = 2);

 private:
  std::vector<std::vector<std::string>> rows_;
};

// The standard comparison block used by most benches: one row per
// approach with total execution time, total work, optimization time and
// missed-latency statistics (the paper's Table 1/2/3 columns).
void PrintApproachComparison(const std::string& title,
                             const std::vector<ExperimentResult>& results);

}  // namespace ishare

#endif  // ISHARE_HARNESS_REPORT_H_
