// Shared result-equivalence predicates for the robustness harnesses
// (overload, chaos). Integer and string cells must match bit-for-bit;
// float cells get a tight relative tolerance (1e-9), because deferral and
// perturbed arrival re-batch join/aggregate executions and floating-point
// sums accumulate in a different order — a real shedding or supervision
// bug changes sums by whole tuples, far outside the tolerance. The pure
// bit-exact forms of these properties are pinned by flow_test and
// chaos_test on integer-only plans.

#ifndef ISHARE_HARNESS_RESULT_COMPARE_H_
#define ISHARE_HARNESS_RESULT_COMPARE_H_

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ishare/types/value.h"

namespace ishare {

inline bool RowsEquivalent(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_string() || b[i].is_string() ||
        (a[i].is_int() && b[i].is_int())) {
      if (!(a[i] == b[i])) return false;
    } else {
      double x = a[i].AsDouble(), y = b[i].AsDouble();
      double scale = std::max({1.0, std::abs(x), std::abs(y)});
      if (std::abs(x - y) > 1e-9 * scale) return false;
    }
  }
  return true;
}

inline bool ResultsEquivalent(
    const std::unordered_map<Row, int64_t, RowHasher>& a,
    const std::unordered_map<Row, int64_t, RowHasher>& b) {
  if (a.size() != b.size()) return false;
  std::vector<std::pair<Row, int64_t>> unmatched(b.begin(), b.end());
  for (const auto& [row, count] : a) {
    bool found = false;
    for (size_t i = 0; i < unmatched.size(); ++i) {
      if (unmatched[i].second == count &&
          RowsEquivalent(row, unmatched[i].first)) {
        unmatched[i] = unmatched.back();
        unmatched.pop_back();
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace ishare

#endif  // ISHARE_HARNESS_RESULT_COMPARE_H_
