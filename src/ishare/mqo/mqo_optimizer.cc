#include "ishare/mqo/mqo_optimizer.h"

#include <functional>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ishare/cost/simulator.h"

namespace ishare {

namespace {

// Signature of one node excluding predicates/projections (those may differ
// between sharable plans) and excluding children (children identity is
// appended separately, after they have been merged).
std::string LocalSig(const PlanNode& n) {
  std::ostringstream os;
  switch (n.kind) {
    case PlanKind::kScan:
      os << "scan:" << n.table_name;
      break;
    case PlanKind::kFilter:
      os << "filter";
      break;
    case PlanKind::kProject:
      os << "project";
      break;
    case PlanKind::kJoin:
      os << "join:" << JoinTypeName(n.join_type) << ":";
      for (const auto& k : n.left_keys) os << k << ",";
      os << ":";
      for (const auto& k : n.right_keys) os << k << ",";
      break;
    case PlanKind::kAggregate:
      os << "agg:";
      for (const auto& g : n.group_by) os << g << ",";
      os << ":";
      for (const AggSpec& a : n.aggregates) {
        os << AggKindName(a.kind) << "(" << (a.arg ? a.arg->ToString() : "*")
           << ")as" << a.alias << ",";
      }
      break;
    case PlanKind::kSubplanInput:
      os << "input:" << n.input_subplan;
      break;
  }
  return os.str();
}

// A query occupies exactly one predicate slot on a shared select. When the
// same query reaches `target` twice with different effective predicates
// (e.g. Q21 reads lineitem both unfiltered and late-only), the nodes must
// not merge. Both-null and structurally equal predicates are compatible.
bool FilterPredicatesCompatible(const PlanNode& target, const PlanNode& node) {
  QuerySet common = target.queries.Intersect(node.queries);
  for (QueryId q : common.ToIds()) {
    auto ti = target.predicates.find(q);
    auto ni = node.predicates.find(q);
    ExprPtr tp = ti == target.predicates.end() ? nullptr : ti->second;
    ExprPtr np = ni == node.predicates.end() ? nullptr : ni->second;
    if (tp == nullptr && np == nullptr) continue;
    if (!Expr::Equals(tp, np)) return false;
  }
  return true;
}

// Whether `node`'s projections can be merged into `target` (no alias maps
// to two different expressions).
bool ProjectionsCompatible(const PlanNode& target, const PlanNode& node) {
  for (const NamedExpr& ne : node.projections) {
    for (const NamedExpr& te : target.projections) {
      if (te.alias == ne.alias && !Expr::Equals(te.expr, ne.expr)) {
        return false;
      }
    }
  }
  return true;
}

void MergeProjections(PlanNode* target, const PlanNode& node) {
  for (const NamedExpr& ne : node.projections) {
    bool found = false;
    for (const NamedExpr& te : target->projections) {
      if (te.alias == ne.alias) {
        found = true;
        break;
      }
    }
    if (!found) target->projections.push_back(ne);
  }
}

// Adds `node`'s per-query predicates into `target`, sharing predicate
// objects that are structurally identical so the runtime evaluates each
// distinct predicate once per tuple.
void MergePredicates(PlanNode* target, const PlanNode& node) {
  for (const auto& [q, pred] : node.predicates) {
    ExprPtr to_add = pred;
    for (const auto& [tq, tpred] : target->predicates) {
      if (Expr::Equals(tpred, pred)) {
        to_add = tpred;
        break;
      }
    }
    target->predicates[q] = to_add;
  }
}

// Recomputes output schemas over the whole DAG, children first. Needed
// because project unions can widen schemas after parents were created.
void RecomputeSchemasDag(const std::vector<QueryPlan>& roots) {
  std::unordered_set<const PlanNode*> done;
  std::function<void(const PlanNodePtr&)> visit = [&](const PlanNodePtr& n) {
    if (done.count(n.get()) > 0) return;
    for (const PlanNodePtr& c : n->children) visit(c);
    n->RecomputeSchema();
    done.insert(n.get());
  };
  for (const QueryPlan& q : roots) visit(q.root);
}

// Estimated one-batch cost of a (merged) subtree; scan leaves only.
double SubtreeBatchCost(const PlanNodePtr& subtree, const Catalog& catalog,
                        const ExecOptions& exec) {
  SimResult r = SimulateSubplan(subtree, catalog, /*pace=*/1, {}, exec);
  return r.private_total_work;
}

}  // namespace

std::vector<QueryPlan> MqoOptimizer::Merge(
    const std::vector<QueryPlan>& queries) const {
  // signature+children-identity -> merged node.
  std::map<std::string, PlanNodePtr> merged;

  std::function<PlanNodePtr(const PlanNodePtr&)> merge_node =
      [&](const PlanNodePtr& n) -> PlanNodePtr {
    std::vector<PlanNodePtr> kids;
    kids.reserve(n->children.size());
    for (const PlanNodePtr& c : n->children) kids.push_back(merge_node(c));

    std::ostringstream key;
    key << LocalSig(*n);
    for (const PlanNodePtr& k : kids) key << "#" << k.get();

    auto it = merged.find(key.str());
    if (it != merged.end()) {
      PlanNodePtr m = it->second;
      if ((n->kind == PlanKind::kProject && !ProjectionsCompatible(*m, *n)) ||
          (n->kind == PlanKind::kFilter &&
           !FilterPredicatesCompatible(*m, *n))) {
        // Conflict: this node cannot join the shared node.
      } else {
        m->queries = m->queries.Union(n->queries);
        if (n->kind == PlanKind::kFilter) MergePredicates(m.get(), *n);
        if (n->kind == PlanKind::kProject) MergeProjections(m.get(), *n);
        return m;
      }
    }
    auto fresh = std::make_shared<PlanNode>(*n);
    fresh->children = kids;
    if (it == merged.end()) merged[key.str()] = fresh;
    return fresh;
  };

  std::vector<QueryPlan> out;
  out.reserve(queries.size());
  for (const QueryPlan& q : queries) {
    out.push_back(QueryPlan{q.id, q.name, merge_node(q.root)});
  }
  RecomputeSchemasDag(out);

  if (opts_.account_materialization) {
    // Unsharing a node can newly expose its children as multi-parent, so
    // iterate to a fixpoint. Nodes judged worth sharing are remembered and
    // not re-examined.
    std::unordered_set<const PlanNode*> keep_shared;
    bool changed = true;
    while (changed) {
      changed = false;
      std::unordered_map<const PlanNode*, std::vector<PlanNode*>> parents;
      std::unordered_set<const PlanNode*> visited;
      std::function<void(const PlanNodePtr&)> walk =
          [&](const PlanNodePtr& n) {
            if (!visited.insert(n.get()).second) return;
            for (const PlanNodePtr& c : n->children) {
              parents[c.get()].push_back(n.get());
              walk(c);
            }
          };
      for (const QueryPlan& q : out) walk(q.root);

      for (auto& [node_raw, plist] : parents) {
        if (plist.size() < 2 || node_raw->kind == PlanKind::kScan) continue;
        if (keep_shared.count(node_raw) > 0) continue;
        // Find the shared_ptr through any parent.
        PlanNodePtr node;
        for (PlanNode* p : plist) {
          for (const PlanNodePtr& c : p->children) {
            if (c.get() == node_raw) node = c;
          }
          if (node != nullptr) break;
        }
        CHECK(node != nullptr);

        double shared_cost = SubtreeBatchCost(node, *catalog_, opts_.exec);
        SimResult sim = SimulateSubplan(node, *catalog_, 1, {}, opts_.exec);
        double mat_cost = sim.out_card *
                          (1.0 + static_cast<double>(plist.size())) *
                          opts_.materialization_cost_per_tuple;
        double separate_cost = 0;
        for (PlanNode* p : plist) {
          PlanNodePtr restricted = PlanNode::CloneRestricted(node, p->queries);
          separate_cost += SubtreeBatchCost(restricted, *catalog_, opts_.exec);
        }
        double benefit = separate_cost - shared_cost - mat_cost;
        if (benefit >= 0) {
          keep_shared.insert(node_raw);
          continue;
        }
        // Sharing does not pay for the materialization: give each parent a
        // private shallow copy (children stay shared).
        for (PlanNode* p : plist) {
          auto copy = std::make_shared<PlanNode>(*node);
          copy->queries = node->queries.Intersect(p->queries);
          if (copy->kind == PlanKind::kFilter) {
            copy->predicates.clear();
            for (const auto& [q, pred] : node->predicates) {
              if (p->queries.Contains(q)) copy->predicates[q] = pred;
            }
          }
          for (PlanNodePtr& c : p->children) {
            if (c.get() == node.get()) c = copy;
          }
        }
        changed = true;
        break;  // parent map is stale now; rebuild and rescan
      }
    }
    RecomputeSchemasDag(out);
  }
  return out;
}

}  // namespace ishare
