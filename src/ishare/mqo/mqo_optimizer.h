#ifndef ISHARE_MQO_MQO_OPTIMIZER_H_
#define ISHARE_MQO_MQO_OPTIMIZER_H_

#include <vector>

#include "ishare/catalog/catalog.h"
#include "ishare/exec/metrics.h"
#include "ishare/plan/plan.h"

namespace ishare {

struct MqoOptions {
  // When true, sharing a subtree is rejected if the estimated saving does
  // not cover the cost of materializing its output for multiple parents
  // (the Roy et al. [40] extension the paper adopts in Sec. 5.1).
  bool account_materialization = true;
  // Cost units charged per materialized tuple per reader (the buffer write
  // is charged once, each parent's read once more).
  double materialization_cost_per_tuple = 1.0;
  ExecOptions exec;
};

// The state-of-the-art MQO optimizer iShare builds on [17]: merges
// single-query plan trees into a shared DAG bottom-up using structural
// string signatures. Two subplans are sharable iff their structure and
// operators match exactly, except that select and project operators may
// differ: differing selects become per-query marking predicates on the
// shared Filter node, and differing projects union their expression lists
// (Sec. 2.3).
class MqoOptimizer {
 public:
  MqoOptimizer(const Catalog* catalog, MqoOptions opts = MqoOptions())
      : catalog_(catalog), opts_(opts) {
    CHECK(catalog != nullptr);
  }

  // Returns per-query roots into a freshly built merged DAG. Input plans
  // are not modified.
  std::vector<QueryPlan> Merge(const std::vector<QueryPlan>& queries) const;

 private:
  const Catalog* catalog_;
  MqoOptions opts_;
};

}  // namespace ishare

#endif  // ISHARE_MQO_MQO_OPTIMIZER_H_
