#include "ishare/obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ishare {
namespace obs {

// --------------------------------------------------------------------------
// Writer

void JsonWriter::Fail(const std::string& why) {
  if (error_.empty()) error_ = why;
}

bool JsonWriter::BeforeValue() {
  if (!error_.empty()) return false;
  if (done_) {
    Fail("value after document end");
    return false;
  }
  if (stack_.empty()) return true;  // root value
  if (stack_.back() == Frame::kObject) {
    if (!have_key_) {
      Fail("object value without a key");
      return false;
    }
    have_key_ = false;
    return true;
  }
  // Array element.
  if (!first_in_frame_.back()) out_.push_back(',');
  first_in_frame_.back() = false;
  return true;
}

void JsonWriter::BeginObject() {
  if (!BeforeValue()) return;
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
}

void JsonWriter::EndObject() {
  if (!error_.empty()) return;
  if (stack_.empty() || stack_.back() != Frame::kObject || have_key_) {
    Fail("mismatched EndObject");
    return;
  }
  out_.push_back('}');
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
}

void JsonWriter::BeginArray() {
  if (!BeforeValue()) return;
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
}

void JsonWriter::EndArray() {
  if (!error_.empty()) return;
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    Fail("mismatched EndArray");
    return;
  }
  out_.push_back(']');
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void JsonWriter::Key(const std::string& k) {
  if (!error_.empty()) return;
  if (stack_.empty() || stack_.back() != Frame::kObject || have_key_) {
    Fail("Key outside an object");
    return;
  }
  if (!first_in_frame_.back()) out_.push_back(',');
  first_in_frame_.back() = false;
  AppendEscaped(&out_, k);
  out_.push_back(':');
  have_key_ = true;
}

void JsonWriter::String(const std::string& v) {
  if (!BeforeValue()) return;
  AppendEscaped(&out_, v);
  if (stack_.empty()) done_ = true;
}

std::string JsonWriter::FormatDouble(double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, end);
}

void JsonWriter::Number(double v) {
  if (!std::isfinite(v)) {
    Fail("non-finite number rejected (NaN/Inf are not valid JSON)");
    return;
  }
  if (!BeforeValue()) return;
  out_ += FormatDouble(v);
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Int(int64_t v) {
  if (!BeforeValue()) return;
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Bool(bool v) {
  if (!BeforeValue()) return;
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Null() {
  if (!BeforeValue()) return;
  out_ += "null";
  if (stack_.empty()) done_ = true;
}

std::string JsonWriter::Take() {
  if (!stack_.empty()) Fail("unclosed object or array");
  if (!done_) Fail("empty document");
  if (!error_.empty()) return std::string();
  return std::move(out_);
}

// --------------------------------------------------------------------------
// Parser

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  void Skip() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at offset " + std::to_string(p - start);
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (p >= end || *p != '"') return Fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return Fail("truncated escape");
      char e = *p++;
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (end - p < 4) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // This writer only emits \u00xx control escapes; decode the
          // BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    if (p >= end) return Fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    Skip();
    if (p >= end) return Fail("unexpected end of input");
    char c = *p;
    if (c == '{') {
      ++p;
      out->kind = JsonValue::Kind::kObject;
      Skip();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        Skip();
        std::string key;
        if (!ParseString(&key)) return false;
        Skip();
        if (p >= end || *p != ':') return Fail("expected ':'");
        ++p;
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        Skip();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++p;
      out->kind = JsonValue::Kind::kArray;
      Skip();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->arr.push_back(std::move(v));
        Skip();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (std::strncmp(p, "true", 4) == 0 && end - p >= 4) {
      out->kind = JsonValue::Kind::kBool;
      out->b = true;
      p += 4;
      return true;
    }
    if (std::strncmp(p, "false", 5) == 0 && end - p >= 5) {
      out->kind = JsonValue::Kind::kBool;
      out->b = false;
      p += 5;
      return true;
    }
    if (std::strncmp(p, "null", 4) == 0 && end - p >= 4) {
      out->kind = JsonValue::Kind::kNull;
      p += 4;
      return true;
    }
    // Number. strtod alone is too permissive (it accepts "NaN", "inf" and
    // hex floats, none of which are JSON), so gate on the JSON number
    // grammar's first character and require a finite decimal result.
    if (c != '-' && (c < '0' || c > '9')) return Fail("bad value");
    char* num_end = nullptr;
    double v = std::strtod(p, &num_end);
    if (num_end == p || num_end > end) return Fail("bad value");
    for (const char* q = p; q < num_end; ++q) {
      if (*q == 'x' || *q == 'X' || *q == 'n' || *q == 'N') {
        return Fail("bad number");
      }
    }
    if (!std::isfinite(v)) return Fail("non-finite number");
    out->kind = JsonValue::Kind::kNumber;
    out->num = v;
    p = num_end;
    return true;
  }

  const char* start;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser ps;
  ps.p = text.data();
  ps.start = text.data();
  ps.end = text.data() + text.size();
  *out = JsonValue();
  bool ok = ps.ParseValue(out);
  if (ok) {
    ps.Skip();
    if (ps.p != ps.end) {
      ok = ps.Fail("trailing content");
    }
  }
  if (!ok && error != nullptr) *error = ps.error;
  return ok;
}

}  // namespace obs
}  // namespace ishare
