// ishare::obs — hand-rolled JSON writer and minimal parser (no external
// dependencies, DESIGN.md §7).
//
// The writer produces the versioned bench-export documents; it emits keys
// in call order (schema stability is the caller's contract), renders
// doubles with shortest round-trip formatting (std::to_chars), and
// rejects NaN/Inf: any non-finite number poisons the writer, ok() turns
// false and Take() returns an empty string. The parser exists for
// round-trip tests and tooling; it preserves object key order.

#ifndef ISHARE_OBS_JSON_H_
#define ISHARE_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ishare {
namespace obs {

// Streaming JSON builder. Usage:
//   JsonWriter w;
//   w.BeginObject(); w.Key("x"); w.Number(1.5); w.EndObject();
//   std::string doc = w.Take();
// Misuse (unbalanced Begin/End, Key outside an object, non-finite
// numbers) sets an error; ok() must be checked before using Take().
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& k);
  void String(const std::string& v);
  void Number(double v);  // rejects NaN and +/-Inf
  void Int(int64_t v);
  void Bool(bool v);
  void Null();

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // Final document; empty (and ok() false) if the document is malformed
  // or any value was rejected.
  std::string Take();

  // Shortest round-trip decimal rendering of a finite double.
  static std::string FormatDouble(double v);

 private:
  enum class Frame : uint8_t { kObject, kArray };
  void Fail(const std::string& why);
  // Comma/structure bookkeeping before a value is emitted.
  bool BeforeValue();

  std::string out_;
  std::string error_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool have_key_ = false;
  bool done_ = false;
};

// Parsed JSON value. Objects keep their key order (vector of pairs) so
// schema-stability tests can assert on it.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  // First member with this key, or nullptr (objects only).
  const JsonValue* Find(const std::string& key) const;
};

// Strict parser for the subset this repo writes (no comments, no trailing
// commas; numbers via strtod). Returns false and sets `error` on failure.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace obs
}  // namespace ishare

#endif  // ISHARE_OBS_JSON_H_
