#include "ishare/obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

namespace ishare {
namespace obs {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

bool Enabled() { return internal::On(); }

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  // Bounds must be finite and strictly increasing; the registry only
  // constructs histograms from the static helpers or test code, so this is
  // a programming-error guard, not input validation.
  for (size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      bounds_.clear();
      break;
    }
  }
  if (bounds_.empty()) bounds_ = LatencyBounds();
  counts_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double v) {
#if ISHARE_OBS_ENABLED
  if (!internal::On()) return;
  if (!std::isfinite(v)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (v < 0) v = 0;
  size_t b = std::upper_bound(bounds_.begin(), bounds_.end(), v) -
             bounds_.begin();
  // Values exactly on a bound land in that bound's bucket.
  if (b > 0 && v == bounds_[b - 1]) b -= 1;
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(sum_, v);
#else
  (void)v;
#endif
}

double Histogram::Quantile(double q) const {
  int64_t total = Count();
  if (total <= 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  double rank = q * static_cast<double>(total);
  int64_t cum = 0;
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    int64_t c = counts_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= rank) {
      double lo = b == 0 ? 0.0 : bounds_[b - 1];
      // The overflow bucket has no upper bound; report its lower edge.
      double hi = b < bounds_.size() ? bounds_[b] : lo;
      double frac = c > 0 ? (rank - static_cast<double>(cum)) /
                                static_cast<double>(c)
                          : 0.0;
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cum += c;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::ExpBounds(double lo, double factor, int n) {
  std::vector<double> b;
  b.reserve(static_cast<size_t>(std::max(0, n)));
  double v = lo;
  for (int i = 0; i < n; ++i) {
    b.push_back(v);
    v *= factor;
  }
  return b;
}

const std::vector<double>& Histogram::LatencyBounds() {
  // 1 µs .. ~67 s in powers of two (27 buckets + overflow).
  static const std::vector<double> kBounds = ExpBounds(1e-6, 2.0, 27);
  return kBounds;
}

const std::vector<double>& Histogram::RatioBounds() {
  // Relative misses: 0.1% .. ~16x in powers of two (15 buckets + overflow).
  static const std::vector<double> kBounds = ExpBounds(1e-3, 2.0, 15);
  return kBounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts.resize(h->num_buckets());
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      hs.counts[i] = h->bucket_count(i);
    }
    hs.count = h->Count();
    hs.dropped = h->Dropped();
    hs.sum = h->Sum();
    hs.p50 = h->Quantile(0.50);
    hs.p95 = h->Quantile(0.95);
    hs.p99 = h->Quantile(0.99);
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& Registry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace ishare
