// ishare::obs — metric primitives and the process-global MetricsRegistry.
//
// Counters, gauges and fixed-bucket histograms are the machine-readable
// backbone of every bench (DESIGN.md §7): per-subplan tuples processed,
// pace-optimizer search behaviour, and per-query missed-latency tails
// (the paper's Table 1 / Fig. 9–17 axes) are all recorded here and
// exported via harness/json_export.h.
//
// Contracts:
//  - Names follow `subsys.object.verb`; per-instance series append a
//    `#label` suffix (e.g. "exec.subplan.work#subplan_3").
//  - All mutators are thread-safe (relaxed atomics; registration under a
//    mutex) so the layer survives a future parallel executor.
//  - References returned by Get*() stay valid for the process lifetime;
//    Reset() is test-only and invalidates them.
//  - With ISHARE_OBS_ENABLED defined to 0 every mutator compiles to an
//    empty inline body (zero-cost no-op shims, asserted by
//    bench_obs_overhead); the registry itself still links so export code
//    works in both configurations.

#ifndef ISHARE_OBS_METRICS_REGISTRY_H_
#define ISHARE_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef ISHARE_OBS_ENABLED
#define ISHARE_OBS_ENABLED 1
#endif

namespace ishare {
namespace obs {

// Runtime switch (only meaningful when compiled in). Starts true. The
// overhead bench flips it to compare instrumented vs uninstrumented runs
// of the same binary.
bool Enabled();
void SetEnabled(bool on);

namespace internal {

extern std::atomic<bool> g_enabled;

inline bool On() {
#if ISHARE_OBS_ENABLED
  return g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

// Monotonically increasing sum. Add() is wait-free up to the CAS retry.
class Counter {
 public:
  void Add(double v = 1.0) {
#if ISHARE_OBS_ENABLED
    if (!internal::On()) return;
    internal::AtomicAdd(v_, v);
#else
    (void)v;
#endif
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Last-write-wins scalar.
class Gauge {
 public:
  void Set(double v) {
#if ISHARE_OBS_ENABLED
    if (!internal::On()) return;
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram over non-negative values. `bounds` are the
// inclusive upper bounds of the first N buckets; one implicit overflow
// bucket catches everything above the last bound. Non-finite observations
// are dropped (and counted) rather than poisoning the distribution.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Linear interpolation inside the bucket containing rank q*Count().
  // q in [0, 1]; returns 0 for an empty histogram.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  int64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return bounds_.size() + 1; }

  // Exponential bucket bounds: lo, lo*factor, ... (n values). The default
  // latency scale spans 1 µs .. ~67 s in powers of two.
  static std::vector<double> ExpBounds(double lo, double factor, int n);
  static const std::vector<double>& LatencyBounds();  // seconds
  static const std::vector<double>& RatioBounds();    // ~1e-3 .. ~16

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<double> sum_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // bounds.size() + 1 (overflow last)
  int64_t count = 0;
  int64_t dropped = 0;
  double sum = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

// Point-in-time copy of every registered metric, sorted by name (std::map
// ordering) so exports are byte-stable for a given set of values.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  // Find-or-create by name. For histograms the bounds are fixed by the
  // first registration; later callers with different bounds get the
  // existing instance.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds =
                              Histogram::LatencyBounds());

  MetricsSnapshot Snapshot() const;

  // Drops every registration. Test-only: outstanding references from
  // Get*() dangle afterwards, so never call while instrumented code holds
  // handles.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-global registry all instrumentation writes to.
MetricsRegistry& Registry();

}  // namespace obs
}  // namespace ishare

#endif  // ISHARE_OBS_METRICS_REGISTRY_H_
