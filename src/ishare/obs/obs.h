// ishare::obs — umbrella header for the observability layer (DESIGN.md §7).
//
// Instrumented code includes this single header and uses:
//   obs::Registry().GetCounter("exec.subplan.executions").Add(1);
//   obs::ScopedSpan span("opt.pace_search.run");
//   obs::GlobalTracer().Record("exec.subplan.exec", seconds);
//
// Compile-time gate: building with -DISHARE_OBS_ENABLED=0 turns every
// mutator into an inline empty body (zero-cost shims; the `noobs` CMake
// preset and CI job keep that path building). Runtime gate:
// obs::SetEnabled(false) stops recording without recompiling — used by
// bench_obs_overhead to bound the instrumented/uninstrumented delta.

#ifndef ISHARE_OBS_OBS_H_
#define ISHARE_OBS_OBS_H_

#include "ishare/obs/metrics_registry.h"
#include "ishare/obs/tracer.h"

#endif  // ISHARE_OBS_OBS_H_
