#include "ishare/obs/tracer.h"

#include <algorithm>

namespace ishare {
namespace obs {

void Tracer::Record(const char* name, double seconds) {
#if ISHARE_OBS_ENABLED
  if (!internal::On()) return;
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& s = spans_[name];
  if (s.count == 0) {
    s.min_seconds = seconds;
    s.max_seconds = seconds;
  } else {
    s.min_seconds = std::min(s.min_seconds, seconds);
    s.max_seconds = std::max(s.max_seconds, seconds);
  }
  ++s.count;
  s.total_seconds += seconds;
#else
  (void)name;
  (void)seconds;
#endif
}

void Tracer::RecordEdge(const char* parent, const char* child) {
#if ISHARE_OBS_ENABLED
  if (!internal::On()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++edges_[{parent, child}];
#else
  (void)parent;
  (void)child;
#endif
}

std::map<std::string, SpanStats> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<std::pair<std::string, std::string>, int64_t>
Tracer::SnapshotEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  edges_.clear();
}

namespace {
// Innermost active span on this thread; "" when none. A plain pointer to
// a string literal (ScopedSpan requires literal names), so propagating
// it across threads is safe.
thread_local const char* tls_current_span = "";
}  // namespace

const char* CurrentSpanName() { return tls_current_span; }

#if ISHARE_OBS_ENABLED
const char* ScopedSpan::EnterContext(const char* name) {
  const char* prev = tls_current_span;
  tls_current_span = name;
  return prev;
}

void ScopedSpan::LeaveContext(const char* saved) {
  tls_current_span = saved;
}

ScopedSpanParent::ScopedSpanParent(const char* parent)
    : saved_(tls_current_span) {
  tls_current_span = parent == nullptr ? "" : parent;
}

ScopedSpanParent::~ScopedSpanParent() { tls_current_span = saved_; }
#endif


Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace obs
}  // namespace ishare
