#include "ishare/obs/tracer.h"

#include <algorithm>

namespace ishare {
namespace obs {

void Tracer::Record(const char* name, double seconds) {
#if ISHARE_OBS_ENABLED
  if (!internal::On()) return;
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& s = spans_[name];
  if (s.count == 0) {
    s.min_seconds = seconds;
    s.max_seconds = seconds;
  } else {
    s.min_seconds = std::min(s.min_seconds, seconds);
    s.max_seconds = std::max(s.max_seconds, seconds);
  }
  ++s.count;
  s.total_seconds += seconds;
#else
  (void)name;
  (void)seconds;
#endif
}

std::map<std::string, SpanStats> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace obs
}  // namespace ishare
