// ishare::obs — span-based tracing (DESIGN.md §7).
//
// A span is one timed region of interest: a pace-optimizer greedy
// iteration, a decomposition clustering round, one subplan execution, an
// AdaptiveExecutor mid-window re-derivation. Spans are aggregated by name
// (count / total / min / max seconds) so tracing stays O(#span-names)
// memory no matter how long a bench runs; the aggregate is exported next
// to the metrics registry by harness/json_export.h.
//
// `ScopedSpan` is the RAII entry point: construction stamps the clock,
// destruction records the elapsed time. With ISHARE_OBS_ENABLED=0 it is
// an empty struct and Record() is a no-op shim.

#ifndef ISHARE_OBS_TRACER_H_
#define ISHARE_OBS_TRACER_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "ishare/obs/metrics_registry.h"

namespace ishare {
namespace obs {

struct SpanStats {
  int64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
};

class Tracer {
 public:
  // Thread-safe; aggregates into the per-name SpanStats.
  void Record(const char* name, double seconds);

  std::map<std::string, SpanStats> Snapshot() const;

  // Test-only, like MetricsRegistry::Reset().
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, SpanStats> spans_;
};

// The process-global tracer all ScopedSpans record into.
Tracer& GlobalTracer();

// RAII span timer. `name` must outlive the span (string literals only).
class ScopedSpan {
 public:
#if ISHARE_OBS_ENABLED
  explicit ScopedSpan(const char* name)
      : name_(name), active_(internal::On()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (!active_) return;
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    GlobalTracer().Record(name_, secs);
  }
#else
  explicit ScopedSpan(const char* name) { (void)name; }
#endif

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

#if ISHARE_OBS_ENABLED
 private:
  const char* name_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace obs
}  // namespace ishare

#endif  // ISHARE_OBS_TRACER_H_
