// ishare::obs — span-based tracing (DESIGN.md §7).
//
// A span is one timed region of interest: a pace-optimizer greedy
// iteration, a decomposition clustering round, one subplan execution, an
// AdaptiveExecutor mid-window re-derivation. Spans are aggregated by name
// (count / total / min / max seconds) so tracing stays O(#span-names)
// memory no matter how long a bench runs; the aggregate is exported next
// to the metrics registry by harness/json_export.h.
//
// `ScopedSpan` is the RAII entry point: construction stamps the clock,
// destruction records the elapsed time. With ISHARE_OBS_ENABLED=0 it is
// an empty struct and Record() is a no-op shim.

#ifndef ISHARE_OBS_TRACER_H_
#define ISHARE_OBS_TRACER_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "ishare/obs/metrics_registry.h"

namespace ishare {
namespace obs {

struct SpanStats {
  int64_t count = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
};

class Tracer {
 public:
  // Thread-safe; aggregates into the per-name SpanStats.
  void Record(const char* name, double seconds);

  // Thread-safe; counts one parent->child span edge. ScopedSpan calls
  // this automatically when it opens inside another span (possibly one
  // adopted across threads via ScopedSpanParent).
  void RecordEdge(const char* parent, const char* child);

  std::map<std::string, SpanStats> Snapshot() const;

  // Aggregated (parent, child) -> count edges. Diagnostic only; not part
  // of the JSON export, so golden files are unaffected.
  std::map<std::pair<std::string, std::string>, int64_t> SnapshotEdges()
      const;

  // Test-only, like MetricsRegistry::Reset().
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, SpanStats> spans_;
  std::map<std::pair<std::string, std::string>, int64_t> edges_;
};

// The process-global tracer all ScopedSpans record into.
Tracer& GlobalTracer();

// Name of the innermost ScopedSpan active on this thread ("" when none).
// Worker threads start with no context; the pool captures the
// submitter's CurrentSpanName() and re-establishes it on the worker via
// ScopedSpanParent so spans opened inside a stolen task still parent
// correctly across threads.
const char* CurrentSpanName();

// RAII: makes `parent` the current span context on this thread without
// timing anything. Used by sched::WorkerPool to propagate the
// submitting thread's span to worker threads.
class ScopedSpanParent {
 public:
#if ISHARE_OBS_ENABLED
  explicit ScopedSpanParent(const char* parent);
  ~ScopedSpanParent();
#else
  explicit ScopedSpanParent(const char* parent) { (void)parent; }
#endif

  ScopedSpanParent(const ScopedSpanParent&) = delete;
  ScopedSpanParent& operator=(const ScopedSpanParent&) = delete;

#if ISHARE_OBS_ENABLED
 private:
  const char* saved_;
#endif
};

// RAII span timer. `name` must outlive the span (string literals only).
class ScopedSpan {
 public:
#if ISHARE_OBS_ENABLED
  explicit ScopedSpan(const char* name)
      : name_(name), active_(internal::On()) {
    if (active_) {
      start_ = std::chrono::steady_clock::now();
      parent_ = EnterContext(name);
      if (parent_ != nullptr && parent_[0] != '\0') {
        GlobalTracer().RecordEdge(parent_, name);
      }
    }
  }
  ~ScopedSpan() {
    if (!active_) return;
    LeaveContext(parent_);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    GlobalTracer().Record(name_, secs);
  }
#else
  explicit ScopedSpan(const char* name) { (void)name; }
#endif

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

#if ISHARE_OBS_ENABLED
 private:
  // Sets the thread-local span context to `name`, returning the previous
  // context so the destructor can restore it.
  static const char* EnterContext(const char* name);
  static void LeaveContext(const char* saved);

  const char* name_;
  bool active_;
  const char* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace obs
}  // namespace ishare

#endif  // ISHARE_OBS_TRACER_H_
