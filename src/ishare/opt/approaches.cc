#include "ishare/opt/approaches.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "ishare/obs/obs.h"

namespace ishare {

namespace {

constexpr double kEps = 1e-9;

// Undirected connected components of the subplan graph: Share-Uniform
// assigns one pace per separate shared plan (Sec. 5.2).
std::vector<std::vector<int>> ConnectedComponents(const SubplanGraph& g) {
  int n = g.num_subplans();
  std::vector<int> comp(n, -1);
  std::vector<std::vector<int>> out;
  for (int i = 0; i < n; ++i) {
    if (comp[i] >= 0) continue;
    std::vector<int> stack{i};
    std::vector<int> members;
    comp[i] = static_cast<int>(out.size());
    while (!stack.empty()) {
      int x = stack.back();
      stack.pop_back();
      members.push_back(x);
      for (int y : g.subplan(x).children) {
        if (comp[y] < 0) {
          comp[y] = comp[i];
          stack.push_back(y);
        }
      }
      for (int y : g.subplan(x).parents) {
        if (comp[y] < 0) {
          comp[y] = comp[i];
          stack.push_back(y);
        }
      }
    }
    out.push_back(std::move(members));
  }
  return out;
}

// One pace for a whole component: the smallest pace meeting every
// constraint of the component's queries; if none does (non-incrementable
// queries), the pace minimizing the total missed final work.
void FindUniformPace(CostEstimator* est, const std::vector<double>& abs,
                     const std::vector<int>& component, int max_pace,
                     PaceConfig* paces) {
  const SubplanGraph& g = est->graph();
  QuerySet queries;
  for (int s : component) queries = queries.Union(g.subplan(s).queries);

  double best_missed = std::numeric_limits<double>::infinity();
  int best_pace = 1;
  for (int p = 1; p <= max_pace; ++p) {
    for (int s : component) (*paces)[s] = p;
    PlanCost c = est->Estimate(*paces);
    double missed = 0;
    for (QueryId q : queries.ToIds()) {
      missed += std::max(0.0, c.query_final_work[q] - abs[q]);
    }
    if (missed <= kEps) {
      best_pace = p;
      best_missed = 0;
      break;
    }
    if (missed < best_missed - kEps) {
      best_missed = missed;
      best_pace = p;
    }
  }
  for (int s : component) (*paces)[s] = best_pace;
}

}  // namespace

const char* ApproachName(Approach a) {
  switch (a) {
    case Approach::kNoShareUniform:
      return "NoShare-Uniform";
    case Approach::kNoShareNonuniform:
      return "NoShare-Nonuniform";
    case Approach::kShareUniform:
      return "Share-Uniform";
    case Approach::kIShareNoUnshare:
      return "iShare (w/o unshare)";
    case Approach::kIShare:
      return "iShare";
    case Approach::kIShareBruteForce:
      return "iShare (Brute-Force)";
  }
  return "?";
}

std::vector<double> AbsoluteConstraints(const std::vector<QueryPlan>& queries,
                                        const Catalog& catalog,
                                        const std::vector<double>& rel,
                                        ExecOptions exec) {
  int nq = 0;
  for (const QueryPlan& q : queries) nq = std::max(nq, q.id + 1);
  CHECK_EQ(static_cast<int>(rel.size()), nq);
  std::vector<double> abs(nq, std::numeric_limits<double>::infinity());
  for (const QueryPlan& q : queries) {
    abs[q.id] = rel[q.id] * EstimateStandaloneBatchWork(q, catalog, exec);
  }
  return abs;
}

OptimizedPlan OptimizePlan(Approach a, const std::vector<QueryPlan>& queries,
                           const Catalog& catalog,
                           const std::vector<double>& rel_constraints,
                           ApproachOptions opts) {
  OptimizedPlan out;
  out.approach = a;
  out.abs_constraints =
      AbsoluteConstraints(queries, catalog, rel_constraints, opts.exec);

  auto start = std::chrono::steady_clock::now();

  switch (a) {
    case Approach::kNoShareUniform: {
      out.graph = SubplanGraph::Build(queries);
      break;
    }
    case Approach::kNoShareNonuniform: {
      out.graph = SubplanGraph::Build(queries, [](const PlanNode& n) {
        return n.kind == PlanKind::kAggregate;  // cut at blocking operators
      });
      break;
    }
    case Approach::kShareUniform:
    case Approach::kIShareNoUnshare:
    case Approach::kIShare:
    case Approach::kIShareBruteForce: {
      MqoOptimizer mqo(&catalog, opts.mqo);
      std::vector<QueryPlan> merged = mqo.Merge(queries);
      out.graph = SubplanGraph::Build(merged);
      break;
    }
  }
  CHECK(out.graph.Validate().ok());

  CostEstimator est(&out.graph, &catalog, opts.exec, opts.memoized_estimator);

  if (a == Approach::kShareUniform) {
    out.paces.assign(out.graph.num_subplans(), 1);
    for (const std::vector<int>& comp : ConnectedComponents(out.graph)) {
      FindUniformPace(&est, out.abs_constraints, comp, opts.max_pace,
                      &out.paces);
    }
    out.est_cost = est.Estimate(out.paces);
  } else {
    PaceOptimizer po(&est, out.abs_constraints,
                     PaceOptimizerOptions{opts.max_pace,
                                          opts.deadline_seconds});
    PaceSearchResult r = po.FindPaceConfiguration();
    out.paces = r.paces;
    out.est_cost = r.cost;
    out.timed_out = r.timed_out;
  }
  out.memo_hits = est.memo_hits();
  out.memo_misses = est.memo_misses();
  if (out.memo_hits + out.memo_misses > 0) {
    obs::Registry().GetGauge("cost.memo.hit_rate").Set(
        static_cast<double>(out.memo_hits) /
        static_cast<double>(out.memo_hits + out.memo_misses));
  }

  if (a == Approach::kIShare || a == Approach::kIShareBruteForce) {
    DecomposerOptions dopts;
    dopts.max_pace = opts.max_pace;
    dopts.brute_force = (a == Approach::kIShareBruteForce);
    dopts.enable_partial = opts.enable_partial;
    dopts.memoized_estimator = opts.memoized_estimator;
    dopts.deadline_seconds = opts.deadline_seconds;
    Decomposer dec(&catalog, out.abs_constraints, opts.exec, dopts);
    DecomposeResult dr = dec.Optimize(out.graph, out.paces);
    out.timed_out = out.timed_out || dr.timed_out;
    out.graph = std::move(dr.graph);
    out.paces = std::move(dr.paces);
    out.est_cost = std::move(dr.cost);
    out.decompose_stats = dr.stats;
  }

  auto end = std::chrono::steady_clock::now();
  out.optimization_seconds =
      std::chrono::duration<double>(end - start).count();
  return out;
}

}  // namespace ishare
