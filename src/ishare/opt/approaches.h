// End-to-end optimizer entry point: one call runs any of the six
// approaches compared in the paper's Sec. 5 (three baselines, iShare with
// and without unsharing, and the brute-force-split ablation) and returns a
// pace-annotated shared plan ready for execution. Also converts the
// paper's relative final-work constraints (Sec. 2.1) into the absolute
// budgets the pace search operates on. All constraint/work quantities are
// in OpWork cost units (exec/metrics.h).

#ifndef ISHARE_OPT_APPROACHES_H_
#define ISHARE_OPT_APPROACHES_H_

#include <string>
#include <vector>

#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/opt/decomposition.h"

namespace ishare {

// The approaches compared throughout Sec. 5.
enum class Approach {
  kNoShareUniform,     // each query separate, one pace per query
  kNoShareNonuniform,  // each query separate, cut at blocking ops [44]
  kShareUniform,       // MQO shared plan(s) [17], one pace per plan
  kIShareNoUnshare,    // shared plan + nonuniform paces (Sec. 3)
  kIShare,             // + decomposition (Sec. 4)
  kIShareBruteForce,   // decomposition via exhaustive split search
};

const char* ApproachName(Approach a);

struct ApproachOptions {
  int max_pace = 100;  // J
  ExecOptions exec;
  MqoOptions mqo;
  // false reproduces the iShare (w/o memo) ablation of Fig. 15.
  bool memoized_estimator = true;
  // Partial decomposition (Sec. 4.3) in the iShare variants.
  bool enable_partial = true;
  // Wall-clock budget for the optimization; 0 means unlimited. Exceeding
  // it marks the plan as timed out (the DNF entries of Fig. 15).
  double deadline_seconds = 0;
};

// The output of one optimizer run, ready for execution.
struct OptimizedPlan {
  Approach approach = Approach::kIShare;
  SubplanGraph graph;
  PaceConfig paces;
  PlanCost est_cost;
  std::vector<double> abs_constraints;
  double optimization_seconds = 0;
  DecomposeStats decompose_stats;
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  bool timed_out = false;
};

// Converts relative final work constraints (Sec. 2.1) into absolute ones:
// L(q) = rel[q] * estimated cost of running q standalone in one batch.
std::vector<double> AbsoluteConstraints(const std::vector<QueryPlan>& queries,
                                        const Catalog& catalog,
                                        const std::vector<double>& rel,
                                        ExecOptions exec = ExecOptions());

// Runs the given approach end to end: plan construction (with or without
// MQO merging), pace search, and (for iShare variants) decomposition.
// `rel_constraints` is indexed by query id.
OptimizedPlan OptimizePlan(Approach a, const std::vector<QueryPlan>& queries,
                           const Catalog& catalog,
                           const std::vector<double>& rel_constraints,
                           ApproachOptions opts = ApproachOptions());

}  // namespace ishare

#endif  // ISHARE_OPT_APPROACHES_H_
