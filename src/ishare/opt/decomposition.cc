#include "ishare/opt/decomposition.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <limits>
#include <sstream>

#include "ishare/obs/obs.h"

namespace ishare {

namespace {

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

// kSubplanInput child indices in preorder (SimInput order).
void CollectInputLeaves(const PlanNodePtr& node, std::vector<int>* out) {
  if (node->kind == PlanKind::kSubplanInput) {
    out->push_back(node->input_subplan);
    return;
  }
  for (const PlanNodePtr& c : node->children) CollectInputLeaves(c, out);
}

int FindPartIndex(const std::vector<QuerySet>& parts, QuerySet subset) {
  for (size_t j = 0; j < parts.size(); ++j) {
    if (parts[j].ContainsAll(subset)) return static_cast<int>(j);
  }
  CHECK(false) << "no part contains " << subset.ToString();
  return -1;
}

void FixInputLeaves(const PlanNodePtr& node,
                    const std::vector<std::vector<QuerySet>>& parts,
                    const std::vector<std::vector<int>>& new_index,
                    QuerySet part) {
  if (node->kind == PlanKind::kSubplanInput) {
    int old_child = node->input_subplan;
    int j = FindPartIndex(parts[old_child], part);
    node->input_subplan = new_index[old_child][j];
    return;
  }
  for (const PlanNodePtr& c : node->children) {
    FixInputLeaves(c, parts, new_index, part);
  }
}

int CountInputLeafRefs(const PlanNodePtr& node, int target) {
  if (node->kind == PlanKind::kSubplanInput) {
    return node->input_subplan == target ? 1 : 0;
  }
  int n = 0;
  for (const PlanNodePtr& c : node->children) {
    n += CountInputLeafRefs(c, target);
  }
  return n;
}

// Replaces the unique kSubplanInput leaf referencing `target` in the tree
// below `node` with `replacement`.
bool ReplaceInputLeaf(const PlanNodePtr& node, int target,
                      const PlanNodePtr& replacement) {
  for (PlanNodePtr& c : node->children) {
    if (c->kind == PlanKind::kSubplanInput && c->input_subplan == target) {
      c = replacement;
      return true;
    }
    if (ReplaceInputLeaf(c, target, replacement)) return true;
  }
  return false;
}

void RemapInputLeaves(const PlanNodePtr& node, const std::vector<int>& remap) {
  if (node->kind == PlanKind::kSubplanInput) {
    CHECK_GE(remap[node->input_subplan], 0) << "leaf references removed subplan";
    node->input_subplan = remap[node->input_subplan];
    return;
  }
  for (const PlanNodePtr& c : node->children) RemapInputLeaves(c, remap);
}

// Removes subplan `x` from `g` (after its unique parent inlined its tree).
SubplanGraph RemoveSubplan(const SubplanGraph& g, int x, PaceConfig* paces) {
  std::vector<int> remap(g.num_subplans(), -1);
  SubplanGraph out;
  out.set_num_queries(g.num_queries());
  PaceConfig np;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (i == x) continue;
    remap[i] = out.AddSubplan(g.subplan(i));
    np.push_back((*paces)[i]);
  }
  for (int i = 0; i < out.num_subplans(); ++i) {
    RemapInputLeaves(out.subplan(i).root, remap);
  }
  for (QueryId q = 0; q < g.num_queries(); ++q) {
    int r = g.query_root(q);
    CHECK_NE(r, x) << "cannot remove a query root";
    out.SetQueryRoot(q, remap[r]);
  }
  out.RecomputeEdges();
  *paces = np;
  return out;
}

}  // namespace

SubplanGraph ApplySplit(const SubplanGraph& graph, int s,
                        const std::vector<QuerySet>& split,
                        const PaceConfig& old_paces, PaceConfig* init_paces) {
  int n = graph.num_subplans();
  CHECK(s >= 0 && s < n);
  CHECK_GE(split.size(), 1u);

  // 1. Induced query partition of every subplan: start with the split at s
  // and refine each subplan by its children's partitions (children-first,
  // so ancestors of s pick up the refinement transitively). This realizes
  // the recursive parent-splitting of Fig. 8.
  std::vector<std::vector<QuerySet>> parts(n);
  for (int i = 0; i < n; ++i) parts[i] = {graph.subplan(i).queries};
  parts[s] = split;
  for (int i : graph.TopoChildrenFirst()) {
    for (int c : graph.subplan(i).children) {
      std::vector<QuerySet> refined;
      for (QuerySet p : parts[i]) {
        for (QuerySet cp : parts[c]) {
          QuerySet x = p.Intersect(cp);
          if (!x.empty()) refined.push_back(x);
        }
      }
      parts[i] = std::move(refined);
    }
  }

  // 2. Materialize the new subplans (children-first so leaf targets exist).
  SubplanGraph out;
  out.set_num_queries(graph.num_queries());
  std::vector<std::vector<int>> new_index(n);
  PaceConfig ip;
  for (int i : graph.TopoChildrenFirst()) {
    new_index[i].resize(parts[i].size());
    for (size_t k = 0; k < parts[i].size(); ++k) {
      QuerySet part = parts[i][k];
      Subplan sp;
      sp.root = PlanNode::CloneRestricted(graph.subplan(i).root, part);
      FixInputLeaves(sp.root, parts, new_index, part);
      sp.queries = part;
      int idx = out.AddSubplan(std::move(sp));
      new_index[i][k] = idx;
      ip.push_back(old_paces[i]);
    }
  }

  // 3. Query roots land in the part containing the query.
  for (QueryId q = 0; q < graph.num_queries(); ++q) {
    int r = graph.query_root(q);
    if (r < 0) continue;
    int j = FindPartIndex(parts[r], QuerySet::Single(q));
    out.SetQueryRoot(q, new_index[r][j]);
  }
  out.RecomputeEdges();

  // 4. Keep the initial configuration eager-or-equal and consistent:
  // children never lag behind parents.
  for (int i : out.TopoParentsFirst()) {
    for (int c : out.subplan(i).children) {
      ip[c] = std::max(ip[c], ip[i]);
    }
  }

  // 5. Merge chains: a non-root subplan with exactly one parent and the
  // same query set is inlined into that parent (Fig. 8, right).
  bool merged = true;
  while (merged) {
    merged = false;
    for (int x = 0; x < out.num_subplans() && !merged; ++x) {
      const Subplan& sx = out.subplan(x);
      if (!sx.root_of.empty() || sx.parents.size() != 1) continue;
      int p = sx.parents[0];
      if (!(out.subplan(p).queries == sx.queries)) continue;
      if (CountInputLeafRefs(out.subplan(p).root, x) != 1) continue;
      CHECK(ReplaceInputLeaf(out.subplan(p).root, x, sx.root));
      ip[p] = std::max(ip[p], ip[x]);
      out = RemoveSubplan(out, x, &ip);
      merged = true;
    }
  }

  *init_paces = ip;
  return out;
}

Decomposer::Decomposer(const Catalog* catalog,
                       std::vector<double> abs_constraints, ExecOptions exec,
                       DecomposerOptions opts)
    : catalog_(catalog),
      constraints_(std::move(abs_constraints)),
      exec_(exec),
      opts_(opts) {
  CHECK(catalog != nullptr);
}

void Decomposer::ComputeLocalConstraints(const SubplanGraph& graph,
                                         CostEstimator* est) {
  // Per-query standalone batch denominators: the cost of running query q
  // alone in one batch, distributed over its subplans.
  int n = graph.num_subplans();
  PaceConfig ones(n, 1);
  local_constraints_.assign(n, {});
  std::vector<double> denom(graph.num_queries(), 0.0);
  std::vector<std::map<QueryId, double>> cost_sq(n);
  for (int s : graph.TopoChildrenFirst()) {
    const Subplan& sp = graph.subplan(s);
    std::vector<int> leaves;
    CollectInputLeaves(sp.root, &leaves);
    for (QueryId q : sp.queries.ToIds()) {
      std::vector<SimInput> inputs;
      for (int c : leaves) {
        const SimResult& r = est->SubplanResult(c, ones);
        SimInput in;
        in.card = r.out_card;
        in.deletes = r.out_deletes;
        in.per_query = r.out_per_query;
        in.profile = r.out_profile;
        inputs.push_back(RestrictSimInput(in, QuerySet::Single(q)));
      }
      PlanNodePtr tree =
          PlanNode::CloneRestricted(sp.root, QuerySet::Single(q));
      SimResult r = SimulateSubplan(tree, *catalog_, 1, inputs, exec_);
      cost_sq[s][q] = r.private_total_work;
      denom[q] += r.private_total_work;
    }
  }
  for (int s = 0; s < n; ++s) {
    for (const auto& [q, c] : cost_sq[s]) {
      double frac = denom[q] > 0 ? c / denom[q] : 1.0;
      local_constraints_[s][q] = constraints_[q] * frac;
    }
  }
}

Decomposer::LocalProblem Decomposer::BuildLocalProblem(
    const SubplanGraph& graph, CostEstimator* est, const PaceConfig& paces,
    int s) {
  const Subplan& sp = graph.subplan(s);
  LocalProblem prob;
  prob.queries = sp.queries.ToIds();
  prob.root = sp.root;
  std::vector<int> leaves;
  CollectInputLeaves(sp.root, &leaves);
  for (int c : leaves) {
    const SimResult& r = est->SubplanResult(c, paces);
    SimInput in;
    in.card = r.out_card;
    in.deletes = r.out_deletes;
    in.per_query = r.out_per_query;
    in.profile = r.out_profile;
    prob.inputs.push_back(std::move(in));
  }
  CHECK_LT(static_cast<size_t>(s), local_constraints_.size());
  prob.local_constraints = local_constraints_[s];
  return prob;
}

Decomposer::PartitionEval Decomposer::EvaluatePartition(
    const LocalProblem& prob, QuerySet part, int start_pace) {
  double min_s = kInf;
  for (QueryId q : part.ToIds()) {
    auto it = prob.local_constraints.find(q);
    double s = (it != prob.local_constraints.end()) ? it->second
                                                    : constraints_[q];
    min_s = std::min(min_s, s);
  }

  PlanNodePtr tree = PlanNode::CloneRestricted(prob.root, part);
  std::vector<SimInput> inputs;
  inputs.reserve(prob.inputs.size());
  for (const SimInput& in : prob.inputs) {
    inputs.push_back(RestrictSimInput(in, part));
  }

  auto simulate = [&](int pace) -> std::pair<double, double> {
    auto key = std::make_pair(part.bits() ^ Mix64(pace), pace);
    auto it = partition_memo_.find(key);
    if (it != partition_memo_.end()) {
      // Memo stores WPT; WF is re-derived only when needed (cache WF in the
      // low bits trick would be fragile — simulate() is cheap enough that
      // we cache the pair via two entries).
      auto wf_it = partition_memo_.find(std::make_pair(key.first ^ 1, pace));
      if (wf_it != partition_memo_.end()) {
        return {it->second, wf_it->second};
      }
    }
    SimResult r = SimulateSubplan(tree, *catalog_, pace, inputs, exec_);
    partition_memo_[key] = r.private_total_work;
    partition_memo_[std::make_pair(key.first ^ 1, pace)] =
        r.private_final_work;
    return {r.private_total_work, r.private_final_work};
  };

  // Selected pace R*: the laziest pace meeting the partition's lowest local
  // final work constraint. Monotonic in merges, so the search starts from
  // the merged partitions' larger selected pace (Sec. 4.1.2).
  PartitionEval ev;
  for (int pace = std::max(1, start_pace); pace <= opts_.max_pace; ++pace) {
    auto [wpt, wf] = simulate(pace);
    ev.selected_pace = pace;
    ev.partial_total_work = wpt;
    if (wf <= min_s + kEps) return ev;
  }
  return ev;  // constraint unreachable: laziest-possible at max pace
}

std::vector<QuerySet> Decomposer::FindSplit(const LocalProblem& prob,
                                            DecomposeStats* stats) {
  obs::ScopedSpan cluster_span("opt.decompose.cluster");
  if (opts_.brute_force &&
      static_cast<int>(prob.queries.size()) <= opts_.brute_force_max_queries) {
    return FindSplitBruteForce(prob, stats);
  }
  // Greedy bottom-up clustering driven by sharing benefit (Eq. 4).
  std::vector<QuerySet> parts;
  std::vector<PartitionEval> evals;
  for (QueryId q : prob.queries) {
    parts.push_back(QuerySet::Single(q));
    evals.push_back(EvaluatePartition(prob, parts.back(), 1));
    ++stats->partitions_evaluated;
  }
  while (parts.size() > 1) {
    double best_benefit = 0;
    int bi = -1, bj = -1;
    PartitionEval best_eval;
    QuerySet best_part;
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t j = i + 1; j < parts.size(); ++j) {
        QuerySet merged = parts[i].Union(parts[j]);
        int start =
            std::max(evals[i].selected_pace, evals[j].selected_pace);
        PartitionEval ev = EvaluatePartition(prob, merged, start);
        ++stats->partitions_evaluated;
        double benefit = evals[i].partial_total_work +
                         evals[j].partial_total_work -
                         ev.partial_total_work;
        if (benefit > best_benefit + kEps) {
          best_benefit = benefit;
          bi = static_cast<int>(i);
          bj = static_cast<int>(j);
          best_eval = ev;
          best_part = merged;
        }
      }
    }
    if (bi < 0) break;  // no positive sharing benefit left
    parts[bi] = best_part;
    evals[bi] = best_eval;
    parts.erase(parts.begin() + bj);
    evals.erase(evals.begin() + bj);
  }
  return parts;
}

std::vector<QuerySet> Decomposer::FindSplitBruteForce(const LocalProblem& prob,
                                                      DecomposeStats* stats) {
  int m = static_cast<int>(prob.queries.size());
  std::vector<QuerySet> best;
  double best_cost = kInf;
  // Enumerate set partitions via restricted growth strings.
  std::vector<int> assign(m, 0);
  std::function<void(int, int)> rec = [&](int i, int max_block) {
    if (i == m) {
      std::vector<QuerySet> parts(max_block);
      for (int k = 0; k < m; ++k) parts[assign[k]].Add(prob.queries[k]);
      double total = 0;
      for (QuerySet p : parts) {
        total += EvaluatePartition(prob, p, 1).partial_total_work;
        ++stats->partitions_evaluated;
      }
      if (total < best_cost) {
        best_cost = total;
        best = parts;
      }
      return;
    }
    for (int b = 0; b <= max_block; ++b) {
      assign[i] = b;
      rec(i + 1, std::max(max_block, b + 1));
    }
  };
  rec(0, 0);
  return best;
}

namespace {

// Cuts subplan `s` at the BFS prefix of `prefix_len` operators (partial
// decomposition, Sec. 4.3): the prefix stays as the root part; each
// dangling subtree becomes a separate child subplan with the same query
// set. Returns the new graph and the root part's index.
SubplanGraph CutSubplan(const SubplanGraph& g, int s, int prefix_len,
                        const PaceConfig& old_paces, PaceConfig* init_paces,
                        int* root_part_index) {
  const Subplan& sp = g.subplan(s);
  PlanNodePtr root = PlanNode::CloneRestricted(sp.root, sp.queries);

  // BFS order over operators (kSubplanInput leaves are not operators).
  std::vector<PlanNodePtr> bfs;
  std::deque<PlanNodePtr> queue{root};
  while (!queue.empty()) {
    PlanNodePtr n = queue.front();
    queue.pop_front();
    if (n->kind == PlanKind::kSubplanInput) continue;
    bfs.push_back(n);
    for (const PlanNodePtr& c : n->children) queue.push_back(c);
  }
  CHECK(prefix_len >= 1 && prefix_len < static_cast<int>(bfs.size()));
  std::set<const PlanNode*> prefix;
  for (int i = 0; i < prefix_len; ++i) prefix.insert(bfs[i].get());

  SubplanGraph out;
  out.set_num_queries(g.num_queries());
  PaceConfig ip;
  // Copy all existing subplans (trees shared; only the new root tree is a
  // fresh clone). Indices are preserved for them.
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (i == s) {
      Subplan placeholder;  // filled below once child parts exist
      out.AddSubplan(placeholder);
      ip.push_back(old_paces[i]);
      continue;
    }
    out.AddSubplan(g.subplan(i));
    ip.push_back(old_paces[i]);
  }

  // Detach dangling subtrees into child subplans.
  std::function<void(const PlanNodePtr&)> detach = [&](const PlanNodePtr& n) {
    if (n->kind == PlanKind::kSubplanInput) return;
    for (PlanNodePtr& c : n->children) {
      if (c->kind == PlanKind::kSubplanInput) continue;
      if (prefix.count(c.get()) > 0) {
        detach(c);
        continue;
      }
      Schema child_schema = c->output_schema;
      Subplan child_sp;
      child_sp.root = c;
      child_sp.queries = sp.queries;
      int idx = out.AddSubplan(std::move(child_sp));
      ip.push_back(old_paces[s]);
      c = PlanNode::MakeSubplanInput(idx, std::move(child_schema),
                                     sp.queries);
    }
  };
  detach(root);

  Subplan root_sp;
  root_sp.root = root;
  root_sp.queries = sp.queries;
  *out.mutable_subplan(s) = std::move(root_sp);

  for (QueryId q = 0; q < g.num_queries(); ++q) {
    int r = g.query_root(q);
    if (r >= 0) out.SetQueryRoot(q, r);
  }
  out.RecomputeEdges();
  *init_paces = ip;
  *root_part_index = s;
  return out;
}

}  // namespace

DecomposeResult Decomposer::Optimize(const SubplanGraph& graph,
                                     const PaceConfig& paces) {
  obs::ScopedSpan opt_span("opt.decompose.run");
  auto start_time = std::chrono::steady_clock::now();
  auto deadline_hit = [&]() {
    if (opts_.deadline_seconds <= 0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time)
               .count() > opts_.deadline_seconds;
  };
  auto cur_graph = std::make_unique<SubplanGraph>(graph);
  auto est = std::make_unique<CostEstimator>(cur_graph.get(), catalog_, exec_,
                                             opts_.memoized_estimator);
  DecomposeResult res;
  res.paces = paces;
  res.cost = est->Estimate(paces);
  ComputeLocalConstraints(*cur_graph, est.get());

  std::set<std::string> tried;
  auto subplan_key = [](const Subplan& sp, const char* tag) {
    std::ostringstream os;
    os << tag << sp.queries.bits() << "|" << sp.root->FullSignature();
    return os.str();
  };

  int rounds_run = 0;
  for (int round = 0; round < opts_.max_rounds; ++round) {
    obs::ScopedSpan round_span("opt.decompose.round");
    ++rounds_run;
    bool adopted = false;
    if (deadline_hit()) {
      res.timed_out = true;
      break;
    }
    for (int s : cur_graph->TopoParentsFirst()) {
      if (deadline_hit()) {
        res.timed_out = true;
        break;
      }
      const Subplan& sp = cur_graph->subplan(s);
      if (sp.queries.size() < 2) continue;

      // --- Full-subplan decomposition ---
      std::string key = subplan_key(sp, "full:");
      if (tried.insert(key).second) {
        ++res.stats.splits_considered;
        partition_memo_.clear();
        LocalProblem prob =
            BuildLocalProblem(*cur_graph, est.get(), res.paces, s);
        std::vector<QuerySet> split = FindSplit(prob, &res.stats);
        if (split.size() > 1) {
          PaceConfig init;
          SubplanGraph ng = ApplySplit(*cur_graph, s, split, res.paces, &init);
          CHECK(ng.Validate().ok()) << ng.ToString();
          auto ng_holder = std::make_unique<SubplanGraph>(std::move(ng));
          auto nest = std::make_unique<CostEstimator>(
              ng_holder.get(), catalog_, exec_, opts_.memoized_estimator);
          PaceOptimizer po(nest.get(), constraints_,
                           PaceOptimizerOptions{opts_.max_pace});
          PaceSearchResult r = po.RefineDecreasing(init);
          if (r.cost.total_work < res.cost.total_work - kEps) {
            cur_graph = std::move(ng_holder);
            est = std::move(nest);
            res.paces = r.paces;
            res.cost = r.cost;
            ++res.stats.splits_adopted;
            ComputeLocalConstraints(*cur_graph, est.get());
            adopted = true;
            break;
          }
        }
      }

      // --- Partial decomposition (Sec. 4.3) ---
      if (!opts_.enable_partial) continue;
      int ops = CountOperators(sp.root);
      if (ops < 2) continue;
      bool partial_adopted = false;
      for (int len = 1; len < ops && !partial_adopted; ++len) {
        std::string pkey =
            subplan_key(sp, ("part" + std::to_string(len) + ":").c_str());
        if (!tried.insert(pkey).second) continue;
        ++res.stats.splits_considered;
        PaceConfig cut_init;
        int root_part = -1;
        SubplanGraph cut = CutSubplan(*cur_graph, s, len, res.paces,
                                      &cut_init, &root_part);
        if (cut.Validate().ok() == false) continue;
        auto cut_holder = std::make_unique<SubplanGraph>(std::move(cut));
        auto cut_est = std::make_unique<CostEstimator>(
            cut_holder.get(), catalog_, exec_, opts_.memoized_estimator);
        // Local constraints for the cut graph.
        ComputeLocalConstraints(*cut_holder, cut_est.get());
        partition_memo_.clear();
        LocalProblem prob = BuildLocalProblem(*cut_holder, cut_est.get(),
                                              cut_init, root_part);
        std::vector<QuerySet> split = FindSplit(prob, &res.stats);
        if (split.size() <= 1) continue;
        PaceConfig init;
        SubplanGraph ng =
            ApplySplit(*cut_holder, root_part, split, cut_init, &init);
        CHECK(ng.Validate().ok()) << ng.ToString();
        auto ng_holder = std::make_unique<SubplanGraph>(std::move(ng));
        auto nest = std::make_unique<CostEstimator>(
            ng_holder.get(), catalog_, exec_, opts_.memoized_estimator);
        PaceOptimizer po(nest.get(), constraints_,
                         PaceOptimizerOptions{opts_.max_pace});
        PaceSearchResult r = po.RefineDecreasing(init);
        if (r.cost.total_work < res.cost.total_work - kEps) {
          cur_graph = std::move(ng_holder);
          est = std::move(nest);
          res.paces = r.paces;
          res.cost = r.cost;
          ++res.stats.splits_adopted;
          ++res.stats.partial_splits_adopted;
          ComputeLocalConstraints(*cur_graph, est.get());
          partial_adopted = true;
          adopted = true;
        }
      }
      if (adopted) break;
    }
    if (!adopted) break;
  }

  obs::Registry().GetCounter("opt.decompose.rounds").Add(rounds_run);
  obs::Registry()
      .GetCounter("opt.decompose.splits_considered")
      .Add(res.stats.splits_considered);
  obs::Registry()
      .GetCounter("opt.decompose.splits_adopted")
      .Add(res.stats.splits_adopted);
  obs::Registry()
      .GetCounter("opt.decompose.partitions_evaluated")
      .Add(static_cast<double>(res.stats.partitions_evaluated));

  // Re-derive local constraints for the caller? Not needed; return plan.
  res.graph = std::move(*cur_graph);
  return res;
}

}  // namespace ishare
