// Decomposition ("unsharing") of over-shared subplans — paper Sec. 4.
// Splits a shared subplan into lazier per-query-group clones when the
// sharing benefit (Eq. 4) is negative: greedy bottom-up clustering of the
// sharing queries under local final work constraints S(s, q), plan repair
// (subsume + merge), then a decreasing pace refinement. Each Optimize()
// call emits opt.decompose.* spans and counters.

#ifndef ISHARE_OPT_DECOMPOSITION_H_
#define ISHARE_OPT_DECOMPOSITION_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ishare/opt/pace_optimizer.h"

namespace ishare {

struct DecomposerOptions {
  int max_pace = 100;
  // Exhaustive enumeration of all query-set partitions instead of the
  // greedy clustering (the iShare (Brute-Force) variant of Sec. 5.4/5.5).
  bool brute_force = false;
  // Safety valve for brute force: fall back to clustering beyond this many
  // queries (Bell numbers explode).
  int brute_force_max_queries = 9;
  // Also consider splitting a BFS-expanded subtree of each subplan rather
  // than only the subplan as a whole (partial decomposition, Sec. 4.3).
  bool enable_partial = true;
  // Upper bound on adopted rewrites (each strictly lowers total work).
  int max_rounds = 32;
  // Forwarded to the cost estimators (false = Fig. 15 no-memo ablation).
  bool memoized_estimator = true;
  // Wall-clock budget; 0 means unlimited.
  double deadline_seconds = 0;
};

// Statistics about one Optimize() call, for experiments.
struct DecomposeStats {
  int splits_considered = 0;
  int splits_adopted = 0;
  int partial_splits_adopted = 0;
  int64_t partitions_evaluated = 0;  // clustering/brute-force candidates
};

struct DecomposeResult {
  SubplanGraph graph;
  PaceConfig paces;
  PlanCost cost;
  DecomposeStats stats;
  bool timed_out = false;
};

// Implements Sec. 4: decides, per shared subplan, whether "unsharing" it
// into several lazier subplans reduces total work, using the sharing
// benefit metric (Eq. 4) inside a greedy bottom-up clustering of the
// sharing queries, then regenerates the plan (subsume-repair + merge) and
// re-derives paces with the decreasing greedy pass.
class Decomposer {
 public:
  Decomposer(const Catalog* catalog, std::vector<double> abs_constraints,
             ExecOptions exec = ExecOptions(),
             DecomposerOptions opts = DecomposerOptions());

  // Applies decomposition to the full plan (Sec. 4.4). `graph`/`paces` are
  // the output of the nonuniform pace search; returns the (possibly
  // rewritten) plan with its pace configuration and estimated cost.
  DecomposeResult Optimize(const SubplanGraph& graph, const PaceConfig& paces);

 private:
  struct LocalProblem {
    std::vector<QueryId> queries;
    std::vector<SimInput> inputs;          // subplan inputs under current P
    std::map<QueryId, double> local_constraints;  // S_j
    PlanNodePtr root;                      // subplan tree to split
  };

  // Local split search (Sec. 4.1): returns a partition of the subplan's
  // queries; size 1 means "keep shared".
  std::vector<QuerySet> FindSplit(const LocalProblem& prob,
                                  DecomposeStats* stats);
  std::vector<QuerySet> FindSplitBruteForce(const LocalProblem& prob,
                                            DecomposeStats* stats);

  // Partial total work of a partition under its selected pace; memoized.
  struct PartitionEval {
    int selected_pace = 1;
    double partial_total_work = 0;
  };
  PartitionEval EvaluatePartition(const LocalProblem& prob, QuerySet part,
                                  int start_pace);

  // Builds the local problem for subplan `s` of `graph` under paces `P`.
  LocalProblem BuildLocalProblem(const SubplanGraph& graph,
                                 CostEstimator* est, const PaceConfig& paces,
                                 int s);

  // Pre-computes local final work constraints S(s, q) for every subplan and
  // query of `graph` (Sec. 4.1.1): each query's absolute constraint is
  // scaled by the fraction of the query's standalone batch work performed
  // by the subplan's operators.
  void ComputeLocalConstraints(const SubplanGraph& graph, CostEstimator* est);

  const Catalog* catalog_;
  std::vector<double> constraints_;
  ExecOptions exec_;
  DecomposerOptions opts_;

  // S(s, q), rebuilt for each adopted graph.
  std::vector<std::map<QueryId, double>> local_constraints_;
  // Memo for EvaluatePartition, cleared per local problem.
  std::map<std::pair<uint64_t, int>, double> partition_memo_;
};

// Applies a split of subplan `s` into `split` (a partition of its query
// set) to `graph`: clones every subplan restricted to the induced query
// partitions, repairs the subsume requirement by splitting ancestors, and
// merges chains left with a single parent (Sec. 4.2). `old_paces` seeds
// `init_paces` (split parts inherit the original subplan's pace; merged
// subplans take the larger pace). Exposed for testing.
SubplanGraph ApplySplit(const SubplanGraph& graph, int s,
                        const std::vector<QuerySet>& split,
                        const PaceConfig& old_paces, PaceConfig* init_paces);

}  // namespace ishare

#endif  // ISHARE_OPT_DECOMPOSITION_H_
