#include "ishare/opt/pace_optimizer.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "ishare/obs/obs.h"

namespace ishare {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

double PaceBenefit(const PlanCost& eager, const PlanCost& lazy,
                   const std::vector<double>& constraints) {
  CHECK_EQ(eager.query_final_work.size(), lazy.query_final_work.size());
  CHECK_EQ(eager.query_final_work.size(), constraints.size());
  double benefit = 0;
  for (size_t q = 0; q < constraints.size(); ++q) {
    // C'_F(P_A, q) = max(L(q), C_F(P_A, q)): reductions below the
    // constraint yield no additional benefit.
    double bounded_eager =
        std::max(constraints[q], eager.query_final_work[q]);
    benefit += std::max(0.0, lazy.query_final_work[q] - bounded_eager);
  }
  return benefit;
}

double Incrementability(const PlanCost& eager, const PlanCost& lazy,
                        const std::vector<double>& constraints) {
  double benefit = PaceBenefit(eager, lazy, constraints);
  double extra = eager.total_work - lazy.total_work;
  if (extra <= kEps) return benefit > 0 ? kInf : 0.0;
  return benefit / extra;
}

PaceOptimizer::PaceOptimizer(CostEstimator* estimator,
                             std::vector<double> constraints,
                             PaceOptimizerOptions opts)
    : estimator_(estimator),
      constraints_(std::move(constraints)),
      opts_(opts) {
  CHECK(estimator != nullptr);
  CHECK_EQ(static_cast<int>(constraints_.size()),
           estimator->graph().num_queries());
  CHECK_GE(opts_.max_pace, 1);
}

bool PaceOptimizer::ConstraintsMet(const PlanCost& cost) const {
  for (size_t q = 0; q < constraints_.size(); ++q) {
    if (cost.query_final_work[q] > constraints_[q] + kEps) return false;
  }
  return true;
}

PaceSearchResult PaceOptimizer::FindPaceConfiguration(
    const PaceConfig* warm_start) {
  obs::ScopedSpan search_span("opt.pace_search.run");
  const SubplanGraph& g = estimator_->graph();
  int n = g.num_subplans();
  PaceSearchResult res;
  if (warm_start != nullptr) {
    CHECK_EQ(static_cast<int>(warm_start->size()), n);
    res.paces = *warm_start;
  } else {
    res.paces.assign(n, 1);
  }
  res.cost = estimator_->Estimate(res.paces);
  auto start = std::chrono::steady_clock::now();

  while (true) {
    if (opts_.deadline_seconds > 0) {
      double elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (elapsed > opts_.deadline_seconds) {
        res.timed_out = true;
        break;
      }
    }
    if (ConstraintsMet(res.cost)) break;
    bool all_max = true;
    for (int p : res.paces) {
      if (p < opts_.max_pace) all_max = false;
    }
    if (all_max) break;

    obs::ScopedSpan iter_span("opt.pace_search.iterate");
    int best = -1;
    double best_inc = -1;
    double best_extra = kInf;
    PlanCost best_cost;
    for (int i = 0; i < n; ++i) {
      if (res.paces[i] >= opts_.max_pace) continue;
      // Raising subplan i's pace must keep parent <= child for i's own
      // children (i is their parent).
      bool ok = true;
      for (int c : g.subplan(i).children) {
        if (res.paces[c] < res.paces[i] + 1) ok = false;
      }
      if (!ok) continue;
      PaceConfig cand = res.paces;
      cand[i] += 1;
      PlanCost cc = estimator_->Estimate(cand);
      double inc = Incrementability(cc, res.cost, constraints_);
      double extra = cc.total_work - res.cost.total_work;
      if (inc > best_inc + kEps ||
          (std::abs(inc - best_inc) <= kEps && extra < best_extra)) {
        best = i;
        best_inc = inc;
        best_extra = extra;
        best_cost = cc;
      }
    }
    // No candidate, or nothing reduces any missed final work: raising paces
    // further only spends total work without progress, so stop.
    if (best < 0 || best_inc <= 0) break;
    res.paces[best] += 1;
    res.cost = std::move(best_cost);
    ++res.iterations;
    obs::Registry().GetCounter("opt.pace_search.iterations").Add(1);
  }
  return res;
}

PaceSearchResult PaceOptimizer::RefineDecreasing(const PaceConfig& initial) {
  obs::ScopedSpan refine_span("opt.pace_refine.run");
  const SubplanGraph& g = estimator_->graph();
  int n = g.num_subplans();
  CHECK_EQ(static_cast<int>(initial.size()), n);
  PaceSearchResult res;
  res.paces = initial;
  res.cost = estimator_->Estimate(res.paces);

  while (true) {
    int best = -1;
    double best_inc = kInf;
    PlanCost best_cost;
    for (int i = 0; i < n; ++i) {
      if (res.paces[i] <= 1) continue;
      // Lowering subplan i's pace must keep every parent's pace <= it.
      bool ok = true;
      for (int p : g.subplan(i).parents) {
        if (res.paces[p] > res.paces[i] - 1) ok = false;
      }
      if (!ok) continue;
      PaceConfig cand = res.paces;
      cand[i] -= 1;
      PlanCost cc = estimator_->Estimate(cand);
      if (cc.total_work >= res.cost.total_work - kEps) continue;  // no gain
      // Feasibility: no query may become (more) violated than it is now.
      bool feasible = true;
      for (size_t q = 0; q < constraints_.size(); ++q) {
        double limit = std::max(constraints_[q],
                                res.cost.query_final_work[q] + kEps);
        if (cc.query_final_work[q] > limit + kEps) feasible = false;
      }
      if (!feasible) continue;
      // res.cost is the eager side, cand the lazy side; pick the subplan
      // whose eagerness is least justified (lowest incrementability).
      double inc = Incrementability(res.cost, cc, constraints_);
      if (inc < best_inc) {
        best = i;
        best_inc = inc;
        best_cost = cc;
      }
    }
    if (best < 0) break;
    res.paces[best] -= 1;
    res.cost = std::move(best_cost);
    ++res.iterations;
    obs::Registry().GetCounter("opt.pace_refine.iterations").Add(1);
  }
  return res;
}

std::vector<double> QuerySlackFractions(const PlanCost& cost,
                                        const std::vector<double>& constraints,
                                        double drift_ratio) {
  size_t n = std::min(cost.query_final_work.size(), constraints.size());
  std::vector<double> slack(constraints.size(), 0.0);
  for (size_t q = 0; q < n; ++q) {
    double l = constraints[q];
    if (l <= 0) continue;  // no headroom by definition
    double predicted = drift_ratio * cost.query_final_work[q];
    double s = (l - predicted) / l;
    slack[q] = std::min(std::max(s, 0.0), 1.0);
  }
  return slack;
}

}  // namespace ishare
