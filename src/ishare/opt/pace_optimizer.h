// Greedy pace-configuration search over the shared plan (paper Sec. 3.2).
// Incrementability (Eq. 2) — missed-final-work reduction (Eq. 1) per unit
// of extra total work — ranks which subplan's pace to raise next; paces
// always respect parent <= child. Each search emits opt.pace_search.*
// spans/counters so reproduction runs can audit convergence behaviour.

#ifndef ISHARE_OPT_PACE_OPTIMIZER_H_
#define ISHARE_OPT_PACE_OPTIMIZER_H_

#include <vector>

#include "ishare/cost/estimator.h"

namespace ishare {

// Eq. 1: the benefit of the eagerer configuration (cost `eager`) over the
// lazier one (cost `lazy`) is the reduction in *missed* final work with
// respect to the per-query constraints L(q).
double PaceBenefit(const PlanCost& eager, const PlanCost& lazy,
                   const std::vector<double>& constraints);

// Eq. 2: iShare's incrementability — benefit per unit of extra total work.
// Returns +infinity when the eager configuration is both beneficial and no
// more expensive.
double Incrementability(const PlanCost& eager, const PlanCost& lazy,
                        const std::vector<double>& constraints);

// Time slackness per query (DESIGN.md §9): the fractional headroom of
// the predicted final work under the query's absolute final-work
// constraint L(q),
//   slack(q) = clamp((L(q) - drift_ratio * C_F(P, q)) / L(q), 0, 1).
// `drift_ratio` scales predictions by the measured/estimated work ratio
// the adaptive runtime maintains (1.0 when no drift is observed). A
// query at or over its constraint has slack 0; a query whose predicted
// final work is negligible approaches slack 1. A non-positive constraint
// means "no headroom ever" and yields slack 0 — such queries must never
// be shed against. This is the ranking signal of the slackness-aware
// shedding policy (flow::ShedOrder).
std::vector<double> QuerySlackFractions(const PlanCost& cost,
                                        const std::vector<double>& constraints,
                                        double drift_ratio);

struct PaceOptimizerOptions {
  int max_pace = 100;  // J
  // Wall-clock budget for one search; 0 means unlimited. Searches that
  // exceed it stop early and set PaceSearchResult::timed_out (used to mark
  // DNF entries in the Fig. 15 overhead experiment).
  double deadline_seconds = 0;
};

struct PaceSearchResult {
  PaceConfig paces;
  PlanCost cost;
  int iterations = 0;
  bool timed_out = false;
};

// Greedy pace-configuration search (Sec. 3.2). Both directions respect the
// engine requirement that a parent subplan's pace never exceeds any of its
// children's paces.
class PaceOptimizer {
 public:
  // `constraints` are absolute final work constraints indexed by query id.
  PaceOptimizer(CostEstimator* estimator, std::vector<double> constraints,
                PaceOptimizerOptions opts = PaceOptimizerOptions());

  // Starts at P_1 (batch execution everywhere) and repeatedly raises the
  // pace of the subplan with the highest incrementability until every
  // query meets its constraint, every pace reaches max_pace, or no single
  // increment reduces any missed final work.
  //
  // With `warm_start` set, the search begins from that configuration
  // instead of P_1 — the adaptive runtime re-derives paces mid-window
  // starting from the schedule already in flight.
  PaceSearchResult FindPaceConfiguration(
      const PaceConfig* warm_start = nullptr);

  // Post-decomposition refinement (Sec. 4.2): starts from `initial` and
  // repeatedly lowers the pace of the subplan with the *lowest*
  // incrementability, as long as no query's constraint becomes (more)
  // violated than it already is.
  PaceSearchResult RefineDecreasing(const PaceConfig& initial);

 private:
  bool ConstraintsMet(const PlanCost& cost) const;

  CostEstimator* estimator_;
  std::vector<double> constraints_;
  PaceOptimizerOptions opts_;
};

}  // namespace ishare

#endif  // ISHARE_OPT_PACE_OPTIMIZER_H_
