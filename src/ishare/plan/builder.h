#ifndef ISHARE_PLAN_BUILDER_H_
#define ISHARE_PLAN_BUILDER_H_

#include <map>
#include <string>
#include <vector>

#include "ishare/plan/plan.h"

namespace ishare {

// Convenience builder for single-query logical plans. All nodes are tagged
// with the builder's query id.
//
// Convention used throughout the workload: every scan is wrapped in a
// Filter (with a null, i.e. always-true, predicate when the query does not
// restrict that table). This canonical shape maximizes the structural
// sharing the MQO optimizer can discover, since filter predicates are
// excluded from structural signatures.
class PlanBuilder {
 public:
  PlanBuilder(const Catalog* catalog, QueryId query)
      : catalog_(catalog), query_(query) {
    CHECK(catalog != nullptr);
  }

  QueryId query() const { return query_; }

  PlanNodePtr Scan(const std::string& table) const {
    return PlanNode::MakeScan(*catalog_, table, QuerySet::Single(query_));
  }

  // Filter(Scan(table)); pred may be null for "no restriction".
  PlanNodePtr ScanFiltered(const std::string& table, ExprPtr pred) const {
    return Filter(Scan(table), std::move(pred));
  }

  PlanNodePtr Filter(PlanNodePtr child, ExprPtr pred) const {
    std::map<QueryId, ExprPtr> preds;
    if (pred != nullptr) preds[query_] = std::move(pred);
    return PlanNode::MakeFilter(std::move(child), std::move(preds),
                                QuerySet::Single(query_));
  }

  PlanNodePtr Project(PlanNodePtr child,
                      std::vector<NamedExpr> projections) const {
    return PlanNode::MakeProject(std::move(child), std::move(projections),
                                 QuerySet::Single(query_));
  }

  PlanNodePtr Join(PlanNodePtr left, PlanNodePtr right,
                   std::vector<std::string> left_keys,
                   std::vector<std::string> right_keys,
                   JoinType type = JoinType::kInner) const {
    return PlanNode::MakeJoin(std::move(left), std::move(right),
                              std::move(left_keys), std::move(right_keys),
                              type, QuerySet::Single(query_));
  }

  PlanNodePtr Aggregate(PlanNodePtr child, std::vector<std::string> group_by,
                        std::vector<AggSpec> aggregates) const {
    return PlanNode::MakeAggregate(std::move(child), std::move(group_by),
                                   std::move(aggregates),
                                   QuerySet::Single(query_));
  }

 private:
  const Catalog* catalog_;
  QueryId query_;
};

}  // namespace ishare

#endif  // ISHARE_PLAN_BUILDER_H_
