#include "ishare/plan/explain.h"

#include <functional>
#include <sstream>

namespace ishare {

namespace {

// Escapes a label for DOT output.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string ShortLabel(const PlanNode& n) {
  std::ostringstream os;
  switch (n.kind) {
    case PlanKind::kScan:
      os << "Scan " << n.table_name;
      break;
    case PlanKind::kFilter: {
      os << "σ";
      if (n.predicates.empty()) {
        os << " (pass)";
      } else {
        for (const auto& [q, pred] : n.predicates) {
          os << "\nq" << q << ": " << (pred ? pred->ToString() : "true");
        }
      }
      break;
    }
    case PlanKind::kProject:
      os << "π (" << n.projections.size() << " exprs)";
      break;
    case PlanKind::kJoin:
      os << "⋈ " << JoinTypeName(n.join_type);
      for (size_t i = 0; i < n.left_keys.size(); ++i) {
        os << "\n" << n.left_keys[i] << "=" << n.right_keys[i];
      }
      break;
    case PlanKind::kAggregate: {
      os << "γ";
      for (const auto& g : n.group_by) os << " " << g;
      for (const AggSpec& a : n.aggregates) {
        os << "\n" << AggKindName(a.kind) << "→" << a.alias;
      }
      break;
    }
    case PlanKind::kSubplanInput:
      os << "buffer #" << n.input_subplan;
      break;
  }
  return os.str();
}

}  // namespace

std::string ToDot(const SubplanGraph& graph, const std::vector<int>& paces) {
  std::ostringstream os;
  os << "digraph shared_plan {\n";
  os << "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  int next_id = 0;

  for (int s = 0; s < graph.num_subplans(); ++s) {
    const Subplan& sp = graph.subplan(s);
    os << "  subgraph cluster_" << s << " {\n";
    os << "    label=\"subplan " << s << " " << Escape(sp.queries.ToString());
    if (s < static_cast<int>(paces.size())) os << " pace=" << paces[s];
    if (!sp.root_of.empty()) {
      os << " roots " << Escape(sp.root_of.ToString());
    }
    os << "\";\n    style=rounded;\n";

    // Emit nodes; record ids so edges can be drawn, including the dashed
    // cross-subplan buffer edges.
    std::function<int(const PlanNodePtr&)> emit =
        [&](const PlanNodePtr& n) -> int {
      int id = next_id++;
      os << "    n" << id << " [label=\"" << Escape(ShortLabel(*n)) << "\"";
      if (n->kind == PlanKind::kSubplanInput) {
        os << ", shape=cds, style=dashed";
      }
      os << "];\n";
      for (const PlanNodePtr& c : n->children) {
        int cid = emit(c);
        os << "    n" << cid << " -> n" << id << ";\n";
      }
      return id;
    };
    emit(sp.root);
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

std::string ExplainSummary(const SubplanGraph& graph,
                           const std::vector<int>& paces) {
  std::ostringstream os;
  for (int s = 0; s < graph.num_subplans(); ++s) {
    const Subplan& sp = graph.subplan(s);
    os << "#" << s << " " << sp.queries.ToString();
    if (s < static_cast<int>(paces.size())) os << " pace=" << paces[s];
    os << " ops=" << CountOperators(sp.root);
    os << " children=[";
    for (size_t i = 0; i < sp.children.size(); ++i) {
      if (i > 0) os << ",";
      os << sp.children[i];
    }
    os << "]";
    if (!sp.root_of.empty()) os << " roots=" << sp.root_of.ToString();
    os << "\n";
  }
  return os.str();
}

}  // namespace ishare
