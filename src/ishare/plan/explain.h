#ifndef ISHARE_PLAN_EXPLAIN_H_
#define ISHARE_PLAN_EXPLAIN_H_

#include <string>
#include <vector>

#include "ishare/plan/subplan_graph.h"

namespace ishare {

// Graphviz DOT rendering of a subplan graph: one cluster per subplan
// (labelled with its query set, and its pace when `paces` is non-empty),
// operator nodes inside, dashed edges across subplan buffers. Paste the
// output into any DOT viewer to see the shared plan's structure and how
// iShare paced or decomposed it.
std::string ToDot(const SubplanGraph& graph,
                  const std::vector<int>& paces = {});

// One-line-per-subplan EXPLAIN summary: queries, pace, operator count,
// children — a compact alternative to SubplanGraph::ToString().
std::string ExplainSummary(const SubplanGraph& graph,
                           const std::vector<int>& paces = {});

}  // namespace ishare

#endif  // ISHARE_PLAN_EXPLAIN_H_
