#include "ishare/plan/plan.h"

#include <sstream>

namespace ishare {

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSubplanInput:
      return "SubplanInput";
  }
  return "?";
}

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kSum:
      return "SUM";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kCountDistinct:
      return "COUNT_DISTINCT";
  }
  return "?";
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "INNER";
    case JoinType::kLeftSemi:
      return "SEMI";
    case JoinType::kLeftAnti:
      return "ANTI";
  }
  return "?";
}

namespace {

DataType AggOutputType(const AggSpec& spec, const Schema& input) {
  switch (spec.kind) {
    case AggKind::kCount:
    case AggKind::kCountDistinct:
      return DataType::kInt64;
    case AggKind::kAvg:
      return DataType::kFloat64;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      CHECK(spec.arg != nullptr) << AggKindName(spec.kind) << " needs an arg";
      return spec.arg->OutputType(input);
  }
  return DataType::kFloat64;
}

}  // namespace

PlanNodePtr PlanNode::MakeScan(const Catalog& catalog,
                               const std::string& table, QuerySet queries) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kScan;
  n->table_name = table;
  n->queries = queries;
  n->output_schema = catalog.GetSchema(table);
  return n;
}

PlanNodePtr PlanNode::MakeFilter(PlanNodePtr child,
                                 std::map<QueryId, ExprPtr> predicates,
                                 QuerySet queries) {
  CHECK(child != nullptr);
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kFilter;
  n->output_schema = child->output_schema;
  n->children = {std::move(child)};
  n->predicates = std::move(predicates);
  n->queries = queries;
  return n;
}

PlanNodePtr PlanNode::MakeProject(PlanNodePtr child,
                                  std::vector<NamedExpr> projections,
                                  QuerySet queries) {
  CHECK(child != nullptr);
  CHECK(!projections.empty());
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kProject;
  std::vector<Field> fields;
  fields.reserve(projections.size());
  for (const NamedExpr& ne : projections) {
    CHECK(ne.expr != nullptr);
    fields.push_back(Field{ne.alias, ne.expr->OutputType(child->output_schema)});
  }
  n->output_schema = Schema(std::move(fields));
  n->children = {std::move(child)};
  n->projections = std::move(projections);
  n->queries = queries;
  return n;
}

PlanNodePtr PlanNode::MakeJoin(PlanNodePtr left, PlanNodePtr right,
                               std::vector<std::string> left_keys,
                               std::vector<std::string> right_keys,
                               JoinType type, QuerySet queries) {
  CHECK(left != nullptr && right != nullptr);
  CHECK_EQ(left_keys.size(), right_keys.size());
  for (const std::string& k : left_keys) left->output_schema.IndexOfOrDie(k);
  for (const std::string& k : right_keys) right->output_schema.IndexOfOrDie(k);
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kJoin;
  n->join_type = type;
  if (type == JoinType::kInner) {
    n->output_schema =
        Schema::Concat(left->output_schema, right->output_schema);
  } else {
    n->output_schema = left->output_schema;
  }
  n->children = {std::move(left), std::move(right)};
  n->left_keys = std::move(left_keys);
  n->right_keys = std::move(right_keys);
  n->queries = queries;
  return n;
}

PlanNodePtr PlanNode::MakeAggregate(PlanNodePtr child,
                                    std::vector<std::string> group_by,
                                    std::vector<AggSpec> aggregates,
                                    QuerySet queries) {
  CHECK(child != nullptr);
  CHECK(!aggregates.empty() || !group_by.empty());
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kAggregate;
  std::vector<Field> fields;
  for (const std::string& g : group_by) {
    int idx = child->output_schema.IndexOfOrDie(g);
    fields.push_back(child->output_schema.field(idx));
  }
  for (const AggSpec& a : aggregates) {
    fields.push_back(Field{a.alias, AggOutputType(a, child->output_schema)});
  }
  n->output_schema = Schema(std::move(fields));
  n->children = {std::move(child)};
  n->group_by = std::move(group_by);
  n->aggregates = std::move(aggregates);
  n->queries = queries;
  return n;
}

PlanNodePtr PlanNode::MakeSubplanInput(int subplan_index, Schema schema,
                                       QuerySet queries) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kSubplanInput;
  n->input_subplan = subplan_index;
  n->output_schema = std::move(schema);
  n->queries = queries;
  return n;
}

void PlanNode::RecomputeSchema() {
  switch (kind) {
    case PlanKind::kScan:
    case PlanKind::kSubplanInput:
      return;  // schema fixed at construction
    case PlanKind::kFilter:
      output_schema = children[0]->output_schema;
      return;
    case PlanKind::kProject: {
      std::vector<Field> fields;
      for (const NamedExpr& ne : projections) {
        fields.push_back(
            Field{ne.alias, ne.expr->OutputType(children[0]->output_schema)});
      }
      output_schema = Schema(std::move(fields));
      return;
    }
    case PlanKind::kJoin:
      if (join_type == JoinType::kInner) {
        output_schema = Schema::Concat(children[0]->output_schema,
                                       children[1]->output_schema);
      } else {
        output_schema = children[0]->output_schema;
      }
      return;
    case PlanKind::kAggregate: {
      std::vector<Field> fields;
      for (const std::string& g : group_by) {
        int idx = children[0]->output_schema.IndexOfOrDie(g);
        fields.push_back(children[0]->output_schema.field(idx));
      }
      for (const AggSpec& a : aggregates) {
        fields.push_back(
            Field{a.alias, AggOutputType(a, children[0]->output_schema)});
      }
      output_schema = Schema(std::move(fields));
      return;
    }
  }
}

std::string PlanNode::StructSignature() const {
  std::ostringstream os;
  switch (kind) {
    case PlanKind::kScan:
      os << "scan(" << table_name << ")";
      return os.str();
    case PlanKind::kFilter:
      // Predicates are deliberately excluded: differing selects are
      // sharable (they are copied into the shared node, Sec. 2.3).
      os << "filter[" << children[0]->StructSignature() << "]";
      return os.str();
    case PlanKind::kProject:
      // Projection lists are excluded: merged projects union them.
      os << "project[" << children[0]->StructSignature() << "]";
      return os.str();
    case PlanKind::kJoin: {
      os << "join(" << JoinTypeName(join_type) << ";";
      for (const auto& k : left_keys) os << k << ",";
      os << ";";
      for (const auto& k : right_keys) os << k << ",";
      os << ")[" << children[0]->StructSignature() << "|"
         << children[1]->StructSignature() << "]";
      return os.str();
    }
    case PlanKind::kAggregate: {
      os << "agg(";
      for (const auto& g : group_by) os << g << ",";
      os << ";";
      for (const AggSpec& a : aggregates) {
        os << AggKindName(a.kind) << ":"
           << (a.arg ? a.arg->ToString() : "*") << " as " << a.alias << ",";
      }
      os << ")[" << children[0]->StructSignature() << "]";
      return os.str();
    }
    case PlanKind::kSubplanInput:
      os << "input(" << input_subplan << ")";
      return os.str();
  }
  return "?";
}

std::string PlanNode::FullSignature() const {
  std::ostringstream os;
  os << PlanKindName(kind) << "(";
  switch (kind) {
    case PlanKind::kScan:
      os << table_name;
      break;
    case PlanKind::kFilter:
      for (const auto& [q, pred] : predicates) {
        os << "q" << q << ":" << (pred ? pred->ToString() : "true") << ";";
      }
      break;
    case PlanKind::kProject:
      for (const NamedExpr& ne : projections) {
        os << ne.expr->ToString() << " as " << ne.alias << ";";
      }
      break;
    case PlanKind::kJoin:
      os << JoinTypeName(join_type) << ";";
      for (const auto& k : left_keys) os << k << ",";
      os << "=";
      for (const auto& k : right_keys) os << k << ",";
      break;
    case PlanKind::kAggregate:
      for (const auto& g : group_by) os << g << ",";
      os << ";";
      for (const AggSpec& a : aggregates) {
        os << AggKindName(a.kind) << ":"
           << (a.arg ? a.arg->ToString() : "*") << ",";
      }
      break;
    case PlanKind::kSubplanInput:
      os << input_subplan;
      break;
  }
  os << ")";
  if (!children.empty()) {
    os << "[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) os << "|";
      os << children[i]->FullSignature();
    }
    os << "]";
  }
  return os.str();
}

std::string PlanNode::NodeString() const {
  std::ostringstream os;
  os << PlanKindName(kind);
  switch (kind) {
    case PlanKind::kScan:
      os << "(" << table_name << ")";
      break;
    case PlanKind::kFilter: {
      os << "(";
      bool first = true;
      for (const auto& [q, pred] : predicates) {
        if (!first) os << "; ";
        os << "q" << q << ": " << (pred ? pred->ToString() : "true");
        first = false;
      }
      os << ")";
      break;
    }
    case PlanKind::kProject:
      os << "(" << projections.size() << " exprs)";
      break;
    case PlanKind::kJoin: {
      os << "(" << JoinTypeName(join_type) << " ";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) os << ",";
        os << left_keys[i] << "=" << right_keys[i];
      }
      os << ")";
      break;
    }
    case PlanKind::kAggregate: {
      os << "(by ";
      for (const auto& g : group_by) os << g << ",";
      os << " ";
      for (const AggSpec& a : aggregates) {
        os << AggKindName(a.kind) << "(" << (a.arg ? a.arg->ToString() : "*")
           << ") ";
      }
      os << ")";
      break;
    }
    case PlanKind::kSubplanInput:
      os << "(#" << input_subplan << ")";
      break;
  }
  os << " " << queries.ToString();
  return os.str();
}

std::string PlanNode::TreeString(int indent) const {
  std::string out(indent * 2, ' ');
  out += NodeString();
  out += "\n";
  for (const PlanNodePtr& c : children) {
    out += c->TreeString(indent + 1);
  }
  return out;
}

PlanNodePtr PlanNode::CloneRestricted(const PlanNodePtr& node, QuerySet keep) {
  CHECK(node != nullptr);
  auto n = std::make_shared<PlanNode>(*node);
  n->queries = node->queries.Intersect(keep);
  if (node->kind == PlanKind::kFilter) {
    n->predicates.clear();
    for (const auto& [q, pred] : node->predicates) {
      if (keep.Contains(q)) n->predicates[q] = pred;
    }
  }
  n->children.clear();
  for (const PlanNodePtr& c : node->children) {
    n->children.push_back(CloneRestricted(c, keep));
  }
  return n;
}

}  // namespace ishare
