#ifndef ISHARE_PLAN_PLAN_H_
#define ISHARE_PLAN_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ishare/catalog/catalog.h"
#include "ishare/common/query_set.h"
#include "ishare/expr/expr.h"
#include "ishare/types/schema.h"

namespace ishare {

enum class PlanKind {
  kScan,          // base relation leaf (reads a base DeltaBuffer)
  kFilter,        // select; in shared plans holds one predicate per query
  kProject,       // computes named expressions
  kJoin,          // equi hash join (inner / left-semi / left-anti)
  kAggregate,     // group-by + aggregate functions
  kSubplanInput,  // leaf standing for a child subplan's output buffer
};

enum class JoinType { kInner, kLeftSemi, kLeftAnti };

enum class AggKind { kSum, kCount, kAvg, kMin, kMax, kCountDistinct };

const char* PlanKindName(PlanKind k);
const char* AggKindName(AggKind k);
const char* JoinTypeName(JoinType t);

// One aggregate function in an Aggregate node; `arg` may be null for
// COUNT(*).
struct AggSpec {
  AggKind kind;
  ExprPtr arg;
  std::string alias;
};

inline AggSpec SumAgg(ExprPtr arg, std::string alias) {
  return AggSpec{AggKind::kSum, std::move(arg), std::move(alias)};
}
inline AggSpec CountAgg(std::string alias) {
  return AggSpec{AggKind::kCount, nullptr, std::move(alias)};
}
inline AggSpec AvgAgg(ExprPtr arg, std::string alias) {
  return AggSpec{AggKind::kAvg, std::move(arg), std::move(alias)};
}
inline AggSpec MinAgg(ExprPtr arg, std::string alias) {
  return AggSpec{AggKind::kMin, std::move(arg), std::move(alias)};
}
inline AggSpec MaxAgg(ExprPtr arg, std::string alias) {
  return AggSpec{AggKind::kMax, std::move(arg), std::move(alias)};
}
inline AggSpec CountDistinctAgg(ExprPtr arg, std::string alias) {
  return AggSpec{AggKind::kCountDistinct, std::move(arg), std::move(alias)};
}

// A named projection expression ("expr AS alias").
struct NamedExpr {
  ExprPtr expr;
  std::string alias;
};

class PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

// A logical plan node. Single-query plans are trees; the MQO optimizer
// merges them into a DAG where a node may have several parents and is
// annotated with the set of queries that use it (Sec. 2.3).
//
// This is deliberately a single concrete class rather than a hierarchy:
// the iShare optimizer rewrites plans heavily (merging, splitting,
// re-parenting), which is much simpler against a uniform node type.
class PlanNode {
 public:
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanNodePtr> children;

  // Which queries use this node. Maintained by the MQO optimizer and the
  // decomposition rewrites; a single-query plan has a singleton set.
  QuerySet queries;

  Schema output_schema;

  // -- kScan --
  std::string table_name;

  // -- kFilter -- per-query predicates. A tuple keeps its bit for query q
  // iff predicates[q] (when present) passes; queries without an entry are
  // pass-through. This implements the paper's marking select σ*.
  std::map<QueryId, ExprPtr> predicates;

  // -- kProject -- union of the projection lists of all sharing queries.
  std::vector<NamedExpr> projections;

  // -- kJoin --
  JoinType join_type = JoinType::kInner;
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;

  // -- kAggregate --
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;

  // -- kSubplanInput -- index of the producing subplan in a SubplanGraph.
  int input_subplan = -1;

  // --- Factories (compute output schemas; CHECK-fail on bad references) ---
  static PlanNodePtr MakeScan(const Catalog& catalog,
                              const std::string& table, QuerySet queries);
  static PlanNodePtr MakeFilter(PlanNodePtr child,
                                std::map<QueryId, ExprPtr> predicates,
                                QuerySet queries);
  static PlanNodePtr MakeProject(PlanNodePtr child,
                                 std::vector<NamedExpr> projections,
                                 QuerySet queries);
  static PlanNodePtr MakeJoin(PlanNodePtr left, PlanNodePtr right,
                              std::vector<std::string> left_keys,
                              std::vector<std::string> right_keys,
                              JoinType type, QuerySet queries);
  static PlanNodePtr MakeAggregate(PlanNodePtr child,
                                   std::vector<std::string> group_by,
                                   std::vector<AggSpec> aggregates,
                                   QuerySet queries);
  static PlanNodePtr MakeSubplanInput(int subplan_index, Schema schema,
                                      QuerySet queries);

  // The structural string signature used by the MQO optimizer to decide
  // sharability (Sec. 2.3): includes operator kinds, scan tables, join
  // keys/types and aggregate specs, but *excludes* filter predicates and
  // projection lists (those are allowed to differ between sharable plans).
  std::string StructSignature() const;

  // Full signature including predicates/projections; equal full signatures
  // mean the plans are operationally identical.
  std::string FullSignature() const;

  // Pretty multi-line tree rendering for debugging and EXPLAIN output.
  std::string TreeString(int indent = 0) const;

  // Single-line description of this node only.
  std::string NodeString() const;

  // Recomputes this node's output schema from its children's schemas.
  void RecomputeSchema();

  // Deep-copies `node`, keeping only predicate entries for `keep` queries
  // and intersecting every node's query set with `keep`. Expression objects
  // are shared (immutable). Used when decomposing a shared subplan.
  static PlanNodePtr CloneRestricted(const PlanNodePtr& node, QuerySet keep);
};

// A query as submitted by a user: a name, its dedicated id within the
// session, and the root of its (single-query) logical plan.
struct QueryPlan {
  QueryId id = 0;
  std::string name;
  PlanNodePtr root;
};

}  // namespace ishare

#endif  // ISHARE_PLAN_PLAN_H_
