#include "ishare/plan/subplan_graph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ishare {

namespace {

// Counts parents of each DAG node reachable from the roots.
void CountParents(const std::vector<QueryPlan>& queries,
                  std::unordered_map<const PlanNode*, int>* parent_count) {
  std::unordered_set<const PlanNode*> visited;
  std::function<void(const PlanNodePtr&)> visit = [&](const PlanNodePtr& n) {
    if (!visited.insert(n.get()).second) return;
    for (const PlanNodePtr& c : n->children) {
      (*parent_count)[c.get()] += 1;
      visit(c);
    }
  };
  for (const QueryPlan& q : queries) {
    CHECK(q.root != nullptr);
    visit(q.root);
  }
}

}  // namespace

SubplanGraph SubplanGraph::Build(
    const std::vector<QueryPlan>& queries,
    const std::function<bool(const PlanNode&)>& extra_cut) {
  SubplanGraph g;
  int max_q = -1;
  for (const QueryPlan& q : queries) max_q = std::max(max_q, q.id);
  g.num_queries_ = max_q + 1;
  g.query_roots_.assign(g.num_queries_, -1);

  std::unordered_map<const PlanNode*, int> parent_count;
  CountParents(queries, &parent_count);

  // A node is a cut point (subplan root) if it has >1 parent or is the root
  // of some query.
  std::unordered_set<const PlanNode*> cut;
  for (const auto& [node, cnt] : parent_count) {
    if (cnt > 1) cut.insert(node);
  }
  for (const QueryPlan& q : queries) cut.insert(q.root.get());
  if (extra_cut != nullptr) {
    std::unordered_set<const PlanNode*> visited;
    std::function<void(const PlanNodePtr&)> mark = [&](const PlanNodePtr& n) {
      if (!visited.insert(n.get()).second) return;
      if (extra_cut(*n)) cut.insert(n.get());
      for (const PlanNodePtr& c : n->children) mark(c);
    };
    for (const QueryPlan& q : queries) mark(q.root);
  }

  // Assign subplan indices in children-first order and build each tree by
  // deep-copying until the next cut point, which becomes a kSubplanInput.
  std::unordered_map<const PlanNode*, int> subplan_of;

  std::function<PlanNodePtr(const PlanNodePtr&)> copy_tree;
  std::function<int(const PlanNodePtr&)> build_subplan;

  copy_tree = [&](const PlanNodePtr& n) -> PlanNodePtr {
    auto fresh = std::make_shared<PlanNode>(*n);
    fresh->children.clear();
    for (const PlanNodePtr& c : n->children) {
      if (cut.count(c.get()) > 0) {
        int idx = build_subplan(c);
        // The input leaf carries the *consuming* subplan's query set (the
        // child subplan's set can be wider); SubplanInputOp masks pulled
        // tuples down to it.
        fresh->children.push_back(
            PlanNode::MakeSubplanInput(idx, c->output_schema, n->queries));
      } else {
        fresh->children.push_back(copy_tree(c));
      }
    }
    return fresh;
  };

  build_subplan = [&](const PlanNodePtr& n) -> int {
    auto it = subplan_of.find(n.get());
    if (it != subplan_of.end()) return it->second;
    Subplan sp;
    sp.root = copy_tree(n);
    sp.queries = n->queries;
    int idx = g.AddSubplan(std::move(sp));
    subplan_of[n.get()] = idx;
    return idx;
  };

  for (const QueryPlan& q : queries) {
    CHECK(q.root->queries.Contains(q.id))
        << "query " << q.name << " declares id " << q.id
        << " but its plan nodes carry " << q.root->queries.ToString()
        << " (was the id changed after building the plan?)";
    int idx = build_subplan(q.root);
    g.query_roots_[q.id] = idx;
    g.subplans_[idx].root_of.Add(q.id);
  }

  g.RecomputeEdges();
  return g;
}

void SubplanGraph::SetQueryRoot(QueryId q, int subplan_index) {
  CHECK(q >= 0);
  if (q >= static_cast<int>(query_roots_.size())) {
    query_roots_.resize(q + 1, -1);
    num_queries_ = std::max(num_queries_, q + 1);
  }
  query_roots_[q] = subplan_index;
}

std::vector<int> SubplanGraph::SubplansOfQuery(QueryId q) const {
  std::vector<int> out;
  for (int i = 0; i < num_subplans(); ++i) {
    if (subplans_[i].queries.Contains(q)) out.push_back(i);
  }
  return out;
}

void SubplanGraph::RecomputeEdges() {
  for (Subplan& sp : subplans_) {
    sp.children.clear();
    sp.parents.clear();
    sp.queries = sp.root->queries;
    sp.root_of = QuerySet();
  }
  for (int i = 0; i < num_subplans(); ++i) {
    std::vector<PlanNodePtr> nodes;
    CollectNodes(subplans_[i].root, &nodes);
    std::set<int> child_set;
    for (const PlanNodePtr& n : nodes) {
      if (n->kind == PlanKind::kSubplanInput) {
        CHECK(n->input_subplan >= 0 && n->input_subplan < num_subplans())
            << "dangling subplan input " << n->input_subplan;
        if (child_set.insert(n->input_subplan).second) {
          subplans_[i].children.push_back(n->input_subplan);
        }
      }
    }
  }
  for (int i = 0; i < num_subplans(); ++i) {
    for (int c : subplans_[i].children) {
      subplans_[c].parents.push_back(i);
    }
  }
  for (size_t q = 0; q < query_roots_.size(); ++q) {
    if (query_roots_[q] >= 0) {
      subplans_[query_roots_[q]].root_of.Add(static_cast<QueryId>(q));
    }
  }
}

std::vector<int> SubplanGraph::TopoChildrenFirst() const {
  std::vector<int> order;
  std::vector<int> state(num_subplans(), 0);  // 0=unvisited 1=visiting 2=done
  std::function<void(int)> visit = [&](int i) {
    CHECK_NE(state[i], 1) << "cycle in subplan graph at " << i;
    if (state[i] == 2) return;
    state[i] = 1;
    for (int c : subplans_[i].children) visit(c);
    state[i] = 2;
    order.push_back(i);
  };
  for (int i = 0; i < num_subplans(); ++i) visit(i);
  return order;
}

std::vector<int> SubplanGraph::TopoParentsFirst() const {
  std::vector<int> order = TopoChildrenFirst();
  std::reverse(order.begin(), order.end());
  return order;
}

Status SubplanGraph::Validate() const {
  for (int i = 0; i < num_subplans(); ++i) {
    const Subplan& sp = subplans_[i];
    if (sp.root == nullptr) {
      return Status::Internal("subplan " + std::to_string(i) + " has no root");
    }
    if (sp.queries.empty()) {
      return Status::Internal("subplan " + std::to_string(i) +
                              " has empty query set");
    }
    for (int p : sp.parents) {
      // Engine requirement (Sec. 2.2): child query set subsumes parent's.
      if (!sp.queries.ContainsAll(subplans_[p].queries)) {
        return Status::Internal(
            "subplan " + std::to_string(i) + " queries " +
            sp.queries.ToString() + " do not subsume parent " +
            std::to_string(p) + " queries " + subplans_[p].queries.ToString());
      }
    }
    // Within a subplan every operator is shared by the same query set, and
    // input leaves must not admit foreign query bits.
    std::vector<PlanNodePtr> nodes;
    CollectNodes(sp.root, &nodes);
    for (const PlanNodePtr& n : nodes) {
      if (n->kind == PlanKind::kSubplanInput) {
        if (!sp.queries.ContainsAll(n->queries)) {
          return Status::Internal("subplan " + std::to_string(i) +
                                  " input leaf admits foreign queries " +
                                  n->queries.ToString());
        }
      } else if (!(n->queries == sp.queries)) {
        return Status::Internal("subplan " + std::to_string(i) +
                                " interior node query set " +
                                n->queries.ToString() + " != subplan's " +
                                sp.queries.ToString());
      }
    }
  }
  for (int q = 0; q < num_queries_; ++q) {
    if (query_roots_[q] < 0) {
      return Status::Internal("query q" + std::to_string(q) + " has no root");
    }
  }
  // TopoChildrenFirst CHECK-fails on cycles; run it for the side effect.
  (void)TopoChildrenFirst();
  return Status::OK();
}

std::string SubplanGraph::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < num_subplans(); ++i) {
    const Subplan& sp = subplans_[i];
    os << "Subplan #" << i << " " << sp.queries.ToString();
    if (!sp.root_of.empty()) os << " root_of=" << sp.root_of.ToString();
    os << " children=[";
    for (size_t k = 0; k < sp.children.size(); ++k) {
      if (k > 0) os << ",";
      os << sp.children[k];
    }
    os << "]\n";
    os << sp.root->TreeString(1);
  }
  return os.str();
}

void CollectNodes(const PlanNodePtr& root, std::vector<PlanNodePtr>* out) {
  CHECK(root != nullptr);
  out->push_back(root);
  for (const PlanNodePtr& c : root->children) CollectNodes(c, out);
}

int CountOperators(const PlanNodePtr& root) {
  if (root->kind == PlanKind::kSubplanInput) return 0;
  int n = 1;
  for (const PlanNodePtr& c : root->children) n += CountOperators(c);
  return n;
}

}  // namespace ishare
