#ifndef ISHARE_PLAN_SUBPLAN_GRAPH_H_
#define ISHARE_PLAN_SUBPLAN_GRAPH_H_

#include <functional>
#include <string>
#include <vector>

#include "ishare/common/status.h"
#include "ishare/plan/plan.h"

namespace ishare {

// One subplan: a tree of operators whose leaves are base-relation scans or
// kSubplanInput placeholders referring to child subplans (Sec. 2.2). The
// subplan materializes its output into a DeltaBuffer that parent subplans
// (or the user, for query roots) consume at their own pace.
struct Subplan {
  PlanNodePtr root;

  // Queries sharing this subplan (== root->queries).
  QuerySet queries;

  // Child subplan indices, deduplicated, in first-reference order.
  std::vector<int> children;
  // Parent subplan indices (derived; kept consistent by RecomputeEdges).
  std::vector<int> parents;

  // Queries for which this subplan's output is the final query result.
  QuerySet root_of;

  bool IsSharedBuffer() const { return parents.size() > 1; }
};

// The shared plan broken into subplans at operators with more than one
// parent (Sec. 2.2). Subplans are stored children-before-parents.
class SubplanGraph {
 public:
  SubplanGraph() = default;

  // Builds the graph from per-query roots into a merged DAG (shared nodes
  // are identified by pointer identity). Cut points are nodes with more
  // than one parent plus every query root; `extra_cut` can force further
  // cuts (e.g. at blocking operators for the NoShare-Nonuniform baseline of
  // Sec. 5.2). The DAG nodes are deep-copied into per-subplan trees, so
  // subsequent rewrites of one graph never affect the input plans or other
  // graphs.
  static SubplanGraph Build(
      const std::vector<QueryPlan>& queries,
      const std::function<bool(const PlanNode&)>& extra_cut = nullptr);

  int num_subplans() const { return static_cast<int>(subplans_.size()); }
  const Subplan& subplan(int i) const {
    CHECK(i >= 0 && i < num_subplans());
    return subplans_[i];
  }
  Subplan* mutable_subplan(int i) {
    CHECK(i >= 0 && i < num_subplans());
    return &subplans_[i];
  }
  const std::vector<Subplan>& subplans() const { return subplans_; }

  int num_queries() const { return num_queries_; }
  void set_num_queries(int n) { num_queries_ = n; }

  // Index of the subplan producing query q's final result, or -1.
  int query_root(QueryId q) const {
    CHECK(q >= 0 && q < static_cast<int>(query_roots_.size()));
    return query_roots_[q];
  }

  // Subplan indices belonging to query q (its plan = all subplans whose
  // query set contains q).
  std::vector<int> SubplansOfQuery(QueryId q) const;

  // Appends a subplan and returns its index. Caller must keep edges
  // consistent (or call RecomputeEdges afterwards).
  int AddSubplan(Subplan sp) {
    subplans_.push_back(std::move(sp));
    return num_subplans() - 1;
  }

  void SetQueryRoot(QueryId q, int subplan_index);

  // Recomputes children (from kSubplanInput leaves), parents, and each
  // subplan's query set (from its root node).
  void RecomputeEdges();

  // Indices ordered so every subplan appears after all of its children.
  std::vector<int> TopoChildrenFirst() const;
  // Indices ordered so every subplan appears before all of its children.
  std::vector<int> TopoParentsFirst() const;

  // Checks the execution-engine requirement that the query set of a subplan
  // subsumes the query set of each of its parents, that edges are acyclic
  // and consistent, and that every query has a root.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<Subplan> subplans_;
  std::vector<int> query_roots_;
  int num_queries_ = 0;
};

// Collects all operator nodes of a subplan tree in preorder.
void CollectNodes(const PlanNodePtr& root, std::vector<PlanNodePtr>* out);

// Counts operators in a subplan tree (kSubplanInput leaves excluded).
int CountOperators(const PlanNodePtr& root);

}  // namespace ishare

#endif  // ISHARE_PLAN_SUBPLAN_GRAPH_H_
