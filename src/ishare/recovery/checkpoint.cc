#include "ishare/recovery/checkpoint.h"

#include <bit>
#include <cstring>

#include "ishare/recovery/serializer.h"

namespace ishare::recovery {

// FNV-1a folded over 8-byte little-endian lanes instead of single bytes:
// one multiply per 8 bytes of input runs close to memory bandwidth, which
// matters because every checkpoint frame is checksummed on the execution
// critical path. Any flipped bit still changes the lane it lands in and
// therefore the digest; the total length is mixed in at the end so frames
// differing only by trailing zero lanes cannot collide.
uint64_t Fnv1a64(std::string_view data) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t h = 0xcbf29ce484222325ULL;
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t lane;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&lane, p, 8);
    } else {
      lane = 0;
      for (int i = 0; i < 8; ++i) {
        lane |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
      }
    }
    h = (h ^ lane) * kPrime;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t lane = 0;
    for (size_t i = 0; i < n; ++i) {
      lane |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    h = (h ^ lane) * kPrime;
  }
  h = (h ^ static_cast<uint64_t>(data.size())) * kPrime;
  return h;
}

std::string EncodeCheckpoint(const CheckpointHeader& header,
                             std::string_view payload) {
  CheckpointWriter w;
  w.Reserve(kCheckpointMagic.size() + 28 + payload.size() + 8);
  w.Raw(kCheckpointMagic.data(), kCheckpointMagic.size());
  w.U32(header.version);
  w.I64(header.epoch);
  w.I64(header.step);
  w.U64(payload.size());
  w.Raw(payload.data(), payload.size());
  uint64_t sum = Fnv1a64(w.data());
  w.U64(sum);
  return w.Take();
}

Result<DecodedCheckpoint> DecodeCheckpoint(std::string_view frame) {
  constexpr size_t kHeaderSize = 8 + 4 + 8 + 8 + 8;
  constexpr size_t kChecksumSize = 8;
  if (frame.size() < kHeaderSize + kChecksumSize) {
    return Status::DataLoss("torn checkpoint: frame has " +
                            std::to_string(frame.size()) +
                            " bytes, below minimum " +
                            std::to_string(kHeaderSize + kChecksumSize));
  }
  if (frame.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    return Status::DataLoss("torn checkpoint: bad magic");
  }
  CheckpointReader r(frame.substr(kCheckpointMagic.size()));
  DecodedCheckpoint out;
  out.header.version = r.U32();
  out.header.epoch = r.I64();
  out.header.step = r.I64();
  uint64_t payload_size = r.U64();
  // Verify the checksum before trusting any field (including the version):
  // a flipped version byte must read as corruption, not "future version".
  if (frame.size() != kHeaderSize + payload_size + kChecksumSize) {
    return Status::DataLoss(
        "torn checkpoint: frame size " + std::to_string(frame.size()) +
        " does not match payload size " + std::to_string(payload_size));
  }
  std::string_view body = frame.substr(0, kHeaderSize + payload_size);
  CheckpointReader tail(frame.substr(kHeaderSize + payload_size));
  uint64_t stored_sum = tail.U64();
  uint64_t actual_sum = Fnv1a64(body);
  if (stored_sum != actual_sum) {
    return Status::DataLoss("corrupted checkpoint: checksum mismatch");
  }
  if (out.header.version != kCheckpointFormatVersion) {
    return Status::NotSupported(
        "checkpoint format version " + std::to_string(out.header.version) +
        " not readable by this build (expected " +
        std::to_string(kCheckpointFormatVersion) + ")");
  }
  out.payload = std::string(frame.substr(kHeaderSize, payload_size));
  return out;
}

}  // namespace ishare::recovery
