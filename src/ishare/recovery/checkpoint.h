#ifndef ISHARE_RECOVERY_CHECKPOINT_H_
#define ISHARE_RECOVERY_CHECKPOINT_H_

// Checkpoint frame format (DESIGN.md §8):
//
//   offset  size  field
//   0       8     magic "ISHCKPT1"
//   8       4     format version (u32 LE)
//   12      8     epoch id (i64 LE)
//   20      8     execution step the snapshot was taken after (i64 LE)
//   28      8     payload size in bytes (u64 LE)
//   36      n     payload (CheckpointWriter stream)
//   36+n    8     FNV-1a 64 checksum over bytes [0, 36+n)
//
// Decode distinguishes two failure classes: a *version mismatch* is
// kNotSupported (the blob is intact, we just cannot read it), while torn
// writes, bad magic, truncation and checksum failures are kDataLoss. The
// recovery path discards kDataLoss frames and falls back to an older
// committed epoch; kNotSupported also falls back but is counted the same
// way (a checkpoint we cannot use is a checkpoint we do not have).

#include <cstdint>
#include <string>
#include <string_view>

#include "ishare/common/status.h"

namespace ishare::recovery {

// Version history: 1 = initial layout; 2 = DeltaBuffer payloads gained a
// leading trim base offset (bounded buffers, DESIGN.md §9).
inline constexpr uint32_t kCheckpointFormatVersion = 2;
inline constexpr std::string_view kCheckpointMagic = "ISHCKPT1";

// FNV-1a 64-bit hash; simple, dependency-free, and plenty for detecting
// torn writes (this guards against corruption, not adversaries).
uint64_t Fnv1a64(std::string_view data);

struct CheckpointHeader {
  uint32_t version = kCheckpointFormatVersion;
  int64_t epoch = 0;
  int64_t step = 0;
};

struct DecodedCheckpoint {
  CheckpointHeader header;
  std::string payload;
};

// Wraps `payload` in a framed, checksummed blob ready for a store.
std::string EncodeCheckpoint(const CheckpointHeader& header,
                             std::string_view payload);

// Validates magic/version/size/checksum and returns header + payload.
Result<DecodedCheckpoint> DecodeCheckpoint(std::string_view frame);

}  // namespace ishare::recovery

#endif  // ISHARE_RECOVERY_CHECKPOINT_H_
