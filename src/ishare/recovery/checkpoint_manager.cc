#include "ishare/recovery/checkpoint_manager.h"

#include <chrono>

#include "ishare/obs/obs.h"

namespace ishare::recovery {

CheckpointManager::CheckpointManager(CheckpointStore* store,
                                     CheckpointManagerOptions options)
    : store_(store), options_(std::move(options)) {
  CHECK(store_ != nullptr);
  last_accrual_ = Now();
}

double CheckpointManager::Now() const {
  if (options_.clock) return options_.clock();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status CheckpointManager::OnStepComplete(int64_t step,
                                         const Checkpointable& target) {
  if (!ShouldCheckpoint(step)) return Status::OK();
  // Budget regulation is a token bucket: execution time earns checkpoint
  // credit at `overhead_budget` seconds per second, a boundary fires only
  // when the credit covers the expected (= last observed) cost, and the
  // cost actually paid is debited afterwards. Debiting actuals rather
  // than estimates makes the long-run overhead converge to the budget
  // even when a snapshot turns out more expensive than the estimate —
  // the overshoot is repaid before the next checkpoint is allowed.
  if (options_.overhead_budget > 0) {
    double now = Now();
    credit_seconds_ += options_.overhead_budget * (now - last_accrual_);
    last_accrual_ = now;
    // The first checkpoint runs unconditionally: there is no cost
    // estimate until one has been paid (calibration).
    if (last_cost_seconds_ >= 0 && credit_seconds_ < last_cost_seconds_) {
      stats_.budget_skipped += 1;
      obs::Registry().GetCounter("recovery.checkpoint.budget_skipped").Add(1);
      return Status::OK();
    }
  }
  double t0 = Now();
  Status st = Checkpoint(step, target);
  double t1 = Now();
  if (st.ok()) {
    last_cost_seconds_ = t1 - t0;
    stats_.checkpoint_seconds += last_cost_seconds_;
    if (options_.overhead_budget > 0) {
      credit_seconds_ -= last_cost_seconds_;
      last_accrual_ = t1;
    }
  }
  return st;
}

Status CheckpointManager::Checkpoint(int64_t step,
                                     const Checkpointable& target,
                                     bool commit) {
  Status st = CheckpointImpl(step, target, commit);
  // Health tracking: a failure anywhere (snapshot, stage, or commit)
  // extends the failure streak; only a *committed* checkpoint ends it and
  // advances last_commit_epoch — staged-only frames are invisible to
  // recovery and so must be invisible to health too.
  auto& reg = obs::Registry();
  if (!st.ok()) {
    stats_.consecutive_failures += 1;
  } else if (commit) {
    stats_.consecutive_failures = 0;
    stats_.last_commit_epoch = step;
    reg.GetGauge("recovery.checkpoint.last_commit_epoch")
        .Set(static_cast<double>(step));
  }
  reg.GetGauge("recovery.checkpoint.consecutive_failures")
      .Set(static_cast<double>(stats_.consecutive_failures));
  return st;
}

Status CheckpointManager::CheckpointImpl(int64_t step,
                                         const Checkpointable& target,
                                         bool commit) {
  obs::ScopedSpan span("recovery.checkpoint.encode");
  CheckpointWriter payload;
  if (stats_.checkpoints > 0) {
    // Size to the running mean so a steady-state snapshot grows its
    // buffer at most once.
    payload.Reserve(static_cast<size_t>(stats_.checkpoint_bytes /
                                        stats_.checkpoints));
  }
  ISHARE_RETURN_NOT_OK(target.Snapshot(&payload));

  CheckpointHeader header;
  header.epoch = step;
  header.step = step;
  std::string frame = EncodeCheckpoint(header, payload.data());

  int attempts = 0;
  double backoff = 0;
  int64_t extra_attempts = 0;
  Status st = RetryTransient(
      options_.store_retry, [&] { return store_->Stage(step, frame); },
      &attempts, &backoff);
  extra_attempts += attempts - 1;
  ISHARE_RETURN_NOT_OK(st);

  if (commit) {
    st = RetryTransient(
        options_.store_retry, [&] { return store_->Commit(step); },
        &attempts, &backoff);
    extra_attempts += attempts - 1;
    ISHARE_RETURN_NOT_OK(st);
  }
  stats_.store_retry_attempts += extra_attempts;
  stats_.store_retry_backoff_seconds += backoff;

  stats_.checkpoints += 1;
  stats_.checkpoint_bytes += static_cast<int64_t>(frame.size());
  auto& reg = obs::Registry();
  reg.GetCounter("recovery.checkpoint.count").Add(1);
  reg.GetCounter("recovery.checkpoint.bytes")
      .Add(static_cast<double>(frame.size()));
  if (extra_attempts > 0) {
    reg.GetCounter("recovery.retry.attempts")
        .Add(static_cast<double>(extra_attempts));
    reg.GetCounter("recovery.retry.backoff_seconds").Add(backoff);
  }
  return Status::OK();
}

Result<int64_t> CheckpointManager::RecoverLatest(Checkpointable* target) {
  obs::ScopedSpan span("recovery.restore.run");
  std::vector<int64_t> epochs = store_->CommittedEpochs();
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    int64_t epoch = *it;
    Result<std::string> frame = store_->Load(epoch);
    if (!frame.ok()) continue;
    Result<DecodedCheckpoint> decoded = DecodeCheckpoint(*frame);
    if (!decoded.ok()) {
      // Torn, corrupt, or a format we cannot read: unusable either way.
      stats_.torn_discarded += 1;
      obs::Registry().GetCounter("recovery.checkpoint.torn_discarded").Add(1);
      (void)store_->Drop(epoch);
      continue;
    }
    CheckpointReader reader(decoded->payload);
    Status st = target->Restore(&reader);
    if (st.ok()) st = reader.Finish();
    if (!st.ok()) {
      // The frame checksummed clean but the payload did not restore —
      // treat it like corruption and keep walking back.
      stats_.torn_discarded += 1;
      obs::Registry().GetCounter("recovery.checkpoint.torn_discarded").Add(1);
      (void)store_->Drop(epoch);
      continue;
    }
    stats_.restores += 1;
    obs::Registry().GetCounter("recovery.restore.count").Add(1);
    return decoded->header.step;
  }
  return Status::NotFound("no usable committed checkpoint");
}

}  // namespace ishare::recovery
