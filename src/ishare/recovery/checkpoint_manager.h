#ifndef ISHARE_RECOVERY_CHECKPOINT_MANAGER_H_
#define ISHARE_RECOVERY_CHECKPOINT_MANAGER_H_

// Epoch-based checkpoint orchestration (DESIGN.md §8). The executor calls
// OnStepComplete(step, target) after every pace step; every `epoch_len`-th
// step is an epoch boundary at which the manager may snapshot the target,
// frame + checksum the payload, stage it in the store, and commit.
// RecoverLatest() walks committed epochs newest-first, discarding
// torn/corrupt/unreadable frames, and restores the first intact one into
// a fresh target.
//
// By default the manager self-regulates its cadence with a token bucket:
// elapsed execution time earns checkpoint credit at `overhead_budget`
// seconds per second, an epoch boundary only produces a checkpoint when
// the credit covers the last observed snapshot cost, and the cost
// actually paid is debited — so an underestimated snapshot is repaid
// before the next one is allowed, and long-run overhead converges to the
// budget. The first due boundary always checkpoints (calibration; there
// is no cost estimate before one has been paid). A window too short to
// amortize a snapshot simply is not checkpointed — recovery degrades to
// a cheap rerun. Set overhead_budget = 0 for strict every-epoch cadence;
// crash tests and the harness do, since budget decisions depend on the
// clock.

#include <cstdint>
#include <functional>

#include "ishare/common/status.h"
#include "ishare/recovery/checkpoint.h"
#include "ishare/recovery/checkpoint_store.h"
#include "ishare/recovery/checkpointable.h"
#include "ishare/recovery/retry.h"

namespace ishare::recovery {

struct CheckpointManagerOptions {
  // Epoch boundary cadence: step counts that are multiples of epoch_len
  // are candidates for a checkpoint. <= 0 disables periodic checkpoints
  // (explicit Checkpoint() still works).
  int64_t epoch_len = 4;
  // Maximum fraction of observed execution time the manager may spend
  // taking checkpoints. Elapsed time earns checkpoint credit at this
  // rate; a due epoch boundary only checkpoints when the credit covers
  // the last observed checkpoint cost (else it is skipped and counted in
  // stats().budget_skipped), and the actual cost paid is debited.
  // 0 disables the budget: every epoch boundary checkpoints.
  double overhead_budget = 0.05;
  // Monotonic clock in seconds used for budget accounting. Unset uses
  // std::chrono::steady_clock; tests inject a scripted clock for
  // determinism.
  std::function<double()> clock;
  // Store Stage/Commit calls are retried under this policy, so a
  // transiently flaky store does not abort the window.
  RetryPolicy store_retry;
};

// Plain-struct mirror of the recovery.* obs counters, kept independent of
// the obs layer so noobs builds still report exact numbers.
struct RecoveryStats {
  int64_t checkpoints = 0;
  int64_t checkpoint_bytes = 0;
  // Wall-clock seconds spent taking checkpoints at epoch boundaries —
  // the quantity the overhead budget bounds relative to elapsed time.
  double checkpoint_seconds = 0;
  int64_t torn_discarded = 0;
  int64_t restores = 0;
  int64_t budget_skipped = 0;  // epoch boundaries skipped by the budget
  int64_t store_retry_attempts = 0;  // extra attempts beyond the first
  double store_retry_backoff_seconds = 0;
  // Checkpoint-health signals (DESIGN.md §11): the current streak of
  // failed Checkpoint() calls (reset to 0 by the next committed one) and
  // the epoch of the most recent successful commit (0 before any). Both
  // are mirrored into the recovery.checkpoint.consecutive_failures /
  // last_commit_epoch gauges and the JSON "recovery" block; the chaos
  // Supervisor's checkpoint breaker feeds off the same signal.
  int64_t consecutive_failures = 0;
  int64_t last_commit_epoch = 0;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointStore* store,
                             CheckpointManagerOptions options = {});

  bool ShouldCheckpoint(int64_t step) const {
    return options_.epoch_len > 0 && step > 0 &&
           step % options_.epoch_len == 0;
  }

  // Checkpoints `target` if `step` lands on an epoch boundary.
  Status OnStepComplete(int64_t step, const Checkpointable& target);

  // Unconditionally snapshots `target` as epoch `step`. With
  // `commit = false` the frame is staged but never published — the
  // "crash between snapshot and commit" window the CrashPlan exercises.
  Status Checkpoint(int64_t step, const Checkpointable& target,
                    bool commit = true);

  // Restores `target` from the newest committed checkpoint that decodes
  // and restores cleanly; torn/corrupt/version-mismatched frames are
  // dropped from the store and counted. Returns the step the restored
  // state corresponds to, or NotFound if no usable checkpoint exists.
  Result<int64_t> RecoverLatest(Checkpointable* target);

  const RecoveryStats& stats() const { return stats_; }
  CheckpointStore* store() const { return store_; }
  const CheckpointManagerOptions& options() const { return options_; }

  // Last observed checkpoint cost in seconds, or a negative value before
  // the calibration checkpoint has run.
  double last_checkpoint_cost() const { return last_cost_seconds_; }

 private:
  double Now() const;
  Status CheckpointImpl(int64_t step, const Checkpointable& target,
                        bool commit);

  CheckpointStore* store_;
  CheckpointManagerOptions options_;
  RecoveryStats stats_;
  double last_cost_seconds_ = -1.0;
  double credit_seconds_ = 0.0;
  double last_accrual_ = 0.0;
};

}  // namespace ishare::recovery

#endif  // ISHARE_RECOVERY_CHECKPOINT_MANAGER_H_
