#include "ishare/recovery/checkpoint_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <utility>

#include "ishare/common/check.h"

namespace ishare::recovery {

namespace fs = std::filesystem;

Status MemoryCheckpointStore::ConsumeFault() {
  if (fault_.ok() || fault_remaining_ == 0) return Status::OK();
  if (fault_remaining_ > 0) --fault_remaining_;
  return fault_;
}

Status MemoryCheckpointStore::Stage(int64_t epoch, const std::string& frame) {
  ISHARE_RETURN_NOT_OK(ConsumeFault());
  staged_[epoch] = frame;
  return Status::OK();
}

Status MemoryCheckpointStore::Commit(int64_t epoch) {
  ISHARE_RETURN_NOT_OK(ConsumeFault());
  auto it = staged_.find(epoch);
  if (it == staged_.end()) {
    return Status::NotFound("no staged checkpoint for epoch " +
                            std::to_string(epoch));
  }
  committed_[epoch] = std::move(it->second);
  staged_.erase(it);
  return Status::OK();
}

std::vector<int64_t> MemoryCheckpointStore::CommittedEpochs() const {
  std::vector<int64_t> out;
  out.reserve(committed_.size());
  for (const auto& [epoch, frame] : committed_) out.push_back(epoch);
  return out;
}

Result<std::string> MemoryCheckpointStore::Load(int64_t epoch) const {
  auto it = committed_.find(epoch);
  if (it == committed_.end()) {
    return Status::NotFound("no committed checkpoint for epoch " +
                            std::to_string(epoch));
  }
  return it->second;
}

Status MemoryCheckpointStore::Drop(int64_t epoch) {
  committed_.erase(epoch);
  return Status::OK();
}

Status MemoryCheckpointStore::DiscardStaged() {
  staged_.clear();
  return Status::OK();
}

void MemoryCheckpointStore::InjectWriteFault(Status fault, int64_t times) {
  CHECK(!fault.ok()) << "injected fault must be an error";
  fault_ = std::move(fault);
  fault_remaining_ = times;
}

void MemoryCheckpointStore::CorruptCommitted(int64_t epoch,
                                             std::string frame) {
  CHECK(committed_.count(epoch)) << "epoch " << epoch << " not committed";
  committed_[epoch] = std::move(frame);
}

FileCheckpointStore::FileCheckpointStore(std::string dir)
    : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

std::string FileCheckpointStore::CommittedPath(int64_t epoch) const {
  return dir_ + "/epoch_" + std::to_string(epoch) + ".ckpt";
}

std::string FileCheckpointStore::StagedPath(int64_t epoch) const {
  return CommittedPath(epoch) + ".staged";
}

Status FileCheckpointStore::Stage(int64_t epoch, const std::string& frame) {
  std::ofstream out(StagedPath(epoch), std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open " + StagedPath(epoch) +
                               " for writing");
  }
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out) {
    return Status::Unavailable("short write to " + StagedPath(epoch));
  }
  return Status::OK();
}

Status FileCheckpointStore::Commit(int64_t epoch) {
  std::error_code ec;
  if (!fs::exists(StagedPath(epoch), ec)) {
    return Status::NotFound("no staged checkpoint for epoch " +
                            std::to_string(epoch));
  }
  fs::rename(StagedPath(epoch), CommittedPath(epoch), ec);
  if (ec) {
    return Status::Unavailable("rename failed for epoch " +
                               std::to_string(epoch) + ": " + ec.message());
  }
  return Status::OK();
}

std::vector<int64_t> FileCheckpointStore::CommittedEpochs() const {
  std::vector<int64_t> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "epoch_";
    constexpr std::string_view kSuffix = ".ckpt";
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;  // .staged files and strangers
    }
    std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789-") != std::string::npos) {
      continue;
    }
    out.push_back(std::stoll(digits));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> FileCheckpointStore::Load(int64_t epoch) const {
  std::ifstream in(CommittedPath(epoch), std::ios::binary);
  if (!in) {
    return Status::NotFound("no committed checkpoint for epoch " +
                            std::to_string(epoch));
  }
  std::string frame((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return frame;
}

Status FileCheckpointStore::Drop(int64_t epoch) {
  std::error_code ec;
  fs::remove(CommittedPath(epoch), ec);
  return Status::OK();
}

Status FileCheckpointStore::DiscardStaged() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".staged") {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
  return Status::OK();
}

}  // namespace ishare::recovery
