#ifndef ISHARE_RECOVERY_CHECKPOINT_STORE_H_
#define ISHARE_RECOVERY_CHECKPOINT_STORE_H_

// Durable(ish) homes for checkpoint frames, with a two-phase commit
// protocol (DESIGN.md §8): Stage() makes the bytes reachable but NOT
// eligible for recovery; Commit() atomically publishes them. A crash
// between the two leaves a staged blob that recovery ignores and
// DiscardStaged() garbage-collects — this is how torn writes never
// masquerade as valid checkpoints even before checksums enter the picture.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ishare/common/status.h"

namespace ishare::recovery {

class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  // Writes the frame under `epoch` without publishing it. Re-staging an
  // epoch overwrites the previous staged bytes.
  virtual Status Stage(int64_t epoch, const std::string& frame) = 0;

  // Atomically publishes a previously staged epoch. NotFound if nothing
  // is staged under `epoch`.
  virtual Status Commit(int64_t epoch) = 0;

  // Committed epoch ids in ascending order. Staged-only epochs excluded.
  virtual std::vector<int64_t> CommittedEpochs() const = 0;

  // Loads a committed frame. NotFound if the epoch was never committed.
  virtual Result<std::string> Load(int64_t epoch) const = 0;

  // Removes a committed frame (used to drop corrupt checkpoints).
  virtual Status Drop(int64_t epoch) = 0;

  // Removes all staged-but-uncommitted frames.
  virtual Status DiscardStaged() = 0;
};

// In-memory store for tests and benches. Supports fault injection so the
// manager's retry path can be exercised: the next `times` Stage/Commit
// calls fail with `fault`, then the fault disarms. `times = -1` keeps the
// fault armed forever (same convention as DeltaBuffer::InjectFault).
class MemoryCheckpointStore : public CheckpointStore {
 public:
  Status Stage(int64_t epoch, const std::string& frame) override;
  Status Commit(int64_t epoch) override;
  std::vector<int64_t> CommittedEpochs() const override;
  Result<std::string> Load(int64_t epoch) const override;
  Status Drop(int64_t epoch) override;
  Status DiscardStaged() override;

  void InjectWriteFault(Status fault, int64_t times);

  // Test hook: overwrite a committed frame in place (simulates bit rot).
  void CorruptCommitted(int64_t epoch, std::string frame);

  int64_t staged_count() const {
    return static_cast<int64_t>(staged_.size());
  }

 private:
  Status ConsumeFault();

  std::map<int64_t, std::string> staged_;
  std::map<int64_t, std::string> committed_;
  Status fault_;
  int64_t fault_remaining_ = 0;
};

// Filesystem-backed store. Staged frames live at
// `<dir>/epoch_<n>.ckpt.staged`; Commit renames to `<dir>/epoch_<n>.ckpt`
// (atomic on POSIX), so a crash mid-write can only ever leave a .staged
// file behind, never a half-written committed one.
class FileCheckpointStore : public CheckpointStore {
 public:
  explicit FileCheckpointStore(std::string dir);

  Status Stage(int64_t epoch, const std::string& frame) override;
  Status Commit(int64_t epoch) override;
  std::vector<int64_t> CommittedEpochs() const override;
  Result<std::string> Load(int64_t epoch) const override;
  Status Drop(int64_t epoch) override;
  Status DiscardStaged() override;

  const std::string& dir() const { return dir_; }

 private:
  std::string CommittedPath(int64_t epoch) const;
  std::string StagedPath(int64_t epoch) const;

  std::string dir_;
};

}  // namespace ishare::recovery

#endif  // ISHARE_RECOVERY_CHECKPOINT_STORE_H_
