#ifndef ISHARE_RECOVERY_CHECKPOINTABLE_H_
#define ISHARE_RECOVERY_CHECKPOINTABLE_H_

// The cross-cutting interface every stateful component implements so the
// checkpoint manager can persist and resurrect it (DESIGN.md §8).
//
// Contract: Restore(Snapshot(x)) must leave the object in a state whose
// observable behavior is bit-identical to x for all deterministic outputs.
// Wall-clock timings may be serialized for reporting but must never feed
// back into behavior — that is what keeps crash/restore/replay runs
// byte-identical to uninterrupted ones.

#include "ishare/common/status.h"
#include "ishare/recovery/serializer.h"

namespace ishare::recovery {

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  // Appends this object's full state to `w`.
  virtual Status Snapshot(CheckpointWriter* w) const = 0;

  // Rebuilds state from `r`, consuming exactly what Snapshot wrote. On
  // error the object may be left partially restored; callers discard it.
  virtual Status Restore(CheckpointReader* r) = 0;
};

}  // namespace ishare::recovery

#endif  // ISHARE_RECOVERY_CHECKPOINTABLE_H_
