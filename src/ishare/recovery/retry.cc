#include "ishare/recovery/retry.h"

#include <algorithm>

#include "ishare/common/rng.h"

namespace ishare::recovery {

double RetryPolicy::BackoffSeconds(int attempt) const {
  attempt = std::max(attempt, 1);
  double backoff = base_backoff_seconds;
  for (int i = 1; i < attempt; ++i) backoff *= backoff_multiplier;
  backoff = std::min(backoff, max_backoff_seconds);
  if (jitter > 0) {
    Rng rng(jitter_seed ^ (static_cast<uint64_t>(attempt) * 0x9e3779b9ULL));
    backoff *= rng.UniformDouble(1.0 - jitter, 1.0 + jitter);
  }
  return backoff;
}

}  // namespace ishare::recovery
