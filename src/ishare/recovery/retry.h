#ifndef ISHARE_RECOVERY_RETRY_H_
#define ISHARE_RECOVERY_RETRY_H_

// Bounded exponential backoff with deterministic jitter for transient
// faults (DESIGN.md §8). Only Status::IsTransient() errors are retried;
// permanent errors propagate on the first attempt so one query's logic
// error can never stall co-scheduled queries behind a retry loop.
//
// Backoff time is *virtual*: BackoffSeconds() is a pure function and the
// executors account it into metrics instead of sleeping, keeping every
// test and bench deterministic and fast. A production deployment would
// sleep for the same values.

#include <cstdint>

#include "ishare/common/status.h"

namespace ishare::recovery {

struct RetryPolicy {
  // Total tries = 1 initial attempt + up to (max_attempts - 1) retries.
  // Values < 1 are treated as 1: the initial attempt always runs, so a
  // zero or negative budget cannot turn RetryTransient into "never call
  // the operation" or an unbounded loop.
  int max_attempts = 4;
  double base_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.100;
  // Each backoff is scaled by a factor in [1 - jitter, 1 + jitter] drawn
  // deterministically from jitter_seed and the attempt number.
  double jitter = 0.25;
  uint64_t jitter_seed = 0x15eed;

  int EffectiveMaxAttempts() const {
    return max_attempts < 1 ? 1 : max_attempts;
  }

  // True if `status` is transient and `attempt` (1-based count of tries
  // already made) leaves budget for another try. The boundary is exact:
  // attempt == EffectiveMaxAttempts() is the last try and never retries,
  // so RetryTransient makes exactly EffectiveMaxAttempts() calls against
  // a persistent transient fault, with one fewer backoff accruals.
  bool ShouldRetry(const Status& status, int attempt) const {
    return status.IsTransient() && attempt < EffectiveMaxAttempts();
  }

  // Jittered backoff before retry number `attempt` (attempt >= 1).
  // Deterministic: same policy + attempt always yields the same value.
  double BackoffSeconds(int attempt) const;
};

// Runs `op` (returning Status) under `policy`, accumulating virtual
// backoff into *backoff_seconds and attempt count into *attempts (both
// optional). Returns the first permanent error, the last transient error
// if the budget is exhausted, or OK.
template <typename Op>
Status RetryTransient(const RetryPolicy& policy, Op&& op,
                      int* attempts = nullptr,
                      double* backoff_seconds = nullptr) {
  int tries = 0;
  for (;;) {
    Status st = op();
    ++tries;
    if (attempts != nullptr) *attempts = tries;
    if (st.ok() || !policy.ShouldRetry(st, tries)) return st;
    if (backoff_seconds != nullptr) {
      *backoff_seconds += policy.BackoffSeconds(tries);
    }
  }
}

}  // namespace ishare::recovery

#endif  // ISHARE_RECOVERY_RETRY_H_
