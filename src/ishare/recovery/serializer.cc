#include "ishare/recovery/serializer.h"

#include <bit>
#include <cstring>

namespace ishare::recovery {

bool CheckpointReader::Need(size_t n) {
  if (!status_.ok()) return false;
  if (remaining() < n) {
    status_ = Status::DataLoss("checkpoint payload truncated: need " +
                               std::to_string(n) + " bytes, have " +
                               std::to_string(remaining()));
    return false;
  }
  return true;
}

uint8_t CheckpointReader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t CheckpointReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, data_.data() + pos_, 4);
  } else {
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
  }
  pos_ += 4;
  return v;
}

uint64_t CheckpointReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, data_.data() + pos_, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
  }
  pos_ += 8;
  return v;
}

double CheckpointReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::Str() {
  uint64_t n = U64();
  if (!Need(n)) return "";
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

void CheckpointReader::Fail(std::string msg) {
  if (status_.ok()) status_ = Status::DataLoss(std::move(msg));
}

Status CheckpointReader::Finish() const {
  if (!status_.ok()) return status_;
  if (remaining() != 0) {
    return Status::DataLoss("checkpoint payload has " +
                            std::to_string(remaining()) + " trailing bytes");
  }
  return Status::OK();
}

Value ReadValue(CheckpointReader* r) {
  uint8_t tag = r->U8();
  switch (tag) {
    case detail::kTagInt:
      return Value(r->I64());
    case detail::kTagDouble:
      return Value(r->F64());
    case detail::kTagString:
      return Value(r->Str());
    default:
      r->Fail("unknown value tag " + std::to_string(tag));
      return Value();
  }
}

Row ReadRow(CheckpointReader* r) {
  uint64_t n = r->U64();
  if (n > r->remaining()) {
    // Each value costs at least one tag byte; reject absurd counts before
    // trying to allocate them.
    r->Fail("row length " + std::to_string(n) + " exceeds payload");
    return {};
  }
  Row row;
  row.reserve(n);
  for (uint64_t i = 0; i < n && r->ok(); ++i) row.push_back(ReadValue(r));
  return row;
}

void WriteQuerySet(CheckpointWriter* w, QuerySet qs) { w->U64(qs.bits()); }

QuerySet ReadQuerySet(CheckpointReader* r) { return QuerySet(r->U64()); }

std::string EncodeRowKey(const Row& row) {
  CheckpointWriter w;
  WriteRow(&w, row);
  return w.Take();
}

}  // namespace ishare::recovery
