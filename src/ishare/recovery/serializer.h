#ifndef ISHARE_RECOVERY_SERIALIZER_H_
#define ISHARE_RECOVERY_SERIALIZER_H_

// Compact binary serialization for checkpoint payloads (DESIGN.md §8).
//
// The format is deliberately boring: fixed-width little-endian integers,
// bit-cast doubles (so NaN payloads and signed zeros survive a round trip
// exactly — bit-exact recovery depends on it), and length-prefixed strings.
// There is no schema evolution inside a payload; the checkpoint frame
// carries a single format version and readers reject anything else
// (checkpoint.h).
//
// CheckpointReader is sticky-error: the first malformed read poisons the
// reader, every later read returns a zero value, and the error surfaces
// through status()/Finish(). This lets Restore() implementations read an
// entire payload linearly and check once at the end.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "ishare/common/query_set.h"
#include "ishare/common/status.h"
#include "ishare/types/value.h"

namespace ishare::recovery {

// Writes into a geometrically grown buffer through an explicit write
// position instead of std::string::append: a scalar write is then one
// bounds compare plus a fixed-size memcpy the compiler flattens to a
// store. Checkpointing serializes millions of values on the execution
// critical path, and the per-append bookkeeping was its dominant cost.
class CheckpointWriter {
 public:
  void U8(uint8_t v) {
    Ensure(1);
    buf_[pos_++] = static_cast<char>(v);
  }
  void U32(uint32_t v) { AppendScalar(v); }
  void U64(uint64_t v) { AppendScalar(v); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view v) {
    Ensure(8 + v.size());
    AppendScalarUnchecked(static_cast<uint64_t>(v.size()));
    std::memcpy(&buf_[pos_], v.data(), v.size());
    pos_ += v.size();
  }
  void Raw(const void* data, size_t size) {
    Ensure(size);
    std::memcpy(&buf_[pos_], data, size);
    pos_ += size;
  }

  // Growth hint for large payloads; encoding is append-only so a good
  // guess turns thousands of growth checks into one resize.
  void Reserve(size_t bytes) { Ensure(bytes); }

  std::string_view data() const { return {buf_.data(), pos_}; }
  std::string Take() {
    buf_.resize(pos_);
    pos_ = 0;
    return std::move(buf_);
  }
  size_t size() const { return pos_; }

 private:
  void Ensure(size_t n) {
    if (pos_ + n > buf_.size()) buf_.resize(std::max(pos_ + n, buf_.size() * 2));
  }

  // The wire format is little-endian; on little-endian hosts a scalar is
  // one memcpy, elsewhere it is byte-swapped through a stack buffer.
  template <typename T>
  void AppendScalar(T v) {
    Ensure(sizeof(T));
    AppendScalarUnchecked(v);
  }
  template <typename T>
  void AppendScalarUnchecked(T v) {
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&buf_[pos_], &v, sizeof(T));
    } else {
      for (size_t i = 0; i < sizeof(T); ++i) {
        buf_[pos_ + i] = static_cast<char>((v >> (8 * i)) & 0xff);
      }
    }
    pos_ += sizeof(T);
  }

  std::string buf_;
  size_t pos_ = 0;
};

class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return data_.size() - pos_; }

  // Marks the reader failed with a DataLoss status (e.g. a semantic
  // validation error found while decoding, not just a short read).
  void Fail(std::string msg);

  // OK iff no read failed AND the payload was fully consumed; trailing
  // bytes mean the payload came from a different writer than the reader
  // expects, which we treat as corruption rather than silently ignoring.
  Status Finish() const;

 private:
  bool Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

// ---- Codecs for engine types -------------------------------------------
//
// The value and row writers are inline: checkpointing a window serializes
// millions of values, and an out-of-line call per value showed up as the
// dominant cost of taking a snapshot.

namespace detail {
inline constexpr uint8_t kTagInt = 0;
inline constexpr uint8_t kTagDouble = 1;
inline constexpr uint8_t kTagString = 2;
}  // namespace detail

inline void WriteValue(CheckpointWriter* w, const Value& v) {
  switch (v.type()) {
    case DataType::kInt64:
      w->U8(detail::kTagInt);
      w->I64(v.AsInt());
      return;
    case DataType::kFloat64:
      w->U8(detail::kTagDouble);
      w->F64(v.AsDouble());
      return;
    case DataType::kString:
      w->U8(detail::kTagString);
      w->Str(v.AsString());
      return;
  }
}

Value ReadValue(CheckpointReader* r);

inline void WriteRow(CheckpointWriter* w, const Row& row) {
  w->U64(row.size());
  for (const Value& v : row) WriteValue(w, v);
}

Row ReadRow(CheckpointReader* r);

void WriteQuerySet(CheckpointWriter* w, QuerySet qs);
QuerySet ReadQuerySet(CheckpointReader* r);

// Canonical byte encoding of a row, usable as a sort key so hash-map state
// can be checkpointed in an order independent of bucket layout/history.
std::string EncodeRowKey(const Row& row);

}  // namespace ishare::recovery

#endif  // ISHARE_RECOVERY_SERIALIZER_H_
