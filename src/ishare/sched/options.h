// Tuning knobs for the parallel pace-boundary scheduler (DESIGN.md
// section 10). The paper's pace-tuned shared plans (Sec. 4) leave several
// independent subplans runnable at every pace boundary; `num_threads`
// controls how many OS threads the owning executor may use to dispatch
// them concurrently. `num_threads == 1` selects the fully serial legacy
// path, byte-identical to the pre-scheduler executors.
//
// Header-only and dependency-free so exec/metrics.h can embed it in
// ExecOptions without pulling in the worker pool.
#ifndef ISHARE_SCHED_OPTIONS_H_
#define ISHARE_SCHED_OPTIONS_H_

#include <cstdint>

namespace ishare {
namespace sched {

struct SchedulerOptions {
  // Worker threads available to one executor. 1 = serial execution.
  int num_threads = 1;

  // Operators only split a delta batch into morsels when it has at least
  // this many tuples; smaller batches run on the calling thread. Keeps
  // tiny per-boundary deltas from paying fork/join overhead.
  int64_t morsel_min_tuples = 2048;
};

}  // namespace sched
}  // namespace ishare

#endif  // ISHARE_SCHED_OPTIONS_H_
