#include "ishare/sched/wave.h"

#include <algorithm>

namespace ishare {
namespace sched {

namespace {

// `order` must list ids children-before-parents. wave[id] = 0 when no
// direct child of id is marked runnable, else 1 + max over runnable
// children. One pass suffices because children precede parents.
std::vector<std::vector<int>> GroupByWave(const SubplanGraph& graph,
                                          const std::vector<int>& order) {
  std::vector<int> wave(graph.num_subplans(), -1);
  int max_wave = -1;
  for (int s : order) {
    int w = 0;
    for (int c : graph.subplan(s).children) {
      if (wave[c] >= 0) w = std::max(w, wave[c] + 1);
    }
    wave[s] = w;
    max_wave = std::max(max_wave, w);
  }
  std::vector<std::vector<int>> waves(static_cast<size_t>(max_wave + 1));
  for (int s : order) waves[wave[s]].push_back(s);
  return waves;
}

}  // namespace

std::vector<std::vector<int>> BuildWaves(const SubplanGraph& graph,
                                         const std::vector<int>& runnable) {
  return GroupByWave(graph, runnable);
}

std::vector<std::vector<int>> StaticLevels(const SubplanGraph& graph) {
  return GroupByWave(graph, graph.TopoChildrenFirst());
}

}  // namespace sched
}  // namespace ishare
