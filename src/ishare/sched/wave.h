// ishare::sched — DAG-aware wave construction for pace boundaries
// (DESIGN.md section 10).
//
// Paper anchor: subplans in a pace-tuned shared plan (Sec. 2.2 / Sec. 4)
// form a DAG whose edges are producer/consumer DeltaBuffers. At a given
// virtual-time step only the subplans whose pace divides the step are
// runnable; among those, a child must finish appending its delta before a
// parent consumes it, while subplans with no runnable ancestor/descendant
// relation are independent and may run concurrently. BuildWaves groups a
// runnable set into such dependency levels ("waves"): wave 0 has no
// runnable producer, wave k+1 consumes only waves <= k. The executor
// dispatches one wave at a time with a barrier between waves, which is
// exactly the ordering the serial topo loop guarantees — so parallel
// execution stays bit-exact with serial (the determinism argument in
// DESIGN.md section 10).
#ifndef ISHARE_SCHED_WAVE_H_
#define ISHARE_SCHED_WAVE_H_

#include <vector>

#include "ishare/plan/subplan_graph.h"

namespace ishare {
namespace sched {

// Groups `runnable` (subplan ids in children-before-parents topo order,
// a subset of graph's subplans) into waves. A subplan's wave is 0 if none
// of its direct children are runnable this step, else 1 + the max wave of
// its runnable children. Non-runnable children impose no ordering: their
// buffers are not appended to this step, so reading them is safe. Each
// wave preserves topo order internally; concatenating the waves is a
// permutation of `runnable`.
std::vector<std::vector<int>> BuildWaves(const SubplanGraph& graph,
                                         const std::vector<int>& runnable);

// Static dependency levels over the whole graph (every subplan treated
// as runnable). Used by AdaptiveExecutor, whose skip/catch-up decisions
// are made per-step but whose level structure never changes.
std::vector<std::vector<int>> StaticLevels(const SubplanGraph& graph);

}  // namespace sched
}  // namespace ishare

#endif  // ISHARE_SCHED_WAVE_H_
