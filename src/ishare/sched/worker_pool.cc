#include "ishare/sched/worker_pool.h"

#include <chrono>
#include <string>
#include <utility>

#include "ishare/obs/tracer.h"

namespace ishare {
namespace sched {

namespace {

// Pool-worker identity of the current thread: the worker's deque index,
// or -1 for threads that do not belong to any pool (they submit through
// the external slot). A thread belongs to at most one pool at a time —
// executors each own a private pool and never nest executors — so a
// plain id (rather than a per-pool map) suffices.
thread_local int tls_worker_id = -1;

}  // namespace

WorkerPool::WorkerPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  // Worker deques [0, num_threads_ - 2], plus one external-submitter slot.
  const int spawned = num_threads_ - 1;
  deques_.resize(static_cast<size_t>(spawned) + 1);

  obs::MetricsRegistry& reg = obs::Registry();
  tasks_counter_ = &reg.GetCounter("sched.pool.tasks");
  delay_counter_ = &reg.GetCounter("sched.pool.injected_delays");
  steals_counter_ = &reg.GetCounter("sched.pool.steals");
  parallel_for_counter_ = &reg.GetCounter("sched.pool.parallel_for");
  idle_hist_ = &reg.GetHistogram("sched.pool.idle_seconds");
  worker_task_counters_.reserve(spawned);
  worker_steal_counters_.reserve(spawned);
  for (int i = 0; i < spawned; ++i) {
    const std::string label = "#w" + std::to_string(i);
    worker_task_counters_.push_back(
        &reg.GetCounter("sched.pool.tasks" + label));
    worker_steal_counters_.push_back(
        &reg.GetCounter("sched.pool.steals" + label));
  }

  threads_.reserve(spawned);
  for (int i = 0; i < spawned; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Drain(ForState* st) {
  for (;;) {
    const int64_t i = st->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st->n) return;
    (*st->fn)(i);
    st->done.fetch_add(1, std::memory_order_release);
  }
}

bool WorkerPool::HaveWorkLocked() const {
  for (const std::deque<Task>& d : deques_) {
    if (!d.empty()) return true;
  }
  return false;
}

bool WorkerPool::TryRunOne(int self_id) {
  Task task;
  bool stolen = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int slots = static_cast<int>(deques_.size());
    const int own = (self_id >= 0 && self_id < slots) ? self_id : slots - 1;
    if (!deques_[own].empty()) {
      // Owner end: newest task first (depth-first, cache-warm).
      task = std::move(deques_[own].back());
      deques_[own].pop_back();
    } else {
      // Steal end: oldest task first from the first non-empty victim.
      for (int v = 0; v < slots; ++v) {
        if (v == own || deques_[v].empty()) continue;
        task = std::move(deques_[v].front());
        deques_[v].pop_front();
        stolen = true;
        break;
      }
      if (!task) return false;
    }
  }
  tasks_counter_->Add(1);
  if (self_id >= 0 && self_id < static_cast<int>(worker_task_counters_.size())) {
    worker_task_counters_[self_id]->Add(1);
    if (stolen) worker_steal_counters_[self_id]->Add(1);
  }
  if (stolen) steals_counter_->Add(1);
  MaybeStall();
  task();
  return true;
}

void WorkerPool::InjectDelay(int64_t tasks, double seconds) {
  delay_nanos_.store(
      seconds > 0 ? static_cast<int64_t>(seconds * 1e9) : 0,
      std::memory_order_relaxed);
  delay_tasks_.store(tasks > 0 ? tasks : 0, std::memory_order_relaxed);
}

void WorkerPool::MaybeStall() {
  int64_t d = delay_tasks_.load(std::memory_order_relaxed);
  while (d > 0 && !delay_tasks_.compare_exchange_weak(
                      d, d - 1, std::memory_order_relaxed)) {
  }
  if (d <= 0) return;
  delay_counter_->Add(1);
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(delay_nanos_.load(std::memory_order_relaxed));
  // Busy-yield rather than sleep: a stalled worker still holds its core
  // from the scheduler's point of view, which is the straggler shape the
  // help-while-waiting loop must absorb.
  while (std::chrono::steady_clock::now() < until) {
    std::this_thread::yield();
  }
}

void WorkerPool::WorkerLoop(int worker_id) {
  tls_worker_id = worker_id;
  for (;;) {
    while (TryRunOne(worker_id)) {
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    if (!HaveWorkLocked()) {
      const auto idle_start = std::chrono::steady_clock::now();
      cv_.wait(lock, [this] { return stop_ || HaveWorkLocked(); });
      idle_hist_->Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - idle_start)
                              .count());
      if (stop_) return;
    }
  }
}

void WorkerPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  parallel_for_counter_->Add(1);

  // Shared so a leftover claim-loop task popped after this call returns
  // (all indices already claimed) still has a live ForState to look at;
  // it then sees next >= n and exits without touching `fn`.
  auto st = std::make_shared<ForState>();
  st->n = n;
  st->fn = &fn;

  // One claim-loop task per helper; the calling thread claims inline.
  // Helpers that find no indices left exit immediately, so oversubmitting
  // is harmless. The submitter's span context is captured so spans opened
  // inside fn on a worker thread parent correctly across threads.
  const char* parent_span = obs::CurrentSpanName();
  const int spawned = static_cast<int>(threads_.size());
  const int helpers =
      static_cast<int>(n - 1 < spawned ? n - 1 : spawned);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int h = 0; h < helpers; ++h) {
      deques_[h].push_back([this, st, parent_span] {
        obs::ScopedSpanParent ctx(parent_span);
        Drain(st.get());
      });
    }
  }
  if (helpers > 0) cv_.notify_all();

  Drain(st.get());
  // Help-while-waiting: stragglers may still be inside fn; run unrelated
  // pool tasks (e.g. a sibling's nested ParallelFor) instead of blocking
  // so reentrant submission cannot deadlock.
  while (st->done.load(std::memory_order_acquire) < n) {
    if (!TryRunOne(tls_worker_id)) std::this_thread::yield();
  }
}

}  // namespace sched
}  // namespace ishare
