// ishare::sched — fixed-size worker pool with per-worker deques
// (DESIGN.md section 10).
//
// Paper anchor: the pace-tuned shared plans of "Resource-efficient Shared
// Query Execution via Exploiting Time Slackness" (Sec. 4) stagger subplan
// executions across virtual time, so at any pace boundary several
// independent subplans are runnable at once. The pool is the mechanism
// that lets PaceExecutor / AdaptiveExecutor dispatch one wave of such
// subplans — and, inside heavy operators, one batch of morsels — onto
// `num_threads` OS threads, in the spirit of Shared Arrangements
// (McSherry et al.), where inter-query sharing composes with
// data-parallel workers.
//
// Structure: one double-ended task queue per worker. An owner pushes and
// pops at the back of its own deque; idle workers steal from the front
// of a victim's deque. All deques are guarded by a single pool mutex —
// dispatch granularity here is a subplan execution or an operator morsel
// batch (microseconds to milliseconds), so a contended lock per
// push/pop is noise, and the coarse lock keeps the pool trivially
// race-free under tsan. The deque-per-worker shape is kept so the
// steal/locality accounting (sched.pool.steals, per-worker series)
// reflects real scheduling behaviour.
//
// ParallelFor is the only submission API the executors use. It is
// cooperative and reentrant: the calling thread claims indices itself,
// and while waiting for stragglers it executes other pool tasks
// (help-while-waiting), so nested ParallelFor calls from inside a task
// cannot deadlock. Determinism contract: ParallelFor guarantees each
// index runs exactly once and the call returns only after all indices
// finished; it guarantees nothing about order, so callers that need
// bit-exact results must make iterations write to disjoint state (see
// the morsel paths in exec/aggregate.cc and exec/hash_join.cc).
#ifndef ISHARE_SCHED_WORKER_POOL_H_
#define ISHARE_SCHED_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "ishare/obs/metrics_registry.h"

namespace ishare {
namespace sched {

class WorkerPool {
 public:
  // Spawns `num_threads - 1` worker threads (the caller of ParallelFor
  // is always the remaining worker). num_threads <= 1 spawns nothing and
  // ParallelFor degenerates to a serial loop.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(0), ..., fn(n - 1), each exactly once, across the pool plus
  // the calling thread; returns after all have finished. Reentrant: fn
  // may itself call ParallelFor on the same pool.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  // Chaos hook (DESIGN.md §11): each of the next `tasks` dequeued pool
  // tasks busy-waits for `seconds` of wall clock before running, modelling
  // a stalled/descheduled worker. Results are unchanged by the pool's
  // determinism contract — every index still runs exactly once — only
  // timing and steal/idle accounting move, which is exactly what the
  // chaos harness's bit-exactness gate verifies. A second call replaces
  // any remaining delay budget; counted in sched.pool.injected_delays.
  void InjectDelay(int64_t tasks, double seconds);

  // Remaining injected-delay budget (tasks not yet stalled).
  int64_t pending_delays() const {
    return delay_tasks_.load(std::memory_order_relaxed);
  }

 private:
  struct ForState {
    int64_t n = 0;
    const std::function<void(int64_t)>* fn = nullptr;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
  };

  using Task = std::function<void()>;

  void WorkerLoop(int worker_id);
  // Claims indices from `st` until exhausted, running them inline.
  void Drain(ForState* st);
  // Consumes one unit of injected-delay budget, spinning if one was held.
  void MaybeStall();
  // Pops one task (own deque back first, then steal a victim's front)
  // and runs it. Returns false when every deque is empty.
  bool TryRunOne(int self_id);
  bool HaveWorkLocked() const;

  const int num_threads_;
  std::vector<std::thread> threads_;

  // All deques share `mu_` (see file comment for why this is coarse on
  // purpose). deques_[i] belongs to worker i; the last slot belongs to
  // external (non-pool) submitters such as the executor's driver thread.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Task>> deques_;
  bool stop_ = false;

  // Injected-delay budget (InjectDelay): remaining stalled tasks and the
  // per-task stall length in nanoseconds.
  std::atomic<int64_t> delay_tasks_{0};
  std::atomic<int64_t> delay_nanos_{0};

  obs::Counter* tasks_counter_;
  obs::Counter* delay_counter_;
  obs::Counter* steals_counter_;
  obs::Counter* parallel_for_counter_;
  obs::Histogram* idle_hist_;
  std::vector<obs::Counter*> worker_task_counters_;
  std::vector<obs::Counter*> worker_steal_counters_;
};

}  // namespace sched
}  // namespace ishare

#endif  // ISHARE_SCHED_WORKER_POOL_H_
