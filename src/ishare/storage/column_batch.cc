#include "ishare/storage/column_batch.h"

namespace ishare {

bool ColumnBatch::FromDeltas(const Schema& schema, DeltaSpan deltas,
                             ColumnBatch* out) {
  const int nf = schema.num_fields();
  // Validate before building: any ill-typed value sends the caller back
  // to the row path with *out untouched work-wise.
  for (const DeltaTuple& t : deltas) {
    if (static_cast<int>(t.row.size()) != nf) return false;
    for (int c = 0; c < nf; ++c) {
      if (t.row[static_cast<size_t>(c)].type() != schema.field(c).type) {
        return false;
      }
    }
  }
  const int64_t n = static_cast<int64_t>(deltas.size());
  out->cols.clear();
  out->cols.reserve(static_cast<size_t>(nf));
  for (int c = 0; c < nf; ++c) {
    out->cols.emplace_back(schema.field(c).type);
    out->cols.back().Reserve(n);
  }
  out->qbits.clear();
  out->qbits.reserve(static_cast<size_t>(n));
  out->weights.clear();
  out->weights.reserve(static_cast<size_t>(n));
  for (const DeltaTuple& t : deltas) {
    for (int c = 0; c < nf; ++c) {
      out->cols[static_cast<size_t>(c)].AppendValue(
          t.row[static_cast<size_t>(c)]);
    }
    out->qbits.push_back(t.qset.bits());
    out->weights.push_back(t.weight);
  }
  out->sel = SelectionVector::All(n);
  return true;
}

DeltaBatch ColumnBatch::ToDeltas() const {
  DeltaBatch batch;
  batch.reserve(static_cast<size_t>(num_selected()));
  const int nf = static_cast<int>(cols.size());
  sel.ForEach([&](int32_t i) {
    DeltaTuple t;
    t.row.reserve(static_cast<size_t>(nf));
    for (int c = 0; c < nf; ++c) {
      t.row.push_back(cols[static_cast<size_t>(c)].GetValue(i));
    }
    t.qset = QuerySet(qbits[static_cast<size_t>(i)]);
    t.weight = weights[static_cast<size_t>(i)];
    batch.push_back(std::move(t));
  });
  return batch;
}

int64_t ColumnBatch::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(ColumnBatch));
  for (const ColumnVector& c : cols) bytes += c.ApproxBytes();
  bytes += static_cast<int64_t>(qbits.size() * sizeof(uint64_t) +
                                weights.size() * sizeof(int32_t) +
                                sel.indices().size() * sizeof(int32_t));
  return bytes;
}

}  // namespace ishare
