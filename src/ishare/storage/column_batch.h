// Columnar delta batches — the batch layout of the vectorized execution
// core (DESIGN.md §12.1). A ColumnBatch is the column-major twin of a
// DeltaBatch: one typed ColumnVector per schema field, plus flat qset-bit
// and weight arrays, plus a SelectionVector marking which rows are still
// live. Conversion at the row-shim boundary is lossless and
// order-preserving in both directions, which is what makes the
// columnar-vs-row bit-exactness gate (tests/columnar_test.cc) possible.

#ifndef ISHARE_STORAGE_COLUMN_BATCH_H_
#define ISHARE_STORAGE_COLUMN_BATCH_H_

#include <cstdint>
#include <vector>

#include "ishare/storage/delta.h"
#include "ishare/types/column.h"
#include "ishare/types/schema.h"
#include "ishare/types/selection.h"

namespace ishare {

// Column-major representation of a run of delta tuples. All columns,
// qbits, and weights have the same length (num_rows); sel indexes into
// that range and only selected rows are logically present. The batch
// owns its columns; kernels hand off whole batches, never aliased
// columns (ownership rules in DESIGN.md §12.4).
struct ColumnBatch {
  std::vector<ColumnVector> cols;
  std::vector<uint64_t> qbits;    // QuerySet::bits() per row
  std::vector<int32_t> weights;   // multiplicity delta per row
  SelectionVector sel;

  int64_t num_rows() const { return static_cast<int64_t>(weights.size()); }
  int64_t num_selected() const { return sel.count(); }

  // Builds a column batch from row deltas, verifying every value's
  // runtime type against `schema`. Returns false (leaving *out
  // unspecified) on any mismatch — the caller then stays on the row
  // path, so a type-sloppy source degrades performance, never results.
  static bool FromDeltas(const Schema& schema, DeltaSpan deltas,
                         ColumnBatch* out);

  // Emits the selected rows, in selection (= input) order, as row deltas.
  // Exact inverse of FromDeltas restricted to the selection.
  DeltaBatch ToDeltas() const;

  // Deterministic approximate footprint (same units as ApproxDeltaBytes).
  int64_t ApproxBytes() const;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_COLUMN_BATCH_H_
