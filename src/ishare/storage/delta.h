#ifndef ISHARE_STORAGE_DELTA_H_
#define ISHARE_STORAGE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ishare/common/query_set.h"
#include "ishare/types/value.h"

namespace ishare {

// A change record flowing through the shared incremental engine (Sec. 2.3):
//  - row:    the tuple payload
//  - qset:   SharedDB bitvector — which queries this tuple is valid for
//  - weight: multiplicity delta; +n inserts n copies, -n deletes n copies.
//            An update is a delete followed by an insert.
struct DeltaTuple {
  Row row;
  QuerySet qset;
  int32_t weight = 1;

  DeltaTuple() = default;
  DeltaTuple(Row r, QuerySet q, int32_t w)
      : row(std::move(r)), qset(q), weight(w) {}

  bool is_insert() const { return weight > 0; }

  std::string ToString() const {
    return (weight > 0 ? "+" : "") + std::to_string(weight) +
           RowToString(row) + qset.ToString();
  }
};

using DeltaBatch = std::vector<DeltaTuple>;

}  // namespace ishare

#endif  // ISHARE_STORAGE_DELTA_H_
