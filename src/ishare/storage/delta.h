#ifndef ISHARE_STORAGE_DELTA_H_
#define ISHARE_STORAGE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ishare/common/query_set.h"
#include "ishare/types/value.h"

namespace ishare {

// A change record flowing through the shared incremental engine (Sec. 2.3):
//  - row:    the tuple payload
//  - qset:   SharedDB bitvector — which queries this tuple is valid for
//  - weight: multiplicity delta; +n inserts n copies, -n deletes n copies.
//            An update is a delete followed by an insert.
struct DeltaTuple {
  Row row;
  QuerySet qset;
  int32_t weight = 1;

  DeltaTuple() = default;
  DeltaTuple(Row r, QuerySet q, int32_t w)
      : row(std::move(r)), qset(q), weight(w) {}

  bool is_insert() const { return weight > 0; }

  std::string ToString() const {
    return (weight > 0 ? "+" : "") + std::to_string(weight) +
           RowToString(row) + qset.ToString();
  }
};

using DeltaBatch = std::vector<DeltaTuple>;

// Deterministic approximate footprint of one delta tuple (see
// ApproxRowBytes): the accounting unit of the flow-control layer's
// memory budget.
inline int64_t ApproxDeltaBytes(const DeltaTuple& t) {
  return static_cast<int64_t>(sizeof(DeltaTuple) - sizeof(Row)) +
         ApproxRowBytes(t.row);
}

// Non-owning, read-only view over a contiguous run of delta tuples. This is
// what the zero-copy consume path of DeltaBuffer hands out: the view stays
// valid until the underlying buffer is appended to or reset, which the
// executors guarantee within one incremental execution.
class DeltaSpan {
 public:
  DeltaSpan() = default;
  DeltaSpan(const DeltaTuple* data, size_t size) : data_(data), size_(size) {}
  // Implicit so operators keep accepting DeltaBatch at call sites.
  DeltaSpan(const DeltaBatch& batch)  // NOLINT
      : data_(batch.data()), size_(batch.size()) {}
  // Views a braced list of tuples; valid only for the full expression the
  // list appears in (like passing a DeltaBatch temporary). That caveat is
  // exactly what -Winit-list-lifetime flags, so silence it here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
  DeltaSpan(std::initializer_list<DeltaTuple> il)  // NOLINT
      : data_(il.begin()), size_(il.size()) {}
#pragma GCC diagnostic pop

  const DeltaTuple* begin() const { return data_; }
  const DeltaTuple* end() const { return data_ + size_; }
  const DeltaTuple& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  DeltaBatch ToBatch() const { return DeltaBatch(begin(), end()); }

 private:
  const DeltaTuple* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_DELTA_H_
