#ifndef ISHARE_STORAGE_DELTA_BUFFER_H_
#define ISHARE_STORAGE_DELTA_BUFFER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ishare/common/check.h"
#include "ishare/common/status.h"
#include "ishare/storage/delta.h"
#include "ishare/types/schema.h"

namespace ishare {

// Append-only log of delta tuples with independent consumer offsets.
//
// This replaces the Kafka topics of the paper's prototype: a subplan whose
// root has two or more parent subplans materializes its output here, and
// each parent pulls new tuples at its own pace (Sec. 2.2). Base relations
// are buffers of the same kind fed by the StreamSource.
//
// Runtime-facing entry points (the Consume* family) are part of the
// recoverable error spine: malformed-but-possible inputs (a bad consumer
// id, a negative limit) and injected storage faults surface as Status
// instead of aborting, so a shared executor can fail one run without
// taking down co-scheduled queries.
class DeltaBuffer {
 public:
  DeltaBuffer() = default;
  explicit DeltaBuffer(Schema schema, std::string name = "")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Total tuples ever appended.
  int64_t size() const { return static_cast<int64_t>(log_.size()); }

  void Append(DeltaTuple t) { log_.push_back(std::move(t)); }
  void AppendBatch(const DeltaBatch& batch) {
    log_.insert(log_.end(), batch.begin(), batch.end());
  }

  // Registers a new consumer starting at offset 0; returns its id.
  int RegisterConsumer() {
    offsets_.push_back(0);
    return static_cast<int>(offsets_.size()) - 1;
  }
  int num_consumers() const { return static_cast<int>(offsets_.size()); }

  // Offset of `consumer`, or -1 if the id is not registered.
  int64_t ConsumerOffset(int consumer) const {
    if (consumer < 0 || consumer >= num_consumers()) return -1;
    return offsets_[consumer];
  }

  // Number of tuples the consumer has not read yet; -1 for a bad id.
  int64_t Pending(int consumer) const {
    if (consumer < 0 || consumer >= num_consumers()) return -1;
    return size() - offsets_[consumer];
  }

  // Reads all tuples newer than the consumer's offset and advances it.
  // The returned view aliases the log: it stays valid until the next
  // Append/AppendBatch/Reset and costs no allocation or copy.
  Result<DeltaSpan> ConsumeNew(int consumer) {
    return ConsumeUpTo(consumer, size());
  }

  // Reads up to `limit` new tuples and advances the offset accordingly.
  Result<DeltaSpan> ConsumeUpTo(int consumer, int64_t limit) {
    ISHARE_RETURN_NOT_OK(ConsumeCheck(consumer));
    if (limit < 0) {
      return Status::InvalidArgument("negative consume limit " +
                                     std::to_string(limit) + " on buffer '" +
                                     name_ + "'");
    }
    int64_t from = offsets_[consumer];
    int64_t to = std::min(size(), from + limit);
    offsets_[consumer] = to;
    return DeltaSpan(log_.data() + from, static_cast<size_t>(to - from));
  }

  const std::vector<DeltaTuple>& log() const { return log_; }

  // Drops all tuples and resets every consumer offset to zero.
  void Reset() {
    log_.clear();
    std::fill(offsets_.begin(), offsets_.end(), 0);
  }

  // Fault injection: every subsequent consume returns `st` until
  // ClearFault(). Models a poisoned/unreachable topic partition; tests use
  // it to prove the executors surface storage failures instead of crashing.
  void InjectFault(Status st) {
    CHECK(!st.ok()) << "injected fault must be an error";
    fault_ = std::move(st);
  }
  void ClearFault() { fault_ = Status::OK(); }

 private:
  Status ConsumeCheck(int consumer) const {
    if (!fault_.ok()) return fault_;
    if (consumer < 0 || consumer >= num_consumers()) {
      return Status::InvalidArgument(
          "unknown consumer id " + std::to_string(consumer) + " on buffer '" +
          name_ + "' (" + std::to_string(num_consumers()) + " registered)");
    }
    return Status::OK();
  }

  Schema schema_;
  std::string name_;
  std::vector<DeltaTuple> log_;
  std::vector<int64_t> offsets_;
  Status fault_;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_DELTA_BUFFER_H_
