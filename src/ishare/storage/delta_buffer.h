#ifndef ISHARE_STORAGE_DELTA_BUFFER_H_
#define ISHARE_STORAGE_DELTA_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ishare/common/check.h"
#include "ishare/common/status.h"
#include "ishare/flow/memory_budget.h"
#include "ishare/obs/obs.h"
#include "ishare/recovery/serializer.h"
#include "ishare/storage/delta.h"
#include "ishare/types/schema.h"

namespace ishare {

// Retention/capacity limits for a bounded buffer (DESIGN.md §9). A soft
// limit of 0 means unlimited. The watermarks give the backpressure signal
// hysteresis: AdmitStatus() starts returning kResourceExhausted once
// retained bytes reach high_watermark * soft_limit_bytes and keeps
// returning it until they drain to low_watermark * soft_limit_bytes, so a
// buffer hovering at the limit does not flap between admit and refuse.
struct BufferLimits {
  int64_t soft_limit_bytes = 0;
  double high_watermark = 1.0;
  double low_watermark = 0.5;
};

// Append-only log of delta tuples with independent consumer offsets.
//
// This replaces the Kafka topics of the paper's prototype: a subplan whose
// root has two or more parent subplans materializes its output here, and
// each parent pulls new tuples at its own pace (Sec. 2.2). Base relations
// are buffers of the same kind fed by the StreamSource.
//
// Offsets are *logical* positions in the append order and never move
// backwards. The physical log, however, is bounded: TrimConsumed()
// reclaims the prefix every registered consumer has already read,
// rebasing physical indices by `trimmed()`. size() keeps counting all
// tuples ever appended, so offset arithmetic is trim-oblivious; log()
// exposes only the retained suffix, and any DeltaSpan handed out earlier
// is invalidated by a trim just as by an append or reset.
//
// Runtime-facing entry points (the Consume* family and the offset
// accessors) are part of the recoverable error spine: malformed-but-
// possible inputs (a bad consumer id, a negative limit) and injected
// storage faults surface as Status instead of aborting, so a shared
// executor can fail one run without taking down co-scheduled queries.
// Faults injected with a finite `times` are *transient* (kUnavailable by
// convention) and auto-disarm, which is what the executors' retry/backoff
// path (DESIGN.md §8) recovers from.
//
// Threading contract (single-writer / multi-reader, DESIGN.md §10):
//  - Exactly one producer thread may Append/AppendBatch at a time.
//  - While the producer appends, distinct consumer threads may
//    concurrently call size(), Pending(c) and ConsumerOffset(c) for
//    their own ids: the logical size is published through an atomic with
//    release/acquire ordering, and the producer never touches offsets_.
//    A Pending() observed mid-append is merely conservative (it may
//    lag the in-flight batch; it never reads torn state).
//  - Everything else — Consume*, TrimConsumed, Reset, Restore,
//    registration, limit/budget changes — requires external ordering
//    (the scheduler's wave barriers provide it: a consumer only drains a
//    buffer after its producer's wave completed). Two threads acting as
//    the *same* consumer must also be externally ordered.
class DeltaBuffer {
 public:
  DeltaBuffer() = default;
  explicit DeltaBuffer(Schema schema, std::string name = "")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Total tuples ever appended (logical size; includes trimmed tuples).
  // Safe to call from a consumer thread while the producer is appending:
  // reads the atomically-published size, never log_.size() itself (that
  // read would race with the producer's push_back and tear under tsan —
  // pinned by storage_test's ConcurrentPendingDuringAppend).
  int64_t size() const {
    return logical_size_.load(std::memory_order_acquire);
  }
  // Tuples physically retained / already reclaimed by TrimConsumed().
  int64_t retained_size() const { return static_cast<int64_t>(log_.size()); }
  int64_t trimmed() const { return base_offset_; }
  // Approximate bytes held by the retained log (see ApproxDeltaBytes).
  int64_t retained_bytes() const { return retained_bytes_; }

  void Append(DeltaTuple t) {
    retained_bytes_ += ApproxDeltaBytes(t);
    log_.push_back(std::move(t));
    PublishSize();
    PublishBytes();
  }
  void AppendBatch(const DeltaBatch& batch) {
    for (const DeltaTuple& t : batch) retained_bytes_ += ApproxDeltaBytes(t);
    log_.insert(log_.end(), batch.begin(), batch.end());
    PublishSize();
    PublishBytes();
  }

  // Registers a new consumer starting at offset 0; returns its id.
  int RegisterConsumer() {
    offsets_.push_back(0);
    return static_cast<int>(offsets_.size()) - 1;
  }
  int num_consumers() const { return static_cast<int>(offsets_.size()); }

  // Offset of `consumer`; InvalidArgument if the id is not registered.
  Result<int64_t> ConsumerOffset(int consumer) const {
    ISHARE_RETURN_NOT_OK(CheckConsumerId(consumer));
    return offsets_[consumer];
  }

  // Number of tuples the consumer has not read yet; InvalidArgument for a
  // bad id.
  Result<int64_t> Pending(int consumer) const {
    ISHARE_RETURN_NOT_OK(CheckConsumerId(consumer));
    return size() - offsets_[consumer];
  }

  // Reads all tuples newer than the consumer's offset and advances it.
  // The returned view aliases the log: it stays valid until the next
  // Append/AppendBatch/Reset/TrimConsumed and costs no allocation or copy.
  Result<DeltaSpan> ConsumeNew(int consumer) {
    return ConsumeUpTo(consumer, size());
  }

  // Reads up to `limit` new tuples and advances the offset accordingly.
  Result<DeltaSpan> ConsumeUpTo(int consumer, int64_t limit) {
    ISHARE_RETURN_NOT_OK(ConsumeCheck(consumer));
    if (limit < 0) {
      return Status::InvalidArgument("negative consume limit " +
                                     std::to_string(limit) + " on buffer '" +
                                     name_ + "'");
    }
    int64_t from = offsets_[consumer];
    int64_t to = std::min(size(), from + limit);
    offsets_[consumer] = to;
    // A registered consumer's offset can never fall behind the trim point:
    // TrimConsumed only reclaims below the minimum offset.
    CHECK(from >= base_offset_)
        << "consumer offset " << from << " below trim point " << base_offset_
        << " on buffer '" << name_ << "'";
    return DeltaSpan(log_.data() + (from - base_offset_),
                     static_cast<size_t>(to - from));
  }

  // The retained suffix of the log: physical index i holds the tuple at
  // logical offset trimmed() + i.
  const std::vector<DeltaTuple>& log() const { return log_; }

  // ---- Bounded retention (DESIGN.md §9) ---------------------------------

  // Reclaims the prefix of the log that every registered consumer has
  // already read, rebasing physical indices. A buffer with no consumers
  // never trims (nothing proves the data was seen — query roots are read
  // out-of-band by MaterializeResult). Returns the number of tuples
  // reclaimed.
  int64_t TrimConsumed() {
    if (offsets_.empty() || log_.empty()) return 0;
    int64_t min_off = offsets_[0];
    for (int64_t off : offsets_) min_off = std::min(min_off, off);
    int64_t n = min_off - base_offset_;
    if (n <= 0) return 0;
    for (int64_t i = 0; i < n; ++i) {
      retained_bytes_ -= ApproxDeltaBytes(log_[static_cast<size_t>(i)]);
    }
    log_.erase(log_.begin(), log_.begin() + n);
    base_offset_ = min_off;
    PublishSize();
    obs::Registry().GetCounter("flow.trim.count").Add(1);
    obs::Registry().GetCounter("flow.trim.tuples").Add(static_cast<double>(n));
    PublishBytes();
    return n;
  }

  void set_limits(BufferLimits limits) {
    limits_ = limits;
    PublishBytes();
  }
  const BufferLimits& limits() const { return limits_; }

  // Backpressure signal: kResourceExhausted while the buffer sits above
  // its high watermark (with hysteresis down to the low watermark). The
  // producer side is expected to route this to the shedding policy, not
  // to a retry loop — see Status::IsRetryableBackpressure().
  Status AdmitStatus() const {
    if (!backpressured_) return Status::OK();
    return Status::ResourceExhausted(
        "buffer '" + name_ + "' over high watermark: " +
        std::to_string(retained_bytes_) + " bytes retained, soft limit " +
        std::to_string(limits_.soft_limit_bytes));
  }

  // Registers this buffer with the memory arbiter under "buf:<name>" and
  // starts publishing retained bytes to it.
  void AttachBudget(flow::MemoryBudget* budget) {
    budget_ = budget;
    budget_component_ =
        budget_ == nullptr ? -1 : budget_->Register("buf:" + name_);
    PublishBytes();
  }

  // Drops all tuples, resets every consumer offset to zero, AND disarms
  // any injected fault: a reset buffer is fresh in every respect. (A
  // buffer that still errored on consume after Reset() was a trap for
  // harness reuse; tests pin the new contract.)
  void Reset() {
    log_.clear();
    base_offset_ = 0;
    retained_bytes_ = 0;
    backpressured_ = false;
    std::fill(offsets_.begin(), offsets_.end(), 0);
    ClearFault();
    PublishSize();
    PublishBytes();
  }

  // Fault injection: subsequent consumes return `st` until ClearFault().
  // With `times >= 0`, only the next `times` consumes fail, then the fault
  // disarms on its own — that models a transient outage (pass a
  // Status::Unavailable so retry policies classify it correctly). The
  // default `times = -1` keeps the fault armed forever (a poisoned
  // partition), matching the original single-argument behavior.
  void InjectFault(Status st, int64_t times = -1) {
    CHECK(!st.ok()) << "injected fault must be an error";
    if (times == 0) {  // zero failures requested: nothing to arm
      ClearFault();
      return;
    }
    fault_ = std::move(st);
    fault_remaining_ = times;
  }
  void ClearFault() {
    fault_ = Status::OK();
    fault_remaining_ = -1;
  }
  bool HasFault() const { return !fault_.ok(); }

  // ---- Checkpoint support (DESIGN.md §8) --------------------------------

  // Full state: trim base + retained log contents + consumer offsets.
  // Schema/name/faults are construction-time or test-only state and are
  // deliberately excluded — recovery rebuilds buffers from the same plan,
  // then restores into them. Limits and budget attachment are likewise
  // reapplied by the executor that owns the buffer. (The base offset made
  // this layout kCheckpointFormatVersion 2.)
  void Snapshot(recovery::CheckpointWriter* w) const {
    w->I64(base_offset_);
    w->U64(log_.size());
    for (const DeltaTuple& t : log_) {
      recovery::WriteRow(w, t.row);
      recovery::WriteQuerySet(w, t.qset);
      w->I64(t.weight);
    }
    SnapshotOffsets(w);
  }

  Status Restore(recovery::CheckpointReader* r) {
    int64_t base = r->I64();
    uint64_t n = r->U64();
    if (!r->ok()) return r->status();
    if (base < 0) {
      r->Fail("negative trim base " + std::to_string(base) + " on buffer '" +
              name_ + "'");
      return r->status();
    }
    if (n > r->remaining()) {
      r->Fail("delta log length " + std::to_string(n) + " exceeds payload");
      return r->status();
    }
    base_offset_ = base;
    log_.clear();
    log_.reserve(n);
    retained_bytes_ = 0;
    for (uint64_t i = 0; i < n && r->ok(); ++i) {
      DeltaTuple t;
      t.row = recovery::ReadRow(r);
      t.qset = recovery::ReadQuerySet(r);
      t.weight = static_cast<int32_t>(r->I64());
      retained_bytes_ += ApproxDeltaBytes(t);
      log_.push_back(std::move(t));
    }
    PublishSize();
    PublishBytes();
    return RestoreOffsets(r);
  }

  // Offsets only. Used for base-relation buffers whose log is regenerated
  // deterministically by replaying the StreamSource to the checkpointed
  // fraction; persisting just the read positions keeps checkpoints small.
  void SnapshotOffsets(recovery::CheckpointWriter* w) const {
    w->U64(offsets_.size());
    for (int64_t off : offsets_) w->I64(off);
  }

  Status RestoreOffsets(recovery::CheckpointReader* r) {
    uint64_t n = r->U64();
    if (!r->ok()) return r->status();
    if (n != offsets_.size()) {
      r->Fail("checkpoint has " + std::to_string(n) +
              " consumer offsets but buffer '" + name_ + "' registered " +
              std::to_string(offsets_.size()));
      return r->status();
    }
    for (size_t i = 0; i < offsets_.size(); ++i) {
      int64_t off = r->I64();
      // Offsets are logical: the valid range starts at the trim point, not
      // zero, because tuples below it no longer exist to be re-read.
      if (off < base_offset_ || off > size()) {
        r->Fail("consumer offset " + std::to_string(off) + " out of range [" +
                std::to_string(base_offset_) + ", " + std::to_string(size()) +
                "] on buffer '" + name_ + "'");
        return r->status();
      }
      offsets_[i] = off;
    }
    return r->status();
  }

 private:
  Status CheckConsumerId(int consumer) const {
    if (consumer < 0 || consumer >= num_consumers()) {
      return Status::InvalidArgument(
          "unknown consumer id " + std::to_string(consumer) + " on buffer '" +
          name_ + "' (" + std::to_string(num_consumers()) + " registered)");
    }
    return Status::OK();
  }

  Status ConsumeCheck(int consumer) {
    if (!fault_.ok()) {
      Status out = fault_;
      if (fault_remaining_ > 0 && --fault_remaining_ == 0) ClearFault();
      return out;
    }
    return CheckConsumerId(consumer);
  }

  // Publishes the logical size for concurrent readers (threading contract
  // above). Called after every mutation that changes base_offset_ or
  // log_'s length; TrimConsumed leaves the logical size unchanged
  // (base_offset_ absorbs the erased prefix) but republishes anyway for
  // uniformity.
  void PublishSize() {
    logical_size_.store(base_offset_ + static_cast<int64_t>(log_.size()),
                        std::memory_order_release);
  }

  // Re-evaluates the watermark state and pushes retained bytes to the
  // attached budget. Called after every mutation of the retained log.
  void PublishBytes() {
    if (limits_.soft_limit_bytes > 0) {
      double soft = static_cast<double>(limits_.soft_limit_bytes);
      double bytes = static_cast<double>(retained_bytes_);
      if (!backpressured_ && bytes >= limits_.high_watermark * soft) {
        backpressured_ = true;
        obs::Registry().GetCounter("flow.backpressure.buffer_events").Add(1);
      } else if (backpressured_ && bytes <= limits_.low_watermark * soft) {
        backpressured_ = false;
      }
    } else {
      backpressured_ = false;
    }
    if (budget_ != nullptr) budget_->Set(budget_component_, retained_bytes_);
  }

  Schema schema_;
  std::string name_;
  std::vector<DeltaTuple> log_;
  std::vector<int64_t> offsets_;
  // Published copy of base_offset_ + log_.size(); the only field a
  // concurrent reader touches besides its own offsets_ slot.
  std::atomic<int64_t> logical_size_{0};
  int64_t base_offset_ = 0;     // logical offset of log_[0]
  int64_t retained_bytes_ = 0;  // ApproxDeltaBytes sum over log_
  BufferLimits limits_;
  bool backpressured_ = false;
  flow::MemoryBudget* budget_ = nullptr;
  int budget_component_ = -1;
  Status fault_;
  int64_t fault_remaining_ = -1;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_DELTA_BUFFER_H_
