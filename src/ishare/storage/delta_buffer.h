#ifndef ISHARE_STORAGE_DELTA_BUFFER_H_
#define ISHARE_STORAGE_DELTA_BUFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ishare/common/check.h"
#include "ishare/storage/delta.h"
#include "ishare/types/schema.h"

namespace ishare {

// Append-only log of delta tuples with independent consumer offsets.
//
// This replaces the Kafka topics of the paper's prototype: a subplan whose
// root has two or more parent subplans materializes its output here, and
// each parent pulls new tuples at its own pace (Sec. 2.2). Base relations
// are buffers of the same kind fed by the StreamSource.
class DeltaBuffer {
 public:
  DeltaBuffer() = default;
  explicit DeltaBuffer(Schema schema, std::string name = "")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Total tuples ever appended.
  int64_t size() const { return static_cast<int64_t>(log_.size()); }

  void Append(DeltaTuple t) { log_.push_back(std::move(t)); }
  void AppendBatch(const DeltaBatch& batch) {
    log_.insert(log_.end(), batch.begin(), batch.end());
  }

  // Registers a new consumer starting at offset 0; returns its id.
  int RegisterConsumer() {
    offsets_.push_back(0);
    return static_cast<int>(offsets_.size()) - 1;
  }
  int num_consumers() const { return static_cast<int>(offsets_.size()); }

  int64_t ConsumerOffset(int consumer) const {
    CHECK(consumer >= 0 && consumer < num_consumers());
    return offsets_[consumer];
  }

  // Number of tuples the consumer has not read yet.
  int64_t Pending(int consumer) const {
    return size() - ConsumerOffset(consumer);
  }

  // Reads all tuples newer than the consumer's offset and advances it.
  DeltaBatch ConsumeNew(int consumer) {
    CHECK(consumer >= 0 && consumer < num_consumers());
    int64_t from = offsets_[consumer];
    DeltaBatch out(log_.begin() + from, log_.end());
    offsets_[consumer] = size();
    return out;
  }

  // Reads up to `limit` new tuples and advances the offset accordingly.
  DeltaBatch ConsumeUpTo(int consumer, int64_t limit) {
    CHECK(consumer >= 0 && consumer < num_consumers());
    int64_t from = offsets_[consumer];
    int64_t to = std::min(size(), from + limit);
    DeltaBatch out(log_.begin() + from, log_.begin() + to);
    offsets_[consumer] = to;
    return out;
  }

  const std::vector<DeltaTuple>& log() const { return log_; }

  // Drops all tuples and resets every consumer offset to zero.
  void Reset() {
    log_.clear();
    std::fill(offsets_.begin(), offsets_.end(), 0);
  }

 private:
  Schema schema_;
  std::string name_;
  std::vector<DeltaTuple> log_;
  std::vector<int64_t> offsets_;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_DELTA_BUFFER_H_
