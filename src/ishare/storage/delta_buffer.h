#ifndef ISHARE_STORAGE_DELTA_BUFFER_H_
#define ISHARE_STORAGE_DELTA_BUFFER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ishare/common/check.h"
#include "ishare/common/status.h"
#include "ishare/recovery/serializer.h"
#include "ishare/storage/delta.h"
#include "ishare/types/schema.h"

namespace ishare {

// Append-only log of delta tuples with independent consumer offsets.
//
// This replaces the Kafka topics of the paper's prototype: a subplan whose
// root has two or more parent subplans materializes its output here, and
// each parent pulls new tuples at its own pace (Sec. 2.2). Base relations
// are buffers of the same kind fed by the StreamSource.
//
// Runtime-facing entry points (the Consume* family and the offset
// accessors) are part of the recoverable error spine: malformed-but-
// possible inputs (a bad consumer id, a negative limit) and injected
// storage faults surface as Status instead of aborting, so a shared
// executor can fail one run without taking down co-scheduled queries.
// Faults injected with a finite `times` are *transient* (kUnavailable by
// convention) and auto-disarm, which is what the executors' retry/backoff
// path (DESIGN.md §8) recovers from.
class DeltaBuffer {
 public:
  DeltaBuffer() = default;
  explicit DeltaBuffer(Schema schema, std::string name = "")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Total tuples ever appended.
  int64_t size() const { return static_cast<int64_t>(log_.size()); }

  void Append(DeltaTuple t) { log_.push_back(std::move(t)); }
  void AppendBatch(const DeltaBatch& batch) {
    log_.insert(log_.end(), batch.begin(), batch.end());
  }

  // Registers a new consumer starting at offset 0; returns its id.
  int RegisterConsumer() {
    offsets_.push_back(0);
    return static_cast<int>(offsets_.size()) - 1;
  }
  int num_consumers() const { return static_cast<int>(offsets_.size()); }

  // Offset of `consumer`; InvalidArgument if the id is not registered.
  Result<int64_t> ConsumerOffset(int consumer) const {
    ISHARE_RETURN_NOT_OK(CheckConsumerId(consumer));
    return offsets_[consumer];
  }

  // Number of tuples the consumer has not read yet; InvalidArgument for a
  // bad id.
  Result<int64_t> Pending(int consumer) const {
    ISHARE_RETURN_NOT_OK(CheckConsumerId(consumer));
    return size() - offsets_[consumer];
  }

  // Reads all tuples newer than the consumer's offset and advances it.
  // The returned view aliases the log: it stays valid until the next
  // Append/AppendBatch/Reset and costs no allocation or copy.
  Result<DeltaSpan> ConsumeNew(int consumer) {
    return ConsumeUpTo(consumer, size());
  }

  // Reads up to `limit` new tuples and advances the offset accordingly.
  Result<DeltaSpan> ConsumeUpTo(int consumer, int64_t limit) {
    ISHARE_RETURN_NOT_OK(ConsumeCheck(consumer));
    if (limit < 0) {
      return Status::InvalidArgument("negative consume limit " +
                                     std::to_string(limit) + " on buffer '" +
                                     name_ + "'");
    }
    int64_t from = offsets_[consumer];
    int64_t to = std::min(size(), from + limit);
    offsets_[consumer] = to;
    return DeltaSpan(log_.data() + from, static_cast<size_t>(to - from));
  }

  const std::vector<DeltaTuple>& log() const { return log_; }

  // Drops all tuples, resets every consumer offset to zero, AND disarms
  // any injected fault: a reset buffer is fresh in every respect. (A
  // buffer that still errored on consume after Reset() was a trap for
  // harness reuse; tests pin the new contract.)
  void Reset() {
    log_.clear();
    std::fill(offsets_.begin(), offsets_.end(), 0);
    ClearFault();
  }

  // Fault injection: subsequent consumes return `st` until ClearFault().
  // With `times >= 0`, only the next `times` consumes fail, then the fault
  // disarms on its own — that models a transient outage (pass a
  // Status::Unavailable so retry policies classify it correctly). The
  // default `times = -1` keeps the fault armed forever (a poisoned
  // partition), matching the original single-argument behavior.
  void InjectFault(Status st, int64_t times = -1) {
    CHECK(!st.ok()) << "injected fault must be an error";
    if (times == 0) {  // zero failures requested: nothing to arm
      ClearFault();
      return;
    }
    fault_ = std::move(st);
    fault_remaining_ = times;
  }
  void ClearFault() {
    fault_ = Status::OK();
    fault_remaining_ = -1;
  }
  bool HasFault() const { return !fault_.ok(); }

  // ---- Checkpoint support (DESIGN.md §8) --------------------------------

  // Full state: log contents + consumer offsets. Schema/name/faults are
  // construction-time or test-only state and are deliberately excluded —
  // recovery rebuilds buffers from the same plan, then restores into them.
  void Snapshot(recovery::CheckpointWriter* w) const {
    w->U64(log_.size());
    for (const DeltaTuple& t : log_) {
      recovery::WriteRow(w, t.row);
      recovery::WriteQuerySet(w, t.qset);
      w->I64(t.weight);
    }
    SnapshotOffsets(w);
  }

  Status Restore(recovery::CheckpointReader* r) {
    uint64_t n = r->U64();
    if (n > r->remaining()) {
      r->Fail("delta log length " + std::to_string(n) + " exceeds payload");
      return r->status();
    }
    log_.clear();
    log_.reserve(n);
    for (uint64_t i = 0; i < n && r->ok(); ++i) {
      DeltaTuple t;
      t.row = recovery::ReadRow(r);
      t.qset = recovery::ReadQuerySet(r);
      t.weight = static_cast<int32_t>(r->I64());
      log_.push_back(std::move(t));
    }
    return RestoreOffsets(r);
  }

  // Offsets only. Used for base-relation buffers whose log is regenerated
  // deterministically by replaying the StreamSource to the checkpointed
  // fraction; persisting just the read positions keeps checkpoints small.
  void SnapshotOffsets(recovery::CheckpointWriter* w) const {
    w->U64(offsets_.size());
    for (int64_t off : offsets_) w->I64(off);
  }

  Status RestoreOffsets(recovery::CheckpointReader* r) {
    uint64_t n = r->U64();
    if (!r->ok()) return r->status();
    if (n != offsets_.size()) {
      r->Fail("checkpoint has " + std::to_string(n) +
              " consumer offsets but buffer '" + name_ + "' registered " +
              std::to_string(offsets_.size()));
      return r->status();
    }
    for (size_t i = 0; i < offsets_.size(); ++i) {
      int64_t off = r->I64();
      if (off < 0 || off > size()) {
        r->Fail("consumer offset " + std::to_string(off) +
                " out of range [0, " + std::to_string(size()) +
                "] on buffer '" + name_ + "'");
        return r->status();
      }
      offsets_[i] = off;
    }
    return r->status();
  }

 private:
  Status CheckConsumerId(int consumer) const {
    if (consumer < 0 || consumer >= num_consumers()) {
      return Status::InvalidArgument(
          "unknown consumer id " + std::to_string(consumer) + " on buffer '" +
          name_ + "' (" + std::to_string(num_consumers()) + " registered)");
    }
    return Status::OK();
  }

  Status ConsumeCheck(int consumer) {
    if (!fault_.ok()) {
      Status out = fault_;
      if (fault_remaining_ > 0 && --fault_remaining_ == 0) ClearFault();
      return out;
    }
    return CheckConsumerId(consumer);
  }

  Schema schema_;
  std::string name_;
  std::vector<DeltaTuple> log_;
  std::vector<int64_t> offsets_;
  Status fault_;
  int64_t fault_remaining_ = -1;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_DELTA_BUFFER_H_
