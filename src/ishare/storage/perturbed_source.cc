#include "ishare/storage/perturbed_source.h"

#include <algorithm>
#include <cmath>

#include "ishare/common/rng.h"

namespace ishare {

namespace {

uint64_t HashName(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

const char* KindName(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kBurst:
      return "burst";
    case FaultEvent::Kind::kStall:
      return "stall";
    case FaultEvent::Kind::kRateDrift:
      return "drift";
    case FaultEvent::Kind::kJitter:
      return "jitter";
    case FaultEvent::Kind::kReorder:
      return "reorder";
  }
  return "?";
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string FaultEvent::ToString() const {
  std::string s = KindName(kind);
  s += "(at=" + Num(at);
  if (duration > 0) s += ", dur=" + Num(duration);
  if (kind != Kind::kStall && kind != Kind::kReorder) {
    s += ", mag=" + Num(magnitude);
  }
  if (!table.empty()) s += ", table=" + table;
  s += ")";
  return s;
}

Status FaultPlan::Validate() const {
  for (const FaultEvent& e : events) {
    if (std::isnan(e.at) || std::isnan(e.duration) ||
        std::isnan(e.magnitude)) {
      return Status::InvalidArgument("fault event has NaN field: " +
                                     e.ToString());
    }
    if (e.at < 0 || e.at > 1 || e.duration < 0 || e.at + e.duration > 1 + 1e-9) {
      return Status::OutOfRange("fault event outside the window: " +
                                e.ToString());
    }
    if (e.magnitude < 0) {
      return Status::InvalidArgument("negative fault magnitude: " +
                                     e.ToString());
    }
  }
  return Status::OK();
}

std::string FaultPlan::ToString() const {
  std::string s = "FaultPlan{seed=" + std::to_string(seed);
  for (const FaultEvent& e : events) s += ", " + e.ToString();
  s += "}";
  return s;
}

FaultPlan FaultPlan::Random(uint64_t seed, int num_events,
                            const std::vector<std::string>& tables) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  for (int i = 0; i < num_events; ++i) {
    FaultEvent e;
    switch (rng.UniformInt(0, 4)) {
      case 0:
        e.kind = FaultEvent::Kind::kBurst;
        e.at = rng.UniformDouble(0.1, 0.9);
        e.magnitude = rng.UniformDouble(0.05, 0.3);
        break;
      case 1:
        e.kind = FaultEvent::Kind::kStall;
        e.at = rng.UniformDouble(0.0, 0.7);
        e.duration = rng.UniformDouble(0.05, std::min(0.25, 1.0 - e.at));
        break;
      case 2:
        e.kind = FaultEvent::Kind::kRateDrift;
        e.at = rng.UniformDouble(0.0, 0.6);
        e.duration = rng.UniformDouble(0.1, std::min(0.4, 1.0 - e.at));
        e.magnitude = rng.UniformDouble(0.25, 2.0);
        break;
      case 3:
        e.kind = FaultEvent::Kind::kJitter;
        e.magnitude = rng.UniformDouble(0.0, 0.15);
        break;
      default:
        e.kind = FaultEvent::Kind::kReorder;
        e.at = rng.UniformDouble(0.0, 0.8);
        e.duration = rng.UniformDouble(0.05, std::min(0.2, 1.0 - e.at));
        break;
    }
    if (!tables.empty() && rng.Bernoulli(0.5)) {
      e.table =
          tables[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(tables.size()) - 1))];
    }
    plan.events.push_back(std::move(e));
  }
  return plan;
}

PerturbedStreamSource::PerturbedStreamSource(FaultPlan plan)
    : plan_(std::move(plan)), plan_status_(plan_.Validate()) {}

double PerturbedStreamSource::JitterLag(const std::string& table) const {
  double lag = 0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind != FaultEvent::Kind::kJitter) continue;
    if (!e.table.empty() && e.table != table) continue;
    Rng rng(plan_.seed ^ HashName(table));
    lag += rng.UniformDouble(0.0, e.magnitude);
  }
  return std::min(lag, 1.0);
}

double PerturbedStreamSource::WarpFraction(const std::string& table,
                                           double t) const {
  double tt = std::max(0.0, std::min(t, 1.0) - JitterLag(table));
  // Integrate a non-negative arrival rate so overlapping events compose
  // monotonically: a stall zeroes the rate over its region, drifts
  // multiply it, bursts add an instantaneous step. Summing per-event
  // overlaps instead would double-subtract where two stalls overlap and
  // make W non-monotone.
  std::vector<double> cuts{0.0, tt};
  for (const FaultEvent& e : plan_.events) {
    if (!e.table.empty() && e.table != table) continue;
    if (e.kind == FaultEvent::Kind::kStall ||
        e.kind == FaultEvent::Kind::kRateDrift) {
      if (e.at < tt) cuts.push_back(e.at);
      if (e.at + e.duration < tt) cuts.push_back(e.at + e.duration);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  double w = 0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    double lo = cuts[i], hi = cuts[i + 1];
    if (hi <= lo) continue;
    double mid = 0.5 * (lo + hi);
    double rate = 1.0;
    for (const FaultEvent& e : plan_.events) {
      if (!e.table.empty() && e.table != table) continue;
      bool covers = mid >= e.at && mid < e.at + e.duration;
      if (!covers) continue;
      if (e.kind == FaultEvent::Kind::kStall) rate = 0.0;
      if (e.kind == FaultEvent::Kind::kRateDrift) rate *= e.magnitude;
    }
    w += rate * (hi - lo);
  }
  for (const FaultEvent& e : plan_.events) {
    if (!e.table.empty() && e.table != table) continue;
    if (e.kind == FaultEvent::Kind::kBurst && tt >= e.at) w += e.magnitude;
  }
  return std::max(0.0, std::min(w, 1.0));
}

const std::vector<int64_t>& PerturbedStreamSource::Permutation(
    const std::string& name, const TableStream& t) {
  auto it = perms_.find(name);
  if (it != perms_.end()) return it->second;

  int64_t n = static_cast<int64_t>(t.rows.size());
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;

  int event_index = 0;
  for (const FaultEvent& e : plan_.events) {
    ++event_index;
    if (e.kind != FaultEvent::Kind::kReorder) continue;
    if (!e.table.empty() && e.table != name) continue;
    int64_t lo = FloorTarget(e.at, n);
    int64_t hi = std::min(n, FloorTarget(std::min(1.0, e.at + e.duration), n));
    if (hi - lo < 2) continue;
    // Reordering must not move a delete ahead of its insert; skip regions
    // containing retractions.
    bool insert_only = true;
    for (int64_t i = lo; i < hi; ++i) {
      if (t.rows[static_cast<size_t>(i)].weight <= 0) insert_only = false;
    }
    if (!insert_only) continue;
    Rng rng(plan_.seed ^ HashName(name) ^
            (0xa076'1d64'78bd'642fULL * static_cast<uint64_t>(event_index)));
    for (int64_t i = hi - 1; i > lo; --i) {
      int64_t j = lo + rng.UniformInt(0, i - lo);
      std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
    }
  }
  return perms_.emplace(name, std::move(perm)).first->second;
}

Status PerturbedStreamSource::DoAdvance(double fraction,
                                        const Fraction* exact) {
  ISHARE_RETURN_NOT_OK(plan_status_);
  // The warp is irrational in general, so the exact rational fast path
  // does not apply; the trigger point still releases everything.
  (void)exact;
  for (auto& [name, t] : tables_) {
    int64_t total = static_cast<int64_t>(t->rows.size());
    int64_t target = fraction >= 1.0
                         ? total
                         : FloorTarget(WarpFraction(name, fraction), total);
    target = std::min(target, total);
    const std::vector<int64_t>& perm = Permutation(name, *t);
    for (int64_t i = t->released; i < target; ++i) {
      t->buffer->Append(t->rows[static_cast<size_t>(perm[static_cast<size_t>(i)])]);
    }
    t->released = std::max(t->released, target);
  }
  return Status::OK();
}

}  // namespace ishare
