#ifndef ISHARE_STORAGE_PERTURBED_SOURCE_H_
#define ISHARE_STORAGE_PERTURBED_SOURCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ishare/storage/stream_source.h"

namespace ishare {

// One deterministic deviation from the paper's uniform-arrival assumption.
// Faults are declarative: a plan fully describes a run's perturbation, so
// tests and benches replay identical fault traces from a seed.
struct FaultEvent {
  enum class Kind {
    // Instantly releases an extra `magnitude` fraction of the window's
    // data at point `at` (a producer catching up, a replayed partition).
    kBurst,
    // No data arrives in [at, at + duration] (broker hiccup, backpressure).
    kStall,
    // Arrival rate is multiplied by `magnitude` (>= 0) in
    // [at, at + duration]; < 1 models interference, > 1 a hot producer.
    kRateDrift,
    // Every affected table lags the window clock by a deterministic,
    // seeded offset in [0, magnitude]. Lagged data that never arrives
    // before the trigger is released at the trigger itself (late data).
    kJitter,
    // Rows whose window positions fall in [at, at + duration] are
    // released in a seeded shuffled order. Applied only to insert-only
    // regions: reordering a delete before its insert would break the
    // delta-stream contract, so such regions are left untouched.
    kReorder,
  };

  Kind kind = Kind::kBurst;
  double at = 0;        // window fraction where the fault begins
  double duration = 0;  // region length (stall / drift / reorder)
  double magnitude = 0; // burst size, rate factor, or max jitter lag
  std::string table;    // affected table; empty = every table

  std::string ToString() const;
};

// A replayable fault schedule: the seed drives every random choice the
// source makes (jitter lags, reorder shuffles), so two sources built from
// the same plan release byte-identical streams.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  Status Validate() const;
  std::string ToString() const;

  // A plan with `num_events` random faults of mixed kinds. When `tables`
  // is non-empty, roughly half the events target a random single table.
  static FaultPlan Random(uint64_t seed, int num_events,
                          const std::vector<std::string>& tables = {});
};

// StreamSource whose release schedule is perturbed by a FaultPlan. The
// requested window fraction t is mapped, per table, through a monotone
// warp W(t) built from the plan's events; W(t) is the data fraction
// actually visible at window time t. At the trigger (t = 1) every row is
// released regardless, so correctness is invariant under faults — only
// when work happens changes, which is exactly what the adaptive executor
// must absorb.
class PerturbedStreamSource : public StreamSource {
 public:
  explicit PerturbedStreamSource(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // Data fraction of `table` released once the window reaches `t`.
  double WarpFraction(const std::string& table, double t) const;

 protected:
  Status DoAdvance(double fraction, const Fraction* exact) override;

 private:
  double JitterLag(const std::string& table) const;
  // Release permutation for `t` (identity except in reorder regions);
  // built once per table and kept across Reset() so replays are identical.
  const std::vector<int64_t>& Permutation(const std::string& name,
                                          const TableStream& t);

  FaultPlan plan_;
  Status plan_status_;
  std::unordered_map<std::string, std::vector<int64_t>> perms_;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_PERTURBED_SOURCE_H_
