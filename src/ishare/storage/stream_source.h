#ifndef ISHARE_STORAGE_STREAM_SOURCE_H_
#define ISHARE_STORAGE_STREAM_SOURCE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ishare/common/check.h"
#include "ishare/storage/delta_buffer.h"

namespace ishare {

// Simulates the Kafka data source of the paper's prototype: the complete
// dataset for one trigger condition (e.g. the daily load) is preloaded, and
// rows are released into per-table base buffers as the (logical) trigger
// window progresses. Advancing to data fraction t in [0, 1] appends
// floor(t * total) rows of every table.
//
// The paper assumes a fixed arrival rate, so a data fraction maps linearly
// to wall-clock time within the trigger window.
class StreamSource {
 public:
  StreamSource() = default;

  // Registers a table with its full dataset for the trigger window.
  // Returns the base buffer that scans consume from.
  DeltaBuffer* AddTable(const std::string& name, Schema schema,
                        std::vector<Row> rows) {
    std::vector<DeltaTuple> deltas;
    deltas.reserve(rows.size());
    for (Row& r : rows) {
      deltas.emplace_back(std::move(r), QuerySet(), /*weight=*/1);
    }
    return AddTableDeltas(name, std::move(schema), std::move(deltas));
  }

  // Like AddTable, but the window may contain deletes and updates (an
  // update is a -1 tuple followed by a +1 tuple). Weights are released in
  // order as the window progresses; a delete must come after its insert.
  DeltaBuffer* AddTableDeltas(const std::string& name, Schema schema,
                              std::vector<DeltaTuple> deltas) {
    CHECK(tables_.find(name) == tables_.end())
        << "duplicate table " << name;
    auto t = std::make_unique<TableStream>();
    t->buffer = std::make_unique<DeltaBuffer>(std::move(schema), name);
    t->rows = std::move(deltas);
    DeltaBuffer* buf = t->buffer.get();
    tables_[name] = std::move(t);
    return buf;
  }

  DeltaBuffer* buffer(const std::string& name) const {
    auto it = tables_.find(name);
    CHECK(it != tables_.end()) << "unknown table " << name;
    return it->second->buffer.get();
  }

  int64_t TotalRows(const std::string& name) const {
    auto it = tables_.find(name);
    CHECK(it != tables_.end()) << "unknown table " << name;
    return static_cast<int64_t>(it->second->rows.size());
  }

  // Releases rows so that each table has received fraction t of its data.
  // Fractions must be non-decreasing across calls.
  void AdvanceTo(double fraction) {
    CHECK_GE(fraction, 0.0);
    CHECK_LE(fraction, 1.0 + 1e-9);
    fraction = std::min(fraction, 1.0);
    CHECK_GE(fraction, current_fraction_ - 1e-12)
        << "stream cannot move backwards";
    current_fraction_ = fraction;
    for (auto& [name, t] : tables_) {
      auto target =
          static_cast<int64_t>(fraction * static_cast<double>(t->rows.size()) +
                               1e-9);
      if (fraction >= 1.0) target = static_cast<int64_t>(t->rows.size());
      for (int64_t i = t->released; i < target; ++i) {
        t->buffer->Append(t->rows[i]);
      }
      t->released = std::max(t->released, target);
    }
  }

  double current_fraction() const { return current_fraction_; }

  // Rewinds the stream and clears all base buffers (consumer offsets reset).
  // The preloaded datasets are kept, so an experiment can be re-run.
  void Reset() {
    current_fraction_ = 0.0;
    for (auto& [name, t] : tables_) {
      t->released = 0;
      t->buffer->Reset();
    }
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, t] : tables_) names.push_back(name);
    return names;
  }

 private:
  struct TableStream {
    std::unique_ptr<DeltaBuffer> buffer;
    std::vector<DeltaTuple> rows;
    int64_t released = 0;
  };

  std::map<std::string, std::unique_ptr<TableStream>> tables_;
  double current_fraction_ = 0.0;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_STREAM_SOURCE_H_
