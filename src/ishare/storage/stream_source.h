#ifndef ISHARE_STORAGE_STREAM_SOURCE_H_
#define ISHARE_STORAGE_STREAM_SOURCE_H_

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ishare/common/check.h"
#include "ishare/common/fraction.h"
#include "ishare/common/status.h"
#include "ishare/storage/delta_buffer.h"

namespace ishare {

// Simulates the Kafka data source of the paper's prototype: the complete
// dataset for one trigger condition (e.g. the daily load) is preloaded, and
// rows are released into per-table base buffers as the (logical) trigger
// window progresses. Advancing to data fraction t in [0, 1] appends
// floor(t * total) rows of every table.
//
// The paper assumes a fixed arrival rate, so a data fraction maps linearly
// to wall-clock time within the trigger window. PerturbedStreamSource
// overrides the release schedule to model the bursts, stalls and drift
// real deployments see; executors therefore drive the source through the
// virtual advance spine and must not assume uniform arrival.
//
// Advancement is part of the recoverable error spine: NaN or backwards
// fractions return Status instead of aborting.
class StreamSource {
 public:
  StreamSource() = default;
  virtual ~StreamSource() = default;

  StreamSource(const StreamSource&) = delete;
  StreamSource& operator=(const StreamSource&) = delete;

  // Registers a table with its full dataset for the trigger window.
  // Returns the base buffer that scans consume from, or nullptr if the
  // table name is already registered.
  DeltaBuffer* AddTable(const std::string& name, Schema schema,
                        std::vector<Row> rows) {
    std::vector<DeltaTuple> deltas;
    deltas.reserve(rows.size());
    for (Row& r : rows) {
      deltas.emplace_back(std::move(r), QuerySet(), /*weight=*/1);
    }
    return AddTableDeltas(name, std::move(schema), std::move(deltas));
  }

  // Like AddTable, but the window may contain deletes and updates (an
  // update is a -1 tuple followed by a +1 tuple). Weights are released in
  // order as the window progresses; a delete must come after its insert.
  DeltaBuffer* AddTableDeltas(const std::string& name, Schema schema,
                              std::vector<DeltaTuple> deltas) {
    if (tables_.find(name) != tables_.end()) return nullptr;
    auto t = std::make_unique<TableStream>();
    t->buffer = std::make_unique<DeltaBuffer>(std::move(schema), name);
    t->rows = std::move(deltas);
    DeltaBuffer* buf = t->buffer.get();
    tables_[name] = std::move(t);
    return buf;
  }

  // Base buffer of `name`, or nullptr for an unknown table.
  DeltaBuffer* buffer(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) return nullptr;
    return it->second->buffer.get();
  }

  // Window size of `name` in rows, or -1 for an unknown table.
  int64_t TotalRows(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) return -1;
    return static_cast<int64_t>(it->second->rows.size());
  }

  // Releases rows so that each table has received fraction t of its data.
  // Fractions must be non-decreasing across calls.
  Status AdvanceTo(double fraction) {
    ISHARE_RETURN_NOT_OK(CheckFraction(fraction));
    fraction = std::min(std::max(fraction, 0.0), 1.0);
    current_fraction_ = std::max(current_fraction_, fraction);
    return DoAdvance(fraction, /*exact=*/nullptr);
  }

  // Exact-arithmetic advancement to the rational window point num/den.
  // Pace schedules are sets of such points; computing the release target
  // as floor(num * total / den) in integers keeps the schedule exact even
  // for paces whose reciprocals are not representable in binary (3, 7,
  // 11, ...). The executors drive the source through this entry point.
  Status AdvanceToStep(int64_t num, int64_t den) {
    if (den <= 0 || num < 0 || num > den) {
      return Status::InvalidArgument("bad window step " + std::to_string(num) +
                                     "/" + std::to_string(den));
    }
    Fraction f = Fraction::Make(num, den);
    double fraction = f.ToDouble();
    ISHARE_RETURN_NOT_OK(CheckFraction(fraction));
    current_fraction_ = std::max(current_fraction_, fraction);
    return DoAdvance(fraction, &f);
  }

  double current_fraction() const { return current_fraction_; }

  // Rewinds the stream and clears all base buffers (consumer offsets reset).
  // The preloaded datasets are kept, so an experiment can be re-run.
  virtual void Reset() {
    current_fraction_ = 0.0;
    for (auto& [name, t] : tables_) {
      t->released = 0;
      t->buffer->Reset();
    }
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, t] : tables_) names.push_back(name);
    return names;
  }

  // Copies every preloaded table (dataset, not release state) into `dst`.
  // Used to replay one dataset through differently perturbed sources.
  Status CloneTablesInto(StreamSource* dst) const {
    if (dst == nullptr) {
      return Status::InvalidArgument("null clone destination");
    }
    for (const auto& [name, t] : tables_) {
      if (dst->AddTableDeltas(name, t->buffer->schema(), t->rows) ==
          nullptr) {
        return Status::AlreadyExists("table '" + name +
                                     "' already present in destination");
      }
    }
    return Status::OK();
  }

 protected:
  struct TableStream {
    std::unique_ptr<DeltaBuffer> buffer;
    std::vector<DeltaTuple> rows;
    int64_t released = 0;
  };

  // Release-target computation for the floating-point path: floor with a
  // documented relative tolerance of 1e-9 — products that are
  // mathematically integral (pace boundaries) can land a few ulps on
  // either side of the integer, so values within the tolerance snap to the
  // nearest integer before flooring.
  static int64_t FloorTarget(double fraction, int64_t total) {
    double x = fraction * static_cast<double>(total);
    int64_t nearest = std::llround(x);
    if (std::abs(x - static_cast<double>(nearest)) <=
        1e-9 * std::max(1.0, std::abs(x))) {
      return nearest;
    }
    return static_cast<int64_t>(std::floor(x));
  }

  // Appends rows of `t` up to index `target` (clamped to the dataset).
  void ReleaseTo(TableStream& t, int64_t target) {
    target = std::min(target, static_cast<int64_t>(t.rows.size()));
    for (int64_t i = t.released; i < target; ++i) {
      t.buffer->Append(t.rows[i]);
    }
    t.released = std::max(t.released, target);
  }

  // The release schedule: subclasses perturb it. `exact` is non-null when
  // the caller advanced to a rational point. `fraction` is already
  // validated, clamped to [0, 1] and non-decreasing.
  virtual Status DoAdvance(double fraction, const Fraction* exact) {
    for (auto& [name, t] : tables_) {
      int64_t total = static_cast<int64_t>(t->rows.size());
      int64_t target;
      if (fraction >= 1.0) {
        target = total;
      } else if (exact != nullptr) {
        target = exact->num * total / exact->den;
      } else {
        target = FloorTarget(fraction, total);
      }
      ReleaseTo(*t, target);
    }
    return Status::OK();
  }

  Status CheckFraction(double fraction) const {
    if (std::isnan(fraction)) {
      return Status::InvalidArgument("window fraction is NaN");
    }
    if (fraction < -1e-12 || fraction > 1.0 + 1e-9) {
      return Status::OutOfRange("window fraction " +
                                std::to_string(fraction) +
                                " outside [0, 1]");
    }
    if (fraction < current_fraction_ - 1e-12) {
      return Status::InvalidArgument(
          "stream cannot move backwards (at " +
          std::to_string(current_fraction_) + ", asked " +
          std::to_string(fraction) + ")");
    }
    return Status::OK();
  }

  std::map<std::string, std::unique_ptr<TableStream>> tables_;
  double current_fraction_ = 0.0;
};

}  // namespace ishare

#endif  // ISHARE_STORAGE_STREAM_SOURCE_H_
