#include "ishare/types/column.h"

namespace ishare {

void ColumnVector::AppendValue(const Value& v) {
  switch (type_) {
    case DataType::kInt64:
      i64_.push_back(v.AsInt());
      return;
    case DataType::kFloat64:
      f64_.push_back(v.AsDouble());
      return;
    case DataType::kString:
      str_.push_back(v.AsString());
      return;
  }
}

Value ColumnVector::GetValue(int64_t i) const {
  DCHECK(i >= 0 && i < size());
  switch (type_) {
    case DataType::kInt64:
      return Value(i64_[static_cast<size_t>(i)]);
    case DataType::kFloat64:
      return Value(f64_[static_cast<size_t>(i)]);
    case DataType::kString:
      return Value(str_[static_cast<size_t>(i)]);
  }
  return Value();
}

void ColumnVector::AppendFrom(const ColumnVector& other, int64_t i) {
  DCHECK(other.type_ == type_);
  DCHECK(i >= 0 && i < other.size());
  switch (type_) {
    case DataType::kInt64:
      i64_.push_back(other.i64_[static_cast<size_t>(i)]);
      return;
    case DataType::kFloat64:
      f64_.push_back(other.f64_[static_cast<size_t>(i)]);
      return;
    case DataType::kString:
      str_.push_back(other.str_[static_cast<size_t>(i)]);
      return;
  }
}

int64_t ColumnVector::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(ColumnVector));
  switch (type_) {
    case DataType::kInt64:
      return bytes + static_cast<int64_t>(i64_.size() * sizeof(int64_t));
    case DataType::kFloat64:
      return bytes + static_cast<int64_t>(f64_.size() * sizeof(double));
    case DataType::kString: {
      for (const std::string& s : str_) {
        bytes += static_cast<int64_t>(sizeof(std::string) + s.size());
      }
      return bytes;
    }
  }
  return bytes;
}

}  // namespace ishare
