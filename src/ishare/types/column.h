// Typed column arrays — the storage half of the columnar batch-layout
// contract (DESIGN.md §12). A ColumnVector holds one column of a
// DeltaBatch as a flat typed array so the vectorized operator kernels
// (exec/vectorized.h) run tight, branch-free inner loops instead of
// switching on tagged Values per tuple. The engine is null-free (paper
// Sec. 2.3 operates on complete tuples), so every slot is valid; the
// contract reserves a validity bitmap for future nullable sources.

#ifndef ISHARE_TYPES_COLUMN_H_
#define ISHARE_TYPES_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ishare/types/value.h"

namespace ishare {

// One column of tuples as a flat typed array. Exactly one of the three
// payload vectors is active, selected by type(); the accessors CHECK.
// Growth is append-only within a batch; kernels never mutate a column
// they did not create (ownership rules in DESIGN.md §12.4).
class ColumnVector {
 public:
  ColumnVector() : type_(DataType::kInt64) {}
  explicit ColumnVector(DataType t) : type_(t) {}

  DataType type() const { return type_; }

  int64_t size() const {
    switch (type_) {
      case DataType::kInt64:
        return static_cast<int64_t>(i64_.size());
      case DataType::kFloat64:
        return static_cast<int64_t>(f64_.size());
      case DataType::kString:
        return static_cast<int64_t>(str_.size());
    }
    return 0;
  }

  void Reserve(int64_t n) {
    switch (type_) {
      case DataType::kInt64:
        i64_.reserve(static_cast<size_t>(n));
        return;
      case DataType::kFloat64:
        f64_.reserve(static_cast<size_t>(n));
        return;
      case DataType::kString:
        str_.reserve(static_cast<size_t>(n));
        return;
    }
  }

  // Resizes to n slots (new slots zero/empty). Used by kernels that write
  // results positionally instead of appending.
  void Resize(int64_t n) {
    switch (type_) {
      case DataType::kInt64:
        i64_.resize(static_cast<size_t>(n));
        return;
      case DataType::kFloat64:
        f64_.resize(static_cast<size_t>(n));
        return;
      case DataType::kString:
        str_.resize(static_cast<size_t>(n));
        return;
    }
  }

  void Clear() {
    i64_.clear();
    f64_.clear();
    str_.clear();
  }

  // Typed payload access. Mutable accessors are for the column's owner
  // (the batch or kernel that is building it); consumers take const refs.
  std::vector<int64_t>& i64() {
    DCHECK(type_ == DataType::kInt64);
    return i64_;
  }
  const std::vector<int64_t>& i64() const {
    DCHECK(type_ == DataType::kInt64);
    return i64_;
  }
  std::vector<double>& f64() {
    DCHECK(type_ == DataType::kFloat64);
    return f64_;
  }
  const std::vector<double>& f64() const {
    DCHECK(type_ == DataType::kFloat64);
    return f64_;
  }
  std::vector<std::string>& str() {
    DCHECK(type_ == DataType::kString);
    return str_;
  }
  const std::vector<std::string>& str() const {
    DCHECK(type_ == DataType::kString);
    return str_;
  }

  // Row-at-a-time bridge used at the shim boundary (DeltaBatch <->
  // ColumnBatch conversion) and by slow-path kernels; the hot loops go
  // through the typed accessors above.
  void AppendValue(const Value& v);
  Value GetValue(int64_t i) const;
  // Appends other[i] (types must match). Gather primitive for join output
  // materialization.
  void AppendFrom(const ColumnVector& other, int64_t i);

  // Deterministic approximate footprint in the same accounting units as
  // ApproxValueBytes (logical sizes, never capacity).
  int64_t ApproxBytes() const;

 private:
  DataType type_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
};

}  // namespace ishare

#endif  // ISHARE_TYPES_COLUMN_H_
