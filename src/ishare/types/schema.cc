#include "ishare/types/schema.h"

namespace ishare {

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_fields(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return -1;
}

int Schema::IndexOfOrDie(const std::string& name) const {
  int idx = IndexOf(name);
  CHECK_GE(idx, 0) << "no column named '" << name << "' in " << ToString();
  return idx;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Field> fields = a.fields_;
  fields.insert(fields.end(), b.fields_.begin(), b.fields_.end());
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  out += "]";
  return out;
}

}  // namespace ishare
