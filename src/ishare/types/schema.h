#ifndef ISHARE_TYPES_SCHEMA_H_
#define ISHARE_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "ishare/common/status.h"
#include "ishare/types/value.h"

namespace ishare {

// One column of a schema.
struct Field {
  std::string name;
  DataType type;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

// An ordered list of named, typed columns. Operators produce rows whose
// i-th value conforms to field(i).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const {
    CHECK(i >= 0 && i < num_fields());
    return fields_[i];
  }
  const std::vector<Field>& fields() const { return fields_; }

  // Index of the column with the given name, or -1 if absent.
  int IndexOf(const std::string& name) const;

  // Index of the column with the given name; CHECK-fails if absent.
  int IndexOfOrDie(const std::string& name) const;

  bool HasField(const std::string& name) const { return IndexOf(name) >= 0; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  // Concatenation of two schemas (e.g. join output = left ++ right).
  static Schema Concat(const Schema& a, const Schema& b);

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace ishare

#endif  // ISHARE_TYPES_SCHEMA_H_
