// Selection vectors — the liveness half of the columnar batch-layout
// contract (DESIGN.md §12.2). Filtering never moves column data: a
// kernel that drops tuples shrinks the selection instead, so downstream
// kernels iterate only surviving slots and conversion back to rows emits
// them in input order. The all-selected representation materializes no
// index array at all, which keeps the common no-filter path allocation-
// free and lets inner loops run over a contiguous [0, n) range.

#ifndef ISHARE_TYPES_SELECTION_H_
#define ISHARE_TYPES_SELECTION_H_

#include <cstdint>
#include <vector>

#include "ishare/common/check.h"

namespace ishare {

// An ordered set of live row indices into a columnar batch. Invariants
// (DESIGN.md §12.2): indices are strictly ascending and in [0, n) of the
// owning batch, so selection order IS input order and re-selection can
// only shrink the set.
class SelectionVector {
 public:
  SelectionVector() = default;

  // All n rows selected (fast path: no index array is materialized).
  static SelectionVector All(int64_t n) {
    SelectionVector s;
    s.all_ = true;
    s.n_ = n;
    return s;
  }

  // Empty selection.
  static SelectionVector None() { return SelectionVector(); }

  // Explicit index list; must be strictly ascending (DCHECKed).
  static SelectionVector FromIndices(std::vector<int32_t> idx) {
    SelectionVector s;
#ifndef NDEBUG
    for (size_t k = 1; k < idx.size(); ++k) DCHECK(idx[k - 1] < idx[k]);
#endif
    s.idx_ = std::move(idx);
    return s;
  }

  bool is_all() const { return all_; }
  bool empty() const { return count() == 0; }

  // Number of selected rows.
  int64_t count() const {
    return all_ ? n_ : static_cast<int64_t>(idx_.size());
  }

  // Row index of the k-th selected row.
  int32_t operator[](int64_t k) const {
    DCHECK(k >= 0 && k < count());
    return all_ ? static_cast<int32_t>(k) : idx_[static_cast<size_t>(k)];
  }

  // Appends a selected row during sparse construction; callers must
  // append in strictly ascending order (the DCHECK enforces it).
  void Append(int32_t i) {
    DCHECK(!all_);
    DCHECK(idx_.empty() || idx_.back() < i);
    idx_.push_back(i);
  }

  // Calls f(row_index) for every selected row, ascending. The two loop
  // shapes keep the all-selected path free of the indirection load.
  template <typename F>
  void ForEach(F&& f) const {
    if (all_) {
      for (int64_t i = 0; i < n_; ++i) f(static_cast<int32_t>(i));
    } else {
      for (int32_t i : idx_) f(i);
    }
  }

  // The index array of a sparse selection (empty when is_all()).
  const std::vector<int32_t>& indices() const { return idx_; }

 private:
  bool all_ = false;
  int64_t n_ = 0;               // row count when all_
  std::vector<int32_t> idx_;    // sparse indices otherwise
};

}  // namespace ishare

#endif  // ISHARE_TYPES_SELECTION_H_
