#include "ishare/types/value.h"

#include <sstream>

namespace ishare {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kFloat64:
      return "FLOAT64";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  if (is_string() || other.is_string()) {
    CHECK(is_string() && other.is_string())
        << "cannot compare " << DataTypeName(type()) << " with "
        << DataTypeName(other.type());
    const std::string& a = AsString();
    const std::string& b = other.AsString();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_int() && other.is_int()) {
    int64_t a = AsInt();
    int64_t b = other.AsInt();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64:
      return std::to_string(AsInt());
    case DataType::kFloat64: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

uint64_t HashRow(const Row& row) {
  uint64_t h = Mix64(row.size());
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

uint64_t HashRowColumns(const Row& row, const std::vector<int>& cols) {
  uint64_t h = Mix64(cols.size());
  for (int c : cols) {
    DCHECK(c >= 0 && c < static_cast<int>(row.size()));
    h = HashCombine(h, row[c].Hash());
  }
  return h;
}

Row ExtractColumns(const Row& row, const std::vector<int>& cols) {
  Row out;
  out.reserve(cols.size());
  for (int c : cols) {
    DCHECK(c >= 0 && c < static_cast<int>(row.size()));
    out.push_back(row[c]);
  }
  return out;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace ishare
