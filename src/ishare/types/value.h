#ifndef ISHARE_TYPES_VALUE_H_
#define ISHARE_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ishare/common/check.h"
#include "ishare/common/hash.h"

namespace ishare {

// Column data types supported by the engine. Dates are stored as Int64
// (days since epoch); decimals as Float64. This matches the operator set
// the paper's prototype supports (Sec. 2.3).
enum class DataType {
  kInt64,
  kFloat64,
  kString,
};

const char* DataTypeName(DataType t);

// A dynamically-typed scalar value flowing through the engine.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  DataType type() const {
    switch (v_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kFloat64;
      default:
        return DataType::kString;
    }
  }

  bool is_int() const { return v_.index() == 0; }
  bool is_double() const { return v_.index() == 1; }
  bool is_string() const { return v_.index() == 2; }

  int64_t AsInt() const {
    CHECK(is_int()) << "value is " << DataTypeName(type());
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
    CHECK(is_double()) << "value is " << DataTypeName(type());
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    CHECK(is_string()) << "value is " << DataTypeName(type());
    return std::get<std::string>(v_);
  }

  // Numeric comparison coerces int/double; strings compare lexically.
  // Comparing a string against a number is a programming error.
  int Compare(const Value& other) const;

  uint64_t Hash() const {
    switch (v_.index()) {
      case 0:
        return Mix64(static_cast<uint64_t>(std::get<int64_t>(v_)));
      case 1: {
        double d = std::get<double>(v_);
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return Mix64(bits);
      }
      default:
        return HashString(std::get<std::string>(v_));
    }
  }

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.v_.index() != b.v_.index()) {
      // Allow int/double cross-type numeric equality.
      if (!a.is_string() && !b.is_string()) {
        return a.AsDouble() == b.AsDouble();
      }
      return false;
    }
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::variant<int64_t, double, std::string> v_;
};

// A tuple payload: one Value per column of the producing operator's schema.
using Row = std::vector<Value>;

uint64_t HashRow(const Row& row);
std::string RowToString(const Row& row);

// Hash of a subset of columns (e.g. a join key or group-by key).
uint64_t HashRowColumns(const Row& row, const std::vector<int>& cols);

// Extracts the given columns into a new row (used for key extraction).
Row ExtractColumns(const Row& row, const std::vector<int>& cols);

// Deterministic approximate heap footprint of a value / row, used by the
// flow-control layer for memory accounting (DESIGN.md §9). Uses logical
// sizes (string length, element count), never container capacity, so two
// runs that hold the same data report the same bytes regardless of
// allocator growth history. Small strings are still charged their length:
// the estimate is a stable accounting unit, not an allocator model.
inline int64_t ApproxValueBytes(const Value& v) {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (v.is_string()) bytes += static_cast<int64_t>(v.AsString().size());
  return bytes;
}

inline int64_t ApproxRowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const Value& v : row) bytes += ApproxValueBytes(v);
  return bytes;
}

struct RowHasher {
  size_t operator()(const Row& r) const { return HashRow(r); }
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ishare

#endif  // ISHARE_TYPES_VALUE_H_
