#include "ishare/workload/tpch.h"

#include <algorithm>
#include <string>
#include <vector>

#include "ishare/common/rng.h"

namespace ishare {

namespace {

constexpr const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                    "MIDDLE EAST"};

// Standard TPC-H nation -> region mapping (25 nations).
struct NationDef {
  const char* name;
  int region;
};
constexpr NationDef kNations[] = {
    {"ALGERIA", 0},    {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},     {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},     {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},  {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},    {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},      {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},    {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};
constexpr int kNumNations = 25;

constexpr const char* kTypes1[] = {"STANDARD", "SMALL",   "MEDIUM",
                                   "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                   "POLISHED", "BRUSHED"};
constexpr const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                   "COPPER"};
constexpr const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
constexpr const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR",
                                        "PKG",  "PACK", "CAN", "DRUM"};
constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kShipModes[] = {"REG AIR", "AIR",   "RAIL", "SHIP",
                                      "TRUCK",   "MAIL", "FOB"};
constexpr const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD",
                                         "NONE", "TAKE BACK RETURN"};
constexpr const char* kColors[] = {
    "almond", "antique", "aquamarine", "azure",  "beige",  "bisque",
    "black",  "blanched", "blue",      "blush",  "brown",  "burlywood",
    "chartreuse", "chocolate", "coral", "cream", "cyan",   "forest",
    "green",  "olive"};
constexpr const char* kWords[] = {"carefully", "quick",    "pending",
                                  "furious",   "ironic",   "express",
                                  "regular",   "unusual",  "final",
                                  "bold",      "idle",     "even"};

template <typename T, size_t N>
const char* Pick(Rng* rng, const T (&arr)[N]) {
  return arr[rng->UniformInt(0, static_cast<int64_t>(N) - 1)];
}

std::string RandomComment(Rng* rng, bool maybe_special, bool maybe_complaint) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out += " ";
    out += Pick(rng, kWords);
  }
  // ~5% of comments contain the keyword patterns Q13/Q16 filter on.
  if (maybe_special && rng->Bernoulli(0.05)) {
    out += " special packages requests";
  }
  if (maybe_complaint && rng->Bernoulli(0.05)) {
    out += " Customer unhappy Complaints";
  }
  return out;
}

int64_t ScaleCount(double sf, int64_t base, int64_t min_count) {
  return std::max<int64_t>(min_count,
                           static_cast<int64_t>(sf * static_cast<double>(base)));
}

}  // namespace

int64_t TpchDate(int year, int month, int day) {
  // Leap years are ignored; the generator and all query literals use this
  // same encoding, so only consistency matters.
  static constexpr int kCumDays[] = {0,   31,  59,  90,  120, 151,
                                     181, 212, 243, 273, 304, 334};
  CHECK(month >= 1 && month <= 12);
  return static_cast<int64_t>(year - 1992) * 365 + kCumDays[month - 1] +
         (day - 1);
}

TpchDb::TpchDb(TpchScale scale) {
  Rng rng(scale.seed);
  const double sf = scale.sf;
  const int64_t n_supplier = ScaleCount(sf, 10'000, 10);
  const int64_t n_part = ScaleCount(sf, 200'000, 40);
  const int64_t n_customer = ScaleCount(sf, 150'000, 30);
  const int64_t n_orders = ScaleCount(sf, 1'500'000, 100);
  const int64_t max_date = TpchDate(1998, 8, 2);

  auto add = [&](const char* name, Schema schema, std::vector<Row> rows) {
    CHECK(catalog.AddTable(name, schema, ComputeTableStats(schema, rows)).ok());
    source.AddTable(name, std::move(schema), std::move(rows));
  };

  // region
  {
    Schema s({{"r_regionkey", DataType::kInt64}, {"r_name", DataType::kString}});
    std::vector<Row> rows;
    for (int i = 0; i < 5; ++i) {
      rows.push_back({Value(int64_t{i}), Value(std::string(kRegions[i]))});
    }
    add("region", std::move(s), std::move(rows));
  }

  // nation
  {
    Schema s({{"n_nationkey", DataType::kInt64},
              {"n_name", DataType::kString},
              {"n_regionkey", DataType::kInt64}});
    std::vector<Row> rows;
    for (int i = 0; i < kNumNations; ++i) {
      rows.push_back({Value(int64_t{i}), Value(std::string(kNations[i].name)),
                      Value(int64_t{kNations[i].region})});
    }
    add("nation", std::move(s), std::move(rows));
  }

  // supplier
  {
    Schema s({{"s_suppkey", DataType::kInt64},
              {"s_name", DataType::kString},
              {"s_nationkey", DataType::kInt64},
              {"s_acctbal", DataType::kFloat64},
              {"s_comment", DataType::kString}});
    std::vector<Row> rows;
    for (int64_t i = 0; i < n_supplier; ++i) {
      rows.push_back({Value(i), Value("Supplier#" + std::to_string(i)),
                      Value(rng.UniformInt(0, kNumNations - 1)),
                      Value(rng.UniformDouble(-999.99, 9999.99)),
                      Value(RandomComment(&rng, false, true))});
    }
    add("supplier", std::move(s), std::move(rows));
  }

  // part
  {
    Schema s({{"p_partkey", DataType::kInt64},
              {"p_name", DataType::kString},
              {"p_brand", DataType::kString},
              {"p_type", DataType::kString},
              {"p_size", DataType::kInt64},
              {"p_container", DataType::kString},
              {"p_retailprice", DataType::kFloat64}});
    std::vector<Row> rows;
    for (int64_t i = 0; i < n_part; ++i) {
      std::string name = std::string(Pick(&rng, kColors)) + " " +
                         Pick(&rng, kColors) + " " + Pick(&rng, kColors);
      std::string brand = "Brand#" + std::to_string(rng.UniformInt(1, 5)) +
                          std::to_string(rng.UniformInt(1, 5));
      std::string type = std::string(Pick(&rng, kTypes1)) + " " +
                         Pick(&rng, kTypes2) + " " + Pick(&rng, kTypes3);
      std::string container =
          std::string(Pick(&rng, kContainers1)) + " " + Pick(&rng, kContainers2);
      rows.push_back({Value(i), Value(std::move(name)), Value(std::move(brand)),
                      Value(std::move(type)), Value(rng.UniformInt(1, 50)),
                      Value(std::move(container)),
                      Value(rng.UniformDouble(900.0, 2000.0))});
    }
    add("part", std::move(s), std::move(rows));
  }

  // partsupp: 4 suppliers per part.
  {
    Schema s({{"ps_partkey", DataType::kInt64},
              {"ps_suppkey", DataType::kInt64},
              {"ps_availqty", DataType::kInt64},
              {"ps_supplycost", DataType::kFloat64}});
    std::vector<Row> rows;
    for (int64_t p = 0; p < n_part; ++p) {
      for (int k = 0; k < 4; ++k) {
        int64_t supp = (p + k * (n_supplier / 4 + 1)) % n_supplier;
        rows.push_back({Value(p), Value(supp), Value(rng.UniformInt(1, 9999)),
                        Value(rng.UniformDouble(1.0, 1000.0))});
      }
    }
    add("partsupp", std::move(s), std::move(rows));
  }

  // customer
  {
    Schema s({{"c_custkey", DataType::kInt64},
              {"c_name", DataType::kString},
              {"c_nationkey", DataType::kInt64},
              {"c_acctbal", DataType::kFloat64},
              {"c_mktsegment", DataType::kString},
              {"c_phonecc", DataType::kString}});
    std::vector<Row> rows;
    for (int64_t i = 0; i < n_customer; ++i) {
      int64_t nation = rng.UniformInt(0, kNumNations - 1);
      rows.push_back({Value(i), Value("Customer#" + std::to_string(i)),
                      Value(nation), Value(rng.UniformDouble(-999.99, 9999.99)),
                      Value(std::string(Pick(&rng, kSegments))),
                      Value(std::to_string(10 + nation))});
    }
    add("customer", std::move(s), std::move(rows));
  }

  // orders + lineitem (FK-consistent; ~4 lineitems per order).
  {
    Schema so({{"o_orderkey", DataType::kInt64},
               {"o_custkey", DataType::kInt64},
               {"o_orderstatus", DataType::kString},
               {"o_totalprice", DataType::kFloat64},
               {"o_orderdate", DataType::kInt64},
               {"o_orderpriority", DataType::kString},
               {"o_shippriority", DataType::kInt64},
               {"o_comment", DataType::kString}});
    Schema sl({{"l_orderkey", DataType::kInt64},
               {"l_partkey", DataType::kInt64},
               {"l_suppkey", DataType::kInt64},
               {"l_quantity", DataType::kFloat64},
               {"l_extendedprice", DataType::kFloat64},
               {"l_discount", DataType::kFloat64},
               {"l_tax", DataType::kFloat64},
               {"l_returnflag", DataType::kString},
               {"l_linestatus", DataType::kString},
               {"l_shipdate", DataType::kInt64},
               {"l_commitdate", DataType::kInt64},
               {"l_receiptdate", DataType::kInt64},
               {"l_shipmode", DataType::kString},
               {"l_shipinstruct", DataType::kString}});
    std::vector<Row> orders;
    std::vector<Row> lineitems;
    for (int64_t o = 0; o < n_orders; ++o) {
      int64_t orderdate = rng.UniformInt(0, max_date - 150);
      const char* status = rng.Bernoulli(0.5) ? "F" : "O";
      // As in TPC-H, a third of the customers never place orders (required
      // for Q22's anti join to have matches).
      int64_t cust = rng.UniformInt(0, n_customer - 1);
      if (cust % 3 == 0) cust = (cust + 1) % n_customer;
      orders.push_back({Value(o), Value(cust),
                        Value(std::string(status)),
                        Value(rng.UniformDouble(1000.0, 400000.0)),
                        Value(orderdate),
                        Value(std::string(Pick(&rng, kPriorities))),
                        Value(rng.UniformInt(0, 1)),
                        Value(RandomComment(&rng, true, false))});
      int64_t nl = rng.UniformInt(1, 7);
      for (int64_t l = 0; l < nl; ++l) {
        int64_t shipdate = orderdate + rng.UniformInt(1, 121);
        int64_t commitdate = orderdate + rng.UniformInt(30, 90);
        int64_t receiptdate = shipdate + rng.UniformInt(1, 30);
        double qty = static_cast<double>(rng.UniformInt(1, 50));
        // The supplier must be one of the part's four partsupp suppliers
        // (FK integrity; Q9/Q20 join lineitem with partsupp on both keys).
        int64_t partkey = rng.UniformInt(0, n_part - 1);
        int64_t suppkey =
            (partkey + rng.UniformInt(0, 3) * (n_supplier / 4 + 1)) %
            n_supplier;
        lineitems.push_back(
            {Value(o), Value(partkey), Value(suppkey), Value(qty),
             Value(qty * rng.UniformDouble(900.0, 2100.0)),
             Value(0.01 * static_cast<double>(rng.UniformInt(0, 10))),
             Value(0.01 * static_cast<double>(rng.UniformInt(0, 8))),
             Value(std::string(rng.Bernoulli(0.25) ? "R"
                                                   : (rng.Bernoulli(0.5) ? "A"
                                                                         : "N"))),
             Value(std::string(rng.Bernoulli(0.5) ? "O" : "F")),
             Value(shipdate), Value(commitdate), Value(receiptdate),
             Value(std::string(Pick(&rng, kShipModes))),
             Value(std::string(Pick(&rng, kShipInstruct)))});
      }
    }
    add("orders", std::move(so), std::move(orders));
    add("lineitem", std::move(sl), std::move(lineitems));
  }
}

}  // namespace ishare
