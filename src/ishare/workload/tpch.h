#ifndef ISHARE_WORKLOAD_TPCH_H_
#define ISHARE_WORKLOAD_TPCH_H_

#include <cstdint>

#include "ishare/catalog/catalog.h"
#include "ishare/storage/stream_source.h"

namespace ishare {

// Days since 1992-01-01 (the start of the TPC-H order-date domain). All
// date columns and date literals use this encoding.
int64_t TpchDate(int year, int month, int day);

struct TpchScale {
  // Fraction of the standard TPC-H sizes (SF 0.01 => 60k lineitem rows).
  double sf = 0.01;
  uint64_t seed = 7;
};

// Synthetic TPC-H dataset preloaded into a StreamSource, with calibrated
// statistics in the catalog. Substitutes for the paper's Kafka-fed SF-5
// dataset (see DESIGN.md): uniform value distributions over the standard
// TPC-H domains, with the correlations the queries rely on (FK integrity,
// commit/receipt/ship date ordering, comment keywords).
class TpchDb {
 public:
  explicit TpchDb(TpchScale scale = TpchScale());

  TpchDb(const TpchDb&) = delete;
  TpchDb& operator=(const TpchDb&) = delete;

  Catalog catalog;
  StreamSource source;

  // Rewinds the stream so another experiment can run over the same data.
  void Reset() { source.Reset(); }
};

}  // namespace ishare

#endif  // ISHARE_WORKLOAD_TPCH_H_
