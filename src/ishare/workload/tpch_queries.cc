#include "ishare/workload/tpch_queries.h"

namespace ishare {

namespace {

// Shorthand for the revenue expression used throughout TPC-H.
ExprPtr Revenue() {
  return Mul(Col("l_extendedprice"), Sub(Lit(1.0), Col("l_discount")));
}

ExprPtr YearOf(const char* date_col) {
  return Add(IntDiv(Col(date_col), Lit(365)), Lit(1992));
}

ExprPtr DateLit(int y, int m, int d) {
  return Expr::Literal(Value(TpchDate(y, m, d)));
}

// Each query builder takes the variant flag and chooses constants with
// V(base, alt): equality values swap, ranges shift by about half a window.
struct Ctx {
  PlanBuilder b;
  bool variant;

  template <typename T>
  T V(T base, T alt) const {
    return variant ? alt : base;
  }
};

QueryPlan Q1(const Ctx& c, QueryId id) {
  int64_t cutoff = c.V(TpchDate(1998, 12, 1) - 90, TpchDate(1998, 12, 1) - 180);
  PlanNodePtr l = c.b.ScanFiltered(
      "lineitem", Le(Col("l_shipdate"), Expr::Literal(Value(cutoff))));
  PlanNodePtr root = c.b.Aggregate(
      l, {"l_returnflag", "l_linestatus"},
      {SumAgg(Col("l_quantity"), "sum_qty"),
       SumAgg(Col("l_extendedprice"), "sum_base_price"),
       SumAgg(Revenue(), "sum_disc_price"),
       SumAgg(Mul(Revenue(), Add(Lit(1.0), Col("l_tax"))), "sum_charge"),
       AvgAgg(Col("l_quantity"), "avg_qty"),
       AvgAgg(Col("l_extendedprice"), "avg_price"),
       AvgAgg(Col("l_discount"), "avg_disc"), CountAgg("count_order")});
  return {id, "Q1", root};
}

QueryPlan Q2(const Ctx& c, QueryId id) {
  // partsupp ⋈ supplier ⋈ nation ⋈ region(EUROPE), shared between the
  // per-part MIN(ps_supplycost) subquery and the main block.
  PlanNodePtr ps = c.b.ScanFiltered("partsupp", nullptr);
  PlanNodePtr s = c.b.ScanFiltered("supplier", nullptr);
  PlanNodePtr n = c.b.ScanFiltered("nation", nullptr);
  PlanNodePtr r = c.b.ScanFiltered(
      "region", Eq(Col("r_name"), Lit(c.V("EUROPE", "ASIA"))));
  PlanNodePtr pssnr = c.b.Join(
      c.b.Join(c.b.Join(ps, s, {"ps_suppkey"}, {"s_suppkey"}), n,
               {"s_nationkey"}, {"n_nationkey"}),
      r, {"n_regionkey"}, {"r_regionkey"});

  PlanNodePtr min_sub = c.b.Project(
      c.b.Aggregate(pssnr, {"ps_partkey"},
                    {MinAgg(Col("ps_supplycost"), "min_supplycost")}),
      {{Col("ps_partkey"), "m_partkey"},
       {Col("min_supplycost"), "min_supplycost"}});

  PlanNodePtr p = c.b.ScanFiltered(
      "part",
      And(Eq(Col("p_size"), Lit(c.V(15, 25))),
          Expr::Like(Col("p_type"), c.V("%BRASS", "%STEEL"))));
  PlanNodePtr main =
      c.b.Join(p, pssnr, {"p_partkey"}, {"ps_partkey"});
  PlanNodePtr with_min =
      c.b.Join(main, min_sub, {"p_partkey"}, {"m_partkey"});
  PlanNodePtr f = c.b.Filter(
      with_min, Eq(Col("ps_supplycost"), Col("min_supplycost")));
  PlanNodePtr root = c.b.Project(f, {{Col("s_acctbal"), "s_acctbal"},
                                     {Col("s_name"), "s_name"},
                                     {Col("n_name"), "n_name"},
                                     {Col("p_partkey"), "p_partkey"}});
  return {id, "Q2", root};
}

QueryPlan Q3(const Ctx& c, QueryId id) {
  int64_t cut = c.V(TpchDate(1995, 3, 15), TpchDate(1995, 9, 15));
  PlanNodePtr cust = c.b.ScanFiltered(
      "customer",
      Eq(Col("c_mktsegment"), Lit(c.V("BUILDING", "MACHINERY"))));
  PlanNodePtr ord = c.b.ScanFiltered(
      "orders", Lt(Col("o_orderdate"), Expr::Literal(Value(cut))));
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem", Gt(Col("l_shipdate"), Expr::Literal(Value(cut))));
  PlanNodePtr lo = c.b.Join(line, ord, {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr loc = c.b.Join(lo, cust, {"o_custkey"}, {"c_custkey"});
  PlanNodePtr root =
      c.b.Aggregate(loc, {"l_orderkey", "o_orderdate", "o_shippriority"},
                    {SumAgg(Revenue(), "revenue")});
  return {id, "Q3", root};
}

QueryPlan Q4(const Ctx& c, QueryId id) {
  int y = c.V(1993, 1994);
  PlanNodePtr ord = c.b.ScanFiltered(
      "orders", And(Ge(Col("o_orderdate"), DateLit(y, 7, 1)),
                    Lt(Col("o_orderdate"), DateLit(y, 10, 1))));
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem", Lt(Col("l_commitdate"), Col("l_receiptdate")));
  PlanNodePtr semi = c.b.Join(ord, line, {"o_orderkey"}, {"l_orderkey"},
                              JoinType::kLeftSemi);
  PlanNodePtr root =
      c.b.Aggregate(semi, {"o_orderpriority"}, {CountAgg("order_count")});
  return {id, "Q4", root};
}

QueryPlan Q5(const Ctx& c, QueryId id) {
  int y = c.V(1994, 1995);
  PlanNodePtr sup = c.b.ScanFiltered("supplier", nullptr);
  PlanNodePtr nat = c.b.ScanFiltered("nation", nullptr);
  PlanNodePtr reg = c.b.ScanFiltered(
      "region", Eq(Col("r_name"), Lit(c.V("ASIA", "EUROPE"))));
  PlanNodePtr snr = c.b.Join(
      c.b.Join(sup, nat, {"s_nationkey"}, {"n_nationkey"}), reg,
      {"n_regionkey"}, {"r_regionkey"});
  PlanNodePtr line = c.b.ScanFiltered("lineitem", nullptr);
  PlanNodePtr ord = c.b.ScanFiltered(
      "orders", And(Ge(Col("o_orderdate"), DateLit(y, 1, 1)),
                    Lt(Col("o_orderdate"), DateLit(y + 1, 1, 1))));
  PlanNodePtr cust = c.b.ScanFiltered("customer", nullptr);
  PlanNodePtr lo = c.b.Join(line, ord, {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr loc = c.b.Join(lo, cust, {"o_custkey"}, {"c_custkey"});
  PlanNodePtr full = c.b.Join(loc, snr, {"l_suppkey", "c_nationkey"},
                              {"s_suppkey", "s_nationkey"});
  PlanNodePtr root =
      c.b.Aggregate(full, {"n_name"}, {SumAgg(Revenue(), "revenue")});
  return {id, "Q5", root};
}

QueryPlan Q6(const Ctx& c, QueryId id) {
  int y = c.V(1994, 1995);
  double dlo = c.V(0.05, 0.03), dhi = c.V(0.07, 0.05);
  double qty = c.V(24.0, 30.0);
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem",
      And(And(Ge(Col("l_shipdate"), DateLit(y, 1, 1)),
              Lt(Col("l_shipdate"), DateLit(y + 1, 1, 1))),
          And(Between(Col("l_discount"), Lit(dlo - 0.001), Lit(dhi + 0.001)),
              Lt(Col("l_quantity"), Lit(qty)))));
  PlanNodePtr root = c.b.Aggregate(
      line, {}, {SumAgg(Mul(Col("l_extendedprice"), Col("l_discount")),
                        "revenue")});
  return {id, "Q6", root};
}

QueryPlan Q7(const Ctx& c, QueryId id) {
  const char* n1 = c.V("FRANCE", "UNITED KINGDOM");
  const char* n2 = c.V("GERMANY", "RUSSIA");
  PlanNodePtr sn = c.b.Project(
      c.b.Join(c.b.ScanFiltered("supplier", nullptr),
               c.b.ScanFiltered("nation", nullptr), {"s_nationkey"},
               {"n_nationkey"}),
      {{Col("s_suppkey"), "sn_suppkey"}, {Col("n_name"), "supp_nation"}});
  PlanNodePtr cn = c.b.Project(
      c.b.Join(c.b.ScanFiltered("customer", nullptr),
               c.b.ScanFiltered("nation", nullptr), {"c_nationkey"},
               {"n_nationkey"}),
      {{Col("c_custkey"), "cn_custkey"}, {Col("n_name"), "cust_nation"}});
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem", And(Ge(Col("l_shipdate"), DateLit(1995, 1, 1)),
                      Le(Col("l_shipdate"), DateLit(1996, 12, 31))));
  PlanNodePtr lo = c.b.Join(line, c.b.ScanFiltered("orders", nullptr),
                            {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr locn = c.b.Join(lo, cn, {"o_custkey"}, {"cn_custkey"});
  PlanNodePtr full = c.b.Join(locn, sn, {"l_suppkey"}, {"sn_suppkey"});
  PlanNodePtr f = c.b.Filter(
      full, Or(And(Eq(Col("supp_nation"), Lit(n1)),
                   Eq(Col("cust_nation"), Lit(n2))),
               And(Eq(Col("supp_nation"), Lit(n2)),
                   Eq(Col("cust_nation"), Lit(n1)))));
  PlanNodePtr proj = c.b.Project(f, {{Col("supp_nation"), "supp_nation"},
                                     {Col("cust_nation"), "cust_nation"},
                                     {YearOf("l_shipdate"), "l_year"},
                                     {Revenue(), "volume"}});
  PlanNodePtr root =
      c.b.Aggregate(proj, {"supp_nation", "cust_nation", "l_year"},
                    {SumAgg(Col("volume"), "revenue")});
  return {id, "Q7", root};
}

QueryPlan Q8(const Ctx& c, QueryId id) {
  const char* type = c.V("ECONOMY ANODIZED STEEL", "LARGE POLISHED COPPER");
  const char* region = c.V("AMERICA", "ASIA");
  const char* nation = c.V("BRAZIL", "INDIA");
  PlanNodePtr part =
      c.b.ScanFiltered("part", Eq(Col("p_type"), Lit(type)));
  PlanNodePtr nr = c.b.Join(
      c.b.ScanFiltered("nation", nullptr),
      c.b.ScanFiltered("region", Eq(Col("r_name"), Lit(region))),
      {"n_regionkey"}, {"r_regionkey"});
  PlanNodePtr cnr =
      c.b.Join(c.b.ScanFiltered("customer", nullptr), nr, {"c_nationkey"},
               {"n_nationkey"});
  PlanNodePtr sn = c.b.Project(
      c.b.Join(c.b.ScanFiltered("supplier", nullptr),
               c.b.ScanFiltered("nation", nullptr), {"s_nationkey"},
               {"n_nationkey"}),
      {{Col("s_suppkey"), "sn_suppkey"}, {Col("n_name"), "supp_nation"}});
  PlanNodePtr ord = c.b.ScanFiltered(
      "orders", And(Ge(Col("o_orderdate"), DateLit(1995, 1, 1)),
                    Le(Col("o_orderdate"), DateLit(1996, 12, 31))));
  PlanNodePtr lo = c.b.Join(c.b.ScanFiltered("lineitem", nullptr), ord,
                            {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr lop = c.b.Join(lo, part, {"l_partkey"}, {"p_partkey"});
  PlanNodePtr lopc = c.b.Join(lop, cnr, {"o_custkey"}, {"c_custkey"});
  PlanNodePtr full = c.b.Join(lopc, sn, {"l_suppkey"}, {"sn_suppkey"});
  PlanNodePtr proj = c.b.Project(
      full,
      {{YearOf("o_orderdate"), "o_year"},
       {Revenue(), "volume"},
       {Mul(Eq(Col("supp_nation"), Lit(nation)), Revenue()), "nation_volume"}});
  PlanNodePtr agg = c.b.Aggregate(
      proj, {"o_year"},
      {SumAgg(Col("volume"), "total_volume"),
       SumAgg(Col("nation_volume"), "sum_nation_volume")});
  PlanNodePtr root = c.b.Project(
      agg, {{Col("o_year"), "o_year"},
            {Div(Col("sum_nation_volume"), Col("total_volume")), "mkt_share"}});
  return {id, "Q8", root};
}

QueryPlan Q9(const Ctx& c, QueryId id) {
  PlanNodePtr part = c.b.ScanFiltered(
      "part", Expr::Like(Col("p_name"), c.V("%green%", "%blue%")));
  PlanNodePtr lp = c.b.Join(c.b.ScanFiltered("lineitem", nullptr), part,
                            {"l_partkey"}, {"p_partkey"});
  PlanNodePtr lps = c.b.Join(lp, c.b.ScanFiltered("supplier", nullptr),
                             {"l_suppkey"}, {"s_suppkey"});
  PlanNodePtr lpsps =
      c.b.Join(lps, c.b.ScanFiltered("partsupp", nullptr),
               {"l_partkey", "l_suppkey"}, {"ps_partkey", "ps_suppkey"});
  PlanNodePtr lpso = c.b.Join(lpsps, c.b.ScanFiltered("orders", nullptr),
                              {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr full = c.b.Join(lpso, c.b.ScanFiltered("nation", nullptr),
                              {"s_nationkey"}, {"n_nationkey"});
  PlanNodePtr proj = c.b.Project(
      full, {{Col("n_name"), "nation"},
             {YearOf("o_orderdate"), "o_year"},
             {Sub(Revenue(), Mul(Col("ps_supplycost"), Col("l_quantity"))),
              "amount"}});
  PlanNodePtr root = c.b.Aggregate(proj, {"nation", "o_year"},
                                   {SumAgg(Col("amount"), "sum_profit")});
  return {id, "Q9", root};
}

QueryPlan Q10(const Ctx& c, QueryId id) {
  int64_t start = c.V(TpchDate(1993, 10, 1), TpchDate(1994, 4, 1));
  PlanNodePtr ord = c.b.ScanFiltered(
      "orders", And(Ge(Col("o_orderdate"), Expr::Literal(Value(start))),
                    Lt(Col("o_orderdate"),
                       Expr::Literal(Value(start + 92)))));
  PlanNodePtr line =
      c.b.ScanFiltered("lineitem", Eq(Col("l_returnflag"), Lit("R")));
  PlanNodePtr lo = c.b.Join(line, ord, {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr loc = c.b.Join(lo, c.b.ScanFiltered("customer", nullptr),
                             {"o_custkey"}, {"c_custkey"});
  PlanNodePtr full = c.b.Join(loc, c.b.ScanFiltered("nation", nullptr),
                              {"c_nationkey"}, {"n_nationkey"});
  PlanNodePtr root =
      c.b.Aggregate(full, {"c_custkey", "c_name", "n_name"},
                    {SumAgg(Revenue(), "revenue")});
  return {id, "Q10", root};
}

QueryPlan Q11(const Ctx& c, QueryId id) {
  const char* nation = c.V("GERMANY", "FRANCE");
  double frac = c.V(0.0001, 0.0002);
  PlanNodePtr psn = c.b.Join(
      c.b.Join(c.b.ScanFiltered("partsupp", nullptr),
               c.b.ScanFiltered("supplier", nullptr), {"ps_suppkey"},
               {"s_suppkey"}),
      c.b.ScanFiltered("nation", Eq(Col("n_name"), Lit(nation))),
      {"s_nationkey"}, {"n_nationkey"});
  PlanNodePtr proj = c.b.Project(
      psn,
      {{Col("ps_partkey"), "ps_partkey"},
       {Mul(Col("ps_supplycost"), Col("ps_availqty")), "val"}});
  PlanNodePtr by_part = c.b.Aggregate(proj, {"ps_partkey"},
                                      {SumAgg(Col("val"), "value")});
  PlanNodePtr total = c.b.Project(
      c.b.Aggregate(proj, {}, {SumAgg(Col("val"), "total_val")}),
      {{Mul(Col("total_val"), Lit(frac)), "threshold"}});
  PlanNodePtr cross = c.b.Join(by_part, total, {}, {});
  PlanNodePtr f = c.b.Filter(cross, Gt(Col("value"), Col("threshold")));
  PlanNodePtr root = c.b.Project(
      f, {{Col("ps_partkey"), "ps_partkey"}, {Col("value"), "value"}});
  return {id, "Q11", root};
}

QueryPlan Q12(const Ctx& c, QueryId id) {
  int y = c.V(1994, 1995);
  std::vector<Value> modes =
      c.variant ? std::vector<Value>{Value("RAIL"), Value("TRUCK")}
                : std::vector<Value>{Value("MAIL"), Value("SHIP")};
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem",
      And(And(Expr::In(Col("l_shipmode"), modes),
              And(Lt(Col("l_commitdate"), Col("l_receiptdate")),
                  Lt(Col("l_shipdate"), Col("l_commitdate")))),
          And(Ge(Col("l_receiptdate"), DateLit(y, 1, 1)),
              Lt(Col("l_receiptdate"), DateLit(y + 1, 1, 1)))));
  PlanNodePtr lo = c.b.Join(line, c.b.ScanFiltered("orders", nullptr),
                            {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr proj = c.b.Project(
      lo, {{Col("l_shipmode"), "l_shipmode"},
           {Expr::In(Col("o_orderpriority"),
                     {Value("1-URGENT"), Value("2-HIGH")}),
            "is_high"}});
  PlanNodePtr proj2 = c.b.Project(
      proj, {{Col("l_shipmode"), "l_shipmode"},
             {Col("is_high"), "high_line"},
             {Sub(Lit(1), Col("is_high")), "low_line"}});
  PlanNodePtr root = c.b.Aggregate(
      proj2, {"l_shipmode"},
      {SumAgg(Col("high_line"), "high_line_count"),
       SumAgg(Col("low_line"), "low_line_count")});
  return {id, "Q12", root};
}

QueryPlan Q13(const Ctx& c, QueryId id) {
  PlanNodePtr ord = c.b.ScanFiltered(
      "orders", Not(Expr::Like(Col("o_comment"),
                               c.V("%special%requests%", "%bold%requests%"))));
  PlanNodePtr per_cust =
      c.b.Aggregate(ord, {"o_custkey"}, {CountAgg("c_count")});
  PlanNodePtr root =
      c.b.Aggregate(per_cust, {"c_count"}, {CountAgg("custdist")});
  return {id, "Q13", root};
}

QueryPlan Q14(const Ctx& c, QueryId id) {
  int64_t start = c.V(TpchDate(1995, 9, 1), TpchDate(1996, 3, 1));
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem", And(Ge(Col("l_shipdate"), Expr::Literal(Value(start))),
                      Lt(Col("l_shipdate"),
                         Expr::Literal(Value(start + 30)))));
  PlanNodePtr lp = c.b.Join(line, c.b.ScanFiltered("part", nullptr),
                            {"l_partkey"}, {"p_partkey"});
  PlanNodePtr proj = c.b.Project(
      lp, {{Mul(Expr::Like(Col("p_type"), "PROMO%"), Revenue()),
            "promo_revenue"},
           {Revenue(), "total_revenue"}});
  PlanNodePtr agg = c.b.Aggregate(
      proj, {},
      {SumAgg(Col("promo_revenue"), "promo"),
       SumAgg(Col("total_revenue"), "total")});
  PlanNodePtr root = c.b.Project(
      agg, {{Mul(Lit(100.0), Div(Col("promo"), Col("total"))),
             "promo_revenue_pct"}});
  return {id, "Q14", root};
}

QueryPlan Q15(const Ctx& c, QueryId id) {
  int64_t start = c.V(TpchDate(1996, 1, 1), TpchDate(1996, 7, 1));
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem", And(Ge(Col("l_shipdate"), Expr::Literal(Value(start))),
                      Lt(Col("l_shipdate"),
                         Expr::Literal(Value(start + 90)))));
  PlanNodePtr revenue = c.b.Aggregate(line, {"l_suppkey"},
                                      {SumAgg(Revenue(), "total_revenue")});
  PlanNodePtr max_rev = c.b.Aggregate(
      revenue, {}, {MaxAgg(Col("total_revenue"), "max_revenue")});
  PlanNodePtr sj = c.b.Join(c.b.ScanFiltered("supplier", nullptr), revenue,
                            {"s_suppkey"}, {"l_suppkey"});
  PlanNodePtr cross = c.b.Join(sj, max_rev, {}, {});
  PlanNodePtr f = c.b.Filter(
      cross, Eq(Col("total_revenue"), Col("max_revenue")));
  PlanNodePtr root = c.b.Project(f, {{Col("s_suppkey"), "s_suppkey"},
                                     {Col("s_name"), "s_name"},
                                     {Col("total_revenue"), "total_revenue"}});
  return {id, "Q15", root};
}

QueryPlan Q16(const Ctx& c, QueryId id) {
  std::vector<Value> sizes =
      c.variant
          ? std::vector<Value>{Value(int64_t{4}), Value(int64_t{11}),
                               Value(int64_t{20}), Value(int64_t{28}),
                               Value(int64_t{33}), Value(int64_t{40}),
                               Value(int64_t{46}), Value(int64_t{50})}
          : std::vector<Value>{Value(int64_t{49}), Value(int64_t{14}),
                               Value(int64_t{23}), Value(int64_t{45}),
                               Value(int64_t{19}), Value(int64_t{3}),
                               Value(int64_t{36}), Value(int64_t{9})};
  PlanNodePtr part = c.b.ScanFiltered(
      "part",
      And(And(Ne(Col("p_brand"), Lit(c.V("Brand#45", "Brand#21"))),
              Not(Expr::Like(Col("p_type"),
                             c.V("MEDIUM POLISHED%", "SMALL BRUSHED%")))),
          Expr::In(Col("p_size"), sizes)));
  PlanNodePtr psp = c.b.Join(c.b.ScanFiltered("partsupp", nullptr), part,
                             {"ps_partkey"}, {"p_partkey"});
  PlanNodePtr bad_supp = c.b.ScanFiltered(
      "supplier", Expr::Like(Col("s_comment"), "%Customer%Complaints%"));
  PlanNodePtr anti = c.b.Join(psp, bad_supp, {"ps_suppkey"}, {"s_suppkey"},
                              JoinType::kLeftAnti);
  PlanNodePtr root = c.b.Aggregate(
      anti, {"p_brand", "p_type", "p_size"},
      {CountDistinctAgg(Col("ps_suppkey"), "supplier_cnt")});
  return {id, "Q16", root};
}

QueryPlan Q17(const Ctx& c, QueryId id) {
  PlanNodePtr line = c.b.ScanFiltered("lineitem", nullptr);
  PlanNodePtr part = c.b.ScanFiltered(
      "part", And(Eq(Col("p_brand"), Lit(c.V("Brand#23", "Brand#45"))),
                  Eq(Col("p_container"), Lit(c.V("MED BOX", "LG CAN")))));
  PlanNodePtr lp = c.b.Join(line, part, {"l_partkey"}, {"p_partkey"});
  PlanNodePtr avg_qty = c.b.Project(
      c.b.Aggregate(line, {"l_partkey"}, {AvgAgg(Col("l_quantity"), "a_qty")}),
      {{Col("l_partkey"), "a_partkey"},
       {Mul(Lit(0.2), Col("a_qty")), "qty_limit"}});
  PlanNodePtr j = c.b.Join(lp, avg_qty, {"l_partkey"}, {"a_partkey"});
  PlanNodePtr f = c.b.Filter(j, Lt(Col("l_quantity"), Col("qty_limit")));
  PlanNodePtr agg = c.b.Aggregate(
      f, {}, {SumAgg(Col("l_extendedprice"), "total_price")});
  PlanNodePtr root = c.b.Project(
      agg, {{Div(Col("total_price"), Lit(7.0)), "avg_yearly"}});
  return {id, "Q17", root};
}

QueryPlan Q18(const Ctx& c, QueryId id) {
  double threshold = c.V(300.0, 200.0);
  PlanNodePtr line = c.b.ScanFiltered("lineitem", nullptr);
  PlanNodePtr per_order = c.b.Aggregate(
      line, {"l_orderkey"}, {SumAgg(Col("l_quantity"), "order_qty")});
  PlanNodePtr big = c.b.Project(
      c.b.Filter(per_order, Gt(Col("order_qty"), Lit(threshold))),
      {{Col("l_orderkey"), "big_orderkey"}});
  PlanNodePtr lo = c.b.Join(line, c.b.ScanFiltered("orders", nullptr),
                            {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr loc = c.b.Join(lo, c.b.ScanFiltered("customer", nullptr),
                             {"o_custkey"}, {"c_custkey"});
  PlanNodePtr j = c.b.Join(loc, big, {"o_orderkey"}, {"big_orderkey"},
                           JoinType::kLeftSemi);
  PlanNodePtr root = c.b.Aggregate(
      j, {"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
      {SumAgg(Col("l_quantity"), "sum_qty")});
  return {id, "Q18", root};
}

QueryPlan Q19(const Ctx& c, QueryId id) {
  const char* b1 = c.V("Brand#12", "Brand#21");
  const char* b2 = c.V("Brand#23", "Brand#32");
  const char* b3 = c.V("Brand#34", "Brand#43");
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem",
      And(Expr::In(Col("l_shipmode"), {Value("AIR"), Value("REG AIR")}),
          Eq(Col("l_shipinstruct"), Lit("DELIVER IN PERSON"))));
  PlanNodePtr lp = c.b.Join(line, c.b.ScanFiltered("part", nullptr),
                            {"l_partkey"}, {"p_partkey"});
  auto bracket = [&](const char* brand, std::vector<Value> containers,
                     double qlo, double qhi, int shi) {
    return And(
        And(Eq(Col("p_brand"), Lit(brand)),
            Expr::In(Col("p_container"), std::move(containers))),
        And(Between(Col("l_quantity"), Lit(qlo), Lit(qhi)),
            Between(Col("p_size"), Lit(1), Lit(shi))));
  };
  PlanNodePtr f = c.b.Filter(
      lp,
      Or(Or(bracket(b1,
                    {Value("SM CASE"), Value("SM BOX"), Value("SM PACK"),
                     Value("SM PKG")},
                    1, 11, 5),
            bracket(b2,
                    {Value("MED BAG"), Value("MED BOX"), Value("MED PKG"),
                     Value("MED PACK")},
                    10, 20, 10)),
         bracket(b3,
                 {Value("LG CASE"), Value("LG BOX"), Value("LG PACK"),
                  Value("LG PKG")},
                 20, 30, 15)));
  PlanNodePtr root = c.b.Aggregate(f, {}, {SumAgg(Revenue(), "revenue")});
  return {id, "Q19", root};
}

QueryPlan Q20(const Ctx& c, QueryId id) {
  int y = c.V(1994, 1995);
  PlanNodePtr line = c.b.ScanFiltered(
      "lineitem", And(Ge(Col("l_shipdate"), DateLit(y, 1, 1)),
                      Lt(Col("l_shipdate"), DateLit(y + 1, 1, 1))));
  PlanNodePtr agg = c.b.Project(
      c.b.Aggregate(line, {"l_partkey", "l_suppkey"},
                    {SumAgg(Col("l_quantity"), "sum_qty")}),
      {{Col("l_partkey"), "a_partkey"},
       {Col("l_suppkey"), "a_suppkey"},
       {Mul(Lit(0.5), Col("sum_qty")), "qty_limit"}});
  PlanNodePtr part = c.b.ScanFiltered(
      "part", Expr::Like(Col("p_name"), c.V("forest%", "green%")));
  PlanNodePtr ps_sel =
      c.b.Join(c.b.ScanFiltered("partsupp", nullptr), part, {"ps_partkey"},
               {"p_partkey"}, JoinType::kLeftSemi);
  PlanNodePtr j = c.b.Join(ps_sel, agg, {"ps_partkey", "ps_suppkey"},
                           {"a_partkey", "a_suppkey"});
  PlanNodePtr f = c.b.Filter(j, Gt(Col("ps_availqty"), Col("qty_limit")));
  PlanNodePtr sp = c.b.Join(c.b.ScanFiltered("supplier", nullptr), f,
                            {"s_suppkey"}, {"ps_suppkey"},
                            JoinType::kLeftSemi);
  PlanNodePtr sn = c.b.Join(
      sp, c.b.ScanFiltered("nation",
                           Eq(Col("n_name"), Lit(c.V("CANADA", "JAPAN")))),
      {"s_nationkey"}, {"n_nationkey"});
  PlanNodePtr root = c.b.Project(
      sn, {{Col("s_name"), "s_name"}, {Col("s_suppkey"), "s_suppkey"}});
  return {id, "Q20", root};
}

QueryPlan Q21(const Ctx& c, QueryId id) {
  const char* nation = c.V("SAUDI ARABIA", "EGYPT");
  PlanNodePtr all_line = c.b.ScanFiltered("lineitem", nullptr);
  PlanNodePtr late = c.b.ScanFiltered(
      "lineitem", Gt(Col("l_receiptdate"), Col("l_commitdate")));

  // Orders with at least two distinct suppliers.
  PlanNodePtr multi = c.b.Project(
      c.b.Filter(c.b.Aggregate(all_line, {"l_orderkey"},
                               {CountDistinctAgg(Col("l_suppkey"), "nsupp")}),
                 Ge(Col("nsupp"), Lit(2))),
      {{Col("l_orderkey"), "m_orderkey"}});
  // Orders whose late lineitems all come from a single supplier.
  PlanNodePtr single_late = c.b.Project(
      c.b.Filter(c.b.Aggregate(late, {"l_orderkey"},
                               {CountDistinctAgg(Col("l_suppkey"), "nlate")}),
                 Eq(Col("nlate"), Lit(1))),
      {{Col("l_orderkey"), "sl_orderkey"}});

  PlanNodePtr lo = c.b.Join(
      late, c.b.ScanFiltered("orders", Eq(Col("o_orderstatus"), Lit("F"))),
      {"l_orderkey"}, {"o_orderkey"});
  PlanNodePtr los = c.b.Join(lo, c.b.ScanFiltered("supplier", nullptr),
                             {"l_suppkey"}, {"s_suppkey"});
  PlanNodePtr losn = c.b.Join(
      los, c.b.ScanFiltered("nation", Eq(Col("n_name"), Lit(nation))),
      {"s_nationkey"}, {"n_nationkey"});
  PlanNodePtr semi1 = c.b.Join(losn, multi, {"o_orderkey"}, {"m_orderkey"},
                               JoinType::kLeftSemi);
  PlanNodePtr semi2 = c.b.Join(semi1, single_late, {"o_orderkey"},
                               {"sl_orderkey"}, JoinType::kLeftSemi);
  PlanNodePtr root =
      c.b.Aggregate(semi2, {"s_name"}, {CountAgg("numwait")});
  return {id, "Q21", root};
}

QueryPlan Q22(const Ctx& c, QueryId id) {
  std::vector<Value> ccs =
      c.variant
          ? std::vector<Value>{Value("10"), Value("11"), Value("12"),
                               Value("14"), Value("15"), Value("16"),
                               Value("19")}
          : std::vector<Value>{Value("13"), Value("31"), Value("23"),
                               Value("29"), Value("30"), Value("18"),
                               Value("17")};
  PlanNodePtr pos = c.b.ScanFiltered(
      "customer", And(Expr::In(Col("c_phonecc"), ccs),
                      Gt(Col("c_acctbal"), Lit(0.0))));
  PlanNodePtr avg = c.b.Aggregate(
      pos, {}, {AvgAgg(Col("c_acctbal"), "avg_bal")});
  PlanNodePtr cand =
      c.b.ScanFiltered("customer", Expr::In(Col("c_phonecc"), ccs));
  PlanNodePtr anti =
      c.b.Join(cand, c.b.ScanFiltered("orders", nullptr), {"c_custkey"},
               {"o_custkey"}, JoinType::kLeftAnti);
  PlanNodePtr cross = c.b.Join(anti, avg, {}, {});
  PlanNodePtr f = c.b.Filter(cross, Gt(Col("c_acctbal"), Col("avg_bal")));
  PlanNodePtr root = c.b.Aggregate(
      f, {"c_phonecc"},
      {CountAgg("numcust"), SumAgg(Col("c_acctbal"), "totacctbal")});
  return {id, "Q22", root};
}

}  // namespace

QueryPlan TpchQuery(const Catalog& catalog, int qnum, QueryId id,
                    bool variant) {
  Ctx c{PlanBuilder(&catalog, id), variant};
  QueryPlan plan;
  switch (qnum) {
    case 1:
      plan = Q1(c, id);
      break;
    case 2:
      plan = Q2(c, id);
      break;
    case 3:
      plan = Q3(c, id);
      break;
    case 4:
      plan = Q4(c, id);
      break;
    case 5:
      plan = Q5(c, id);
      break;
    case 6:
      plan = Q6(c, id);
      break;
    case 7:
      plan = Q7(c, id);
      break;
    case 8:
      plan = Q8(c, id);
      break;
    case 9:
      plan = Q9(c, id);
      break;
    case 10:
      plan = Q10(c, id);
      break;
    case 11:
      plan = Q11(c, id);
      break;
    case 12:
      plan = Q12(c, id);
      break;
    case 13:
      plan = Q13(c, id);
      break;
    case 14:
      plan = Q14(c, id);
      break;
    case 15:
      plan = Q15(c, id);
      break;
    case 16:
      plan = Q16(c, id);
      break;
    case 17:
      plan = Q17(c, id);
      break;
    case 18:
      plan = Q18(c, id);
      break;
    case 19:
      plan = Q19(c, id);
      break;
    case 20:
      plan = Q20(c, id);
      break;
    case 21:
      plan = Q21(c, id);
      break;
    case 22:
      plan = Q22(c, id);
      break;
    default:
      CHECK(false) << "no TPC-H query " << qnum;
  }
  if (variant) plan.name += "v";
  return plan;
}

std::vector<QueryPlan> AllTpchQueries(const Catalog& catalog) {
  std::vector<QueryPlan> out;
  out.reserve(22);
  for (int qnum = 1; qnum <= 22; ++qnum) {
    out.push_back(TpchQuery(catalog, qnum, qnum - 1));
  }
  return out;
}

QueryPlan PaperQueryA(const Catalog& catalog, QueryId id) {
  PlanBuilder b(&catalog, id);
  PlanNodePtr agg_l =
      b.Aggregate(b.ScanFiltered("lineitem", nullptr), {"l_partkey"},
                  {SumAgg(Col("l_quantity"), "sum_quantity")});
  PlanNodePtr j = b.Join(b.ScanFiltered("part", nullptr), agg_l,
                         {"p_partkey"}, {"l_partkey"});
  PlanNodePtr root = b.Aggregate(
      j, {}, {SumAgg(Col("sum_quantity"), "total_sum_quantity")});
  return {id, "QA", root};
}

QueryPlan PaperQueryB(const Catalog& catalog, QueryId id) {
  PlanBuilder b(&catalog, id);
  PlanNodePtr agg_l =
      b.Aggregate(b.ScanFiltered("lineitem", nullptr), {"l_partkey"},
                  {SumAgg(Col("l_quantity"), "sum_quantity")});
  PlanNodePtr j = b.Join(
      b.ScanFiltered("part", And(Eq(Col("p_brand"), Lit("Brand#23")),
                                 Eq(Col("p_size"), Lit(15)))),
      agg_l, {"p_partkey"}, {"l_partkey"});
  PlanNodePtr avg = b.Aggregate(
      j, {}, {AvgAgg(Col("sum_quantity"), "avg_quantity")});
  PlanNodePtr cross =
      b.Join(b.ScanFiltered("partsupp", nullptr), avg, {}, {});
  PlanNodePtr f = b.Filter(cross, Lt(Col("ps_availqty"), Col("avg_quantity")));
  PlanNodePtr root = b.Project(f, {{Col("ps_partkey"), "ps_partkey"}});
  return {id, "QB", root};
}

std::vector<QueryPlan> SharingFriendlyQueries(const Catalog& catalog) {
  static constexpr int kNums[] = {4, 5, 7, 8, 9, 15, 17, 18, 20, 21};
  std::vector<QueryPlan> out;
  QueryId id = 0;
  for (int qnum : kNums) out.push_back(TpchQuery(catalog, qnum, id++));
  return out;
}

std::vector<QueryPlan> DecompositionWorkload(const Catalog& catalog) {
  static constexpr int kNums[] = {4, 5, 7, 8, 9, 15, 17, 18, 20, 21};
  std::vector<QueryPlan> out;
  QueryId id = 0;
  for (int qnum : kNums) out.push_back(TpchQuery(catalog, qnum, id++));
  for (int qnum : kNums) {
    out.push_back(TpchQuery(catalog, qnum, id++, /*variant=*/true));
  }
  return out;
}

}  // namespace ishare
