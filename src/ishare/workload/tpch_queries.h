#ifndef ISHARE_WORKLOAD_TPCH_QUERIES_H_
#define ISHARE_WORKLOAD_TPCH_QUERIES_H_

#include <vector>

#include "ishare/plan/builder.h"
#include "ishare/workload/tpch.h"

namespace ishare {

// Builds TPC-H query `qnum` (1..22) as a logical plan tree tagged with
// query id `id`.
//
// The plans follow the engine's operator set (Sec. 2.3): ORDER BY / LIMIT
// presentation clauses are dropped; EXISTS / IN subqueries become semi
// joins, NOT EXISTS / NOT IN become anti joins; scalar subqueries become
// key-less (cross) joins against single-row aggregates; CASE expressions
// become 0/1-valued boolean expressions multiplied into aggregate
// arguments; Q13's left outer join keeps only customers with at least one
// qualifying order; Q22's phone country code is the generated c_phonecc
// column. Every scan is wrapped in a Filter (possibly with no predicate)
// so the MQO optimizer's structural signatures line up across queries.
//
// With `variant` set, predicate constants are perturbed per Sec. 5.4: half
// of the equality predicates get a different value and range predicates
// shift to overlap the original by (at most) 50%. Used by the Fig. 14
// decomposition experiment.
QueryPlan TpchQuery(const Catalog& catalog, int qnum, QueryId id,
                    bool variant = false);

// All 22 TPC-H queries with ids 0..21.
std::vector<QueryPlan> AllTpchQueries(const Catalog& catalog);

// The paper's example queries from Fig. 2 / Sec. 5.2 (the "PairC"
// less-incrementable micro-benchmark pair).
QueryPlan PaperQueryA(const Catalog& catalog, QueryId id);
QueryPlan PaperQueryB(const Catalog& catalog, QueryId id);

// The 10 "sharing-friendly" queries of Fig. 12: Q4, Q5, Q7, Q8, Q9, Q15,
// Q17, Q18, Q20, Q21, with ids 0..9.
std::vector<QueryPlan> SharingFriendlyQueries(const Catalog& catalog);

// The Fig. 14 workload: the 10 sharing-friendly queries plus their
// predicate variants (ids 0..19).
std::vector<QueryPlan> DecompositionWorkload(const Catalog& catalog);

}  // namespace ishare

#endif  // ISHARE_WORKLOAD_TPCH_QUERIES_H_
