// Chaos orchestration tests (DESIGN.md §11): circuit breakers, the
// unified failure-reaction policy, deterministic fault schedules, the
// cross-layer injector, the Supervisor's degradation ladder, and the
// chaos harness gates — including a many-seed composed-fault sweep and a
// fault-concurrent crash/recovery cycle at four threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ishare/chaos/breaker.h"
#include "ishare/chaos/fault_schedule.h"
#include "ishare/chaos/supervisor.h"
#include "ishare/cost/estimator.h"
#include "ishare/flow/memory_budget.h"
#include "ishare/harness/chaos_harness.h"
#include "ishare/harness/result_compare.h"
#include "ishare/recovery/checkpoint_manager.h"
#include "ishare/recovery/checkpoint_store.h"
#include "test_util.h"

namespace ishare {
namespace {

using chaos::BreakerOptions;
using chaos::BreakerState;
using chaos::BreakerTransition;
using chaos::ChaosEvent;
using chaos::ChaosInjector;
using chaos::ChaosLayer;
using chaos::ChaosScheduleOptions;
using chaos::CircuitBreaker;
using chaos::ClassifyFailure;
using chaos::FaultSchedule;
using chaos::Reaction;
using chaos::ServiceLevel;
using chaos::Supervisor;
using chaos::SupervisorOptions;
using recovery::CheckpointManager;
using recovery::CheckpointManagerOptions;
using recovery::MemoryCheckpointStore;

// Same shared DAG as the crash/recovery suite: an aggregate feeding two
// query roots, so the window has shared and private event points.
std::vector<QueryPlan> MakeSharedDag(const Catalog& catalog) {
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(catalog, "orders", both);
  std::map<QueryId, ExprPtr> preds;
  preds[1] = Gt(Col("o_amount"), Lit(50.0));
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      filt, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, both);
  PlanNodePtr root0 = PlanNode::MakeProject(
      agg, {{Col("o_custkey"), "k"}, {Col("total"), "total"}},
      QuerySet::Single(0));
  PlanNodePtr root1 = PlanNode::MakeAggregate(
      agg, {}, {MaxAgg(Col("total"), "max_total")}, QuerySet::Single(1));
  return {QueryPlan{0, "q0", root0}, QueryPlan{1, "q1", root1}};
}

// Zero slack for q0, ample slack for q1: gate 3's protective invariant
// has something to protect, shedding has somewhere legal to land.
std::vector<double> TightLooseConstraints(CostEstimator* est,
                                          const PaceConfig& paces) {
  PlanCost cost = est->Estimate(paces);
  return {cost.query_final_work[0], 10.0 * cost.query_final_work[1]};
}

// Minimal Checkpointable for scripted Supervisor scenarios.
class MiniState : public recovery::Checkpointable {
 public:
  Status Snapshot(recovery::CheckpointWriter* w) const override {
    w->I64(value);
    return Status::OK();
  }
  Status Restore(recovery::CheckpointReader* r) override {
    value = r->I64();
    return r->status();
  }
  int64_t value = 0;
};

// ---------------------------------------------------------------------------
// Circuit breaker state machine
// ---------------------------------------------------------------------------

TEST(ChaosBreaker, TripsAfterConsecutiveFailuresThenRecovers) {
  CircuitBreaker b("test", BreakerOptions{/*failure_threshold=*/2,
                                          /*open_steps=*/2,
                                          /*success_threshold=*/2});
  EXPECT_EQ(b.StateAt(1), BreakerState::kClosed);
  b.RecordFailure(1, "boom");
  EXPECT_EQ(b.StateAt(1), BreakerState::kClosed);  // below threshold
  b.RecordSuccess(2);                              // resets the streak
  b.RecordFailure(3, "boom");
  EXPECT_EQ(b.StateAt(3), BreakerState::kClosed);
  b.RecordFailure(4, "boom");  // second consecutive failure: trip
  EXPECT_EQ(b.StateAt(4), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 1);
  EXPECT_FALSE(b.AllowRequest(5));  // cooldown (2 steps) not elapsed
  EXPECT_EQ(b.StateAt(6), BreakerState::kHalfOpen);  // lazy promotion
  EXPECT_TRUE(b.AllowRequest(6));
  b.RecordSuccess(6);
  EXPECT_EQ(b.StateAt(6), BreakerState::kHalfOpen);  // 1 < threshold 2
  b.RecordSuccess(7);
  EXPECT_EQ(b.StateAt(7), BreakerState::kClosed);
  EXPECT_EQ(b.trips(), 1);

  ASSERT_EQ(b.transitions().size(), 3u);
  EXPECT_EQ(b.transitions()[0].to, BreakerState::kOpen);
  EXPECT_EQ(b.transitions()[0].step, 4);
  EXPECT_EQ(b.transitions()[0].cause, "boom");
  EXPECT_EQ(b.transitions()[1].to, BreakerState::kHalfOpen);
  EXPECT_EQ(b.transitions()[1].step, 6);
  EXPECT_EQ(b.transitions()[2].to, BreakerState::kClosed);
  EXPECT_EQ(b.transitions()[2].step, 7);
  for (const BreakerTransition& t : b.transitions()) {
    EXPECT_EQ(t.breaker, "test");
  }
}

TEST(ChaosBreaker, HalfOpenFailureReTripsImmediately) {
  CircuitBreaker b("test", BreakerOptions{2, 2, 2});
  b.RecordFailure(1, "x");
  b.RecordFailure(2, "x");  // open at step 2
  EXPECT_EQ(b.StateAt(4), BreakerState::kHalfOpen);
  // Hysteresis: recovery needs success_threshold proofs, failure only one.
  b.RecordFailure(4, "still down");
  EXPECT_EQ(b.StateAt(4), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 2);
  EXPECT_EQ(b.StateAt(5), BreakerState::kOpen);  // cooldown restarted at 4
  EXPECT_EQ(b.StateAt(6), BreakerState::kHalfOpen);
}

TEST(ChaosBreaker, HalfOpenSuccessStreakIsResetByReTrip) {
  CircuitBreaker b("test", BreakerOptions{1, 1, 2});
  b.RecordFailure(1, "x");  // open at 1
  EXPECT_EQ(b.StateAt(2), BreakerState::kHalfOpen);
  b.RecordSuccess(2);       // one of two needed
  b.RecordFailure(3, "x");  // re-trip discards the partial streak
  EXPECT_EQ(b.StateAt(4), BreakerState::kHalfOpen);
  b.RecordSuccess(4);
  EXPECT_EQ(b.StateAt(4), BreakerState::kHalfOpen);  // streak restarted
  b.RecordSuccess(5);
  EXPECT_EQ(b.StateAt(5), BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// Failure classification (the policy spine)
// ---------------------------------------------------------------------------

TEST(ChaosPolicy, ClassifyFailureFollowsTheStatusTaxonomy) {
  EXPECT_EQ(ClassifyFailure(Status::Unavailable("blip")), Reaction::kRetry);
  EXPECT_EQ(ClassifyFailure(Status::ResourceExhausted("full")),
            Reaction::kDefer);
  EXPECT_EQ(ClassifyFailure(Status::DataLoss("torn")), Reaction::kDegrade);
  EXPECT_EQ(ClassifyFailure(Status::Internal("bug")), Reaction::kFail);
  EXPECT_EQ(ClassifyFailure(Status::NotFound("gone")), Reaction::kFail);
}

// ---------------------------------------------------------------------------
// Fault schedules: determinism and validation
// ---------------------------------------------------------------------------

TEST(ChaosSchedule, RandomIsDeterministicInTheSeed) {
  std::vector<std::string> tables = {"orders", "customer"};
  FaultSchedule a = FaultSchedule::Random(11, {}, tables);
  FaultSchedule b = FaultSchedule::Random(11, {}, tables);
  EXPECT_EQ(a.ToString(), b.ToString());
  FaultSchedule c = FaultSchedule::Random(12, {}, tables);
  EXPECT_NE(a.ToString(), c.ToString());
  for (uint64_t seed = 0; seed < 64; ++seed) {
    FaultSchedule s = FaultSchedule::Random(seed, {}, tables);
    EXPECT_TRUE(s.Validate().ok()) << "seed " << seed << ": " << s.ToString();
  }
}

TEST(ChaosSchedule, ValidateRejectsMalformedEvents) {
  FaultSchedule ok;
  ok.events = {{ChaosLayer::kStoreTransient, 1, -1, 0}};  // -1 = forever
  EXPECT_TRUE(ok.Validate().ok());

  FaultSchedule step0;
  step0.events = {{ChaosLayer::kBufferStorm, 0, 1, 0}};
  EXPECT_FALSE(step0.Validate().ok());

  FaultSchedule count0;
  count0.events = {{ChaosLayer::kStoreTransient, 1, 0, 0}};
  EXPECT_FALSE(count0.Validate().ok());

  FaultSchedule negmag;
  negmag.events = {{ChaosLayer::kMemoryPressure, 1, 1, -0.5}};
  EXPECT_FALSE(negmag.Validate().ok());
}

// ---------------------------------------------------------------------------
// Injector: per-layer application against live components
// ---------------------------------------------------------------------------

TEST(ChaosInjectorTest, PressureSpikesRaiseTheBudgetThenRetire) {
  flow::MemoryBudget budget(1000);
  FaultSchedule sched;
  // 0.5 * budget = 500 phantom bytes, held for steps 1 and 2.
  sched.events = {{ChaosLayer::kMemoryPressure, 1, 2, 0.5}};
  ChaosInjector::Targets targets;
  targets.budget = &budget;
  ChaosInjector inj(sched, targets);

  ASSERT_TRUE(inj.OnStepBoundary(0).ok());
  EXPECT_EQ(budget.used(), 500);
  ASSERT_TRUE(inj.OnStepBoundary(1).ok());
  EXPECT_EQ(budget.used(), 500);  // until_step = 2 has not completed
  ASSERT_TRUE(inj.OnStepBoundary(2).ok());
  EXPECT_EQ(budget.used(), 0);  // spike retired

  EXPECT_TRUE(inj.AnyInjected(ChaosLayer::kMemoryPressure, 1));
  EXPECT_FALSE(inj.AnyInjected(ChaosLayer::kMemoryPressure, 0));
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].step, 1);
}

TEST(ChaosInjectorTest, StoreTransientEventsArmWriteFaults) {
  MemoryCheckpointStore store;
  FaultSchedule sched;
  sched.events = {{ChaosLayer::kStoreTransient, 1, 2, 0}};
  ChaosInjector::Targets targets;
  targets.store = &store;
  ChaosInjector inj(sched, targets);

  ASSERT_TRUE(inj.OnStepBoundary(0).ok());
  EXPECT_FALSE(store.Stage(1, "frame").ok());
  EXPECT_FALSE(store.Stage(1, "frame").ok());
  EXPECT_TRUE(store.Stage(1, "frame").ok());  // fault count exhausted
  EXPECT_TRUE(store.Commit(1).ok());
  EXPECT_TRUE(inj.AnyInjected(ChaosLayer::kStoreTransient, 1));
}

TEST(ChaosInjectorTest, BitRotCorruptsTheNewestCommittedEpoch) {
  MemoryCheckpointStore store;
  ASSERT_TRUE(store.Stage(3, "good frame").ok());
  ASSERT_TRUE(store.Commit(3).ok());
  FaultSchedule sched;
  sched.events = {{ChaosLayer::kStoreBitRot, 1, 1, 0}};
  ChaosInjector::Targets targets;
  targets.store = &store;
  ChaosInjector inj(sched, targets);

  ASSERT_TRUE(inj.OnStepBoundary(0).ok());
  Result<std::string> frame = store.Load(3);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, "chaos-bit-rot-garbage");
  EXPECT_TRUE(inj.AnyInjected(ChaosLayer::kStoreBitRot, 1));
}

TEST(ChaosInjectorTest, BitRotWithNothingCommittedIsNotLogged) {
  MemoryCheckpointStore store;
  FaultSchedule sched;
  sched.events = {{ChaosLayer::kStoreBitRot, 1, 1, 0}};
  ChaosInjector::Targets targets;
  targets.store = &store;
  ChaosInjector inj(sched, targets);
  ASSERT_TRUE(inj.OnStepBoundary(0).ok());
  EXPECT_TRUE(inj.log().empty());  // no rot planted, no attribution claim
}

TEST(ChaosInjectorTest, MissingTargetsAreSkippedNotLogged) {
  FaultSchedule sched;
  sched.events = {{ChaosLayer::kBufferStorm, 1, 2, 0},
                  {ChaosLayer::kStoreTransient, 1, 2, 0},
                  {ChaosLayer::kStoreBitRot, 1, 1, 0},
                  {ChaosLayer::kMemoryPressure, 1, 2, 0.5},
                  {ChaosLayer::kWorkerStall, 1, 4, 0.001}};
  ChaosInjector inj(sched, ChaosInjector::Targets{});
  ASSERT_TRUE(inj.OnStepBoundary(0).ok());
  ASSERT_TRUE(inj.OnStepBoundary(1).ok());
  EXPECT_TRUE(inj.log().empty());
  EXPECT_FALSE(inj.AnyInjected(ChaosLayer::kBufferStorm, 2));
}

TEST(ChaosInjectorTest, BufferStormsAreAbsorbedByTheConsumeRetrySpine) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  PaceConfig paces = {2, 2, 4};

  StreamSource clean;
  ASSERT_TRUE(db.source.CloneTablesInto(&clean).ok());
  PaceExecutor ref(&g, &clean);
  ASSERT_TRUE(ref.Run(paces).ok());

  StreamSource stormy;
  ASSERT_TRUE(db.source.CloneTablesInto(&stormy).ok());
  PaceExecutor exec(&g, &stormy);
  FaultSchedule sched;
  // Two storms of 2 faults per base buffer: below the consume-retry
  // budget (4 attempts), so both must be absorbed invisibly.
  sched.events = {{ChaosLayer::kBufferStorm, 1, 2, 0},
                  {ChaosLayer::kBufferStorm, 3, 2, 0}};
  ChaosInjector::Targets targets;
  targets.source = &stormy;
  ChaosInjector inj(sched, targets);
  exec.set_after_step_hook(
      [&inj](int64_t step) { return inj.OnStepBoundary(step); });
  ASSERT_TRUE(exec.BeginWindow(paces).ok());
  ASSERT_TRUE(inj.OnStepBoundary(0).ok());
  Result<RunResult> run = exec.ResumeWindow();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(inj.log().size(), 2u);
  for (QueryId q = 0; q < 2; ++q) {
    EXPECT_TRUE(ResultsEquivalent(MaterializeResult(*ref.query_output(q), q),
                                  MaterializeResult(*exec.query_output(q), q)))
        << "query " << q;
  }
}

TEST(ChaosWorkerStall, InjectedStallsNeverChangeParallelResults) {
  TestDb db(/*n_orders=*/200, /*n_customers=*/8);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  PaceConfig paces = {2, 2, 4};

  StreamSource serial_src;
  ASSERT_TRUE(db.source.CloneTablesInto(&serial_src).ok());
  PaceExecutor serial(&g, &serial_src);
  ASSERT_TRUE(serial.Run(paces).ok());

  StreamSource par_src;
  ASSERT_TRUE(db.source.CloneTablesInto(&par_src).ok());
  ExecOptions opts;
  opts.sched.num_threads = 4;
  opts.sched.morsel_min_tuples = 1;  // force operator-level fan-out
  PaceExecutor exec(&g, &par_src, opts);
  ASSERT_NE(exec.worker_pool(), nullptr);

  FaultSchedule sched;
  sched.events = {{ChaosLayer::kWorkerStall, 1, 8, 0.0005},
                  {ChaosLayer::kWorkerStall, 3, 4, 0.001}};
  ChaosInjector::Targets targets;
  targets.pool = exec.worker_pool();
  ChaosInjector inj(sched, targets);
  exec.set_after_step_hook(
      [&inj](int64_t step) { return inj.OnStepBoundary(step); });
  ASSERT_TRUE(exec.BeginWindow(paces).ok());
  ASSERT_TRUE(inj.OnStepBoundary(0).ok());
  Result<RunResult> run = exec.ResumeWindow();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(inj.log().size(), 2u);
  // Stragglers reorder wall-clock completion, never observable state.
  EXPECT_EQ(serial.StateFingerprint(), exec.StateFingerprint());
  for (QueryId q = 0; q < 2; ++q) {
    EXPECT_TRUE(
        ResultsEquivalent(MaterializeResult(*serial.query_output(q), q),
                          MaterializeResult(*exec.query_output(q), q)))
        << "query " << q;
  }
}

// ---------------------------------------------------------------------------
// Supervisor: scripted scenarios over the policy spine
// ---------------------------------------------------------------------------

TEST(ChaosSupervisor, RepeatedReTripsEscalateToSafeStop) {
  MemoryCheckpointStore store;
  CheckpointManagerOptions mopts;
  mopts.epoch_len = 1;
  mopts.overhead_budget = 0;
  mopts.store_retry.max_attempts = 1;
  CheckpointManager mgr(&store, mopts);
  SupervisorOptions sopts;
  sopts.checkpoint_breaker = {1, 1, 1};
  sopts.max_checkpoint_trips = 1;
  Supervisor sup(sopts, &mgr);
  store.InjectWriteFault(Status::Unavailable("store down"), /*times=*/-1);

  MiniState state;
  for (int64_t step = 1; step <= 3; ++step) {
    state.value = step;
    ASSERT_TRUE(sup.OnStepComplete(step, state).ok());
  }
  // Step 1 trips; step 2's half-open probe fails, re-trips past the
  // budget, and the Supervisor stops feeding the proven-bad store.
  EXPECT_TRUE(sup.safe_stopped());
  EXPECT_EQ(sup.level(), ServiceLevel::kSafeStop);
  EXPECT_EQ(sup.stats().safe_stops, 1);
  EXPECT_EQ(sup.stats().checkpoint_failures, 2);
  EXPECT_EQ(sup.checkpoint_breaker().trips(), 2);
  EXPECT_EQ(mgr.stats().checkpoints, 0);
  EXPECT_EQ(mgr.stats().last_commit_epoch, 0);

  ASSERT_EQ(sup.ladder_log().size(), 2u);
  EXPECT_EQ(sup.ladder_log()[0].to, ServiceLevel::kCheckpointDegraded);
  EXPECT_EQ(sup.ladder_log()[0].step, 1);
  EXPECT_EQ(sup.ladder_log()[1].to, ServiceLevel::kSafeStop);
  EXPECT_EQ(sup.ladder_log()[1].step, 2);
}

TEST(ChaosSupervisor, BreakerRecoveryRestoresFullService) {
  MemoryCheckpointStore store;
  CheckpointManagerOptions mopts;
  mopts.epoch_len = 1;
  mopts.overhead_budget = 0;
  mopts.store_retry.max_attempts = 1;  // one armed fault fails one boundary
  CheckpointManager mgr(&store, mopts);
  SupervisorOptions sopts;
  sopts.checkpoint_breaker = {2, 2, 2};
  sopts.cadence_stretch = 1;  // probe every half-open boundary
  Supervisor sup(sopts, &mgr);
  store.InjectWriteFault(Status::Unavailable("flaky store"), /*times=*/2);

  MiniState state;
  for (int64_t step = 1; step <= 5; ++step) {
    state.value = step;
    ASSERT_TRUE(sup.OnStepComplete(step, state).ok());
  }
  // Fail@1, fail@2 → trip; open skips step 3 (track-only fallback);
  // half-open probes at 4 and 5 succeed → closed, full service again.
  EXPECT_EQ(sup.level(), ServiceLevel::kFull);
  EXPECT_FALSE(sup.safe_stopped());
  EXPECT_EQ(sup.checkpoint_breaker().trips(), 1);
  EXPECT_EQ(sup.stats().checkpoint_failures, 2);
  EXPECT_EQ(sup.stats().checkpoints_skipped_open, 1);
  EXPECT_EQ(sup.stats().checkpoints_stretched, 0);
  EXPECT_EQ(mgr.stats().checkpoints, 2);  // steps 4 and 5
  EXPECT_EQ(mgr.stats().last_commit_epoch, 5);
  EXPECT_EQ(mgr.stats().consecutive_failures, 0);

  std::vector<BreakerTransition> trans = sup.breaker_transitions();
  ASSERT_EQ(trans.size(), 3u);
  EXPECT_EQ(trans[0].to, BreakerState::kOpen);
  EXPECT_EQ(trans[0].step, 2);
  EXPECT_EQ(trans[1].to, BreakerState::kHalfOpen);
  EXPECT_EQ(trans[1].step, 4);
  EXPECT_EQ(trans[2].to, BreakerState::kClosed);
  EXPECT_EQ(trans[2].step, 5);

  ASSERT_EQ(sup.ladder_log().size(), 2u);
  EXPECT_EQ(sup.ladder_log()[0].to, ServiceLevel::kCheckpointDegraded);
  EXPECT_EQ(sup.ladder_log()[1].to, ServiceLevel::kFull);
}

TEST(ChaosSupervisor, HalfOpenCadenceStretchSkipsProbes) {
  MemoryCheckpointStore store;
  CheckpointManagerOptions mopts;
  mopts.epoch_len = 1;
  mopts.overhead_budget = 0;
  mopts.store_retry.max_attempts = 1;
  CheckpointManager mgr(&store, mopts);
  SupervisorOptions sopts;
  sopts.checkpoint_breaker = {1, 1, 2};
  sopts.cadence_stretch = 2;
  Supervisor sup(sopts, &mgr);
  store.InjectWriteFault(Status::Unavailable("one blip"), /*times=*/1);

  MiniState state;
  for (int64_t step = 1; step <= 4; ++step) {
    state.value = step;
    ASSERT_TRUE(sup.OnStepComplete(step, state).ok());
  }
  // Trip@1; half-open probes at 2 (success) and 4 (success → closed),
  // while the boundary at 3 is stretched away.
  EXPECT_EQ(sup.level(), ServiceLevel::kFull);
  EXPECT_EQ(sup.stats().checkpoints_stretched, 1);
  EXPECT_EQ(sup.checkpoint_breaker().trips(), 1);
  EXPECT_EQ(mgr.stats().checkpoints, 2);
  EXPECT_EQ(mgr.stats().last_commit_epoch, 4);
}

TEST(ChaosSupervisor, PermanentStoreErrorSafeStopsWithoutTripping) {
  MemoryCheckpointStore store;
  CheckpointManagerOptions mopts;
  mopts.epoch_len = 1;
  mopts.overhead_budget = 0;
  CheckpointManager mgr(&store, mopts);
  Supervisor sup(SupervisorOptions{}, &mgr);
  // Internal = permanent: never retried, classified kFail.
  store.InjectWriteFault(Status::Internal("disk gone"), /*times=*/-1);

  MiniState state;
  ASSERT_TRUE(sup.OnStepComplete(1, state).ok());
  EXPECT_TRUE(sup.safe_stopped());
  EXPECT_EQ(sup.level(), ServiceLevel::kSafeStop);
  EXPECT_EQ(sup.checkpoint_breaker().trips(), 0);
  EXPECT_EQ(sup.stats().safe_stops, 1);
  // After safe-stop the store is never touched again.
  ASSERT_TRUE(sup.OnStepComplete(2, state).ok());
  EXPECT_EQ(sup.stats().checkpoint_failures, 1);
}

TEST(ChaosSupervisor, SourceStallsEnterCatchUpModeAndDeferCheckpoints) {
  MemoryCheckpointStore store;
  CheckpointManagerOptions mopts;
  mopts.epoch_len = 1;
  mopts.overhead_budget = 0;
  CheckpointManager mgr(&store, mopts);
  Supervisor sup(SupervisorOptions{}, &mgr);  // source breaker {2, 2, 2}

  MiniState state;
  sup.ObserveSourceProgress(1, 0.25, 0.2);  // data flowing
  ASSERT_TRUE(sup.OnStepComplete(1, state).ok());
  sup.ObserveSourceProgress(2, 0.5, 0.2);  // window moved, data stuck
  ASSERT_TRUE(sup.OnStepComplete(2, state).ok());
  sup.ObserveSourceProgress(3, 0.75, 0.2);  // second stall → trip
  ASSERT_TRUE(sup.OnStepComplete(3, state).ok());

  EXPECT_EQ(sup.stats().stall_observations, 2);
  EXPECT_EQ(sup.source_breaker().trips(), 1);
  // Catch-up mode: the step-3 boundary yields to backlog draining.
  EXPECT_EQ(sup.stats().catchup_deferred, 1);
  EXPECT_EQ(sup.level(), ServiceLevel::kDeferred);
  EXPECT_EQ(mgr.stats().checkpoints, 2);  // steps 1 and 2 still persisted
}

TEST(ChaosSupervisor, SustainedPressureWalksTheLadderDownAndBack) {
  MemoryCheckpointStore store;
  CheckpointManagerOptions mopts;
  mopts.epoch_len = 0;  // isolate the memory axis
  CheckpointManager mgr(&store, mopts);
  Supervisor sup(SupervisorOptions{}, &mgr);  // memory breaker {3, 2, 2}

  MiniState state;
  for (int64_t step = 1; step <= 3; ++step) {
    sup.ObserveMemoryPressure(step, 0.96);
    ASSERT_TRUE(sup.OnStepComplete(step, state).ok());
  }
  EXPECT_EQ(sup.memory_breaker().trips(), 1);
  EXPECT_EQ(sup.stats().pressure_observations, 3);
  EXPECT_EQ(sup.level(), ServiceLevel::kShed);

  // Pressure recedes: open → half-open (reported as deferred) → closed.
  sup.ObserveMemoryPressure(4, 0.1);
  ASSERT_TRUE(sup.OnStepComplete(4, state).ok());
  EXPECT_EQ(sup.level(), ServiceLevel::kShed);  // cooldown not elapsed
  sup.ObserveMemoryPressure(5, 0.1);
  ASSERT_TRUE(sup.OnStepComplete(5, state).ok());
  EXPECT_EQ(sup.level(), ServiceLevel::kDeferred);
  sup.ObserveMemoryPressure(6, 0.1);
  ASSERT_TRUE(sup.OnStepComplete(6, state).ok());
  EXPECT_EQ(sup.level(), ServiceLevel::kFull);

  ASSERT_EQ(sup.ladder_log().size(), 3u);
  EXPECT_EQ(sup.ladder_log()[0].to, ServiceLevel::kShed);
  EXPECT_EQ(sup.ladder_log()[1].to, ServiceLevel::kDeferred);
  EXPECT_EQ(sup.ladder_log()[2].to, ServiceLevel::kFull);
}

TEST(ChaosSupervisor, FlowDeltasDriveDeferAndDropSignals) {
  MemoryCheckpointStore store;
  CheckpointManagerOptions mopts;
  mopts.epoch_len = 0;
  CheckpointManager mgr(&store, mopts);
  Supervisor sup(SupervisorOptions{}, &mgr);

  MiniState state;
  flow::FlowStats f;
  f.shed_deferred = 2;
  f.backpressure_events = 1;
  sup.ObserveFlow(1, f);
  ASSERT_TRUE(sup.OnStepComplete(1, state).ok());
  EXPECT_EQ(sup.stats().defer_signals, 3);
  EXPECT_EQ(sup.level(), ServiceLevel::kDeferred);

  sup.ObserveFlow(2, f);  // cumulative ledger unchanged: quiet step
  ASSERT_TRUE(sup.OnStepComplete(2, state).ok());
  EXPECT_EQ(sup.level(), ServiceLevel::kFull);

  f.dropped_tuples = 5;
  sup.ObserveFlow(3, f);
  ASSERT_TRUE(sup.OnStepComplete(3, state).ok());
  EXPECT_EQ(sup.stats().drop_signals, 5);
  EXPECT_EQ(sup.level(), ServiceLevel::kShed);

  sup.ObserveFlow(4, f);
  ASSERT_TRUE(sup.OnStepComplete(4, state).ok());
  EXPECT_EQ(sup.level(), ServiceLevel::kFull);
}

// ---------------------------------------------------------------------------
// Chaos harness: composed schedules through the supervised executor
// ---------------------------------------------------------------------------

TEST(ChaosHarness, FaultFreeScheduleStaysAtFullService) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig paces = {2, 2, 4};
  std::vector<double> abs = TightLooseConstraints(&est, paces);

  Result<ChaosReport> rep =
      RunChaos(&est, paces, abs, db.source, FaultSchedule{}, ChaosOptions{});
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->AllGatesPass()) << rep->mismatch;
  EXPECT_EQ(rep->final_level, ServiceLevel::kFull);
  EXPECT_TRUE(rep->injections.empty());
  EXPECT_TRUE(rep->breakers.empty());
  EXPECT_GE(rep->recovery.checkpoints, 2);  // boundaries at steps 2 and 4
  EXPECT_GT(rep->peak_baseline, 0);
  EXPECT_GT(rep->budget_bytes, rep->peak_baseline);
  EXPECT_EQ(rep->flow.dropped_tuples, 0);
}

TEST(ChaosHarness, ComposedScheduleTripsCheckpointBreakerAndPasses) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig paces = {2, 2, 4};
  std::vector<double> abs = TightLooseConstraints(&est, paces);

  FaultSchedule sched;
  sched.seed = 42;
  // Admission storm (absorbed), a store outage outlasting both epoch
  // boundaries' retry budgets (trips the breaker), and a pressure spike.
  sched.events = {{ChaosLayer::kBufferStorm, 1, 2, 0},
                  {ChaosLayer::kStoreTransient, 2, 8, 0},
                  {ChaosLayer::kMemoryPressure, 3, 2, 1.2}};

  Result<ChaosReport> rep =
      RunChaos(&est, paces, abs, db.source, sched, ChaosOptions{});
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->AllGatesPass()) << rep->mismatch;
  ASSERT_EQ(rep->initial_slack.size(), 2u);
  EXPECT_LE(rep->initial_slack[0], 1e-9);  // q0 pinned at zero slack
  EXPECT_EQ(rep->flow.shed_total(0), 0);
  EXPECT_GE(rep->supervisor.checkpoint_failures, 2);
  EXPECT_GE(rep->supervisor.pressure_observations, 1);
  EXPECT_FALSE(rep->injections.empty());
  EXPECT_NE(rep->final_level, ServiceLevel::kFull);

  bool checkpoint_tripped = false;
  for (const BreakerTransition& t : rep->breakers) {
    if (t.breaker == "checkpoint" && t.to == BreakerState::kOpen) {
      checkpoint_tripped = true;
    }
  }
  EXPECT_TRUE(checkpoint_tripped);
}

TEST(ChaosHarness, SustainedPressureShedsOnlySlackQueries) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig paces = {2, 2, 4};
  std::vector<double> abs = TightLooseConstraints(&est, paces);

  FaultSchedule sched;
  sched.events = {{ChaosLayer::kMemoryPressure, 1, 4, 1.5}};

  Result<ChaosReport> rep =
      RunChaos(&est, paces, abs, db.source, sched, ChaosOptions{});
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->AllGatesPass()) << rep->mismatch;
  EXPECT_EQ(rep->flow.shed_total(0), 0);  // zero-slack query untouched
  EXPECT_GE(rep->supervisor.pressure_observations, 3);
  EXPECT_EQ(rep->final_level, ServiceLevel::kShed);

  bool memory_tripped = false;
  for (const BreakerTransition& t : rep->breakers) {
    if (t.breaker == "memory" && t.to == BreakerState::kOpen) {
      memory_tripped = true;
    }
  }
  EXPECT_TRUE(memory_tripped);
}

// Source drift makes the drift-corrected cost model predict spare
// headroom for every query; the zero-slack query's protection must be
// sticky anyway — a mid-window estimate is never grounds to shed work
// the window was admitted with no slack for.
TEST(ChaosHarness, DriftCorrectionNeverUnprotectsZeroSlackQueries) {
  TestDb db(200, 8);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig paces = {4, 4, 8};
  std::vector<double> abs = TightLooseConstraints(&est, paces);

  FaultSchedule sched;
  sched.source_plan = FaultPlan::Random(84162434, 2, {"orders", "customer"});
  sched.events = {{ChaosLayer::kMemoryPressure, 2, 3, 0.9},
                  {ChaosLayer::kMemoryPressure, 6, 2, 1.2}};

  Result<ChaosReport> rep =
      RunChaos(&est, paces, abs, db.source, sched, ChaosOptions{});
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->AllGatesPass()) << rep->mismatch;
  ASSERT_FALSE(rep->initial_slack.empty());
  EXPECT_LE(rep->initial_slack[0], 1e-9);
  EXPECT_EQ(rep->flow.shed_total(0), 0);
}

TEST(ChaosHarness, ForeverOutageWalksToSafeStopWithCorrectAnswers) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig paces = {4, 4, 8};  // 8 steps: boundaries at 2, 4, 6, 8
  std::vector<double> abs = TightLooseConstraints(&est, paces);

  FaultSchedule sched;
  sched.events = {{ChaosLayer::kStoreTransient, 1, -1, 0}};
  ChaosOptions copts;
  copts.supervisor.checkpoint_breaker = {1, 1, 1};
  copts.supervisor.max_checkpoint_trips = 1;

  Result<ChaosReport> rep =
      RunChaos(&est, paces, abs, db.source, sched, copts);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  // The ladder bottoms out but answers never degrade: persistence is the
  // only casualty.
  EXPECT_TRUE(rep->AllGatesPass()) << rep->mismatch;
  EXPECT_EQ(rep->final_level, ServiceLevel::kSafeStop);
  EXPECT_EQ(rep->supervisor.safe_stops, 1);
  EXPECT_EQ(rep->recovery.checkpoints, 0);
  ASSERT_FALSE(rep->ladder.empty());
  EXPECT_EQ(rep->ladder.back().to, ServiceLevel::kSafeStop);
}

TEST(ChaosHarness, ManySeedComposedSweepHasZeroViolations) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig paces = {2, 2, 4};
  std::vector<double> abs = TightLooseConstraints(&est, paces);
  std::vector<std::string> tables = {"orders", "customer"};

  ChaosScheduleOptions sopts;
  sopts.max_step = 4;  // the window has 4 steps

  constexpr uint64_t kSeeds = 120;
  int64_t injections = 0;
  int64_t trips = 0;
  int degraded_runs = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    FaultSchedule sched = FaultSchedule::Random(seed, sopts, tables);
    Result<ChaosReport> rep =
        RunChaos(&est, paces, abs, db.source, sched, ChaosOptions{});
    ASSERT_TRUE(rep.ok()) << "seed " << seed << ": "
                          << rep.status().ToString();
    ASSERT_TRUE(rep->AllGatesPass())
        << "seed " << seed << " [" << sched.ToString()
        << "]: " << rep->mismatch;
    injections += static_cast<int64_t>(rep->injections.size());
    for (const BreakerTransition& t : rep->breakers) {
      if (t.to == BreakerState::kOpen) ++trips;
    }
    if (rep->final_level != ServiceLevel::kFull) ++degraded_runs;
  }
  // The sweep must actually exercise the machinery, not no-op through it.
  EXPECT_GE(injections, 100);
  EXPECT_GE(trips, 1);
  EXPECT_GE(degraded_runs, 1);
}

// ---------------------------------------------------------------------------
// Fault-concurrent recovery: store faults landing inside parallel waves
// ---------------------------------------------------------------------------

TEST(ChaosCrash, StoreFaultsDuringParallelWavesRecoverBitExact) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  PaceConfig paces = {2, 2, 4};

  FaultSchedule sched;
  sched.seed = 7;
  sched.source_plan = FaultPlan::Random(7, 2, {"orders", "customer"});
  // 5 transient faults, clamped to the retry budget (3 extra attempts):
  // the step-2 boundary absorbs them all and still commits.
  sched.events = {{ChaosLayer::kStoreTransient, 1, 5, 0}};

  MemoryCheckpointStore store;
  CrashRecoveryOptions opts;
  opts.exec.sched.num_threads = 4;
  opts.plan.phase = CrashPhase::kMidWave;
  opts.plan.step = 3;
  opts.plan.wave = 0;

  Result<CrashRunReport> rep =
      RunChaosCrash(g, paces, db.source, sched, &store, opts);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->crashed);
  EXPECT_TRUE(rep->recovered_from_checkpoint);
  EXPECT_EQ(rep->recovered_step, 2);
  EXPECT_EQ(rep->recovery.store_retry_attempts, 3);
  EXPECT_TRUE(rep->results_identical) << rep->mismatch;
  EXPECT_TRUE(rep->state_identical) << rep->mismatch;
  EXPECT_TRUE(rep->work_identical) << rep->mismatch;
  ASSERT_TRUE(rep->Equivalent()) << rep->mismatch;
}

TEST(ChaosCrash, RejectsMalformedSchedulesAndMissingStore) {
  TestDb db;
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  FaultSchedule bad;
  bad.events = {{ChaosLayer::kStoreTransient, 0, 1, 0}};
  MemoryCheckpointStore store;
  CrashRecoveryOptions opts;
  EXPECT_FALSE(
      RunChaosCrash(g, {2, 2, 4}, db.source, bad, &store, opts).ok());
  EXPECT_FALSE(
      RunChaosCrash(g, {2, 2, 4}, db.source, FaultSchedule{}, nullptr, opts)
          .ok());
}

}  // namespace
}  // namespace ishare
