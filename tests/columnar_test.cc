// Columnar execution core suite (DESIGN.md §12): the batch-layout
// contract and the columnar-vs-row bit-exactness gate.
//  - layout units: ColumnVector typed round-trips, SelectionVector edge
//    cases (empty selection, the all-selected fast path that materializes
//    no index array, sparse ascending construction),
//  - conversion units: ColumnBatch::FromDeltas/ToDeltas is the exact
//    inverse pair the row shim relies on, including deletes interleaved
//    with updates in one batch; an ill-typed source is rejected so the
//    caller stays on the row path,
//  - kernel units: VectorExpr mirrors CompiledExpr bit-for-bit on every
//    supported shape and refuses (supported()==false) the hazardous ones;
//    FlatIndexI64 assigns first-touch dense ids; ColumnarHashAgg's three
//    strategies produce bit-identical float sums; ColumnarHashJoin emits
//    exactly the reference match set,
//  - operator units: ProcessColumnar == Process for every vectorized
//    operator and for the default row shim, down to the OpWork meters,
//  - the property: across 100 seeded random shared TPC-H plans, a run
//    with the columnar pump is bit-identical (results, state fingerprint,
//    curated metrics) to the legacy row pump, serial and 4-threaded.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ishare/common/flat_hash.h"
#include "ishare/common/rng.h"
#include "ishare/exec/pace_executor.h"
#include "ishare/exec/phys_op.h"
#include "ishare/exec/vectorized.h"
#include "ishare/expr/vector_expr.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/storage/column_batch.h"
#include "ishare/types/column.h"
#include "ishare/types/selection.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

// Bit-exact scalar equality: same runtime type, same payload bits. The
// cross-type numeric tolerance of Value::operator== is exactly what this
// suite must NOT use — the columnar path may not even flip an int to an
// equal-valued double.
::testing::AssertionResult BitExactValue(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return ::testing::AssertionFailure()
           << "type " << DataTypeName(a.type()) << " vs "
           << DataTypeName(b.type());
  }
  switch (a.type()) {
    case DataType::kInt64:
      if (a.AsInt() != b.AsInt()) {
        return ::testing::AssertionFailure()
               << a.AsInt() << " vs " << b.AsInt();
      }
      return ::testing::AssertionSuccess();
    case DataType::kFloat64: {
      double x = a.AsDouble(), y = b.AsDouble();
      if (std::memcmp(&x, &y, sizeof(x)) != 0) {
        return ::testing::AssertionFailure() << x << " vs " << y << " (bits)";
      }
      return ::testing::AssertionSuccess();
    }
    case DataType::kString:
      if (a.AsString() != b.AsString()) {
        return ::testing::AssertionFailure()
               << a.AsString() << " vs " << b.AsString();
      }
      return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << "bad type";
}

::testing::AssertionResult BitExactDeltas(const DeltaBatch& a,
                                          const DeltaBatch& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].weight != b[i].weight) {
      return ::testing::AssertionFailure()
             << "weight at " << i << ": " << a[i].weight << " vs "
             << b[i].weight;
    }
    if (a[i].qset.bits() != b[i].qset.bits()) {
      return ::testing::AssertionFailure()
             << "qset at " << i << ": " << a[i].qset.bits() << " vs "
             << b[i].qset.bits();
    }
    if (a[i].row.size() != b[i].row.size()) {
      return ::testing::AssertionFailure() << "row arity at " << i;
    }
    for (size_t c = 0; c < a[i].row.size(); ++c) {
      auto r = BitExactValue(a[i].row[c], b[i].row[c]);
      if (!r) {
        return ::testing::AssertionFailure()
               << "row " << i << " col " << c << ": " << r.message();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// ColumnVector / SelectionVector
// ---------------------------------------------------------------------------

TEST(ColumnVectorTest, TypedRoundTripAllThreeTypes) {
  std::vector<Value> vals = {Value(int64_t{-7}), Value(int64_t{0}),
                             Value(int64_t{1} << 40)};
  ColumnVector ci(DataType::kInt64);
  for (const Value& v : vals) ci.AppendValue(v);
  ASSERT_EQ(ci.size(), 3);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(BitExactValue(ci.GetValue(i), vals[static_cast<size_t>(i)]));
  }
  EXPECT_EQ(ci.i64()[0], -7);

  ColumnVector cf(DataType::kFloat64);
  cf.AppendValue(Value(0.0));
  cf.AppendValue(Value(-2.5));
  EXPECT_EQ(cf.f64()[1], -2.5);
  EXPECT_TRUE(BitExactValue(cf.GetValue(0), Value(0.0)));

  ColumnVector cs(DataType::kString);
  cs.AppendValue(Value("ASIA"));
  cs.AppendValue(Value(""));
  EXPECT_EQ(cs.str()[0], "ASIA");
  EXPECT_TRUE(BitExactValue(cs.GetValue(1), Value("")));
}

TEST(ColumnVectorTest, AppendFromGathersByIndex) {
  ColumnVector src(DataType::kInt64);
  for (int64_t i = 0; i < 8; ++i) src.i64().push_back(i * 10);
  ColumnVector dst(DataType::kInt64);
  dst.AppendFrom(src, 5);
  dst.AppendFrom(src, 0);
  ASSERT_EQ(dst.size(), 2);
  EXPECT_EQ(dst.i64()[0], 50);
  EXPECT_EQ(dst.i64()[1], 0);
}

TEST(ColumnVectorTest, ApproxBytesTracksLogicalSizeDeterministically) {
  ColumnVector a(DataType::kInt64);
  ColumnVector b(DataType::kInt64);
  for (int i = 0; i < 100; ++i) a.AppendValue(Value(int64_t{i}));
  b.Reserve(1000);  // capacity must not count
  for (int i = 0; i < 100; ++i) b.AppendValue(Value(int64_t{i}));
  EXPECT_EQ(a.ApproxBytes(), b.ApproxBytes());
  EXPECT_GT(a.ApproxBytes(), 0);
}

TEST(SelectionVectorTest, AllSelectedFastPathMaterializesNoIndexArray) {
  SelectionVector s = SelectionVector::All(5);
  EXPECT_TRUE(s.is_all());
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.count(), 5);
  EXPECT_TRUE(s.indices().empty());  // the fast path's defining property
  std::vector<int32_t> seen;
  s.ForEach([&](int32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s[3], 3);
}

TEST(SelectionVectorTest, EmptySelection) {
  SelectionVector s = SelectionVector::None();
  EXPECT_FALSE(s.is_all());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  int calls = 0;
  s.ForEach([&](int32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // All(0) is also an empty selection (a zero-row batch stays "all").
  EXPECT_TRUE(SelectionVector::All(0).empty());
}

TEST(SelectionVectorTest, SparseSelectionIteratesAscending) {
  SelectionVector s = SelectionVector::FromIndices({1, 4, 7});
  EXPECT_FALSE(s.is_all());
  EXPECT_EQ(s.count(), 3);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[2], 7);
  SelectionVector t = SelectionVector::None();
  s.ForEach([&](int32_t i) { t.Append(i); });
  EXPECT_EQ(t.indices(), s.indices());
}

// ---------------------------------------------------------------------------
// FlatIndexI64 / XxMix64
// ---------------------------------------------------------------------------

TEST(FlatHashTest, FindOrInsertAssignsFirstTouchDenseIds) {
  FlatIndexI64 idx;
  EXPECT_EQ(idx.FindOrInsert(42), 0);
  EXPECT_EQ(idx.FindOrInsert(-1), 1);
  EXPECT_EQ(idx.FindOrInsert(42), 0);  // duplicate keeps its id
  EXPECT_EQ(idx.FindOrInsert(0), 2);
  EXPECT_EQ(idx.size(), 3);
  EXPECT_EQ(idx.keys(), (std::vector<int64_t>{42, -1, 0}));
  EXPECT_EQ(idx.Find(-1), 1);
  EXPECT_EQ(idx.Find(7), -1);
}

TEST(FlatHashTest, GrowthPreservesIdsAgainstReferenceMap) {
  Rng rng(99);
  FlatIndexI64 idx;  // default capacity, forces several grows
  std::unordered_map<int64_t, int32_t> ref;
  for (int i = 0; i < 20000; ++i) {
    int64_t key = rng.UniformInt(-5000, 5000);
    int32_t id = idx.FindOrInsert(key);
    auto [it, fresh] = ref.emplace(key, id);
    if (fresh) {
      EXPECT_EQ(id, static_cast<int32_t>(ref.size()) - 1) << "dense ids";
    } else {
      EXPECT_EQ(id, it->second) << "key " << key;
    }
  }
  EXPECT_EQ(idx.size(), static_cast<int64_t>(ref.size()));
  for (const auto& [key, id] : ref) EXPECT_EQ(idx.Find(key), id);
  idx.Clear();
  EXPECT_EQ(idx.size(), 0);
  EXPECT_EQ(idx.Find(0), -1);
  EXPECT_EQ(idx.FindOrInsert(123), 0);
}

TEST(FlatHashTest, XxMixIsABijectionOnASample) {
  // Sanity: no two of 4k consecutive ints collide after mixing, and the
  // high bits (used for radix partitioning) spread.
  std::set<uint64_t> seen;
  std::set<uint64_t> high;
  for (uint64_t i = 0; i < 4096; ++i) {
    uint64_t h = XxMix64(i);
    seen.insert(h);
    high.insert(h >> 60);
  }
  EXPECT_EQ(seen.size(), 4096u);
  EXPECT_EQ(high.size(), 16u);
}

// ---------------------------------------------------------------------------
// ColumnBatch conversion
// ---------------------------------------------------------------------------

Schema SalesSchema() {
  return Schema({{"k", DataType::kInt64},
                 {"v", DataType::kFloat64},
                 {"s", DataType::kString}});
}

// A batch exercising the full delta vocabulary in one run: inserts,
// a delete interleaved with the two halves of an update (delete+insert
// of the same key), and multi-weight tuples under different query sets.
DeltaBatch MixedDeltas() {
  DeltaBatch b;
  b.push_back({{Value(int64_t{1}), Value(10.5), Value("a")}, QuerySet(0b01), 1});
  b.push_back({{Value(int64_t{2}), Value(0.0), Value("b")}, QuerySet(0b11), 3});
  // Update of key 1 = delete old + insert new, with a delete of key 3
  // interleaved between the halves.
  b.push_back({{Value(int64_t{1}), Value(10.5), Value("a")}, QuerySet(0b01), -1});
  b.push_back({{Value(int64_t{3}), Value(-4.25), Value("")}, QuerySet(0b10), -2});
  b.push_back({{Value(int64_t{1}), Value(11.5), Value("a2")}, QuerySet(0b01), 1});
  return b;
}

TEST(ColumnBatchTest, FromDeltasToDeltasIsTheExactInverse) {
  Schema schema = SalesSchema();
  DeltaBatch in = MixedDeltas();
  ColumnBatch cb;
  ASSERT_TRUE(ColumnBatch::FromDeltas(schema, in, &cb));
  EXPECT_EQ(cb.num_rows(), 5);
  EXPECT_EQ(cb.num_selected(), 5);
  EXPECT_TRUE(cb.sel.is_all());
  ASSERT_EQ(cb.cols.size(), 3u);
  EXPECT_EQ(cb.cols[0].type(), DataType::kInt64);
  EXPECT_EQ(cb.cols[1].type(), DataType::kFloat64);
  EXPECT_EQ(cb.cols[2].type(), DataType::kString);
  EXPECT_EQ(cb.qbits[3], 0b10u);
  EXPECT_EQ(cb.weights[3], -2);
  EXPECT_TRUE(BitExactDeltas(cb.ToDeltas(), in));
}

TEST(ColumnBatchTest, ToDeltasEmitsOnlySelectedRowsInInputOrder) {
  Schema schema = SalesSchema();
  DeltaBatch in = MixedDeltas();
  ColumnBatch cb;
  ASSERT_TRUE(ColumnBatch::FromDeltas(schema, in, &cb));
  cb.sel = SelectionVector::FromIndices({0, 3, 4});
  DeltaBatch expect = {in[0], in[3], in[4]};
  EXPECT_TRUE(BitExactDeltas(cb.ToDeltas(), expect));
  cb.sel = SelectionVector::None();
  EXPECT_TRUE(cb.ToDeltas().empty());
  EXPECT_EQ(cb.num_rows(), 5);  // columns keep their physical rows
  EXPECT_EQ(cb.num_selected(), 0);
}

TEST(ColumnBatchTest, EmptySpanYieldsEmptyAllSelectedBatch) {
  ColumnBatch cb;
  ASSERT_TRUE(ColumnBatch::FromDeltas(SalesSchema(), DeltaBatch{}, &cb));
  EXPECT_EQ(cb.num_rows(), 0);
  EXPECT_EQ(cb.num_selected(), 0);
  EXPECT_TRUE(cb.ToDeltas().empty());
}

TEST(ColumnBatchTest, IllTypedSourceIsRejectedNotCoerced) {
  Schema schema = SalesSchema();
  ColumnBatch cb;
  // Double where the schema says int: reject (the row path would have
  // coerced through AsDouble at each use site; silently lifting it would
  // change results).
  DeltaBatch wrong_type;
  wrong_type.push_back(
      {{Value(1.0), Value(2.0), Value("x")}, QuerySet(0b1), 1});
  EXPECT_FALSE(ColumnBatch::FromDeltas(schema, wrong_type, &cb));
  // Wrong arity: reject.
  DeltaBatch wrong_arity;
  wrong_arity.push_back({{Value(int64_t{1})}, QuerySet(0b1), 1});
  EXPECT_FALSE(ColumnBatch::FromDeltas(schema, wrong_arity, &cb));
  // A good prefix does not rescue a bad row later in the span.
  DeltaBatch mixed = MixedDeltas();
  mixed.push_back({{Value(int64_t{9}), Value("oops"), Value("y")},
                   QuerySet(0b1), 1});
  EXPECT_FALSE(ColumnBatch::FromDeltas(schema, mixed, &cb));
}

// ---------------------------------------------------------------------------
// VectorExpr vs CompiledExpr
// ---------------------------------------------------------------------------

Schema ExprSchema() {
  return Schema({{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"v", DataType::kFloat64},
                 {"w", DataType::kFloat64},
                 {"s", DataType::kString}});
}

std::vector<Row> RandomExprRows(int n, uint64_t seed) {
  Rng rng(seed);
  const char* strs[] = {"ASIA", "EUROPE", "AMERICA", "ASIA MINOR", "", "eur"};
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    // Small domains so zero divisors, exact compares and IN hits all
    // occur; a few exact 0.0 doubles to exercise the guarded division.
    double v = (i % 7 == 0) ? 0.0 : rng.UniformDouble(-10.0, 10.0);
    rows.push_back({Value(rng.UniformInt(-5, 5)), Value(rng.UniformInt(-3, 3)),
                    Value(v), Value(rng.UniformDouble(-2.0, 2.0)),
                    Value(std::string(strs[rng.UniformInt(0, 5)]))});
  }
  return rows;
}

std::vector<ColumnVector> RowsToColumns(const Schema& schema,
                                        const std::vector<Row>& rows) {
  std::vector<ColumnVector> cols;
  for (const auto& f : schema.fields()) cols.emplace_back(f.type);
  for (const Row& r : rows) {
    for (size_t c = 0; c < cols.size(); ++c) cols[c].AppendValue(r[c]);
  }
  return cols;
}

TEST(VectorExprTest, SupportedShapesMatchCompiledExprBitForBit) {
  Schema schema = ExprSchema();
  std::vector<ExprPtr> exprs;
  exprs.push_back(Add(Col("a"), Lit(3)));
  exprs.push_back(Sub(Col("a"), Col("b")));
  exprs.push_back(Mul(Col("v"), Lit(2.5)));
  exprs.push_back(Add(Mul(Col("v"), Col("w")), Col("a")));  // mixed promote
  exprs.push_back(Div(Col("v"), Col("w")));   // always-double, zero guard
  exprs.push_back(Div(Col("a"), Col("b")));   // int/int div is still double
  exprs.push_back(IntDiv(Col("a"), Col("b")));  // floor + zero guard
  exprs.push_back(Eq(Col("a"), Col("b")));
  exprs.push_back(Ne(Col("a"), Lit(0)));
  exprs.push_back(Lt(Col("v"), Col("a")));   // double vs int compare
  exprs.push_back(Le(Col("v"), Lit(0.0)));
  exprs.push_back(Gt(Col("s"), Lit("E")));   // string lexical compare
  exprs.push_back(Ge(Col("w"), Col("v")));
  exprs.push_back(And(Gt(Col("a"), Lit(0)), Lt(Col("v"), Lit(5.0))));
  exprs.push_back(Or(Eq(Col("b"), Lit(0)), Gt(Col("w"), Lit(1.0))));
  exprs.push_back(Not(Gt(Col("a"), Col("b"))));
  exprs.push_back(Not(Col("a")));            // numeric truthiness
  exprs.push_back(Between(Col("v"), Lit(-1.0), Lit(1.0)));
  exprs.push_back(Expr::In(Col("a"), {Value(int64_t{-2}), Value(int64_t{1}),
                                      Value(3.0)}));  // cross-numeric IN
  exprs.push_back(Expr::In(Col("v"), {Value(0.0), Value(int64_t{2})}));
  exprs.push_back(Expr::In(Col("s"), {Value("ASIA"), Value("eur")}));
  exprs.push_back(Expr::Like(Col("s"), "A%A"));
  exprs.push_back(Expr::Like(Col("s"), "%SIA%"));
  exprs.push_back(Expr::Like(Col("s"), "e_r"));
  exprs.push_back(Lit(7));                   // constant splat
  exprs.push_back(Col("w"));                 // bare column reference

  std::vector<Row> rows = RandomExprRows(256, 4242);
  std::vector<ColumnVector> cols = RowsToColumns(schema, rows);
  const int64_t n = static_cast<int64_t>(rows.size());

  for (size_t e = 0; e < exprs.size(); ++e) {
    SCOPED_TRACE("expr #" + std::to_string(e) + ": " + exprs[e]->ToString());
    CompiledExpr ref = CompiledExpr::Compile(exprs[e], schema);
    VectorExpr vec = VectorExpr::Compile(exprs[e], schema);
    ASSERT_TRUE(vec.supported());
    EXPECT_EQ(vec.output_type(), exprs[e]->OutputType(schema));
    ColumnVector out(vec.output_type());
    vec.Eval(cols, n, &out);
    ASSERT_EQ(out.size(), n);
    for (int64_t i = 0; i < n; ++i) {
      auto r = BitExactValue(out.GetValue(i), ref.Eval(rows[static_cast<size_t>(i)]));
      EXPECT_TRUE(r) << "row " << i << ": " << r.message();
      if (!r) break;
    }
    if (vec.output_type() != DataType::kString) {
      std::vector<uint8_t> mask;
      vec.EvalBoolMask(cols, n, &mask);
      ASSERT_EQ(mask.size(), static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(mask[static_cast<size_t>(i)] != 0,
                  ref.EvalBool(rows[static_cast<size_t>(i)]))
            << "row " << i;
      }
    }
  }
}

TEST(VectorExprTest, HazardousShapesCompileUnsupported) {
  // Each of these either CHECK-fails or silently misbehaves row-side only
  // when actually evaluated on certain values; the vector compiler must
  // refuse them statically so the row path keeps that exact behavior.
  Schema schema = ExprSchema();
  std::vector<ExprPtr> bad;
  bad.push_back(Add(Col("s"), Lit(1)));        // arithmetic on string
  bad.push_back(Eq(Col("s"), Lit(3)));         // string vs number compare
  bad.push_back(Lt(Col("a"), Col("s")));
  bad.push_back(IntDiv(Col("v"), Lit(2)));     // IntDiv wants ints
  bad.push_back(Expr::Like(Col("a"), "%"));    // LIKE on numeric
  bad.push_back(Not(Col("s")));                // string truthiness
  bad.push_back(And(Col("s"), Lit(1)));
  bad.push_back(Col("no_such_column"));
  for (size_t e = 0; e < bad.size(); ++e) {
    SCOPED_TRACE("expr #" + std::to_string(e));
    EXPECT_FALSE(VectorExpr::Compile(bad[e], schema).supported());
  }
}

// ---------------------------------------------------------------------------
// Vectorized hash kernels
// ---------------------------------------------------------------------------

struct AggInput {
  std::vector<int64_t> keys;
  std::vector<double> vals;
  std::vector<int32_t> weights;
};

AggInput MakeAggInput(int64_t n, int64_t cardinality, uint64_t seed) {
  Rng rng(seed);
  AggInput in;
  for (int64_t i = 0; i < n; ++i) {
    in.keys.push_back(rng.UniformInt(0, cardinality - 1));
    in.vals.push_back(rng.UniformDouble(-100.0, 100.0));
    in.weights.push_back(static_cast<int32_t>(rng.UniformInt(-2, 3)));
  }
  return in;
}

// Reference: per-key sums accumulated in input order — the sequence every
// strategy must reproduce bit-for-bit.
std::map<int64_t, double> ReferenceSums(const AggInput& in, bool weighted) {
  std::map<int64_t, double> ref;
  for (size_t i = 0; i < in.keys.size(); ++i) {
    double v = in.vals[i];
    if (weighted) v *= static_cast<double>(in.weights[i]);
    ref[in.keys[i]] += v;
  }
  return ref;
}

void ExpectAggMatchesReference(ColumnarHashAgg* agg, const AggInput& in,
                               bool weighted) {
  agg->Consume(in.keys.data(), in.vals.data(),
               weighted ? in.weights.data() : nullptr,
               static_cast<int64_t>(in.keys.size()));
  agg->Finish();
  std::map<int64_t, double> ref = ReferenceSums(in, weighted);
  ASSERT_EQ(agg->keys().size(), ref.size());
  for (size_t g = 0; g < agg->keys().size(); ++g) {
    auto it = ref.find(agg->keys()[g]);
    ASSERT_NE(it, ref.end()) << "unknown group " << agg->keys()[g];
    double got = agg->sums()[g], want = it->second;
    EXPECT_EQ(std::memcmp(&got, &want, sizeof(got)), 0)
        << "group " << agg->keys()[g] << ": " << got << " vs " << want;
  }
}

TEST(ColumnarHashAggTest, AllStrategiesProduceBitIdenticalSums) {
  for (int64_t cardinality : {8, 4096}) {
    for (bool weighted : {false, true}) {
      AggInput in = MakeAggInput(20000, cardinality, 7 + cardinality);
      ColumnarHashAgg flat(AggStrategy::kFlat);
      ColumnarHashAgg part(AggStrategy::kPartitioned);
      ColumnarHashAgg autos(AggStrategy::kAuto);
      ExpectAggMatchesReference(&flat, in, weighted);
      ExpectAggMatchesReference(&part, in, weighted);
      ExpectAggMatchesReference(&autos, in, weighted);
      EXPECT_EQ(flat.chosen(), AggStrategy::kFlat);
      EXPECT_EQ(part.chosen(), AggStrategy::kPartitioned);
    }
  }
}

TEST(ColumnarHashAggTest, AutoPicksByObservedGroupCardinality) {
  AggInput dense = MakeAggInput(8192, 8, 1);       // few hot groups
  AggInput sparse = MakeAggInput(8192, 100000, 2); // nearly all distinct
  ColumnarHashAgg a(AggStrategy::kAuto);
  a.Consume(dense.keys.data(), dense.vals.data(), nullptr, 8192);
  EXPECT_EQ(a.chosen(), AggStrategy::kFlat);
  ColumnarHashAgg b(AggStrategy::kAuto);
  b.Consume(sparse.keys.data(), sparse.vals.data(), nullptr, 8192);
  EXPECT_EQ(b.chosen(), AggStrategy::kPartitioned);
  // Tiny first batches never partition (sample too small to trust).
  ColumnarHashAgg c(AggStrategy::kAuto);
  int64_t few_keys[] = {1, 2, 3};
  double few_vals[] = {1.0, 2.0, 3.0};
  c.Consume(few_keys, few_vals, nullptr, 3);
  EXPECT_EQ(c.chosen(), AggStrategy::kFlat);
}

TEST(ColumnarHashAggTest, MultiBatchConsumeAndIdempotentFinish) {
  AggInput in = MakeAggInput(10000, 2048, 3);
  ColumnarHashAgg whole(AggStrategy::kPartitioned);
  ExpectAggMatchesReference(&whole, in, true);
  ColumnarHashAgg split(AggStrategy::kPartitioned);
  const int64_t half = 5000;
  split.Consume(in.keys.data(), in.vals.data(), in.weights.data(), half);
  split.Consume(in.keys.data() + half, in.vals.data() + half,
                in.weights.data() + half, half);
  split.Finish();
  split.Finish();  // idempotent
  ASSERT_EQ(split.keys().size(), whole.keys().size());
  // Same groups need not appear at the same dense index across the two
  // (partition-major first-touch order differs by batch split), so
  // compare as key->sum maps with bit-exact doubles.
  std::map<int64_t, double> ws;
  for (size_t g = 0; g < whole.keys().size(); ++g) {
    ws[whole.keys()[g]] = whole.sums()[g];
  }
  for (size_t g = 0; g < split.keys().size(); ++g) {
    double got = split.sums()[g], want = ws.at(split.keys()[g]);
    EXPECT_EQ(std::memcmp(&got, &want, sizeof(got)), 0)
        << "group " << split.keys()[g];
  }
}

TEST(ColumnarHashJoinTest, ProbeEmitsExactlyTheReferenceMatchSet) {
  Rng rng(17);
  std::vector<int64_t> build, probe;
  for (int i = 0; i < 5000; ++i) build.push_back(rng.UniformInt(0, 511));
  for (int i = 0; i < 5000; ++i) probe.push_back(rng.UniformInt(0, 700));
  ColumnarHashJoin join;
  join.Build(build.data(), 2500);
  join.Build(build.data() + 2500, 2500);  // ids continue across calls
  EXPECT_EQ(join.build_rows(), 5000);
  std::vector<int32_t> bo, po;
  int64_t emitted = join.Probe(probe.data(), static_cast<int64_t>(probe.size()),
                               &bo, &po);
  ASSERT_EQ(bo.size(), po.size());
  EXPECT_EQ(emitted, static_cast<int64_t>(bo.size()));
  std::multiset<std::pair<int32_t, int32_t>> got, want;
  for (size_t i = 0; i < bo.size(); ++i) got.emplace(bo[i], po[i]);
  for (size_t p = 0; p < probe.size(); ++p) {
    for (size_t b = 0; b < build.size(); ++b) {
      if (build[b] == probe[p]) {
        want.emplace(static_cast<int32_t>(b), static_cast<int32_t>(p));
      }
    }
  }
  EXPECT_EQ(got, want);
  // Misses emit nothing.
  int64_t miss = 1 << 20;
  EXPECT_EQ(join.Probe(&miss, 1, &bo, &po), 0);
}

// ---------------------------------------------------------------------------
// Operator-level columnar == row
// ---------------------------------------------------------------------------

// Runs the same deltas through op_row.Process and op_col.ProcessColumnar
// and demands identical outputs and identical OpWork meters. The two ops
// must be freshly constructed twins (meters accumulate).
void ExpectColumnarEqualsRow(PhysOp* op_row, PhysOp* op_col,
                             const Schema& input_schema,
                             const DeltaBatch& in) {
  DeltaBatch row_out = op_row->Process(0, in);
  ColumnBatch cb;
  ASSERT_TRUE(ColumnBatch::FromDeltas(input_schema, in, &cb));
  ColumnBatch col;
  op_col->ProcessColumnar(0, std::move(cb), &col);
  EXPECT_TRUE(BitExactDeltas(col.ToDeltas(), row_out));
  EXPECT_EQ(op_row->work().in, op_col->work().in);
  EXPECT_EQ(op_row->work().out, op_col->work().out);
  EXPECT_EQ(op_row->work().state, op_col->work().state);
}

TEST(ColumnarOpTest, ScanOpRetagsIdentically) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr scan = b.Scan("orders");
  ScanOp row_op(scan.get()), col_op(scan.get());
  ASSERT_TRUE(col_op.SupportsColumnar(0));
  DeltaBatch in;
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    // Source tuples arrive untagged (qset empty) with mixed weights.
    in.push_back({{Value(int64_t{i}), Value(rng.UniformInt(0, 9)),
                   Value(rng.UniformDouble(1.0, 100.0))},
                  QuerySet(), i % 5 == 0 ? -1 : 1});
  }
  ExpectColumnarEqualsRow(&row_op, &col_op, scan->output_schema, in);
}

// Shared-filter fixture: two queries with different predicates over the
// orders schema, so σ* must clear bits per-predicate and drop tuples only
// when no bits survive.
PlanNodePtr SharedFilterNode(TestDb* db) {
  PlanBuilder b(&db->catalog, 0);
  PlanNodePtr scan = b.Scan("orders");
  std::map<QueryId, ExprPtr> preds;
  preds[0] = Gt(Col("o_amount"), Lit(40.0));
  preds[1] = Lt(Col("o_amount"), Lit(70.0));
  return PlanNode::MakeFilter(scan, std::move(preds), QuerySet(0b11));
}

// Orders-shaped deltas covering inserts, deletes interleaved with the two
// halves of updates, and tuples tagged for one, both, or neither query.
DeltaBatch OrdersDeltas(int n, uint64_t seed) {
  Rng rng(seed);
  DeltaBatch in;
  for (int i = 0; i < n; ++i) {
    Row r = {Value(int64_t{i}), Value(rng.UniformInt(0, 9)),
             Value(rng.UniformDouble(1.0, 100.0))};
    uint64_t q = 1 + rng.UniformInt(0, 2);  // 0b01, 0b10 or 0b11
    if (i % 6 == 3) {
      // Update: delete the old image, insert a changed one, with an
      // unrelated delete interleaved between the halves.
      in.push_back({r, QuerySet(q), -1});
      in.push_back({{Value(int64_t{i - 1}), Value(rng.UniformInt(0, 9)),
                     Value(rng.UniformDouble(1.0, 100.0))},
                    QuerySet(0b11), -2});
      Row updated = r;
      updated[2] = Value(rng.UniformDouble(1.0, 100.0));
      in.push_back({updated, QuerySet(q), 1});
    } else {
      in.push_back({r, QuerySet(q), 1});
    }
  }
  return in;
}

TEST(ColumnarOpTest, FilterOpMarksAndDropsIdentically) {
  TestDb db;
  PlanNodePtr node = SharedFilterNode(&db);
  const Schema& schema = node->children[0]->output_schema;
  FilterOp row_op(node.get(), schema), col_op(node.get(), schema);
  ASSERT_TRUE(col_op.SupportsColumnar(0));
  ExpectColumnarEqualsRow(&row_op, &col_op, schema, OrdersDeltas(200, 11));
  // Empty batch and all-dropped batch both come back empty.
  ExpectColumnarEqualsRow(&row_op, &col_op, schema, DeltaBatch{});
  DeltaBatch none;
  none.push_back({{Value(int64_t{0}), Value(int64_t{0}), Value(50.0)},
                  QuerySet(), 1});  // no query bits at all
  ExpectColumnarEqualsRow(&row_op, &col_op, schema, none);
}

TEST(ColumnarOpTest, FilterOpWithStringPredicateFallsBackToRows) {
  // A predicate shape VectorExpr refuses (string vs number compare) must
  // leave the whole operator on the row path (one predicate group is
  // enough to disqualify it — per-group routing would reorder output).
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr scan = b.Scan("customer");
  std::map<QueryId, ExprPtr> preds;
  preds[0] = Eq(Col("c_region"), Lit("ASIA"));
  preds[1] = Eq(Col("c_region"), Lit(3));  // hazardous: never vectorized
  PlanNodePtr node =
      PlanNode::MakeFilter(scan, std::move(preds), QuerySet(0b11));
  FilterOp op(node.get(), scan->output_schema);
  EXPECT_FALSE(op.SupportsColumnar(0));
}

TEST(ColumnarOpTest, ProjectOpComputesIdentically) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr scan = b.Scan("orders");
  PlanNodePtr node = b.Project(
      scan, {{Col("o_custkey"), "o_custkey"},
             {Add(Mul(Col("o_amount"), Lit(2.0)), Col("o_id")), "scaled"},
             {IntDiv(Col("o_id"), Lit(7)), "bucket"}});
  const Schema& schema = scan->output_schema;
  ProjectOp row_op(node.get(), schema), col_op(node.get(), schema);
  ASSERT_TRUE(col_op.SupportsColumnar(0));
  ExpectColumnarEqualsRow(&row_op, &col_op, schema, OrdersDeltas(200, 13));
}

TEST(ColumnarOpTest, SubplanInputOpMasksIdentically) {
  TestDb db;
  PlanBuilder b(&db.catalog, 0);
  PlanNodePtr node = PlanNode::MakeSubplanInput(
      0, b.Scan("orders")->output_schema, QuerySet(0b01));
  SubplanInputOp row_op(node.get()), col_op(node.get());
  ASSERT_TRUE(col_op.SupportsColumnar(0));
  // Tuples tagged only for the other query must be dropped; shared ones
  // masked down to 0b01.
  ExpectColumnarEqualsRow(&row_op, &col_op, node->output_schema,
                          OrdersDeltas(120, 19));
}

TEST(ColumnarOpTest, DefaultRowShimMatchesVectorizedPath) {
  // PhysOp::ProcessColumnar (the base-class shim every non-vectorized
  // operator inherits) must agree with both the row path and the real
  // vectorized override. The qualified call pins the base implementation.
  TestDb db;
  PlanNodePtr node = SharedFilterNode(&db);
  const Schema& schema = node->children[0]->output_schema;
  FilterOp row_op(node.get(), schema), shim_op(node.get(), schema);
  DeltaBatch in = OrdersDeltas(100, 23);
  DeltaBatch row_out = row_op.Process(0, in);
  ColumnBatch cb;
  ASSERT_TRUE(ColumnBatch::FromDeltas(schema, in, &cb));
  ColumnBatch out;
  shim_op.PhysOp::ProcessColumnar(0, std::move(cb), &out);
  EXPECT_TRUE(BitExactDeltas(out.ToDeltas(), row_out));
  EXPECT_EQ(row_op.work().in, shim_op.work().in);
  EXPECT_EQ(row_op.work().out, shim_op.work().out);
}

// ---------------------------------------------------------------------------
// The columnar-vs-row bit-exactness property
// ---------------------------------------------------------------------------

using ResultMap = std::unordered_map<Row, int64_t, RowHasher>;

// Exact equality including runtime types: the row-hash equality of the
// map lookup tolerates int-vs-double numeric equality, so re-check each
// matched row's types bit-exactly.
::testing::AssertionResult ExactSameResults(const ResultMap& a,
                                            const ResultMap& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [row, mult] : a) {
    auto it = b.find(row);
    if (it == b.end()) {
      return ::testing::AssertionFailure()
             << "missing row " << RowToString(row);
    }
    if (it->second != mult) {
      return ::testing::AssertionFailure()
             << "multiplicity differs for " << RowToString(row);
    }
    for (size_t c = 0; c < row.size(); ++c) {
      auto r = BitExactValue(row[c], it->first[c]);
      if (!r) {
        return ::testing::AssertionFailure()
               << RowToString(row) << " col " << c << ": " << r.message();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct RunOutput {
  std::string fingerprint;
  std::vector<ResultMap> results;
  std::map<std::string, double> counters;
};

// Counters that must match bit-for-bit between the columnar and row
// pumps. Wall-clock and scheduler-internal series legitimately differ
// between any two runs; the exec.path.* routing counters are the one
// family that differs by design (that routing is what's under test).
std::map<std::string, double> CuratedCounters() {
  std::map<std::string, double> out;
  for (const auto& [name, value] : obs::Registry().Snapshot().counters) {
    if (name.find("seconds") != std::string::npos) continue;
    if (name.rfind("sched.", 0) == 0) continue;
    if (name.rfind("exec.path.", 0) == 0) continue;
    out[name] = value;
  }
  return out;
}

RunOutput RunPump(TpchDb* db, const SubplanGraph& g, const PaceConfig& paces,
                  bool columnar, int threads) {
  obs::Registry().Reset();
  obs::GlobalTracer().Reset();
  StreamSource src;  // fresh consumer registrations, see sched_test
  CHECK(db->source.CloneTablesInto(&src).ok());
  ExecOptions opts;
  opts.columnar = columnar;
  opts.sched.num_threads = threads;
  opts.sched.morsel_min_tuples = 4;
  PaceExecutor exec(&g, &src, opts);
  RunResult r = exec.Run(paces).value();
  (void)r;
  RunOutput out;
  out.fingerprint = exec.StateFingerprint();
  for (QueryId q = 0; q < g.num_queries(); ++q) {
    out.results.push_back(MaterializeResult(*exec.query_output(q), q));
  }
  out.counters = CuratedCounters();
  return out;
}

TEST(ColumnarEquivalence, ColumnarPumpIsBitExactOverRandomSharedPlans) {
  TpchDb db(TpchScale{0.001, 29});
  MqoOptimizer mqo(&db.catalog);
  const int kSeeds = 100;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    int nq = static_cast<int>(2 + rng.UniformInt(0, 2));
    std::vector<QueryPlan> qs;
    for (int q = 0; q < nq; ++q) {
      int qnum = static_cast<int>(1 + rng.UniformInt(0, 21));
      qs.push_back(TpchQuery(db.catalog, qnum, q));
    }
    SubplanGraph g = SubplanGraph::Build(mqo.Merge(qs));
    PaceConfig paces(g.num_subplans());
    for (int& p : paces) p = static_cast<int>(1 + rng.UniformInt(0, 3));
    // Mostly serial (the pure columnar-vs-row diff); every fourth seed
    // runs both pumps 4-threaded so the property composes with morsel
    // parallelism.
    int threads = (seed % 4 == 0) ? 4 : 1;

    RunOutput row = RunPump(&db, g, paces, /*columnar=*/false, threads);
    RunOutput col = RunPump(&db, g, paces, /*columnar=*/true, threads);

    EXPECT_EQ(col.fingerprint, row.fingerprint)
        << "seed " << seed << " threads " << threads;
    ASSERT_EQ(col.results.size(), row.results.size());
    for (size_t q = 0; q < row.results.size(); ++q) {
      EXPECT_TRUE(ExactSameResults(col.results[q], row.results[q]))
          << "seed " << seed << " threads " << threads << " query " << q;
    }
    EXPECT_EQ(col.counters, row.counters)
        << "seed " << seed << " threads " << threads;
  }
}

TEST(ColumnarEquivalence, ColumnarPumpActuallyRoutesColumnarBatches) {
  // Guard against the property above passing vacuously: on a plain
  // filter+project plan the columnar pump must report columnar batches
  // and the row pump must not.
  TpchDb db(TpchScale{0.001, 31});
  MqoOptimizer mqo(&db.catalog);
  std::vector<QueryPlan> qs = {TpchQuery(db.catalog, 6, 0)};
  SubplanGraph g = SubplanGraph::Build(mqo.Merge(qs));
  PaceConfig paces(g.num_subplans(), 1);

  RunPump(&db, g, paces, /*columnar=*/true, 1);
  auto snap = obs::Registry().Snapshot().counters;
  EXPECT_GT(snap["exec.path.columnar_batches"], 0.0);
  EXPECT_GT(snap["exec.path.columnar_tuples"], 0.0);

  RunPump(&db, g, paces, /*columnar=*/false, 1);
  snap = obs::Registry().Snapshot().counters;
  // The executor registers the counter either way; the row pump must
  // never increment it.
  EXPECT_EQ(snap["exec.path.columnar_batches"], 0.0);
  EXPECT_GT(snap["exec.path.row_batches"], 0.0);
}

}  // namespace
}  // namespace ishare
