#include <gtest/gtest.h>

#include "ishare/common/hash.h"
#include "ishare/common/query_set.h"
#include "ishare/common/rng.h"
#include "ishare/common/status.h"

namespace ishare {
namespace {

TEST(QuerySetTest, EmptyAndSingle) {
  QuerySet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);

  QuerySet s = QuerySet::Single(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.First(), 5);
}

TEST(QuerySetTest, SetAlgebra) {
  QuerySet a = QuerySet::FromIds({0, 2, 4});
  QuerySet b = QuerySet::FromIds({2, 3});
  EXPECT_EQ(a.Union(b), QuerySet::FromIds({0, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), QuerySet::Single(2));
  EXPECT_EQ(a.Minus(b), QuerySet::FromIds({0, 4}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.ContainsAll(QuerySet::FromIds({0, 4})));
}

TEST(QuerySetTest, FirstN) {
  EXPECT_EQ(QuerySet::FirstN(0).size(), 0);
  EXPECT_EQ(QuerySet::FirstN(3), QuerySet::FromIds({0, 1, 2}));
  EXPECT_EQ(QuerySet::FirstN(64).size(), 64);
}

TEST(QuerySetTest, ToIdsRoundTrip) {
  std::vector<QueryId> ids = {1, 7, 63};
  EXPECT_EQ(QuerySet::FromIds(ids).ToIds(), ids);
}

TEST(QuerySetTest, HighestBit) {
  QuerySet s = QuerySet::Single(63);
  EXPECT_TRUE(s.Contains(63));
  EXPECT_EQ(s.ToIds(), std::vector<QueryId>{63});
}

TEST(QuerySetTest, ToString) {
  EXPECT_EQ(QuerySet::FromIds({0, 3}).ToString(), "{q0,q3}");
  EXPECT_EQ(QuerySet().ToString(), "{}");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad pace");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad pace");
}

TEST(StatusTest, TransientTaxonomy) {
  // The retry taxonomy (DESIGN.md §8): exactly kUnavailable is transient;
  // everything else — including data loss — is permanent. Retrying a
  // permanent error can never help and only delays the failure.
  EXPECT_TRUE(Status::Unavailable("partition handoff").IsTransient());
  EXPECT_TRUE(StatusCodeIsTransient(StatusCode::kUnavailable));

  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
  EXPECT_FALSE(Status::AlreadyExists("x").IsTransient());
  EXPECT_FALSE(Status::OutOfRange("x").IsTransient());
  EXPECT_FALSE(Status::NotSupported("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::DataLoss("x").IsTransient());
}

TEST(StatusTest, NewCodesHaveNames) {
  EXPECT_EQ(Status::Unavailable("s down").ToString(), "Unavailable: s down");
  EXPECT_EQ(Status::DataLoss("torn").ToString(), "DataLoss: torn");
  EXPECT_EQ(Status::ResourceExhausted("buffer full").ToString(),
            "ResourceExhausted: buffer full");
}

TEST(StatusTest, BackpressureTaxonomy) {
  // Backpressure (DESIGN.md §9) is deliberately disjoint from the
  // transient taxonomy: kResourceExhausted means "shed or defer", never
  // "retry against the storage-fault budget" — blind retries against a
  // full buffer would burn the recovery layer's attempts on a condition
  // that only draining can clear.
  Status bp = Status::ResourceExhausted("over high watermark");
  EXPECT_EQ(bp.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(bp.IsRetryableBackpressure());
  EXPECT_FALSE(bp.IsTransient());
  EXPECT_FALSE(StatusCodeIsTransient(StatusCode::kResourceExhausted));

  // No other code is backpressure.
  EXPECT_FALSE(Status::OK().IsRetryableBackpressure());
  EXPECT_FALSE(Status::Unavailable("x").IsRetryableBackpressure());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryableBackpressure());
  EXPECT_FALSE(Status::Internal("x").IsRetryableBackpressure());
  EXPECT_FALSE(Status::DataLoss("x").IsRetryableBackpressure());
}

TEST(StatusTest, ResultHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(StatusTest, ResultHoldsError) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(HashTest, MixingChangesValue) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(HashCombine(0, 1), HashCombine(1, 0));
  EXPECT_NE(HashString("a"), HashString("b"));
}

}  // namespace
}  // namespace ishare
