#include <gtest/gtest.h>

#include "ishare/cost/estimator.h"
#include "ishare/cost/selectivity.h"
#include "ishare/plan/builder.h"
#include "test_util.h"

namespace ishare {
namespace {

TEST(CardenasTest, Basics) {
  EXPECT_DOUBLE_EQ(CardenasDistinct(10, 0), 0.0);
  EXPECT_NEAR(CardenasDistinct(10, 1), 1.0, 1e-9);
  // Saturates at the number of distinct values.
  EXPECT_NEAR(CardenasDistinct(10, 10000), 10.0, 1e-6);
  // Monotone in n.
  EXPECT_LT(CardenasDistinct(100, 50), CardenasDistinct(100, 100));
  // With one group, any positive draw touches it.
  EXPECT_DOUBLE_EQ(CardenasDistinct(1, 5), 1.0);
}

class SelectivityTest : public ::testing::Test {
 protected:
  SelectivityTest() {
    ColumnStats num;
    num.numeric = true;
    num.ndv = 100;
    num.min = 0;
    num.max = 100;
    profile_["x"] = num;
    ColumnStats str;
    str.numeric = false;
    str.ndv = 20;
    profile_["s"] = str;
  }
  ColumnProfile profile_;
};

TEST_F(SelectivityTest, Equality) {
  EXPECT_NEAR(EstimateSelectivity(Eq(Col("x"), Lit(5)), profile_), 0.01, 1e-9);
  EXPECT_NEAR(EstimateSelectivity(Eq(Col("s"), Lit("a")), profile_), 0.05,
              1e-9);
}

TEST_F(SelectivityTest, Range) {
  EXPECT_NEAR(EstimateSelectivity(Lt(Col("x"), Lit(25)), profile_), 0.25,
              1e-9);
  EXPECT_NEAR(EstimateSelectivity(Gt(Col("x"), Lit(25)), profile_), 0.75,
              1e-9);
  // Mirrored literal-on-left form.
  EXPECT_NEAR(EstimateSelectivity(Gt(Lit(25), Col("x")), profile_), 0.25,
              1e-9);
}

TEST_F(SelectivityTest, AndOrNot) {
  ExprPtr a = Lt(Col("x"), Lit(50));  // 0.5
  ExprPtr b = Eq(Col("s"), Lit("a"));  // 0.05
  EXPECT_NEAR(EstimateSelectivity(And(a, b), profile_), 0.025, 1e-9);
  EXPECT_NEAR(EstimateSelectivity(Or(a, b), profile_), 0.5 + 0.05 - 0.025,
              1e-9);
  EXPECT_NEAR(EstimateSelectivity(Not(a), profile_), 0.5, 1e-9);
}

TEST_F(SelectivityTest, InListAndLike) {
  EXPECT_NEAR(
      EstimateSelectivity(Expr::In(Col("s"), {Value("a"), Value("b")}),
                          profile_),
      0.1, 1e-9);
  EXPECT_NEAR(EstimateSelectivity(Expr::Like(Col("s"), "%x%"), profile_),
              kDefaultLikeSelectivity, 1e-9);
}

TEST_F(SelectivityTest, NullPredicatePassesEverything) {
  EXPECT_DOUBLE_EQ(EstimateSelectivity(nullptr, profile_), 1.0);
}

TEST_F(SelectivityTest, ClampedToMinimum) {
  ExprPtr tiny = And(And(Eq(Col("x"), Lit(1)), Eq(Col("x"), Lit(2))),
                     And(Eq(Col("x"), Lit(3)), Eq(Col("x"), Lit(4))));
  EXPECT_GE(EstimateSelectivity(tiny, profile_), kMinSelectivity);
}

// --- Simulator ---

class SimTest : public ::testing::Test {
 protected:
  SimTest() : db_(400, 10) {}

  PlanNodePtr AggPlan(QueryId q) {
    PlanBuilder b(&db_.catalog, q);
    return b.Aggregate(b.ScanFiltered("orders", Gt(Col("o_amount"), Lit(10.0))),
                       {"o_custkey"}, {SumAgg(Col("o_amount"), "total")});
  }

  TestDb db_;
  ExecOptions exec_;
};

TEST_F(SimTest, BatchCostPositiveAndFinalEqualsTotal) {
  SimResult r = SimulateSubplan(AggPlan(0), db_.catalog, 1, {}, exec_);
  EXPECT_GT(r.private_total_work, 0);
  EXPECT_DOUBLE_EQ(r.private_total_work, r.private_final_work);
  EXPECT_GT(r.out_card, 0);
  EXPECT_LE(r.out_card, 11);  // at most one row per customer
}

TEST_F(SimTest, EagerPaceIncreasesTotalWorkAndReducesFinalWork) {
  SimResult lazy = SimulateSubplan(AggPlan(0), db_.catalog, 1, {}, exec_);
  SimResult eager = SimulateSubplan(AggPlan(0), db_.catalog, 10, {}, exec_);
  EXPECT_GT(eager.private_total_work, lazy.private_total_work);
  EXPECT_LT(eager.private_final_work, lazy.private_final_work);
}

TEST_F(SimTest, PerOpWorkCoversAllOperators) {
  PlanNodePtr plan = AggPlan(0);
  SimResult r = SimulateSubplan(plan, db_.catalog, 2, {}, exec_);
  std::vector<PlanNodePtr> nodes;
  CollectNodes(plan, &nodes);
  EXPECT_EQ(r.per_op_work.size(), nodes.size());
  double sum = 0;
  for (double w : r.per_op_work) sum += w;
  // Total work = per-op work + per-execution startup costs.
  EXPECT_NEAR(r.private_total_work, sum + 2 * exec_.startup_cost, 1e-6);
}

TEST_F(SimTest, RestrictSimInputScalesCards) {
  SimInput in;
  in.card = 100;
  in.deletes = 10;
  in.per_query[0] = 100;
  in.per_query[1] = 50;
  SimInput only1 = RestrictSimInput(in, QuerySet::Single(1));
  EXPECT_EQ(only1.per_query.size(), 1u);
  EXPECT_DOUBLE_EQ(only1.per_query[1], 50);
  EXPECT_DOUBLE_EQ(only1.card, 50);
  EXPECT_DOUBLE_EQ(only1.deletes, 5);

  SimInput both = RestrictSimInput(in, QuerySet::FromIds({0, 1}));
  EXPECT_DOUBLE_EQ(both.card, 100);  // q0 already covers everything
}

TEST(UnionFractionTest, IndependenceModel) {
  std::map<QueryId, double> pq{{0, 50}, {1, 50}};
  // Two independent half-coverage queries: 1 - 0.25 = 0.75.
  EXPECT_NEAR(UnionFraction(pq, 100), 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(UnionFraction({}, 100), 0.0);
  EXPECT_DOUBLE_EQ(UnionFraction(pq, 0), 0.0);
}

// --- Estimator / Algorithm 1 ---

std::vector<QueryPlan> SharedDag(const Catalog& catalog) {
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(catalog, "orders", both);
  std::map<QueryId, ExprPtr> preds;
  preds[1] = Gt(Col("o_amount"), Lit(50.0));
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      filt, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, both);
  PlanNodePtr root0 = PlanNode::MakeProject(
      agg, {{Col("o_custkey"), "k"}, {Col("total"), "total"}},
      QuerySet::Single(0));
  PlanNodePtr root1 = PlanNode::MakeAggregate(
      agg, {}, {MaxAgg(Col("total"), "m")}, QuerySet::Single(1));
  return {QueryPlan{0, "q0", root0}, QueryPlan{1, "q1", root1}};
}

TEST(EstimatorTest, MemoHitsOnRepeatedEstimates) {
  TestDb db(300, 10);
  SubplanGraph g = SubplanGraph::Build(SharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig p(g.num_subplans(), 2);
  PlanCost c1 = est.Estimate(p);
  int64_t misses_after_first = est.memo_misses();
  PlanCost c2 = est.Estimate(p);
  EXPECT_EQ(est.memo_misses(), misses_after_first);
  EXPECT_GT(est.memo_hits(), 0);
  EXPECT_DOUBLE_EQ(c1.total_work, c2.total_work);
}

TEST(EstimatorTest, MemoOnlyRecomputesChangedPrivateConfigs) {
  TestDb db(300, 10);
  SubplanGraph g = SubplanGraph::Build(SharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig p(g.num_subplans(), 2);
  est.Estimate(p);
  int64_t misses = est.memo_misses();
  // Raising the pace of a root subplan leaves the shared child's private
  // configuration unchanged: exactly one new simulation.
  int root0 = g.query_root(0);
  p[root0] += 1;
  est.Estimate(p);
  EXPECT_EQ(est.memo_misses(), misses + 1);
}

TEST(EstimatorTest, MemoMatchesNoMemo) {
  TestDb db(300, 10);
  SubplanGraph g = SubplanGraph::Build(SharedDag(db.catalog));
  CostEstimator with(&g, &db.catalog);
  CostEstimator without(&g, &db.catalog, ExecOptions(), /*use_memo=*/false);
  for (int p = 1; p <= 4; ++p) {
    PaceConfig pc(g.num_subplans(), p);
    PlanCost a = with.Estimate(pc);
    PlanCost b = without.Estimate(pc);
    EXPECT_NEAR(a.total_work, b.total_work, 1e-6);
    for (int q = 0; q < 2; ++q) {
      EXPECT_NEAR(a.query_final_work[q], b.query_final_work[q], 1e-6);
    }
  }
}

TEST(EstimatorTest, FinalWorkSumsQuerySubplans) {
  TestDb db(300, 10);
  SubplanGraph g = SubplanGraph::Build(SharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  PaceConfig p(g.num_subplans(), 3);
  PlanCost c = est.Estimate(p);
  double direct = 0;
  for (int s : g.SubplansOfQuery(0)) {
    direct += est.SubplanResult(s, p).private_final_work;
  }
  EXPECT_NEAR(c.query_final_work[0], direct, 1e-9);
}

TEST(EstimatorTest, StandaloneBatchWorkPositive) {
  TestDb db(300, 10);
  PlanBuilder b(&db.catalog, 0);
  QueryPlan q{0, "q",
              b.Aggregate(b.Scan("orders"), {"o_custkey"},
                          {SumAgg(Col("o_amount"), "t")})};
  EXPECT_GT(EstimateStandaloneBatchWork(q, db.catalog), 0);
}

}  // namespace
}  // namespace ishare
