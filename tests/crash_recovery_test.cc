// Crash/recovery equivalence tests (DESIGN.md §8): a seeded crash at any
// step, in any phase (after a step, mid-step, or between checkpoint stage
// and commit), followed by restore-from-checkpoint and delta replay, must
// reproduce the uninterrupted run bit for bit — per-query output logs,
// executor state fingerprints, work totals, and missed-deadline counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ishare/common/rng.h"
#include "ishare/cost/estimator.h"
#include "ishare/harness/crash_harness.h"
#include "ishare/recovery/checkpoint_store.h"
#include "test_util.h"

namespace ishare {
namespace {

using recovery::MemoryCheckpointStore;

// The shared DAG engine tests use everywhere: an aggregate feeding two
// query roots (3 subplans), giving multi-consumer buffers and a step
// schedule with both shared and private event points.
std::vector<QueryPlan> MakeSharedDag(const Catalog& catalog) {
  QuerySet both = QuerySet::FromIds({0, 1});
  PlanNodePtr scan = PlanNode::MakeScan(catalog, "orders", both);
  std::map<QueryId, ExprPtr> preds;
  preds[1] = Gt(Col("o_amount"), Lit(50.0));
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), both);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      filt, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, both);
  PlanNodePtr root0 = PlanNode::MakeProject(
      agg, {{Col("o_custkey"), "k"}, {Col("total"), "total"}},
      QuerySet::Single(0));
  PlanNodePtr root1 = PlanNode::MakeAggregate(
      agg, {}, {MaxAgg(Col("total"), "max_total")}, QuerySet::Single(1));
  return {QueryPlan{0, "q0", root0}, QueryPlan{1, "q1", root1}};
}

SourceFactory MakeFactory(const TestDb& db) {
  const StreamSource* clean = &db.source;
  return [clean]() {
    auto src = std::make_unique<StreamSource>();
    CHECK(clean->CloneTablesInto(src.get()).ok());
    return src;
  };
}

void ExpectEquivalent(const CrashRunReport& rep, const std::string& where) {
  EXPECT_TRUE(rep.results_identical) << where << ": " << rep.mismatch;
  EXPECT_TRUE(rep.state_identical) << where << ": " << rep.mismatch;
  EXPECT_TRUE(rep.work_identical) << where << ": " << rep.mismatch;
  EXPECT_TRUE(rep.deadlines_identical) << where << ": " << rep.mismatch;
  ASSERT_TRUE(rep.Equivalent()) << where << ": " << rep.mismatch;
}

// ---------------------------------------------------------------------------
// Static executor: crash at every step, in every phase
// ---------------------------------------------------------------------------

TEST(CrashRecoveryStatic, CrashAfterEveryStepIsBitExact) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  PaceConfig paces = {2, 2, 4};  // 4 event points: 1/4, 1/2, 3/4, 1/1
  SourceFactory factory = MakeFactory(db);

  for (int64_t step = 1; step <= 4; ++step) {
    MemoryCheckpointStore store;
    CrashRecoveryOptions opts;
    opts.store = &store;
    opts.plan = {CrashPhase::kAfterStep, step, 0};
    Result<CrashRunReport> rep =
        RunCrashRecoveryStatic(g, paces, factory, opts);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(rep->total_steps, 4);
    if (step < 4) {
      EXPECT_TRUE(rep->crashed) << "step " << step;
      EXPECT_EQ(rep->crash_step, step);
    }
    if (rep->crashed && step >= 2) {
      // An epoch (len 2) committed before the crash: real recovery.
      EXPECT_TRUE(rep->recovered_from_checkpoint) << "step " << step;
      EXPECT_GT(rep->recovered_step, 0);
      EXPECT_LE(rep->recovered_step, step);
      EXPECT_GE(rep->recovery.restores, 1);
    }
    if (rep->crashed && step == 1) {
      // Crash before the first epoch boundary: no checkpoint exists yet,
      // recovery degrades to a clean rerun.
      EXPECT_FALSE(rep->recovered_from_checkpoint);
    }
    ExpectEquivalent(*rep, "after step " + std::to_string(step));
  }
}

TEST(CrashRecoveryStatic, CrashDuringEverySubplanIsBitExact) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  ASSERT_EQ(g.num_subplans(), 3);
  PaceConfig paces = {2, 2, 4};
  SourceFactory factory = MakeFactory(db);

  for (int64_t step = 1; step <= 4; ++step) {
    for (int subplan = 0; subplan < 3; ++subplan) {
      MemoryCheckpointStore store;
      CrashRecoveryOptions opts;
      opts.store = &store;
      opts.plan = {CrashPhase::kDuringSubplan, step, subplan};
      Result<CrashRunReport> rep =
          RunCrashRecoveryStatic(g, paces, factory, opts);
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      // Mid-step crashes lose the partial step; it must be re-executed
      // from the last committed epoch with identical results.
      ExpectEquivalent(*rep, "during step " + std::to_string(step) +
                                 " subplan " + std::to_string(subplan));
    }
  }
}

TEST(CrashRecoveryStatic, TornCheckpointBetweenStageAndCommitIsInvisible) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  PaceConfig paces = {2, 2, 4};
  SourceFactory factory = MakeFactory(db);

  // Crash after staging step 3's checkpoint but before commit. The only
  // committed epoch is step 2; the staged frame must be ignored.
  MemoryCheckpointStore store;
  CrashRecoveryOptions opts;
  opts.store = &store;
  opts.plan = {CrashPhase::kBetweenStageAndCommit, 3, 0};
  Result<CrashRunReport> rep = RunCrashRecoveryStatic(g, paces, factory, opts);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->crashed);
  EXPECT_TRUE(rep->recovered_from_checkpoint);
  EXPECT_EQ(rep->recovered_step, 2);
  ExpectEquivalent(*rep, "torn at step 3");
}

TEST(CrashRecoveryStatic, NoCrashControlRunsAreIdentical) {
  TestDb db(/*n_orders=*/80, /*n_customers=*/5);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  SourceFactory factory = MakeFactory(db);

  MemoryCheckpointStore store;
  CrashRecoveryOptions opts;
  opts.store = &store;
  opts.plan.phase = CrashPhase::kNone;
  Result<CrashRunReport> rep =
      RunCrashRecoveryStatic(g, {2, 2, 4}, factory, opts);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_FALSE(rep->crashed);
  // Checkpointing ran (epoch len 2 over 4 steps) without perturbing the
  // run in any observable way.
  EXPECT_GE(rep->recovery.checkpoints, 1);
  ExpectEquivalent(*rep, "control");
}

TEST(CrashRecoveryStatic, CorruptedNewestEpochFallsBackToOlder) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  PaceConfig paces = {4, 4, 4};  // 4 steps, epochs at 2 and 4 with len 2
  SourceFactory factory = MakeFactory(db);

  // First, a run that crashes after step 3 — epoch 2 is committed. Then
  // corrupt it and crash-recover again: with every epoch bad, recovery
  // degrades to a rerun and results still match.
  MemoryCheckpointStore store;
  CrashRecoveryOptions opts;
  opts.store = &store;
  opts.plan = {CrashPhase::kAfterStep, 3, 0};
  {
    Result<CrashRunReport> rep =
        RunCrashRecoveryStatic(g, paces, factory, opts);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    ASSERT_TRUE(rep->recovered_from_checkpoint);
    EXPECT_EQ(rep->recovered_step, 2);
    ExpectEquivalent(*rep, "before corruption");
  }
  // Plant a rotten frame at an epoch newer than anything a real run
  // commits. RecoverLatest must try it first, discard it, and fall back
  // to the genuine epoch 2 the crashed run left behind.
  ASSERT_TRUE(store.Stage(99, "not a checkpoint frame").ok());
  ASSERT_TRUE(store.Commit(99).ok());
  {
    Result<CrashRunReport> rep =
        RunCrashRecoveryStatic(g, paces, factory, opts);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_TRUE(rep->crashed);
    EXPECT_GE(rep->recovery.torn_discarded, 1);
    EXPECT_TRUE(rep->recovered_from_checkpoint);
    EXPECT_EQ(rep->recovered_step, 2);
    ExpectEquivalent(*rep, "after corruption");
  }
}

TEST(CrashRecoveryStatic, DeadlineCountsSurviveRecovery) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  SourceFactory factory = MakeFactory(db);

  // Goals straddling the actual final work: one query misses, one meets.
  MemoryCheckpointStore store;
  CrashRecoveryOptions opts;
  opts.store = &store;
  opts.plan = {CrashPhase::kAfterStep, 3, 0};
  opts.final_work_goals = {1e-3, 1e12};
  Result<CrashRunReport> rep =
      RunCrashRecoveryStatic(g, {2, 2, 4}, factory, opts);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->baseline_deadlines_missed, 1);
  EXPECT_EQ(rep->recovered_deadlines_missed, 1);
  ExpectEquivalent(*rep, "deadline goals");
}

// ---------------------------------------------------------------------------
// Adaptive executor
// ---------------------------------------------------------------------------

TEST(CrashRecoveryAdaptive, CrashAfterEveryStepIsBitExact) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  SourceFactory factory = MakeFactory(db);
  std::vector<double> abs(2, 1e18);  // generous: no degradation pressure
  AdaptivePolicy policy;

  for (int64_t step = 1; step <= 4; ++step) {
    MemoryCheckpointStore store;
    CrashRecoveryOptions opts;
    opts.store = &store;
    opts.plan = {CrashPhase::kAfterStep, step, 0};
    Result<CrashRunReport> rep = RunCrashRecoveryAdaptive(
        &est, {2, 2, 4}, abs, policy, factory, opts);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    ExpectEquivalent(*rep, "adaptive after step " + std::to_string(step));
  }
}

TEST(CrashRecoveryAdaptive, CrashUnderTightConstraintsIsBitExact) {
  // Tight constraints make the adaptive layer actually adapt (skips,
  // catch-ups, possibly re-derivations); recovery must replay those
  // decisions identically because they are work-based, never wall-clock.
  TestDb db(/*n_orders=*/200, /*n_customers=*/8);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  SourceFactory factory = MakeFactory(db);
  std::vector<double> abs(2, 50.0);  // hard to meet: adaptation kicks in
  AdaptivePolicy policy;
  policy.min_drift_samples = 1;

  for (int64_t step = 1; step <= 3; ++step) {
    MemoryCheckpointStore store;
    CrashRecoveryOptions opts;
    opts.store = &store;
    opts.plan = {CrashPhase::kAfterStep, step, 0};
    Result<CrashRunReport> rep = RunCrashRecoveryAdaptive(
        &est, {4, 4, 4}, abs, policy, factory, opts);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    ExpectEquivalent(*rep,
                     "adaptive tight after step " + std::to_string(step));
  }
}

// ---------------------------------------------------------------------------
// Parallel kill-points (DESIGN.md §10/§11): crashes landing inside a
// step's parallel execution at four worker threads. The kill fires after
// one wave of the step has executed (and published buffers) while later
// waves never run — recovery must restore a cut that hides the
// half-finished step entirely.
// ---------------------------------------------------------------------------

TEST(CrashRecoveryParallel, MidWaveKillsAreBitExactAtFourThreads) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  PaceConfig paces = {2, 2, 4};
  SourceFactory factory = MakeFactory(db);

  // The shared DAG has two dependency levels ([agg], [root0, root1]); a
  // step that schedules only one level has a single wave, so plans aimed
  // at wave 1 there complete as controls. Both outcomes must match the
  // baseline.
  int crashed_runs = 0;
  for (int64_t step = 1; step <= 4; ++step) {
    for (int wave = 0; wave <= 1; ++wave) {
      MemoryCheckpointStore store;
      CrashRecoveryOptions opts;
      opts.store = &store;
      opts.exec.sched.num_threads = 4;
      opts.plan.phase = CrashPhase::kMidWave;
      opts.plan.step = step;
      opts.plan.wave = wave;
      Result<CrashRunReport> rep =
          RunCrashRecoveryStatic(g, paces, factory, opts);
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      if (rep->crashed) ++crashed_runs;
      ExpectEquivalent(*rep, "mid-wave step " + std::to_string(step) +
                                 " wave " + std::to_string(wave));
    }
  }
  // Most plans must actually land mid-step, not degrade to controls.
  EXPECT_GE(crashed_runs, 4);
}

TEST(CrashRecoveryParallel, TornCheckpointWithParallelWavesIsInvisible) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  SourceFactory factory = MakeFactory(db);

  // The stage-then-die kill-point with the window running parallel waves:
  // the torn frame was produced from state built by pool threads and must
  // still be invisible to recovery.
  MemoryCheckpointStore store;
  CrashRecoveryOptions opts;
  opts.store = &store;
  opts.exec.sched.num_threads = 4;
  opts.plan = {CrashPhase::kBetweenStageAndCommit, 3, 0};
  Result<CrashRunReport> rep =
      RunCrashRecoveryStatic(g, {2, 2, 4}, factory, opts);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->crashed);
  EXPECT_TRUE(rep->recovered_from_checkpoint);
  EXPECT_EQ(rep->recovered_step, 2);
  ExpectEquivalent(*rep, "parallel torn at step 3");
}

TEST(CrashRecoveryParallel, KillsDuringMorselFanOutAreBitExact) {
  TestDb db(/*n_orders=*/200, /*n_customers=*/8);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  SourceFactory factory = MakeFactory(db);

  // morsel_min_tuples = 1 forces operator-level ParallelFor fan-out on
  // every execution, so the kill interrupts a step whose operators were
  // themselves running as pool morsels.
  for (int64_t step = 2; step <= 3; ++step) {
    MemoryCheckpointStore store;
    CrashRecoveryOptions opts;
    opts.store = &store;
    opts.exec.sched.num_threads = 4;
    opts.exec.sched.morsel_min_tuples = 1;
    opts.plan.phase = CrashPhase::kMidWave;
    opts.plan.step = step;
    opts.plan.wave = 0;
    Result<CrashRunReport> rep =
        RunCrashRecoveryStatic(g, {2, 2, 4}, factory, opts);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_TRUE(rep->crashed) << "step " << step;
    ExpectEquivalent(*rep, "morsel fan-out step " + std::to_string(step));
  }
}

TEST(CrashRecoveryParallel, AdaptiveMidWaveKillIsBitExact) {
  TestDb db(/*n_orders=*/120, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  CostEstimator est(&g, &db.catalog);
  SourceFactory factory = MakeFactory(db);
  std::vector<double> abs(2, 1e18);
  AdaptivePolicy policy;

  int crashed_runs = 0;
  for (int64_t step = 1; step <= 4; ++step) {
    MemoryCheckpointStore store;
    CrashRecoveryOptions opts;
    opts.store = &store;
    opts.exec.sched.num_threads = 4;
    opts.plan.phase = CrashPhase::kMidWave;
    opts.plan.step = step;
    opts.plan.wave = 0;
    Result<CrashRunReport> rep = RunCrashRecoveryAdaptive(
        &est, {2, 2, 4}, abs, policy, factory, opts);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    if (rep->crashed) ++crashed_runs;
    ExpectEquivalent(*rep, "adaptive mid-wave step " + std::to_string(step));
  }
  EXPECT_GE(crashed_runs, 2);
}

// ---------------------------------------------------------------------------
// Property test: randomized crash points over many seeds
// ---------------------------------------------------------------------------

TEST(CrashRecoveryProperty, RandomizedCrashPointsMatchUninterruptedRun) {
  TestDb db(/*n_orders=*/100, /*n_customers=*/6);
  SubplanGraph g = SubplanGraph::Build(MakeSharedDag(db.catalog));
  SourceFactory factory = MakeFactory(db);

  constexpr int kSeeds = 120;
  int recovered_runs = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(0x5eed0000 + seed);
    // Random pace configuration (and thus schedule length), crash phase,
    // step, subplan, and checkpoint cadence.
    PaceConfig paces = {static_cast<int>(rng.UniformInt(1, 4)),
                        static_cast<int>(rng.UniformInt(1, 4)),
                        static_cast<int>(rng.UniformInt(1, 6))};
    // The subplan with pace k contributes k distinct event points i/k, so
    // the schedule has at least max(paces) steps — a safe range to aim
    // the crash at (plans past the end degrade to no-crash controls).
    int64_t max_steps = *std::max_element(paces.begin(), paces.end());
    CrashPhase phases[] = {CrashPhase::kAfterStep, CrashPhase::kDuringSubplan,
                           CrashPhase::kBetweenStageAndCommit,
                           CrashPhase::kMidWave};
    CrashPlan plan;
    plan.phase = phases[rng.UniformInt(0, 3)];
    plan.step = rng.UniformInt(1, max_steps);
    plan.subplan = static_cast<int>(rng.UniformInt(0, 2));
    plan.wave = static_cast<int>(rng.UniformInt(0, 1));

    MemoryCheckpointStore store;
    CrashRecoveryOptions opts;
    opts.store = &store;
    opts.plan = plan;
    opts.checkpoint.epoch_len = rng.UniformInt(1, 3);
    // Mid-wave kills need the parallel path; other phases mix serial and
    // parallel runs so both spines face every crash shape.
    opts.exec.sched.num_threads =
        (plan.phase == CrashPhase::kMidWave || rng.Bernoulli(0.3)) ? 4 : 1;

    Result<CrashRunReport> rep =
        RunCrashRecoveryStatic(g, paces, factory, opts);
    ASSERT_TRUE(rep.ok()) << "seed " << seed << ": "
                          << rep.status().ToString();
    EXPECT_GE(rep->replayed_deltas, 0);
    if (rep->recovered_from_checkpoint) ++recovered_runs;
    ExpectEquivalent(
        *rep, "seed " + std::to_string(seed) + " phase " +
                  std::to_string(static_cast<int>(plan.phase)) + " step " +
                  std::to_string(plan.step));
  }
  // The property run must actually exercise restore-from-checkpoint, not
  // just clean reruns.
  EXPECT_GT(recovered_runs, kSeeds / 4);
}

}  // namespace
}  // namespace ishare
