// Deeper tests for Sec. 4: split application across multi-level sharing,
// the clustering decomposer's decisions, and end-to-end result preservation
// through decomposition rewrites on the TPC-H workload.

#include <gtest/gtest.h>

#include "ishare/exec/pace_executor.h"
#include "ishare/mqo/mqo_optimizer.h"
#include "ishare/opt/approaches.h"
#include "ishare/workload/tpch_queries.h"
#include "test_util.h"

namespace ishare {
namespace {

using ResultMap = std::unordered_map<Row, int64_t, RowHasher>;

// Three queries over one shared aggregate, as in Fig. 5/6: q0 and q1 are
// near-identical (cheap to share), q2 only overlaps partially.
std::vector<QueryPlan> ThreeQueryDag(const Catalog& catalog) {
  QuerySet all = QuerySet::FromIds({0, 1, 2});
  PlanNodePtr scan = PlanNode::MakeScan(catalog, "orders", all);
  std::map<QueryId, ExprPtr> preds;
  preds[2] = Gt(Col("o_amount"), Lit(90.0));
  PlanNodePtr filt = PlanNode::MakeFilter(scan, std::move(preds), all);
  PlanNodePtr agg = PlanNode::MakeAggregate(
      filt, {"o_custkey"}, {SumAgg(Col("o_amount"), "total")}, all);
  PlanNodePtr r0 = PlanNode::MakeProject(
      agg, {{Col("total"), "t0"}}, QuerySet::Single(0));
  PlanNodePtr r1 = PlanNode::MakeAggregate(
      agg, {}, {SumAgg(Col("total"), "grand")}, QuerySet::Single(1));
  PlanNodePtr r2 = PlanNode::MakeAggregate(
      agg, {}, {MaxAgg(Col("total"), "mx")}, QuerySet::Single(2));
  return {QueryPlan{0, "q0", r0}, QueryPlan{1, "q1", r1},
          QueryPlan{2, "q2", r2}};
}

TEST(ApplySplitTest, ThreeWayGraphSplitsIntoTwoParts) {
  TestDb db(300, 10);
  SubplanGraph g = SubplanGraph::Build(ThreeQueryDag(db.catalog));
  ASSERT_TRUE(g.Validate().ok());
  int shared = -1;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).queries.size() == 3) shared = i;
  }
  ASSERT_GE(shared, 0);

  PaceConfig init;
  SubplanGraph ng =
      ApplySplit(g, shared, {QuerySet::FromIds({0, 1}), QuerySet::Single(2)},
                 PaceConfig(g.num_subplans(), 3), &init);
  ASSERT_TRUE(ng.Validate().ok()) << ng.ToString();
  // The {0,1} part still feeds two roots (stays a shared buffer); the {2}
  // part merges into q2's root.
  bool found_pair_part = false;
  for (int i = 0; i < ng.num_subplans(); ++i) {
    if (ng.subplan(i).queries == QuerySet::FromIds({0, 1})) {
      found_pair_part = true;
      EXPECT_EQ(ng.subplan(i).parents.size(), 2u);
    }
    EXPECT_FALSE(ng.subplan(i).queries == QuerySet::FromIds({0, 1, 2}));
  }
  EXPECT_TRUE(found_pair_part);
}

TEST(ApplySplitTest, ThreeWayResultsPreserved) {
  TestDb db(300, 10);
  std::vector<QueryPlan> dag = ThreeQueryDag(db.catalog);
  SubplanGraph g = SubplanGraph::Build(dag);
  int shared = -1;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).queries.size() == 3) shared = i;
  }
  PaceConfig init;
  SubplanGraph ng =
      ApplySplit(g, shared, {QuerySet::FromIds({0, 1}), QuerySet::Single(2)},
                 PaceConfig(g.num_subplans(), 2), &init);
  for (QueryId q = 0; q < 3; ++q) {
    db.source.Reset();
    PaceExecutor e1(&g, &db.source);
    e1.Run(PaceConfig(g.num_subplans(), 2)).value();
    ResultMap before = MaterializeResult(*e1.query_output(q), q);
    db.source.Reset();
    PaceExecutor e2(&ng, &db.source);
    e2.Run(init).value();
    ResultMap after = MaterializeResult(*e2.query_output(q), q);
    EXPECT_TRUE(ResultsNear(after, before)) << "query " << q;
  }
}

TEST(ApplySplitTest, SingletonSplitIsIdentityShape) {
  TestDb db(200, 8);
  SubplanGraph g = SubplanGraph::Build(ThreeQueryDag(db.catalog));
  int shared = -1;
  for (int i = 0; i < g.num_subplans(); ++i) {
    if (g.subplan(i).queries.size() == 3) shared = i;
  }
  PaceConfig init;
  SubplanGraph ng = ApplySplit(g, shared, {g.subplan(shared).queries},
                               PaceConfig(g.num_subplans(), 5), &init);
  ASSERT_TRUE(ng.Validate().ok());
  EXPECT_EQ(ng.num_subplans(), g.num_subplans());
  EXPECT_EQ(init, PaceConfig(g.num_subplans(), 5));
}

TEST(DecomposerTest, DivergentConstraintsTriggerUnsharing) {
  TestDb db(800, 10);
  std::vector<QueryPlan> dag = ThreeQueryDag(db.catalog);
  SubplanGraph g = SubplanGraph::Build(dag);
  CostEstimator est(&g, &db.catalog);

  // q2 (the max query) gets a very tight constraint; q0/q1 stay lazy.
  PaceConfig ones(g.num_subplans(), 1);
  PlanCost batch = est.Estimate(ones);
  std::vector<double> abs = {batch.query_final_work[0],
                             batch.query_final_work[1],
                             0.05 * batch.query_final_work[2]};
  PaceOptimizer po(&est, abs, PaceOptimizerOptions{40});
  PaceSearchResult base = po.FindPaceConfiguration();

  DecomposerOptions dopts;
  dopts.max_pace = 40;
  Decomposer dec(&db.catalog, abs, ExecOptions(), dopts);
  DecomposeResult dr = dec.Optimize(g, base.paces);
  ASSERT_TRUE(dr.graph.Validate().ok());
  EXPECT_LE(dr.cost.total_work, base.cost.total_work + 1e-6);
}

TEST(DecomposerTest, UniformLooseConstraintsKeepSharing) {
  TestDb db(400, 10);
  std::vector<QueryPlan> dag = ThreeQueryDag(db.catalog);
  SubplanGraph g = SubplanGraph::Build(dag);
  CostEstimator est(&g, &db.catalog);
  PaceConfig ones(g.num_subplans(), 1);
  PlanCost batch = est.Estimate(ones);
  std::vector<double> abs = batch.query_final_work;  // rel = 1.0

  DecomposerOptions dopts;
  Decomposer dec(&db.catalog, abs, ExecOptions(), dopts);
  DecomposeResult dr = dec.Optimize(g, ones);
  // Nothing to gain: batch execution everywhere, sharing kept.
  EXPECT_EQ(dr.stats.splits_adopted, 0);
  EXPECT_EQ(dr.graph.num_subplans(), g.num_subplans());
}

TEST(DecomposerTest, BruteForceNeverWorseThanClustering) {
  TestDb db(500, 10);
  std::vector<QueryPlan> dag = ThreeQueryDag(db.catalog);
  SubplanGraph g = SubplanGraph::Build(dag);
  CostEstimator est(&g, &db.catalog);
  PaceConfig ones(g.num_subplans(), 1);
  PlanCost batch = est.Estimate(ones);
  std::vector<double> abs = {batch.query_final_work[0],
                             0.3 * batch.query_final_work[1],
                             0.05 * batch.query_final_work[2]};
  PaceOptimizer po(&est, abs, PaceOptimizerOptions{30});
  PaceSearchResult base = po.FindPaceConfiguration();

  DecomposerOptions cl_opts;
  cl_opts.max_pace = 30;
  Decomposer clustering(&db.catalog, abs, ExecOptions(), cl_opts);
  DecomposeResult cl = clustering.Optimize(g, base.paces);

  DecomposerOptions bf_opts = cl_opts;
  bf_opts.brute_force = true;
  Decomposer brute(&db.catalog, abs, ExecOptions(), bf_opts);
  DecomposeResult bf = brute.Optimize(g, base.paces);

  // Brute force explores a superset of single-subplan splits per step, so
  // its local choices are at least as good; allow small slack because the
  // global greedy adoption order can differ.
  EXPECT_LE(bf.cost.total_work, cl.cost.total_work * 1.05);
}

TEST(DecomposerTest, TpchDecompositionPreservesResults) {
  // End-to-end: optimize the Fig. 14 workload (first 6 queries to keep the
  // test fast) with full iShare and check every query's result against its
  // standalone batch execution.
  static TpchDb* db = new TpchDb(TpchScale{0.003, 3});
  static constexpr int kNums[] = {5, 15, 7, 15, 9, 18};
  std::vector<QueryPlan> queries;
  for (int i = 0; i < 6; ++i) {
    // Odd slots use the predicate variants so shared subplans overlap only
    // partially (the Fig. 14 situation).
    queries.push_back(
        TpchQuery(db->catalog, kNums[i], i, /*variant=*/(i % 2) == 1));
  }
  std::vector<double> rel = {1.0, 0.1, 0.5, 0.1, 1.0, 0.2};
  ApproachOptions opts;
  opts.max_pace = 12;
  OptimizedPlan plan =
      OptimizePlan(Approach::kIShare, queries, db->catalog, rel, opts);
  ASSERT_TRUE(plan.graph.Validate().ok());

  std::vector<ResultMap> ref;
  for (const QueryPlan& q : queries) {
    db->Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, &db->source);
    exec.Run(PaceConfig(g.num_subplans(), 1)).value();
    ref.push_back(MaterializeResult(*exec.query_output(q.id), q.id));
  }
  db->Reset();
  PaceExecutor exec(&plan.graph, &db->source);
  exec.Run(plan.paces).value();
  for (const QueryPlan& q : queries) {
    EXPECT_TRUE(ResultsNear(MaterializeResult(*exec.query_output(q.id), q.id),
                            ref[q.id]))
        << q.name;
  }
}

TEST(DecomposerTest, PartialDecompositionProducesValidPlans) {
  TestDb db(600, 10);
  std::vector<QueryPlan> dag = ThreeQueryDag(db.catalog);
  SubplanGraph g = SubplanGraph::Build(dag);
  CostEstimator est(&g, &db.catalog);
  PaceConfig ones(g.num_subplans(), 1);
  PlanCost batch = est.Estimate(ones);
  std::vector<double> abs = {batch.query_final_work[0],
                             0.2 * batch.query_final_work[1],
                             0.05 * batch.query_final_work[2]};
  PaceOptimizer po(&est, abs, PaceOptimizerOptions{30});
  PaceSearchResult base = po.FindPaceConfiguration();

  for (bool partial : {false, true}) {
    DecomposerOptions dopts;
    dopts.max_pace = 30;
    dopts.enable_partial = partial;
    Decomposer dec(&db.catalog, abs, ExecOptions(), dopts);
    DecomposeResult dr = dec.Optimize(g, base.paces);
    EXPECT_TRUE(dr.graph.Validate().ok()) << "partial=" << partial;
    EXPECT_LE(dr.cost.total_work, base.cost.total_work + 1e-6);
  }
}

}  // namespace
}  // namespace ishare
