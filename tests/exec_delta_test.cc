// Tests for insert/delete/update streams on base tables (Sec. 2.3): the
// engine must converge to the correct net result under any pace, with
// retractions flowing through filters, joins and aggregates.

#include <gtest/gtest.h>

#include "ishare/exec/pace_executor.h"
#include "ishare/plan/builder.h"
#include "test_util.h"

namespace ishare {
namespace {

using ResultMap = std::unordered_map<Row, int64_t, RowHasher>;

Row R2(int64_t k, double v) { return Row{Value(k), Value(v)}; }

// A stream of inserts with interleaved deletes and updates.
class DeltaStreamFixture : public ::testing::Test {
 protected:
  DeltaStreamFixture() {
    schema_ = Schema({{"k", DataType::kInt64}, {"v", DataType::kFloat64}});
    Rng rng(5);
    std::vector<DeltaTuple> deltas;
    std::vector<Row> live;
    for (int i = 0; i < 400; ++i) {
      double roll = rng.UniformDouble();
      if (roll < 0.7 || live.size() < 4) {
        Row r = R2(rng.UniformInt(0, 9), rng.UniformDouble(0, 100));
        live.push_back(r);
        deltas.emplace_back(std::move(r), QuerySet(), 1);
      } else if (roll < 0.85) {
        // Delete a random live row.
        size_t idx = rng.UniformInt(0, live.size() - 1);
        deltas.emplace_back(live[idx], QuerySet(), -1);
        live[idx] = live.back();
        live.pop_back();
      } else {
        // Update: delete + insert with a new value.
        size_t idx = rng.UniformInt(0, live.size() - 1);
        deltas.emplace_back(live[idx], QuerySet(), -1);
        Row fresh = R2(live[idx][0].AsInt(), rng.UniformDouble(0, 100));
        live[idx] = fresh;
        deltas.emplace_back(std::move(fresh), QuerySet(), 1);
      }
    }
    live_rows_ = live;
    CHECK(catalog_
              .AddTable("facts", schema_,
                        ComputeTableStats(schema_, live))
              .ok());
    source_.AddTableDeltas("facts", schema_, std::move(deltas));
  }

  ResultMap Run(const QueryPlan& q, int pace) {
    source_.Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, &source_);
    exec.Run(PaceConfig(g.num_subplans(), pace)).value();
    return MaterializeResult(*exec.query_output(q.id), q.id);
  }

  Schema schema_;
  std::vector<Row> live_rows_;
  Catalog catalog_;
  StreamSource source_;
};

TEST_F(DeltaStreamFixture, ScanNetsOutToLiveRows) {
  PlanBuilder b(&catalog_, 0);
  QueryPlan q{0, "scan", b.ScanFiltered("facts", nullptr)};
  ResultMap res = Run(q, 1);
  ResultMap expect;
  for (const Row& r : live_rows_) expect[r] += 1;
  EXPECT_EQ(res, expect);
}

TEST_F(DeltaStreamFixture, SumPerKeyConvergesUnderAnyPace) {
  PlanBuilder b(&catalog_, 0);
  QueryPlan q{0, "sum",
              b.Aggregate(b.ScanFiltered("facts", nullptr), {"k"},
                          {SumAgg(Col("v"), "s"), CountAgg("c")})};
  ResultMap batch = Run(q, 1);
  for (int pace : {2, 3, 7, 13}) {
    EXPECT_TRUE(ResultsNear(Run(q, pace), batch)) << "pace " << pace;
  }
  // Cross-check the count column against live rows.
  std::map<int64_t, int64_t> counts;
  for (const Row& r : live_rows_) counts[r[0].AsInt()] += 1;
  int64_t total_from_result = 0;
  for (const auto& [row, mult] : batch) total_from_result += row[2].AsInt();
  int64_t total_live = 0;
  for (const auto& [k, c] : counts) total_live += c;
  EXPECT_EQ(total_from_result, total_live);
}

TEST_F(DeltaStreamFixture, MinMaxSurviveDeletesOfExtrema) {
  PlanBuilder b(&catalog_, 0);
  QueryPlan q{0, "minmax",
              b.Aggregate(b.ScanFiltered("facts", nullptr), {"k"},
                          {MaxAgg(Col("v"), "mx"), MinAgg(Col("v"), "mn")})};
  ResultMap batch = Run(q, 1);
  EXPECT_TRUE(ResultsNear(Run(q, 11), batch));
  // Validate against a direct computation.
  std::map<int64_t, std::pair<double, double>> ref;
  for (const Row& r : live_rows_) {
    auto [it, fresh] = ref.try_emplace(r[0].AsInt(),
                                       std::make_pair(r[1].AsDouble(),
                                                      r[1].AsDouble()));
    if (!fresh) {
      it->second.first = std::max(it->second.first, r[1].AsDouble());
      it->second.second = std::min(it->second.second, r[1].AsDouble());
    }
  }
  EXPECT_EQ(batch.size(), ref.size());
  for (const auto& [row, mult] : batch) {
    auto it = ref.find(row[0].AsInt());
    ASSERT_NE(it, ref.end());
    EXPECT_DOUBLE_EQ(row[1].AsDouble(), it->second.first);
    EXPECT_DOUBLE_EQ(row[2].AsDouble(), it->second.second);
  }
}

TEST_F(DeltaStreamFixture, FilteredAggUnderChurn) {
  PlanBuilder b(&catalog_, 0);
  QueryPlan q{0, "filtered",
              b.Aggregate(b.ScanFiltered("facts", Gt(Col("v"), Lit(50.0))),
                          {"k"}, {CountAgg("c")})};
  ResultMap batch = Run(q, 1);
  EXPECT_TRUE(ResultsNear(Run(q, 9), batch));
}

TEST_F(DeltaStreamFixture, SelfJoinStyleSharedScanUnderChurn) {
  // Two aggregates over the same scan (a within-query DAG) must both
  // converge when the base stream retracts rows.
  PlanBuilder b(&catalog_, 0);
  PlanNodePtr scan = b.ScanFiltered("facts", nullptr);
  PlanNodePtr per_key =
      b.Aggregate(scan, {"k"}, {SumAgg(Col("v"), "s")});
  PlanNodePtr global = b.Project(
      b.Aggregate(scan, {}, {SumAgg(Col("v"), "total")}),
      {{Mul(Col("total"), Lit(0.5)), "half_total"}});
  PlanNodePtr cross = b.Join(per_key, global, {}, {});
  QueryPlan q{0, "dag", b.Filter(cross, Gt(Col("s"), Col("half_total")))};
  ResultMap batch = Run(q, 1);
  EXPECT_TRUE(ResultsNear(Run(q, 6), batch));
}

TEST(DeltaJoinTest, JoinRetractsAcrossTables) {
  Schema left({{"k", DataType::kInt64}, {"lv", DataType::kInt64}});
  Schema right({{"k2", DataType::kInt64}, {"rv", DataType::kInt64}});
  Catalog catalog;
  CHECK(catalog.AddTable("l", left, TableStats()).ok());
  CHECK(catalog.AddTable("r", right, TableStats()).ok());
  StreamSource source;
  // Left: insert (1, 10), (2, 20); delete (1, 10) mid-stream.
  std::vector<DeltaTuple> ld;
  ld.emplace_back(Row{Value(int64_t{1}), Value(int64_t{10})}, QuerySet(), 1);
  ld.emplace_back(Row{Value(int64_t{2}), Value(int64_t{20})}, QuerySet(), 1);
  ld.emplace_back(Row{Value(int64_t{1}), Value(int64_t{10})}, QuerySet(), -1);
  ld.emplace_back(Row{Value(int64_t{2}), Value(int64_t{21})}, QuerySet(), 1);
  source.AddTableDeltas("l", left, std::move(ld));
  std::vector<DeltaTuple> rd;
  rd.emplace_back(Row{Value(int64_t{1}), Value(int64_t{100})}, QuerySet(), 1);
  rd.emplace_back(Row{Value(int64_t{2}), Value(int64_t{200})}, QuerySet(), 1);
  source.AddTableDeltas("r", right, std::move(rd));

  PlanBuilder b(&catalog, 0);
  QueryPlan q{0, "join",
              b.Join(b.ScanFiltered("l", nullptr),
                     b.ScanFiltered("r", nullptr), {"k"}, {"k2"})};
  for (int pace : {1, 2, 4}) {
    source.Reset();
    SubplanGraph g = SubplanGraph::Build({q});
    PaceExecutor exec(&g, &source);
    exec.Run(PaceConfig(g.num_subplans(), pace)).value();
    auto res = MaterializeResult(*exec.query_output(0), 0);
    // Only key 2 survives: two left rows x one right row.
    EXPECT_EQ(res.size(), 2u) << "pace " << pace;
    for (const auto& [row, mult] : res) {
      EXPECT_EQ(row[0].AsInt(), 2);
      EXPECT_EQ(mult, 1);
    }
  }
}

}  // namespace
}  // namespace ishare
